// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4). Each benchmark reports the measured phase
// decomposition on this host via ReportMetric; EXPERIMENTS.md records
// how the shapes compare with the published Alpha/AN1 results.
//
//	go test -bench 'Table2'  .   # Table 2: per-page operation costs
//	go test -bench 'Table3'  .   # Table 3: traversal characteristics
//	go test -bench 'Fig1'    .   # Figure 1: T12-A, T12-C
//	go test -bench 'Fig2'    .   # Figure 2: T2-A/B/C, T3-A
//	go test -bench 'Fig3'    .   # Figure 3: T3-B, T3-C
//	go test -bench 'Fig5'    .   # Figures 5/6: per-update set_range cost
//	go test -bench 'Fig7'    .   # Figure 7: breakeven updates/page
//	go test -bench 'Fig8'    .   # Figure 8: coherency vs recoverability
//	go test -bench 'Ablation'.   # design-choice ablations beyond the paper
package lbc_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	lbc "lbc"
	"lbc/internal/bench"
	"lbc/internal/coherency"
	"lbc/internal/costmodel"
	"lbc/internal/dsm"
	"lbc/internal/fault"
	"lbc/internal/metrics"
	"lbc/internal/netproto"
	"lbc/internal/oo7"
	"lbc/internal/rangetree"
	"lbc/internal/rvm"
	"lbc/internal/wal"
)

const pageSize = 8192

// --- Table 2: operation costs ------------------------------------------

func BenchmarkTable2PageCopy(b *testing.B) {
	src := make([]byte, 512<<20)
	dst := make([]byte, pageSize)
	pages := len(src) / pageSize
	b.SetBytes(pageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (i * 7919 % pages) * pageSize
		copy(dst, src[off:off+pageSize])
	}
}

func BenchmarkTable2PageCopyWarm(b *testing.B) {
	src := make([]byte, pageSize)
	dst := make([]byte, pageSize)
	b.SetBytes(pageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(dst, src)
	}
}

func comparePage(a, t []byte) int {
	d := 0
	for i := range a {
		if a[i] != t[i] {
			d++
		}
	}
	return d
}

func BenchmarkTable2PageCompare(b *testing.B) {
	mem := make([]byte, 512<<20)
	twin := make([]byte, pageSize)
	pages := len(mem) / pageSize
	var sink int
	b.SetBytes(pageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (i * 7919 % pages) * pageSize
		sink += comparePage(mem[off:off+pageSize], twin)
	}
	_ = sink
}

func BenchmarkTable2PageCompareWarm(b *testing.B) {
	mem := make([]byte, pageSize)
	twin := make([]byte, pageSize)
	var sink int
	b.SetBytes(pageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += comparePage(mem, twin)
	}
	_ = sink
}

func BenchmarkTable2PageSendTCP(b *testing.B) {
	m1, err := netproto.NewTCPMesh(1, "127.0.0.1:0", map[netproto.NodeID]string{})
	if err != nil {
		b.Fatal(err)
	}
	defer m1.Close()
	m2, err := netproto.NewTCPMesh(2, "127.0.0.1:0", map[netproto.NodeID]string{})
	if err != nil {
		b.Fatal(err)
	}
	defer m2.Close()
	m1.SetPeer(2, m2.Addr())
	got := make(chan struct{}, 1<<16)
	m2.Handle(1, func(netproto.NodeID, []byte) { got <- struct{}{} })
	page := make([]byte, pageSize)
	b.SetBytes(pageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m1.Send(2, 1, page); err != nil {
			b.Fatal(err)
		}
		<-got
	}
}

func BenchmarkTable2TrapHandling(b *testing.B) {
	if !fault.Supported() {
		b.Skip("no mprotect trap support on this platform")
	}
	// One warm measurement amortized over b.N (each cycle is a real
	// hardware fault + recover + mprotect pair).
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fault.TrapOnce(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 3 and Figures 1-3: OO7 traversals ----------------------------

// reportRun publishes the run's phase decomposition and workload
// characteristics as benchmark metrics.
func reportRun(b *testing.B, res *bench.RunResult) {
	b.Helper()
	us := func(p metrics.Phase) float64 {
		return float64(res.Measured.Phase(p).Nanoseconds()) / 1e3
	}
	b.ReportMetric(us(metrics.PhaseDetect), "detect-us")
	b.ReportMetric(us(metrics.PhaseCollect), "collect-us")
	b.ReportMetric(us(metrics.PhaseNetIO), "net-us")
	b.ReportMetric(us(metrics.PhaseApply), "apply-us")
	b.ReportMetric(float64(res.Stats.Updates), "updates")
	b.ReportMetric(float64(res.Stats.UniqueBytes), "bytes-upd")
	b.ReportMetric(float64(res.Stats.MessageBytes), "msg-bytes")
	b.ReportMetric(float64(res.Stats.PagesUpdated), "pages")
	b.ReportMetric(res.ModeledAlpha.Total(), "alpha-model-us")
}

func benchTraversal(b *testing.B, traversal string, engine bench.EngineKind) {
	b.Helper()
	var last *bench.RunResult
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(bench.RunConfig{
			Traversal: traversal,
			Engine:    engine,
			OO7:       oo7.Small(),
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportRun(b, last)
}

func benchFigure(b *testing.B, traversals []string) {
	b.Helper()
	for _, tr := range traversals {
		for _, e := range []bench.EngineKind{bench.EngineLog, bench.EngineCpyCmp, bench.EnginePage} {
			name := fmt.Sprintf("%s/%s", tr, e)
			b.Run(name, func(b *testing.B) { benchTraversal(b, tr, e) })
		}
	}
}

func BenchmarkTable3Characteristics(b *testing.B) {
	for _, tr := range bench.Traversals {
		b.Run(tr, func(b *testing.B) { benchTraversal(b, tr, bench.EngineLog) })
	}
}

func BenchmarkFig1SparseTraversals(b *testing.B) {
	benchFigure(b, []string{"T12-A", "T12-C"})
}

func BenchmarkFig2FullTraversals(b *testing.B) {
	benchFigure(b, []string{"T2-A", "T2-B", "T2-C", "T3-A"})
}

func BenchmarkFig3IndexTraversals(b *testing.B) {
	benchFigure(b, []string{"T3-B", "T3-C"})
}

// --- Figures 5/6: per-update set_range overhead --------------------------

func BenchmarkFig5PerUpdate(b *testing.B) {
	for _, n := range []int{1000, 5000, 50000, 300000} {
		for _, pat := range []bench.Pattern{bench.Unordered, bench.Ordered, bench.Redundant} {
			b.Run(fmt.Sprintf("%s/%d", pat, n), func(b *testing.B) {
				var us float64
				for i := 0; i < b.N; i++ {
					v, err := bench.PerUpdateCost(pat, n, rangetree.CoalesceExact)
					if err != nil {
						b.Fatal(err)
					}
					us = v
				}
				b.ReportMetric(us, "us/update")
			})
		}
	}
}

// --- Figure 7: breakeven curve (analytic + host trap) ---------------------

func BenchmarkFig7Breakeven(b *testing.B) {
	m := costmodel.Alpha()
	fastTrap := costmodel.FastTrap()
	var sink float64
	for i := 0; i < b.N; i++ {
		for c := 5.0; c <= 30; c += 2.5 {
			sink += m.BreakevenUpdatesPerPage(c) + fastTrap.BreakevenUpdatesPerPage(c)
		}
	}
	_ = sink
	b.ReportMetric(m.BreakevenUpdatesPerPage(18), "alpha-breakeven@18us")
	b.ReportMetric(fastTrap.BreakevenUpdatesPerPage(18), "fasttrap-breakeven@18us")
	if fault.Supported() {
		if d, err := fault.MeasureTrap(100); err == nil {
			host := m
			host.Trap = float64(d.Nanoseconds()) / 1e3
			b.ReportMetric(host.BreakevenUpdatesPerPage(18), "host-breakeven@18us")
		}
	}
}

// --- Figure 8: coherency vs recoverability --------------------------------

func BenchmarkFig8Configurations(b *testing.B) {
	configs := []struct {
		name string
		cfg  bench.RunConfig
	}{
		{"LogBasedCoherency", bench.RunConfig{Traversal: "T12-A", Engine: bench.EngineLog, OO7: oo7.Small()}},
		{"LogBasedCoherencyDisk", bench.RunConfig{Traversal: "T12-A", Engine: bench.EngineLog, OO7: oo7.Small(), DiskLog: b.TempDir()}},
		{"OptimizedRVM", bench.RunConfig{Traversal: "T12-A", Engine: bench.EngineLog, OO7: oo7.Small(), Nodes: 1}},
		{"StandardRVM", bench.RunConfig{Traversal: "T12-A", Engine: bench.EngineLog, OO7: oo7.Small(), Nodes: 1, Policy: rangetree.CoalesceFull}},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			var last *bench.RunResult
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(c.cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportRun(b, last)
			b.ReportMetric(float64(last.Measured.Phase(metrics.PhaseDiskIO).Nanoseconds())/1e3, "disk-us")
		})
	}
}

// --- Ablations beyond the paper -------------------------------------------

// BenchmarkAblationEagerLazy compares eager broadcast with lazy
// server-pull propagation (§2.2's alternative policy).
func BenchmarkAblationEagerLazy(b *testing.B) {
	for _, mode := range []coherency.Propagation{coherency.Eager, coherency.Lazy} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runPingPong(b, 20, lbc.WithPropagation(mode), lbc.WithStore())
			}
		})
	}
}

// BenchmarkAblationHeaders compares compressed 4-24 B range headers
// with the standard 104 B headers on the wire (§3.2's compression).
func BenchmarkAblationHeaders(b *testing.B) {
	for _, w := range []struct {
		name string
		wire coherency.WireFormat
	}{{"Compressed", coherency.Compressed}, {"Standard", coherency.Standard}} {
		b.Run(w.name, func(b *testing.B) {
			var sent int64
			for i := 0; i < b.N; i++ {
				sent = runPingPong(b, 20, lbc.WithWire(w.wire))
			}
			b.ReportMetric(float64(sent), "wire-bytes")
		})
	}
}

// BenchmarkAblationCoalesce compares the paper's exact-match set_range
// coalescing with standard RVM's full coalescing (§3.1's 5x claim).
func BenchmarkAblationCoalesce(b *testing.B) {
	for _, p := range []rangetree.Policy{rangetree.CoalesceExact, rangetree.CoalesceFull} {
		b.Run(p.String(), func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				v, err := bench.PerUpdateCost(bench.Unordered, 20000, p)
				if err != nil {
					b.Fatal(err)
				}
				us = v
			}
			b.ReportMetric(us, "us/update")
		})
	}
}

// BenchmarkPeerScaling measures writer-side commit cost as the number
// of receiving peers grows (§4.3.1: "network I/O overhead of the
// writer increases linearly with the number of peer nodes").
func BenchmarkPeerScaling(b *testing.B) {
	for _, peers := range []int{1, 2, 3, 5, 7} {
		b.Run(fmt.Sprintf("peers-%d", peers), func(b *testing.B) {
			cluster, err := lbc.NewLocalCluster(peers+1, lbc.WithTCP())
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Close()
			if err := cluster.MapAll(1, 1<<16); err != nil {
				b.Fatal(err)
			}
			if err := cluster.Barrier(1); err != nil {
				b.Fatal(err)
			}
			w := cluster.Node(0)
			reg := w.RVM().Region(1)
			payload := make([]byte, 4000)
			// Warm up the per-peer connections so dial costs stay out
			// of the measured per-commit network time.
			for k := 0; k < 3; k++ {
				tx := w.Begin(lbc.NoRestore)
				if err := tx.Acquire(0); err != nil {
					b.Fatal(err)
				}
				if err := tx.Write(reg, 0, payload); err != nil {
					b.Fatal(err)
				}
				if _, err := tx.Commit(lbc.NoFlush); err != nil {
					b.Fatal(err)
				}
			}
			before := w.Stats().Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := w.Begin(lbc.NoRestore)
				if err := tx.Acquire(0); err != nil {
					b.Fatal(err)
				}
				if err := tx.Write(reg, 0, payload); err != nil {
					b.Fatal(err)
				}
				if _, err := tx.Commit(lbc.NoFlush); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			diff := w.Stats().Snapshot().Sub(before)
			b.ReportMetric(float64(diff.Phase(metrics.PhaseNetIO).Nanoseconds())/1e3/float64(b.N), "net-us/commit")
		})
	}
}

// BenchmarkMultiWriterOO7 extends the paper's one-writer experiments:
// the OO7 design library is partitioned into W page-aligned segments,
// each under its own lock, and W nodes run T12-A over their partitions
// concurrently. Reported wall time is the slowest writer's; coherency
// keeps every node's cache identical throughout.
func BenchmarkMultiWriterOO7(b *testing.B) {
	for _, writers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("writers-%d", writers), func(b *testing.B) {
			img, err := bench.BuildImage(oo7.Small())
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				cluster, err := lbc.NewLocalCluster(writers, lbc.WithSeedImage(1, img))
				if err != nil {
					b.Fatal(err)
				}
				if err := cluster.MapAll(1, len(img)); err != nil {
					b.Fatal(err)
				}
				if err := cluster.Barrier(1); err != nil {
					b.Fatal(err)
				}
				db0, err := oo7.Open(cluster.Node(0).RVM().Region(1))
				if err != nil {
					b.Fatal(err)
				}
				nComp := db0.Config().NumComposite
				// Segment boundaries at composite cluster starts.
				for w := 0; w < writers; w++ {
					lo := db0.CompositeOffset(w * nComp / writers)
					hi := uint64(len(img))
					if w < writers-1 {
						hi = db0.CompositeOffset((w + 1) * nComp / writers)
					}
					cluster.AddSegmentAll(lbc.Segment{LockID: uint32(w), Region: 1, Off: lo, Len: hi - lo})
				}
				var wg sync.WaitGroup
				errs := make(chan error, writers)
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						n := cluster.Node(w)
						db, err := oo7.Open(n.RVM().Region(1))
						if err != nil {
							errs <- err
							return
						}
						tx := n.Begin(lbc.NoRestore)
						if err := tx.Acquire(uint32(w)); err != nil {
							errs <- err
							return
						}
						if _, err := db.T12Partition(tx, w*nComp/writers, (w+1)*nComp/writers); err != nil {
							errs <- err
							return
						}
						if _, err := tx.Commit(lbc.NoFlush); err != nil {
							errs <- err
							return
						}
					}(w)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
				// Quiesce and verify convergence.
				for ni := 0; ni < writers; ni++ {
					for w := 0; w < writers; w++ {
						tx := cluster.Node(ni).Begin(lbc.NoRestore)
						if err := tx.Acquire(uint32(w)); err != nil {
							b.Fatal(err)
						}
						tx.Commit(lbc.NoFlush)
					}
				}
				base := cluster.Node(0).RVM().Region(1).Bytes()
				for ni := 1; ni < writers; ni++ {
					if !bytesEqual(base, cluster.Node(ni).RVM().Region(1).Bytes()) {
						b.Fatal("writer caches diverged")
					}
				}
				cluster.Close()
			}
		})
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BenchmarkAblationAdaptive exercises the adaptive hybrid the paper's
// conclusion proposes (§6), against fixed Cpy/Cmp and fixed Page on a
// workload that alternates sparse and dense phases. The metric of
// interest is wire bytes: adaptive should track the better of the two
// fixed engines per phase.
func BenchmarkAblationAdaptive(b *testing.B) {
	type engine interface {
		Begin(*rvm.Region)
		OnWrite(uint64, uint32) error
		Commit() []wal.RangeRec
	}
	workload := func(b *testing.B, e engine) (wireBytes int64) {
		r, err := rvm.Open(rvm.Options{Node: 1})
		if err != nil {
			b.Fatal(err)
		}
		reg, err := r.Map(1, 64*8192)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for phase := 0; phase < 4; phase++ {
			dense := phase%2 == 1
			for tx := 0; tx < 8; tx++ {
				e.Begin(reg)
				for p := 0; p < 10; p++ {
					var off uint64
					var n uint32
					if dense {
						off, n = uint64(p*8192), 8000
					} else {
						off, n = uint64(p*8192+rng.Intn(8000)), 8
					}
					if err := e.OnWrite(off, n); err != nil {
						b.Fatal(err)
					}
					rng.Read(reg.Bytes()[off : off+uint64(n)])
				}
				for _, rec := range e.Commit() {
					wireBytes += int64(len(rec.Data))
				}
			}
		}
		return wireBytes
	}

	b.Run("CpyCmp", func(b *testing.B) {
		var wire int64
		for i := 0; i < b.N; i++ {
			wire = workload(b, dsm.New(dsm.Options{Mode: dsm.CpyCmp}))
		}
		b.ReportMetric(float64(wire), "wire-bytes")
	})
	b.Run("Page", func(b *testing.B) {
		var wire int64
		for i := 0; i < b.N; i++ {
			wire = workload(b, dsm.New(dsm.Options{Mode: dsm.Page}))
		}
		b.ReportMetric(float64(wire), "wire-bytes")
	})
	b.Run("Adaptive", func(b *testing.B) {
		var wire int64
		var switches int64
		for i := 0; i < b.N; i++ {
			e := dsm.NewAdaptive(costmodel.Alpha(), 8192, nil)
			wire = workload(b, e)
			switches = e.Switches()
		}
		b.ReportMetric(float64(wire), "wire-bytes")
		b.ReportMetric(float64(switches), "mode-switches")
	})
}

// runPingPong alternates locked writes between two nodes and returns
// the writer-side wire bytes.
func runPingPong(b *testing.B, rounds int, opts ...lbc.Option) int64 {
	b.Helper()
	cluster, err := lbc.NewLocalCluster(2, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.MapAll(1, 1<<16); err != nil {
		b.Fatal(err)
	}
	if err := cluster.Barrier(1); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	for i := 0; i < rounds; i++ {
		n := cluster.Node(i % 2)
		tx := n.Begin(rvm.NoRestore)
		if err := tx.Acquire(0); err != nil {
			b.Fatal(err)
		}
		if err := tx.Write(n.RVM().Region(1), uint64(i*64), payload); err != nil {
			b.Fatal(err)
		}
		if _, err := tx.Commit(rvm.NoFlush); err != nil {
			b.Fatal(err)
		}
	}
	return cluster.Node(0).Stats().Counter(metrics.CtrBytesSent) +
		cluster.Node(1).Stats().Counter(metrics.CtrBytesSent)
}
