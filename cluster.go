package lbc

import (
	"fmt"
	"path/filepath"
	"time"

	"lbc/internal/coherency"
	"lbc/internal/netproto"
	"lbc/internal/rangetree"
	"lbc/internal/rvm"
	"lbc/internal/store"
	"lbc/internal/wal"
)

// Option configures cluster construction.
type Option func(*clusterConfig)

type clusterConfig struct {
	tcp         bool
	propagation coherency.Propagation
	wire        coherency.WireFormat
	pageSize    int
	checkLocks  bool
	versioned   map[int]bool
	useStore    bool
	replicated  bool
	seedImages  map[RegionID][]byte
	policy      rangetree.Policy
	diskLogDir  string
}

// WithTCP connects the nodes over real loopback TCP sockets instead of
// in-process channels (the default). The lock protocol, coherency
// broadcast, and storage traffic then cross the kernel's network
// stack, as in the paper's prototype.
func WithTCP() Option { return func(c *clusterConfig) { c.tcp = true } }

// WithPropagation selects eager (default) or lazy update propagation.
// Lazy implies WithStore (records are pulled from the server's logs).
func WithPropagation(p coherency.Propagation) Option {
	return func(c *clusterConfig) {
		c.propagation = p
		if p == coherency.Lazy {
			c.useStore = true
		}
	}
}

// WithWire selects the coherency message encoding (header ablation).
func WithWire(w coherency.WireFormat) Option {
	return func(c *clusterConfig) { c.wire = w }
}

// WithPageSize sets the page size used for statistics (default 8192).
func WithPageSize(ps int) Option { return func(c *clusterConfig) { c.pageSize = ps } }

// WithCheckLocks makes SetRange fail when a registered segment's lock
// is not held.
func WithCheckLocks() Option { return func(c *clusterConfig) { c.checkLocks = true } }

// WithVersioned puts node i (0-based) in the versioned read model:
// received updates buffer until Accept.
func WithVersioned(i int) Option {
	return func(c *clusterConfig) { c.versioned[i] = true }
}

// WithStore places every node's log and database on a shared storage
// server (started internally), the paper's client/server
// configuration. Without it each node logs to private in-memory
// devices — the "disk logging disabled" setup of §4.
func WithStore() Option { return func(c *clusterConfig) { c.useStore = true } }

// WithReplicatedStore is WithStore plus a synchronous backup server:
// every mutation is mirrored before it is acknowledged (§2's
// "transparently replicated" storage service). Cluster.StoreBackup
// exposes the backup for failover tests.
func WithReplicatedStore() Option {
	return func(c *clusterConfig) {
		c.useStore = true
		c.replicated = true
	}
}

// WithSeedImage preloads a region image into the store so every node
// maps an identical database (used by the OO7 harness).
func WithSeedImage(id RegionID, img []byte) Option {
	return func(c *clusterConfig) {
		cp := make([]byte, len(img))
		copy(cp, img)
		c.seedImages[id] = cp
	}
}

// WithSetRangePolicy selects the modified-range coalescing policy:
// rangetree.CoalesceExact is the paper's optimized set_range (default);
// rangetree.CoalesceFull is standard RVM (Figure 8's rightmost bar).
func WithSetRangePolicy(p rangetree.Policy) Option {
	return func(c *clusterConfig) { c.policy = p }
}

// WithDiskLog writes each node's redo log to a real file under dir, so
// Flush-mode commits pay genuine disk I/O (Figure 8's "Disk" bar).
// Ignored when WithStore is also set (the server owns the logs then).
func WithDiskLog(dir string) Option {
	return func(c *clusterConfig) { c.diskLogDir = dir }
}

// Cluster is a set of in-process nodes for experiments, examples, and
// tests. Production deployments wire the pieces directly (see
// cmd/storeserver and the package example).
type Cluster struct {
	nodes   []*Node
	rvms    []*rvm.RVM
	meshes  []*netproto.TCPMesh
	srv     *store.Server
	replica *store.ReplicaPair
	clis    []*store.Client
	logs    []wal.Device
}

// NewLocalCluster builds k nodes (ids 1..k) connected per the options.
func NewLocalCluster(k int, opts ...Option) (*Cluster, error) {
	if k < 1 {
		return nil, fmt.Errorf("lbc: cluster needs at least one node")
	}
	cfg := &clusterConfig{
		versioned:  map[int]bool{},
		seedImages: map[RegionID][]byte{},
	}
	for _, o := range opts {
		o(cfg)
	}

	cl := &Cluster{}
	ids := make([]NodeID, k)
	for i := range ids {
		ids[i] = NodeID(i + 1)
	}

	// Optional storage server.
	if cfg.useStore {
		if cfg.replicated {
			pair, err := store.NewReplicaPair("127.0.0.1:0", "127.0.0.1:0", store.ServerOptions{})
			if err != nil {
				return nil, err
			}
			cl.replica = pair
			cl.srv = pair.Primary
		} else {
			srv, err := store.NewServer("127.0.0.1:0", store.ServerOptions{})
			if err != nil {
				return nil, err
			}
			cl.srv = srv
		}
		for id, img := range cfg.seedImages {
			if err := cl.srv.Data().StoreRegion(uint32(id), img); err != nil {
				cl.Close()
				return nil, err
			}
		}
	}

	// Transport.
	var transports []netproto.Transport
	if cfg.tcp {
		for _, id := range ids {
			m, err := netproto.NewTCPMesh(id, "127.0.0.1:0", map[NodeID]string{})
			if err != nil {
				cl.Close()
				return nil, err
			}
			cl.meshes = append(cl.meshes, m)
			transports = append(transports, m)
		}
		for i, m := range cl.meshes {
			for j, o := range cl.meshes {
				if i != j {
					m.SetPeer(ids[j], o.Addr())
				}
			}
		}
	} else {
		hub := netproto.NewHub()
		for _, id := range ids {
			transports = append(transports, hub.Endpoint(id))
		}
	}

	// Nodes.
	for i, id := range ids {
		var log wal.Device
		var data rvm.DataStore
		var peerLogs coherency.PeerLogReader
		if cfg.useStore {
			cli, err := store.Dial(cl.srv.Addr())
			if err != nil {
				cl.Close()
				return nil, err
			}
			cl.clis = append(cl.clis, cli)
			log = cli.LogDevice(uint32(id))
			data = cli
			peerLogs = func(node uint32) wal.Device { return cli.LogDevice(node) }
		} else {
			if cfg.diskLogDir != "" {
				var err error
				log, err = wal.OpenFileDevice(filepath.Join(cfg.diskLogDir, fmt.Sprintf("node-%d.log", id)))
				if err != nil {
					cl.Close()
					return nil, err
				}
			} else {
				log = wal.NewMemDevice()
			}
			data = rvm.NewMemStore()
			for rid, img := range cfg.seedImages {
				if err := data.StoreRegion(uint32(rid), img); err != nil {
					cl.Close()
					return nil, err
				}
			}
		}
		cl.logs = append(cl.logs, log)

		r, err := rvm.Open(rvm.Options{Node: uint32(id), Log: log, Data: data, Policy: cfg.policy})
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.rvms = append(cl.rvms, r)
		n, err := coherency.New(coherency.Options{
			RVM:         r,
			Transport:   transports[i],
			Nodes:       ids,
			Propagation: cfg.propagation,
			Wire:        cfg.wire,
			PageSize:    cfg.pageSize,
			PeerLogs:    peerLogs,
			Versioned:   cfg.versioned[i],
			CheckLocks:  cfg.checkLocks,
		})
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.nodes = append(cl.nodes, n)
	}
	return cl, nil
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns node i (0-based).
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Log returns node i's redo-log device (for merging and recovery).
func (c *Cluster) Log(i int) wal.Device { return c.logs[i] }

// Store returns the embedded storage server, if WithStore was used.
func (c *Cluster) Store() *store.Server { return c.srv }

// StoreBackup returns the backup server when WithReplicatedStore was
// used, or nil.
func (c *Cluster) StoreBackup() *store.Server {
	if c.replica == nil {
		return nil
	}
	return c.replica.Backup
}

// MapAll maps the region on every node.
func (c *Cluster) MapAll(id RegionID, size int) error {
	for _, n := range c.nodes {
		if _, err := n.MapRegion(id, size); err != nil {
			return err
		}
	}
	return nil
}

// Barrier waits until every node has seen every peer's mapping of the
// region — the startup point after which eager broadcasts reach all
// caches.
func (c *Cluster) Barrier(id RegionID) error {
	for _, n := range c.nodes {
		if err := n.WaitPeers(id, len(c.nodes)-1, 10*time.Second); err != nil {
			return err
		}
	}
	return nil
}

// AddSegmentAll registers the segment on every node.
func (c *Cluster) AddSegmentAll(seg Segment) {
	for _, n := range c.nodes {
		n.AddSegment(seg)
	}
}

// Close tears down nodes, transports, clients, and the server.
func (c *Cluster) Close() error {
	for _, n := range c.nodes {
		n.Close()
	}
	for _, m := range c.meshes {
		m.Close()
	}
	for _, cli := range c.clis {
		cli.Close()
	}
	if c.replica != nil {
		c.replica.Close()
	} else if c.srv != nil {
		c.srv.Close()
	}
	return nil
}
