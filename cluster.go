package lbc

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"lbc/internal/chaos"
	"lbc/internal/coherency"
	"lbc/internal/lockmgr"
	"lbc/internal/membership"
	"lbc/internal/netproto"
	"lbc/internal/obs"
	"lbc/internal/rangetree"
	"lbc/internal/replstore"
	"lbc/internal/rvm"
	"lbc/internal/store"
	"lbc/internal/wal"
)

// Option configures cluster construction.
type Option func(*clusterConfig)

type clusterConfig struct {
	tcp          bool
	propagation  coherency.Propagation
	wire         coherency.WireFormat
	pageSize     int
	checkLocks   bool
	versioned    map[int]bool
	useStore     bool
	replicated   bool
	quorum       int
	seedImages   map[RegionID][]byte
	policy       rangetree.Policy
	diskLogDir   string
	inj          *chaos.Injector
	acqTimeout   time.Duration
	groupCommit  bool
	noCompress   bool
	sendWindow   int
	sendStall    time.Duration
	traceCap     int
	applyWorkers int
	serialApply  bool
	member       *MembershipOptions
	migrate      bool
	interest     bool
}

// MembershipOptions configures live failure handling (WithMembership).
type MembershipOptions struct {
	// SuspectAfter / EvictAfter are the failure detector's parameters
	// (see membership.Config); zero values take the detector defaults.
	SuspectAfter time.Duration
	EvictAfter   int
	// Clock substitutes the detector's time source. Deterministic
	// harnesses pass one shared membership.ManualClock and drive
	// Cluster.TickMembership explicitly.
	Clock membership.Clock
	// Interval starts a wall-clock detector ticker on every node when
	// positive. Leave zero with a ManualClock.
	Interval time.Duration
}

// WithTCP connects the nodes over real loopback TCP sockets instead of
// in-process channels (the default). The lock protocol, coherency
// broadcast, and storage traffic then cross the kernel's network
// stack, as in the paper's prototype.
func WithTCP() Option { return func(c *clusterConfig) { c.tcp = true } }

// WithPropagation selects eager (default) or lazy update propagation.
// Lazy implies WithStore (records are pulled from the server's logs).
func WithPropagation(p coherency.Propagation) Option {
	return func(c *clusterConfig) {
		c.propagation = p
		if p == coherency.Lazy {
			c.useStore = true
		}
	}
}

// WithWire selects the coherency message encoding (header ablation).
func WithWire(w coherency.WireFormat) Option {
	return func(c *clusterConfig) { c.wire = w }
}

// WithPageSize sets the page size used for statistics (default 8192).
func WithPageSize(ps int) Option { return func(c *clusterConfig) { c.pageSize = ps } }

// WithCheckLocks makes SetRange fail when a registered segment's lock
// is not held.
func WithCheckLocks() Option { return func(c *clusterConfig) { c.checkLocks = true } }

// WithVersioned puts node i (0-based) in the versioned read model:
// received updates buffer until Accept.
func WithVersioned(i int) Option {
	return func(c *clusterConfig) { c.versioned[i] = true }
}

// WithStore places every node's log and database on a shared storage
// server (started internally), the paper's client/server
// configuration. Without it each node logs to private in-memory
// devices — the "disk logging disabled" setup of §4.
func WithStore() Option { return func(c *clusterConfig) { c.useStore = true } }

// WithReplicatedStore is WithStore plus a synchronous backup server:
// every mutation is mirrored before it is acknowledged (§2's
// "transparently replicated" storage service). Cluster.StoreBackup
// exposes the backup for failover tests.
func WithReplicatedStore() Option {
	return func(c *clusterConfig) {
		c.useStore = true
		c.replicated = true
	}
}

// WithQuorumStore is WithStore with n independent storage replicas and
// majority-quorum replication (internal/replstore): every node talks
// to the replica set through a quorum client, writes acknowledge only
// after a majority persists them, and the replica set reconfigures
// through epoch-numbered views while commits continue. n must be odd
// to make majorities meaningful (3 is the usual choice).
func WithQuorumStore(n int) Option {
	return func(c *clusterConfig) {
		c.useStore = true
		c.quorum = n
	}
}

// WithSeedImage preloads a region image into the store so every node
// maps an identical database (used by the OO7 harness).
func WithSeedImage(id RegionID, img []byte) Option {
	return func(c *clusterConfig) {
		cp := make([]byte, len(img))
		copy(cp, img)
		c.seedImages[id] = cp
	}
}

// WithSetRangePolicy selects the modified-range coalescing policy:
// rangetree.CoalesceExact is the paper's optimized set_range (default);
// rangetree.CoalesceFull is standard RVM (Figure 8's rightmost bar).
func WithSetRangePolicy(p rangetree.Policy) Option {
	return func(c *clusterConfig) { c.policy = p }
}

// WithDiskLog writes each node's redo log to a real file under dir, so
// Flush-mode commits pay genuine disk I/O (Figure 8's "Disk" bar).
// Ignored when WithStore is also set (the server owns the logs then).
func WithDiskLog(dir string) Option {
	return func(c *clusterConfig) { c.diskLogDir = dir }
}

// WithChaos routes every node's sends through the injector's
// deterministic fault schedule, and (in store-backed configurations)
// wraps each node's log device with the injector's storage faults and
// enables pull-on-stall so dropped update broadcasts are recovered
// from the server's logs. Combine with Cluster.Crash / Restart for
// full crash-recovery scenarios.
func WithChaos(in *chaos.Injector) Option {
	return func(c *clusterConfig) { c.inj = in }
}

// WithAcquireTimeout bounds every lock acquire; blocked acquires fail
// with lockmgr.ErrAcquireTimeout instead of waiting forever (used by
// chaos harnesses to surface deadlocks as test failures).
func WithAcquireTimeout(d time.Duration) Option {
	return func(c *clusterConfig) { c.acqTimeout = d }
}

// WithGroupCommit enables the group-commit pipeline on every node:
// concurrent flush-mode committers share one log Append+Sync
// (wal.GroupWriter), and eager update broadcasts ship as one
// multi-record frame per peer per batch.
func WithGroupCommit() Option {
	return func(c *clusterConfig) { c.groupCommit = true }
}

// WithUncompressedUpdates disables DEFLATE payload compression of
// batched update frames: every batch ships as a plain MsgUpdateBatch.
// The ablation baseline for the wire bench; compression is otherwise on
// by default under WithGroupCommit (with a size heuristic that skips
// small or incompressible batches).
func WithUncompressedUpdates() Option {
	return func(c *clusterConfig) { c.noCompress = true }
}

// WithSendWindow bounds, per peer on every node, the bytes queued plus
// in flight in the batch sender (default 1 MiB). A full window blocks
// the committing transaction — backpressure toward the slow peer —
// instead of buffering without bound.
func WithSendWindow(bytes int) Option {
	return func(c *clusterConfig) { c.sendWindow = bytes }
}

// WithSendStallTimeout sets how long a commit blocks on one peer's full
// send window before the slow-peer policy drops that peer's backlog in
// favor of the server-log pull backstop (default 500ms; only effective
// when the pull path is configured).
func WithSendStallTimeout(d time.Duration) Option {
	return func(c *clusterConfig) { c.sendStall = d }
}

// WithTracing gives every node a trace ring of the given span capacity,
// recording the commit path (begin → lock → group-commit → disk → net →
// peer apply) for Cluster.Tracer to dump or inspect.
func WithTracing(capacity int) Option {
	return func(c *clusterConfig) { c.traceCap = capacity }
}

// WithApplyWorkers sets the size of every node's parallel apply worker
// pool (default min(GOMAXPROCS, 8)). Records on disjoint lock chains
// install concurrently; each chain keeps its §3.4 order.
func WithApplyWorkers(k int) Option {
	return func(c *clusterConfig) { c.applyWorkers = k }
}

// WithSerialApply restores the pre-pipeline single-goroutine applier on
// every node (the ablation baseline for the parallel apply pipeline).
func WithSerialApply() Option {
	return func(c *clusterConfig) { c.serialApply = true }
}

// WithMembership gives every node a heartbeat failure detector and an
// epoch fence on its update traffic: dead peers are evicted, their lock
// tokens reclaimed by the survivors, and delayed pre-eviction update
// frames are dropped at delivery. Use Cluster.Kill / Rejoin for live
// (non-quiesced-surgery) failure scenarios.
func WithMembership(o MembershipOptions) Option {
	return func(c *clusterConfig) { c.member = &o }
}

// WithLockMigration turns on dominant-writer lock-home migration on
// every node: a home that sees another node generate a decisive
// majority of a lock's demand hands that lock's queue and token-mint
// authority to it through a fenced three-message exchange. With
// WithMembership the migration epoch rides the membership epoch, so
// handoffs fenced before an eviction cannot land after it.
func WithLockMigration() Option {
	return func(c *clusterConfig) { c.migrate = true }
}

// WithInterestRouting narrows eager update broadcast to the peers that
// registered interest in the written locks (interest is seeded by lock
// acquisition and replayed on rejoin). Requires WithStore: the implied
// pull-on-stall path is the correctness backstop for peers that have
// not yet announced interest.
func WithInterestRouting() Option {
	return func(c *clusterConfig) {
		c.interest = true
		c.useStore = true
	}
}

// storeClient is what a node needs from its storage attachment: the
// permanent-image interface, per-node log devices, and teardown. Both
// the plain/mirrored client (*store.Client) and the quorum client
// (*replstore.Client) satisfy it.
type storeClient interface {
	rvm.DataStore
	LogDevice(node uint32) wal.Device
	Close() error
}

// Cluster is a set of in-process nodes for experiments, examples, and
// tests. Production deployments wire the pieces directly (see
// cmd/storeserver and the package example).
type Cluster struct {
	cfg     *clusterConfig
	ids     []NodeID
	nodes   []*Node
	rvms    []*rvm.RVM
	meshes  []*netproto.TCPMesh
	hub     *netproto.Hub
	trs     []netproto.Transport
	srv     *store.Server
	replica *store.ReplicaPair
	qsrvs   []*store.Server   // quorum replicas (WithQuorumStore); nil slots are dead
	qaddrs  []string          // quorum replica addresses, index-aligned with qsrvs
	qadmin  *replstore.Client // admin quorum client (seeding, reconfiguration)
	clis    []storeClient
	logs    []wal.Device
	datas   []rvm.DataStore       // non-store configs: per-node stores (survive Crash)
	tracers []*obs.Tracer         // nil without WithTracing; survive Restart
	mons    []*membership.Monitor // nil without WithMembership
	down    []bool
	// diskFault[i], when set, wraps every wal device node i attaches —
	// its own redo log and each peer log it reads during catch-up —
	// letting tests inject read-back corruption, fsync lies, or full
	// disks on one node's storage path (SetDiskFaultWrap).
	diskFault []func(node uint32, dev wal.Device) wal.Device

	regions map[RegionID]int // mapped via MapAll, for Restart re-mapping
	segs    []Segment        // registered via AddSegmentAll

	homeRing *lockmgr.Ring // prebuilt placement ring over ids (surgery loops)
}

// NewLocalCluster builds k nodes (ids 1..k) connected per the options.
func NewLocalCluster(k int, opts ...Option) (*Cluster, error) {
	if k < 1 {
		return nil, fmt.Errorf("lbc: cluster needs at least one node")
	}
	cfg := &clusterConfig{
		versioned:  map[int]bool{},
		seedImages: map[RegionID][]byte{},
	}
	for _, o := range opts {
		o(cfg)
	}

	cl := &Cluster{
		cfg:       cfg,
		nodes:     make([]*Node, k),
		rvms:      make([]*rvm.RVM, k),
		meshes:    make([]*netproto.TCPMesh, k),
		trs:       make([]netproto.Transport, k),
		clis:      make([]storeClient, k),
		logs:      make([]wal.Device, k),
		datas:     make([]rvm.DataStore, k),
		tracers:   make([]*obs.Tracer, k),
		mons:      make([]*membership.Monitor, k),
		down:      make([]bool, k),
		diskFault: make([]func(node uint32, dev wal.Device) wal.Device, k),
		regions:   map[RegionID]int{},
	}
	cl.ids = make([]NodeID, k)
	for i := range cl.ids {
		cl.ids[i] = NodeID(i + 1)
	}
	cl.homeRing = lockmgr.NewRing(cl.ids)

	// Optional storage server.
	if cfg.useStore {
		if cfg.quorum > 0 {
			if cfg.quorum < 3 {
				return nil, fmt.Errorf("lbc: quorum store needs at least 3 replicas")
			}
			for r := 0; r < cfg.quorum; r++ {
				srv, err := store.NewServer("127.0.0.1:0", store.ServerOptions{})
				if err != nil {
					cl.Close()
					return nil, err
				}
				cl.qsrvs = append(cl.qsrvs, srv)
				cl.qaddrs = append(cl.qaddrs, srv.Addr())
			}
			if err := replstore.Bootstrap(cl.qaddrs); err != nil {
				cl.Close()
				return nil, err
			}
			admin, err := replstore.DialView(cl.qaddrs, replstore.Options{})
			if err != nil {
				cl.Close()
				return nil, err
			}
			cl.qadmin = admin
			for id, img := range cfg.seedImages {
				if err := admin.StoreRegion(uint32(id), img); err != nil {
					cl.Close()
					return nil, err
				}
			}
		} else if cfg.replicated {
			pair, err := store.NewReplicaPair("127.0.0.1:0", "127.0.0.1:0", store.ServerOptions{})
			if err != nil {
				return nil, err
			}
			cl.replica = pair
			cl.srv = pair.Primary
		} else {
			srv, err := store.NewServer("127.0.0.1:0", store.ServerOptions{})
			if err != nil {
				return nil, err
			}
			cl.srv = srv
		}
		if cl.srv != nil {
			for id, img := range cfg.seedImages {
				if err := cl.srv.Data().StoreRegion(uint32(id), img); err != nil {
					cl.Close()
					return nil, err
				}
			}
		}
	}

	// Transport.
	if cfg.tcp {
		for i, id := range cl.ids {
			m, err := netproto.NewTCPMesh(id, "127.0.0.1:0", map[NodeID]string{})
			if err != nil {
				cl.Close()
				return nil, err
			}
			cl.meshes[i] = m
			cl.trs[i] = cl.wrapTransport(m)
		}
		for i, m := range cl.meshes {
			for j, o := range cl.meshes {
				if i != j {
					m.SetPeer(cl.ids[j], o.Addr())
				}
			}
		}
	} else {
		cl.hub = netproto.NewHub()
		for i, id := range cl.ids {
			cl.trs[i] = cl.wrapTransport(cl.hub.Endpoint(id))
		}
	}

	// Nodes.
	for i := range cl.ids {
		if err := cl.startNode(i, false); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

// wrapTransport attaches the chaos injector to a raw transport, when
// one is configured.
func (c *Cluster) wrapTransport(tr netproto.Transport) netproto.Transport {
	if c.cfg.inj != nil {
		return chaos.WrapTransport(tr, c.cfg.inj)
	}
	return tr
}

// startNode builds node i's storage attachments, RVM instance, and
// coherency node on top of the already-built transport c.trs[i].
// With restart set it resumes the node's existing log (commit
// sequence continues past the pre-crash records).
func (c *Cluster) startNode(i int, restart bool) error {
	id := c.ids[i]
	cfg := c.cfg
	if cfg.traceCap > 0 && c.tracers[i] == nil {
		c.tracers[i] = obs.NewTracer(uint32(id), cfg.traceCap)
	}
	var log wal.Device
	var data rvm.DataStore
	var peerLogs coherency.PeerLogReader
	if cfg.useStore && cfg.quorum > 0 {
		// Each node gets its own quorum client over the current view (a
		// restarted node may come back after a reconfiguration).
		qc, err := replstore.DialView(c.qadmin.View().Members,
			replstore.Options{Trace: c.tracers[i]})
		if err != nil {
			return err
		}
		c.clis[i] = qc
		log = qc.LogDevice(uint32(id))
		data = qc
		peerLogs = func(node uint32) wal.Device { return qc.LogDevice(node) }
	} else if cfg.useStore {
		cli, err := store.Dial(c.srv.Addr())
		if err != nil {
			return err
		}
		c.clis[i] = cli
		log = cli.LogDevice(uint32(id))
		data = cli
		peerLogs = func(node uint32) wal.Device { return cli.LogDevice(node) }
	} else {
		if restart {
			// Re-attach the node's surviving private devices.
			log = c.logs[i]
			data = c.datas[i]
		} else if cfg.diskLogDir != "" {
			var err error
			log, err = wal.OpenFileDevice(filepath.Join(cfg.diskLogDir, fmt.Sprintf("node-%d.log", id)))
			if err != nil {
				return err
			}
			data = rvm.NewMemStore()
		} else {
			log = wal.NewMemDevice()
			data = rvm.NewMemStore()
		}
		if !restart {
			for rid, img := range cfg.seedImages {
				if err := data.StoreRegion(uint32(rid), img); err != nil {
					return err
				}
			}
		}
	}
	c.logs[i] = log
	c.datas[i] = data
	if cfg.inj != nil && cfg.useStore {
		log = chaos.WrapDevice(log, cfg.inj, fmt.Sprintf("node-%d", id))
	}
	if wrap := c.diskFault[i]; wrap != nil {
		log = wrap(uint32(id), log)
		if peerLogs != nil {
			// Wrap each peer device exactly once and cache it: the
			// closure is called on every catch-up pass, and re-wrapping
			// would re-arm one-shot faults meant to fire a single time.
			base := peerLogs
			var mu sync.Mutex
			cache := map[uint32]wal.Device{}
			peerLogs = func(node uint32) wal.Device {
				mu.Lock()
				defer mu.Unlock()
				if d, ok := cache[node]; ok {
					return d
				}
				d := wrap(node, base(node))
				cache[node] = d
				return d
			}
		}
	}

	r, err := rvm.Open(rvm.Options{
		Node: uint32(id), Log: log, Data: data,
		Policy: cfg.policy, ResumeLog: restart,
		GroupCommit: cfg.groupCommit,
		Trace:       c.tracers[i],
	})
	if err != nil {
		return err
	}
	c.rvms[i] = r
	if cfg.tcp && c.meshes[i] != nil {
		// Send-retry exhaustion lands in the node's own accumulator.
		c.meshes[i].SetStats(r.Stats())
	}

	// Live membership: the monitor rides the (possibly chaos-wrapped)
	// transport directly — its control frames must reach evicted nodes
	// during rejoin — while coherency and the lock manager sit behind a
	// fence that epoch-tags update frames and quarantines the evicted.
	tr := c.trs[i]
	var mon *membership.Monitor
	if cfg.member != nil {
		mon = membership.New(membership.Config{
			Transport:    c.trs[i],
			Nodes:        c.ids,
			Clock:        cfg.member.Clock,
			SuspectAfter: cfg.member.SuspectAfter,
			EvictAfter:   cfg.member.EvictAfter,
			Stats:        r.Stats(),
			Trace:        c.tracers[i],
		})
		c.mons[i] = mon
		tr = membership.NewFence(c.trs[i], mon, r.Stats(), []uint8{
			coherency.MsgUpdate, coherency.MsgUpdateStd,
			coherency.MsgUpdateBatch, coherency.MsgUpdateBatchC,
		})
	}
	n, err := coherency.New(coherency.Options{
		RVM:              r,
		Transport:        tr,
		Nodes:            c.ids,
		Propagation:      cfg.propagation,
		Wire:             cfg.wire,
		PageSize:         cfg.pageSize,
		PeerLogs:         peerLogs,
		Versioned:        cfg.versioned[i],
		CheckLocks:       cfg.checkLocks,
		PullOnStall:      cfg.inj != nil && cfg.useStore,
		InterestRouting:  cfg.interest,
		AcquireTimeout:   cfg.acqTimeout,
		BatchUpdates:     cfg.groupCommit,
		NoCompress:       cfg.noCompress,
		SendWindow:       cfg.sendWindow,
		SendStallTimeout: cfg.sendStall,
		ApplyWorkers:     cfg.applyWorkers,
		SerialApply:      cfg.serialApply,
		Membership:       mon,
	})
	if err != nil {
		return err
	}
	if cfg.migrate {
		var epoch func() uint32
		if mon != nil {
			epoch = mon.Epoch
		}
		n.Locks().EnableMigration(epoch)
	}
	if mon != nil && cfg.member.Interval > 0 {
		mon.Start(cfg.member.Interval)
	}
	c.nodes[i] = n
	return nil
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Tracer returns node i's trace ring (nil without WithTracing). The
// ring survives Crash/Restart, so post-recovery spans append to the
// pre-crash history.
func (c *Cluster) Tracer(i int) *obs.Tracer { return c.tracers[i] }

// Node returns node i (0-based). Nil while the node is crashed.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Down reports whether node i is currently crashed.
func (c *Cluster) Down(i int) bool { return c.down[i] }

// Log returns node i's redo-log device (for merging and recovery).
func (c *Cluster) Log(i int) wal.Device { return c.logs[i] }

// SetDiskFaultWrap installs a per-device fault wrapper on node i,
// applied the next time the node (re)attaches its storage: the node's
// own redo log and every peer log it opens during catch-up pass
// through wrap(owner, dev). Install it between Crash and Restart to
// model a node coming back on damaged media (see
// internal/fault.Device). A nil wrap clears the hook. Running nodes
// are unaffected until they restart.
func (c *Cluster) SetDiskFaultWrap(i int, wrap func(node uint32, dev wal.Device) wal.Device) {
	c.diskFault[i] = wrap
}

// Store returns the embedded storage server, if WithStore was used.
func (c *Cluster) Store() *store.Server { return c.srv }

// StoreBackup returns the backup server when WithReplicatedStore was
// used, or nil.
func (c *Cluster) StoreBackup() *store.Server {
	if c.replica == nil {
		return nil
	}
	return c.replica.Backup
}

// StoreReplica returns quorum replica r's server (WithQuorumStore
// only; nil while that replica is killed).
func (c *Cluster) StoreReplica(r int) *store.Server {
	if r < 0 || r >= len(c.qsrvs) {
		return nil
	}
	return c.qsrvs[r]
}

// StoreReplicaAddrs returns the quorum replica addresses in slot
// order. A killed-and-replaced slot carries the replacement's address.
func (c *Cluster) StoreReplicaAddrs() []string {
	return append([]string(nil), c.qaddrs...)
}

// QuorumAdmin returns the administrative quorum client (WithQuorumStore
// only): reconfiguration, digests, and lag inspection run through it.
func (c *Cluster) QuorumAdmin() *replstore.Client { return c.qadmin }

// KillStoreReplica fails quorum replica r abruptly: its listener and
// connections die mid-stream, its state is gone. Commits keep flowing
// through the surviving majority.
func (c *Cluster) KillStoreReplica(r int) error {
	if r < 0 || r >= len(c.qsrvs) || c.qsrvs[r] == nil {
		return fmt.Errorf("lbc: no live quorum replica %d", r)
	}
	err := c.qsrvs[r].Close()
	c.qsrvs[r] = nil
	return err
}

// ReplaceStoreReplica starts a fresh empty server in dead slot r,
// catches it up from the surviving majority (snapshot plus log tail),
// and installs the next view with the replacement in the dead
// replica's seat — written through both the old and the new view's
// majorities. Every node's quorum client adopts the new view before
// the call returns.
func (c *Cluster) ReplaceStoreReplica(r int) (string, error) {
	if r < 0 || r >= len(c.qsrvs) {
		return "", fmt.Errorf("lbc: no quorum replica slot %d", r)
	}
	if c.qsrvs[r] != nil {
		return "", fmt.Errorf("lbc: quorum replica %d is still alive", r)
	}
	fresh, err := store.NewServer("127.0.0.1:0", store.ServerOptions{})
	if err != nil {
		return "", err
	}
	if err := c.qadmin.ReplaceReplica(c.qaddrs[r], fresh.Addr()); err != nil {
		fresh.Close()
		return "", err
	}
	c.qsrvs[r] = fresh
	c.qaddrs[r] = fresh.Addr()
	c.RefreshQuorumViews()
	return fresh.Addr(), nil
}

// RefreshQuorumViews makes every live node's quorum client (and the
// admin client) re-read the current view, dropping connections to
// departed replicas and dialing new members.
func (c *Cluster) RefreshQuorumViews() {
	for i, cli := range c.clis {
		if c.down[i] || cli == nil {
			continue
		}
		if qc, ok := cli.(*replstore.Client); ok {
			qc.RefreshView()
		}
	}
	if c.qadmin != nil {
		c.qadmin.RefreshView()
	}
}

// QuiesceQuorum drains the straggler replication goroutines on every
// quorum client — after it returns, every write acknowledged so far
// has landed on every replica it will ever land on, so per-replica
// digests are comparable.
func (c *Cluster) QuiesceQuorum() {
	for i, cli := range c.clis {
		if c.down[i] || cli == nil {
			continue
		}
		if qc, ok := cli.(*replstore.Client); ok {
			qc.Quiesce()
		}
	}
	if c.qadmin != nil {
		c.qadmin.Quiesce()
	}
}

// MapAll maps the region on every live node.
func (c *Cluster) MapAll(id RegionID, size int) error {
	c.regions[id] = size
	for i, n := range c.nodes {
		if c.down[i] {
			continue
		}
		if _, err := n.MapRegion(id, size); err != nil {
			return err
		}
	}
	return nil
}

// Barrier waits until every live node has seen every live peer's
// mapping of the region — the startup point after which eager
// broadcasts reach all caches.
func (c *Cluster) Barrier(id RegionID) error {
	live := 0
	for i := range c.nodes {
		if !c.down[i] {
			live++
		}
	}
	for i, n := range c.nodes {
		if c.down[i] {
			continue
		}
		if err := n.WaitPeers(id, live-1, 10*time.Second); err != nil {
			return err
		}
	}
	return nil
}

// AddSegmentAll registers the segment on every live node.
func (c *Cluster) AddSegmentAll(seg Segment) {
	c.segs = append(c.segs, seg)
	for i, n := range c.nodes {
		if !c.down[i] {
			n.AddSegment(seg)
		}
	}
}

// Checkpoint runs a fuzzy coordinated checkpoint from node i over
// every registered segment lock: the image sweep proceeds concurrently
// with commits, a short final quiesce stamps the durable marker, and
// every node's log head is trimmed online to its raced-commit tail.
func (c *Cluster) Checkpoint(i int, timeout time.Duration) error {
	if c.down[i] {
		return fmt.Errorf("lbc: checkpoint coordinator node %d is down", c.ids[i])
	}
	return c.nodes[i].CoordinatedCheckpoint(c.lockIDs(), timeout)
}

// lockIDs returns the registered segment lock ids in ascending order
// (the chaos harness's deterministic iteration order).
func (c *Cluster) lockIDs() []uint32 {
	ids := make([]uint32, 0, len(c.segs))
	for _, s := range c.segs {
		ids = append(ids, s.LockID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// homeIndex returns the slice index of a lock's ring birth home (ids
// are 1..k in slice order). The placement ring is prebuilt once for
// the roster — the surgery paths resolve every registered lock in a
// loop.
func (c *Cluster) homeIndex(lockID uint32) int {
	home := c.homeRing.HomeOf(lockID)
	for i, id := range c.ids {
		if id == home {
			return i
		}
	}
	return 0
}

// actingHomeIndex resolves the node currently managing lockID for the
// crash-surgery paths: a live node's installed migration override
// when it names a live node other than `dying`, else the ring birth
// home. Queue-tail repair must land at the acting manager — with
// WithLockMigration a lock's role may have moved off its birth home,
// and repairing the birth home while an override routes requests
// elsewhere leaves the acting home pointing at the corpse.
func (c *Cluster) actingHomeIndex(lockID uint32, dying int) int {
	for j := range c.nodes {
		if c.down[j] || j == dying || c.nodes[j] == nil {
			continue
		}
		if h, ok := c.nodes[j].Locks().MigratedHome(lockID); ok {
			for i, id := range c.ids {
				if id == h && i != dying && !c.down[i] {
					return i
				}
			}
		}
	}
	return c.homeIndex(lockID)
}

// adopterFor picks the node that inherits a dying node's lock token:
// the lock's acting manager when alive, else the lowest-id live node.
func (c *Cluster) adopterFor(lockID uint32, dying int) int {
	mgr := c.actingHomeIndex(lockID, dying)
	if mgr != dying && !c.down[mgr] {
		return mgr
	}
	for i := range c.ids {
		if i != dying && !c.down[i] {
			return i
		}
	}
	return -1
}

// Crash kills node i: its coherency node, lock manager, transport
// endpoint, and store connection all go away; volatile state (lock
// tokens, interlock counters, cached images) is lost. Durable state —
// the node's redo log and the permanent images — survives. Lock
// tokens held by the dying node are volatile, so the supervisor
// relocates each one to a live node (the lock's manager when
// possible) and repairs the manager-side waiter queue; without this a
// crash would leave those locks unholdable forever.
//
// The cluster must be quiescent (no transactions or token passes in
// flight) when Crash is called; the harness crashes nodes only
// between rounds.
func (c *Cluster) Crash(i int) error {
	if c.down[i] {
		return fmt.Errorf("lbc: node %d already down", c.ids[i])
	}
	live := 0
	for j := range c.ids {
		if j != i && !c.down[j] {
			live++
		}
	}
	// Token surgery, while the dying node's state is still readable.
	// The queue tail is repaired at the acting manager — the migrated
	// home when one is installed, else the ring birth home — so a lock
	// whose role moved off its birth home does not keep forwarding
	// passes to the corpse.
	if live > 0 {
		for _, lockID := range c.lockIDs() {
			seq, lastWrite, have := c.nodes[i].Locks().TokenState(lockID)
			if !have {
				continue
			}
			ad := c.adopterFor(lockID, i)
			if ad < 0 {
				continue
			}
			c.nodes[ad].Locks().AdoptToken(lockID, seq, lastWrite)
			mgr := c.actingHomeIndex(lockID, i)
			if mgr != i && !c.down[mgr] {
				c.nodes[mgr].Locks().SetQueueTail(lockID, c.ids[ad])
			}
		}
		// Migration state aimed at the corpse is the supervisor's to
		// clean up here (no failure detector runs EvictPeer on this
		// path): overrides routing to it fall back to ring placement,
		// offers in flight to it abort.
		for j := range c.nodes {
			if j == i || c.down[j] {
				continue
			}
			c.nodes[j].Locks().DropMigratedHomesTo(c.ids[i])
		}
	}
	c.stopNode(i)
	return nil
}

// stopNode tears down node i's runtime state (shared by Crash and
// Kill): coherency node, detector, transport endpoint, store client.
func (c *Cluster) stopNode(i int) {
	if c.mons[i] != nil {
		c.mons[i].Close()
		c.mons[i] = nil
	}
	c.nodes[i].Close()
	c.nodes[i] = nil
	c.rvms[i] = nil
	if c.cfg.tcp {
		c.meshes[i].Close()
		c.meshes[i] = nil
	} else {
		c.hub.Drop(c.ids[i])
	}
	if c.clis[i] != nil {
		c.clis[i].Close()
		c.clis[i] = nil
	}
	c.down[i] = true
}

// Kill fails node i abruptly: no token surgery, no goodbye — exactly
// what a real crash looks like to the survivors. Requires
// WithMembership: the failure detector notices the silence, evicts the
// node, and the survivors reclaim its lock tokens on their own (unlike
// Crash, where a supervisor relocates tokens by fiat). Durable state
// survives for a later Rejoin.
func (c *Cluster) Kill(i int) error {
	if c.down[i] {
		return fmt.Errorf("lbc: node %d already down", c.ids[i])
	}
	if c.cfg.member == nil {
		return fmt.Errorf("lbc: Kill requires WithMembership (use Crash)")
	}
	c.stopNode(i)
	return nil
}

// Restart brings a crashed node back: a fresh transport endpoint and
// store connection, an RVM instance that resumes the node's surviving
// redo log (so new commits never reuse a pre-crash record identity),
// re-registered segments and region mappings, repaired lock-token
// bookkeeping, and a server-log catch-up that replays every committed
// record in merge order to rebuild the cached images and interlock
// state. Requires a store-backed cluster (WithStore /
// WithReplicatedStore): private in-memory images do not survive a
// crash, the server's logs do.
func (c *Cluster) Restart(i int) error {
	if !c.down[i] {
		return fmt.Errorf("lbc: node %d is not down", c.ids[i])
	}
	if !c.cfg.useStore {
		return fmt.Errorf("lbc: Restart requires a store-backed cluster")
	}
	id := c.ids[i]

	// Fresh transport endpoint.
	if c.cfg.tcp {
		m, err := netproto.NewTCPMesh(id, "127.0.0.1:0", map[NodeID]string{})
		if err != nil {
			return err
		}
		for j, o := range c.meshes {
			if j == i || o == nil {
				continue
			}
			o.SetPeer(id, m.Addr())
			m.SetPeer(c.ids[j], o.Addr())
		}
		c.meshes[i] = m
		c.trs[i] = c.wrapTransport(m)
	} else {
		c.trs[i] = c.wrapTransport(c.hub.Endpoint(id))
	}

	if err := c.startNode(i, true); err != nil {
		return err
	}
	c.down[i] = false

	// Rebuild the coherency-layer working set.
	for _, seg := range c.segs {
		c.nodes[i].AddSegment(seg)
	}
	regs := make([]RegionID, 0, len(c.regions))
	for rid := range c.regions {
		regs = append(regs, rid)
	}
	sort.Slice(regs, func(a, b int) bool { return regs[a] < regs[b] })
	for _, rid := range regs {
		if _, err := c.nodes[i].MapRegion(rid, c.regions[rid]); err != nil {
			return err
		}
		for j := range c.ids {
			if j == i || c.down[j] {
				continue
			}
			// Seed both mapping tables directly: the rejoining node
			// must not wait on a best-effort announcement round.
			c.nodes[i].NotePeerRegion(c.ids[j], rid)
			c.nodes[j].NotePeerRegion(id, rid)
		}
	}

	// Migration overrides are volatile routing state the fresh manager
	// lost: reseed them from a survivor so the restarted node routes
	// to acting homes instead of reclaiming migrated roles by ring
	// position. (Survivors agree on the override set — the handoff
	// broadcast is epoch-fenced — so any live view suffices.)
	c.reseedOverrides(i)

	// Lock surgery: a fresh manager believes it owns the token for
	// every lock it manages, but tokens relocated at crash time live
	// elsewhere — forfeit those and point the waiter queue at the
	// current holder. The tail repair matters only when this node is
	// the acting manager; for a lock whose role migrated to a live
	// survivor, that survivor's queue state is intact and requests
	// from here forward to it through the reseeded override.
	for _, lockID := range c.lockIDs() {
		holder := -1
		for j := range c.ids {
			if j == i || c.down[j] {
				continue
			}
			if c.nodes[j].Locks().HasToken(lockID) {
				holder = j
				break
			}
		}
		if holder < 0 {
			continue // unused lock: the fresh manager's token is fine
		}
		if c.homeIndex(lockID) == i {
			c.nodes[i].Locks().ForfeitToken(lockID)
			if c.actingHomeIndex(lockID, -1) == i {
				c.nodes[i].Locks().SetQueueTail(lockID, c.ids[holder])
			}
		}
	}

	// Catch up from the server's logs: recovery proper (merge order,
	// interlock seeding) — the restarted cache converges with the
	// cluster before running new transactions.
	return c.nodes[i].CatchUp()
}

// reseedOverrides copies the migration overrides a live survivor
// holds onto freshly restarted node i (its own override table died
// with it). Overrides naming node i itself are skipped: the roles it
// held were dropped or reclaimed while it was down, and a home
// update or fresh handoff must re-establish them.
func (c *Cluster) reseedOverrides(i int) {
	for j := range c.nodes {
		if j == i || c.down[j] || c.nodes[j] == nil {
			continue
		}
		for lockID, home := range c.nodes[j].Locks().MigratedHomes() {
			if home == c.ids[i] {
				continue
			}
			c.nodes[i].Locks().InstallMigratedHome(lockID, home)
		}
		return
	}
}

// Rejoin brings a Killed (evicted) node back through the membership
// protocol: a fresh endpoint and node resume the durable state, a
// ready=false Join learns the cluster's current epoch (so outgoing
// update frames tag correctly while catching up), the server-log
// catch-up replays every committed record, and a ready=true Join asks
// the survivors to readmit the node — only then do their detectors
// mark it alive again and their broadcasts include it. No cluster
// restart, no supervisor token fiat: tokens the node once held now
// live with the survivors (reclaim), and the usual rejoin surgery
// points its manager-side queues at the current holders.
func (c *Cluster) Rejoin(i int) error {
	if !c.down[i] {
		return fmt.Errorf("lbc: node %d is not down", c.ids[i])
	}
	if c.cfg.member == nil {
		return fmt.Errorf("lbc: Rejoin requires WithMembership (use Restart)")
	}
	if !c.cfg.useStore {
		return fmt.Errorf("lbc: Rejoin requires a store-backed cluster")
	}
	id := c.ids[i]

	if c.cfg.tcp {
		m, err := netproto.NewTCPMesh(id, "127.0.0.1:0", map[NodeID]string{})
		if err != nil {
			return err
		}
		for j, o := range c.meshes {
			if j == i || o == nil {
				continue
			}
			o.SetPeer(id, m.Addr())
			m.SetPeer(c.ids[j], o.Addr())
		}
		c.meshes[i] = m
		c.trs[i] = c.wrapTransport(m)
	} else {
		c.trs[i] = c.wrapTransport(c.hub.Endpoint(id))
	}
	if err := c.startNode(i, true); err != nil {
		return err
	}
	c.down[i] = false
	mon := c.mons[i]

	// Phase one: learn the current epoch before any epoch-tagged frame
	// leaves this node — frames tagged with a stale epoch would be
	// fenced at every survivor.
	ep, err := mon.Join(false, 5*time.Second)
	if err != nil {
		return fmt.Errorf("lbc: rejoin node %d: %w", id, err)
	}
	mon.SetEpoch(ep)

	// Rebuild the coherency working set. Survivor fences still drop
	// this node's announcements (it is evicted until the ready Join),
	// so both sides' mapping tables are seeded directly.
	for _, seg := range c.segs {
		c.nodes[i].AddSegment(seg)
	}
	regs := make([]RegionID, 0, len(c.regions))
	for rid := range c.regions {
		regs = append(regs, rid)
	}
	sort.Slice(regs, func(a, b int) bool { return regs[a] < regs[b] })
	for _, rid := range regs {
		if _, err := c.nodes[i].MapRegion(rid, c.regions[rid]); err != nil {
			return err
		}
		for j := range c.ids {
			if j == i || c.down[j] {
				continue
			}
			c.nodes[i].NotePeerRegion(c.ids[j], rid)
			c.nodes[j].NotePeerRegion(id, rid)
		}
	}

	// Survivors may still route some locks to migrated homes (their
	// overrides outlive an unrelated node's eviction); the rejoiner's
	// fresh manager must learn them or it reclaims those roles by ring
	// position.
	c.reseedOverrides(i)

	// Tokens this node once held were reclaimed by the survivors while
	// it was dead: forfeit the fresh state's claim on home-managed locks
	// and point their queues at the current holders. As in Restart, the
	// tail repair lands here only when this node is the acting manager.
	for _, lockID := range c.lockIDs() {
		holder := -1
		for j := range c.ids {
			if j == i || c.down[j] {
				continue
			}
			if c.nodes[j].Locks().HasToken(lockID) {
				holder = j
				break
			}
		}
		if holder < 0 {
			continue
		}
		if c.homeIndex(lockID) == i {
			c.nodes[i].Locks().ForfeitToken(lockID)
			if c.actingHomeIndex(lockID, -1) == i {
				c.nodes[i].Locks().SetQueueTail(lockID, c.ids[holder])
			}
		}
	}

	// Catch up from the server's logs to the cluster's current image.
	if err := c.nodes[i].CatchUp(); err != nil {
		return err
	}

	// Phase two: announce readiness. On return every reachable survivor
	// has readmitted this node (their OnRejoin callbacks restore it to
	// the broadcast sets) and its next acquire re-enters the token
	// protocol at the current epoch.
	if _, err := mon.Join(true, 5*time.Second); err != nil {
		return fmt.Errorf("lbc: rejoin node %d: %w", id, err)
	}
	return nil
}

// Membership returns node i's failure detector (nil without
// WithMembership, or while the node is down).
func (c *Cluster) Membership(i int) *membership.Monitor { return c.mons[i] }

// TickMembership runs one failure-detector round on every live node.
// Deterministic harnesses drive detection explicitly: advance the
// shared ManualClock, then tick.
func (c *Cluster) TickMembership() {
	for i, mon := range c.mons {
		if mon != nil && !c.down[i] {
			mon.Tick()
		}
	}
}

// AwaitEvicted blocks until every live node's detector has evicted
// node victim (the eviction broadcast and callbacks are asynchronous).
func (c *Cluster) AwaitEvicted(victim int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		all := true
		for i, mon := range c.mons {
			if mon == nil || c.down[i] || i == victim {
				continue
			}
			if !mon.Evicted(c.ids[victim]) {
				all = false
			}
		}
		if all {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("lbc: node %d not evicted everywhere after %v", c.ids[victim], timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// AwaitLiveTokens blocks until every registered lock's token is owned
// by some live node — i.e. the survivors' reclaim protocol has
// finished re-minting whatever the dead took with it.
func (c *Cluster) AwaitLiveTokens(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var stuck []uint32
		for _, lockID := range c.lockIDs() {
			found := false
			for j := range c.ids {
				if c.down[j] {
					continue
				}
				if c.nodes[j].Locks().HasToken(lockID) {
					found = true
					break
				}
			}
			if !found {
				stuck = append(stuck, lockID)
			}
		}
		if len(stuck) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("lbc: locks %v have no live token holder after %v", stuck, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// FlushChaos delivers any reorder hold-backs still parked in the
// chaos injector on every live node's transport (no-op without
// WithChaos). Harnesses call it when quiescing.
func (c *Cluster) FlushChaos() error {
	for i, tr := range c.trs {
		if c.down[i] {
			continue
		}
		if ct, ok := tr.(*chaos.Transport); ok {
			if err := ct.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close tears down nodes, transports, clients, and the server.
func (c *Cluster) Close() error {
	for _, mon := range c.mons {
		if mon != nil {
			mon.Close()
		}
	}
	for _, n := range c.nodes {
		if n != nil {
			n.Close()
		}
	}
	for _, m := range c.meshes {
		if m != nil {
			m.Close()
		}
	}
	for _, cli := range c.clis {
		if cli != nil {
			cli.Close()
		}
	}
	if c.qadmin != nil {
		c.qadmin.Close()
	}
	for _, s := range c.qsrvs {
		if s != nil {
			s.Close()
		}
	}
	if c.replica != nil {
		c.replica.Close()
	} else if c.srv != nil {
		c.srv.Close()
	}
	return nil
}
