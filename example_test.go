package lbc_test

import (
	"fmt"
	"log"

	lbc "lbc"
	"lbc/internal/rvm"
	"lbc/internal/wal"
)

// Example shows the full life of a shared update: committed on one
// node, observed under the lock on another, and recovered from the
// merged logs.
func Example() {
	cluster, err := lbc.NewLocalCluster(2)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.MapAll(1, 4096); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Barrier(1); err != nil {
		log.Fatal(err)
	}

	// Node A commits under segment lock 0.
	a := cluster.Node(0)
	tx := a.Begin(lbc.NoRestore)
	if err := tx.Acquire(0); err != nil {
		log.Fatal(err)
	}
	if err := tx.Write(a.RVM().Region(1), 0, []byte("shared state")); err != nil {
		log.Fatal(err)
	}
	if _, err := tx.Commit(lbc.NoFlush); err != nil {
		log.Fatal(err)
	}

	// Node B acquires the same lock: the interlock guarantees the
	// update has been applied before the acquire returns.
	b := cluster.Node(1)
	tx2 := b.Begin(lbc.NoRestore)
	if err := tx2.Acquire(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node B reads %q\n", b.RVM().Region(1).Bytes()[:12])
	tx2.Commit(lbc.NoFlush)

	// The same log records recover the database.
	merged := wal.NewMemDevice()
	if _, err := lbc.MergeLogs(merged, cluster.Log(0), cluster.Log(1)); err != nil {
		log.Fatal(err)
	}
	data := rvm.NewMemStore()
	data.StoreRegion(1, make([]byte, 4096))
	res, err := lbc.Recover(merged, data, false)
	if err != nil {
		log.Fatal(err)
	}
	img, _ := data.LoadRegion(1)
	fmt.Printf("recovery replayed %d records: %q\n", res.Records, img[:12])
	// Output:
	// node B reads "shared state"
	// recovery replayed 2 records: "shared state"
}

// ExampleNewLocalCluster_withStore runs the paper's client/server
// configuration: logs and database live on a storage server and
// commits flush to it.
func ExampleNewLocalCluster_withStore() {
	cluster, err := lbc.NewLocalCluster(2, lbc.WithStore())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.MapAll(1, 1024)
	cluster.Barrier(1)

	n := cluster.Node(0)
	tx := n.Begin(lbc.NoRestore)
	tx.Acquire(0)
	tx.Write(n.RVM().Region(1), 0, []byte("durable"))
	if _, err := tx.Commit(lbc.Flush); err != nil {
		log.Fatal(err)
	}
	dev, _ := cluster.Store().Log(1)
	sz, _ := dev.Size()
	fmt.Printf("server log holds %v bytes: %v\n", sz > 0, err == nil)
	// Output:
	// server log holds true bytes: true
}

// ExampleTx_Abort demonstrates restore-mode rollback: the image is
// restored and no coherency traffic is generated.
func ExampleTx_Abort() {
	cluster, err := lbc.NewLocalCluster(1)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	cluster.MapAll(1, 64)

	n := cluster.Node(0)
	reg := n.RVM().Region(1)
	seed := n.Begin(lbc.NoRestore)
	seed.Acquire(0)
	seed.Write(reg, 0, []byte("keep"))
	seed.Commit(lbc.NoFlush)

	tx := n.Begin(lbc.Restore)
	tx.Acquire(0)
	tx.Write(reg, 0, []byte("oops"))
	if err := tx.Abort(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after abort: %q\n", reg.Bytes()[:4])
	// Output:
	// after abort: "keep"
}
