package lbc

import (
	"bytes"
	"testing"
	"time"

	"lbc/internal/rvm"
	"lbc/internal/wal"
)

func TestQuickstartFlow(t *testing.T) {
	cluster, err := NewLocalCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.MapAll(1, 1<<16); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Barrier(1); err != nil {
		t.Fatal(err)
	}
	a, b := cluster.Node(0), cluster.Node(1)

	tx := a.Begin(NoRestore)
	if err := tx.Acquire(0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(a.RVM().Region(1), 100, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(NoFlush); err != nil {
		t.Fatal(err)
	}

	tx2 := b.Begin(NoRestore)
	if err := tx2.Acquire(0); err != nil {
		t.Fatal(err)
	}
	got := append([]byte(nil), b.RVM().Region(1).Bytes()[100:105]...)
	tx2.Commit(NoFlush)
	if string(got) != "hello" {
		t.Fatalf("peer read %q", got)
	}
}

func TestClusterWithTCPAndStore(t *testing.T) {
	cluster, err := NewLocalCluster(2, WithTCP(), WithStore())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.MapAll(1, 4096); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Barrier(1); err != nil {
		t.Fatal(err)
	}
	a := cluster.Node(0)
	tx := a.Begin(NoRestore)
	tx.Acquire(0)
	tx.Write(a.RVM().Region(1), 0, []byte("durable+coherent"))
	if _, err := tx.Commit(Flush); err != nil {
		t.Fatal(err)
	}
	// The committed record reached the server's log for node 1.
	dev, err := cluster.Store().Log(1)
	if err != nil {
		t.Fatal(err)
	}
	txs, err := wal.ReadDevice(dev)
	if err != nil || len(txs) != 1 {
		t.Fatalf("server log holds %d records (%v)", len(txs), err)
	}
	// And the peer converged.
	b := cluster.Node(1)
	tx2 := b.Begin(NoRestore)
	tx2.Acquire(0)
	got := string(b.RVM().Region(1).Bytes()[:16])
	tx2.Commit(NoFlush)
	if got != "durable+coherent" {
		t.Fatalf("peer read %q", got)
	}
}

func TestClusterSeedImage(t *testing.T) {
	img := bytes.Repeat([]byte{0xEE}, 1024)
	cluster, err := NewLocalCluster(2, WithSeedImage(5, img))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.MapAll(5, len(img)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if !bytes.Equal(cluster.Node(i).RVM().Region(5).Bytes(), img) {
			t.Fatalf("node %d image not seeded", i+1)
		}
	}
}

func TestMergeAndRecoverFacade(t *testing.T) {
	cluster, err := NewLocalCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.MapAll(1, 4096)
	cluster.Barrier(1)

	for i := 0; i < 2; i++ {
		n := cluster.Node(i)
		tx := n.Begin(NoRestore)
		tx.Acquire(0)
		tx.Write(n.RVM().Region(1), uint64(i*8), []byte{byte(i + 1)})
		if _, err := tx.Commit(NoFlush); err != nil {
			t.Fatal(err)
		}
	}

	merged := wal.NewMemDevice()
	n, err := MergeLogs(merged, cluster.Log(0), cluster.Log(1))
	if err != nil || n != 2 {
		t.Fatalf("merged %d records, %v", n, err)
	}
	data := rvm.NewMemStore()
	data.StoreRegion(1, make([]byte, 4096))
	res, err := Recover(merged, data, true)
	if err != nil || res.Records != 2 {
		t.Fatalf("recover: %+v, %v", res, err)
	}
	img, _ := data.LoadRegion(1)
	if img[0] != 1 || img[8] != 2 {
		t.Fatalf("recovered image wrong: % x", img[:16])
	}
}

func TestVersionedOption(t *testing.T) {
	cluster, err := NewLocalCluster(2, WithVersioned(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.MapAll(1, 4096)
	cluster.Barrier(1)

	a, b := cluster.Node(0), cluster.Node(1)
	tx := a.Begin(NoRestore)
	tx.Acquire(0)
	tx.Write(a.RVM().Region(1), 0, []byte("buffered"))
	tx.Commit(NoFlush)

	// Reader accepts explicitly.
	if n := waitAccept(b); n != 1 {
		t.Fatalf("accepted %d records", n)
	}
}

func waitAccept(n *Node) int {
	for i := 0; i < 1000; i++ {
		if k := n.Accept(); k > 0 {
			return k
		}
		time.Sleep(time.Millisecond)
	}
	return 0
}
