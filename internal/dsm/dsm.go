// Package dsm implements the two page-fault-based DSM baselines the
// paper compares log-based coherency against (§4):
//
//   - Page ("Page" in Figures 1-3): page-locking DSM in the style of
//     IVY/Monads. A write fault grants the writer exclusive access to a
//     page; at commit the entire contents of every modified page are
//     transmitted to peers.
//
//   - CpyCmp ("Cpy/Cmp"): multiple-writer copy/compare DSM in the style
//     of Munin/TreadMarks. The first store to a page copies it to a
//     twin; at commit the modified page is compared with its twin and
//     only the differing bytes (diffs) are transmitted.
//
// Go's runtime owns SIGSEGV, so per-store user faults cannot drive the
// write barrier. Instead the engine derives the faulting page set from
// the same write declarations the Log engine sees: the first declared
// write that touches a page is exactly the store that would have
// faulted. All the byte movement those designs imply — twin copies,
// page compares, whole-page or diff transmission — is performed for
// real and timed; the trap cost itself is accounted as a fault count
// that the cost model (internal/costmodel) prices with either the
// paper's measured 360.1 us (Alpha OSF/1) or a host-measured value
// from internal/fault.
package dsm

import (
	"fmt"
	"sort"

	"lbc/internal/metrics"
	"lbc/internal/rvm"
	"lbc/internal/wal"
)

// Mode selects the baseline design.
type Mode int

const (
	// CpyCmp is the multiple-writer twin/diff engine.
	CpyCmp Mode = iota
	// Page is the page-locking whole-page engine.
	Page
)

func (m Mode) String() string {
	if m == Page {
		return "Page"
	}
	return "Cpy/Cmp"
}

// Engine tracks one transaction's page-grained write set. It is not
// safe for concurrent use (one engine per writer thread).
type Engine struct {
	mode     Mode
	pageSize int
	stats    *metrics.Stats

	touched map[uint64]bool   // page index -> touched (Page mode)
	twins   map[uint64][]byte // page index -> twin copy (CpyCmp mode)
	order   []uint64          // touch order, for deterministic commits
	region  *rvm.Region
	faults  int64
	// onFault, when set, is invoked once per simulated write fault
	// (hook for burning real trap time via internal/fault).
	onFault func()
}

// Options configures an Engine.
type Options struct {
	Mode     Mode
	PageSize int            // default 8192
	Stats    *metrics.Stats // default private
	OnFault  func()         // optional per-fault hook
}

// New creates an engine.
func New(opts Options) *Engine {
	if opts.PageSize == 0 {
		opts.PageSize = 8192
	}
	if opts.Stats == nil {
		opts.Stats = metrics.NewStats()
	}
	return &Engine{
		mode:     opts.Mode,
		pageSize: opts.PageSize,
		stats:    opts.Stats,
		touched:  map[uint64]bool{},
		twins:    map[uint64][]byte{},
		onFault:  opts.OnFault,
	}
}

// Stats returns the engine's metrics accumulator.
func (e *Engine) Stats() *metrics.Stats { return e.stats }

// Faults returns the number of simulated write faults so far.
func (e *Engine) Faults() int64 { return e.faults }

// PageSize returns the configured page size.
func (e *Engine) PageSize() int { return e.pageSize }

// Begin resets per-transaction state.
func (e *Engine) Begin(region *rvm.Region) {
	e.region = region
	for k := range e.touched {
		delete(e.touched, k)
	}
	for k := range e.twins {
		delete(e.twins, k)
	}
	e.order = e.order[:0]
}

// OnWrite declares an upcoming write of [off, off+n). The first write
// touching each page is the simulated fault; in CpyCmp mode it also
// copies the page to a twin (real memcpy, charged to the detect
// phase, as in Table 2's "page copy" row).
func (e *Engine) OnWrite(off uint64, n uint32) error {
	if e.region == nil {
		return fmt.Errorf("dsm: OnWrite before Begin")
	}
	end := off + uint64(n)
	if end > uint64(e.region.Size()) {
		return fmt.Errorf("dsm: write [%d,%d) outside region of %d bytes", off, end, e.region.Size())
	}
	ps := uint64(e.pageSize)
	for p := off / ps; p*ps < end; p++ {
		if e.touched[p] {
			continue
		}
		tm := metrics.StartTimer(e.stats, metrics.PhaseDetect)
		e.touched[p] = true
		e.order = append(e.order, p)
		e.faults++
		e.stats.Add(metrics.CtrPageFaults, 1)
		if e.onFault != nil {
			e.onFault()
		}
		if e.mode == CpyCmp {
			twin := make([]byte, e.pageBytesLen(p))
			copy(twin, e.pageBytes(p))
			e.twins[p] = twin
			e.stats.Add(metrics.CtrPageCopies, 1)
		}
		tm.Stop()
	}
	return nil
}

func (e *Engine) pageBytesLen(p uint64) int {
	ps := uint64(e.pageSize)
	start := p * ps
	endB := start + ps
	if endB > uint64(e.region.Size()) {
		endB = uint64(e.region.Size())
	}
	return int(endB - start)
}

func (e *Engine) pageBytes(p uint64) []byte {
	ps := uint64(e.pageSize)
	start := p * ps
	return e.region.Bytes()[start : start+uint64(e.pageBytesLen(p))]
}

// Commit collects the transaction's updates as new-value range
// records, performing the design's real commit-time work:
//
//   - Page mode: every touched page is emitted whole (no scan);
//   - CpyCmp mode: each touched page is compared byte-wise against its
//     twin (charged to the collect phase, Table 2's "page compare"
//     row) and runs of differing bytes become diff records.
//
// The returned ranges are sorted by address and alias the live region
// image, exactly like rvm's commit gather.
func (e *Engine) Commit() []wal.RangeRec {
	pages := append([]uint64(nil), e.order...)
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })

	var out []wal.RangeRec
	ps := uint64(e.pageSize)
	switch e.mode {
	case Page:
		tm := metrics.StartTimer(e.stats, metrics.PhaseCollect)
		for _, p := range pages {
			out = append(out, wal.RangeRec{
				Region: uint32(e.region.ID()),
				Off:    p * ps,
				Data:   e.pageBytes(p),
			})
			e.stats.Add(metrics.CtrPagesSent, 1)
		}
		tm.Stop()
	case CpyCmp:
		tm := metrics.StartTimer(e.stats, metrics.PhaseCollect)
		for _, p := range pages {
			cur := e.pageBytes(p)
			twin := e.twins[p]
			e.stats.Add(metrics.CtrPageCompares, 1)
			base := p * ps
			i := 0
			for i < len(cur) {
				if cur[i] == twin[i] {
					i++
					continue
				}
				j := i + 1
				for j < len(cur) && cur[j] != twin[j] {
					j++
				}
				out = append(out, wal.RangeRec{
					Region: uint32(e.region.ID()),
					Off:    base + uint64(i),
					Data:   cur[i:j:j],
				})
				i = j
			}
		}
		tm.Stop()
	}
	return out
}
