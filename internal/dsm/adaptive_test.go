package dsm

import (
	"math/rand"
	"testing"

	"lbc/internal/costmodel"
	"lbc/internal/rvm"
)

func adaptiveFixture(t *testing.T) (*AdaptiveEngine, *rvm.Region) {
	t.Helper()
	r, err := rvm.Open(rvm.Options{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := r.Map(1, 64*8192)
	if err != nil {
		t.Fatal(err)
	}
	return NewAdaptive(costmodel.Alpha(), 8192, nil), reg
}

// sparseTx writes 8 bytes on each of 10 pages.
func sparseTx(e *AdaptiveEngine, reg *rvm.Region, rng *rand.Rand) {
	e.Begin(reg)
	for p := 0; p < 10; p++ {
		off := uint64(p*8192 + rng.Intn(8000))
		e.OnWrite(off, 8)
		rng.Read(reg.Bytes()[off : off+8])
	}
	e.Commit()
}

// denseTx rewrites most of 10 pages.
func denseTx(e *AdaptiveEngine, reg *rvm.Region, rng *rand.Rand) {
	e.Begin(reg)
	for p := 0; p < 10; p++ {
		off := uint64(p * 8192)
		e.OnWrite(off, 8000)
		rng.Read(reg.Bytes()[off : off+8000])
	}
	e.Commit()
}

func TestAdaptiveStaysDiffWhenSparse(t *testing.T) {
	e, reg := adaptiveFixture(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		sparseTx(e, reg, rng)
		if e.Mode() != CpyCmp {
			t.Fatalf("tx %d: switched to %v on a sparse workload", i, e.Mode())
		}
	}
	if e.Switches() != 0 {
		t.Fatalf("switched %d times", e.Switches())
	}
	if d := e.Density(); d <= 0 || d > 100 {
		t.Fatalf("density estimate = %f", d)
	}
}

func TestAdaptiveSwitchesToPageWhenDense(t *testing.T) {
	e, reg := adaptiveFixture(t)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 6; i++ {
		denseTx(e, reg, rng)
	}
	if e.Mode() != Page {
		t.Fatalf("mode = %v after dense phase (density %f, threshold %f)",
			e.Mode(), e.Density(), e.model.CrossoverCpyCmpVsPage())
	}
}

func TestAdaptiveReprobesAfterPhaseChange(t *testing.T) {
	e, reg := adaptiveFixture(t)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 6; i++ {
		denseTx(e, reg, rng)
	}
	if e.Mode() != Page {
		t.Fatal("never entered page mode")
	}
	// Density information is unobservable in Page mode; the estimate
	// decays until the engine probes with a diff transaction again,
	// and the now-sparse workload keeps it there.
	for i := 0; i < 30 && e.Mode() == Page; i++ {
		sparseTx(e, reg, rng)
	}
	if e.Mode() != CpyCmp {
		t.Fatalf("never re-probed back to diff mode (density %f)", e.Density())
	}
	for i := 0; i < 5; i++ {
		sparseTx(e, reg, rng)
	}
	if e.Mode() != CpyCmp {
		t.Fatal("left diff mode on a sparse workload")
	}
}

func TestAdaptiveRecordsReconstructImage(t *testing.T) {
	// Whatever mode the engine picks, applying its records to a stale
	// copy must reproduce the live image.
	r, _ := rvm.Open(rvm.Options{Node: 1})
	reg, _ := r.Map(1, 16*8192)
	rng := rand.New(rand.NewSource(4))
	e := NewAdaptive(costmodel.Alpha(), 8192, nil)

	stale := append([]byte(nil), reg.Bytes()...)
	for i := 0; i < 12; i++ {
		e.Begin(reg)
		for w := 0; w < 6; w++ {
			off := uint64(rng.Intn(16*8192 - 4096))
			n := uint32(rng.Intn(4000) + 1)
			e.OnWrite(off, n)
			rng.Read(reg.Bytes()[off : off+uint64(n)])
		}
		for _, rec := range e.Commit() {
			copy(stale[rec.Off:], rec.Data)
		}
	}
	if string(stale) != string(reg.Bytes()) {
		t.Fatal("adaptive records failed to reconstruct the image")
	}
}
