package dsm

import (
	"lbc/internal/costmodel"
	"lbc/internal/metrics"
	"lbc/internal/rvm"
	"lbc/internal/wal"
)

// AdaptiveEngine implements the hybrid the paper's conclusion points
// to: "adaptive hybrid approaches may be possible where application
// behavior can be predicted" (§6). It predicts the next transaction's
// update density from an exponentially weighted history of modified
// bytes per touched page, and picks the cheaper mechanism under a cost
// model:
//
//   - sparse transactions (few modified bytes per page) run in CpyCmp
//     mode: twin copies and commit-time diffs, transmitting only the
//     modified bytes;
//   - dense transactions (where diffing costs more than it saves) run
//     in Page mode: no compare, whole pages transmitted.
//
// The decision threshold is the byte density at which the model says
// copy+compare plus byte transmission exceeds a whole-page send — the
// Figure 4 crossover.
type AdaptiveEngine struct {
	model    costmodel.Model
	pageSize int
	stats    *metrics.Stats

	cur  *Engine
	mode Mode

	// ewma of modified bytes per touched page; <0 until first sample.
	density   float64
	threshold float64
	switches  int64
}

// ewmaAlpha weights the most recent transaction at 30%.
const ewmaAlpha = 0.3

// NewAdaptive creates an adaptive engine using the given cost model
// for its switching threshold.
func NewAdaptive(model costmodel.Model, pageSize int, stats *metrics.Stats) *AdaptiveEngine {
	if pageSize == 0 {
		pageSize = model.PageSize
	}
	if stats == nil {
		stats = metrics.NewStats()
	}
	return &AdaptiveEngine{
		model:     model,
		pageSize:  pageSize,
		stats:     stats,
		mode:      CpyCmp, // optimistic: sparse until shown otherwise
		density:   -1,
		threshold: model.CrossoverCpyCmpVsPage(),
	}
}

// Mode returns the mechanism the engine will use for the next
// transaction.
func (a *AdaptiveEngine) Mode() Mode { return a.mode }

// Switches counts mode changes so far.
func (a *AdaptiveEngine) Switches() int64 { return a.switches }

// Density returns the current bytes-per-page prediction (-1 before
// the first commit).
func (a *AdaptiveEngine) Density() float64 { return a.density }

// Begin starts a transaction using the currently predicted mode.
func (a *AdaptiveEngine) Begin(region *rvm.Region) {
	a.cur = New(Options{Mode: a.mode, PageSize: a.pageSize, Stats: a.stats})
	a.cur.Begin(region)
}

// OnWrite declares an upcoming write.
func (a *AdaptiveEngine) OnWrite(off uint64, n uint32) error {
	return a.cur.OnWrite(off, n)
}

// Faults reports the simulated faults of the current transaction.
func (a *AdaptiveEngine) Faults() int64 { return a.cur.Faults() }

// Commit collects the transaction's records with the active mechanism
// and updates the density prediction for the next transaction.
func (a *AdaptiveEngine) Commit() []wal.RangeRec {
	recs := a.cur.Commit()
	pages := a.cur.Faults()
	if pages > 0 {
		var bytes int
		if a.mode == CpyCmp {
			for _, r := range recs {
				bytes += len(r.Data)
			}
		} else {
			// Page mode transmitted whole pages; the modified-byte
			// density is unobservable, so decay the estimate toward a
			// point just below the threshold — after enough page-mode
			// transactions the engine probes with a diff transaction
			// and re-measures the true density.
			bytes = int(0.8 * a.threshold * float64(pages))
		}
		sample := float64(bytes) / float64(pages)
		if a.density < 0 {
			a.density = sample
		} else {
			a.density = ewmaAlpha*sample + (1-ewmaAlpha)*a.density
		}
	}
	want := CpyCmp
	if a.density > a.threshold {
		want = Page
	}
	if want != a.mode {
		a.mode = want
		a.switches++
		a.stats.Add("adaptive_switches", 1)
	}
	return recs
}
