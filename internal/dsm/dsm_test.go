package dsm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"lbc/internal/metrics"
	"lbc/internal/rvm"
	"lbc/internal/wal"
)

func newRegion(t *testing.T, size int) *rvm.Region {
	t.Helper()
	r, err := rvm.Open(rvm.Options{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := r.Map(1, size)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestFaultPerPage(t *testing.T) {
	reg := newRegion(t, 4*8192)
	e := New(Options{Mode: CpyCmp})
	e.Begin(reg)
	// Three writes on page 0, one on page 2: exactly two faults.
	e.OnWrite(0, 8)
	e.OnWrite(100, 8)
	e.OnWrite(8000, 8)
	e.OnWrite(2*8192+5, 8)
	if e.Faults() != 2 {
		t.Fatalf("faults = %d, want 2", e.Faults())
	}
	if e.Stats().Counter(metrics.CtrPageCopies) != 2 {
		t.Fatalf("copies = %d", e.Stats().Counter(metrics.CtrPageCopies))
	}
}

func TestWriteSpanningPagesFaultsBoth(t *testing.T) {
	reg := newRegion(t, 4*8192)
	e := New(Options{Mode: Page})
	e.Begin(reg)
	e.OnWrite(8190, 8) // straddles pages 0 and 1
	if e.Faults() != 2 {
		t.Fatalf("faults = %d, want 2", e.Faults())
	}
}

func TestPageModeSendsWholePages(t *testing.T) {
	reg := newRegion(t, 4*8192)
	e := New(Options{Mode: Page})
	e.Begin(reg)
	copy(reg.Bytes()[10:], "tiny")
	e.OnWrite(10, 4)
	recs := e.Commit()
	if len(recs) != 1 || recs[0].Off != 0 || len(recs[0].Data) != 8192 {
		t.Fatalf("recs = %d, off=%d len=%d", len(recs), recs[0].Off, len(recs[0].Data))
	}
	if e.Stats().Counter(metrics.CtrPagesSent) != 1 {
		t.Fatal("pages_sent not counted")
	}
}

func TestCpyCmpEmitsOnlyDiffs(t *testing.T) {
	reg := newRegion(t, 2*8192)
	e := New(Options{Mode: CpyCmp})
	e.Begin(reg)
	e.OnWrite(100, 4)
	copy(reg.Bytes()[100:], "diff")
	e.OnWrite(200, 2)
	copy(reg.Bytes()[200:], "xy")
	recs := e.Commit()
	if len(recs) != 2 {
		t.Fatalf("recs = %+v", recs)
	}
	if recs[0].Off != 100 || string(recs[0].Data) != "diff" {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if recs[1].Off != 200 || string(recs[1].Data) != "xy" {
		t.Fatalf("rec1 = %+v", recs[1])
	}
}

func TestCpyCmpUnchangedPageProducesNothing(t *testing.T) {
	reg := newRegion(t, 8192)
	e := New(Options{Mode: CpyCmp})
	e.Begin(reg)
	e.OnWrite(0, 100) // declared but never actually modified
	if recs := e.Commit(); len(recs) != 0 {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestCpyCmpMergesAdjacentModifiedBytes(t *testing.T) {
	reg := newRegion(t, 8192)
	e := New(Options{Mode: CpyCmp})
	e.Begin(reg)
	e.OnWrite(0, 16)
	for i := 0; i < 16; i++ {
		reg.Bytes()[i] = byte(i + 1)
	}
	recs := e.Commit()
	if len(recs) != 1 || len(recs[0].Data) != 16 {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestBeginResetsState(t *testing.T) {
	reg := newRegion(t, 8192)
	e := New(Options{Mode: CpyCmp})
	e.Begin(reg)
	e.OnWrite(0, 8)
	copy(reg.Bytes(), "12345678")
	e.Commit()
	e.Begin(reg)
	if recs := e.Commit(); len(recs) != 0 {
		t.Fatalf("state leaked across Begin: %+v", recs)
	}
}

func TestOnWriteBounds(t *testing.T) {
	reg := newRegion(t, 100)
	e := New(Options{Mode: Page})
	e.Begin(reg)
	if err := e.OnWrite(90, 20); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
	e2 := New(Options{Mode: Page})
	if err := e2.OnWrite(0, 8); err == nil {
		t.Fatal("OnWrite before Begin accepted")
	}
}

func TestPartialTailPage(t *testing.T) {
	// Region not a multiple of the page size: the final page is short.
	reg := newRegion(t, 8192+100)
	e := New(Options{Mode: Page})
	e.Begin(reg)
	copy(reg.Bytes()[8192+10:], "tail")
	e.OnWrite(8192+10, 4)
	recs := e.Commit()
	if len(recs) != 1 || len(recs[0].Data) != 100 {
		t.Fatalf("tail page rec = %+v", recs)
	}
}

func TestOnFaultHook(t *testing.T) {
	reg := newRegion(t, 4*8192)
	var hooks int
	e := New(Options{Mode: CpyCmp, OnFault: func() { hooks++ }})
	e.Begin(reg)
	e.OnWrite(0, 8)
	e.OnWrite(8192, 8)
	e.OnWrite(4, 8) // same page: no new fault
	if hooks != 2 {
		t.Fatalf("hook ran %d times", hooks)
	}
}

// TestPropertyCpyCmpDiffsReconstruct verifies the diff invariant: the
// twin plus the emitted diffs always reconstructs the final page.
func TestPropertyCpyCmpDiffsReconstruct(t *testing.T) {
	f := func(seed int64, nWrites uint8) bool {
		r, _ := rvm.Open(rvm.Options{Node: 1})
		reg, _ := r.Map(1, 4*8192)
		rng := rand.New(rand.NewSource(seed))
		rng.Read(reg.Bytes())
		before := append([]byte(nil), reg.Bytes()...)

		e := New(Options{Mode: CpyCmp})
		e.Begin(reg)
		for i := 0; i < int(nWrites%24)+1; i++ {
			off := uint64(rng.Intn(4*8192 - 64))
			n := uint32(rng.Intn(64) + 1)
			if err := e.OnWrite(off, n); err != nil {
				return false
			}
			rng.Read(reg.Bytes()[off : off+uint64(n)])
		}
		recs := e.Commit()

		// Apply diffs to the before image: must equal the live image.
		rebuilt := append([]byte(nil), before...)
		for _, rec := range recs {
			copy(rebuilt[rec.Off:], rec.Data)
		}
		return bytes.Equal(rebuilt, reg.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPageModeCoversAllWrites: whole-page transmission always
// reconstructs the final image too (it is a superset of the diffs).
func TestPropertyPageModeCoversAllWrites(t *testing.T) {
	f := func(seed int64, nWrites uint8) bool {
		r, _ := rvm.Open(rvm.Options{Node: 1})
		reg, _ := r.Map(1, 4*8192)
		rng := rand.New(rand.NewSource(seed))
		rng.Read(reg.Bytes())
		before := append([]byte(nil), reg.Bytes()...)

		e := New(Options{Mode: Page})
		e.Begin(reg)
		for i := 0; i < int(nWrites%24)+1; i++ {
			off := uint64(rng.Intn(4*8192 - 64))
			n := uint32(rng.Intn(64) + 1)
			if err := e.OnWrite(off, n); err != nil {
				return false
			}
			rng.Read(reg.Bytes()[off : off+uint64(n)])
		}
		recs := e.Commit()
		rebuilt := append([]byte(nil), before...)
		for _, rec := range recs {
			copy(rebuilt[rec.Off:], rec.Data)
		}
		return bytes.Equal(rebuilt, reg.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDiffBytesNeverExceedPageBytes pins the relationship the paper's
// Figure 4 rests on: Cpy/Cmp never transmits more data than Page.
func TestDiffBytesNeverExceedPageBytes(t *testing.T) {
	f := func(seed int64) bool {
		r, _ := rvm.Open(rvm.Options{Node: 1})
		reg, _ := r.Map(1, 8*8192)
		rng := rand.New(rand.NewSource(seed))

		cc := New(Options{Mode: CpyCmp})
		pg := New(Options{Mode: Page})
		cc.Begin(reg)
		pg.Begin(reg)
		for i := 0; i < 20; i++ {
			off := uint64(rng.Intn(8*8192 - 128))
			n := uint32(rng.Intn(128) + 1)
			cc.OnWrite(off, n)
			pg.OnWrite(off, n)
			rng.Read(reg.Bytes()[off : off+uint64(n)])
		}
		var ccBytes, pgBytes int
		for _, rec := range cc.Commit() {
			ccBytes += len(rec.Data)
		}
		for _, rec := range pg.Commit() {
			pgBytes += len(rec.Data)
		}
		return ccBytes <= pgBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordsInteroperateWithWAL(t *testing.T) {
	reg := newRegion(t, 8192)
	e := New(Options{Mode: CpyCmp})
	e.Begin(reg)
	e.OnWrite(50, 5)
	copy(reg.Bytes()[50:], "wire!")
	rec := &wal.TxRecord{Node: 1, TxSeq: 1, Ranges: e.Commit()}
	enc, err := wal.AppendCompressed(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wal.DecodeCompressed(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ranges) != 1 || string(got.Ranges[0].Data) != "wire!" {
		t.Fatalf("ranges = %+v", got.Ranges)
	}
}
