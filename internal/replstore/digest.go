package replstore

import (
	"fmt"

	"lbc/internal/merge"
	"lbc/internal/rvm"
	"lbc/internal/store"
	"lbc/internal/wal"
)

// Replica digests. Digest summarizes everything that matters about one
// replica's content: every region image with its version tag, and the
// recovery outcome of its logs — the per-node logs are merged
// (deduplicating at-least-once appends) and replayed through the
// parallel recovery engine (rvm.Recover with workers, which drives
// internal/parapply.Replay), and the reconstructed images are folded
// in. Two replicas with equal digests would recover a cluster to the
// same state; the chaos harness uses this to prove a replacement
// replica caught up to exactly the survivors' state.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h uint64, vals ...uint64) uint64 {
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime
			v >>= 8
		}
	}
	return h
}

func fnvBytes(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// Digest computes the content digest of a single replica over a plain
// (non-quorum) client connection. workers sets the replay parallelism.
func Digest(sc *store.Client, workers int) (uint64, error) {
	h := uint64(fnvOffset)

	ids, err := sc.Regions()
	if err != nil {
		return 0, err
	}
	for _, id := range sortedU32(ids) {
		ver, img, err := sc.ReadVersioned(id)
		if err != nil {
			return 0, err
		}
		h = fnvMix(h, uint64(id), ver, fnvBytes(img))
	}

	nodes, err := sc.Logs()
	if err != nil {
		return 0, err
	}
	merged := wal.NewMemDevice()
	devs := make([]wal.Device, 0, len(nodes))
	for _, node := range sortedU32(nodes) {
		dev := sc.LogDevice(node)
		sz, err := dev.Size()
		if err != nil {
			return 0, err
		}
		h = fnvMix(h, uint64(node), uint64(sz))
		devs = append(devs, dev)
	}
	recs, err := merge.MergeTo(merged, devs...)
	if err != nil {
		return 0, err
	}
	mem := rvm.NewMemStore()
	if _, err := rvm.Recover(merged, mem, rvm.RecoverOptions{Workers: workers}); err != nil {
		return 0, err
	}
	rids, err := mem.Regions()
	if err != nil {
		return 0, err
	}
	for _, id := range sortedU32(rids) {
		img, err := mem.LoadRegion(id)
		if err != nil {
			return 0, err
		}
		h = fnvMix(h, uint64(id), fnvBytes(img))
	}
	return fnvMix(h, uint64(recs)), nil
}

// VerifyReplicas digests every member of the current view. The caller
// should quiesce writes first; on a settled quorum with no failed
// members the digests are identical.
func (c *Client) VerifyReplicas(workers int) (map[string]uint64, error) {
	out := map[string]uint64{}
	for _, m := range c.members() {
		sc, err := c.conn(m)
		if err != nil {
			return nil, fmt.Errorf("replstore: digest %s: %w", m, err)
		}
		d, err := Digest(sc, workers)
		if err != nil {
			return nil, fmt.Errorf("replstore: digest %s: %w", m, err)
		}
		out[m] = d
	}
	return out, nil
}
