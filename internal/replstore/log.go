package replstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/obs"
	"lbc/internal/store"
)

// quorumLog is the wal.Device view of one node's redo log, replicated
// across the quorum. Appends are offset-guarded: every replica applies
// the record at the same offset, so logs are byte-identical prefixes
// of each other and the freshest replica is simply the longest one.
type quorumLog struct {
	c    *Client
	node uint32

	mu      sync.Mutex
	nextOff int64 // next append offset; -1 until learned from a size quorum
}

// sizeQuorum collects log sizes from a majority and returns the
// per-replica sizes plus the freshest (longest) replica. It also feeds
// the client's replica-lag tracking.
func (c *Client) sizeQuorum(node uint32) (sizes map[string]int64, maxAddr string, maxSize int64, err error) {
	replies, err := c.withQuorum("log_size", func(_ string, sc *store.Client) (any, error) {
		return sc.LogDevice(node).Size()
	})
	if err != nil {
		return nil, "", 0, err
	}
	sizes = map[string]int64{}
	for _, r := range replies {
		if r.err != nil {
			continue
		}
		sz := r.val.(int64)
		sizes[r.addr] = sz
		if sz >= maxSize || maxAddr == "" {
			maxAddr, maxSize = r.addr, sz
		}
	}
	c.mu.Lock()
	for addr, sz := range sizes {
		c.lag[addr] = maxSize - sz
	}
	c.mu.Unlock()
	for _, sz := range sizes {
		c.stats.Observe(metrics.HistReplicaLagBytes, maxSize-sz)
	}
	return sizes, maxAddr, maxSize, nil
}

// Append implements wal.Device: the record is placed at the same
// offset on every replica and acknowledged once a majority holds it.
// Replicas reporting a missing prefix are repaired (the gap copied
// from the freshest replica) without blocking the acknowledgement.
func (l *quorumLog) Append(p []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := time.Now()
	c := l.c
	if l.nextOff < 0 {
		_, _, maxSize, err := c.sizeQuorum(l.node)
		if err != nil {
			return 0, err
		}
		l.nextOff = maxSize
	}
	var lastReplies []reply
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			c.stats.Add(metrics.CtrStoreQuorumRetries, 1)
			c.RefreshView()
		}
		members := c.members()
		off := l.nextOff
		replies := c.fanout(members, func(_ string, sc *store.Client) (any, error) {
			return sc.AppendLogAt(l.node, off, p)
		})
		lastReplies = replies
		if successes(replies) < len(members)/2+1 {
			// A failed round can be self-inflicted: nextOff is learned
			// from the *longest* replica, which may carry an
			// unacknowledged tail (a coordinator that died mid-fan-out
			// persisted a record on a minority). Then the append lands
			// on that one replica while the majority answers "behind" —
			// and would answer "behind" on every retry. Repair the
			// behind responders from the freshest replica before
			// retrying so a quorum can re-form at this offset.
			for _, r := range replies {
				var behind *store.BehindError
				if errors.As(r.err, &behind) {
					c.stats.Add(metrics.CtrStoreReplicaBehind, 1)
					if rerr := c.repairLog(l.node, r.addr); rerr == nil {
						c.stats.Add(metrics.CtrStoreLogRepairs, 1)
					}
				}
			}
			continue
		}
		l.nextOff = off + int64(len(p))
		// Best-effort repair of replicas that answered "behind": copy
		// the gap from the freshest replica so they rejoin the quorum.
		for _, r := range replies {
			var behind *store.BehindError
			if errors.As(r.err, &behind) {
				c.stats.Add(metrics.CtrStoreReplicaBehind, 1)
				if rerr := c.repairLog(l.node, r.addr); rerr == nil {
					c.stats.Add(metrics.CtrStoreLogRepairs, 1)
				}
			}
		}
		c.stats.Add(metrics.CtrStoreQuorumWrites, 1)
		c.stats.Observe(metrics.HistQuorumWriteNS, time.Since(start).Nanoseconds())
		if c.trace.Enabled() {
			c.trace.Emit(obs.Span{
				Name: obs.SpanQuorumWrite, Node: l.node,
				Start: start.UnixNano(), Dur: time.Since(start).Nanoseconds(),
				N: int64(len(p)),
			})
		}
		return off, nil
	}
	return 0, noQuorum(fmt.Sprintf("append_log_at node %d", l.node), len(c.members())/2+1, lastReplies)
}

// repairLog copies node's log gap from the freshest replica to a
// behind replica, in bounded chunks framed through the append guard
// (so a concurrent append or a racing repair cannot corrupt the log).
func (c *Client) repairLog(node uint32, addr string) error {
	dst, err := c.conn(addr)
	if err != nil {
		return err
	}
	for round := 0; round < 4; round++ {
		_, maxAddr, maxSize, err := c.sizeQuorum(node)
		if err != nil {
			return err
		}
		have, err := dst.LogDevice(node).Size()
		if err != nil {
			return err
		}
		if have >= maxSize {
			return nil
		}
		if maxAddr == addr {
			return nil
		}
		donor, err := c.conn(maxAddr)
		if err != nil {
			return err
		}
		if err := c.copyLogRange(donor, dst, node, have, maxSize); err != nil {
			return err
		}
	}
	return fmt.Errorf("replstore: log %d repair of %s did not converge", node, addr)
}

// copyLogRange streams [from, to) of node's log from donor to dst in
// chunked, offset-guarded appends. Donor reads use the same chunk size
// as the appends, so client and donor memory stay bounded no matter
// how large the catch-up gap is.
func (c *Client) copyLogRange(donor, dst *store.Client, node uint32, from, to int64) error {
	const chunk = 1 << 18
	for off := from; off < to; {
		n := to - off
		if n > chunk {
			n = chunk
		}
		data, err := donor.ReadLogRange(node, off, n)
		if err != nil {
			return err
		}
		if len(data) == 0 {
			return nil // donor shrank (trim); copy what it had
		}
		if _, err := dst.AppendLogAt(node, off, data); err != nil {
			return err
		}
		off += int64(len(data))
		if int64(len(data)) < n {
			return nil // donor shrank mid-copy
		}
	}
	return nil
}

// Sync implements wal.Device: a majority must force the log.
func (l *quorumLog) Sync() error {
	_, err := l.c.withQuorum("sync_log", func(_ string, sc *store.Client) (any, error) {
		return nil, sc.LogDevice(l.node).Sync()
	})
	return err
}

// Size implements wal.Device: the freshest replica's size. Any
// acknowledged append reached a majority, which intersects the size
// quorum, so the maximum covers every acknowledged byte.
func (l *quorumLog) Size() (int64, error) {
	_, _, maxSize, err := l.c.sizeQuorum(l.node)
	return maxSize, err
}

// Open implements wal.Device, reading from the freshest replica.
func (l *quorumLog) Open(from int64) (io.ReadCloser, error) {
	_, maxAddr, maxSize, err := l.c.sizeQuorum(l.node)
	if err != nil {
		return nil, err
	}
	if maxSize <= from {
		return io.NopCloser(bytes.NewReader(nil)), nil
	}
	sc, err := l.c.conn(maxAddr)
	if err != nil {
		return nil, err
	}
	return sc.LogDevice(l.node).Open(from)
}

// Truncate implements wal.Device (offline trim): a majority must
// apply it. Replicas that miss the trim carry stale tail records until
// the next catch-up; replay dedupes them, so recovery is unaffected.
func (l *quorumLog) Truncate(size int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.c.withQuorum("truncate_log", func(_ string, sc *store.Client) (any, error) {
		return nil, sc.LogDevice(l.node).Truncate(size)
	})
	l.nextOff = -1
	return err
}

// Reset implements wal.Device: a majority must clear the log.
func (l *quorumLog) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.c.withQuorum("reset_log", func(_ string, sc *store.Client) (any, error) {
		return nil, sc.LogDevice(l.node).Reset()
	})
	if err != nil {
		l.nextOff = -1
		return err
	}
	l.nextOff = 0
	return nil
}

// Close implements wal.Device (the quorum client stays open; logs
// share its connections).
func (l *quorumLog) Close() error { return nil }

// sortedU32 returns a sorted copy (shared helper for digest and view
// code).
func sortedU32(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
