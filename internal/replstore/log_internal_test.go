package replstore

import (
	"bytes"
	"io"
	"testing"

	"lbc/internal/store"
)

// TestAppendRepairsBehindMajority reproduces the torn-coordinator
// case: a previous coordinator died mid-fan-out after persisting a
// record on one replica only, and a new coordinator learns its append
// offset from that longest replica. Its first round then succeeds only
// there — the majority answers "behind" — so Append must repair the
// behind responders and re-form the quorum instead of failing every
// retry at the same offset (which would wedge the log until a manual
// reconfiguration).
func TestAppendRepairsBehindMajority(t *testing.T) {
	addrs := make([]string, 3)
	for i := range addrs {
		srv, err := store.NewServer("127.0.0.1:0", store.ServerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	if err := Bootstrap(addrs); err != nil {
		t.Fatal(err)
	}
	c, err := DialView(addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	dev := c.LogDevice(3).(*quorumLog)
	prefix := []byte("committed-prefix")
	if _, err := dev.Append(prefix); err != nil {
		t.Fatal(err)
	}
	c.Quiesce() // let the straggler append land everywhere

	// The unacknowledged tail: persisted on replica 0 alone.
	torn := []byte("torn-unacked-tail")
	sc, err := store.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.AppendLogAt(3, int64(len(prefix)), torn); err != nil {
		t.Fatal(err)
	}
	sc.Close()

	// Pin the cursor to the longest replica's size, as a fresh client
	// sampling that replica in its size quorum would learn it.
	tornOff := int64(len(prefix) + len(torn))
	dev.mu.Lock()
	dev.nextOff = tornOff
	dev.mu.Unlock()

	rec := []byte("next-record")
	off, err := dev.Append(rec)
	if err != nil {
		t.Fatalf("append with behind majority: %v", err)
	}
	if off != tornOff {
		t.Fatalf("append offset %d, want %d", off, tornOff)
	}
	c.Quiesce()

	want := append(append(append([]byte(nil), prefix...), torn...), rec...)
	for i, a := range addrs {
		sc, err := store.Dial(a)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := sc.LogDevice(3).Open(0)
		if err != nil {
			t.Fatalf("replica %d open: %v", i, err)
		}
		got, err := io.ReadAll(rc)
		rc.Close()
		sc.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("replica %d diverged after repair: %d bytes, want %d", i, len(got), len(want))
		}
	}
}
