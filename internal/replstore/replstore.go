// Package replstore implements a majority-quorum replicated storage
// service behind the same client surface as internal/store: it
// implements rvm.DataStore, and LogDevice returns a wal.Device, so the
// RVM core and the coherency engines are oblivious to whether their
// stable store is one box, a mirrored pair, or a quorum of replicas.
//
// The design follows the classic client-coordinated quorum scheme
// ("two majorities always intersect"): a write is acknowledged only
// after a majority of the current view has persisted it, and a read
// collects version tags from a majority, so every read quorum overlaps
// every acknowledged write quorum in at least one replica that holds
// the freshest copy. Region images carry per-key version tags (enabling
// read-repair of stale copies); per-node redo logs use offset-guarded
// appends, exploiting the log prefix property — a replica that holds N
// bytes of a log holds the same N bytes as every other replica, so
// "freshest" is simply "longest".
//
// Views are first-class: a view is an epoch-numbered replica set,
// persisted on every replica. Reconfiguration (view.go) runs while
// commits continue: the new view is written through a majority of the
// old view AND a majority of the new one, so any later quorum — under
// either view — intersects a replica that knows the newer epoch. A
// joining replica is caught up (snapshot transfer + log tail) before
// it counts toward any quorum.
package replstore

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/obs"
	"lbc/internal/rvm"
	"lbc/internal/store"
	"lbc/internal/wal"
)

// Options configures a quorum client.
type Options struct {
	// Trace receives store.quorum_write / store.catchup spans. May be nil.
	Trace *obs.Tracer
}

// Client is a quorum-coordinating storage client. It holds one
// connection per replica and fans each operation out across the
// current view, acknowledging once a majority responds.
type Client struct {
	stats    *metrics.Stats
	trace    *obs.Tracer
	writerID uint16 // low bits of every version tag this client mints

	mu    sync.Mutex
	view  store.View
	conns map[string]*store.Client
	lag   map[string]int64 // last observed log-size gap behind the freshest replica
	logs  map[uint32]*quorumLog

	wg sync.WaitGroup // outstanding fan-out goroutines
}

// ErrNoView is returned by DialView when no reachable replica reports
// an installed view.
var ErrNoView = errors.New("replstore: no view installed on any replica")

// Version tags are writer-unique: the upper 48 bits carry the region's
// sequence number, the low 16 a client-unique writer id. Two clients
// racing StoreRegion on the same region each pick sequence max+1 but
// mint *different* tags, so they can never land different payloads
// under one tag on disjoint majority subsets — numeric comparison
// still totally orders tags (higher sequence wins; equal sequences tie-
// break on writer id), and read-repair reconciles any divergence by
// tag inequality.
const verWriterBits = 16

// nextTag mints the tag for the write following maxVer.
func nextTag(maxVer uint64, writer uint16) uint64 {
	return ((maxVer>>verWriterBits)+1)<<verWriterBits | uint64(writer)
}

// writerIDs hands out client-unique writer ids: a process-random base
// (so independent processes almost surely differ) plus an in-process
// counter (so clients in one process always differ). A cross-process
// collision is caught by the server's equal-tag payload check and
// surfaces as a retried write, never as silent divergence.
var (
	writerBase = func() uint32 {
		var b [4]byte
		if _, err := crand.Read(b[:]); err != nil {
			return 0x9e37 // fall back to a fixed base; the counter still separates in-process clients
		}
		return binary.LittleEndian.Uint32(b[:])
	}()
	writerSeq atomic.Uint32
)

func newWriterID() uint16 { return uint16(writerBase + writerSeq.Add(1)) }

// Bootstrap installs the initial view (epoch 1, the given members) on
// every listed replica. It is the one step that bypasses quorum logic:
// it must run once, against fresh replicas, before any client dials in.
func Bootstrap(addrs []string) error {
	if len(addrs) == 0 {
		return errors.New("replstore: Bootstrap needs at least one address")
	}
	v := store.View{Epoch: 1, Members: append([]string(nil), addrs...)}
	for _, a := range addrs {
		sc, err := store.Dial(a)
		if err != nil {
			return fmt.Errorf("replstore: bootstrap %s: %w", a, err)
		}
		_, err = sc.SetView(v)
		sc.Close()
		if err != nil {
			return fmt.Errorf("replstore: bootstrap %s: %w", a, err)
		}
	}
	return nil
}

// DialView connects to the replica set: it asks every seed address for
// its view and adopts the highest epoch found. Seeds that are
// unreachable or uninitialized are skipped, so a client can start from
// a stale member list as long as one current replica answers.
func DialView(seeds []string, o Options) (*Client, error) {
	c := &Client{
		stats:    metrics.NewStats(),
		trace:    o.Trace,
		writerID: newWriterID(),
		conns:    map[string]*store.Client{},
		lag:      map[string]int64{},
		logs:     map[uint32]*quorumLog{},
	}
	var best store.View
	for _, a := range seeds {
		sc, err := c.conn(a)
		if err != nil {
			continue
		}
		v, err := sc.GetView()
		if err == nil && v.Epoch > best.Epoch {
			best = v
		}
	}
	if best.Epoch == 0 {
		c.Close()
		return nil, ErrNoView
	}
	c.mu.Lock()
	c.view = best
	c.mu.Unlock()
	return c, nil
}

// Stats exposes quorum counters and round-trip histograms.
func (c *Client) Stats() *metrics.Stats { return c.stats }

// View returns the view this client currently coordinates under.
func (c *Client) View() store.View {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view.Clone()
}

// Lag returns the last observed per-replica log-size gap behind the
// freshest replica (bytes), for gauge export.
func (c *Client) Lag() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.lag))
	for k, v := range c.lag {
		out[k] = v
	}
	return out
}

// Quiesce blocks until every outstanding fan-out goroutine (including
// best-effort repairs) has completed. Tests use it to reach a settled
// replica state before comparing digests.
func (c *Client) Quiesce() { c.wg.Wait() }

// Close drains outstanding fan-outs and closes every replica
// connection.
func (c *Client) Close() error {
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sc := range c.conns {
		sc.Close()
	}
	c.conns = map[string]*store.Client{}
	return nil
}

// members snapshots the current view's member list.
func (c *Client) members() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.view.Members...)
}

// conn returns (dialing if needed) the connection to one replica. Each
// replica gets a single-address failover client, so a transient drop
// re-dials transparently on the next call.
func (c *Client) conn(addr string) (*store.Client, error) {
	c.mu.Lock()
	sc := c.conns[addr]
	c.mu.Unlock()
	if sc != nil {
		return sc, nil
	}
	nc, err := store.DialFailover(addr)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur := c.conns[addr]; cur != nil {
		go nc.Close()
		return cur, nil
	}
	c.conns[addr] = nc
	return nc, nil
}

// dropConn closes and forgets the connection to a removed replica.
func (c *Client) dropConn(addr string) {
	c.mu.Lock()
	sc := c.conns[addr]
	delete(c.conns, addr)
	delete(c.lag, addr)
	c.mu.Unlock()
	if sc != nil {
		sc.Close()
	}
}

// reply is one replica's answer to a fanned-out operation.
type reply struct {
	addr string
	val  any
	err  error
}

// fanout runs fn against every listed replica concurrently and returns
// the replies collected up to the point a majority had succeeded (or
// all replicas had answered). Stragglers complete in the background —
// their effects still land on the replica — and are accounted for by
// Quiesce.
func (c *Client) fanout(members []string, fn func(addr string, sc *store.Client) (any, error)) []reply {
	ch := make(chan reply, len(members))
	for _, m := range members {
		c.wg.Add(1)
		go func(m string) {
			defer c.wg.Done()
			sc, err := c.conn(m)
			if err != nil {
				ch <- reply{addr: m, err: err}
				return
			}
			v, err := fn(m, sc)
			ch <- reply{addr: m, val: v, err: err}
		}(m)
	}
	need := len(members)/2 + 1
	out := make([]reply, 0, len(members))
	ok := 0
	for i := 0; i < len(members); i++ {
		r := <-ch
		out = append(out, r)
		if r.err == nil {
			ok++
			if ok >= need {
				return out
			}
		}
	}
	return out
}

// successes counts err-free replies.
func successes(replies []reply) int {
	n := 0
	for _, r := range replies {
		if r.err == nil {
			n++
		}
	}
	return n
}

// noQuorum builds the diagnostic error for a round that failed to
// reach a majority: every replica that answered and how it failed.
func noQuorum(op string, need int, replies []reply) error {
	var b strings.Builder
	fmt.Fprintf(&b, "replstore: %s: quorum not reached (%d/%d acks)", op, successes(replies), need)
	for _, r := range replies {
		if r.err != nil {
			fmt.Fprintf(&b, "; %s: %v", r.addr, r.err)
		}
	}
	return errors.New(b.String())
}

// withQuorum fans fn out over the current view and requires a majority
// of successes, refreshing the view and retrying once if the first
// round falls short (the view may have changed under us).
func (c *Client) withQuorum(op string, fn func(addr string, sc *store.Client) (any, error)) ([]reply, error) {
	members := c.members()
	replies := c.fanout(members, fn)
	if successes(replies) >= len(members)/2+1 {
		return replies, nil
	}
	c.stats.Add(metrics.CtrStoreQuorumRetries, 1)
	if err := c.RefreshView(); err != nil {
		return nil, fmt.Errorf("%w (view refresh: %v)", noQuorum(op, len(members)/2+1, replies), err)
	}
	members = c.members()
	replies = c.fanout(members, fn)
	if successes(replies) >= len(members)/2+1 {
		return replies, nil
	}
	return nil, noQuorum(op, len(members)/2+1, replies)
}

// verReply carries a version tag (and, for full reads, the image).
type verReply struct {
	ver  uint64
	data []byte
	full bool
}

// LoadRegion implements rvm.DataStore with a version-validated quorum
// read. The preferred replica for the region returns the full image;
// the rest return just their version tag. If the preferred replica's
// version matches the quorum maximum it has proven freshness and its
// image is used directly (the fast path); otherwise the image is
// fetched from a replica holding the maximum, and stale members of the
// quorum are read-repaired.
func (c *Client) LoadRegion(id uint32) ([]byte, error) {
	start := time.Now()
	defer func() {
		c.stats.Add(metrics.CtrStoreQuorumReads, 1)
		c.stats.Observe(metrics.HistQuorumReadNS, time.Since(start).Nanoseconds())
	}()
	members := c.members()
	if len(members) == 0 {
		return nil, errors.New("replstore: empty view")
	}
	pref := members[int(id)%len(members)]
	replies, err := c.withQuorum("load_region", func(addr string, sc *store.Client) (any, error) {
		if addr == pref {
			ver, data, err := sc.ReadVersioned(id)
			return verReply{ver: ver, data: data, full: true}, err
		}
		ver, err := sc.VersionOf(id)
		return verReply{ver: ver}, err
	})
	if err != nil {
		return nil, err
	}
	var maxVer uint64
	for _, r := range replies {
		if r.err == nil && r.val.(verReply).ver > maxVer {
			maxVer = r.val.(verReply).ver
		}
	}
	if maxVer == 0 {
		return nil, rvm.ErrNoRegion
	}
	var img []byte
	fast := false
	for _, r := range replies {
		if r.err == nil && r.addr == pref {
			if v := r.val.(verReply); v.full && v.ver == maxVer {
				img, fast = v.data, true
			}
			break
		}
	}
	if fast {
		c.stats.Add(metrics.CtrStoreReadFast, 1)
	} else {
		var fver uint64
		fver, img, err = c.fetchAt(id, maxVer, replies)
		if err != nil {
			return nil, err
		}
		// The donor may have advanced past the quorum maximum between
		// the version round and the fetch; repair with the tag the
		// image was actually read under, so repaired replicas never
		// hold a (version, data) pair that was never written.
		maxVer = fver
	}
	// Read-repair: rewrite stale copies seen in this quorum.
	for _, r := range replies {
		if r.err == nil && r.val.(verReply).ver < maxVer {
			if sc, cerr := c.conn(r.addr); cerr == nil {
				if _, werr := sc.WriteVersioned(id, maxVer, img); werr == nil {
					c.stats.Add(metrics.CtrStoreReadRepairs, 1)
				}
			}
		}
	}
	return img, nil
}

// fetchAt fetches the region image from a replica that reported at
// least the target version, returning the version the image was
// actually read under so the caller can repair with a matching
// (version, data) pair.
func (c *Client) fetchAt(id uint32, want uint64, replies []reply) (uint64, []byte, error) {
	for _, r := range replies {
		if r.err != nil || r.val.(verReply).ver < want {
			continue
		}
		sc, err := c.conn(r.addr)
		if err != nil {
			continue
		}
		ver, data, err := sc.ReadVersioned(id)
		if err == nil && ver >= want {
			return ver, data, nil
		}
	}
	return 0, nil, fmt.Errorf("replstore: region %d: no replica served version %d", id, want)
}

// StoreRegion implements rvm.DataStore with a majority-acknowledged
// versioned write: a version quorum reads the current maximum, the
// next tag is minted writer-unique (sequence max+1 in the high bits,
// this client's writer id in the low bits — see nextTag), then the
// tagged image must persist on a majority before the call returns. A
// concurrent writer to the same region mints a different tag, so the
// two writes are totally ordered and the loser is either superseded
// (cur > ver) or rejected by the server's equal-tag payload check —
// never silently acked with divergent data.
func (c *Client) StoreRegion(id uint32, data []byte) error {
	start := time.Now()
	var ver uint64
	defer func() {
		c.stats.Add(metrics.CtrStoreQuorumWrites, 1)
		c.stats.Observe(metrics.HistQuorumWriteNS, time.Since(start).Nanoseconds())
		if c.trace.Enabled() {
			c.trace.Emit(obs.Span{
				Name: obs.SpanQuorumWrite, Lock: id, Tx: ver,
				Start: start.UnixNano(), Dur: time.Since(start).Nanoseconds(),
				N: int64(len(data)),
			})
		}
	}()
	for attempt := 0; attempt < 3; attempt++ {
		replies, err := c.withQuorum("version_of", func(_ string, sc *store.Client) (any, error) {
			return sc.VersionOf(id)
		})
		if err != nil {
			return err
		}
		var maxVer uint64
		for _, r := range replies {
			if r.err == nil && r.val.(uint64) > maxVer {
				maxVer = r.val.(uint64)
			}
		}
		ver = nextTag(maxVer, c.writerID)
		wr, err := c.withQuorum("write_versioned", func(_ string, sc *store.Client) (any, error) {
			cur, err := sc.WriteVersioned(id, ver, data)
			if err != nil {
				return nil, err
			}
			if cur > ver {
				return nil, fmt.Errorf("replstore: region %d: version %d superseded by %d", id, ver, cur)
			}
			return cur, nil
		})
		if err == nil && successes(wr) >= len(c.members())/2+1 {
			return nil
		}
		// A concurrent writer advanced the version under us: re-run the
		// version round and try again with a higher tag.
		c.stats.Add(metrics.CtrStoreQuorumRetries, 1)
	}
	return fmt.Errorf("replstore: region %d: write lost the version race 3 times", id)
}

// Regions implements rvm.DataStore: the union of region ids across a
// majority (any acknowledged region write reached a majority, so the
// union over any majority is complete).
func (c *Client) Regions() ([]uint32, error) {
	replies, err := c.withQuorum("list_regions", func(_ string, sc *store.Client) (any, error) {
		return sc.Regions()
	})
	if err != nil {
		return nil, err
	}
	seen := map[uint32]bool{}
	for _, r := range replies {
		if r.err != nil {
			continue
		}
		for _, id := range r.val.([]uint32) {
			seen[id] = true
		}
	}
	out := make([]uint32, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Sync implements rvm.DataStore: a majority must force their images.
func (c *Client) Sync() error {
	_, err := c.withQuorum("sync_data", func(_ string, sc *store.Client) (any, error) {
		return nil, sc.Sync()
	})
	return err
}

// Logs lists node ids with logs anywhere in the quorum.
func (c *Client) Logs() ([]uint32, error) {
	replies, err := c.withQuorum("list_logs", func(_ string, sc *store.Client) (any, error) {
		return sc.Logs()
	})
	if err != nil {
		return nil, err
	}
	seen := map[uint32]bool{}
	for _, r := range replies {
		if r.err != nil {
			continue
		}
		for _, id := range r.val.([]uint32) {
			seen[id] = true
		}
	}
	out := make([]uint32, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// LogDevice returns the quorum-replicated wal.Device for node's log.
// Devices are cached per node so the append cursor is shared across
// callers.
func (c *Client) LogDevice(node uint32) wal.Device {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l, ok := c.logs[node]; ok {
		return l
	}
	l := &quorumLog{c: c, node: node, nextOff: -1}
	c.logs[node] = l
	return l
}
