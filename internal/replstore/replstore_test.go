package replstore_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"lbc/internal/metrics"
	"lbc/internal/replstore"
	"lbc/internal/store"
	"lbc/internal/wal"
)

// startReplicas brings up n empty storage servers.
func startReplicas(t *testing.T, n int) ([]*store.Server, []string) {
	t.Helper()
	srvs := make([]*store.Server, n)
	addrs := make([]string, n)
	for i := range srvs {
		srv, err := store.NewServer("127.0.0.1:0", store.ServerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		srvs[i] = srv
		addrs[i] = srv.Addr()
	}
	return srvs, addrs
}

func dialQuorum(t *testing.T, addrs []string) *replstore.Client {
	t.Helper()
	if err := replstore.Bootstrap(addrs); err != nil {
		t.Fatal(err)
	}
	c, err := replstore.DialView(addrs, replstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestQuorumRegionRoundTrip: versioned writes reach a majority and
// reads validate freshness, with the fast path firing on a healthy
// quorum.
func TestQuorumRegionRoundTrip(t *testing.T) {
	_, addrs := startReplicas(t, 3)
	c := dialQuorum(t, addrs)

	for i := uint32(1); i <= 5; i++ {
		img := []byte(fmt.Sprintf("region-%d-v1", i))
		if err := c.StoreRegion(i, img); err != nil {
			t.Fatalf("store region %d: %v", i, err)
		}
	}
	if err := c.StoreRegion(3, []byte("region-3-v2")); err != nil {
		t.Fatal(err)
	}
	got, err := c.LoadRegion(3)
	if err != nil || string(got) != "region-3-v2" {
		t.Fatalf("load: %q, %v", got, err)
	}
	ids, err := c.Regions()
	if err != nil || len(ids) != 5 {
		t.Fatalf("regions: %v, %v", ids, err)
	}
	st := c.Stats()
	if st.Counter(metrics.CtrStoreQuorumWrites) == 0 || st.Counter(metrics.CtrStoreQuorumReads) == 0 {
		t.Fatalf("quorum counters not recorded: %v", st.Counters())
	}
	if st.Counter(metrics.CtrStoreReadFast) == 0 {
		t.Fatal("healthy quorum read did not take the fast path")
	}
}

// TestQuorumSurvivesMinorityDeath: with one of three replicas dead,
// writes and reads keep committing through the surviving majority, and
// no acknowledged write is lost.
func TestQuorumSurvivesMinorityDeath(t *testing.T) {
	srvs, addrs := startReplicas(t, 3)
	c := dialQuorum(t, addrs)

	dev := c.LogDevice(7)
	var want []byte
	appendRec := func(seq uint64) {
		t.Helper()
		rec := &wal.TxRecord{Node: 7, TxSeq: seq,
			Ranges: []wal.RangeRec{{Region: 1, Off: seq * 8, Data: []byte("payload!")}}}
		buf := wal.AppendStandard(nil, rec)
		if _, err := dev.Append(buf); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
		want = append(want, buf...)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		appendRec(seq)
	}
	if err := c.StoreRegion(1, []byte("before-death")); err != nil {
		t.Fatal(err)
	}

	srvs[0].Close() // kill a replica mid-stream

	for seq := uint64(6); seq <= 10; seq++ {
		appendRec(seq)
	}
	if err := c.StoreRegion(1, []byte("after-death")); err != nil {
		t.Fatal(err)
	}
	got, err := c.LoadRegion(1)
	if err != nil || string(got) != "after-death" {
		t.Fatalf("load after death: %q, %v", got, err)
	}

	// Every acknowledged append must be readable through the quorum.
	rc, err := c.LogDevice(7).Open(0)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(rc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("log content diverged: got %d bytes, want %d", buf.Len(), len(want))
	}
}

// TestConcurrentWritersNeverShareATag: two quorum clients hammering
// the same region must never leave replicas holding different data
// under the same version tag — tags are writer-unique, so a tag maps
// to exactly one payload cluster-wide even when racing writers land on
// overlapping majority subsets.
func TestConcurrentWritersNeverShareATag(t *testing.T) {
	_, addrs := startReplicas(t, 3)
	c1 := dialQuorum(t, addrs)
	c2, err := replstore.DialView(addrs, replstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })

	var wg sync.WaitGroup
	for i, c := range []*replstore.Client{c1, c2} {
		wg.Add(1)
		go func(i int, c *replstore.Client) {
			defer wg.Done()
			for r := 0; r < 25; r++ {
				// A write may legitimately lose the version race and
				// error; silent divergence is what the test hunts.
				_ = c.StoreRegion(1, []byte(fmt.Sprintf("writer-%d-round-%d", i, r)))
			}
		}(i, c)
	}
	wg.Wait()
	c1.Quiesce()
	c2.Quiesce()

	byTag := map[uint64][]byte{}
	for i, a := range addrs {
		sc, err := store.Dial(a)
		if err != nil {
			t.Fatal(err)
		}
		ver, data, err := sc.ReadVersioned(1)
		sc.Close()
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		if prev, ok := byTag[ver]; ok && !bytes.Equal(prev, data) {
			t.Fatalf("replicas diverge under tag %d: %q vs %q", ver, prev, data)
		}
		byTag[ver] = data
	}
	// A quorum read must settle on a single (tag, data) pair.
	if _, err := c1.LoadRegion(1); err != nil {
		t.Fatal(err)
	}
}

// TestReconfigureAddReplica: a fresh replica joins via snapshot
// catch-up and ends digest-identical with the original members.
func TestReconfigureAddReplica(t *testing.T) {
	_, addrs := startReplicas(t, 3)
	c := dialQuorum(t, addrs)

	dev := c.LogDevice(9)
	for seq := uint64(1); seq <= 8; seq++ {
		rec := &wal.TxRecord{Node: 9, TxSeq: seq,
			Ranges: []wal.RangeRec{{Region: 2, Off: seq * 4, Data: []byte("abcd")}}}
		if _, err := dev.Append(wal.AppendStandard(nil, rec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.StoreRegion(2, []byte("seeded")); err != nil {
		t.Fatal(err)
	}

	joiner, err := store.NewServer("127.0.0.1:0", store.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { joiner.Close() })

	if err := c.AddReplica(joiner.Addr()); err != nil {
		t.Fatalf("add replica: %v", err)
	}
	v := c.View()
	if v.Epoch != 2 || len(v.Members) != 4 {
		t.Fatalf("view after add: %+v", v)
	}
	jv, err := joiner.CurrentView()
	if err != nil || jv.Epoch != 2 {
		t.Fatalf("joiner view: %+v, %v", jv, err)
	}
	c.Quiesce()
	digests, err := c.VerifyReplicas(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(digests) != 4 {
		t.Fatalf("digests: %v", digests)
	}
	var first uint64
	for _, d := range digests {
		if first == 0 {
			first = d
		} else if d != first {
			t.Fatalf("replica digests diverge after catch-up: %v", digests)
		}
	}
}

// TestReplaceDeadReplica: the full failover story — a replica dies,
// commits continue, a replacement catches up and takes its seat in a
// single view change, and the old member is out.
func TestReplaceDeadReplica(t *testing.T) {
	srvs, addrs := startReplicas(t, 3)
	c := dialQuorum(t, addrs)

	dev := c.LogDevice(4)
	for seq := uint64(1); seq <= 4; seq++ {
		rec := &wal.TxRecord{Node: 4, TxSeq: seq,
			Ranges: []wal.RangeRec{{Region: 3, Off: seq, Data: []byte("x")}}}
		if _, err := dev.Append(wal.AppendStandard(nil, rec)); err != nil {
			t.Fatal(err)
		}
	}
	srvs[2].Close()
	for seq := uint64(5); seq <= 8; seq++ {
		rec := &wal.TxRecord{Node: 4, TxSeq: seq,
			Ranges: []wal.RangeRec{{Region: 3, Off: seq, Data: []byte("x")}}}
		if _, err := dev.Append(wal.AppendStandard(nil, rec)); err != nil {
			t.Fatalf("append with dead minority: %v", err)
		}
	}

	fresh, err := store.NewServer("127.0.0.1:0", store.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fresh.Close() })
	if err := c.ReplaceReplica(addrs[2], fresh.Addr()); err != nil {
		t.Fatalf("replace: %v", err)
	}
	v := c.View()
	if v.Epoch != 2 || len(v.Members) != 3 || v.Contains(addrs[2]) || !v.Contains(fresh.Addr()) {
		t.Fatalf("view after replace: %+v", v)
	}
	c.Quiesce()
	digests, err := c.VerifyReplicas(2)
	if err != nil {
		t.Fatal(err)
	}
	var first uint64
	seen := 0
	for _, d := range digests {
		if seen == 0 {
			first = d
		} else if d != first {
			t.Fatalf("digests diverge after replacement: %v", digests)
		}
		seen++
	}
	if seen != 3 {
		t.Fatalf("expected 3 replica digests, got %d", seen)
	}

	// All 8 acknowledged records must survive on the new quorum.
	recs, err := wal.ReadDevice(c.LogDevice(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Fatalf("acknowledged records lost: got %d, want 8", len(recs))
	}
}

// TestDialViewRequiresBootstrap pins the no-view error.
func TestDialViewRequiresBootstrap(t *testing.T) {
	_, addrs := startReplicas(t, 2)
	if _, err := replstore.DialView(addrs, replstore.Options{}); err == nil {
		t.Fatal("DialView succeeded against uninitialized replicas")
	}
}
