package replstore

import (
	"errors"
	"fmt"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/obs"
	"lbc/internal/store"
)

// View-change protocol. A view is installed by writing it, with a
// bumped epoch, through a majority of the OLD view and a majority of
// the NEW view. Because any two majorities of the old view intersect,
// a client still coordinating under the old view cannot assemble a
// quorum that misses the new epoch; and because a majority of the new
// view holds it, clients adopting the new view can always rediscover
// it. Single-step reconfiguration (one Reconfigure at a time from one
// admin) keeps the argument inductive: epochs only advance, and the
// replica-side SetView guard rejects regressions.

// RefreshView re-reads the view from every replica this client knows
// about and adopts the highest epoch found. Called automatically when
// a quorum round falls short (the view may have changed under us).
func (c *Client) RefreshView() error {
	c.stats.Add(metrics.CtrStoreViewRefreshes, 1)
	c.mu.Lock()
	known := map[string]bool{}
	for _, m := range c.view.Members {
		known[m] = true
	}
	for a := range c.conns {
		known[a] = true
	}
	best := c.view.Clone()
	c.mu.Unlock()
	for a := range known {
		sc, err := c.conn(a)
		if err != nil {
			continue
		}
		v, err := sc.GetView()
		if err == nil && v.Epoch > best.Epoch {
			best = v
		}
	}
	c.adoptView(best)
	return nil
}

// adoptView installs v locally if it advances the epoch, dropping
// connections to replicas that left the membership.
func (c *Client) adoptView(v store.View) {
	c.mu.Lock()
	if v.Epoch <= c.view.Epoch {
		c.mu.Unlock()
		return
	}
	var gone []string
	for a := range c.conns {
		if !v.Contains(a) {
			gone = append(gone, a)
		}
	}
	c.view = v.Clone()
	c.mu.Unlock()
	for _, a := range gone {
		c.dropConn(a)
	}
}

// gatherAll runs fn on every listed replica and waits for all replies
// (no majority early-return): view installation needs per-set ack
// counts, not just a global majority.
func (c *Client) gatherAll(members []string, fn func(addr string, sc *store.Client) (any, error)) []reply {
	ch := make(chan reply, len(members))
	for _, m := range members {
		c.wg.Add(1)
		go func(m string) {
			defer c.wg.Done()
			sc, err := c.conn(m)
			if err != nil {
				ch <- reply{addr: m, err: err}
				return
			}
			v, err := fn(m, sc)
			ch <- reply{addr: m, val: v, err: err}
		}(m)
	}
	out := make([]reply, 0, len(members))
	for range members {
		out = append(out, <-ch)
	}
	return out
}

// Reconfigure moves the view from its current membership to
// (members - remove + add) while commits continue. Added replicas are
// caught up (snapshot + log tail) BEFORE the new view is installed, so
// they never count toward a quorum they cannot serve.
func (c *Client) Reconfigure(add, remove []string) error {
	old := c.View()
	if old.Epoch == 0 {
		return ErrNoView
	}
	newMembers := make([]string, 0, len(old.Members)+len(add))
	removed := map[string]bool{}
	for _, a := range remove {
		removed[a] = true
	}
	for _, m := range old.Members {
		if !removed[m] {
			newMembers = append(newMembers, m)
		}
	}
	for _, a := range add {
		if !old.Contains(a) && !removed[a] {
			newMembers = append(newMembers, a)
		}
	}
	if len(newMembers) == 0 {
		return errors.New("replstore: reconfiguration would empty the view")
	}
	for _, a := range add {
		if old.Contains(a) {
			continue
		}
		if err := c.catchUp(a); err != nil {
			return fmt.Errorf("replstore: catch-up of %s: %w", a, err)
		}
	}
	nv := store.View{Epoch: old.Epoch + 1, Members: newMembers}

	// Install through both majorities: the union hears the proposal,
	// and we require acks from a majority of the old AND new sets.
	union := append([]string(nil), old.Members...)
	for _, m := range newMembers {
		if !old.Contains(m) {
			union = append(union, m)
		}
	}
	start := time.Now()
	replies := c.gatherAll(union, func(_ string, sc *store.Client) (any, error) {
		cur, err := sc.SetView(nv)
		if err != nil {
			return nil, err
		}
		if cur.Epoch > nv.Epoch {
			return cur, fmt.Errorf("replstore: view %d superseded by %d", nv.Epoch, cur.Epoch)
		}
		return cur, nil
	})
	okOld, okNew := 0, 0
	for _, r := range replies {
		if r.err != nil {
			continue
		}
		if old.Contains(r.addr) {
			okOld++
		}
		if nv.Contains(r.addr) {
			okNew++
		}
	}
	if okOld < old.Majority() || okNew < nv.Majority() {
		return fmt.Errorf("replstore: view %d not installed (old %d/%d, new %d/%d acks)",
			nv.Epoch, okOld, old.Majority(), okNew, nv.Majority())
	}
	c.adoptView(nv)
	c.stats.Add(metrics.CtrStoreViewChanges, 1)
	if c.trace.Enabled() {
		c.trace.Emit(obs.Span{
			Name: obs.SpanViewChange, Tx: nv.Epoch,
			Start: start.UnixNano(), Dur: time.Since(start).Nanoseconds(),
			N: int64(len(newMembers)),
		})
	}
	return nil
}

// AddReplica catches addr up and adds it to the view.
func (c *Client) AddReplica(addr string) error { return c.Reconfigure([]string{addr}, nil) }

// RemoveReplica drops addr from the view.
func (c *Client) RemoveReplica(addr string) error { return c.Reconfigure(nil, []string{addr}) }

// ReplaceReplica swaps a dead replica for a fresh one in a single view
// change: the replacement is caught up first, then one epoch bump
// removes the dead member and admits the new one.
func (c *Client) ReplaceReplica(dead, fresh string) error {
	return c.Reconfigure([]string{fresh}, []string{dead})
}

// readVersionedQuorum performs a full-image quorum read: every replica
// returns its tagged copy, and the highest version among a majority
// wins. Used by catch-up, where the joiner needs the version tag too.
func (c *Client) readVersionedQuorum(id uint32) (uint64, []byte, error) {
	replies, err := c.withQuorum("read_versioned", func(_ string, sc *store.Client) (any, error) {
		ver, data, err := sc.ReadVersioned(id)
		return verReply{ver: ver, data: data, full: true}, err
	})
	if err != nil {
		return 0, nil, err
	}
	var best verReply
	for _, r := range replies {
		if r.err == nil && r.val.(verReply).ver >= best.ver {
			best = r.val.(verReply)
		}
	}
	return best.ver, best.data, nil
}

// catchUp brings a (fresh or stale) replica to the current state:
// a snapshot of every region image (read through the quorum, written
// with its version tag) plus a full copy of every per-node log from
// the freshest holder. The log copy runs in bounded delta rounds so
// appends that land during the transfer are picked up before the
// replica is admitted; the final round runs after the bulk is over and
// is normally empty.
func (c *Client) catchUp(addr string) error {
	start := time.Now()
	dst, err := c.conn(addr)
	if err != nil {
		return err
	}
	var copied int64

	// Region snapshot.
	ids, err := c.Regions()
	if err != nil {
		return err
	}
	for _, id := range ids {
		ver, img, err := c.readVersionedQuorum(id)
		if err != nil {
			return err
		}
		if ver == 0 {
			continue
		}
		if _, err := dst.WriteVersioned(id, ver, img); err != nil {
			return err
		}
		copied += int64(len(img))
	}

	// Log transfer: the joiner may hold a stale, diverged tail from a
	// previous incarnation, so each log restarts from zero and is
	// copied whole from the freshest replica, then topped up in delta
	// rounds until it matches.
	nodes, err := c.Logs()
	if err != nil {
		return err
	}
	for _, node := range sortedU32(nodes) {
		if err := dst.LogDevice(node).Reset(); err != nil {
			return err
		}
		for round := 0; ; round++ {
			_, maxAddr, maxSize, err := c.sizeQuorum(node)
			if err != nil {
				return err
			}
			have, err := dst.LogDevice(node).Size()
			if err != nil {
				return err
			}
			if have >= maxSize {
				break
			}
			if round >= 5 {
				return fmt.Errorf("replstore: catch-up of log %d did not converge (%d < %d)",
					node, have, maxSize)
			}
			donor, err := c.conn(maxAddr)
			if err != nil {
				return err
			}
			if err := c.copyLogRange(donor, dst, node, have, maxSize); err != nil {
				return err
			}
			copied += maxSize - have
		}
	}

	c.stats.Add(metrics.CtrStoreCatchupBytes, copied)
	if c.trace.Enabled() {
		c.trace.Emit(obs.Span{
			Name:  obs.SpanCatchup,
			Start: start.UnixNano(), Dur: time.Since(start).Nanoseconds(),
			N: copied,
		})
	}
	return nil
}
