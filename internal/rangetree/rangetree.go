// Package rangetree implements the ordered tree of modified ranges that
// backs rvm_set_range. RVM stores the ranges modified by a transaction in
// a binary tree ordered by address; the per-update overhead of searching
// this tree dominates update detection cost (paper §3.1, Figures 5-7).
//
// Two coalescing policies are provided:
//
//   - CoalesceFull: standard RVM behaviour — ranges that overlap or are
//     adjacent are merged so no redundant byte is ever logged.
//   - CoalesceExact: the paper's optimization — a range is coalesced only
//     when it exactly matches a previously added range. Objects modified
//     several times in one transaction still coalesce, but the
//     common compiler-generated case avoids the merge bookkeeping; the
//     paper reports a 5x reduction in set_range overhead.
//
// Two fast paths accelerate the common cases measured in Figures 5-6:
// an O(1) "redundant" hit when a range equals the most recently added
// range, and an O(1) "ordered" append when ranges arrive in ascending
// address order (the tree tracks its maximum node).
package rangetree

import "fmt"

// Policy selects the coalescing behaviour of a Tree.
type Policy int

const (
	// CoalesceFull merges overlapping and adjacent ranges (standard RVM).
	CoalesceFull Policy = iota
	// CoalesceExact merges only exact duplicates (optimized RVM, §3.1).
	CoalesceExact
)

func (p Policy) String() string {
	switch p {
	case CoalesceFull:
		return "full"
	case CoalesceExact:
		return "exact"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Range is a modified byte range within a region: [Off, Off+Len).
type Range struct {
	Off uint64
	Len uint32
}

// End returns the exclusive upper bound of the range.
func (r Range) End() uint64 { return r.Off + uint64(r.Len) }

// node is an AVL tree node with a parent pointer (needed so the ordered
// fast path can rebalance upward from an arbitrary attach point).
type node struct {
	r                   Range
	left, right, parent *node
	height              int8
}

// arenaChunk sizes the node arena. Chunks are never reallocated, so node
// pointers stay valid as the arena grows.
const arenaChunk = 256

// Tree is a set of modified ranges ordered by address. It is not safe
// for concurrent use; RVM serializes set_range per transaction.
type Tree struct {
	policy Policy
	root   *node
	max    *node // rightmost node, for the ordered fast path
	last   *node // most recently added node, for the redundant fast path
	size   int
	bytes  uint64 // sum of Len over all stored ranges

	chunks [][]node
	used   int // nodes used in the final chunk
	free   []*node
}

// New returns an empty tree with the given coalescing policy.
func New(p Policy) *Tree { return &Tree{policy: p} }

// Policy returns the tree's coalescing policy.
func (t *Tree) Policy() Policy { return t.policy }

// Len returns the number of distinct ranges stored.
func (t *Tree) Len() int { return t.size }

// Bytes returns the total length of all stored ranges. Under
// CoalesceFull this is exactly the number of unique modified bytes; under
// CoalesceExact overlapping (non-identical) ranges are double-counted,
// matching what optimized RVM writes to the log.
func (t *Tree) Bytes() uint64 { return t.bytes }

// Reset empties the tree, retaining its node arena for reuse by the next
// transaction.
func (t *Tree) Reset() {
	t.root, t.max, t.last = nil, nil, nil
	t.size, t.bytes = 0, 0
	t.used = 0
	if len(t.chunks) > 1 {
		t.chunks = t.chunks[:1]
	}
	t.free = t.free[:0]
}

// AddResult reports how Add handled a range.
type AddResult int

const (
	// AddedNew means a new node was inserted by full tree descent.
	AddedNew AddResult = iota
	// AddedOrdered means the range appended after the current maximum
	// (the ordered fast path).
	AddedOrdered
	// Coalesced means the range merged with existing ranges.
	Coalesced
	// CoalescedFast means the range exactly matched the previous Add
	// (the redundant fast path).
	CoalescedFast
)

func (r AddResult) String() string {
	switch r {
	case AddedNew:
		return "new"
	case AddedOrdered:
		return "ordered"
	case Coalesced:
		return "coalesced"
	case CoalescedFast:
		return "coalesced-fast"
	default:
		return fmt.Sprintf("AddResult(%d)", int(r))
	}
}

// keyLess orders ranges by (Off, Len). Under CoalesceFull the stored
// ranges never overlap so Off alone is discriminating; under
// CoalesceExact identical offsets with different lengths may coexist.
func keyLess(a, b Range) bool {
	if a.Off != b.Off {
		return a.Off < b.Off
	}
	return a.Len < b.Len
}

// Add records that [off, off+length) will be modified. A zero-length
// range is ignored and reported as CoalescedFast (it adds nothing).
func (t *Tree) Add(off uint64, length uint32) AddResult {
	if length == 0 {
		return CoalescedFast
	}
	r := Range{Off: off, Len: length}

	// Redundant fast path: exact match with the previous Add. This is
	// the case the paper's optimized set_range targets (an object
	// modified repeatedly within one transaction).
	if t.last != nil && t.last.r == r {
		return CoalescedFast
	}

	if t.policy == CoalesceExact {
		return t.addExact(r)
	}
	return t.addFull(r)
}

func (t *Tree) addExact(r Range) AddResult {
	// Ordered fast path: strictly beyond the current maximum key.
	if t.max != nil && keyLess(t.max.r, r) {
		n := t.newNode(r)
		n.parent = t.max
		t.max.right = n
		t.rebalanceFrom(t.max)
		t.max, t.last = n, n
		t.size++
		t.bytes += uint64(r.Len)
		return AddedOrdered
	}
	// Full descent; coalesce only on exact (Off, Len) match.
	if t.root == nil {
		n := t.newNode(r)
		t.root, t.max, t.last = n, n, n
		t.size++
		t.bytes += uint64(r.Len)
		return AddedNew
	}
	cur := t.root
	for {
		if r == cur.r {
			t.last = cur
			return Coalesced
		}
		if keyLess(r, cur.r) {
			if cur.left == nil {
				n := t.newNode(r)
				n.parent = cur
				cur.left = n
				t.finishInsert(cur, n)
				return AddedNew
			}
			cur = cur.left
		} else {
			if cur.right == nil {
				n := t.newNode(r)
				n.parent = cur
				cur.right = n
				t.finishInsert(cur, n)
				return AddedNew
			}
			cur = cur.right
		}
	}
}

func (t *Tree) addFull(r Range) AddResult {
	if t.root == nil {
		n := t.newNode(r)
		t.root, t.max, t.last = n, n, n
		t.size++
		t.bytes += uint64(r.Len)
		return AddedNew
	}
	// Ordered fast path: beyond the max and not touching it.
	if t.max != nil && r.Off > t.max.r.End() {
		n := t.newNode(r)
		n.parent = t.max
		t.max.right = n
		t.rebalanceFrom(t.max)
		t.max, t.last = n, n
		t.size++
		t.bytes += uint64(r.Len)
		return AddedOrdered
	}

	// Find the first stored range that overlaps or abuts r: start from
	// the last range whose Off <= r.End() and walk left neighbours.
	first := t.floorByOff(r.End())
	if first == nil || first.r.End() < r.Off {
		// No overlap: plain insert.
		n := t.insertDescend(r)
		t.last = n
		return AddedNew
	}
	// Walk left while the predecessor still touches r.
	for {
		p := t.predecessor(first)
		if p == nil || p.r.End() < r.Off {
			break
		}
		first = p
	}
	if first.r.Off > r.End() {
		// floor landed past r with no touch (can happen when floor
		// returned a range strictly after r.End? floorByOff prevents
		// this, but guard anyway).
		n := t.insertDescend(r)
		t.last = n
		return AddedNew
	}

	// Merge r with first and every successor that still touches the
	// growing range. first is updated in place (its Off can only move
	// left, which cannot violate ordering since everything between the
	// old and new Off was mergeable by construction).
	newOff := min64(first.r.Off, r.Off)
	newEnd := max64(first.r.End(), r.End())
	t.bytes -= uint64(first.r.Len)
	for {
		s := t.successor(first)
		if s == nil || s.r.Off > newEnd {
			break
		}
		if s.r.End() > newEnd {
			newEnd = s.r.End()
		}
		t.bytes -= uint64(s.r.Len)
		t.deleteNode(s)
	}
	if first.r == r {
		// Pure duplicate.
		first.r = Range{Off: newOff, Len: uint32(newEnd - newOff)}
		t.bytes += uint64(first.r.Len)
		t.last = first
		return Coalesced
	}
	first.r = Range{Off: newOff, Len: uint32(newEnd - newOff)}
	t.bytes += uint64(first.r.Len)
	t.last = first
	if t.max == nil || !keyLess(first.r, t.max.r) {
		// first may have become the max if the old max was merged away.
		t.max = t.rightmost()
	}
	return Coalesced
}

// insertDescend inserts r by full descent (no coalescing) and returns
// the new node.
func (t *Tree) insertDescend(r Range) *node {
	cur := t.root
	for {
		if keyLess(r, cur.r) {
			if cur.left == nil {
				n := t.newNode(r)
				n.parent = cur
				cur.left = n
				t.finishInsert(cur, n)
				return n
			}
			cur = cur.left
		} else {
			if cur.right == nil {
				n := t.newNode(r)
				n.parent = cur
				cur.right = n
				t.finishInsert(cur, n)
				return n
			}
			cur = cur.right
		}
	}
}

func (t *Tree) finishInsert(parent, n *node) {
	t.rebalanceFrom(parent)
	if t.max == nil || keyLess(t.max.r, n.r) {
		t.max = n
	}
	t.last = n
	t.size++
	t.bytes += uint64(n.r.Len)
}

// Visit calls fn for each range in ascending address order, stopping if
// fn returns false.
func (t *Tree) Visit(fn func(Range) bool) {
	for n := t.leftmost(); n != nil; n = t.successor(n) {
		if !fn(n.r) {
			return
		}
	}
}

// Ranges returns all stored ranges in ascending address order.
func (t *Tree) Ranges() []Range {
	out := make([]Range, 0, t.size)
	t.Visit(func(r Range) bool {
		out = append(out, r)
		return true
	})
	return out
}

// --- AVL machinery -------------------------------------------------------

func (t *Tree) newNode(r Range) *node {
	var n *node
	if ln := len(t.free); ln > 0 {
		n = t.free[ln-1]
		t.free = t.free[:ln-1]
		*n = node{}
	} else {
		if len(t.chunks) == 0 || t.used == arenaChunk {
			t.chunks = append(t.chunks, make([]node, arenaChunk))
			t.used = 0
		}
		c := t.chunks[len(t.chunks)-1]
		n = &c[t.used]
		t.used++
		*n = node{} // arena slots are reused across Reset
	}
	n.r = r
	n.height = 1
	return n
}

func height(n *node) int8 {
	if n == nil {
		return 0
	}
	return n.height
}

func (n *node) recalc() {
	lh, rh := height(n.left), height(n.right)
	if lh > rh {
		n.height = lh + 1
	} else {
		n.height = rh + 1
	}
}

func balance(n *node) int {
	return int(height(n.left)) - int(height(n.right))
}

// replaceChild makes newChild occupy oldChild's slot under parent (or the
// root if parent is nil).
func (t *Tree) replaceChild(parent, oldChild, newChild *node) {
	if parent == nil {
		t.root = newChild
	} else if parent.left == oldChild {
		parent.left = newChild
	} else {
		parent.right = newChild
	}
	if newChild != nil {
		newChild.parent = parent
	}
}

func (t *Tree) rotateLeft(n *node) *node {
	r := n.right
	t.replaceChild(n.parent, n, r)
	n.right = r.left
	if n.right != nil {
		n.right.parent = n
	}
	r.left = n
	n.parent = r
	n.recalc()
	r.recalc()
	return r
}

func (t *Tree) rotateRight(n *node) *node {
	l := n.left
	t.replaceChild(n.parent, n, l)
	n.left = l.right
	if n.left != nil {
		n.left.parent = n
	}
	l.right = n
	n.parent = l
	n.recalc()
	l.recalc()
	return l
}

// rebalanceFrom walks from n to the root, restoring heights and AVL
// balance.
func (t *Tree) rebalanceFrom(n *node) {
	for n != nil {
		n.recalc()
		b := balance(n)
		switch {
		case b > 1:
			if balance(n.left) < 0 {
				t.rotateLeft(n.left)
			}
			n = t.rotateRight(n)
		case b < -1:
			if balance(n.right) > 0 {
				t.rotateRight(n.right)
			}
			n = t.rotateLeft(n)
		}
		n = n.parent
	}
}

// deleteNode removes n from the tree and recycles it.
func (t *Tree) deleteNode(n *node) {
	if n == t.max {
		t.max = nil // recomputed below
	}
	var fixFrom *node
	switch {
	case n.left == nil:
		fixFrom = n.parent
		t.replaceChild(n.parent, n, n.right)
	case n.right == nil:
		fixFrom = n.parent
		t.replaceChild(n.parent, n, n.left)
	default:
		// Replace with in-order successor (leftmost of right subtree).
		s := n.right
		for s.left != nil {
			s = s.left
		}
		if s.parent == n {
			fixFrom = s
		} else {
			fixFrom = s.parent
			t.replaceChild(s.parent, s, s.right)
			s.right = n.right
			s.right.parent = s
		}
		t.replaceChild(n.parent, n, s)
		s.left = n.left
		s.left.parent = s
		s.recalc()
	}
	t.rebalanceFrom(fixFrom)
	t.size--
	if t.last == n {
		t.last = nil
	}
	if t.max == nil {
		t.max = t.rightmost()
	}
	*n = node{}
	t.free = append(t.free, n)
}

func (t *Tree) leftmost() *node {
	n := t.root
	if n == nil {
		return nil
	}
	for n.left != nil {
		n = n.left
	}
	return n
}

func (t *Tree) rightmost() *node {
	n := t.root
	if n == nil {
		return nil
	}
	for n.right != nil {
		n = n.right
	}
	return n
}

func (t *Tree) successor(n *node) *node {
	if n.right != nil {
		n = n.right
		for n.left != nil {
			n = n.left
		}
		return n
	}
	for n.parent != nil && n.parent.right == n {
		n = n.parent
	}
	return n.parent
}

func (t *Tree) predecessor(n *node) *node {
	if n.left != nil {
		n = n.left
		for n.right != nil {
			n = n.right
		}
		return n
	}
	for n.parent != nil && n.parent.left == n {
		n = n.parent
	}
	return n.parent
}

// floorByOff returns the node with the greatest Off <= off, or nil.
func (t *Tree) floorByOff(off uint64) *node {
	var best *node
	n := t.root
	for n != nil {
		if n.r.Off <= off {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	return best
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// checkInvariants validates AVL balance, ordering, parent links, and the
// byte/size accounting. It is exported to tests via export_test.go.
func (t *Tree) checkInvariants() error {
	var prev *Range
	var count int
	var bytes uint64
	var walk func(n *node) (int8, error)
	walk = func(n *node) (int8, error) {
		if n == nil {
			return 0, nil
		}
		if n.left != nil && n.left.parent != n {
			return 0, fmt.Errorf("bad parent link at %v.left", n.r)
		}
		if n.right != nil && n.right.parent != n {
			return 0, fmt.Errorf("bad parent link at %v.right", n.r)
		}
		lh, err := walk(n.left)
		if err != nil {
			return 0, err
		}
		// In-order position: check ordering here.
		if prev != nil && !keyLess(*prev, n.r) {
			return 0, fmt.Errorf("ordering violated: %v !< %v", *prev, n.r)
		}
		if t.policy == CoalesceFull && prev != nil && prev.End() >= n.r.Off {
			return 0, fmt.Errorf("uncoalesced overlap: %v touches %v", *prev, n.r)
		}
		r := n.r
		prev = &r
		count++
		bytes += uint64(n.r.Len)
		rh, err := walk(n.right)
		if err != nil {
			return 0, err
		}
		if d := lh - rh; d < -1 || d > 1 {
			return 0, fmt.Errorf("imbalance %d at %v", d, n.r)
		}
		h := lh
		if rh > h {
			h = rh
		}
		h++
		if n.height != h {
			return 0, fmt.Errorf("height %d != computed %d at %v", n.height, h, n.r)
		}
		return h, nil
	}
	if t.root != nil && t.root.parent != nil {
		return fmt.Errorf("root has parent")
	}
	if _, err := walk(t.root); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size %d != counted %d", t.size, count)
	}
	if bytes != t.bytes {
		return fmt.Errorf("bytes %d != counted %d", t.bytes, bytes)
	}
	if rm := t.rightmost(); rm != t.max {
		return fmt.Errorf("max pointer stale")
	}
	return nil
}
