package rangetree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func mustValid(t *testing.T, tr *Tree) {
	t.Helper()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(CoalesceFull)
	if tr.Len() != 0 || tr.Bytes() != 0 {
		t.Fatal("new tree not empty")
	}
	if got := tr.Ranges(); len(got) != 0 {
		t.Fatalf("Ranges() = %v", got)
	}
	mustValid(t, tr)
}

func TestZeroLengthIgnored(t *testing.T) {
	tr := New(CoalesceFull)
	if res := tr.Add(100, 0); res != CoalescedFast {
		t.Fatalf("zero-length add = %v", res)
	}
	if tr.Len() != 0 {
		t.Fatal("zero-length range stored")
	}
}

func TestSingleInsert(t *testing.T) {
	for _, p := range []Policy{CoalesceFull, CoalesceExact} {
		tr := New(p)
		if res := tr.Add(10, 5); res != AddedNew {
			t.Fatalf("%v: first add = %v", p, res)
		}
		if tr.Len() != 1 || tr.Bytes() != 5 {
			t.Fatalf("%v: len=%d bytes=%d", p, tr.Len(), tr.Bytes())
		}
		mustValid(t, tr)
	}
}

func TestRedundantFastPath(t *testing.T) {
	for _, p := range []Policy{CoalesceFull, CoalesceExact} {
		tr := New(p)
		tr.Add(10, 8)
		for i := 0; i < 100; i++ {
			if res := tr.Add(10, 8); res != CoalescedFast {
				t.Fatalf("%v: repeat add = %v", p, res)
			}
		}
		if tr.Len() != 1 || tr.Bytes() != 8 {
			t.Fatalf("%v: len=%d bytes=%d", p, tr.Len(), tr.Bytes())
		}
	}
}

func TestOrderedFastPath(t *testing.T) {
	for _, p := range []Policy{CoalesceFull, CoalesceExact} {
		tr := New(p)
		tr.Add(0, 8)
		ordered := 0
		for i := 1; i < 1000; i++ {
			res := tr.Add(uint64(i*16), 8)
			if res == AddedOrdered {
				ordered++
			}
		}
		if ordered != 999 {
			t.Fatalf("%v: ordered fast path hit %d/999", p, ordered)
		}
		if tr.Len() != 1000 {
			t.Fatalf("%v: len = %d", p, tr.Len())
		}
		mustValid(t, tr)
	}
}

func TestExactCoalesceNonAdjacent(t *testing.T) {
	tr := New(CoalesceExact)
	tr.Add(0, 8)
	tr.Add(100, 8)
	// Exact duplicate of an older (non-last) range: slow-path coalesce.
	if res := tr.Add(0, 8); res != Coalesced {
		t.Fatalf("exact dup = %v", res)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestExactPolicyKeepsOverlaps(t *testing.T) {
	tr := New(CoalesceExact)
	tr.Add(0, 16)
	tr.Add(8, 16) // overlaps but not exact: both kept (redundant log bytes)
	if tr.Len() != 2 || tr.Bytes() != 32 {
		t.Fatalf("len=%d bytes=%d, want 2/32", tr.Len(), tr.Bytes())
	}
	mustValid(t, tr)
}

func TestFullCoalesceOverlap(t *testing.T) {
	tr := New(CoalesceFull)
	tr.Add(0, 16)
	if res := tr.Add(8, 16); res != Coalesced {
		t.Fatalf("overlap add = %v", res)
	}
	want := []Range{{0, 24}}
	if got := tr.Ranges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ranges = %v, want %v", got, want)
	}
	if tr.Bytes() != 24 {
		t.Fatalf("bytes = %d", tr.Bytes())
	}
	mustValid(t, tr)
}

func TestFullCoalesceAdjacent(t *testing.T) {
	tr := New(CoalesceFull)
	tr.Add(0, 8)
	tr.Add(8, 8) // exactly adjacent: must merge
	if tr.Len() != 1 || tr.Bytes() != 16 {
		t.Fatalf("len=%d bytes=%d", tr.Len(), tr.Bytes())
	}
	mustValid(t, tr)
}

func TestFullCoalesceBridgesMany(t *testing.T) {
	tr := New(CoalesceFull)
	for i := 0; i < 10; i++ {
		tr.Add(uint64(i*100), 10) // 10 islands
	}
	// One giant range swallowing all islands.
	if res := tr.Add(0, 1000); res != Coalesced {
		t.Fatalf("bridge add = %v", res)
	}
	want := []Range{{0, 1000}}
	if got := tr.Ranges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ranges = %v", got)
	}
	mustValid(t, tr)
}

func TestFullCoalesceContained(t *testing.T) {
	tr := New(CoalesceFull)
	tr.Add(0, 100)
	if res := tr.Add(10, 5); res != Coalesced {
		t.Fatalf("contained add = %v", res)
	}
	if tr.Len() != 1 || tr.Bytes() != 100 {
		t.Fatalf("len=%d bytes=%d", tr.Len(), tr.Bytes())
	}
}

func TestFullCoalesceExtendsLeft(t *testing.T) {
	tr := New(CoalesceFull)
	tr.Add(50, 10)
	tr.Add(40, 10) // adjacent on the left
	want := []Range{{40, 20}}
	if got := tr.Ranges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ranges = %v", got)
	}
	mustValid(t, tr)
}

func TestReset(t *testing.T) {
	tr := New(CoalesceExact)
	for i := 0; i < 2000; i++ {
		tr.Add(uint64(i*8), 8)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Bytes() != 0 {
		t.Fatal("reset failed")
	}
	// Tree must be fully usable after reset.
	tr.Add(5, 5)
	if tr.Len() != 1 {
		t.Fatal("add after reset failed")
	}
	mustValid(t, tr)
}

func TestVisitStopsEarly(t *testing.T) {
	tr := New(CoalesceFull)
	for i := 0; i < 10; i++ {
		tr.Add(uint64(i*100), 10)
	}
	var seen int
	tr.Visit(func(Range) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("visited %d, want 3", seen)
	}
}

func TestRangesSorted(t *testing.T) {
	tr := New(CoalesceExact)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		tr.Add(uint64(r.Intn(100000)), uint32(r.Intn(64)+1))
	}
	got := tr.Ranges()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return keyLess(got[i], got[j]) }) {
		t.Fatal("Ranges() not sorted")
	}
	mustValid(t, tr)
}

// model is a brute-force interval set used as the oracle for the
// property tests below.
type model struct{ covered map[uint64]bool }

func newModel() *model { return &model{covered: map[uint64]bool{}} }

func (m *model) add(off uint64, length uint32) {
	for i := uint64(0); i < uint64(length); i++ {
		m.covered[off+i] = true
	}
}

// ranges returns the maximal runs of covered bytes.
func (m *model) ranges() []Range {
	keys := make([]uint64, 0, len(m.covered))
	for k := range m.covered {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []Range
	for _, k := range keys {
		if n := len(out); n > 0 && out[n-1].End() == k {
			out[n-1].Len++
		} else {
			out = append(out, Range{Off: k, Len: 1})
		}
	}
	return out
}

func TestPropertyFullCoalesceMatchesModel(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(CoalesceFull)
		m := newModel()
		for i := 0; i < int(n)+1; i++ {
			off := uint64(r.Intn(2000))
			ln := uint32(r.Intn(60) + 1)
			tr.Add(off, ln)
			m.add(off, ln)
			if err := tr.CheckInvariants(); err != nil {
				t.Logf("invariant after add(%d,%d): %v", off, ln, err)
				return false
			}
		}
		return reflect.DeepEqual(tr.Ranges(), m.ranges())
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyExactPolicyKeepsAllDistinct(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(CoalesceExact)
		distinct := map[Range]bool{}
		var bytes uint64
		for i := 0; i < int(n)+1; i++ {
			rg := Range{Off: uint64(r.Intn(500)), Len: uint32(r.Intn(32) + 1)}
			tr.Add(rg.Off, rg.Len)
			if !distinct[rg] {
				distinct[rg] = true
				bytes += uint64(rg.Len)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Logf("invariant: %v", err)
				return false
			}
		}
		return tr.Len() == len(distinct) && tr.Bytes() == bytes
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBytesNeverExceedSpan(t *testing.T) {
	f := func(offs []uint16) bool {
		tr := New(CoalesceFull)
		for _, o := range offs {
			tr.Add(uint64(o), 8)
		}
		// Under full coalescing, unique bytes <= 8 * distinct offsets.
		uniq := map[uint16]bool{}
		for _, o := range offs {
			uniq[o] = true
		}
		return tr.Bytes() <= uint64(8*len(uniq))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDescendingInserts(t *testing.T) {
	for _, p := range []Policy{CoalesceFull, CoalesceExact} {
		tr := New(p)
		for i := 999; i >= 0; i-- {
			tr.Add(uint64(i*16), 8)
		}
		if tr.Len() != 1000 {
			t.Fatalf("%v: len = %d", p, tr.Len())
		}
		mustValid(t, tr)
	}
}

func TestPolicyString(t *testing.T) {
	if CoalesceFull.String() != "full" || CoalesceExact.String() != "exact" {
		t.Fatal("policy strings wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatal("unknown policy string wrong")
	}
	if AddedNew.String() != "new" || CoalescedFast.String() != "coalesced-fast" ||
		AddedOrdered.String() != "ordered" || Coalesced.String() != "coalesced" {
		t.Fatal("result strings wrong")
	}
	if AddResult(9).String() != "AddResult(9)" {
		t.Fatal("unknown result string wrong")
	}
}

func BenchmarkAddOrdered(b *testing.B) {
	tr := New(CoalesceExact)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Add(uint64(i)*16, 8)
		if tr.Len() >= 1<<20 {
			tr.Reset()
		}
	}
}

func BenchmarkAddUnordered(b *testing.B) {
	tr := New(CoalesceExact)
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Add(uint64(r.Intn(1<<24))*16, 8)
		if tr.Len() >= 1<<20 {
			tr.Reset()
		}
	}
}

func BenchmarkAddRedundant(b *testing.B) {
	tr := New(CoalesceExact)
	tr.Add(64, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Add(64, 8)
	}
}

func BenchmarkAddFullCoalesce(b *testing.B) {
	tr := New(CoalesceFull)
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Add(uint64(r.Intn(1<<22)), 16)
		if tr.Len() >= 1<<18 {
			tr.Reset()
		}
	}
}
