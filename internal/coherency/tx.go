package coherency

import (
	"errors"
	"fmt"
	"io"
	"time"

	"lbc/internal/bufpool"
	"lbc/internal/lockmgr"
	"lbc/internal/merge"
	"lbc/internal/metrics"
	"lbc/internal/obs"
	"lbc/internal/parapply"
	"lbc/internal/rvm"
	"lbc/internal/wal"
)

// Tx is a distributed transaction: an RVM transaction plus two-phase
// segment locks and commit-time update propagation. It implements the
// left column of the paper's Table 1:
//
//	Trans.Init/Begin  -> Node.Begin
//	Trans.Acquire     -> Tx.Acquire  (calls rvm_setlockid_transaction)
//	Trans.SetRange    -> Tx.SetRange (calls rvm_set_range)
//	Trans.Commit      -> Tx.Commit   (calls rvm_end_transaction)
type Tx struct {
	node   *Node
	inner  *rvm.Tx
	grants []lockmgr.Grant
	shared []uint32 // lock ids held in shared (read) mode
	done   bool
}

// Begin starts a distributed transaction.
func (n *Node) Begin(mode rvm.TxMode) *Tx {
	return &Tx{node: n, inner: n.rvm.Begin(mode)}
}

// Acquire takes the segment lock inside the transaction (strict
// two-phase locking: all locks release at commit). It blocks until the
// token arrives and — per the §3.4 interlock — all updates through the
// last writer's sequence number have been applied locally. In lazy
// mode the pending records are pulled from the storage server here.
// In versioned mode buffered updates are accepted first so the
// transaction starts from the newest committed version.
func (t *Tx) Acquire(lockID uint32) error {
	if t.done {
		return rvm.ErrTxDone
	}
	for _, g := range t.grants {
		if g.LockID == lockID {
			return fmt.Errorf("coherency: lock %d already held by transaction", lockID)
		}
	}
	n := t.node
	n.Accept() // no-op unless versioned

	traced := t.inner.Traced()
	var t0 time.Time
	if traced {
		t0 = time.Now()
	}
	var g lockmgr.Grant
	var err error
	if n.prop == Lazy || (n.pullStall && n.peerLogs != nil) {
		// Lazy propagation — or eager with pull-on-stall fault
		// tolerance: take the token without the interlock, then pull
		// and apply pending records from the server logs ourselves.
		if n.acqTimeout > 0 {
			g, err = n.locks.AcquireNoInterlockTimeout(lockID, n.acqTimeout)
		} else {
			g, err = n.locks.AcquireNoInterlock(lockID)
		}
		if err == nil {
			if perr := n.pullUpdates(lockID, g.PrevWriteSeq); perr != nil {
				n.locks.Release(lockID, false)
				return perr
			}
		}
	} else if n.acqTimeout > 0 {
		g, err = n.locks.AcquireTimeout(lockID, n.acqTimeout)
	} else {
		g, err = n.locks.Acquire(lockID)
	}
	if err != nil {
		return err
	}
	// Holding the lock is the interest signal: updates to its segment
	// should route here from now on.
	n.registerInterest(lockID)
	if err := t.inner.SetLock(lockID, g.Seq, g.PrevWriteSeq); err != nil {
		n.locks.Release(lockID, false)
		return err
	}
	if traced {
		// Buffered on the transaction: the (node, txSeq) identity does
		// not exist until Commit, which stamps and emits it.
		t.inner.AddSpan(obs.Span{
			Name: obs.SpanLock, Lock: lockID,
			Start: t0.UnixNano(), Dur: time.Since(t0).Nanoseconds(),
			N: int64(g.Seq),
		})
	}
	t.grants = append(t.grants, g)
	return nil
}

// AcquireShared takes the segment lock in shared (read) mode: any
// number of readers on this node proceed concurrently, each guaranteed
// by the interlock to observe all committed updates through the lock's
// last writer. Shared holds release at commit like exclusive ones but
// leave no lock records (readers do not order writers). Writes under a
// merely shared lock are an application error (CheckLocks catches it).
func (t *Tx) AcquireShared(lockID uint32) error {
	if t.done {
		return rvm.ErrTxDone
	}
	for _, id := range t.shared {
		if id == lockID {
			return fmt.Errorf("coherency: lock %d already held shared by transaction", lockID)
		}
	}
	n := t.node
	n.Accept() // no-op unless versioned

	var err error
	if n.prop == Lazy || (n.pullStall && n.peerLogs != nil) {
		var g lockmgr.Grant
		g, err = n.locks.AcquireSharedNoInterlock(lockID)
		if err == nil {
			if perr := n.pullUpdates(lockID, g.PrevWriteSeq); perr != nil {
				n.locks.ReleaseShared(lockID)
				return perr
			}
		}
	} else {
		_, err = n.locks.AcquireShared(lockID)
	}
	if err != nil {
		return err
	}
	n.registerInterest(lockID)
	t.shared = append(t.shared, lockID)
	return nil
}

// SetRange declares an upcoming write (rvm_set_range). With CheckLocks
// enabled, writes inside a registered segment require its lock.
func (t *Tx) SetRange(reg *rvm.Region, off uint64, n uint32) error {
	if t.node.checkLk {
		if err := t.checkLocked(reg.ID(), off, off+uint64(n)); err != nil {
			return err
		}
	}
	return t.inner.SetRange(reg, off, n)
}

// Write is a convenience that declares and performs a write.
func (t *Tx) Write(reg *rvm.Region, off uint64, data []byte) error {
	if err := t.SetRange(reg, off, uint32(len(data))); err != nil {
		return err
	}
	copy(reg.Bytes()[off:], data)
	return nil
}

func (t *Tx) checkLocked(region rvm.RegionID, off, end uint64) error {
	t.node.mu.Lock()
	defer t.node.mu.Unlock()
	for lockID, seg := range t.node.segments {
		if !seg.overlaps(region, off, end) {
			continue
		}
		held := false
		for _, g := range t.grants {
			if g.LockID == lockID {
				held = true
				break
			}
		}
		if !held {
			return fmt.Errorf("%w: lock %d covering region %d [%d,%d)",
				ErrLockNotHeld, lockID, region, off, end)
		}
	}
	return nil
}

// Commit commits the transaction: the redo record is appended to the
// durable log, per-segment Wrote flags are resolved, the record is
// eagerly broadcast to peers with the modified regions mapped, and all
// locks are released (advancing their write chains).
func (t *Tx) Commit(mode rvm.CommitMode) (*wal.TxRecord, error) {
	if t.done {
		return nil, rvm.ErrTxDone
	}
	t.done = true
	n := t.node

	rec, err := t.inner.Commit(mode)
	if err != nil {
		// The locks are still held but the transaction is dead;
		// release them without advancing write chains.
		for _, g := range t.grants {
			n.locks.Release(g.LockID, false)
		}
		for _, id := range t.shared {
			n.locks.ReleaseShared(id)
		}
		return nil, err
	}

	// Resolve per-lock Wrote: a lock wrote only if the transaction
	// modified bytes inside its registered segment. Locks without a
	// registered segment fall back to "transaction wrote anything"
	// (the conservative default rvm chose).
	wrote := make(map[uint32]bool, len(t.grants))
	n.mu.Lock()
	for _, g := range t.grants {
		seg, ok := n.segments[g.LockID]
		if !ok {
			wrote[g.LockID] = rec.Wrote()
			continue
		}
		w := false
		for _, r := range rec.Ranges {
			if seg.overlaps(rvm.RegionID(r.Region), r.Off, r.End()) {
				w = true
				break
			}
		}
		wrote[g.LockID] = w
	}
	n.mu.Unlock()
	for i := range rec.Locks {
		rec.Locks[i].Wrote = wrote[rec.Locks[i].LockID]
	}

	// Pages-updated statistic (Table 3).
	n.stats.Add(metrics.CtrPagesTouched, int64(countPages(rec.Ranges, n.pageSize)))

	// Eager propagation: one send per interested peer, mirroring the
	// prototype's writev-per-node broadcast.
	if n.prop == Eager && rec.Wrote() {
		n.broadcast(rec)
	}
	// Piggyback propagation: retain the record so the next token pass
	// for its locks carries it (must precede Release, which may pass
	// the token).
	if n.prop == Piggyback && rec.Wrote() {
		n.retainRecord(rec)
	}

	// Two-phase release at commit; writing locks advance their chains
	// and satisfy the local interlock.
	for _, g := range t.grants {
		n.locks.Release(g.LockID, wrote[g.LockID])
	}
	for _, id := range t.shared {
		n.locks.ReleaseShared(id)
	}
	if len(t.grants) > 0 {
		// Local applied sequences moved; retry exactly the records
		// parked on the locks this commit advanced.
		ids := make([]uint32, 0, len(t.grants))
		for _, g := range t.grants {
			if wrote[g.LockID] {
				ids = append(ids, g.LockID)
			}
		}
		if len(ids) > 0 {
			n.pokeLocks(ids)
		}
	}
	return rec, nil
}

// Abort rolls the transaction back and releases its locks without
// advancing any write chain.
func (t *Tx) Abort() error {
	if t.done {
		return rvm.ErrTxDone
	}
	t.done = true
	err := t.inner.Abort()
	for _, g := range t.grants {
		t.node.locks.Release(g.LockID, false)
	}
	for _, id := range t.shared {
		t.node.locks.ReleaseShared(id)
	}
	return err
}

// BroadcastRecord sends an externally built record to every peer that
// has the modified regions mapped. The DSM baseline harness uses it to
// ship page/diff updates through the same wire path as log-based
// coherency; records without lock records apply unconditionally at
// receivers.
func (n *Node) BroadcastRecord(rec *wal.TxRecord) { n.broadcast(rec) }

// broadcast encodes the record in the configured wire format and sends
// it to every peer that has any of the modified regions mapped. With
// BatchUpdates the record is queued for the sender goroutine instead,
// which ships one multi-record frame per peer per batch.
func (n *Node) broadcast(rec *wal.TxRecord) {
	if n.batch {
		n.enqueueBroadcast(rec)
		return
	}
	peers := n.peersForRecord(rec)
	if len(peers) == 0 {
		return
	}
	msg, typ := n.encodeRecord(rec)
	traced := n.trace.Enabled()
	var t0 time.Time
	if traced {
		t0 = time.Now()
	}
	tm := metrics.StartTimer(n.stats, metrics.PhaseNetIO)
	for _, p := range peers {
		if err := n.tr.Send(p, typ, msg); err != nil {
			n.stats.Add(metrics.CtrSendErrors, 1)
			continue
		}
		n.stats.Add(metrics.CtrMsgsSent, 1)
		n.stats.Add(metrics.CtrBytesSent, int64(len(msg)))
		// Unbatched sends are never payload-compressed, so raw == wire;
		// keeping both counters moving makes the compression-ratio gauge
		// read 1.0 here instead of reporting a gap.
		n.stats.Add(metrics.CtrBytesSentRaw, int64(len(msg)))
		n.stats.Add(metrics.BytesSentTo(uint32(p)), int64(len(msg)))
	}
	tm.Stop()
	msgLen := len(msg)
	// Send does not retain the message (ChanEndpoint copies, TCP writes
	// synchronously before returning), so the encode buffer recycles
	// after the last peer.
	bufpool.Put(msg)
	if traced {
		n.trace.Emit(obs.Span{
			Name: obs.SpanBroadcast, Node: rec.Node, Tx: rec.TxSeq,
			Start: t0.UnixNano(), Dur: time.Since(t0).Nanoseconds(),
			N: int64(msgLen) * int64(len(peers)),
		})
	}
}

// pullUpdates implements lazy propagation: read the per-node logs on
// the storage server from our last read position, enqueue every new
// committed record, and wait until the lock's chain has been applied
// through targetSeq.
func (n *Node) pullUpdates(lockID uint32, targetSeq uint64) error {
	// Each round pulls the server logs, then parks on the interlock's
	// condition variable with a bounded window: MarkApplied wakes it
	// immediately, and only a genuinely missing record (still in
	// flight from an interleaved writer, or lost) costs another pull.
	const pullWindow = 2 * time.Millisecond
	deadline := time.Now().Add(10 * time.Second)
	rescanned := false
	firstRound := true
	for n.locks.Applied(lockID) < targetSeq {
		if time.Now().After(deadline) {
			return fmt.Errorf("coherency: pull for lock %d stalled at %d < %d",
				lockID, n.locks.Applied(lockID), targetSeq)
		}
		// Eager modes pull only as a backstop: the broadcast usually
		// trails the token pass by microseconds, so give it one window
		// before the first round of server-log reads. Later rounds skip
		// the grace — the frames are evidently not coming, and paying
		// the window per retry would compound the stall.
		if firstRound {
			firstRound = false
			if n.prop == Eager && n.locks.AwaitApplied(lockID, targetSeq, pullWindow) {
				return nil
			}
		}
		// Pull from every cluster member's server-side log, not just
		// the transport's live peers: a crashed node's committed
		// records are still in its log, and chains through them must
		// stay completable while it is down.
		for _, p := range n.clusterNodes {
			if p == n.tr.Self() {
				continue
			}
			if err := n.pullPeerLog(uint32(p)); err != nil {
				return err
			}
		}
		n.poke()
		if n.locks.AwaitApplied(lockID, targetSeq, pullWindow) {
			return nil
		}
		if !rescanned {
			// A full pull round made no progress. A checkpoint may have
			// head-trimmed a log to exactly the length of our saved read
			// position — a tail read then looks like "no news" even
			// though the bytes under the offset changed. Rescan every
			// log from its head once; duplicates are dropped as stale by
			// the appliers.
			rescanned = true
			n.rescanPeerLogs()
		}
	}
	return n.locks.WaitApplied(lockID, targetSeq)
}

// pullPeerLog fetches and enqueues the unread tail of one peer's log.
// Checkpoints head-trim these logs online, shifting every byte offset
// under us: when the saved read position lands beyond the end or
// inside a record, the log is rescanned from its new head and the
// position rebased. Re-enqueued records are dropped as stale by the
// appliers' lock-sequence and per-sender dedup, so a rescan is always
// safe — just wasted work, counted in pull_rescans.
func (n *Node) pullPeerLog(peer uint32) error {
	n.mu.Lock()
	from := n.readPos[peer]
	n.mu.Unlock()

	dev := n.peerLogs(peer)
	pos, _, suspectTrim, corrupt, err := n.scanPeerLog(dev, from)
	if err != nil {
		return fmt.Errorf("coherency: read peer %d log: %w", peer, err)
	}
	// Interior corruption on a pull read is overwhelmingly a transient
	// bad read: re-scan from the sound prefix a bounded number of
	// times — each retry re-reads the damaged range afresh, and the
	// records recovered past it are counted as repaired.
	for attempt := 0; corrupt && attempt < 2; attempt++ {
		pos2, scanned, _, corrupt2, rerr := n.scanPeerLog(dev, pos)
		if rerr != nil {
			break
		}
		if scanned > 0 {
			n.stats.Add(metrics.CtrRepairRecords, int64(scanned))
		}
		if pos2 > pos {
			pos = pos2
		}
		corrupt = corrupt2
	}
	if suspectTrim {
		n.stats.Add(metrics.CtrPullRescans, 1)
		pos, _, _, _, err = n.scanPeerLog(dev, 0)
		if err != nil {
			return fmt.Errorf("coherency: rescan peer %d log: %w", peer, err)
		}
		n.mu.Lock()
		// Rebase rather than max: the old position counted bytes that no
		// longer exist.
		n.readPos[peer] = pos
		n.mu.Unlock()
		return nil
	}
	n.mu.Lock()
	if pos > n.readPos[peer] {
		n.readPos[peer] = pos
	}
	n.mu.Unlock()
	return nil
}

// scanPeerLog reads one peer log from the given offset, enqueueing
// every committed record, and returns the offset just past the last
// complete one. suspectTrim reports read patterns indicating the log
// head was trimmed under the caller's saved position — the log is now
// shorter than the offset, the device refuses the offset outright, or
// the very first decode at a nonzero offset hits garbage (a mid-record
// landing) — rather than a clean tail. corrupt reports interior
// corruption just past the returned position: sound records exist
// beyond damage the scan could not cross, so the caller should retry
// from pos (a transient bad read clears on the re-read).
func (n *Node) scanPeerLog(dev wal.Device, from int64) (pos int64, scanned int, suspectTrim, corrupt bool, err error) {
	if from > 0 {
		if sz, serr := dev.Size(); serr == nil && sz < from {
			return from, 0, true, false, nil
		}
	}
	tm := metrics.StartTimer(n.stats, metrics.PhaseNetIO)
	rc, err := dev.Open(from)
	tm.Stop()
	if err != nil {
		if from > 0 {
			return from, 0, true, false, nil // offset beyond a shrunken log
		}
		return 0, 0, false, false, err
	}
	defer rc.Close()
	sc := wal.NewScanner(rc, from)
	pos = from
	for {
		rec, rerr := sc.Next()
		if rerr != nil {
			if errors.Is(rerr, wal.ErrInteriorCorruption) {
				n.stats.Add(metrics.CtrLogCorruption, 1)
				corrupt = true
			}
			break // io.EOF (possibly torn): stop at the valid prefix
		}
		scanned++
		pos += int64(wal.StandardSize(rec))
		if rec.Checkpoint {
			continue // durable marker, not a committed update
		}
		n.enqueue(rec)
	}
	if torn, _ := sc.Torn(); torn && scanned == 0 && from > 0 {
		// Garbage right at the resume offset: almost certainly a trim
		// landed us mid-record (a genuine torn tail still decodes
		// cleanly up to the tear). A spurious rescan is safe either way.
		return from, scanned, true, false, nil
	}
	return pos, scanned, false, corrupt, nil
}

// rescanPeerLogs re-reads every cluster member's log from its head and
// rebases the saved read positions — the recovery path for head trims
// a tail read cannot detect. Errors are per-log best effort: a log
// that cannot be read now simply keeps its old position.
func (n *Node) rescanPeerLogs() {
	for _, p := range n.clusterNodes {
		if p == n.tr.Self() {
			continue
		}
		n.stats.Add(metrics.CtrPullRescans, 1)
		pos, _, _, _, err := n.scanPeerLog(n.peerLogs(uint32(p)), 0)
		if err != nil {
			continue
		}
		n.mu.Lock()
		n.readPos[uint32(p)] = pos
		n.mu.Unlock()
	}
	n.poke()
}

// drainPeerLogs pulls every cluster member's server-side log to its
// current end (no-op without PeerLogs). The coordinated checkpoint
// runs it on every node before any log head is trimmed, so no lazy
// consumer is left holding a read position — or missing records —
// below a cut.
func (n *Node) drainPeerLogs() error {
	if n.peerLogs == nil {
		return nil
	}
	for _, p := range n.clusterNodes {
		if p == n.tr.Self() {
			continue
		}
		if err := n.pullPeerLog(uint32(p)); err != nil {
			return err
		}
	}
	return nil
}

// catchUpScanRetries bounds the fresh re-reads a catch-up scan makes
// when a log shows interior corruption before falling back to salvage.
const catchUpScanRetries = 3

// readLogRepair reads every record currently on dev, tolerating
// interior corruption. Each detection is counted
// (log_corruption_detected) and the read retried against a fresh
// stream — a transient read-back flip clears on re-read. Damage that
// survives every retry is salvaged: the corrupt range is quarantined
// and every sound record on both sides kept. Records recovered from at
// or past the first damage offset are counted as repaired
// (repair_records_pulled) — the old treat-corruption-as-end-of-log
// policy would have silently dropped all of them.
func (n *Node) readLogRepair(dev wal.Device) ([]*wal.TxRecord, error) {
	damagedAt := int64(-1)
	for attempt := 0; ; attempt++ {
		rc, err := dev.Open(0)
		if err != nil {
			return nil, err
		}
		sc := wal.NewScanner(rc, 0)
		if attempt >= catchUpScanRetries {
			sc.Salvage()
		}
		var (
			txs     []*wal.TxRecord
			starts  []int64
			scanErr error
		)
		for {
			start := sc.Pos()
			tx, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				scanErr = err
				break
			}
			starts = append(starts, start)
			txs = append(txs, tx)
		}
		rc.Close()
		if scanErr == nil {
			if damagedAt >= 0 {
				var repaired int64
				for _, s := range starts {
					if s >= damagedAt {
						repaired++
					}
				}
				n.stats.Add(metrics.CtrRepairRecords, repaired)
			}
			return txs, nil
		}
		var ice *wal.InteriorCorruptionError
		if !errors.As(scanErr, &ice) {
			return nil, scanErr
		}
		n.stats.Add(metrics.CtrLogCorruption, 1)
		if damagedAt < 0 {
			damagedAt = ice.Offset
		}
	}
}

// CatchUp brings a (re)starting node current: the permanent image it
// mapped generally lags the per-node logs on the storage server, so
// every committed record is read back, merged into lock-sequence
// order, and applied, and the per-lock interlock state is seeded to
// match. A log found interior-corrupt is re-read and, if the damage
// persists, quarantined — the sound records around the hole still
// apply, and records this node itself lost are re-fetched here from
// the copies in every peer log. Requires PeerLogs (any store-backed
// configuration). Call it after MapRegion and before running
// transactions.
func (n *Node) CatchUp() error {
	if n.peerLogs == nil {
		return errors.New("coherency: CatchUp requires PeerLogs (store-backed configuration)")
	}
	var all []*wal.TxRecord
	for _, id := range n.clusterNodes {
		dev := n.peerLogs(uint32(id))
		txs, err := n.readLogRepair(dev)
		if err != nil {
			return fmt.Errorf("coherency: catch-up scan log %d: %w", id, err)
		}
		for _, tx := range txs {
			if tx.Checkpoint {
				continue // durable marker, not a committed update
			}
			all = append(all, tx)
		}
		// Lazy bookkeeping: everything read here is consumed.
		sz, err := dev.Size()
		if err == nil {
			n.mu.Lock()
			if sz > n.readPos[uint32(id)] {
				n.readPos[uint32(id)] = sz
			}
			n.mu.Unlock()
		}
	}
	ordered, err := merge.Order(all)
	if err != nil {
		return fmt.Errorf("coherency: catch-up merge: %w", err)
	}
	// Replay through the dependency scheduler: disjoint chains install
	// in parallel, each chain in merge order (the same engine the live
	// receive path uses). Serial mode keeps one worker.
	workers := 0
	if n.serial {
		workers = 1
	} else if n.eng != nil {
		workers = n.eng.Workers()
	}
	stats, err := parapply.Replay(ordered, workers, func(_ int, rec *wal.TxRecord) error {
		if _, err := n.rvm.ApplyRecord(rec); err != nil {
			return fmt.Errorf("coherency: catch-up apply %d/%d: %w", rec.Node, rec.TxSeq, err)
		}
		for _, l := range rec.Locks {
			if l.Wrote {
				n.locks.MarkApplied(l.LockID, l.Seq)
			}
		}
		return nil
	})
	n.stats.Add(metrics.CtrCatchupRecords, int64(stats.Installed))
	if err != nil {
		return err
	}
	// Re-register interest from this node's own logged history: the
	// locks it wrote under before going down are the ones whose updates
	// should route here again (eviction purged it from peers' tables).
	if n.interestOn {
		var mine []uint32
		seen := map[uint32]bool{}
		for _, rec := range ordered {
			if rec.Node != uint32(n.tr.Self()) {
				continue
			}
			for _, l := range rec.Locks {
				if l.Wrote && !seen[l.LockID] {
					seen[l.LockID] = true
					mine = append(mine, l.LockID)
				}
			}
		}
		if len(mine) > 0 {
			n.registerInterest(mine...)
		}
	}
	return nil
}

// countPages counts distinct pages overlapped by the ranges (Table 3's
// "Pages Updated"). Ranges are sorted by (region, off) at commit.
func countPages(ranges []wal.RangeRec, pageSize int) int {
	ps := uint64(pageSize)
	var count int
	haveLast := false
	var lastRegion uint32
	var lastPage uint64
	for _, r := range ranges {
		first := r.Off / ps
		last := (r.End() - 1) / ps
		for p := first; p <= last; p++ {
			if haveLast && r.Region == lastRegion && p == lastPage {
				continue
			}
			// Ranges are address-sorted, so pages repeat only as the
			// immediately preceding page.
			count++
			haveLast, lastRegion, lastPage = true, r.Region, p
		}
	}
	return count
}
