package coherency

import (
	"fmt"
	"testing"

	"lbc/internal/wal"
)

func batchedCluster(t *testing.T, k int, size int) []*Node {
	t.Helper()
	return testCluster(t, k, size, func(i int, o *Options) { o.BatchUpdates = true })
}

// TestBatchedBroadcastDelivers drives writer/reader rounds over a
// cluster with batched update frames and checks the reader observes
// every committed value in order, i.e. the per-lock interlock holds
// across batch boundaries.
func TestBatchedBroadcastDelivers(t *testing.T) {
	nodes := batchedCluster(t, 2, 1024)
	for i := 0; i < 20; i++ {
		commitWrite(t, nodes[0], 1, 0, []byte(fmt.Sprintf("round-%02d", i)))
		got := readUnder(t, nodes[1], 1, 0, 8)
		if string(got) != fmt.Sprintf("round-%02d", i) {
			t.Fatalf("round %d: reader sees %q", i, got)
		}
	}
	if nodes[0].Stats().Counter("batch_frames") == 0 {
		t.Fatal("no batch frames were sent")
	}
}

// TestBroadcastFallsBackToStandardOnOverflow broadcasts a record the
// compressed wire encoding cannot represent (more than 2^16 lock
// records); the sender must fall back to the standard encoding inside
// the batch frame and the receiver must still apply it.
func TestBroadcastFallsBackToStandardOnOverflow(t *testing.T) {
	nodes := batchedCluster(t, 2, 1024)
	rec := &wal.TxRecord{
		Node: 9, TxSeq: 1,
		Locks:  make([]wal.LockRec, 1<<16),
		Ranges: []wal.RangeRec{{Region: 1, Off: 0, Data: []byte("wide")}},
	}
	rec.Locks[0] = wal.LockRec{LockID: 1, Seq: 1, PrevWriteSeq: 0, Wrote: true}
	for i := 1; i < len(rec.Locks); i++ {
		rec.Locks[i] = wal.LockRec{LockID: 1, Seq: 1, Wrote: false}
	}
	nodes[0].broadcast(rec)
	waitFor(t, func() bool { return nodes[1].Locks().Applied(1) == 1 })
	if got := string(region(t, nodes[1]).Bytes()[:4]); got != "wide" {
		t.Fatalf("receiver sees %q, want %q", got, "wide")
	}
	if nodes[0].Stats().Counter("compress_fallbacks") == 0 {
		t.Fatal("oversized record did not take the standard-encoding fallback")
	}
}
