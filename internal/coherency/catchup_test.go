package coherency

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"lbc/internal/lockmgr"
	"lbc/internal/netproto"
	"lbc/internal/rvm"
	"lbc/internal/store"
	"lbc/internal/wal"
)

// TestCatchUpAfterRestart simulates a client restart: the permanent
// image on the server lags the logs, so the restarted node must replay
// them before serving transactions.
func TestCatchUpAfterRestart(t *testing.T) {
	srv, err := store.NewServer("127.0.0.1:0", store.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hub := netproto.NewHub()
	ids := []netproto.NodeID{1, 2}
	// A lock whose ring birth home is node 1: node 2's endpoint does
	// not exist in session 1, so the acquire must be purely local.
	lock := uint32(0)
	for lockmgr.HomeOf(ids, lock) != 1 {
		lock++
	}

	mkNode := func(id netproto.NodeID, ep netproto.Transport) (*Node, *store.Client) {
		cli, err := store.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		r, err := rvm.Open(rvm.Options{Node: uint32(id), Log: cli.LogDevice(uint32(id)), Data: cli})
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(Options{
			RVM: r, Transport: ep, Nodes: ids,
			PeerLogs: func(node uint32) wal.Device { return cli.LogDevice(node) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return n, cli
	}

	// Session 1: node 1 commits several flushed transactions.
	n1, cli1 := mkNode(1, hub.Endpoint(1))
	if _, err := n1.MapRegion(1, 4096); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tx := n1.Begin(rvm.NoRestore)
		if err := tx.Acquire(lock); err != nil {
			t.Fatal(err)
		}
		tx.Write(n1.RVM().Region(1), uint64(i*16), []byte(fmt.Sprintf("commit-%d", i)))
		if _, err := tx.Commit(rvm.Flush); err != nil {
			t.Fatal(err)
		}
	}
	// Node 1 "crashes" — the server image was never updated.
	n1.Close()
	cli1.Close()

	// Session 2: node 2 starts fresh; its mapped image is stale.
	n2, _ := mkNode(2, hub.Endpoint(2))
	defer n2.Close()
	reg, err := n2.MapRegion(1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if string(reg.Bytes()[:8]) == "commit-0" {
		t.Fatal("test premise broken: image already current")
	}
	if err := n2.CatchUp(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		want := fmt.Sprintf("commit-%d", i)
		if got := string(reg.Bytes()[i*16 : i*16+8]); got != want {
			t.Fatalf("slot %d = %q, want %q", i, got, want)
		}
	}
	// The interlock state was seeded: the lock's chain reached seq 5,
	// so a local acquire must succeed without waiting (no peers alive
	// to deliver anything).
	if got := n2.Locks().Applied(lock); got != 5 {
		t.Fatalf("applied chain = %d, want 5", got)
	}
	if n2.Stats().Counter("catchup_records") != 5 {
		t.Fatalf("catchup_records = %d", n2.Stats().Counter("catchup_records"))
	}
}

// TestCatchUpThenLiveTraffic: records already caught up must not be
// re-applied when they also arrive on the live path.
func TestCatchUpThenLiveTraffic(t *testing.T) {
	srv, err := store.NewServer("127.0.0.1:0", store.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hub := netproto.NewHub()
	ids := []netproto.NodeID{1, 2}
	var nodes []*Node
	for _, id := range ids {
		cli, err := store.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		r, _ := rvm.Open(rvm.Options{Node: uint32(id), Log: cli.LogDevice(uint32(id)), Data: cli})
		n, err := New(Options{
			RVM: r, Transport: hub.Endpoint(id), Nodes: ids,
			PeerLogs: func(node uint32) wal.Device { return cli.LogDevice(node) },
		})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		if _, err := n.MapRegion(1, 1024); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		if err := n.WaitPeers(1, 1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	commitWrite(t, nodes[0], 0, 0, []byte("first"))
	// Node 2 catches up from the server log (the eager broadcast also
	// delivered the same record; chain-dedup must keep one apply).
	waitFor(t, func() bool { return nodes[1].Locks().Applied(0) >= 1 })
	if err := nodes[1].CatchUp(); err != nil {
		t.Fatal(err)
	}
	commitWrite(t, nodes[0], 0, 0, []byte("second"))
	got := readUnder(t, nodes[1], 0, 0, 6)
	if string(got) != "second" {
		t.Fatalf("after catch-up + live: %q", got)
	}
}

func TestCatchUpRequiresPeerLogs(t *testing.T) {
	hub := netproto.NewHub()
	r, _ := rvm.Open(rvm.Options{Node: 1})
	n, err := New(Options{RVM: r, Transport: hub.Endpoint(1), Nodes: []netproto.NodeID{1}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.CatchUp(); err == nil || !errors.Is(err, err) {
		t.Fatalf("err = %v", err)
	}
}
