package coherency

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/netproto"
	"lbc/internal/rvm"
	"lbc/internal/store"
	"lbc/internal/wal"
)

// lazyCluster builds k lazy-propagation nodes whose logs and database
// live on a shared storage server, the configuration of §2.2 where
// "segment updates could be fetched from the server, where all log
// records are cached in memory for a time".
func lazyCluster(t *testing.T, k int, size int) ([]*Node, *store.Server) {
	t.Helper()
	srv, err := store.NewServer("127.0.0.1:0", store.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	hub := netproto.NewHub()
	ids := make([]netproto.NodeID, k)
	for i := range ids {
		ids[i] = netproto.NodeID(i + 1)
	}
	nodes := make([]*Node, k)
	for i := range ids {
		cli, err := store.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cli.Close() })
		r, err := rvm.Open(rvm.Options{
			Node: uint32(ids[i]),
			Log:  cli.LogDevice(uint32(ids[i])),
			Data: cli,
		})
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(Options{
			RVM:         r,
			Transport:   hub.Endpoint(ids[i]),
			Nodes:       ids,
			Propagation: Lazy,
			PeerLogs:    func(node uint32) wal.Device { return cli.LogDevice(node) },
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		t.Cleanup(func() { n.Close() })
	}
	for _, n := range nodes {
		if _, err := n.MapRegion(1, size); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		if err := n.WaitPeers(1, k-1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return nodes, srv
}

func TestLazyPropagation(t *testing.T) {
	nodes, _ := lazyCluster(t, 2, 1024)
	commitWrite(t, nodes[0], 1, 100, []byte("pulled lazily"))
	// No eager traffic is generated in lazy mode.
	if got := nodes[0].Stats().Counter(metrics.CtrMsgsSent); got != 0 {
		t.Fatalf("lazy writer sent %d coherency messages", got)
	}
	got := readUnder(t, nodes[1], 1, 100, 13)
	if string(got) != "pulled lazily" {
		t.Fatalf("lazy reader sees %q", got)
	}
}

func TestLazyChainAcrossThreeNodes(t *testing.T) {
	nodes, _ := lazyCluster(t, 3, 1024)
	commitWrite(t, nodes[0], 1, 0, []byte("v1"))
	commitWrite(t, nodes[1], 1, 0, []byte("v2"))
	got := readUnder(t, nodes[2], 1, 0, 2)
	if string(got) != "v2" {
		t.Fatalf("node 3 sees %q", got)
	}
}

func TestLazyRepeatedRounds(t *testing.T) {
	nodes, _ := lazyCluster(t, 2, 1024)
	for i := 0; i < 10; i++ {
		w, r := nodes[i%2], nodes[(i+1)%2]
		commitWrite(t, w, 1, 0, []byte(fmt.Sprintf("it-%02d", i)))
		got := readUnder(t, r, 1, 0, 5)
		if string(got) != fmt.Sprintf("it-%02d", i) {
			t.Fatalf("round %d: %q", i, got)
		}
	}
}

// TestLazyThenRecovery checks the full distributed picture: lazy
// commits land on the server, the merge-free single-writer log
// recovers the database.
func TestLazyThenRecovery(t *testing.T) {
	nodes, srv := lazyCluster(t, 2, 1024)
	commitWrite(t, nodes[0], 1, 0, []byte("persist me"))

	dev, err := srv.Log(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rvm.Recover(dev, srv.Data(), rvm.RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1 {
		t.Fatalf("recovered %d records", res.Records)
	}
	img, err := srv.Data().LoadRegion(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(img[:10]) != "persist me" {
		t.Fatalf("server image = %q", img[:10])
	}
}

// TestEagerOverTCP runs the whole eager stack across real TCP sockets:
// transport mesh, lock protocol, and coherency broadcast.
func TestEagerOverTCP(t *testing.T) {
	var meshes []*netproto.TCPMesh
	ids := []netproto.NodeID{1, 2}
	for _, id := range ids {
		m, err := netproto.NewTCPMesh(id, "127.0.0.1:0", map[netproto.NodeID]string{})
		if err != nil {
			t.Fatal(err)
		}
		meshes = append(meshes, m)
		t.Cleanup(func() { m.Close() })
	}
	meshes[0].SetPeer(2, meshes[1].Addr())
	meshes[1].SetPeer(1, meshes[0].Addr())

	var nodes []*Node
	for i, id := range ids {
		r, _ := rvm.Open(rvm.Options{Node: uint32(id)})
		n, err := New(Options{RVM: r, Transport: meshes[i], Nodes: ids})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		t.Cleanup(func() { n.Close() })
	}
	for _, n := range nodes {
		if _, err := n.MapRegion(1, 4096); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		if err := n.WaitPeers(1, 1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	payload := bytes.Repeat([]byte("tcp!"), 256)
	commitWrite(t, nodes[0], 1, 0, payload)
	got := readUnder(t, nodes[1], 1, 0, len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted over TCP")
	}
	if nodes[0].Stats().Phase(metrics.PhaseNetIO) == 0 {
		t.Fatal("network I/O time not accrued")
	}
}

// TestLazyRandomConvergence: the convergence property under lazy
// server-pull propagation.
func TestLazyRandomConvergence(t *testing.T) {
	const (
		kLocks = 2
		segLen = 256
	)
	nodes, _ := lazyCluster(t, 3, kLocks*segLen)
	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(i + 99)))
			for k := 0; k < 15; k++ {
				lock := uint32(r.Intn(kLocks))
				tx := nodes[i].Begin(rvm.NoRestore)
				if err := tx.Acquire(lock); err != nil {
					t.Error(err)
					return
				}
				off := uint64(lock)*segLen + uint64(r.Intn(segLen-8))
				data := make([]byte, r.Intn(7)+1)
				r.Read(data)
				tx.Write(nodes[i].RVM().Region(1), off, data)
				if _, err := tx.Commit(rvm.NoFlush); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, n := range nodes {
		for l := uint32(0); l < kLocks; l++ {
			tx := n.Begin(rvm.NoRestore)
			if err := tx.Acquire(l); err != nil {
				t.Fatal(err)
			}
			tx.Commit(rvm.NoFlush)
		}
	}
	base := nodes[0].RVM().Region(1).Bytes()
	for i := 1; i < len(nodes); i++ {
		if !bytes.Equal(base, nodes[i].RVM().Region(1).Bytes()) {
			t.Fatalf("node %d diverged under lazy propagation", i+1)
		}
	}
}

// TestLazyPullSurvivesHeadTrim: checkpoint head trims move byte
// offsets under every lazy reader. A reader whose saved position is
// from the pre-trim coordinate space must detect the trim and rescan
// from the new head instead of stalling forever on a clean-looking or
// garbage tail. The equal-length records make the nastiest shape: the
// trimmed log grows back to exactly the stale read position, so only
// the no-progress rescan escalation can see the new record.
func TestLazyPullSurvivesHeadTrim(t *testing.T) {
	nodes, _ := lazyCluster(t, 2, 1024)
	commitWrite(t, nodes[0], 1, 100, []byte("before-trim!"))
	if got := readUnder(t, nodes[1], 1, 100, 12); string(got) != "before-trim!" {
		t.Fatalf("pre-trim read: %q", got)
	}

	// A checkpoint trims the writer's server-side log behind the
	// reader's back, then a new commit lands.
	cut, err := nodes[0].RVM().LogCut()
	if err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].RVM().TrimLogHeadLogical(cut); err != nil {
		t.Fatal(err)
	}
	commitWrite(t, nodes[0], 1, 100, []byte("after-trim!!"))

	if got := readUnder(t, nodes[1], 1, 100, 12); string(got) != "after-trim!!" {
		t.Fatalf("post-trim read: %q", got)
	}
	if nodes[1].Stats().Counter(metrics.CtrPullRescans) == 0 {
		t.Fatal("reader caught up without a head-trim rescan")
	}
}

// TestCheckpointDrainsLazyReaders: the checkpoint sync round. Node 2
// has never acquired the lock, so its read position is at the very
// start of node 1's log — everything the checkpoint wants to trim is
// still unpulled. The coordinator must drain the laggard before any
// log head moves; without the sync round the records are deleted
// unread and the laggard's later acquire wedges until timeout.
func TestCheckpointDrainsLazyReaders(t *testing.T) {
	nodes, _ := lazyCluster(t, 2, 1024)
	commitWrite(t, nodes[0], 1, 0, []byte("gen-one"))
	commitWrite(t, nodes[0], 1, 0, []byte("gen-two"))

	if err := nodes[0].CoordinatedCheckpoint([]uint32{1}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := readUnder(t, nodes[1], 1, 0, 7); string(got) != "gen-two" {
		t.Fatalf("laggard after checkpoint: %q", got)
	}
}

func TestLazySharedAcquirePulls(t *testing.T) {
	nodes, _ := lazyCluster(t, 2, 1024)
	commitWrite(t, nodes[0], 1, 0, []byte("for readers"))
	tx := nodes[1].Begin(rvm.NoRestore)
	if err := tx.AcquireShared(1); err != nil {
		t.Fatal(err)
	}
	got := string(nodes[1].RVM().Region(1).Bytes()[:11])
	if _, err := tx.Commit(rvm.NoFlush); err != nil {
		t.Fatal(err)
	}
	if got != "for readers" {
		t.Fatalf("lazy shared reader sees %q", got)
	}
}
