package coherency

import (
	"encoding/binary"
	"sort"
	"time"

	"lbc/internal/membership"
	"lbc/internal/metrics"
	"lbc/internal/netproto"
	"lbc/internal/obs"
	"lbc/internal/wal"
)

// Live membership integration: when the failure detector
// (internal/membership) evicts a peer, each survivor quarantines it
// and the surviving manager of every lock reclaims tokens the victim
// took down with it. Reclaim re-mints a lost token at the highest
// sequence any evidence supports — survivor token counters gathered
// over MsgTokenQuery/MsgTokenInfo, plus a scan of every cluster
// member's durable log on the storage server (the victim's committed
// writes are all there, which is what makes the re-mint safe: the new
// counters can never fall below a committed write, so the gap-free
// lock-chain invariant survives the eviction). See DESIGN.md §9.

// Membership message codes (within coherency's 0x20-0x2F range).
const (
	// MsgTokenQuery asks a peer for its token state: {lock u32}.
	MsgTokenQuery uint8 = 0x26
	// MsgTokenInfo answers: {lock u32, have u8, seq u64, lastWrite u64}.
	MsgTokenInfo uint8 = 0x27
)

// tokenInfo is one peer's answer to a MsgTokenQuery.
type tokenInfo struct {
	have      bool
	seq       uint64
	lastWrite uint64
}

// initMembership wires the monitor into the node: the lock manager
// routes around evicted peers, eviction/rejoin callbacks land here,
// and the token-state query pair used by reclaim is registered.
func (n *Node) initMembership() {
	mon := n.member
	n.locks.SetLiveView(mon.Alive)
	mon.OnEvict(n.handleEvict)
	mon.OnRejoin(n.handleRejoin)
	n.tr.Handle(MsgTokenQuery, n.onTokenQuery)
	n.tr.Handle(MsgTokenInfo, n.onTokenInfo)
}

// Membership returns the node's failure detector, or nil when live
// membership is not configured.
func (n *Node) Membership() *membership.Monitor { return n.member }

func (n *Node) onTokenQuery(from netproto.NodeID, payload []byte) {
	if len(payload) != 4 {
		return
	}
	lockID := binary.LittleEndian.Uint32(payload)
	seq, lastWrite, have := n.locks.TokenState(lockID)
	var b [21]byte
	binary.LittleEndian.PutUint32(b[0:], lockID)
	if have {
		b[4] = 1
	}
	binary.LittleEndian.PutUint64(b[5:], seq)
	binary.LittleEndian.PutUint64(b[13:], lastWrite)
	_ = n.tr.Send(from, MsgTokenInfo, b[:])
}

func (n *Node) onTokenInfo(from netproto.NodeID, payload []byte) {
	if len(payload) != 21 {
		return
	}
	lockID := binary.LittleEndian.Uint32(payload[0:])
	info := tokenInfo{
		have:      payload[4] == 1,
		seq:       binary.LittleEndian.Uint64(payload[5:]),
		lastWrite: binary.LittleEndian.Uint64(payload[13:]),
	}
	n.tokMu.Lock()
	if n.tokInfo[lockID] == nil {
		n.tokInfo[lockID] = map[netproto.NodeID]tokenInfo{}
	}
	n.tokInfo[lockID][from] = info
	ch := n.tokWake
	n.tokWake = make(chan struct{})
	n.tokMu.Unlock()
	close(ch)
}

// queryTokens asks every live peer for its token state on lockID and
// waits (bounded) for all answers. Missing answers degrade safety not
// at all — the log scan is the authoritative floor — only precision.
func (n *Node) queryTokens(lockID uint32, peers []netproto.NodeID, timeout time.Duration) map[netproto.NodeID]tokenInfo {
	n.tokMu.Lock()
	delete(n.tokInfo, lockID)
	n.tokMu.Unlock()

	var b [4]byte
	putU32(b[:], lockID)
	want := 0
	for _, p := range peers {
		if n.tr.Send(p, MsgTokenQuery, b[:]) == nil {
			want++
		}
	}
	deadline := time.After(timeout)
	for {
		n.tokMu.Lock()
		got := len(n.tokInfo[lockID])
		out := make(map[netproto.NodeID]tokenInfo, got)
		for p, i := range n.tokInfo[lockID] {
			out[p] = i
		}
		ch := n.tokWake
		n.tokMu.Unlock()
		if got >= want {
			return out
		}
		select {
		case <-ch:
		case <-deadline:
			return out
		}
	}
}

// scanLockLog walks every cluster member's durable log for the lock's
// records and returns the highest sequence seen and the highest
// writing sequence. Every committed write is in some member's log —
// including the victim's, whose log lives on the storage server — so
// these are hard floors for the re-minted counters.
func (n *Node) scanLockLog(lockID uint32) (maxSeq, maxWrite uint64) {
	if n.peerLogs == nil {
		return 0, 0
	}
	for _, id := range n.clusterNodes {
		dev := n.peerLogs(uint32(id))
		rc, err := dev.Open(0)
		if err != nil {
			continue
		}
		txs, _, _, err := wal.ReadAll(rc, 0)
		rc.Close()
		if err != nil {
			continue
		}
		for _, tx := range txs {
			for _, l := range tx.Locks {
				if l.LockID != lockID {
					continue
				}
				if l.Seq > maxSeq {
					maxSeq = l.Seq
				}
				if l.Wrote && l.Seq > maxWrite {
					maxWrite = l.Seq
				}
			}
		}
	}
	return maxSeq, maxWrite
}

// survivingManager returns the node responsible for reclaiming the
// lock after evictions: lockmgr's ManagerOf already routes around
// evicted peers through the live view, so every survivor computes the
// same answer from the shared eviction broadcast.
func (n *Node) survivingManager(lockID uint32) netproto.NodeID {
	return n.locks.ManagerOf(lockID)
}

// handleEvict runs (on its own goroutine) when the failure detector
// confirms an eviction: quarantine the victim, then reclaim every
// registered lock this node now manages.
func (n *Node) handleEvict(victim netproto.NodeID, epoch uint32) {
	traced := n.trace.Enabled()
	var t0 time.Time
	if traced {
		t0 = time.Now()
	}

	// Quarantine: stop broadcasting updates to the victim. Its inbound
	// frames are already dropped by the fence.
	n.mu.Lock()
	for _, peers := range n.regionPeers {
		delete(peers, victim)
	}
	locks := make([]uint32, 0, len(n.segments))
	for id := range n.segments {
		locks = append(locks, id)
	}
	n.mu.Unlock()
	sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })

	// The victim stops receiving routed updates; a rejoin re-registers
	// its interest through CatchUp.
	n.purgeInterest(victim)

	// Purge parked passes / stale requests aimed at the victim.
	n.locks.EvictPeer(victim)

	// Token reclaim, for the locks whose surviving manager is this node.
	live := make([]netproto.NodeID, 0, len(n.clusterNodes))
	for _, id := range n.clusterNodes {
		if id != n.tr.Self() && n.member.Alive(id) {
			live = append(live, id)
		}
	}
	for _, lockID := range locks {
		if n.survivingManager(lockID) != n.tr.Self() {
			continue
		}
		n.reclaimToken(lockID, live)
	}
	if traced {
		n.trace.Emit(obs.Span{
			Name: obs.SpanEvict, Peer: uint32(victim), Self: uint32(n.tr.Self()),
			Start: t0.UnixNano(), Dur: time.Since(t0).Nanoseconds(), N: int64(epoch),
		})
	}
}

// reclaimToken restores lock lockID to a usable state after an
// eviction. If a survivor (or this node) still holds the token, only
// the manager-side queue tail needs repair. Otherwise the token died
// with the victim and is re-minted here at counters no lower than any
// committed write: Seq = max(survivor counters, highest logged Seq),
// LastWriteSeq = highest logged writing Seq. The §3.4 interlock then
// forces the next holder to apply through that write before it runs,
// and pull-on-stall fetches any update the victim broadcast into the
// void — no committed write is lost, no sequence is reused by a
// logged record, so chaos.CheckLockChains holds across the eviction.
func (n *Node) reclaimToken(lockID uint32, live []netproto.NodeID) {
	infos := n.queryTokens(lockID, live, 2*time.Second)
	seq, lastWrite, have := n.locks.TokenState(lockID)
	if have {
		n.locks.SetQueueTail(lockID, n.tr.Self())
		return
	}
	for _, p := range live {
		if infos[p].have {
			n.locks.SetQueueTail(lockID, p)
			return
		}
	}

	// Token lost with the victim: re-mint.
	logSeq, logWrite := n.scanLockLog(lockID)
	remintSeq, remintLW := logSeq, logWrite
	if seq > remintSeq {
		remintSeq = seq
	}
	if lastWrite > remintLW {
		remintLW = lastWrite
	}
	for _, info := range infos {
		if info.seq > remintSeq {
			remintSeq = info.seq
		}
		if info.lastWrite > remintLW {
			remintLW = info.lastWrite
		}
	}
	if remintLW > remintSeq {
		remintSeq = remintLW
	}
	n.locks.SetQueueTail(lockID, n.tr.Self())
	n.locks.AdoptTokenKeepQueue(lockID, remintSeq, remintLW)
	n.stats.Add(metrics.CtrReclaimedTokens, 1)
	if n.trace.Enabled() {
		n.trace.Emit(obs.Span{
			Name: obs.SpanReclaim, Lock: lockID, Self: uint32(n.tr.Self()),
			Start: time.Now().UnixNano(), N: int64(remintSeq),
		})
	}
}

// handleRejoin runs when a readmitted peer announces it has caught up:
// put it back into every region's broadcast set so eager updates reach
// it again (idempotent with the supervisor's direct seeding).
func (n *Node) handleRejoin(peer netproto.NodeID, epoch uint32) {
	// The readmitted peer resumes managing its ring span: cached
	// stand-in resolutions are stale the moment the view flips back.
	n.locks.InvalidateRoutes()
	n.mu.Lock()
	for id := range n.regionPeers {
		if !n.regionPeers[id][peer] {
			n.regionPeers[id][peer] = true
			close(n.peersChanged)
			n.peersChanged = make(chan struct{})
		}
	}
	n.mu.Unlock()
	// The rejoiner's interest table started empty: replay our full set
	// so its commits route back to us without waiting for a stall.
	n.announceInterestTo(peer)
	if n.trace.Enabled() {
		n.trace.Emit(obs.Span{
			Name: obs.SpanRejoin, Peer: uint32(peer), Self: uint32(n.tr.Self()),
			Start: time.Now().UnixNano(), N: int64(epoch),
		})
	}
}
