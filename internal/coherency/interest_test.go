package coherency

import (
	"fmt"
	"testing"
	"time"

	"lbc/internal/lockmgr"
	"lbc/internal/metrics"
	"lbc/internal/netproto"
	"lbc/internal/rvm"
	"lbc/internal/store"
	"lbc/internal/wal"
)

// interestCluster builds k eager nodes with interest routing enabled,
// store-backed so the implied pull-on-stall path has logs to pull.
func interestCluster(t *testing.T, k int, size int) []*Node {
	t.Helper()
	srv, err := store.NewServer("127.0.0.1:0", store.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	hub := netproto.NewHub()
	ids := make([]netproto.NodeID, k)
	for i := range ids {
		ids[i] = netproto.NodeID(i + 1)
	}
	nodes := make([]*Node, k)
	for i := range ids {
		cli, err := store.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cli.Close() })
		r, err := rvm.Open(rvm.Options{
			Node: uint32(ids[i]),
			Log:  cli.LogDevice(uint32(ids[i])),
			Data: cli,
		})
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(Options{
			RVM:             r,
			Transport:       hub.Endpoint(ids[i]),
			Nodes:           ids,
			InterestRouting: true,
			PeerLogs:        func(node uint32) wal.Device { return cli.LogDevice(node) },
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		t.Cleanup(func() { n.Close() })
	}
	for _, n := range nodes {
		if _, err := n.MapRegion(1, size); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		if err := n.WaitPeers(1, k-1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return nodes
}

func TestInterestRoutingRequiresPeerLogs(t *testing.T) {
	hub := netproto.NewHub()
	r, _ := rvm.Open(rvm.Options{Node: 1})
	_, err := New(Options{
		RVM: r, Transport: hub.Endpoint(1), Nodes: []netproto.NodeID{1},
		InterestRouting: true,
	})
	if err == nil {
		t.Fatal("InterestRouting without PeerLogs accepted")
	}
}

// TestInterestRoutingCutsFrames: updates route only to peers that
// registered interest via acquisition; an uninterested peer receives
// zero frames yet still observes the data when it finally acquires
// (the pull backstop), after which frames route to it too.
func TestInterestRoutingCutsFrames(t *testing.T) {
	nodes := interestCluster(t, 3, 1024)
	lock := uint32(0)
	for lockmgr.HomeOf([]netproto.NodeID{1, 2, 3}, lock) != 1 {
		lock++
	}

	// Node 2 touches the lock once: that acquire registers interest.
	if got := readUnder(t, nodes[1], lock, 0, 4); string(got) != "\x00\x00\x00\x00" {
		t.Fatalf("initial read = %q", got)
	}
	waitFor(t, func() bool { return nodes[0].InterestedIn(lock, 2) })

	for i := 0; i < 5; i++ {
		commitWrite(t, nodes[0], lock, 0, []byte(fmt.Sprintf("write-%d", i)))
	}
	waitFor(t, func() bool { return nodes[1].Locks().Applied(lock) >= 6 })

	if got := nodes[2].Stats().Counter(metrics.CtrUpdateFramesRecv); got != 0 {
		t.Fatalf("uninterested node 3 received %d update frames, want 0", got)
	}
	if got := nodes[1].Stats().Counter(metrics.CtrUpdateFramesRecv); got < 5 {
		t.Fatalf("interested node 2 received %d update frames, want >= 5", got)
	}

	// The never-sent peer still reads the newest value: its acquire
	// pulls the missed records from the server logs.
	if got := readUnder(t, nodes[2], lock, 0, 7); string(got) != "write-4" {
		t.Fatalf("pull backstop: node 3 reads %q, want %q", got, "write-4")
	}
	// That acquire registered node 3's interest; new frames now arrive.
	waitFor(t, func() bool { return nodes[0].InterestedIn(lock, 3) })
	commitWrite(t, nodes[0], lock, 0, []byte("write-5"))
	waitFor(t, func() bool {
		return nodes[2].Stats().Counter(metrics.CtrUpdateFramesRecv) >= 1
	})
}

// TestDropInterestStopsRoutedUpdates: withdrawing interest stops the
// frames; correctness survives because the next acquire pulls.
func TestDropInterestStopsRoutedUpdates(t *testing.T) {
	nodes := interestCluster(t, 2, 1024)
	lock := uint32(0)
	for lockmgr.HomeOf([]netproto.NodeID{1, 2}, lock) != 1 {
		lock++
	}

	readUnder(t, nodes[1], lock, 0, 4)
	waitFor(t, func() bool { return nodes[0].InterestedIn(lock, 2) })
	commitWrite(t, nodes[0], lock, 0, []byte("before-drop"))
	waitFor(t, func() bool {
		return nodes[1].Stats().Counter(metrics.CtrUpdateFramesRecv) >= 1
	})

	nodes[1].DropInterest(lock)
	waitFor(t, func() bool { return !nodes[0].InterestedIn(lock, 2) })
	baseline := nodes[1].Stats().Counter(metrics.CtrUpdateFramesRecv)
	for i := 0; i < 3; i++ {
		commitWrite(t, nodes[0], lock, 0, []byte("after-drop-x"))
	}
	time.Sleep(50 * time.Millisecond)
	if got := nodes[1].Stats().Counter(metrics.CtrUpdateFramesRecv); got != baseline {
		t.Fatalf("dropped peer still received %d frames", got-baseline)
	}
	if got := readUnder(t, nodes[1], lock, 0, 12); string(got) != "after-drop-x" {
		t.Fatalf("post-drop read = %q", got)
	}
}

// TestEvictionPurgesInterest: an evicted peer is removed from every
// survivor's interest table, so nothing routes to it while it is out.
func TestEvictionPurgesInterest(t *testing.T) {
	nodes := interestCluster(t, 3, 1024)
	lock := uint32(0)
	for lockmgr.HomeOf([]netproto.NodeID{1, 2, 3}, lock) != 1 {
		lock++
	}

	readUnder(t, nodes[2], lock, 0, 4)
	waitFor(t, func() bool { return nodes[0].InterestedIn(lock, 3) })

	// The membership path (handleEvict) purges the victim on every
	// survivor; drive the purge directly here.
	nodes[0].purgeInterest(3)
	nodes[1].purgeInterest(3)
	if nodes[0].InterestedIn(lock, 3) {
		t.Fatal("victim still in the interest table after purge")
	}
	before := nodes[2].Stats().Counter(metrics.CtrUpdateFramesRecv)
	commitWrite(t, nodes[0], lock, 0, []byte("post-evict"))
	time.Sleep(50 * time.Millisecond)
	if got := nodes[2].Stats().Counter(metrics.CtrUpdateFramesRecv); got != before {
		t.Fatalf("evicted peer received %d routed frames", got-before)
	}
}

// TestRejoinerReregistersInterestThroughCatchUp: a restarted node's
// CatchUp replays its own logged writes and re-announces interest in
// those locks, so routed updates reach it again without a new acquire.
func TestRejoinerReregistersInterestThroughCatchUp(t *testing.T) {
	srv, err := store.NewServer("127.0.0.1:0", store.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ids := []netproto.NodeID{1, 2}
	// A lock whose birth home is node 2, the node that restarts: its
	// session-1 acquires are local (node 1 is not up yet).
	lock := uint32(0)
	for lockmgr.HomeOf(ids, lock) != 2 {
		lock++
	}

	mkNode := func(hub *netproto.Hub, id netproto.NodeID) *Node {
		cli, err := store.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cli.Close() })
		r, err := rvm.Open(rvm.Options{Node: uint32(id), Log: cli.LogDevice(uint32(id)), Data: cli})
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(Options{
			RVM: r, Transport: hub.Endpoint(id), Nodes: ids,
			InterestRouting: true,
			PeerLogs:        func(node uint32) wal.Device { return cli.LogDevice(node) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	// Session 1: node 2 alone writes under the lock, then "crashes".
	hub1 := netproto.NewHub()
	n2 := mkNode(hub1, 2)
	if _, err := n2.MapRegion(1, 1024); err != nil {
		t.Fatal(err)
	}
	tx := n2.Begin(rvm.NoRestore)
	if err := tx.Acquire(lock); err != nil {
		t.Fatal(err)
	}
	tx.Write(n2.RVM().Region(1), 0, []byte("pre-crash"))
	if _, err := tx.Commit(rvm.Flush); err != nil {
		t.Fatal(err)
	}
	n2.Close()

	// Session 2: both nodes start fresh; node 2's image is stale and
	// its in-memory interest state is gone.
	hub2 := netproto.NewHub()
	n1b := mkNode(hub2, 1)
	defer n1b.Close()
	n2b := mkNode(hub2, 2)
	defer n2b.Close()
	for _, n := range []*Node{n1b, n2b} {
		if _, err := n.MapRegion(1, 1024); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []*Node{n1b, n2b} {
		if err := n.WaitPeers(1, 1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := n2b.CatchUp(); err != nil {
		t.Fatal(err)
	}
	// The home re-seeds its token at the logged chain position — the
	// restart supervisor's surgery (see cluster.go Restart) — so fresh
	// grants continue the chain instead of reusing sequence 1.
	n2b.Locks().AdoptTokenKeepQueue(lock, 1, 1)
	// CatchUp re-registered the rejoiner's interest from its own log.
	waitFor(t, func() bool { return n1b.InterestedIn(lock, 2) })

	// A routed update now reaches the rejoiner without it re-acquiring.
	commitWrite(t, n1b, lock, 16, []byte("post-rejoin"))
	waitFor(t, func() bool {
		return n2b.Stats().Counter(metrics.CtrUpdateFramesRecv) >= 1
	})
	waitFor(t, func() bool { return n2b.Locks().Applied(lock) >= 2 })
	if got := readUnder(t, n2b, lock, 16, 11); string(got) != "post-rejoin" {
		t.Fatalf("rejoiner reads %q, want %q", got, "post-rejoin")
	}
}
