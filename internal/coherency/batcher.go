package coherency

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lbc/internal/bufpool"
	"lbc/internal/metrics"
	"lbc/internal/netproto"
	"lbc/internal/obs"
	"lbc/internal/wal"
)

// Network half of the group-commit pipeline: with Options.BatchUpdates
// set, eager broadcasts are queued into bounded per-peer send windows
// and a dedicated sender goroutine per peer ships one batch frame per
// drain instead of one transport message per transaction. Batch frames
// carry format-tagged records (compressed or standard headers), so the
// per-record fallback for wal.ErrTooLarge composes with batching, and
// whole frames additionally ship DEFLATE-compressed (MsgUpdateBatchC)
// when that saves wire bytes.
//
// Ordering: records enter each peer's queue in commit order, before
// their locks are released (Tx.Commit calls broadcast before Release),
// and a drain preserves queue order within the frame. The receiver
// decodes a frame's records in order and hands them to the applier,
// whose per-lock sequence interlock is the actual ordering authority —
// cross-frame or cross-peer reordering parks records exactly as it does
// for unbatched delivery.
//
// Flow control: the per-peer window (Options.SendWindow) caps bytes
// queued plus in flight. A full window blocks the committing
// transaction inside enqueueBroadcast — the same backpressure shape as
// wal.GroupWriter's bounded queue — but only against the slow peer;
// frames to every other peer keep flowing on their own senders. When
// the pull backstop is configured, a peer that stays stalled past
// Options.SendStallTimeout is downgraded: its queued backlog is
// dropped (counted slow_peer_drops) and the records reach it through
// the server-log pull at its next acquire, exactly as after a chaos
// drop.
//
// Buffer ownership (the zero-copy chain): encodeTaggedRecord writes the
// format tag and the record into one pooled buffer; that buffer is
// shared by every targeted peer's queue behind a refcount and recycles
// when the last peer's frame has been sent. A drain builds the standard
// batch-frame layout as a vector — one pooled skeleton holding the
// count and length words, aliased by the parts list — and hands the
// same vector either to wal.CompressChunks (compressed path, one pooled
// output frame) or to netproto.SendVec (plain path, scatter-gather all
// the way to the socket on TCPMesh). No intermediate flatten happens on
// the plain TCP path.

// Per-record format tags inside a batch frame.
const (
	batchFmtCompressed byte = 0
	batchFmtStandard   byte = 1
)

const (
	// compressMinBytes is the size heuristic's floor: frames smaller
	// than this ship plain (DEFLATE overhead dominates tiny frames).
	compressMinBytes = 64
	// compressMinSaving is the fraction of the raw size a compressed
	// frame must save to be worth shipping (1/8): deflate slightly
	// expands incompressible payloads, and a marginal win is not worth
	// the receiver's inflate.
	compressMinSavingDiv = 8
	// maxCompressedBatchRaw bounds the declared inflated size of a
	// received compressed frame. Far above any real batch (windows are
	// ~1 MiB), and it caps the amplification a hostile declared length
	// could ask for; the inflater additionally grows its buffer only as
	// decompressed bytes actually materialize.
	maxCompressedBatchRaw = 1 << 28
)

// errBadBatchC reports a structurally invalid compressed batch frame
// (short header, absurd declared size, or a stream that does not
// inflate to exactly the declared bytes).
var errBadBatchC = errors.New("coherency: malformed compressed batch frame")

// sharedPayload is one encoded, format-tagged record shared by every
// targeted peer's send queue; the pooled buffer recycles when the last
// holder releases it.
type sharedPayload struct {
	buf  []byte
	refs atomic.Int32
}

func (sp *sharedPayload) release() {
	if sp.refs.Add(-1) == 0 {
		bufpool.Put(sp.buf)
	}
}

// encodeRecord encodes rec in the node's wire format, returning the
// message and its type code. Records too large for the compressed
// format fall back to the standard encoding. The returned buffer comes
// from bufpool; the caller owns it and must Put it after the last send.
func (n *Node) encodeRecord(rec *wal.TxRecord) ([]byte, uint8) {
	if n.wire != Standard {
		b := bufpool.Get(wal.CompressedSize(rec))
		msg, err := wal.AppendCompressed(b, rec)
		if err == nil {
			return msg, MsgUpdate
		}
		bufpool.Put(b)
		n.stats.Add(metrics.CtrCompressFallbacks, 1)
	}
	return wal.AppendStandard(bufpool.Get(wal.StandardSize(rec)), rec), MsgUpdateStd
}

// encodeTaggedRecord encodes rec directly behind its one-byte batch
// format tag: tag and record share a single pooled buffer, so nothing
// is re-copied between encode and the per-peer send queues.
func (n *Node) encodeTaggedRecord(rec *wal.TxRecord) []byte {
	if n.wire != Standard {
		b := append(bufpool.Get(1+wal.CompressedSize(rec)), batchFmtCompressed)
		msg, err := wal.AppendCompressed(b, rec)
		if err == nil {
			return msg
		}
		bufpool.Put(b)
		n.stats.Add(metrics.CtrCompressFallbacks, 1)
	}
	b := append(bufpool.Get(1+wal.StandardSize(rec)), batchFmtStandard)
	return wal.AppendStandard(b, rec)
}

// peerSender owns one peer's bounded send window: a queue of shared
// record payloads plus the bytes of any frame currently being written,
// together capped at Node.sendWindow. One goroutine drains the queue,
// so a peer whose transport writes stall delays only its own frames.
type peerSender struct {
	n    *Node
	peer netproto.NodeID

	mu       sync.Mutex
	wake     chan struct{} // closed+replaced on every state change
	q        []*sharedPayload
	inFlight int // bytes queued or being written, charged against the window
	closed   bool
}

// notifyLocked wakes everyone waiting on this sender's state (the run
// loop and blocked enqueuers). The close+replace idiom instead of a
// sync.Cond because the slow-peer downgrade needs a timed wait.
func (ps *peerSender) notifyLocked() {
	close(ps.wake)
	ps.wake = make(chan struct{})
}

// senderFor returns the sender for p, starting it on first use, or nil
// when the node is shutting down.
func (n *Node) senderFor(p netproto.NodeID) *peerSender {
	n.psMu.Lock()
	defer n.psMu.Unlock()
	if n.psClosed {
		return nil
	}
	ps, ok := n.peerSenders[p]
	if !ok {
		ps = &peerSender{n: n, peer: p, wake: make(chan struct{})}
		n.peerSenders[p] = ps
		n.wg.Add(1)
		go ps.run()
	}
	return ps
}

// closeSenders marks every sender closed (they drain their queues and
// exit; Node.Close's wg.Wait observes that) and stops new ones from
// starting. Called once from Close, inside closeOne.
func (n *Node) closeSenders() {
	n.psMu.Lock()
	n.psClosed = true
	senders := make([]*peerSender, 0, len(n.peerSenders))
	for _, ps := range n.peerSenders {
		senders = append(senders, ps)
	}
	n.psMu.Unlock()
	for _, ps := range senders {
		ps.mu.Lock()
		ps.closed = true
		ps.notifyLocked()
		ps.mu.Unlock()
	}
}

// enqueueBroadcast encodes rec once and admits it to every targeted
// peer's send window, blocking (backpressure into the committing
// transaction) while a window is full.
func (n *Node) enqueueBroadcast(rec *wal.TxRecord) {
	peers := n.peersForRecord(rec)
	if len(peers) == 0 {
		return
	}
	sp := &sharedPayload{buf: n.encodeTaggedRecord(rec)}
	sp.refs.Store(int32(len(peers)))
	if n.trace.Enabled() {
		// The record's network phase starts here; the per-peer frame
		// cost shows up as net.batch_frame spans from the senders.
		n.trace.Emit(obs.Span{
			Name: obs.SpanBroadcast, Node: rec.Node, Tx: rec.TxSeq,
			Start: time.Now().UnixNano(),
			N:     int64(len(sp.buf)) * int64(len(peers)),
		})
	}
	for _, p := range peers {
		ps := n.senderFor(p)
		if ps == nil {
			sp.release() // shutting down
			continue
		}
		ps.enqueue(sp)
	}
}

// enqueue admits sp to the peer's queue, blocking while the send window
// is full. A payload always enters an empty window even if it alone
// exceeds it — an oversized record must not deadlock. When the wait
// outlives the node's stall timeout and the pull backstop is
// configured, the peer is downgraded: its queued backlog is dropped and
// it re-fetches those records from the server logs at its next acquire
// (the exact recovery path chaos drops exercise), so one wedged peer
// costs a bounded stall instead of stopping every commit. Without the
// backstop a drop would lose the records forever, so the enqueue keeps
// blocking — memory stays bounded by the window either way.
func (ps *peerSender) enqueue(sp *sharedPayload) {
	n := ps.n
	size := len(sp.buf)
	canDrop := n.pullStall && n.peerLogs != nil
	var stallStart time.Time
	var timer *time.Timer
	var timeout <-chan time.Time
	ps.mu.Lock()
	for ps.inFlight > 0 && ps.inFlight+size > n.sendWindow && !ps.closed {
		if stallStart.IsZero() {
			stallStart = time.Now()
			n.stats.Add(metrics.CtrSendStalls, 1)
			if canDrop {
				timer = time.NewTimer(n.stallTmo)
				timeout = timer.C
			}
		}
		w := ps.wake
		ps.mu.Unlock()
		select {
		case <-w:
			ps.mu.Lock()
		case <-timeout:
			ps.mu.Lock()
			dropped := ps.q
			ps.q = nil
			for _, d := range dropped {
				ps.inFlight -= len(d.buf)
				d.release()
			}
			if len(dropped) > 0 {
				n.stats.Add(metrics.CtrSlowPeerDrops, int64(len(dropped)))
				ps.notifyLocked()
			}
			// Only the in-flight frame still occupies the window now;
			// the transport's write timeout bounds how long that lasts,
			// so keep waiting on wake without re-arming.
			timeout = nil
		}
	}
	if ps.closed {
		ps.mu.Unlock()
		sp.release()
		return
	}
	ps.q = append(ps.q, sp)
	ps.inFlight += size
	ps.notifyLocked()
	ps.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	if !stallStart.IsZero() {
		n.stats.Observe(metrics.HistSendStallNS, time.Since(stallStart).Nanoseconds())
	}
}

// run drains the queue: each iteration takes everything queued (natural
// coalescing — commits that land while a frame is being written join
// the next one) and ships it as a single frame. The window bytes are
// released only after the send completes, so inFlight really is queued
// plus in-flight. Exits once closed with an empty queue.
func (ps *peerSender) run() {
	n := ps.n
	defer n.wg.Done()
	for {
		ps.mu.Lock()
		for len(ps.q) == 0 && !ps.closed {
			w := ps.wake
			ps.mu.Unlock()
			<-w
			ps.mu.Lock()
		}
		if len(ps.q) == 0 {
			ps.mu.Unlock()
			return // closed and drained
		}
		batch := ps.q
		ps.q = nil
		ps.mu.Unlock()

		ps.ship(batch)

		freed := 0
		for _, sp := range batch {
			freed += len(sp.buf)
		}
		ps.mu.Lock()
		ps.inFlight -= freed
		ps.notifyLocked()
		ps.mu.Unlock()
		for _, sp := range batch {
			sp.release()
		}
	}
}

// ship sends one batch frame carrying the drained records, choosing
// between the compressed (MsgUpdateBatchC) and plain (MsgUpdateBatch)
// encodings by the size heuristic. The standard batch-frame byte stream
// is built as a vector — count and length words in one pooled skeleton,
// record payloads aliased in place — so the compressed path deflates it
// without materializing the concatenation and the plain path hands it
// to the transport as a scatter-gather write.
func (ps *peerSender) ship(batch []*sharedPayload) {
	n := ps.n
	traced := n.trace.Enabled()
	var t0 time.Time
	if traced {
		t0 = time.Now()
	}
	tm := metrics.StartTimer(n.stats, metrics.PhaseNetIO)
	defer tm.Stop()

	skel := bufpool.Get(4 + 4*len(batch))
	skel = skel[:4+4*len(batch)]
	putU32(skel[0:4], uint32(len(batch)))
	parts := make([][]byte, 0, 1+2*len(batch))
	parts = append(parts, skel[0:4])
	rawSize := 4
	off := 4
	for _, sp := range batch {
		putU32(skel[off:off+4], uint32(len(sp.buf)))
		parts = append(parts, skel[off:off+4], sp.buf)
		off += 4
		rawSize += 4 + len(sp.buf)
	}

	var err error
	wire := rawSize
	compressed := false
	sent := false
	if !n.noCompress {
		if rawSize >= compressMinBytes {
			frame := bufpool.Get(4 + rawSize)
			var hdr [4]byte
			putU32(hdr[:], uint32(rawSize))
			frame = append(frame, hdr[:]...)
			frame = wal.CompressChunks(frame, parts...)
			if len(frame) <= rawSize-rawSize/compressMinSavingDiv {
				compressed = true
				wire = len(frame)
				err = n.tr.Send(ps.peer, MsgUpdateBatchC, frame)
				sent = true
			} else {
				n.stats.Add(metrics.CtrCompressSkips, 1)
			}
			bufpool.Put(frame)
		} else {
			n.stats.Add(metrics.CtrCompressSkips, 1)
		}
	}
	if !sent {
		err = netproto.SendVec(n.tr, ps.peer, MsgUpdateBatch, parts)
	}
	bufpool.Put(skel)
	if err != nil {
		n.stats.Add(metrics.CtrSendErrors, 1)
		return
	}
	n.stats.Add(metrics.CtrMsgsSent, 1)
	n.stats.Add(metrics.CtrBytesSent, int64(wire))
	n.stats.Add(metrics.CtrBytesSentRaw, int64(rawSize))
	n.stats.Add(metrics.BytesSentTo(uint32(ps.peer)), int64(wire))
	n.stats.Add(metrics.CtrBatchFrames, 1)
	n.stats.Add(metrics.CtrBatchRecords, int64(len(batch)))
	if compressed {
		n.stats.Add(metrics.CtrCompressedFrames, 1)
	}
	if traced {
		n.trace.Emit(obs.Span{
			Name: obs.SpanFrame, Peer: uint32(ps.peer),
			Start: t0.UnixNano(), Dur: time.Since(t0).Nanoseconds(),
			N: int64(len(batch)),
		})
	}
}

// onUpdateBatch decodes a plain batch frame and feeds its records to
// the apply pipeline in frame order.
func (n *Node) onUpdateBatch(from netproto.NodeID, payload []byte) {
	n.stats.Add(metrics.CtrUpdateFramesRecv, 1)
	n.dispatchBatch(from, payload)
}

// onUpdateBatchC handles the compressed batch frame: a u32 declared raw
// size followed by the DEFLATE stream of the standard frame bytes.
// Decoding dispatches by frame type, so plain and compressed frames
// interoperate on one link. Corrupt tags, truncated streams, and
// bomb-sized declared lengths all land in decodeError — never a panic
// or an unbounded allocation.
func (n *Node) onUpdateBatchC(from netproto.NodeID, payload []byte) {
	n.stats.Add(metrics.CtrUpdateFramesRecv, 1)
	raw, err := inflateBatch(payload)
	if err != nil {
		n.decodeError(from)
		return
	}
	n.dispatchBatch(from, raw)
	bufpool.Put(raw)
}

// inflateBatch recovers the standard batch-frame bytes from a
// MsgUpdateBatchC payload into a pooled buffer the caller must Put.
func inflateBatch(payload []byte) ([]byte, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: %d-byte frame", errBadBatchC, len(payload))
	}
	rawLen := int(getU32(payload))
	if rawLen < 4 || rawLen > maxCompressedBatchRaw {
		return nil, fmt.Errorf("%w: declared size %d", errBadBatchC, rawLen)
	}
	// The declared size caps the inflater; the initial allocation is
	// additionally clamped so the declared length alone cannot force a
	// large buffer — growth beyond it happens only as real data arrives.
	prealloc := rawLen
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	out, err := wal.Decompress(bufpool.Get(prealloc), payload[4:], rawLen)
	if err != nil {
		bufpool.Put(out)
		return nil, err
	}
	if len(out) != rawLen {
		bufpool.Put(out)
		return nil, fmt.Errorf("%w: inflated %d bytes, declared %d", errBadBatchC, len(out), rawLen)
	}
	return out, nil
}

// dispatchBatch decodes the standard batch-frame bytes (however they
// arrived) and feeds the records to the apply pipeline in frame order.
func (n *Node) dispatchBatch(from netproto.NodeID, frame []byte) {
	parts, err := netproto.SplitBatch(frame)
	if err != nil {
		n.decodeError(from)
		return
	}
	for _, part := range parts {
		if len(part) < 1 {
			n.decodeError(from)
			return
		}
		switch part[0] {
		case batchFmtCompressed:
			rec, err := wal.DecodeCompressed(part[1:])
			if err != nil {
				n.decodeError(from)
				return
			}
			if n.serial {
				n.enqueue(copyRecord(rec))
			} else {
				n.enqueue(n.adoptRecord(rec))
			}
		case batchFmtStandard:
			rec, _, err := wal.DecodeStandard(part[1:])
			if err != nil {
				n.decodeError(from)
				return
			}
			n.enqueue(rec) // DecodeStandard already copies data
		default:
			n.decodeError(from)
			return
		}
	}
}
