package coherency

import (
	"time"

	"lbc/internal/bufpool"
	"lbc/internal/metrics"
	"lbc/internal/netproto"
	"lbc/internal/obs"
	"lbc/internal/wal"
)

// Network half of the group-commit pipeline: with Options.BatchUpdates
// set, eager broadcasts are queued and a sender goroutine ships one
// MsgUpdateBatch frame per peer per drain instead of one transport
// message per transaction. Batch frames carry format-tagged records
// (compressed or standard), so the per-record fallback for
// wal.ErrTooLarge composes with batching.
//
// Ordering: records enter the queue in commit order, before their locks
// are released (Tx.Commit calls broadcast before Release), and flushSends
// preserves queue order within each peer's frame. The receiver decodes a
// frame's records in order and hands them to the applier, whose per-lock
// sequence interlock is the actual ordering authority — cross-frame or
// cross-peer reordering parks records exactly as it does for unbatched
// delivery.

// Per-record format tags inside a batch frame.
const (
	batchFmtCompressed byte = 0
	batchFmtStandard   byte = 1
)

// outMsg is one queued broadcast: an encoded, format-tagged record and
// the peers it targets.
type outMsg struct {
	payload []byte
	peers   []netproto.NodeID
}

// encodeRecord encodes rec in the node's wire format, returning the
// message and its type code. Records too large for the compressed
// format fall back to the standard encoding. The returned buffer comes
// from bufpool; the caller owns it and must Put it after the last send.
func (n *Node) encodeRecord(rec *wal.TxRecord) ([]byte, uint8) {
	if n.wire != Standard {
		b := bufpool.Get(wal.CompressedSize(rec))
		msg, err := wal.AppendCompressed(b, rec)
		if err == nil {
			return msg, MsgUpdate
		}
		bufpool.Put(b)
		n.stats.Add(metrics.CtrCompressFallbacks, 1)
	}
	return wal.AppendStandard(bufpool.Get(wal.StandardSize(rec)), rec), MsgUpdateStd
}

// enqueueBroadcast queues rec for the sender goroutine.
func (n *Node) enqueueBroadcast(rec *wal.TxRecord) {
	peers := n.peersForRecord(rec)
	if len(peers) == 0 {
		return
	}
	msg, typ := n.encodeRecord(rec)
	tag := batchFmtCompressed
	if typ == MsgUpdateStd {
		tag = batchFmtStandard
	}
	payload := append(bufpool.Get(1+len(msg)), tag)
	payload = append(payload, msg...)
	bufpool.Put(msg)

	n.sendMu.Lock()
	n.sendQ = append(n.sendQ, outMsg{payload: payload, peers: peers})
	n.sendMu.Unlock()
	select {
	case n.sendWake <- struct{}{}:
	default:
	}
	if n.trace.Enabled() {
		// The record's network phase starts here; the per-peer frame
		// cost shows up as net.batch_frame spans from the sender.
		n.trace.Emit(obs.Span{
			Name: obs.SpanBroadcast, Node: rec.Node, Tx: rec.TxSeq,
			Start: time.Now().UnixNano(),
			N:     int64(len(msg)) * int64(len(peers)),
		})
	}
}

// sender drains the broadcast queue, one batch frame per peer per drain.
// Batch boundaries form naturally: every commit that lands while the
// previous drain's sends are in flight joins the next frame.
func (n *Node) sender() {
	defer n.wg.Done()
	for {
		select {
		case <-n.sendWake:
			n.flushSends()
		case <-n.done:
			n.flushSends()
			return
		}
	}
}

// flushSends takes the current queue and ships it: records are grouped
// per peer in queue order and each peer receives a single batch frame.
func (n *Node) flushSends() {
	n.sendMu.Lock()
	q := n.sendQ
	n.sendQ = nil
	n.sendMu.Unlock()
	if len(q) == 0 {
		return
	}

	perPeer := map[netproto.NodeID][][]byte{}
	var order []netproto.NodeID
	for _, m := range q {
		for _, p := range m.peers {
			if perPeer[p] == nil {
				order = append(order, p)
			}
			perPeer[p] = append(perPeer[p], m.payload)
		}
	}

	traced := n.trace.Enabled()
	tm := metrics.StartTimer(n.stats, metrics.PhaseNetIO)
	defer tm.Stop()
	for _, p := range order {
		var t0 time.Time
		if traced {
			t0 = time.Now()
		}
		parts := perPeer[p]
		size := 4
		for _, part := range parts {
			size += 4 + len(part)
		}
		frame := netproto.AppendBatch(bufpool.Get(size), parts)
		err := n.tr.Send(p, MsgUpdateBatch, frame)
		// Send does not retain the frame (ChanEndpoint copies, TCP
		// writes synchronously), so it can be recycled either way.
		bufpool.Put(frame)
		if err != nil {
			n.stats.Add(metrics.CtrSendErrors, 1)
			continue
		}
		n.stats.Add(metrics.CtrMsgsSent, 1)
		n.stats.Add(metrics.CtrBytesSent, int64(size))
		n.stats.Add(metrics.CtrBatchFrames, 1)
		n.stats.Add(metrics.CtrBatchRecords, int64(len(parts)))
		if traced {
			n.trace.Emit(obs.Span{
				Name: obs.SpanFrame, Peer: uint32(p),
				Start: t0.UnixNano(), Dur: time.Since(t0).Nanoseconds(),
				N: int64(len(parts)),
			})
		}
	}
	// Record payloads are shared across the per-peer frames; all frames
	// have been built and sent, so release them once here.
	for _, m := range q {
		bufpool.Put(m.payload)
	}
}

// onUpdateBatch decodes a batch frame and feeds its records to the
// apply pipeline in frame order.
func (n *Node) onUpdateBatch(from netproto.NodeID, payload []byte) {
	n.stats.Add(metrics.CtrUpdateFramesRecv, 1)
	parts, err := netproto.SplitBatch(payload)
	if err != nil {
		n.decodeError(from)
		return
	}
	for _, part := range parts {
		if len(part) < 1 {
			n.decodeError(from)
			return
		}
		switch part[0] {
		case batchFmtCompressed:
			rec, err := wal.DecodeCompressed(part[1:])
			if err != nil {
				n.decodeError(from)
				return
			}
			if n.serial {
				n.enqueue(copyRecord(rec))
			} else {
				n.enqueue(n.adoptRecord(rec))
			}
		case batchFmtStandard:
			rec, _, err := wal.DecodeStandard(part[1:])
			if err != nil {
				n.decodeError(from)
				return
			}
			n.enqueue(rec) // DecodeStandard already copies data
		default:
			n.decodeError(from)
			return
		}
	}
}
