package coherency

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/netproto"
	"lbc/internal/rvm"
	"lbc/internal/wal"
)

// testCluster spins up k coherency nodes over an in-process hub, each
// with its own RVM instance, all mapping region 1 of the given size.
func testCluster(t *testing.T, k int, size int, opt func(i int, o *Options)) []*Node {
	t.Helper()
	hub := netproto.NewHub()
	ids := make([]netproto.NodeID, k)
	for i := range ids {
		ids[i] = netproto.NodeID(i + 1)
	}
	nodes := make([]*Node, k)
	for i := range ids {
		r, err := rvm.Open(rvm.Options{Node: uint32(ids[i])})
		if err != nil {
			t.Fatal(err)
		}
		o := Options{RVM: r, Transport: hub.Endpoint(ids[i]), Nodes: ids}
		if opt != nil {
			opt(i, &o)
		}
		n, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		t.Cleanup(func() { n.Close() })
	}
	for _, n := range nodes {
		if _, err := n.MapRegion(1, size); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		if err := n.WaitPeers(1, k-1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return nodes
}

func region(t *testing.T, n *Node) *rvm.Region {
	t.Helper()
	reg := n.RVM().Region(1)
	if reg == nil {
		t.Fatal("region 1 not mapped")
	}
	return reg
}

// commitWrite runs one locked write transaction on node n.
func commitWrite(t *testing.T, n *Node, lockID uint32, off uint64, data []byte) {
	t.Helper()
	tx := n.Begin(rvm.NoRestore)
	if err := tx.Acquire(lockID); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(region(t, n), off, data); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(rvm.NoFlush); err != nil {
		t.Fatal(err)
	}
}

// readUnder acquires the lock read-only (forcing the interlock) and
// returns a copy of the requested bytes.
func readUnder(t *testing.T, n *Node, lockID uint32, off uint64, ln int) []byte {
	t.Helper()
	tx := n.Begin(rvm.NoRestore)
	if err := tx.Acquire(lockID); err != nil {
		t.Fatal(err)
	}
	out := append([]byte(nil), region(t, n).Bytes()[off:off+uint64(ln)]...)
	if _, err := tx.Commit(rvm.NoFlush); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestEagerPropagation(t *testing.T) {
	nodes := testCluster(t, 2, 1024, nil)
	commitWrite(t, nodes[0], 1, 100, []byte("shared data"))
	got := readUnder(t, nodes[1], 1, 100, 11)
	if string(got) != "shared data" {
		t.Fatalf("peer sees %q", got)
	}
	if nodes[1].Stats().Counter(metrics.CtrRecordsApplied) != 1 {
		t.Fatal("record not applied at peer")
	}
}

func TestPingPongUpdates(t *testing.T) {
	nodes := testCluster(t, 2, 1024, nil)
	for i := 0; i < 20; i++ {
		w := nodes[i%2]
		commitWrite(t, w, 1, 0, []byte(fmt.Sprintf("round-%02d", i)))
		r := nodes[(i+1)%2]
		got := readUnder(t, r, 1, 0, 8)
		if string(got) != fmt.Sprintf("round-%02d", i) {
			t.Fatalf("round %d: reader sees %q", i, got)
		}
	}
}

func TestThreeNodeTokenOrdering(t *testing.T) {
	// The §3.4 A/B/C scenario: updates must apply in token order even
	// at nodes that never held the lock between the writes.
	nodes := testCluster(t, 3, 1024, nil)
	commitWrite(t, nodes[0], 1, 0, []byte("AAAA"))
	commitWrite(t, nodes[1], 1, 0, []byte("BBBB"))
	got := readUnder(t, nodes[2], 1, 0, 4)
	if string(got) != "BBBB" {
		t.Fatalf("node C sees %q, want final value BBBB", got)
	}
}

func TestOutOfOrderArrivalIsHeld(t *testing.T) {
	// Deliver two chained records to a node's applier in reverse
	// order; the second must be parked until its predecessor applies.
	nodes := testCluster(t, 2, 1024, nil)
	n := nodes[1]
	rec1 := &wal.TxRecord{
		Node: 9, TxSeq: 1,
		Locks:  []wal.LockRec{{LockID: 1, Seq: 1, PrevWriteSeq: 0, Wrote: true}},
		Ranges: []wal.RangeRec{{Region: 1, Off: 0, Data: []byte("1111")}},
	}
	rec2 := &wal.TxRecord{
		Node: 9, TxSeq: 2,
		Locks:  []wal.LockRec{{LockID: 1, Seq: 2, PrevWriteSeq: 1, Wrote: true}},
		Ranges: []wal.RangeRec{{Region: 1, Off: 0, Data: []byte("2222")}},
	}
	n.enqueue(copyRecord(rec2)) // arrives first, must wait
	// The Parked gauge is the applier's signal that it has processed
	// the record and shelved it behind the missing predecessor — a
	// deterministic stand-in for "give the applier time to misapply".
	waitFor(t, func() bool { return n.Parked() == 1 })
	if got := region(t, n).Bytes()[:4]; string(got) == "2222" {
		t.Fatal("record 2 applied before its predecessor")
	}
	n.enqueue(copyRecord(rec1))
	waitFor(t, func() bool { return n.Locks().Applied(1) == 2 })
	if got := string(region(t, n).Bytes()[:4]); got != "2222" {
		t.Fatalf("final value = %q", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDuplicateRecordsIgnored(t *testing.T) {
	nodes := testCluster(t, 2, 1024, nil)
	n := nodes[1]
	rec := &wal.TxRecord{
		Node: 9, TxSeq: 1,
		Locks:  []wal.LockRec{{LockID: 1, Seq: 1, PrevWriteSeq: 0, Wrote: true}},
		Ranges: []wal.RangeRec{{Region: 1, Off: 0, Data: []byte("dupe")}},
	}
	n.enqueue(copyRecord(rec))
	n.enqueue(copyRecord(rec))
	waitFor(t, func() bool { return n.Stats().Counter(metrics.CtrRecordsApplied) >= 1 })
	// The duplicate is accounted as stale when the applier discards
	// it; waiting on the counter replaces a timing-based sleep.
	waitFor(t, func() bool { return n.Stats().Counter("records_stale") >= 1 })
	if got := n.Stats().Counter(metrics.CtrRecordsApplied); got != 1 {
		t.Fatalf("applied %d times", got)
	}
}

func TestPerSegmentWroteFlags(t *testing.T) {
	nodes := testCluster(t, 2, 2048, func(i int, o *Options) {})
	for _, n := range nodes {
		n.AddSegment(Segment{LockID: 1, Region: 1, Off: 0, Len: 1024})
		n.AddSegment(Segment{LockID: 2, Region: 1, Off: 1024, Len: 1024})
	}
	// Acquire both locks but write only segment 1.
	tx := nodes[0].Begin(rvm.NoRestore)
	if err := tx.Acquire(1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Acquire(2); err != nil {
		t.Fatal(err)
	}
	tx.Write(region(t, nodes[0]), 10, []byte("seg1 only"))
	rec, err := tx.Commit(rvm.NoFlush)
	if err != nil {
		t.Fatal(err)
	}
	var l1, l2 wal.LockRec
	for _, l := range rec.Locks {
		if l.LockID == 1 {
			l1 = l
		} else {
			l2 = l
		}
	}
	if !l1.Wrote || l2.Wrote {
		t.Fatalf("wrote flags: l1=%v l2=%v", l1.Wrote, l2.Wrote)
	}
	// Lock 2's chain did not advance: node 2 can acquire it without
	// any interlock wait even before applying anything.
	g, err := nodes[1].Locks().Acquire(2)
	if err != nil || g.PrevWriteSeq != 0 {
		t.Fatalf("lock 2 grant = %+v, %v", g, err)
	}
}

func TestCheckLocksEnforcement(t *testing.T) {
	nodes := testCluster(t, 2, 2048, func(i int, o *Options) { o.CheckLocks = true })
	for _, n := range nodes {
		n.AddSegment(Segment{LockID: 1, Region: 1, Off: 0, Len: 1024})
	}
	tx := nodes[0].Begin(rvm.NoRestore)
	err := tx.SetRange(region(t, nodes[0]), 10, 8)
	if !errors.Is(err, ErrLockNotHeld) {
		t.Fatalf("unlocked write: %v", err)
	}
	// Outside any segment: allowed.
	if err := tx.SetRange(region(t, nodes[0]), 1500, 8); err != nil {
		t.Fatal(err)
	}
	if err := tx.Acquire(1); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(region(t, nodes[0]), 10, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(rvm.NoFlush); err != nil {
		t.Fatal(err)
	}
}

func TestAbortReleasesLocksWithoutChain(t *testing.T) {
	nodes := testCluster(t, 2, 1024, nil)
	tx := nodes[0].Begin(rvm.Restore)
	if err := tx.Acquire(1); err != nil {
		t.Fatal(err)
	}
	tx.Write(region(t, nodes[0]), 0, []byte("doomed"))
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(region(t, nodes[0]).Bytes()[:6], make([]byte, 6)) {
		t.Fatal("abort did not restore")
	}
	// Peer can acquire with no interlock wait (no write happened).
	g, err := nodes[1].Locks().Acquire(1)
	if err != nil || g.PrevWriteSeq != 0 {
		t.Fatalf("grant = %+v, %v", g, err)
	}
	// And no coherency traffic was generated.
	if nodes[0].Stats().Counter(metrics.CtrMsgsSent) != 0 {
		t.Fatal("aborted tx broadcast updates")
	}
}

func TestDoubleAcquireSameLockFails(t *testing.T) {
	nodes := testCluster(t, 2, 1024, nil)
	tx := nodes[0].Begin(rvm.NoRestore)
	if err := tx.Acquire(1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Acquire(1); err == nil {
		t.Fatal("second acquire of same lock succeeded")
	}
	tx.Commit(rvm.NoFlush)
}

func TestVersionedModeBuffersUntilAccept(t *testing.T) {
	nodes := testCluster(t, 2, 1024, func(i int, o *Options) {
		if i == 1 {
			o.Versioned = true
		}
	})
	commitWrite(t, nodes[0], 1, 0, []byte("new version"))
	// Give the update time to arrive at node 2: it must stay buffered.
	time.Sleep(20 * time.Millisecond)
	if got := region(t, nodes[1]).Bytes()[:11]; string(got) == "new version" {
		t.Fatal("versioned node applied update before Accept")
	}
	if k := nodes[1].Accept(); k != 1 {
		t.Fatalf("Accept moved %d records", k)
	}
	waitFor(t, func() bool { return nodes[1].Locks().Applied(1) >= 1 })
	if got := string(region(t, nodes[1]).Bytes()[:11]); got != "new version" {
		t.Fatalf("after accept: %q", got)
	}
}

func TestVersionedAcquireImpliesAccept(t *testing.T) {
	nodes := testCluster(t, 2, 1024, func(i int, o *Options) {
		if i == 1 {
			o.Versioned = true
		}
	})
	commitWrite(t, nodes[0], 1, 0, []byte("forced"))
	time.Sleep(10 * time.Millisecond)
	got := readUnder(t, nodes[1], 1, 0, 6)
	if string(got) != "forced" {
		t.Fatalf("acquire under versioned mode read %q", got)
	}
}

func TestSetVersionedOffFlushes(t *testing.T) {
	nodes := testCluster(t, 2, 1024, func(i int, o *Options) {
		if i == 1 {
			o.Versioned = true
		}
	})
	commitWrite(t, nodes[0], 1, 0, []byte("flush me"))
	time.Sleep(10 * time.Millisecond)
	nodes[1].SetVersioned(false)
	waitFor(t, func() bool { return nodes[1].Locks().Applied(1) >= 1 })
	if got := string(region(t, nodes[1]).Bytes()[:8]); got != "flush me" {
		t.Fatalf("after flush: %q", got)
	}
}

func TestStandardWireFormat(t *testing.T) {
	nodes := testCluster(t, 2, 1024, func(i int, o *Options) { o.Wire = Standard })
	commitWrite(t, nodes[0], 1, 64, []byte("std headers"))
	got := readUnder(t, nodes[1], 1, 64, 11)
	if string(got) != "std headers" {
		t.Fatalf("peer sees %q", got)
	}
	// Standard wire bytes must exceed compressed for the same payload.
	sent := nodes[0].Stats().Counter(metrics.CtrBytesSent)
	if sent < wal.StdRangeHeaderLen {
		t.Fatalf("sent only %d bytes with standard headers", sent)
	}
}

func TestBroadcastOnlyToMappedPeers(t *testing.T) {
	// Node 3 never maps region 1; it must receive nothing.
	hub := netproto.NewHub()
	ids := []netproto.NodeID{1, 2, 3}
	var nodes []*Node
	for _, id := range ids {
		r, _ := rvm.Open(rvm.Options{Node: uint32(id)})
		n, err := New(Options{RVM: r, Transport: hub.Endpoint(id), Nodes: ids})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		defer n.Close()
	}
	nodes[0].MapRegion(1, 1024)
	nodes[1].MapRegion(1, 1024)
	nodes[0].WaitPeers(1, 1, 5*time.Second)

	tx := nodes[0].Begin(rvm.NoRestore)
	if err := tx.Acquire(4); err != nil { // lock 4: manager nodes[4%3]=nodes[1]... any lock works
		t.Fatal(err)
	}
	tx.Write(nodes[0].RVM().Region(1), 0, []byte("targeted"))
	if _, err := tx.Commit(rvm.NoFlush); err != nil {
		t.Fatal(err)
	}
	if got := nodes[0].Stats().Counter(metrics.CtrMsgsSent); got != 1 {
		t.Fatalf("sent %d messages, want 1 (only the mapped peer)", got)
	}
	waitFor(t, func() bool {
		return nodes[1].Stats().Counter(metrics.CtrRecordsApplied) == 1
	})
	if nodes[2].Stats().Counter(metrics.CtrRecordsApplied) != 0 {
		t.Fatal("unmapped node received updates")
	}
}

// TestPropertyConvergence is the system-level invariant: any schedule
// of locked writes from any node leaves every node's image identical
// once all updates have been applied.
func TestPropertyConvergence(t *testing.T) {
	const (
		kNodes = 3
		kLocks = 4
		segLen = 256
	)
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		nodes := testCluster(t, kNodes, kLocks*segLen, nil)
		for _, n := range nodes {
			for l := uint32(0); l < kLocks; l++ {
				n.AddSegment(Segment{LockID: l, Region: 1, Off: uint64(l) * segLen, Len: segLen})
			}
		}
		var wg sync.WaitGroup
		for i := range nodes {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(int64(trial*100 + i)))
				for k := 0; k < 25; k++ {
					lock := uint32(r.Intn(kLocks))
					tx := nodes[i].Begin(rvm.NoRestore)
					if err := tx.Acquire(lock); err != nil {
						t.Error(err)
						return
					}
					off := uint64(lock)*segLen + uint64(r.Intn(segLen-16))
					data := make([]byte, r.Intn(15)+1)
					r.Read(data)
					if err := tx.Write(nodes[i].RVM().Region(1), off, data); err != nil {
						t.Error(err)
						return
					}
					if _, err := tx.Commit(rvm.NoFlush); err != nil {
						t.Error(err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		// Quiesce: every node acquires every lock read-only, which by
		// the interlock guarantees all writes are applied locally.
		for _, n := range nodes {
			for l := uint32(0); l < kLocks; l++ {
				tx := n.Begin(rvm.NoRestore)
				if err := tx.Acquire(l); err != nil {
					t.Fatal(err)
				}
				if _, err := tx.Commit(rvm.NoFlush); err != nil {
					t.Fatal(err)
				}
			}
		}
		base := nodes[0].RVM().Region(1).Bytes()
		for i := 1; i < kNodes; i++ {
			if !bytes.Equal(base, nodes[i].RVM().Region(1).Bytes()) {
				t.Fatalf("trial %d: node %d image diverged", trial, i+1)
			}
		}
		_ = rng
	}
}

func TestCountPages(t *testing.T) {
	mk := func(off uint64, n int) wal.RangeRec {
		return wal.RangeRec{Region: 1, Off: off, Data: make([]byte, n)}
	}
	cases := []struct {
		ranges []wal.RangeRec
		want   int
	}{
		{nil, 0},
		{[]wal.RangeRec{mk(0, 8)}, 1},
		{[]wal.RangeRec{mk(0, 8), mk(100, 8)}, 1},
		{[]wal.RangeRec{mk(0, 8), mk(8192, 8)}, 2},
		{[]wal.RangeRec{mk(8190, 8)}, 2},              // straddles a page boundary
		{[]wal.RangeRec{mk(0, 8192*3+1)}, 4},          // spans four pages
		{[]wal.RangeRec{mk(8000, 8), mk(8200, 8)}, 2}, // adjacent pages
	}
	for i, c := range cases {
		if got := countPages(c.ranges, 8192); got != c.want {
			t.Errorf("case %d: pages = %d, want %d", i, got, c.want)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	r, _ := rvm.Open(rvm.Options{Node: 1})
	hub := netproto.NewHub()
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
	if _, err := New(Options{RVM: r, Transport: hub.Endpoint(1)}); err == nil {
		t.Fatal("missing node list accepted")
	}
	if _, err := New(Options{RVM: r, Transport: hub.Endpoint(1),
		Nodes: []netproto.NodeID{1}, Propagation: Lazy}); err == nil {
		t.Fatal("lazy without PeerLogs accepted")
	}
}

func TestApplyErrorCounted(t *testing.T) {
	nodes := testCluster(t, 2, 64, nil)
	n := nodes[1]
	// Record that exceeds the region: must be dropped and counted, not
	// crash the applier.
	n.enqueue(copyRecord(&wal.TxRecord{
		Node: 9, TxSeq: 1,
		Ranges: []wal.RangeRec{{Region: 1, Off: 60, Data: []byte("overrun!")}},
	}))
	waitFor(t, func() bool { return n.Stats().Counter("apply_errors") == 1 })
	// The applier is still alive.
	commitWrite(t, nodes[0], 1, 0, []byte("ok"))
	if got := readUnder(t, n, 1, 0, 2); string(got) != "ok" {
		t.Fatalf("applier dead after error: %q", got)
	}
}

func TestDecodeErrorCounted(t *testing.T) {
	nodes := testCluster(t, 2, 64, nil)
	// Deliver garbage directly to the update handler.
	nodes[1].onUpdate(1, []byte{0xde, 0xad})
	if nodes[1].Stats().Counter("decode_errors") != 1 {
		t.Fatal("decode error not counted")
	}
	// The error is also attributed to the sending node, so a poison
	// peer is identifiable from the metrics alone.
	if nodes[1].Stats().Counter(metrics.DecodeErrorsFrom(1)) != 1 {
		t.Fatal("decode error not attributed to sender")
	}
	if nodes[1].Stats().Counter(metrics.DecodeErrorsFrom(2)) != 0 {
		t.Fatal("decode error attributed to wrong sender")
	}
}

func TestAcceptInNonVersionedModeIsNoop(t *testing.T) {
	nodes := testCluster(t, 2, 64, nil)
	if k := nodes[0].Accept(); k != 0 {
		t.Fatalf("Accept = %d in eager mode", k)
	}
}

func TestSegmentOverlapsEdges(t *testing.T) {
	seg := Segment{LockID: 1, Region: 2, Off: 100, Len: 50}
	cases := []struct {
		region   rvm.RegionID
		off, end uint64
		want     bool
	}{
		{2, 100, 150, true},
		{2, 99, 100, false},  // ends exactly at segment start
		{2, 150, 160, false}, // begins exactly at segment end
		{2, 149, 150, true},
		{3, 100, 150, false}, // other region
		{2, 0, 1000, true},   // contains segment
	}
	for i, c := range cases {
		if got := seg.overlaps(c.region, c.off, c.end); got != c.want {
			t.Errorf("case %d: overlaps = %v, want %v", i, got, c.want)
		}
	}
}

func TestNodeCloseIdempotent(t *testing.T) {
	nodes := testCluster(t, 2, 64, nil)
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
	// Acquire on a closed node fails rather than hanging.
	tx := nodes[0].Begin(rvm.NoRestore)
	if err := tx.Acquire(1); err == nil {
		t.Fatal("acquire succeeded on closed node")
	}
}

func TestSharedReadTransactions(t *testing.T) {
	nodes := testCluster(t, 2, 1024, nil)
	commitWrite(t, nodes[0], 1, 0, []byte("published"))

	// Two concurrent readers on node 2 share the lock and both observe
	// the writer's update (the interlock applies to shared acquires).
	var wg sync.WaitGroup
	hold := make(chan struct{})
	inside := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := nodes[1].Begin(rvm.NoRestore)
			if err := tx.AcquireShared(1); err != nil {
				t.Error(err)
				return
			}
			if got := string(region(t, nodes[1]).Bytes()[:9]); got != "published" {
				t.Errorf("reader sees %q", got)
			}
			inside <- struct{}{}
			<-hold
			if _, err := tx.Commit(rvm.NoFlush); err != nil {
				t.Error(err)
			}
		}()
	}
	// Both readers must be inside simultaneously.
	for i := 0; i < 2; i++ {
		select {
		case <-inside:
		case <-time.After(5 * time.Second):
			t.Fatal("readers did not overlap")
		}
	}
	close(hold)
	wg.Wait()
	if nodes[1].Locks().Readers(1) != 0 {
		t.Fatal("shared holds leaked past commit")
	}
}

func TestSharedThenWriterProceeds(t *testing.T) {
	nodes := testCluster(t, 2, 1024, nil)
	tx := nodes[0].Begin(rvm.NoRestore)
	if err := tx.AcquireShared(1); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(rvm.NoFlush); err != nil {
		t.Fatal(err)
	}
	// A writer on the peer gets the token normally afterwards.
	commitWrite(t, nodes[1], 1, 0, []byte("after-readers"))
	got := readUnder(t, nodes[0], 1, 0, 13)
	if string(got) != "after-readers" {
		t.Fatalf("got %q", got)
	}
}

func TestSharedAbortReleases(t *testing.T) {
	nodes := testCluster(t, 2, 1024, nil)
	tx := nodes[0].Begin(rvm.Restore)
	if err := tx.AcquireShared(1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if nodes[0].Locks().Readers(1) != 0 {
		t.Fatal("abort leaked shared hold")
	}
}

func TestSharedDoubleAcquireFails(t *testing.T) {
	nodes := testCluster(t, 2, 1024, nil)
	tx := nodes[0].Begin(rvm.NoRestore)
	if err := tx.AcquireShared(1); err != nil {
		t.Fatal(err)
	}
	if err := tx.AcquireShared(1); err == nil {
		t.Fatal("double shared acquire accepted")
	}
	tx.Commit(rvm.NoFlush)
}
