package coherency

import (
	"errors"
	"fmt"
	"time"

	"lbc/internal/bufpool"
	"lbc/internal/metrics"
	"lbc/internal/netproto"
	"lbc/internal/obs"
	"lbc/internal/wal"
)

// scheduler feeds the parallel apply engine (the replacement for the
// serial applier goroutine): it forwards admitted records to the
// dependency scheduler and implements the versioned read model by
// holding records back until Accept.
func (n *Node) scheduler() {
	defer n.wg.Done()
	var buffered []*wal.TxRecord // versioned mode: awaiting Accept

	versioned := func() bool {
		n.mu.Lock()
		defer n.mu.Unlock()
		return n.versioned
	}

	for {
		select {
		case rec := <-n.applyCh:
			if versioned() {
				buffered = append(buffered, rec)
				continue
			}
			n.eng.Submit(rec)

		case reply := <-n.acceptCh:
			// Accept (versioned mode): submit the buffered batch and
			// wait for the engine to settle, so the records that can
			// apply have actually been installed when Accept returns
			// (the serial applier's drain-before-reply contract).
			k := len(buffered)
			for _, rec := range buffered {
				n.eng.Submit(rec)
			}
			buffered = nil
			n.eng.Settle()
			reply <- k

		case <-n.done:
			for _, rec := range buffered {
				n.recordDone(rec)
			}
			return
		}
	}
}

// installRecord is the engine's Install callback: it installs one
// record into the local image and advances the interlock. It runs on an
// apply worker; the engine guarantees per-chain and per-sender order
// and that no identity is in flight twice.
func (n *Node) installRecord(worker int, rec *wal.TxRecord) error {
	traced := n.trace.Enabled()
	var t0 time.Time
	if traced {
		t0 = time.Now()
	}
	start := time.Now()
	tm := metrics.StartTimer(n.stats, metrics.PhaseApply)
	bytes, err := n.rvm.ApplyRecord(rec)
	tm.Stop()
	if traced {
		n.trace.Emit(obs.Span{
			Name: obs.SpanApply, Node: rec.Node, Tx: rec.TxSeq,
			Start: t0.UnixNano(), Dur: time.Since(t0).Nanoseconds(),
			N: int64(bytes), Worker: worker,
		})
	}
	if err != nil {
		// Do not mark applied: the chain stalls at this record, exactly
		// like the serial applier (successors stay parked).
		n.stats.Add(metrics.CtrApplyErrors, 1)
		return err
	}
	for _, l := range rec.Locks {
		if l.Wrote {
			n.locks.MarkApplied(l.LockID, l.Seq)
		}
	}
	busy := time.Since(start)
	n.stats.Add(metrics.CtrRecordsApplied, 1)
	n.stats.Add(metrics.CtrBytesApplied, int64(bytes))
	n.stats.Add(metrics.CtrApplyWorkerBusyNS, busy.Nanoseconds())
	n.stats.Observe(metrics.HistApplyNS, busy.Nanoseconds())
	return nil
}

// recordDone releases a record that reached a terminal state (installed
// or dropped): its pooled arena, if any, goes back to bufpool and the
// outstanding gauge drops.
func (n *Node) recordDone(rec *wal.TxRecord) {
	n.arenaMu.Lock()
	buf, pooled := n.arenas[rec]
	if pooled {
		delete(n.arenas, rec)
	}
	n.arenaMu.Unlock()
	if pooled {
		bufpool.Put(buf)
	}
	n.outstanding.Add(-1)
}

// adoptRecord moves a record decoded from a transport-owned buffer
// onto a pooled arena. The decoded struct and its lock/range headers
// are already fresh allocations (DecodeCompressed never aliases them
// into the input), so only the range data — which does alias the
// transport buffer — is copied out; the transport may recycle its
// buffer as soon as the handler returns. The arena is returned to the
// pool by recordDone once the record is terminal. Records that outlive
// the pipeline (piggyback retention) must use copyRecord instead.
func (n *Node) adoptRecord(rec *wal.TxRecord) *wal.TxRecord {
	var total int
	for _, r := range rec.Ranges {
		total += len(r.Data)
	}
	buf := bufpool.Get(total)
	for i := range rec.Ranges {
		start := len(buf)
		buf = append(buf, rec.Ranges[i].Data...)
		rec.Ranges[i].Data = buf[start:len(buf):len(buf)]
	}
	n.arenaMu.Lock()
	n.arenas[rec] = buf
	n.arenaMu.Unlock()
	return rec
}

// ApplyQueueDepth reports how many records have been admitted to the
// apply pipeline but not yet installed or dropped (queued, parked,
// buffered, or in flight). Exported as the apply_queue_depth gauge.
func (n *Node) ApplyQueueDepth() int64 { return n.outstanding.Load() }

// Quiesce blocks until the apply pipeline is empty: every admitted
// record installed or dropped. Records parked on predecessors that
// never arrive (and versioned-mode buffered records) keep it waiting,
// so it is a benchmark/test barrier for complete delivery, not a
// production fence.
func (n *Node) Quiesce(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if n.outstanding.Load() == 0 {
			return nil
		}
		select {
		case <-n.done:
			return errors.New("coherency: node closed while quiescing")
		default:
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("coherency: quiesce timeout with %d records outstanding (%d parked)",
				n.outstanding.Load(), n.Parked())
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// DeliverUpdate injects a compressed update frame as if it had arrived
// from peer `from` on the transport. Benchmarks and tests use it to
// drive the receive path without a wire.
func (n *Node) DeliverUpdate(from netproto.NodeID, payload []byte) {
	n.onUpdate(from, payload)
}
