package coherency

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/netproto"
	"lbc/internal/rvm"
)

// Online coordinated log trimming (§3.5). The prototype trimmed logs
// offline; the paper sketches the online scheme implemented here: "one
// node would checkpoint at a time, broadcasting to other nodes when
// done to inform them of their new log head."
//
// The sweep is fuzzy and incremental (rvm.IncrementalCheckpointer): the
// coordinator copies each registered segment to the permanent store
// while holding only that segment's lock — the acquire interlock
// guarantees the local image reflects every committed update to the
// segment, and the lock excludes concurrent writers from the bytes
// being copied — so commits under other locks proceed throughout the
// bulk of the image write. Only a short final step quiesces all locks:
// it sweeps the ranges no registered segment covers, re-copies pages
// dirtied by commits that raced the sweep, forces the store, and
// appends a durable checkpoint marker carrying the cut-point LSN. The
// quiesce is then released — the remaining steps are pure log
// maintenance — and after a sync round that drains every lazy
// consumer, the coordinator trims its own log head online and peers
// trim theirs to the cut they recorded when the checkpoint began
// (every record below that cut committed — and was therefore applied
// at the coordinator under the relevant lock — before any page was
// swept).
//
// Cuts are *logical* log offsets (rvm.LogCut: physical size plus bytes
// already trimmed), not raw sizes. Concurrent checkpoints from
// different coordinators are allowed, and one may trim a log between
// another's Begin and Checkpoint messages; logical cuts rebase against
// such trims (rvm.TrimLogHeadLogical), so a stale cut removes only
// records it actually covers and never ones appended after it was
// recorded.
//
// Protocol framing:
//
//	Begin{epoch}      coordinator -> peers   peers note their logical log
//	BeginAck{epoch}   peer -> coordinator    end (the cut candidate) and ack
//	    ... fuzzy per-lock sweep, concurrent with commits ...
//	    ... quiesce: remainder sweep, dirty resweep, marker; release ...
//	Sync{epoch}       coordinator -> peers   every node drains the server
//	SyncAck{epoch}    peer -> coordinator    logs it reads lazily, then acks
//	Checkpoint{epoch, lsn}  coordinator -> peers   trim to recorded cut
//	CheckpointAck{epoch}    peer -> coordinator
//
// The sync round exists because head trims move byte offsets under
// every lazy reader and delete records a lagging node may not have
// pulled yet: no log head moves until every node has drained all
// server-side logs past the cuts. A node that cannot drain withholds
// its ack, the round times out, and nothing is trimmed.

// Message codes (continuing the 0x20-0x2F coherency block; 0x26/0x27
// belong to token reclaim).
const (
	MsgCheckpoint         uint8 = 0x23 // coordinator -> peers: {epoch u64, lsn u64}
	MsgCheckpointAck      uint8 = 0x24 // peer -> coordinator: {epoch u64}
	MsgCheckpointBegin    uint8 = 0x28 // coordinator -> peers: {epoch u64}
	MsgCheckpointBeginAck uint8 = 0x29 // peer -> coordinator: {epoch u64}
	MsgCheckpointSync     uint8 = 0x2A // coordinator -> peers: {epoch u64}
	MsgCheckpointSyncAck  uint8 = 0x2B // peer -> coordinator: {epoch u64}
)

// cutKey names one peer-side cut candidate: epochs are per-coordinator
// counters, so the coordinator id disambiguates concurrent checkpoints
// from different nodes.
type cutKey struct {
	from  netproto.NodeID
	epoch uint64
}

// ckptState tracks in-flight coordinated checkpoints: ack waiters on
// the coordinator side, recorded log cuts on the peer side.
type ckptState struct {
	mu           sync.Mutex
	epoch        uint64
	waiters      map[uint64]chan netproto.NodeID // done-phase acks
	beginWaiters map[uint64]chan netproto.NodeID // begin-phase acks
	syncWaiters  map[uint64]chan netproto.NodeID // sync-phase acks
	cuts         map[cutKey]int64                // peer: logical log cut at Begin
}

func (n *Node) initCheckpoint() {
	n.ckpt = &ckptState{
		waiters:      map[uint64]chan netproto.NodeID{},
		beginWaiters: map[uint64]chan netproto.NodeID{},
		syncWaiters:  map[uint64]chan netproto.NodeID{},
		cuts:         map[cutKey]int64{},
	}
	n.tr.Handle(MsgCheckpoint, n.onCheckpoint)
	n.tr.Handle(MsgCheckpointAck, n.onCheckpointAck)
	n.tr.Handle(MsgCheckpointBegin, n.onCheckpointBegin)
	n.tr.Handle(MsgCheckpointBeginAck, n.onCheckpointBeginAck)
	n.tr.Handle(MsgCheckpointSync, n.onCheckpointSync)
	n.tr.Handle(MsgCheckpointSyncAck, n.onCheckpointSyncAck)
}

// sweepRange is one byte range the quiesced remainder sweep must copy.
type sweepRange struct {
	region rvm.RegionID
	off, n uint64
}

// CoordinatedCheckpoint checkpoints the cluster and trims every node's
// log online. lockIDs must cover every segment that receives writes
// (typically all registered locks). Unlike the original stop-the-world
// pass, the image sweep runs concurrently with commits: each registered
// segment is copied under its own lock only, and all locks are held
// together just for the short sealing step at the end.
func (n *Node) CoordinatedCheckpoint(lockIDs []uint32, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	peers := n.tr.Peers()

	n.ckpt.mu.Lock()
	n.ckpt.epoch++
	epoch := n.ckpt.epoch
	n.ckpt.mu.Unlock()

	// Phase 1: peers record their current logical log end as the cut
	// they will trim to. Every record below a peer's cut committed
	// before any page was swept, so the per-lock sweeps below are
	// guaranteed to observe it (interlock) — which is what makes the cut
	// safe to trim. Logical cuts stay valid even if another coordinator
	// trims the peer's log before our Checkpoint message arrives.
	var beginMsg [8]byte
	binary.LittleEndian.PutUint64(beginMsg[:], epoch)
	if len(peers) > 0 {
		if err := n.ckptRound(peers, MsgCheckpointBegin, beginMsg[:], n.ckpt.beginWaiters, epoch, deadline); err != nil {
			return fmt.Errorf("coherency: checkpoint begin: %w", err)
		}
	}

	ckpt := n.rvm.NewIncrementalCheckpointer(n.pageSize)
	if err := ckpt.BeginConcurrent(); err != nil {
		return fmt.Errorf("coherency: checkpoint begin sweep: %w", err)
	}
	// Abandon dirty tracking on any error path (no-op after a
	// successful FinishQuiesced).
	defer ckpt.AbortConcurrent()

	// Ordered acquisition avoids deadlock against a concurrent
	// coordinator.
	sorted := append([]uint32(nil), lockIDs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	// Phase 2: fuzzy sweep — copy each registered segment while holding
	// only its lock. Commits under the other locks proceed concurrently.
	for _, id := range sorted {
		n.mu.Lock()
		seg, ok := n.segments[id]
		n.mu.Unlock()
		if !ok {
			continue // no registered scope: swept under the quiesce below
		}
		tx := n.Begin(rvm.NoRestore)
		err := tx.Acquire(id)
		if err == nil {
			err = ckpt.SweepRange(seg.Region, seg.Off, seg.Len)
		}
		// Release the lock whether or not the sweep succeeded: a failed
		// acquire holds nothing, a failed sweep must not leak the lock.
		_ = tx.Abort()
		if err != nil {
			return fmt.Errorf("coherency: checkpoint sweep lock %d: %w", id, err)
		}
	}

	// Phase 3: seal under a full quiesce. The abort is registered
	// *before* the acquire loop so a failed acquire releases the locks
	// taken by earlier iterations (a mid-loop return used to leak them).
	qtx := n.Begin(rvm.NoRestore)
	defer qtx.Abort()
	for _, id := range sorted {
		if err := qtx.Acquire(id); err != nil {
			return fmt.Errorf("coherency: checkpoint acquire lock %d: %w", id, err)
		}
	}
	// Bytes no registered segment covers were not swept under a lock;
	// copy them now that all writers are excluded. (With no registered
	// segments this degenerates to the full stop-the-world image write.)
	for _, sr := range n.uncoveredRanges(sorted) {
		if err := ckpt.SweepRange(sr.region, sr.off, sr.n); err != nil {
			return fmt.Errorf("coherency: checkpoint remainder sweep: %w", err)
		}
	}
	// Re-copy pages dirtied by commits that raced the per-lock sweeps.
	if _, err := ckpt.ResweepDirty(); err != nil {
		return fmt.Errorf("coherency: checkpoint resweep: %w", err)
	}
	// Force the images, append + sync the durable marker. If we crash
	// after this point recovery starts at the marker, before it at the
	// previous start point — either way the images and log agree.
	lsn, cut, err := ckpt.FinishQuiesced()
	if err != nil {
		return fmt.Errorf("coherency: checkpoint finish: %w", err)
	}
	// The marker is durable and cut is a stable logical offset: the
	// locks are no longer needed. Release the quiesce before the network
	// rounds below, so a slow or dead peer stalls only this checkpoint —
	// not every commit in the cluster for the full caller timeout. (The
	// deferred Abort above remains as a no-op backstop for error paths.)
	_ = qtx.Abort()

	// Phase 4: drain lazy consumers. Head trims move byte offsets under
	// every reader of these logs and delete records a lagging node may
	// not have pulled yet, so each node — this one included — drains
	// every server-side log it reads before any head moves. A node that
	// cannot drain withholds its ack and the checkpoint aborts without
	// trimming anything; a later attempt retries. Non-lazy
	// configurations ack immediately (the Begin-cut interlock argument
	// already covers applied state there).
	if err := n.drainPeerLogs(); err != nil {
		return fmt.Errorf("coherency: checkpoint drain: %w", err)
	}
	if len(peers) > 0 {
		if err := n.ckptRound(peers, MsgCheckpointSync, beginMsg[:], n.ckpt.syncWaiters, epoch, deadline); err != nil {
			return fmt.Errorf("coherency: checkpoint sync: %w", err)
		}
	}

	// Trim our own log head past the marker: every record below it is in
	// the permanent images, and every lazy reader is past it after the
	// sync round. Commits racing the trim land above the cut and
	// survive; devices without an atomic HeadTrimmer rewrite safely
	// under rvm's log latch, so no quiesce is needed here.
	if err := n.rvm.TrimLogHeadLogical(cut); err != nil {
		return fmt.Errorf("coherency: checkpoint trim: %w", err)
	}

	// Phase 5: peers trim to their recorded cuts.
	if len(peers) > 0 {
		var doneMsg [16]byte
		binary.LittleEndian.PutUint64(doneMsg[:8], epoch)
		binary.LittleEndian.PutUint64(doneMsg[8:], uint64(lsn))
		if err := n.ckptRound(peers, MsgCheckpoint, doneMsg[:], n.ckpt.waiters, epoch, deadline); err != nil {
			return fmt.Errorf("coherency: checkpoint commit: %w", err)
		}
	}
	return nil
}

// ckptRound broadcasts one checkpoint protocol message and waits for
// every peer's ack, registered in the given waiter map under epoch.
func (n *Node) ckptRound(peers []netproto.NodeID, typ uint8, payload []byte,
	waiters map[uint64]chan netproto.NodeID, epoch uint64, deadline time.Time) error {
	acks := make(chan netproto.NodeID, len(peers))
	n.ckpt.mu.Lock()
	waiters[epoch] = acks
	n.ckpt.mu.Unlock()
	defer func() {
		n.ckpt.mu.Lock()
		delete(waiters, epoch)
		n.ckpt.mu.Unlock()
	}()
	for _, p := range peers {
		if err := n.tr.Send(p, typ, payload); err != nil {
			return fmt.Errorf("notify %d: %w", p, err)
		}
	}
	need := map[netproto.NodeID]bool{}
	for _, p := range peers {
		need[p] = true
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for len(need) > 0 {
		select {
		case from := <-acks:
			delete(need, from)
		case <-timer.C:
			return fmt.Errorf("epoch %d: %d peers did not ack", epoch, len(need))
		case <-n.done:
			return errors.New("node closed during checkpoint")
		}
	}
	return nil
}

// uncoveredRanges returns, per mapped region, the byte ranges not
// covered by any of the given locks' registered segments. These ranges
// were not swept under a lock and must be copied under the quiesce.
func (n *Node) uncoveredRanges(lockIDs []uint32) []sweepRange {
	n.mu.Lock()
	segs := make([]Segment, 0, len(lockIDs))
	for _, id := range lockIDs {
		if s, ok := n.segments[id]; ok {
			segs = append(segs, s)
		}
	}
	n.mu.Unlock()

	var out []sweepRange
	for _, rid := range n.rvm.RegionIDs() {
		reg := n.rvm.Region(rid)
		if reg == nil {
			continue
		}
		size := uint64(reg.Size())
		var iv [][2]uint64
		for _, s := range segs {
			if s.Region != rid || s.Len == 0 || s.Off >= size {
				continue
			}
			hi := s.Off + s.Len
			if hi > size {
				hi = size
			}
			iv = append(iv, [2]uint64{s.Off, hi})
		}
		sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
		var at uint64
		for _, p := range iv {
			if p[0] > at {
				out = append(out, sweepRange{region: rid, off: at, n: p[0] - at})
			}
			if p[1] > at {
				at = p[1]
			}
		}
		if at < size {
			out = append(out, sweepRange{region: rid, off: at, n: size - at})
		}
	}
	return out
}

// onCheckpointBegin runs at a peer: record the current logical log end
// as the cut this checkpoint will trim to. Records below it committed
// before the coordinator's sweep started, so the sweep observes them;
// records appended later may have raced the sweep and must survive in
// the log. The cut is logical (rvm.LogCut), so a concurrent
// coordinator trimming our log between now and the Checkpoint message
// cannot shift it onto — and silently delete — those later records.
func (n *Node) onCheckpointBegin(from netproto.NodeID, payload []byte) {
	if len(payload) != 8 {
		return
	}
	epoch := binary.LittleEndian.Uint64(payload)
	cut, err := n.rvm.LogCut()
	if err != nil {
		// Unknown size: record a zero cut, i.e. trim nothing. The
		// checkpoint still completes; this peer just keeps its log.
		n.stats.Add(metrics.CtrCkptErrors, 1)
		cut = 0
	}
	n.ckpt.mu.Lock()
	for k := range n.ckpt.cuts {
		if k.from == from {
			delete(n.ckpt.cuts, k) // only the newest epoch per coordinator matters
		}
	}
	n.ckpt.cuts[cutKey{from: from, epoch: epoch}] = cut
	n.ckpt.mu.Unlock()
	_ = n.tr.Send(from, MsgCheckpointBeginAck, payload)
}

// onCheckpointBeginAck runs at the coordinator.
func (n *Node) onCheckpointBeginAck(from netproto.NodeID, payload []byte) {
	if len(payload) != 8 {
		return
	}
	n.ckptAck(from, binary.LittleEndian.Uint64(payload), n.ckpt.beginWaiters)
}

// onCheckpoint runs at a peer: the coordinator's images now reflect
// every record below the cut recorded at Begin, so trim the local log
// head to that cut. Commits that raced the sweep sit above the cut and
// survive in the tail; the logical trim rebases the cut against any
// trims a concurrent coordinator applied since Begin.
func (n *Node) onCheckpoint(from netproto.NodeID, payload []byte) {
	if len(payload) != 16 {
		return
	}
	epoch := binary.LittleEndian.Uint64(payload[:8])
	n.ckpt.mu.Lock()
	cut, ok := n.ckpt.cuts[cutKey{from: from, epoch: epoch}]
	delete(n.ckpt.cuts, cutKey{from: from, epoch: epoch})
	n.ckpt.mu.Unlock()
	if ok && cut > 0 {
		if err := n.rvm.TrimLogHeadLogical(cut); err != nil {
			n.stats.Add(metrics.CtrCkptErrors, 1)
			return // no ack: the coordinator times out and reports
		}
	}
	var ack [8]byte
	binary.LittleEndian.PutUint64(ack[:], epoch)
	_ = n.tr.Send(from, MsgCheckpointAck, ack[:])
}

// onCheckpointSync runs at a peer after the coordinator's marker is
// durable and before any log head moves: drain every server-side log
// this node reads lazily, so its saved read positions — and its
// pending-record backlog — are past any cut about to be trimmed. The
// ack is withheld on a failed drain; the coordinator then times out
// and no log is trimmed, leaving a later checkpoint free to retry.
func (n *Node) onCheckpointSync(from netproto.NodeID, payload []byte) {
	if len(payload) != 8 {
		return
	}
	if err := n.drainPeerLogs(); err != nil {
		n.stats.Add(metrics.CtrCkptErrors, 1)
		return // no ack: the coordinator times out and reports
	}
	_ = n.tr.Send(from, MsgCheckpointSyncAck, payload)
}

// onCheckpointSyncAck runs at the coordinator.
func (n *Node) onCheckpointSyncAck(from netproto.NodeID, payload []byte) {
	if len(payload) != 8 {
		return
	}
	n.ckptAck(from, binary.LittleEndian.Uint64(payload), n.ckpt.syncWaiters)
}

// onCheckpointAck runs at the coordinator.
func (n *Node) onCheckpointAck(from netproto.NodeID, payload []byte) {
	if len(payload) != 8 {
		return
	}
	n.ckptAck(from, binary.LittleEndian.Uint64(payload), n.ckpt.waiters)
}

func (n *Node) ckptAck(from netproto.NodeID, epoch uint64, waiters map[uint64]chan netproto.NodeID) {
	n.ckpt.mu.Lock()
	ch := waiters[epoch]
	n.ckpt.mu.Unlock()
	if ch != nil {
		select {
		case ch <- from:
		default:
		}
	}
}
