package coherency

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"lbc/internal/netproto"
	"lbc/internal/rvm"
)

// Online coordinated log trimming (§3.5). The prototype trimmed logs
// offline; the paper sketches the online scheme implemented here:
// "one node would checkpoint at a time, broadcasting to other nodes
// when done to inform them of their new log head."
//
// The coordinator acquires every segment lock (quiescing writers and —
// via the acquire interlock — guaranteeing its own image reflects all
// committed updates), writes its region images to the permanent store,
// then broadcasts a checkpoint notification. Every node's logged
// records are now reflected in the permanent images, so each node
// resets its own log and acknowledges. Locks release afterward.

// Message codes (continuing the 0x20-0x2F coherency block).
const (
	MsgCheckpoint    uint8 = 0x23 // coordinator -> peers: {epoch u64}
	MsgCheckpointAck uint8 = 0x24 // peer -> coordinator: {epoch u64}
)

// ckptState tracks in-flight coordinated checkpoints on the
// coordinator side.
type ckptState struct {
	mu      sync.Mutex
	epoch   uint64
	waiters map[uint64]chan netproto.NodeID
}

func (n *Node) initCheckpoint() {
	n.ckpt = &ckptState{waiters: map[uint64]chan netproto.NodeID{}}
	n.tr.Handle(MsgCheckpoint, n.onCheckpoint)
	n.tr.Handle(MsgCheckpointAck, n.onCheckpointAck)
}

// CoordinatedCheckpoint trims every node's log online. lockIDs must
// cover every segment that receives writes (typically all registered
// locks); the coordinator holds them for the duration, so the
// operation serializes with all transactions.
func (n *Node) CoordinatedCheckpoint(lockIDs []uint32, timeout time.Duration) error {
	// Quiesce: acquire every lock (ordered, to avoid deadlock against
	// a concurrent coordinator).
	tx := n.Begin(rvm.NoRestore)
	for _, id := range lockIDs {
		if err := tx.Acquire(id); err != nil {
			return fmt.Errorf("coherency: checkpoint acquire lock %d: %w", id, err)
		}
	}
	// Release via Abort: the quiesce transaction performed no writes,
	// and aborting leaves no record in the just-trimmed log.
	defer tx.Abort()

	// The interlock guarantees our images are current; persist them
	// and trim our own log.
	if err := n.rvm.Checkpoint(); err != nil {
		return fmt.Errorf("coherency: checkpoint images: %w", err)
	}

	// Tell the peers their logs are redundant.
	peers := n.tr.Peers()
	if len(peers) == 0 {
		return nil
	}
	n.ckpt.mu.Lock()
	n.ckpt.epoch++
	epoch := n.ckpt.epoch
	acks := make(chan netproto.NodeID, len(peers))
	n.ckpt.waiters[epoch] = acks
	n.ckpt.mu.Unlock()
	defer func() {
		n.ckpt.mu.Lock()
		delete(n.ckpt.waiters, epoch)
		n.ckpt.mu.Unlock()
	}()

	var msg [8]byte
	binary.LittleEndian.PutUint64(msg[:], epoch)
	for _, p := range peers {
		if err := n.tr.Send(p, MsgCheckpoint, msg[:]); err != nil {
			return fmt.Errorf("coherency: checkpoint notify %d: %w", p, err)
		}
	}
	deadline := time.After(timeout)
	need := map[netproto.NodeID]bool{}
	for _, p := range peers {
		need[p] = true
	}
	for len(need) > 0 {
		select {
		case from := <-acks:
			delete(need, from)
		case <-deadline:
			return fmt.Errorf("coherency: checkpoint epoch %d: %d peers did not ack", epoch, len(need))
		case <-n.done:
			return fmt.Errorf("coherency: node closed during checkpoint")
		}
	}
	return nil
}

// onCheckpoint runs at a peer: the coordinator's images now reflect
// all committed updates, so the local log is redundant.
func (n *Node) onCheckpoint(from netproto.NodeID, payload []byte) {
	if len(payload) != 8 {
		return
	}
	if err := n.rvm.Log().Reset(); err != nil {
		n.stats.Add("checkpoint_errors", 1)
		return
	}
	n.stats.Add("log_trims", 1)
	_ = n.tr.Send(from, MsgCheckpointAck, payload)
}

// onCheckpointAck runs at the coordinator.
func (n *Node) onCheckpointAck(from netproto.NodeID, payload []byte) {
	if len(payload) != 8 {
		return
	}
	epoch := binary.LittleEndian.Uint64(payload)
	n.ckpt.mu.Lock()
	ch := n.ckpt.waiters[epoch]
	n.ckpt.mu.Unlock()
	if ch != nil {
		select {
		case ch <- from:
		default:
		}
	}
}
