package coherency

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"lbc/internal/lockmgr"
	"lbc/internal/metrics"
	"lbc/internal/netproto"
	"lbc/internal/rvm"
	"lbc/internal/wal"
)

// fuzzyCluster builds nodes with the given segments registered, an
// acquire timeout (so a wedged checkpoint fails instead of hanging),
// and an optional DataStore override per node. halfSegments maps lock 1
// to the first half of region 1 and lock 2 to [512,768), leaving the
// tail uncovered so the quiesced remainder sweep has work.
var halfSegments = []Segment{
	{LockID: 1, Region: 1, Off: 0, Len: 512},
	{LockID: 2, Region: 1, Off: 512, Len: 256},
}

func fuzzyCluster(t *testing.T, k int, segs []Segment, stores []rvm.DataStore) ([]*Node, []*wal.MemDevice) {
	t.Helper()
	hub := netproto.NewHub()
	ids := make([]netproto.NodeID, k)
	for i := range ids {
		ids[i] = netproto.NodeID(i + 1)
	}
	nodes := make([]*Node, k)
	logs := make([]*wal.MemDevice, k)
	for i := range ids {
		logs[i] = wal.NewMemDevice()
		var data rvm.DataStore = rvm.NewMemStore()
		if stores != nil && stores[i] != nil {
			data = stores[i]
		}
		r, err := rvm.Open(rvm.Options{Node: uint32(ids[i]), Log: logs[i], Data: data})
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(Options{
			RVM: r, Transport: hub.Endpoint(ids[i]), Nodes: ids,
			AcquireTimeout: 300 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		t.Cleanup(func() { n.Close() })
	}
	for _, n := range nodes {
		if _, err := n.MapRegion(1, 1024); err != nil {
			t.Fatal(err)
		}
		for _, s := range segs {
			n.AddSegment(s)
		}
	}
	for _, n := range nodes {
		if err := n.WaitPeers(1, k-1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return nodes, logs
}

// TestCheckpointFailureReleasesLocks is the regression test for the
// quiesce-phase lock leak: when a mid-loop acquire failed, the locks
// taken by earlier iterations were held forever because the abort was
// registered only after the loop completed. A failed checkpoint must
// release everything it acquired.
func TestCheckpointFailureReleasesLocks(t *testing.T) {
	// Only lock 1 has a registered segment: the fuzzy sweep phase never
	// touches the wedged lock 2, so the failure lands squarely in the
	// quiesce acquire loop — the path that used to leak.
	nodes, _ := fuzzyCluster(t, 2, halfSegments[:1], nil)

	// The peer wedges lock 2 in an open transaction, so the coordinator's
	// quiesce acquires lock 1 and then times out on lock 2.
	held := nodes[1].Begin(rvm.NoRestore)
	if err := held.Acquire(2); err != nil {
		t.Fatal(err)
	}
	err := nodes[0].CoordinatedCheckpoint([]uint32{1, 2}, 5*time.Second)
	if !errors.Is(err, lockmgr.ErrAcquireTimeout) {
		t.Fatalf("checkpoint against a wedged lock: %v, want acquire timeout", err)
	}

	// Lock 1 was acquired before the failure; it must be free again.
	tx := nodes[1].Begin(rvm.NoRestore)
	if err := tx.Acquire(1); err != nil {
		t.Fatalf("lock 1 leaked by the failed checkpoint: %v", err)
	}
	tx.Abort()
	if err := held.Abort(); err != nil {
		t.Fatal(err)
	}
	// And a later checkpoint succeeds once the wedge clears.
	if err := nodes[0].CoordinatedCheckpoint([]uint32{1, 2}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

// gatedStore wraps a MemStore and blocks the first StorePage call until
// released, signalling when the block is reached. It lets a test hold a
// checkpoint mid-sweep deterministically.
type gatedStore struct {
	*rvm.MemStore
	once    sync.Once
	reached chan struct{}
	release chan struct{}
}

func newGatedStore() *gatedStore {
	return &gatedStore{
		MemStore: rvm.NewMemStore(),
		reached:  make(chan struct{}),
		release:  make(chan struct{}),
	}
}

func (g *gatedStore) StorePage(id uint32, off int64, data []byte) error {
	g.once.Do(func() {
		close(g.reached)
		<-g.release
	})
	return g.MemStore.StorePage(id, off, data)
}

// TestCheckpointAllowsConcurrentCommits pins the tentpole property: the
// image sweep no longer runs under a full quiesce, so a commit under a
// lock the sweep is not currently holding completes while the sweep is
// in progress. The raced commit must then survive the checkpoint — it
// stays replayable from the logs over the checkpointed image.
func TestCheckpointAllowsConcurrentCommits(t *testing.T) {
	gs := newGatedStore()
	nodes, logs := fuzzyCluster(t, 2, halfSegments, []rvm.DataStore{gs, nil})

	commitWrite(t, nodes[0], 1, 0, []byte("covered-by-ckpt"))

	ckptErr := make(chan error, 1)
	go func() {
		ckptErr <- nodes[0].CoordinatedCheckpoint([]uint32{1, 2}, 10*time.Second)
	}()

	// The sweep is now blocked inside lock 1's segment copy, holding
	// only lock 1. A commit under lock 2 must make progress.
	<-gs.reached
	commitWrite(t, nodes[1], 2, 512, []byte("raced-the-sweep"))
	close(gs.release)

	if err := <-ckptErr; err != nil {
		t.Fatal(err)
	}

	// The coordinator's checkpointed image carries both writes (the
	// raced one via the lock-2 sweep or the dirty resweep).
	img, err := gs.LoadRegion(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(img[0:15]) != "covered-by-ckpt" || string(img[512:527]) != "raced-the-sweep" {
		t.Fatalf("image = %q / %q", img[0:15], img[512:527])
	}

	// The raced commit landed after the peer's Begin-time cut, so its
	// record survives the peer's head trim and full recovery over the
	// checkpointed image converges to the live state.
	if sz, _ := logs[1].Size(); sz == 0 {
		t.Fatal("raced commit's record was trimmed from the peer log")
	}
	check := rvm.NewMemStore()
	if img, err := gs.LoadRegion(1); err == nil {
		check.StoreRegion(1, img)
	}
	res, err := rvm.Recover(logs[1], check, rvm.RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1 {
		t.Fatalf("replayed %d records, want the raced commit only", res.Records)
	}
	got, _ := check.LoadRegion(1)
	want := readUnder(t, nodes[0], 2, 512, 15)
	if !bytes.Equal(got[512:527], want) {
		t.Fatalf("recovered %q, live %q", got[512:527], want)
	}
}

// TestCheckpointCutSurvivesConcurrentTrim: a peer's recorded cut must
// stay correct when another coordinator trims the peer's log between
// the first coordinator's Begin and Checkpoint messages. The handlers
// are driven directly because two live coordinators cannot be held in
// the racing window deterministically (a gated sweep holds the very
// lock the second quiesce needs).
func TestCheckpointCutSurvivesConcurrentTrim(t *testing.T) {
	nodes, logs := fuzzyCluster(t, 2, halfSegments, nil)
	peer := nodes[1]

	commitWrite(t, peer, 2, 512, []byte("below-the-cut"))

	// Coordinator A's Begin arrives: the peer records its cut.
	var epochMsg [8]byte
	binary.LittleEndian.PutUint64(epochMsg[:], 7)
	peer.onCheckpointBegin(1, epochMsg[:])

	// Coordinator B completes a whole checkpoint inside A's window and
	// trims everything recorded so far; then a commit races A's sweep.
	cut, err := peer.RVM().LogCut()
	if err != nil {
		t.Fatal(err)
	}
	if err := peer.RVM().TrimLogHeadLogical(cut); err != nil {
		t.Fatal(err)
	}
	commitWrite(t, peer, 2, 512, []byte("raced-the-ckpt"))

	// A's Checkpoint arrives. Interpreted as a raw post-trim offset, A's
	// stale cut would delete the raced commit's record (or fall beyond
	// the log end); the logical cut rebases against B's trim to a no-op.
	var doneMsg [16]byte
	binary.LittleEndian.PutUint64(doneMsg[:8], 7)
	peer.onCheckpoint(1, doneMsg[:])

	txs, err := wal.ReadDevice(logs[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 1 {
		t.Fatalf("%d records in peer log after stale-cut trim, want the raced commit only", len(txs))
	}
	if got := peer.Stats().Counter(metrics.CtrCkptErrors); got != 0 {
		t.Fatalf("stale cut raised %d checkpoint errors", got)
	}
}

// TestCheckpointSegmentsTrimAndRecovery: with registered segments the
// per-lock sweep plus quiesced remainder still checkpoints everything —
// all logs trim to empty and the store image matches the live state.
func TestCheckpointSegmentsTrimAndRecovery(t *testing.T) {
	stores := []rvm.DataStore{rvm.NewMemStore(), rvm.NewMemStore()}
	nodes, logs := fuzzyCluster(t, 2, halfSegments, stores)

	commitWrite(t, nodes[0], 1, 0, []byte("first-half"))
	commitWrite(t, nodes[1], 2, 512, []byte("second-half"))
	// Bytes [768,1024) are outside every registered segment, so this
	// write is captured only by the quiesced remainder sweep.
	commitWrite(t, nodes[0], 1, 800, []byte("uncovered"))

	if err := nodes[0].CoordinatedCheckpoint([]uint32{1, 2}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	for i, l := range logs {
		if sz, _ := l.Size(); sz != 0 {
			t.Fatalf("node %d log not trimmed (%d bytes)", i+1, sz)
		}
	}
	img, err := stores[0].LoadRegion(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(img[0:10]) != "first-half" || string(img[512:523]) != "second-half" ||
		string(img[800:809]) != "uncovered" {
		t.Fatalf("image = %q / %q / %q", img[0:10], img[512:523], img[800:809])
	}
}
