package coherency

import (
	"time"

	"lbc/internal/metrics"
	"lbc/internal/netproto"
	"lbc/internal/obs"
	"lbc/internal/wal"
)

// onUpdate handles an incoming compressed coherency record. The
// transport owns the payload buffer, so the decoded record (which
// aliases it) is copied before crossing into the apply pipeline — into
// a pooled arena on the parallel path, a plain allocation on the
// serial (ablation) path.
func (n *Node) onUpdate(from netproto.NodeID, payload []byte) {
	n.stats.Add(metrics.CtrUpdateFramesRecv, 1)
	rec, err := wal.DecodeCompressed(payload)
	if err != nil {
		n.decodeError(from)
		return
	}
	if n.serial {
		n.enqueue(copyRecord(rec))
		return
	}
	n.enqueue(n.adoptRecord(rec))
}

// onUpdateStd handles a standard-encoded record (header ablation mode).
func (n *Node) onUpdateStd(from netproto.NodeID, payload []byte) {
	n.stats.Add(metrics.CtrUpdateFramesRecv, 1)
	rec, _, err := wal.DecodeStandard(payload)
	if err != nil {
		n.decodeError(from)
		return
	}
	n.enqueue(rec) // DecodeStandard already copies data
}

// decodeError counts a malformed update frame, both in aggregate and
// attributed to the sending node (a persistently garbling peer shows up
// by name in /debug/lbc instead of as an anonymous total).
func (n *Node) decodeError(from netproto.NodeID) {
	n.stats.Add(metrics.CtrDecodeErrors, 1)
	n.stats.Add(metrics.DecodeErrorsFrom(uint32(from)), 1)
}

// enqueue admits a record to the apply pipeline. The channel send is
// attempted without blocking first so commit-path stalls on a full
// apply queue are visible as a counter, not silent latency.
func (n *Node) enqueue(rec *wal.TxRecord) {
	n.outstanding.Add(1)
	select {
	case n.applyCh <- rec:
		return
	default:
	}
	n.stats.Add(metrics.CtrApplyBackpressure, 1)
	select {
	case n.applyCh <- rec:
	case <-n.done:
		n.recordDone(rec)
	}
}

// copyRecord deep-copies a record whose range data aliases a transient
// buffer.
func copyRecord(rec *wal.TxRecord) *wal.TxRecord {
	cp := &wal.TxRecord{
		Node:       rec.Node,
		TxSeq:      rec.TxSeq,
		Checkpoint: rec.Checkpoint,
		Locks:      append([]wal.LockRec(nil), rec.Locks...),
		Ranges:     make([]wal.RangeRec, len(rec.Ranges)),
	}
	var total int
	for _, r := range rec.Ranges {
		total += len(r.Data)
	}
	buf := make([]byte, 0, total)
	for i, r := range rec.Ranges {
		start := len(buf)
		buf = append(buf, r.Data...)
		cp.Ranges[i] = wal.RangeRec{Region: r.Region, Off: r.Off, Data: buf[start:len(buf):len(buf)]}
	}
	return cp
}

// applier is the node's receiver thread (§3.2): it installs incoming
// records into the local memory image, holding records whose per-lock
// predecessors have not yet been applied (§3.4). Records that cannot
// be applied yet are parked rather than blocked on, so out-of-order
// arrival from different peers cannot deadlock the apply pipeline.
func (n *Node) applier() {
	defer n.wg.Done()
	var parked []*wal.TxRecord
	var buffered []*wal.TxRecord // versioned mode: awaiting Accept
	appliedTx := map[uint32]uint64{}

	versioned := func() bool {
		n.mu.Lock()
		defer n.mu.Unlock()
		return n.versioned
	}

	drain := func() {
		for {
			progress := false
			keep := parked[:0]
			for _, rec := range parked {
				if n.canApply(rec, appliedTx) {
					n.apply(rec, appliedTx)
					n.recordDone(rec)
					progress = true
				} else if !n.stale(rec, appliedTx) {
					keep = append(keep, rec)
				} else {
					n.stats.Add(metrics.CtrRecordsStale, 1)
					n.recordDone(rec)
				}
			}
			parked = keep
			if !progress {
				n.parked.Store(int64(len(parked)))
				return
			}
		}
	}

	for {
		select {
		case rec := <-n.applyCh:
			if versioned() {
				buffered = append(buffered, rec)
				continue
			}
			parked = append(parked, rec)
			drain()

		case <-n.wake:
			// Local commit advanced applied sequences; retry parked.
			drain()

		case reply := <-n.acceptCh:
			// Accept (versioned mode): move the buffered batch into the
			// normal apply path and report how many were installed.
			k := len(buffered)
			parked = append(parked, buffered...)
			buffered = buffered[:0]
			drain()
			reply <- k

		case <-n.done:
			return
		}
	}
}

// stale reports whether the record was already applied (duplicate
// delivery across paths — eager broadcast, lazy pull, token piggyback,
// or a startup CatchUp). For records that wrote under locks, the
// per-lock chains are the exact test: a lock's Applied counter reaches
// the record's sequence number if and only if the record was
// installed, because records on one chain apply in sequence order.
// The chain check matters for correctness, not just economy:
// re-applying an old record after its successor would resurrect
// overwritten bytes.
//
// Records without lock records (the DSM baseline harness) fall back to
// the per-sender commit sequence, which is in-order for that path.
// Note that the per-sender sequence must NOT be consulted for
// lock-bearing records: one node's transactions on unrelated locks may
// legitimately apply out of commit order here (one parked, a later one
// applied), and a high-water check would drop the parked record.
func (n *Node) stale(rec *wal.TxRecord, appliedTx map[uint32]uint64) bool {
	wrote := false
	for _, l := range rec.Locks {
		if !l.Wrote {
			continue
		}
		wrote = true
		if n.locks.Applied(l.LockID) < l.Seq {
			return false
		}
	}
	if wrote {
		return true
	}
	return rec.TxSeq <= appliedTx[rec.Node]
}

// canApply reports whether every written lock's predecessor update has
// been applied locally.
func (n *Node) canApply(rec *wal.TxRecord, appliedTx map[uint32]uint64) bool {
	if n.stale(rec, appliedTx) {
		return false
	}
	for _, l := range rec.Locks {
		if l.Wrote && n.locks.Applied(l.LockID) < l.PrevWriteSeq {
			return false
		}
	}
	return true
}

// apply installs the record and advances the per-lock applied
// sequences, waking any acquirer blocked on the interlock.
func (n *Node) apply(rec *wal.TxRecord, appliedTx map[uint32]uint64) {
	traced := n.trace.Enabled()
	var t0 time.Time
	if traced {
		t0 = time.Now()
	}
	tm := metrics.StartTimer(n.stats, metrics.PhaseApply)
	bytes, err := n.rvm.ApplyRecord(rec)
	tm.Stop()
	if traced {
		n.trace.Emit(obs.Span{
			Name: obs.SpanApply, Node: rec.Node, Tx: rec.TxSeq,
			Start: t0.UnixNano(), Dur: time.Since(t0).Nanoseconds(),
			N: int64(bytes),
		})
	}
	if err != nil {
		n.stats.Add(metrics.CtrApplyErrors, 1)
		return
	}
	if rec.TxSeq > appliedTx[rec.Node] {
		appliedTx[rec.Node] = rec.TxSeq
	}
	for _, l := range rec.Locks {
		if l.Wrote {
			n.locks.MarkApplied(l.LockID, l.Seq)
		}
	}
	n.stats.Add(metrics.CtrRecordsApplied, 1)
	n.stats.Add(metrics.CtrBytesApplied, int64(bytes))
}

// Parked reports how many received records the apply pipeline currently
// holds waiting for their per-lock predecessors (the §3.4 interlock).
// Tests use it as a deterministic signal that an out-of-order record has
// been processed and parked.
func (n *Node) Parked() int {
	if n.eng != nil {
		return n.eng.Parked()
	}
	return int(n.parked.Load())
}

// poke retries every parked record (after local state advanced applied
// sequences in bulk — a pull, a catch-up). When only specific locks
// advanced, pokeLocks is cheaper.
func (n *Node) poke() {
	if n.eng != nil {
		n.eng.WakeAll()
		return
	}
	select {
	case n.wake <- struct{}{}:
	default:
	}
}

// pokeLocks retries records parked on the given locks (a local commit
// released them with new applied sequences). The parallel engine wakes
// exactly those waiters; the serial applier falls back to a full
// parked-list rescan.
func (n *Node) pokeLocks(lockIDs []uint32) {
	if n.eng != nil {
		n.eng.WakeLocks(lockIDs)
		return
	}
	n.poke()
}

// Accept applies all updates buffered in versioned mode (§2.1-2.2: a
// reader explicitly signals its willingness to move forward to a newer
// consistent version). It returns the number of records moved into the
// apply path. In non-versioned mode it is a no-op returning 0.
func (n *Node) Accept() int {
	n.mu.Lock()
	v := n.versioned
	n.mu.Unlock()
	if !v {
		return 0
	}
	reply := make(chan int, 1)
	select {
	case n.acceptCh <- reply:
		return <-reply
	case <-n.done:
		return 0
	}
}

// SetVersioned switches the versioned read model on or off at runtime.
// Turning it off flushes buffered updates via Accept first.
func (n *Node) SetVersioned(v bool) {
	n.mu.Lock()
	was := n.versioned
	n.mu.Unlock()
	if was && !v {
		n.Accept()
	}
	n.mu.Lock()
	n.versioned = v
	n.mu.Unlock()
}
