package coherency

import (
	"encoding/binary"
	"sort"

	"lbc/internal/metrics"
	"lbc/internal/netproto"
)

// Interest-based update routing (Options.InterestRouting): instead of
// broadcasting every committed record to every peer with the modified
// region mapped, peers declare interest in the locks whose segments
// they actually touch, and eager propagation ships update frames only
// to peers interested in a record's writing locks. On a sharded
// cluster where most locks are touched by a few nodes this cuts the
// per-node receive load from O(cluster writes) to O(relevant writes).
//
// Interest is a routing hint, never a correctness input: the mode
// implies pull-on-stall, so a peer that acquires a lock it had no
// interest in simply pulls the records it was never sent from the
// storage server's logs (the same backstop that covers lost frames).
// Interest is seeded by lock acquisition, dropped explicitly via
// DropInterest when a cached segment is evicted, purged for evicted
// peers, and re-announced when a peer (re)appears — a rejoiner
// re-registers through CatchUp from its own logged writes.

// MsgInterest carries an interest delta within coherency's 0x20-0x2F
// code range: {on u8, n u32, lock u32 × n}.
const MsgInterest uint8 = 0x2C

// encodeInterest builds a MsgInterest payload.
func encodeInterest(on bool, locks []uint32) []byte {
	b := make([]byte, 5+4*len(locks))
	if on {
		b[0] = 1
	}
	binary.LittleEndian.PutUint32(b[1:], uint32(len(locks)))
	for i, l := range locks {
		binary.LittleEndian.PutUint32(b[5+4*i:], l)
	}
	return b
}

// onInterest applies a peer's interest delta.
func (n *Node) onInterest(from netproto.NodeID, payload []byte) {
	if len(payload) < 5 {
		return
	}
	on := payload[0] == 1
	count := int(binary.LittleEndian.Uint32(payload[1:]))
	if len(payload) != 5+4*count {
		return
	}
	n.mu.Lock()
	for i := 0; i < count; i++ {
		lockID := binary.LittleEndian.Uint32(payload[5+4*i:])
		if on {
			if n.interest[lockID] == nil {
				n.interest[lockID] = map[netproto.NodeID]bool{}
			}
			n.interest[lockID][from] = true
		} else if n.interest[lockID] != nil {
			delete(n.interest[lockID], from)
			if len(n.interest[lockID]) == 0 {
				delete(n.interest, lockID)
			}
		}
	}
	n.mu.Unlock()
}

// registerInterest declares this node's interest in the locks to every
// peer (idempotent: already-registered locks are skipped).
func (n *Node) registerInterest(locks ...uint32) {
	if !n.interestOn {
		return
	}
	n.mu.Lock()
	fresh := locks[:0]
	for _, l := range locks {
		if !n.myInterest[l] {
			n.myInterest[l] = true
			fresh = append(fresh, l)
		}
	}
	n.mu.Unlock()
	if len(fresh) == 0 {
		return
	}
	n.stats.Add(metrics.CtrInterestRegs, int64(len(fresh)))
	msg := encodeInterest(true, fresh)
	for _, p := range n.tr.Peers() {
		_ = n.tr.Send(p, MsgInterest, msg)
	}
}

// DropInterest withdraws this node's interest in the locks (the cache
// eviction / piggyback-discard hook): peers stop routing their updates
// here. A later acquire re-registers and pulls anything missed.
func (n *Node) DropInterest(locks ...uint32) {
	if !n.interestOn {
		return
	}
	n.mu.Lock()
	dropped := locks[:0]
	for _, l := range locks {
		if n.myInterest[l] {
			delete(n.myInterest, l)
			dropped = append(dropped, l)
		}
	}
	n.mu.Unlock()
	if len(dropped) == 0 {
		return
	}
	msg := encodeInterest(false, dropped)
	for _, p := range n.tr.Peers() {
		_ = n.tr.Send(p, MsgInterest, msg)
	}
}

// announceInterestTo replays this node's full interest set to one peer
// — run when a peer maps a region (it may have missed earlier deltas)
// and when an evicted peer rejoins (its table was purged with us in it).
func (n *Node) announceInterestTo(peer netproto.NodeID) {
	if !n.interestOn {
		return
	}
	n.mu.Lock()
	locks := make([]uint32, 0, len(n.myInterest))
	for l := range n.myInterest {
		locks = append(locks, l)
	}
	n.mu.Unlock()
	if len(locks) == 0 {
		return
	}
	sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })
	_ = n.tr.Send(peer, MsgInterest, encodeInterest(true, locks))
}

// purgeInterest removes an evicted peer from every interest set; its
// rejoin re-registers through CatchUp.
func (n *Node) purgeInterest(peer netproto.NodeID) {
	n.mu.Lock()
	for lockID, set := range n.interest {
		delete(set, peer)
		if len(set) == 0 {
			delete(n.interest, lockID)
		}
	}
	n.mu.Unlock()
}

// InterestedIn reports whether peer currently has interest registered
// for the lock (diagnostics and tests).
func (n *Node) InterestedIn(lockID uint32, peer netproto.NodeID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.interest[lockID][peer]
}
