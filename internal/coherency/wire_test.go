package coherency

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/netproto"
	"lbc/internal/rvm"
	"lbc/internal/store"
	"lbc/internal/wal"
)

// compressible returns n bytes of repeating pattern — enough structure
// that a batch carrying it clears the compression size heuristic.
func compressible(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i % 7)
	}
	return b
}

// TestCompressedBatchDelivers drives writes big enough to trip the
// compression heuristic and checks (a) the reader converges through
// MsgUpdateBatchC frames, (b) the wire-byte counter runs below the raw
// counter, and (c) the per-peer byte counter tracks the wire total.
func TestCompressedBatchDelivers(t *testing.T) {
	nodes := batchedCluster(t, 2, 4096)
	for i := 0; i < 10; i++ {
		commitWrite(t, nodes[0], 1, 0, compressible(512))
		got := readUnder(t, nodes[1], 1, 0, 512)
		if !bytes.Equal(got, compressible(512)) {
			t.Fatalf("round %d: reader diverged", i)
		}
	}
	st := nodes[0].Stats()
	if st.Counter(metrics.CtrCompressedFrames) == 0 {
		t.Fatal("no compressed frames were sent")
	}
	wire, raw := st.Counter(metrics.CtrBytesSent), st.Counter(metrics.CtrBytesSentRaw)
	if wire >= raw {
		t.Fatalf("wire bytes %d not below raw bytes %d", wire, raw)
	}
	if per := st.Counter(metrics.BytesSentTo(2)); per != wire {
		t.Fatalf("per-peer bytes %d != total wire bytes %d (single-peer cluster)", per, wire)
	}
}

// TestNoCompressOption pins the opt-out: with NoCompress set every
// frame ships plain even when the payload would compress well.
func TestNoCompressOption(t *testing.T) {
	nodes := testCluster(t, 2, 4096, func(i int, o *Options) {
		o.BatchUpdates = true
		o.NoCompress = true
	})
	for i := 0; i < 5; i++ {
		commitWrite(t, nodes[0], 1, 0, compressible(512))
		readUnder(t, nodes[1], 1, 0, 512)
	}
	st := nodes[0].Stats()
	if st.Counter(metrics.CtrCompressedFrames) != 0 {
		t.Fatal("NoCompress node sent compressed frames")
	}
	if st.Counter(metrics.CtrBytesSent) != st.Counter(metrics.CtrBytesSentRaw) {
		t.Fatal("NoCompress wire bytes diverge from raw bytes")
	}
}

// TestSmallBatchSkipsCompression checks the other side of the
// heuristic: tiny batches ship plain and count a skip... of the
// frames below compressMinBytes none may arrive compressed.
func TestSmallBatchSkipsCompression(t *testing.T) {
	nodes := batchedCluster(t, 2, 1024)
	for i := 0; i < 5; i++ {
		commitWrite(t, nodes[0], 1, 0, []byte{byte(i)})
		readUnder(t, nodes[1], 1, 0, 1)
	}
	if nodes[0].Stats().Counter(metrics.CtrCompressedFrames) != 0 {
		t.Fatal("sub-threshold batches were compressed")
	}
	if nodes[0].Stats().Counter(metrics.CtrBatchFrames) == 0 {
		t.Fatal("no batch frames at all — heuristic test exercised nothing")
	}
}

// mustFrameC builds a well-formed MsgUpdateBatchC payload carrying the
// given records, bypassing the sender (tests corrupt it afterwards).
func mustFrameC(t *testing.T, recs ...*wal.TxRecord) []byte {
	t.Helper()
	var inner []byte
	inner = append(inner, 0, 0, 0, 0)
	putU32(inner[0:4], uint32(len(recs)))
	var parts [][]byte
	for _, r := range recs {
		enc, err := wal.AppendCompressed([]byte{batchFmtCompressed}, r)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, enc)
		var l [4]byte
		putU32(l[:], uint32(len(enc)))
		inner = append(inner, l[:]...)
	}
	for _, p := range parts {
		inner = append(inner, p...)
	}
	frame := make([]byte, 4)
	putU32(frame, uint32(len(inner)))
	return wal.CompressChunks(frame, inner)
}

// TestUpdateBatchCDecodeErrors feeds the compressed-frame handler the
// malformed inputs the fuzzers hunt for — short payloads, bomb-sized
// declared lengths, corrupt streams, length mismatches, bad inner tags
// — and requires a decode-error count instead of a panic or a poisoned
// apply pipeline.
func TestUpdateBatchCDecodeErrors(t *testing.T) {
	nodes := testCluster(t, 1, 1024, func(i int, o *Options) { o.BatchUpdates = true })
	n := nodes[0]
	rec := &wal.TxRecord{
		Node: 9, TxSeq: 1,
		Locks:  []wal.LockRec{{LockID: 5, Seq: 1, Wrote: true}},
		Ranges: []wal.RangeRec{{Region: 1, Off: 0, Data: []byte("ok")}},
	}
	good := mustFrameC(t, rec)

	cases := map[string][]byte{
		"empty":        nil,
		"short header": {0x01, 0x02},
		"zero length":  {0, 0, 0, 0},
		"bomb length":  append([]byte{0xFF, 0xFF, 0xFF, 0xFF}, good[4:]...),
		"corrupt body": append(append([]byte(nil), good[:6]...), 0xEE, 0xEE, 0xEE),
		"length lies": func() []byte {
			f := append([]byte(nil), good...)
			putU32(f[0:4], getU32(f[0:4])+3)
			return f
		}(),
		"bad inner tag": func() []byte {
			enc, err := wal.AppendCompressed([]byte{0x7F}, rec) // unknown tag
			if err != nil {
				t.Fatal(err)
			}
			inner := make([]byte, 8)
			putU32(inner[0:4], 1)
			putU32(inner[4:8], uint32(len(enc)))
			inner = append(inner, enc...)
			frame := make([]byte, 4)
			putU32(frame, uint32(len(inner)))
			return wal.CompressChunks(frame, inner)
		}(),
	}
	before := n.Stats().Counter(metrics.CtrDecodeErrors)
	want := before
	for name, payload := range cases {
		n.onUpdateBatchC(7, payload)
		want++
		if got := n.Stats().Counter(metrics.CtrDecodeErrors); got != want {
			t.Fatalf("%s: decode_errors = %d, want %d", name, got, want)
		}
	}
	// The well-formed frame still decodes after all that abuse.
	n.onUpdateBatchC(7, good)
	if got := n.Stats().Counter(metrics.CtrDecodeErrors); got != want {
		t.Fatalf("good frame after errors: decode_errors rose to %d", got)
	}
	waitFor(t, func() bool { return n.Locks().Applied(5) == 1 })
}

// FuzzBatchFrameC mirrors the receive path for MsgUpdateBatchC as a
// pure pipeline — inflate with the declared-length check, split, decode
// every part by tag — and requires it to survive arbitrary input
// without panicking. Seeds cover a valid frame plus each corruption
// class the deterministic test pins.
func FuzzBatchFrameC(f *testing.F) {
	rec := &wal.TxRecord{
		Node: 3, TxSeq: 9,
		Locks:  []wal.LockRec{{LockID: 2, Seq: 4, PrevWriteSeq: 3, Wrote: true}},
		Ranges: []wal.RangeRec{{Region: 1, Off: 64, Data: compressible(100)}},
	}
	var inner []byte
	enc, err := wal.AppendCompressed([]byte{batchFmtCompressed}, rec)
	if err != nil {
		f.Fatal(err)
	}
	inner = append(inner, 0, 0, 0, 0, 0, 0, 0, 0)
	putU32(inner[0:4], 1)
	putU32(inner[4:8], uint32(len(enc)))
	inner = append(inner, enc...)
	frame := make([]byte, 4)
	putU32(frame, uint32(len(inner)))
	frame = wal.CompressChunks(frame, inner)

	f.Add(frame)
	f.Add(frame[:len(frame)/2])                             // truncated stream
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x02, 0x03}) // bomb declared length
	f.Add([]byte{0x00, 0x00})                               // short header
	f.Fuzz(func(t *testing.T, b []byte) {
		raw, err := inflateBatch(b)
		if err != nil {
			return
		}
		parts, err := netproto.SplitBatch(raw)
		if err != nil {
			return
		}
		for _, p := range parts {
			if len(p) < 1 {
				continue
			}
			switch p[0] {
			case batchFmtCompressed:
				wal.DecodeCompressed(p[1:])
			case batchFmtStandard:
				wal.DecodeStandard(p[1:])
			}
		}
	})
}

// stallTransport wraps a Transport and blocks update-frame sends to
// one peer until released. It deliberately embeds the interface (so
// its method set lacks SendV): the batcher's SendVec falls back to the
// flatten+Send path and every frame funnels through the gate.
type stallTransport struct {
	netproto.Transport
	victim  netproto.NodeID
	mu      sync.Mutex
	release chan struct{}
}

func newStallTransport(inner netproto.Transport, victim netproto.NodeID) *stallTransport {
	return &stallTransport{Transport: inner, victim: victim, release: make(chan struct{})}
}

func (s *stallTransport) Send(to netproto.NodeID, typ uint8, payload []byte) error {
	if to == s.victim && (typ == MsgUpdateBatch || typ == MsgUpdateBatchC) {
		s.mu.Lock()
		ch := s.release
		s.mu.Unlock()
		<-ch
	}
	return s.Transport.Send(to, typ, payload)
}

func (s *stallTransport) unstall() {
	s.mu.Lock()
	select {
	case <-s.release:
	default:
		close(s.release)
	}
	s.mu.Unlock()
}

// TestBackpressureBoundsWindow wedges one peer's transport and commits
// until the writer's send window to that peer fills: commits must stop
// at the bound (bounded memory — no unbounded queue behind a slow
// peer), frames already admitted for the healthy peer must still
// arrive, and releasing the stall must drain everything with no
// deadlock. No pull backstop is configured, so dropping is not an
// option and blocking is the only correct behavior.
func TestBackpressureBoundsWindow(t *testing.T) {
	const window = 400
	var st *stallTransport
	nodes := testCluster(t, 3, 4096, func(i int, o *Options) {
		o.BatchUpdates = true
		o.SendWindow = window
		if i == 0 {
			st = newStallTransport(o.Transport, 3)
			o.Transport = st
		}
	})
	// Unstall before the cluster's Close cleanups run, or the wedged
	// sender goroutine would hang Node.Close's wg.Wait.
	t.Cleanup(func() { st.unstall() })

	const total = 30
	var committed atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			commitWrite(t, nodes[0], 1, 0, compressible(100))
			committed.Add(1)
		}
	}()

	// The committer must wedge: window 400 holds only a few ~100-byte
	// records, so the enqueue for peer 3 blocks and the commit loop
	// stops well short of total.
	waitFor(t, func() bool { return nodes[0].Stats().Counter(metrics.CtrSendStalls) > 0 })
	stalledAt := committed.Load()
	if stalledAt >= total {
		t.Fatalf("all %d commits ran through a %d-byte window behind a dead peer", total, window)
	}
	// Commits admitted before the wedge still reach the healthy peer.
	waitFor(t, func() bool { return nodes[1].Locks().Applied(1) >= uint64(stalledAt) })
	// And the committer stays wedged: no drops without a pull backstop.
	time.Sleep(50 * time.Millisecond)
	if nodes[0].Stats().Counter(metrics.CtrSlowPeerDrops) != 0 {
		t.Fatal("sender dropped frames with no pull backstop configured")
	}

	st.unstall()
	<-done
	waitFor(t, func() bool { return nodes[2].Locks().Applied(1) == total })
	got := readUnder(t, nodes[2], 1, 0, 100)
	if !bytes.Equal(got, compressible(100)) {
		t.Fatal("stalled peer diverged after release")
	}
}

// TestSlowPeerDowngradeDrops runs the same wedge with the pull
// backstop configured and a short stall timeout: instead of blocking
// forever, the sender drops the wedged peer's backlog (slow_peer_drops
// counts it), commits keep flowing, and the victim recovers the lost
// records from the server logs on its next acquire — the same path
// chaos-injected drops take.
func TestSlowPeerDowngradeDrops(t *testing.T) {
	srv, err := store.NewServer("127.0.0.1:0", store.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	hub := netproto.NewHub()
	ids := []netproto.NodeID{1, 2, 3}
	var st *stallTransport
	nodes := make([]*Node, len(ids))
	for i, id := range ids {
		cli, err := store.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cli.Close() })
		r, err := rvm.Open(rvm.Options{
			Node: uint32(id),
			Log:  cli.LogDevice(uint32(id)),
			Data: cli,
		})
		if err != nil {
			t.Fatal(err)
		}
		o := Options{
			RVM: r, Transport: hub.Endpoint(id), Nodes: ids,
			BatchUpdates:     true,
			PullOnStall:      true,
			PeerLogs:         func(node uint32) wal.Device { return cli.LogDevice(node) },
			SendWindow:       600,
			SendStallTimeout: 30 * time.Millisecond,
		}
		if i == 0 {
			st = newStallTransport(o.Transport, 3)
			o.Transport = st
		}
		n, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		t.Cleanup(func() { n.Close() })
	}
	t.Cleanup(func() { st.unstall() })
	for _, n := range nodes {
		if _, err := n.MapRegion(1, 4096); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		if err := n.WaitPeers(1, len(ids)-1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// Every commit must complete despite the wedged peer: each stall
	// resolves within the timeout by dropping the backlog.
	const total = 20
	for i := 0; i < total; i++ {
		commitWrite(t, nodes[0], 1, 0, compressible(150))
	}
	if nodes[0].Stats().Counter(metrics.CtrSlowPeerDrops) == 0 {
		t.Fatal("no slow-peer drops despite wedged transport and pull backstop")
	}
	// The healthy peer converged the eager way.
	waitFor(t, func() bool { return nodes[1].Locks().Applied(1) == total })

	// The victim recovers through the pull backstop once its transport
	// heals: acquiring the lock detects the sequence gap and refetches
	// the dropped records from the server logs.
	st.unstall()
	got := readUnder(t, nodes[2], 1, 0, 150)
	if !bytes.Equal(got, compressible(150)) {
		t.Fatal("victim did not recover dropped records via pull backstop")
	}
}
