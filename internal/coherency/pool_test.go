package coherency

import (
	"bytes"
	"testing"
	"time"

	"lbc/internal/bufpool"
	"lbc/internal/netproto"
	"lbc/internal/rvm"
	"lbc/internal/wal"
)

// Buffer-ownership tests for the pooled receive path: once
// DeliverUpdate returns, the caller may mutate or recycle its frame
// buffer freely — the record has been copied out (into a pooled arena
// on the parallel path, a plain copy on the serial path), even while
// the record sits parked waiting for a predecessor.

// newPoolReceiver builds a single-chain receiving node.
func newPoolReceiver(t *testing.T, serial bool) (*Node, *rvm.Region) {
	t.Helper()
	hub := netproto.NewHub()
	r, err := rvm.Open(rvm.Options{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	opts := Options{
		RVM: r, Transport: hub.Endpoint(1),
		Nodes:       []netproto.NodeID{1, 2, 3},
		SerialApply: serial,
	}
	if !serial {
		opts.ApplyWorkers = 2
	}
	n, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	reg, err := n.MapRegion(1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	n.AddSegment(Segment{LockID: 0, Region: 1, Off: 0, Len: 4096})
	return n, reg
}

// chainFrame encodes a single-lock record for chain 0 into a pooled
// buffer.
func chainFrame(t *testing.T, sender uint32, txSeq, seq uint64, off uint64, data []byte) []byte {
	t.Helper()
	rec := &wal.TxRecord{
		Node: sender, TxSeq: txSeq,
		Locks:  []wal.LockRec{{LockID: 0, Seq: seq, PrevWriteSeq: seq - 1, Wrote: true}},
		Ranges: []wal.RangeRec{{Region: 1, Off: off, Data: data}},
	}
	enc, err := wal.AppendCompressed(bufpool.Get(wal.CompressedSize(rec)), rec)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// testReceiveBufferIsolation delivers an out-of-order record (which
// parks, holding its copy), then scribbles over and recycles the frame
// while the record is still parked. The installed bytes must be the
// originals.
func testReceiveBufferIsolation(t *testing.T, serial bool) {
	n, reg := newPoolReceiver(t, serial)

	p1 := bytes.Repeat([]byte{0x11}, 256)
	p2 := bytes.Repeat([]byte{0x22}, 256)
	f2 := chainFrame(t, 2, 1, 2, 512, p2)
	n.DeliverUpdate(2, f2) // parks: seq 1 not applied yet

	// The caller owns the frame again: mutate it, recycle it, and churn
	// the pool so a reused buffer would be overwritten.
	for i := range f2 {
		f2[i] = 0xFF
	}
	size := len(f2)
	bufpool.Put(f2)
	for k := 0; k < 16; k++ {
		b := bufpool.Get(size)
		b = append(b, bytes.Repeat([]byte{0xEE}, size)...)
		bufpool.Put(b)
	}

	f1 := chainFrame(t, 2, 2, 1, 0, p1)
	n.DeliverUpdate(2, f1)
	bufpool.Put(f1)

	if err := n.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := reg.Bytes()[0:256]; !bytes.Equal(got, p1) {
		t.Fatalf("seq-1 bytes corrupted: got %02x...", got[0])
	}
	if got := reg.Bytes()[512:768]; !bytes.Equal(got, p2) {
		t.Fatalf("parked record's bytes corrupted: got %02x...", got[0])
	}
}

func TestReceiveBufferIsolationParallel(t *testing.T) { testReceiveBufferIsolation(t, false) }
func TestReceiveBufferIsolationSerial(t *testing.T)   { testReceiveBufferIsolation(t, true) }

// TestArenaRecycledAfterInstall checks that the parallel path actually
// returns record arenas to the pool once records reach a terminal
// state (the zero-copy claim is recycling, not just copying less).
func TestArenaRecycledAfterInstall(t *testing.T) {
	n, reg := newPoolReceiver(t, false)
	_, _, putsBefore := bufpool.Stats()

	const records = 50
	payload := bytes.Repeat([]byte{0x5a}, 128)
	for seq := uint64(1); seq <= records; seq++ {
		f := chainFrame(t, 2, seq, seq, (seq%16)*128, payload)
		n.DeliverUpdate(2, f)
		bufpool.Put(f)
	}
	if err := n.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := reg.Bytes()[128:256]; !bytes.Equal(got, payload) {
		t.Fatal("installed bytes wrong")
	}
	_, _, putsAfter := bufpool.Stats()
	// One arena Put per record, plus our frame Puts; other traffic only
	// adds. A pipeline that leaks arenas shows barely `records` puts
	// (the frames alone), not 2×.
	if delta := putsAfter - putsBefore; delta < 2*records {
		t.Fatalf("expected >= %d pool puts (arena recycling), got %d", 2*records, delta)
	}
}
