package coherency

import (
	"testing"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/netproto"
	"lbc/internal/rvm"
)

// gatedTransport blocks batch-frame sends until the gate opens, so a
// test can hold the send window full for as long as it likes. Every
// other message type (lock protocol, region announcements) passes
// through untouched.
type gatedTransport struct {
	netproto.Transport
	gate chan struct{}
}

func (g *gatedTransport) Send(to netproto.NodeID, typ uint8, payload []byte) error {
	if typ == MsgUpdateBatch || typ == MsgUpdateBatchC {
		<-g.gate
	}
	return g.Transport.Send(to, typ, payload)
}

// TestSendWindowStallBackpressure pins the flow-control story: with a
// one-byte window and a wedged peer, the second commit's enqueue must
// stall (counted, with its wait time observed into the stall
// histogram) instead of buffering without bound, and must release the
// moment the in-flight frame completes. No pull backstop is
// configured, so nothing may be dropped: the receiver ends up with
// both committed values.
func TestSendWindowStallBackpressure(t *testing.T) {
	hub := netproto.NewHub()
	ids := []netproto.NodeID{1, 2}
	gate := make(chan struct{})
	nodes := make([]*Node, 2)
	for i, id := range ids {
		r, err := rvm.Open(rvm.Options{Node: uint32(id)})
		if err != nil {
			t.Fatal(err)
		}
		var tr netproto.Transport = hub.Endpoint(id)
		if i == 0 {
			tr = &gatedTransport{Transport: tr, gate: gate}
		}
		n, err := New(Options{
			RVM: r, Transport: tr, Nodes: ids,
			BatchUpdates: true,
			SendWindow:   1, // any payload beyond an in-flight one stalls
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		t.Cleanup(func() { n.Close() })
	}
	for _, n := range nodes {
		if _, err := n.MapRegion(1, 256); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		if err := n.WaitPeers(1, 1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	st := nodes[0].Stats()

	// Commit 1: enters the empty window (oversized payloads must not
	// deadlock), and its frame wedges in the gated transport.
	commitWrite(t, nodes[0], 1, 0, []byte("first!!!"))

	// Commit 2: the window is full, so the broadcast's enqueue blocks
	// the committing goroutine — that is the backpressure under test.
	done := make(chan struct{})
	go func() {
		defer close(done)
		commitWrite(t, nodes[0], 1, 8, []byte("second!!"))
	}()
	waitFor(t, func() bool { return st.Counter(metrics.CtrSendStalls) >= 1 })
	select {
	case <-done:
		t.Fatal("stalled commit returned while the window was still full")
	case <-time.After(50 * time.Millisecond):
	}

	// Open the gate: the in-flight frame completes, the window drains,
	// and the stalled enqueue must release promptly.
	close(gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled commit never released after the window drained")
	}

	// Both values reach the peer — a stall is a delay, never a loss.
	waitFor(t, func() bool { return nodes[1].Locks().Applied(1) == 2 })
	got := region(t, nodes[1]).Bytes()
	if string(got[:8]) != "first!!!" || string(got[8:16]) != "second!!" {
		t.Fatalf("receiver image %q", got[:16])
	}

	if c := st.Counter(metrics.CtrSendStalls); c < 1 {
		t.Errorf("send_window_stalls = %d, want >= 1", c)
	}
	if c := st.Counter(metrics.CtrSlowPeerDrops); c != 0 {
		t.Errorf("slow_peer_drops = %d without a pull backstop; records were dropped", c)
	}
	h, ok := st.Hists()[metrics.HistSendStallNS]
	if !ok || h.Count < 1 {
		t.Fatalf("send_stall_ns histogram empty: %+v", h)
	}
	if q := h.Quantile(0.5); q <= 0 {
		t.Errorf("send_stall_ns p50 = %d, want > 0", q)
	}
	if q := h.Quantile(0.99); q < h.Quantile(0.5) {
		t.Errorf("quantiles not monotone: p99 %d < p50 %d", q, h.Quantile(0.5))
	}
}
