package coherency

import (
	"testing"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/netproto"
	"lbc/internal/rvm"
	"lbc/internal/wal"
)

// checkpointCluster builds nodes whose logs and data stores are
// observable for trim assertions.
func checkpointCluster(t *testing.T, k int) ([]*Node, []*wal.MemDevice, []*rvm.MemStore) {
	t.Helper()
	hub := netproto.NewHub()
	ids := make([]netproto.NodeID, k)
	for i := range ids {
		ids[i] = netproto.NodeID(i + 1)
	}
	nodes := make([]*Node, k)
	logs := make([]*wal.MemDevice, k)
	stores := make([]*rvm.MemStore, k)
	for i := range ids {
		logs[i] = wal.NewMemDevice()
		stores[i] = rvm.NewMemStore()
		r, err := rvm.Open(rvm.Options{Node: uint32(ids[i]), Log: logs[i], Data: stores[i]})
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(Options{RVM: r, Transport: hub.Endpoint(ids[i]), Nodes: ids})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		t.Cleanup(func() { n.Close() })
	}
	for _, n := range nodes {
		if _, err := n.MapRegion(1, 1024); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		if err := n.WaitPeers(1, k-1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return nodes, logs, stores
}

func TestCoordinatedCheckpointTrimsAllLogs(t *testing.T) {
	nodes, logs, stores := checkpointCluster(t, 3)

	// Every node commits some writes under the shared lock.
	for i, n := range nodes {
		commitWrite(t, n, 1, uint64(i*16), []byte("checkpointed"))
	}
	for _, l := range logs {
		if sz, _ := l.Size(); sz == 0 {
			t.Fatal("expected non-empty logs before checkpoint")
		}
	}

	// Node 1 coordinates an online trim.
	if err := nodes[0].CoordinatedCheckpoint([]uint32{1}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	for i, l := range logs {
		if sz, _ := l.Size(); sz != 0 {
			t.Fatalf("node %d log not trimmed (%d bytes)", i+1, sz)
		}
	}
	// The coordinator's store holds the checkpointed image with every
	// node's committed updates.
	img, err := stores[0].LoadRegion(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if string(img[i*16:i*16+12]) != "checkpointed" {
			t.Fatalf("image missing node %d's update", i+1)
		}
	}
	// Peers counted a trim.
	if nodes[1].Stats().Counter("log_trims") != 1 || nodes[2].Stats().Counter("log_trims") != 1 {
		t.Fatal("peer trims not counted")
	}
}

func TestCheckpointThenRecoveryIsConsistent(t *testing.T) {
	nodes, logs, stores := checkpointCluster(t, 2)
	commitWrite(t, nodes[0], 1, 0, []byte("before-ckpt"))
	if err := nodes[0].CoordinatedCheckpoint([]uint32{1}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint commits land in the (fresh) logs.
	commitWrite(t, nodes[1], 1, 100, []byte("after-ckpt"))

	// Recovery = checkpointed image + replay of the fresh log.
	res, err := rvm.Recover(logs[1], stores[0], rvm.RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1 {
		t.Fatalf("replayed %d records, want 1 (post-checkpoint only)", res.Records)
	}
	img, _ := stores[0].LoadRegion(1)
	if string(img[0:11]) != "before-ckpt" || string(img[100:110]) != "after-ckpt" {
		t.Fatalf("recovered image wrong: %q / %q", img[0:11], img[100:110])
	}
}

func TestCheckpointSingleNode(t *testing.T) {
	hub := netproto.NewHub()
	r, _ := rvm.Open(rvm.Options{Node: 1})
	n, err := New(Options{RVM: r, Transport: hub.Endpoint(1), Nodes: []netproto.NodeID{1}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.MapRegion(1, 256); err != nil {
		t.Fatal(err)
	}
	commitWrite(t, n, 1, 0, []byte("solo"))
	if err := n.CoordinatedCheckpoint([]uint32{1}, time.Second); err != nil {
		t.Fatal(err)
	}
	if sz, _ := n.RVM().Log().Size(); sz != 0 {
		t.Fatal("solo checkpoint did not trim")
	}
}

func TestCheckpointDoesNotDisturbCoherency(t *testing.T) {
	nodes, _, _ := checkpointCluster(t, 2)
	commitWrite(t, nodes[0], 1, 0, []byte("one"))
	if err := nodes[0].CoordinatedCheckpoint([]uint32{1}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	commitWrite(t, nodes[1], 1, 0, []byte("two"))
	got := readUnder(t, nodes[0], 1, 0, 3)
	if string(got) != "two" {
		t.Fatalf("post-checkpoint coherency broken: %q", got)
	}
	_ = metrics.CtrTxCommitted
}
