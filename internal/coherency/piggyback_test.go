package coherency

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/netproto"
	"lbc/internal/rvm"
)

func piggybackCluster(t *testing.T, k int, size int) []*Node {
	t.Helper()
	hub := netproto.NewHub()
	ids := make([]netproto.NodeID, k)
	for i := range ids {
		ids[i] = netproto.NodeID(i + 1)
	}
	nodes := make([]*Node, k)
	for i := range ids {
		r, err := rvm.Open(rvm.Options{Node: uint32(ids[i])})
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(Options{
			RVM: r, Transport: hub.Endpoint(ids[i]), Nodes: ids,
			Propagation: Piggyback,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		t.Cleanup(func() { n.Close() })
	}
	for _, n := range nodes {
		if _, err := n.MapRegion(1, size); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		if err := n.WaitPeers(1, k-1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return nodes
}

func TestPiggybackBasic(t *testing.T) {
	nodes := piggybackCluster(t, 2, 1024)
	commitWrite(t, nodes[0], 1, 100, []byte("on the token"))
	// No broadcast traffic in piggyback mode.
	if got := nodes[0].Stats().Counter(metrics.CtrMsgsSent); got != 0 {
		t.Fatalf("piggyback writer broadcast %d messages", got)
	}
	got := readUnder(t, nodes[1], 1, 100, 12)
	if string(got) != "on the token" {
		t.Fatalf("reader sees %q", got)
	}
	if nodes[0].Stats().Counter("token_piggyback_recs") == 0 {
		t.Fatal("no records piggybacked on the token")
	}
}

func TestPiggybackChainThroughThreeNodes(t *testing.T) {
	nodes := piggybackCluster(t, 3, 1024)
	commitWrite(t, nodes[0], 1, 0, []byte("v1"))
	commitWrite(t, nodes[1], 1, 0, []byte("v2"))
	// Node 3 never saw any broadcast; the token must deliver both
	// updates (in order) when it finally acquires.
	got := readUnder(t, nodes[2], 1, 0, 2)
	if string(got) != "v2" {
		t.Fatalf("node 3 sees %q", got)
	}
}

func TestPiggybackManyRounds(t *testing.T) {
	nodes := piggybackCluster(t, 3, 4096)
	for i := 0; i < 15; i++ {
		w := nodes[i%3]
		commitWrite(t, w, 1, uint64((i%8)*64), []byte(fmt.Sprintf("round-%02d", i)))
	}
	// Quiesce everyone through the lock, then compare images.
	for _, n := range nodes {
		tx := n.Begin(rvm.NoRestore)
		if err := tx.Acquire(1); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(rvm.NoFlush); err != nil {
			t.Fatal(err)
		}
	}
	base := nodes[0].RVM().Region(1).Bytes()
	for i := 1; i < 3; i++ {
		if !bytes.Equal(base, nodes[i].RVM().Region(1).Bytes()) {
			t.Fatalf("node %d diverged", i+1)
		}
	}
}

func TestPiggybackRetentionDiscard(t *testing.T) {
	nodes := piggybackCluster(t, 3, 1024)
	const lock = 1
	// Writer commits 5 updates; all retained (peers haven't seen them).
	for i := 0; i < 5; i++ {
		commitWrite(t, nodes[0], lock, uint64(i*8), []byte("x"))
	}
	if got := nodes[0].RetainedRecords(lock); got != 5 {
		t.Fatalf("writer retains %d records, want 5", got)
	}
	// Node 2 acquires: it now has the records, but node 3 does not, so
	// nothing can be discarded yet ("the most out-of-date peer").
	readUnder(t, nodes[1], lock, 0, 8)
	if got := nodes[1].RetainedRecords(lock); got != 5 {
		t.Fatalf("node 2 retains %d records, want 5 (node 3 still needs them)", got)
	}
	// Node 3 acquires: every cluster member has the records; the next
	// pass may discard. Cycle the token once more to flush.
	readUnder(t, nodes[2], lock, 0, 8)
	readUnder(t, nodes[0], lock, 0, 8)
	if got := nodes[0].RetainedRecords(lock); got != 0 {
		t.Fatalf("after full token cycle, node 1 still retains %d records", got)
	}
}

func TestPiggybackWriterRotation(t *testing.T) {
	// Each node in turn writes and the value survives the rotation —
	// records from multiple writers ride the same token.
	nodes := piggybackCluster(t, 3, 1024)
	for round := 0; round < 3; round++ {
		for i, n := range nodes {
			tx := n.Begin(rvm.NoRestore)
			if err := tx.Acquire(1); err != nil {
				t.Fatal(err)
			}
			// Verify the previous writer's value is visible.
			if round > 0 || i > 0 {
				prev := (round*3 + i - 1) % 100
				want := fmt.Sprintf("w%02d", prev)
				got := string(n.RVM().Region(1).Bytes()[:3])
				if got != want {
					t.Fatalf("round %d node %d: sees %q, want %q", round, i+1, got, want)
				}
			}
			cur := fmt.Sprintf("w%02d", (round*3+i)%100)
			if err := tx.Write(n.RVM().Region(1), 0, []byte(cur)); err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Commit(rvm.NoFlush); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestPiggybackRandomConvergence is the convergence property under
// token-piggyback propagation: random locked writes from every node,
// then identical images after quiescing through the locks.
func TestPiggybackRandomConvergence(t *testing.T) {
	const (
		kLocks = 3
		segLen = 256
	)
	for trial := 0; trial < 3; trial++ {
		nodes := piggybackCluster(t, 3, kLocks*segLen)
		var wg sync.WaitGroup
		for i := range nodes {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(int64(trial*10 + i)))
				for k := 0; k < 20; k++ {
					lock := uint32(r.Intn(kLocks))
					tx := nodes[i].Begin(rvm.NoRestore)
					if err := tx.Acquire(lock); err != nil {
						t.Error(err)
						return
					}
					off := uint64(lock)*segLen + uint64(r.Intn(segLen-8))
					data := make([]byte, r.Intn(7)+1)
					r.Read(data)
					tx.Write(nodes[i].RVM().Region(1), off, data)
					if _, err := tx.Commit(rvm.NoFlush); err != nil {
						t.Error(err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		for _, n := range nodes {
			for l := uint32(0); l < kLocks; l++ {
				tx := n.Begin(rvm.NoRestore)
				if err := tx.Acquire(l); err != nil {
					t.Fatal(err)
				}
				tx.Commit(rvm.NoFlush)
			}
		}
		base := nodes[0].RVM().Region(1).Bytes()
		for i := 1; i < len(nodes); i++ {
			if !bytes.Equal(base, nodes[i].RVM().Region(1).Bytes()) {
				t.Fatalf("trial %d: node %d diverged under piggyback", trial, i+1)
			}
		}
	}
}
