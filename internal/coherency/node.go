// Package coherency implements log-based coherency (the paper's
// contribution): it ties together recoverable virtual memory
// (internal/rvm), distributed segment locks (internal/lockmgr), and the
// transport (internal/netproto) so that the redo log records generated
// for recoverability double as the update stream that keeps peer
// caches coherent.
//
// At commit, the new-value records that were just written to the
// durable log are re-encoded with compressed headers (§3.2) and sent to
// every peer that has the modified regions mapped (the prototype's
// eager policy). Receiver goroutines apply the records directly into
// the local memory image, ordered by the per-lock sequence numbers
// carried in embedded lock records (§3.4). A lock acquire completes
// only after all updates through the token's last-writer sequence have
// been applied, so applications never observe stale data under a lock.
//
// Alternative policies from §2 are implemented behind options: lazy
// propagation (pending records pulled from the storage server's log
// cache at acquire), token piggyback (records passed with the lock by
// the last writer, with retention/discard), and the versioned read
// model (received updates buffered until an explicit Accept). Online
// coordinated log trimming (§3.5) and client restart catch-up are
// provided as operations on the Node.
package coherency

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lbc/internal/lockmgr"
	"lbc/internal/membership"
	"lbc/internal/metrics"
	"lbc/internal/netproto"
	"lbc/internal/obs"
	"lbc/internal/parapply"
	"lbc/internal/rvm"
	"lbc/internal/wal"
)

// Message type codes on the transport (0x20-0x2F reserved here).
const (
	MsgUpdate       uint8 = 0x20 // compressed coherency record
	MsgUpdateStd    uint8 = 0x21 // standard-encoded record (header ablation)
	MsgMapRegion    uint8 = 0x22 // {region u32}: sender has region mapped
	MsgUpdateBatch  uint8 = 0x25 // batch frame of format-tagged records (0x23/0x24 are checkpoint)
	MsgUpdateBatchC uint8 = 0x2D // DEFLATE-compressed batch frame (0x26-0x2C are token/checkpoint/interest)
)

// Propagation selects when committed log tails travel to peers (§2.2).
type Propagation int

const (
	// Eager broadcasts the log tail to interested peers inside commit
	// (the prototype's policy: simple, failure-tolerant, low read
	// latency).
	Eager Propagation = iota
	// Lazy defers propagation: an acquirer pulls pending records from
	// the storage server's per-node logs when the token arrives.
	Lazy
	// Piggyback attaches pending records to lock-token passes (the
	// last writer hands them to the next holder) with the retention /
	// discard protocol of §2.2. No server round trips, no broadcast.
	Piggyback
)

func (p Propagation) String() string {
	switch p {
	case Lazy:
		return "lazy"
	case Piggyback:
		return "piggyback"
	default:
		return "eager"
	}
}

// WireFormat selects the coherency record encoding (header-compression
// ablation; the paper's system always uses Compressed).
type WireFormat int

const (
	// Compressed uses the 4-24 byte range headers of §3.2.
	Compressed WireFormat = iota
	// Standard ships the 104-byte durable-log headers unchanged.
	Standard
)

// Segment declares the scope of one distributed lock: the byte range
// of a region it protects (§2.1: "the store is partitioned into
// segments, each under the control of a separate lock").
type Segment struct {
	LockID uint32
	Region rvm.RegionID
	Off    uint64
	Len    uint64
}

// contains reports whether the byte range [off, off+n) intersects the
// segment.
func (s Segment) overlaps(region rvm.RegionID, off, end uint64) bool {
	return region == s.Region && off < s.Off+s.Len && end > s.Off
}

// PeerLogReader provides read access to peers' logs on the storage
// server, for lazy propagation. store.Client.LogDevice satisfies it
// via NewStoreLogReader.
type PeerLogReader func(node uint32) wal.Device

// Options configures a coherency Node.
type Options struct {
	// RVM is this node's recoverable memory instance. Required.
	RVM *rvm.RVM
	// Transport connects this node to its peers. Required.
	Transport netproto.Transport
	// Nodes is the ordered, cluster-wide node list (identical
	// everywhere); it determines lock managers.
	Nodes []netproto.NodeID
	// Stats defaults to RVM's accumulator.
	Stats *metrics.Stats
	// Propagation policy (default Eager).
	Propagation Propagation
	// Wire format (default Compressed).
	Wire WireFormat
	// PageSize is used for the pages-updated statistic (default 8192,
	// the paper's Alpha page size).
	PageSize int
	// PeerLogs is required in Lazy mode.
	PeerLogs PeerLogReader
	// Versioned buffers received updates until Accept (the read/write
	// model of §2.1-2.2).
	Versioned bool
	// CheckLocks makes SetRange fail if the written range lies in a
	// registered segment whose lock the transaction does not hold.
	CheckLocks bool
	// PullOnStall makes eager-mode acquires fall back to pulling
	// committed records from the storage server's per-node logs when
	// the interlock stalls (a broadcast was lost to a fault). Requires
	// PeerLogs. Without it a lost eager update blocks the next acquire
	// of its lock forever, which is fine on a reliable transport (the
	// prototype's assumption) but not under injected faults.
	PullOnStall bool
	// AcquireTimeout bounds Tx.Acquire when positive; acquires that
	// cannot complete (token holder unreachable) fail with
	// lockmgr.ErrAcquireTimeout instead of blocking forever.
	AcquireTimeout time.Duration
	// InterestRouting ships eager updates only to peers that have
	// registered interest in a record's writing locks (seeded by lock
	// acquisition, withdrawn by DropInterest) instead of to every peer
	// with the region mapped. Requires PeerLogs and implies
	// PullOnStall: a peer acquiring a lock it was not interested in
	// pulls the records it was never sent from the server logs, so
	// routing is purely a delivery optimization (see interest.go).
	InterestRouting bool
	// BatchUpdates routes eager broadcasts through per-peer sender
	// goroutines that ship one batch frame per peer per drain instead of
	// one message per transaction — the network half of the group-commit
	// pipeline. Receiver-side ordering is unchanged: batched records go
	// through the same per-lock sequence interlock.
	BatchUpdates bool
	// NoCompress disables DEFLATE payload compression of batch frames
	// (MsgUpdateBatchC). With it set every batch ships as a plain
	// MsgUpdateBatch, as before PR 9 — the ablation baseline for the
	// wire bench. Compression is on by default under BatchUpdates;
	// small or incompressible batches fall back to the plain frame
	// automatically.
	NoCompress bool
	// SendWindow bounds, per peer, the bytes queued plus in flight in
	// the batch sender (default 1 MiB). A full window blocks the
	// committing transaction's enqueue — backpressure mirroring
	// wal.GroupWriter's bounded queue — instead of buffering without
	// bound toward a slow peer.
	SendWindow int
	// SendStallTimeout is how long an enqueue blocks on one peer's full
	// window before the slow-peer policy downgrades that peer: its
	// queued backlog is dropped and it recovers the records through the
	// pull backstop (default 500ms). Only effective when the pull path
	// is configured (PullOnStall/InterestRouting with PeerLogs);
	// without it the enqueue keeps blocking, since a drop would lose
	// the records for good.
	SendStallTimeout time.Duration
	// ApplyWorkers sets the size of the parallel apply worker pool
	// (default min(GOMAXPROCS, 8)). Records on disjoint per-lock chains
	// install concurrently; each chain keeps its §3.4 order. 1 still
	// uses the dependency scheduler with a single worker (O(1) wakeups
	// instead of the serial applier's parked-list rescans).
	ApplyWorkers int
	// SerialApply restores the pre-pipeline receive path: a single
	// applier goroutine with a rescanned parked list and per-record
	// copies instead of pooled arenas. Kept as the ablation baseline
	// for benchmarks and the equivalence tests.
	SerialApply bool
	// Membership, when set, wires live failure handling into the node:
	// the lock manager routes around evicted peers, eviction triggers
	// token reclaim (see membership.go), and rejoin announcements
	// restore the peer to the broadcast sets. The caller owns the
	// monitor's lifecycle (Start/Close); Transport should be a
	// membership.Fence over the same monitor so update frames are
	// epoch-tagged.
	Membership *membership.Monitor
}

// Node is one participant in the coherent distributed store.
type Node struct {
	rvm      *rvm.RVM
	tr       netproto.Transport
	locks    *lockmgr.Manager
	stats    *metrics.Stats
	trace    *obs.Tracer
	prop     Propagation
	wire     WireFormat
	pageSize int
	peerLogs PeerLogReader
	checkLk  bool

	pullStall  bool
	acqTimeout time.Duration
	batch      bool
	noCompress bool
	sendWindow int
	stallTmo   time.Duration
	serial     bool
	interestOn bool

	// Parallel apply pipeline (nil when SerialApply). The engine owns
	// dependency scheduling; the node supplies install/teardown.
	eng *parapply.Engine

	// Pooled arenas backing records adopted from transport buffers, by
	// record identity. Returned to bufpool when the record reaches a
	// terminal state (recordDone).
	arenaMu sync.Mutex
	arenas  map[*wal.TxRecord][]byte

	// Records admitted to the apply pipeline that have not reached a
	// terminal state (installed or dropped). Includes parked and
	// versioned-buffered records; the /debug/lbc queue-depth gauge and
	// Quiesce read it.
	outstanding atomic.Int64

	// Per-peer bounded send windows (BatchUpdates). psMu guards the map
	// and the closed flag only; each peerSender has its own lock. Both
	// are leaf-level: never taken while holding n.mu.
	psMu        sync.Mutex
	psClosed    bool
	peerSenders map[netproto.NodeID]*peerSender

	parked atomic.Int64 // applier gauge: records held by the interlock

	// Live membership (nil without Options.Membership). tokInfo /
	// tokWake collect MsgTokenInfo replies during token reclaim.
	member  *membership.Monitor
	tokMu   sync.Mutex
	tokInfo map[uint32]map[netproto.NodeID]tokenInfo
	tokWake chan struct{}

	mu           sync.Mutex
	segments     map[uint32]Segment // by lock id
	regionPeers  map[rvm.RegionID]map[netproto.NodeID]bool
	interest     map[uint32]map[netproto.NodeID]bool // lock -> interested peers
	myInterest   map[uint32]bool                     // locks this node registered
	peersChanged chan struct{}                       // closed+replaced when regionPeers grows
	readPos      map[uint32]int64                    // lazy: per-peer log read offset
	versioned    bool
	retention    map[uint32]*lockHistory // piggyback: per-lock record history
	clusterNodes []netproto.NodeID

	ckpt *ckptState

	applyCh  chan *wal.TxRecord
	acceptCh chan chan int
	done     chan struct{}
	wake     chan struct{}
	wg       sync.WaitGroup
	closeOne sync.Once
}

// ErrLockNotHeld is returned by SetRange with CheckLocks enabled when
// the range's segment lock is not held by the transaction.
var ErrLockNotHeld = errors.New("coherency: segment lock not held")

// New creates a coherency node. The node starts its applier goroutine
// immediately; call Close to stop it.
func New(opts Options) (*Node, error) {
	if opts.RVM == nil || opts.Transport == nil {
		return nil, errors.New("coherency: RVM and Transport are required")
	}
	if len(opts.Nodes) == 0 {
		return nil, errors.New("coherency: node list is required")
	}
	if opts.Propagation == Lazy && opts.PeerLogs == nil {
		return nil, errors.New("coherency: lazy propagation requires PeerLogs")
	}
	if opts.PullOnStall && opts.PeerLogs == nil {
		return nil, errors.New("coherency: PullOnStall requires PeerLogs")
	}
	if opts.InterestRouting {
		if opts.PeerLogs == nil {
			return nil, errors.New("coherency: InterestRouting requires PeerLogs")
		}
		// The pull path is interest routing's correctness backstop: a
		// peer that was never sent a record fetches it at acquire.
		opts.PullOnStall = true
	}
	if opts.Stats == nil {
		opts.Stats = opts.RVM.Stats()
	}
	if opts.PageSize == 0 {
		opts.PageSize = 8192
	}
	if opts.SendWindow <= 0 {
		opts.SendWindow = 1 << 20
	}
	if opts.SendStallTimeout <= 0 {
		opts.SendStallTimeout = 500 * time.Millisecond
	}
	n := &Node{
		rvm:          opts.RVM,
		tr:           opts.Transport,
		locks:        lockmgr.New(opts.Transport, opts.Nodes, opts.Stats),
		stats:        opts.Stats,
		trace:        opts.RVM.Tracer(),
		prop:         opts.Propagation,
		wire:         opts.Wire,
		pageSize:     opts.PageSize,
		peerLogs:     opts.PeerLogs,
		checkLk:      opts.CheckLocks,
		pullStall:    opts.PullOnStall,
		acqTimeout:   opts.AcquireTimeout,
		batch:        opts.BatchUpdates,
		noCompress:   opts.NoCompress,
		sendWindow:   opts.SendWindow,
		stallTmo:     opts.SendStallTimeout,
		serial:       opts.SerialApply,
		interestOn:   opts.InterestRouting,
		member:       opts.Membership,
		tokInfo:      map[uint32]map[netproto.NodeID]tokenInfo{},
		tokWake:      make(chan struct{}),
		arenas:       map[*wal.TxRecord][]byte{},
		peerSenders:  map[netproto.NodeID]*peerSender{},
		segments:     map[uint32]Segment{},
		regionPeers:  map[rvm.RegionID]map[netproto.NodeID]bool{},
		interest:     map[uint32]map[netproto.NodeID]bool{},
		myInterest:   map[uint32]bool{},
		peersChanged: make(chan struct{}),
		readPos:      map[uint32]int64{},
		versioned:    opts.Versioned,
		retention:    map[uint32]*lockHistory{},
		clusterNodes: append([]netproto.NodeID(nil), opts.Nodes...),
		applyCh:      make(chan *wal.TxRecord, 256),
		acceptCh:     make(chan chan int),
		done:         make(chan struct{}),
		wake:         make(chan struct{}, 1),
	}
	n.locks.SetTracer(n.trace)
	n.tr.Handle(MsgUpdate, n.onUpdate)
	n.tr.Handle(MsgUpdateStd, n.onUpdateStd)
	n.tr.Handle(MsgMapRegion, n.onMapRegion)
	n.tr.Handle(MsgUpdateBatch, n.onUpdateBatch)
	n.tr.Handle(MsgUpdateBatchC, n.onUpdateBatchC)
	n.tr.Handle(MsgInterest, n.onInterest)
	if opts.Propagation == Piggyback {
		n.locks.SetTokenData(n)
	}
	if n.member != nil {
		n.initMembership()
	}
	n.initCheckpoint()
	n.wg.Add(1)
	if n.serial {
		go n.applier()
	} else {
		n.eng = parapply.New(parapply.Config{
			Workers: opts.ApplyWorkers,
			Applied: n.locks.Applied,
			Install: n.installRecord,
			Done:    func(rec *wal.TxRecord, err error) { n.recordDone(rec) },
			Drop: func(rec *wal.TxRecord) {
				n.stats.Add(metrics.CtrRecordsStale, 1)
				n.recordDone(rec)
			},
		})
		go n.scheduler()
	}
	// With BatchUpdates the per-peer senders start lazily on first
	// enqueue toward each peer (see senderFor in batcher.go).
	return n, nil
}

// RVM returns the underlying recoverable memory instance.
func (n *Node) RVM() *rvm.RVM { return n.rvm }

// Locks returns the node's lock manager (exposed for tests and tools).
func (n *Node) Locks() *lockmgr.Manager { return n.locks }

// Stats returns the node's metrics accumulator.
func (n *Node) Stats() *metrics.Stats { return n.stats }

// Self returns this node's id.
func (n *Node) Self() netproto.NodeID { return n.tr.Self() }

// AddSegment registers a lock's scope. All nodes must register the
// same segments. Registration enables per-segment Wrote computation
// (and lock checking when CheckLocks is set).
func (n *Node) AddSegment(seg Segment) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.segments[seg.LockID] = seg
}

// MapRegion maps the region into local memory (loading the permanent
// image from the data store) and announces the mapping to all peers so
// their eager broadcasts include this node.
func (n *Node) MapRegion(id rvm.RegionID, size int) (*rvm.Region, error) {
	reg, err := n.rvm.Map(id, size)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.regionPeers[id] == nil {
		n.regionPeers[id] = map[netproto.NodeID]bool{}
	}
	n.mu.Unlock()
	var b [4]byte
	putU32(b[:], uint32(id))
	for _, p := range n.tr.Peers() {
		// Best effort: peers that are not up yet will announce to us
		// when they map.
		_ = n.tr.Send(p, MsgMapRegion, b[:])
	}
	return reg, nil
}

// WaitPeers blocks until at least k peers have announced mapping the
// region (cluster startup barrier), or the timeout elapses. While
// waiting it periodically re-announces this node's own mapping, so
// peers that started later (and missed the original best-effort
// announcement) still learn about us. Announcement arrivals wake the
// wait immediately (no polling): onMapRegion replaces a notification
// channel that this select watches.
func (n *Node) WaitPeers(id rvm.RegionID, k int, timeout time.Duration) error {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	announce := time.NewTicker(50 * time.Millisecond)
	defer announce.Stop()
	reannounce := func() {
		var b [4]byte
		putU32(b[:], uint32(id))
		for _, p := range n.tr.Peers() {
			_ = n.tr.Send(p, MsgMapRegion, b[:])
		}
	}
	for {
		n.mu.Lock()
		have := len(n.regionPeers[id])
		changed := n.peersChanged
		n.mu.Unlock()
		if have >= k {
			return nil
		}
		select {
		case <-changed:
		case <-announce.C:
			reannounce()
		case <-deadline.C:
			return fmt.Errorf("coherency: only %d/%d peers mapped region %d", have, k, id)
		case <-n.done:
			return errors.New("coherency: node closed while waiting for peers")
		}
	}
}

// onMapRegion records that a peer has the region mapped.
func (n *Node) onMapRegion(from netproto.NodeID, payload []byte) {
	if len(payload) != 4 {
		return
	}
	n.NotePeerRegion(from, rvm.RegionID(getU32(payload)))
}

// NotePeerRegion records that a peer has the region mapped, waking any
// WaitPeers. Exposed so a restart supervisor can seed the mapping
// table of a rejoining node without a full announcement round.
func (n *Node) NotePeerRegion(peer netproto.NodeID, id rvm.RegionID) {
	n.mu.Lock()
	if n.regionPeers[id] == nil {
		n.regionPeers[id] = map[netproto.NodeID]bool{}
	}
	fresh := !n.regionPeers[id][peer]
	if fresh {
		n.regionPeers[id][peer] = true
		close(n.peersChanged)
		n.peersChanged = make(chan struct{})
	}
	n.mu.Unlock()
	if fresh {
		// A peer we have not seen map this region may have missed our
		// earlier interest deltas (it was down, or not yet wired).
		n.announceInterestTo(peer)
	}
}

// peersForRecord returns the peers that have any of the record's
// regions mapped (the eager broadcast recipient set). With interest
// routing the set is further narrowed to peers interested in at least
// one of the record's writing locks; records that carry no writing
// lock (the DSM baseline's raw page updates) keep the full region set,
// since no interest key exists to route them by.
func (n *Node) peersForRecord(rec *wal.TxRecord) []netproto.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	set := map[netproto.NodeID]bool{}
	for _, r := range rec.Ranges {
		for p := range n.regionPeers[rvm.RegionID(r.Region)] {
			set[p] = true
		}
	}
	if n.interestOn && len(set) > 0 {
		routed := false
		keep := map[netproto.NodeID]bool{}
		for _, l := range rec.Locks {
			if !l.Wrote {
				continue
			}
			routed = true
			for p := range n.interest[l.LockID] {
				keep[p] = true
			}
		}
		if routed {
			for p := range set {
				if !keep[p] {
					delete(set, p)
				}
			}
		}
	}
	out := make([]netproto.NodeID, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	return out
}

// Close stops the apply pipeline and the lock manager.
func (n *Node) Close() error {
	n.closeOne.Do(func() {
		close(n.done)
		n.closeSenders()
		n.locks.Close()
	})
	n.wg.Wait()
	if n.eng != nil {
		// After the scheduler has exited: nothing submits anymore, so
		// this drains in-flight installs and discards parked records.
		n.eng.Close()
	}
	return nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
