package coherency

import (
	"encoding/binary"
	"sort"

	"lbc/internal/bufpool"
	"lbc/internal/metrics"
	"lbc/internal/netproto"
	"lbc/internal/wal"
)

// Piggyback propagation (§2.2, second alternative): committed log
// records are not broadcast at all; they travel with the lock token,
// sent by the last writer to the next holder. Each node retains the
// records for a segment until every cluster member has received them,
// implementing the paper's record-discard protocol ("pass information
// about how many log records to hold for each segment along with the
// lock token, as each node acquires the lock in turn ... Each node
// holds all log records up to and including the oldest records needed
// by the most out-of-date peer").
//
// The token blob carries (a) the seen-vector — for each node, the
// highest write sequence known to have reached it — and (b) every
// retained record the requester has not seen. Receivers merge the
// vector, retain the records for further forwarding, and hand them to
// the normal applier, whose chain ordering and duplicate suppression
// need no changes.

// lockHistory is one lock's retained update history.
type lockHistory struct {
	recs []retainedRec              // ascending writeSeq
	seen map[netproto.NodeID]uint64 // node -> highest writeSeq delivered
}

type retainedRec struct {
	writeSeq uint64
	rec      *wal.TxRecord
}

// stdEncodingBit tags a token-blob record length word whose record is
// in the standard encoding (fallback for records the compressed format
// cannot carry). Record lengths are far below 2 GiB, so the high bit of
// the u32 length is free.
const stdEncodingBit = uint32(1) << 31

func (n *Node) history(lockID uint32) *lockHistory {
	h, ok := n.retention[lockID]
	if !ok {
		h = &lockHistory{seen: map[netproto.NodeID]uint64{}}
		n.retention[lockID] = h
	}
	return h
}

// retainRecord stores a committed record in the history of every lock
// it wrote under, and notes that this node has it. Caller must not
// hold n.mu.
func (n *Node) retainRecord(rec *wal.TxRecord) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, l := range rec.Locks {
		if !l.Wrote {
			continue
		}
		h := n.history(l.LockID)
		h.insert(l.Seq, rec)
		if h.seen[n.tr.Self()] < l.Seq {
			h.seen[n.tr.Self()] = l.Seq
		}
	}
}

// insert adds (writeSeq, rec) keeping ascending order; duplicates are
// dropped.
func (h *lockHistory) insert(writeSeq uint64, rec *wal.TxRecord) {
	i := sort.Search(len(h.recs), func(i int) bool { return h.recs[i].writeSeq >= writeSeq })
	if i < len(h.recs) && h.recs[i].writeSeq == writeSeq {
		return
	}
	h.recs = append(h.recs, retainedRec{})
	copy(h.recs[i+1:], h.recs[i:])
	h.recs[i] = retainedRec{writeSeq: writeSeq, rec: rec}
}

// discard drops records every cluster member already has.
func (n *Node) discardLocked(h *lockHistory) {
	min := ^uint64(0)
	for _, id := range n.clusterNodes {
		if s := h.seen[id]; s < min {
			min = s
		}
	}
	i := sort.Search(len(h.recs), func(i int) bool { return h.recs[i].writeSeq > min })
	if i > 0 {
		h.recs = append(h.recs[:0], h.recs[i:]...)
	}
}

// RetainedRecords reports how many records are currently held for a
// lock (diagnostics and tests for the discard protocol).
func (n *Node) RetainedRecords(lockID uint32) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.retention[lockID]; ok {
		return len(h.recs)
	}
	return 0
}

// PrepareToken implements lockmgr.TokenData: on a token pass, attach
// the seen-vector and every retained record the requester lacks.
func (n *Node) PrepareToken(lockID uint32, to netproto.NodeID) []byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	h := n.history(lockID)
	target := h.seen[to]
	var pending []retainedRec
	for _, rr := range h.recs {
		if rr.writeSeq > target {
			pending = append(pending, rr)
		}
	}
	// Optimistically mark the requester as having everything we send;
	// token delivery is the same channel, so possession is guaranteed.
	if len(pending) > 0 {
		last := pending[len(pending)-1].writeSeq
		if h.seen[to] < last {
			h.seen[to] = last
		}
	}
	n.discardLocked(h)

	buf := make([]byte, 0, 64)
	var scratch [12]byte
	binary.LittleEndian.PutUint16(scratch[:2], uint16(len(h.seen)))
	buf = append(buf, scratch[:2]...)
	for id, seq := range h.seen {
		binary.LittleEndian.PutUint32(scratch[0:], uint32(id))
		binary.LittleEndian.PutUint64(scratch[4:], seq)
		buf = append(buf, scratch[:12]...)
	}
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(pending)))
	buf = append(buf, scratch[:4]...)
	for _, rr := range pending {
		// The per-record encode buffer is pooled: its bytes are appended
		// into the blob (which lockmgr owns) and recycled right away.
		enc, err := wal.AppendCompressed(bufpool.Get(wal.CompressedSize(rr.rec)), rr.rec)
		lenWord := uint32(len(enc))
		if err != nil {
			bufpool.Put(enc)
			enc = wal.AppendStandard(bufpool.Get(wal.StandardSize(rr.rec)), rr.rec)
			lenWord = uint32(len(enc)) | stdEncodingBit
			n.stats.Add(metrics.CtrCompressFallbacks, 1)
		}
		binary.LittleEndian.PutUint32(scratch[:4], lenWord)
		buf = append(buf, scratch[:4]...)
		buf = append(buf, enc...)
		bufpool.Put(enc)
	}
	n.stats.Add("token_piggyback_bytes", int64(len(buf)))
	n.stats.Add("token_piggyback_recs", int64(len(pending)))
	return buf
}

// TokenArrived implements lockmgr.TokenData: merge the seen-vector,
// retain the records for onward passes, and feed them to the applier.
func (n *Node) TokenArrived(lockID uint32, from netproto.NodeID, blob []byte) {
	if len(blob) < 6 {
		return
	}
	p := 0
	nSeen := int(binary.LittleEndian.Uint16(blob[p:]))
	p += 2
	type seenEntry struct {
		id  netproto.NodeID
		seq uint64
	}
	entries := make([]seenEntry, 0, nSeen)
	for i := 0; i < nSeen; i++ {
		if p+12 > len(blob) {
			return
		}
		entries = append(entries, seenEntry{
			id:  netproto.NodeID(binary.LittleEndian.Uint32(blob[p:])),
			seq: binary.LittleEndian.Uint64(blob[p+4:]),
		})
		p += 12
	}
	if p+4 > len(blob) {
		return
	}
	nRecs := int(binary.LittleEndian.Uint32(blob[p:]))
	p += 4
	recs := make([]*wal.TxRecord, 0, nRecs)
	for i := 0; i < nRecs; i++ {
		if p+4 > len(blob) {
			return
		}
		v := binary.LittleEndian.Uint32(blob[p:])
		std := v&stdEncodingBit != 0
		ln := int(v &^ stdEncodingBit)
		p += 4
		if p+ln > len(blob) {
			return
		}
		if std {
			rec, _, err := wal.DecodeStandard(blob[p : p+ln])
			if err != nil {
				n.decodeError(from)
				return
			}
			recs = append(recs, rec) // DecodeStandard already copies
		} else {
			rec, err := wal.DecodeCompressed(blob[p : p+ln])
			if err != nil {
				n.decodeError(from)
				return
			}
			// Deliberately an unpooled copy (not adoptRecord): these
			// records are retained in the lock history indefinitely as
			// well as enqueued, so a pooled arena would be recycled by
			// recordDone while the history still references it.
			recs = append(recs, copyRecord(rec))
		}
		p += ln
	}

	n.mu.Lock()
	h := n.history(lockID)
	for _, e := range entries {
		if h.seen[e.id] < e.seq {
			h.seen[e.id] = e.seq
		}
	}
	for _, rec := range recs {
		for _, l := range rec.Locks {
			if l.Wrote {
				hist := n.history(l.LockID)
				hist.insert(l.Seq, rec)
				if hist.seen[n.tr.Self()] < l.Seq {
					hist.seen[n.tr.Self()] = l.Seq
				}
			}
		}
	}
	n.discardLocked(h)
	n.mu.Unlock()

	for _, rec := range recs {
		n.enqueue(rec)
	}
}
