package coherency

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"lbc/internal/netproto"
	"lbc/internal/rvm"
	"lbc/internal/wal"
)

// Equivalence stress for the parallel apply engine: a randomized
// committed-record stream — per-lock chains, occasional multi-lock
// records, lock-free per-sender records, duplicated deliveries, and a
// shuffled delivery order — is played into a serial-applier node and a
// parallel-pipeline node. Both must converge to byte-identical images:
// the per-lock interlock (and per-sender FIFO for lock-free records) is
// the entire ordering contract, so any schedule the engine admits that
// the serial applier would not produces a divergent image here.

const (
	eqChains   = 4
	eqSpan     = 4096
	eqScratch  = 512 // per-sender lock-free scratch area
	eqSenders  = 2   // senders are nodes 2 and 3
	eqRegionSz = eqChains*eqSpan + eqSenders*eqScratch
)

// eqFrame is one scheduled delivery: a pre-encoded update frame and the
// peer it arrives from.
type eqFrame struct {
	from netproto.NodeID
	buf  []byte
}

// buildEquivalenceStream fabricates the stream and its (shuffled,
// partially duplicated) delivery schedule.
func buildEquivalenceStream(t *testing.T, rng *rand.Rand, records int) []eqFrame {
	t.Helper()
	var lockSeq [eqChains]uint64
	senderTx := map[uint32]uint64{}
	var frames []eqFrame

	for i := 0; i < records; i++ {
		sender := uint32(2 + rng.Intn(eqSenders))
		senderTx[sender]++
		rec := &wal.TxRecord{Node: sender, TxSeq: senderTx[sender]}

		if rng.Intn(8) == 0 {
			// Lock-free record: writes rotate through the sender's own
			// scratch slots, so per-sender FIFO fully determines the
			// final bytes.
			slot := senderTx[sender] % 8
			off := uint64(eqChains*eqSpan) + uint64(sender-2)*eqScratch + slot*64
			data := make([]byte, 64)
			rng.Read(data)
			rec.Ranges = []wal.RangeRec{{Region: 1, Off: off, Data: data}}
		} else {
			chains := []int{rng.Intn(eqChains)}
			if rng.Intn(5) == 0 {
				other := rng.Intn(eqChains)
				if other != chains[0] {
					chains = append(chains, other)
				}
			}
			sort.Ints(chains)
			for _, c := range chains {
				lockSeq[c]++
				rec.Locks = append(rec.Locks, wal.LockRec{
					LockID: uint32(c), Seq: lockSeq[c],
					PrevWriteSeq: lockSeq[c] - 1, Wrote: true,
				})
				size := 1 + rng.Intn(64)
				off := uint64(c*eqSpan + rng.Intn(eqSpan-size))
				data := make([]byte, size)
				rng.Read(data)
				rec.Ranges = append(rec.Ranges, wal.RangeRec{Region: 1, Off: off, Data: data})
			}
			// Ranges are already sorted by (Region, Off): segment bases
			// ascend with the (sorted) chain index.
		}
		enc, err := wal.AppendCompressed(make([]byte, 0, wal.CompressedSize(rec)), rec)
		if err != nil {
			t.Fatalf("encode record %d: %v", i, err)
		}
		frames = append(frames, eqFrame{from: netproto.NodeID(sender), buf: enc})
	}

	// Shuffled schedule with duplicated deliveries sprinkled in.
	sched := append([]eqFrame(nil), frames...)
	rng.Shuffle(len(sched), func(i, j int) { sched[i], sched[j] = sched[j], sched[i] })
	for i := 0; i < len(frames)/10; i++ {
		dup := sched[rng.Intn(len(sched))]
		at := rng.Intn(len(sched) + 1)
		sched = append(sched, eqFrame{})
		copy(sched[at+1:], sched[at:])
		sched[at] = dup
	}
	return sched
}

// playStream drives the schedule into a fresh receiving node and
// returns the final image.
func playStream(t *testing.T, sched []eqFrame, serial bool) []byte {
	t.Helper()
	hub := netproto.NewHub()
	r, err := rvm.Open(rvm.Options{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	opts := Options{
		RVM: r, Transport: hub.Endpoint(1),
		Nodes:       []netproto.NodeID{1, 2, 3},
		SerialApply: serial,
	}
	if !serial {
		opts.ApplyWorkers = 4
	}
	n, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	reg, err := n.MapRegion(1, eqRegionSz)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < eqChains; c++ {
		n.AddSegment(Segment{LockID: uint32(c), Region: 1, Off: uint64(c * eqSpan), Len: eqSpan})
	}
	for _, f := range sched {
		n.DeliverUpdate(f.from, f.buf)
	}
	if err := n.Quiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p := n.Parked(); p != 0 {
		t.Fatalf("%d records still parked after full delivery", p)
	}
	return append([]byte(nil), reg.Bytes()...)
}

func TestParallelApplierMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			sched := buildEquivalenceStream(t, rng, 150)
			serialImg := playStream(t, sched, true)
			parallelImg := playStream(t, sched, false)
			if !bytes.Equal(serialImg, parallelImg) {
				for i := range serialImg {
					if serialImg[i] != parallelImg[i] {
						t.Fatalf("images diverge at byte %d: serial %02x parallel %02x",
							i, serialImg[i], parallelImg[i])
					}
				}
			}
		})
	}
}
