package oo7

import (
	"bytes"
	"testing"

	"lbc/internal/metrics"
	"lbc/internal/rvm"
	"lbc/internal/wal"
)

func buildDB(t *testing.T, cfg Config) (*rvm.RVM, *DB) {
	t.Helper()
	r, err := rvm.Open(rvm.Options{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := r.Map(1, RegionSize(cfg))
	if err != nil {
		t.Fatal(err)
	}
	tx := r.Begin(rvm.NoRestore)
	db, err := Build(tx, reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(rvm.NoFlush); err != nil {
		t.Fatal(err)
	}
	return r, db
}

func TestTinyBuildValidates(t *testing.T) {
	_, db := buildDB(t, Tiny())
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallBuildValidates(t *testing.T) {
	if testing.Short() {
		t.Skip("small config build in -short mode")
	}
	_, db := buildDB(t, Small())
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := db.Config().BaseAssemblies(); got != 729 {
		t.Fatalf("base assemblies = %d, want 729", got)
	}
	if got := db.Index().Count(); got != 10000 {
		t.Fatalf("index entries = %d, want 10000", got)
	}
}

func TestBuildDeterministic(t *testing.T) {
	_, db1 := buildDB(t, Tiny())
	_, db2 := buildDB(t, Tiny())
	if !bytes.Equal(db1.Region().Bytes(), db2.Region().Bytes()) {
		t.Fatal("two builds with the same seed differ")
	}
}

func TestOpenRoundTrip(t *testing.T) {
	_, db := buildDB(t, Tiny())
	db2, err := Open(db.Region())
	if err != nil {
		t.Fatal(err)
	}
	if db2.Config() != db.Config() {
		t.Fatalf("config mismatch: %+v vs %+v", db2.Config(), db.Config())
	}
	if err := db2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	r, _ := rvm.Open(rvm.Options{Node: 1})
	reg, _ := r.Map(1, 4096)
	if _, err := Open(reg); err == nil {
		t.Fatal("garbage region opened")
	}
}

func TestT1VisitCounts(t *testing.T) {
	_, db := buildDB(t, Tiny())
	cfg := db.Config()
	res, err := db.T1()
	if err != nil {
		t.Fatal(err)
	}
	wantComp := cfg.BaseAssemblies() * cfg.CompPerBase
	if res.CompositesVisited != wantComp {
		t.Fatalf("composites visited = %d, want %d", res.CompositesVisited, wantComp)
	}
	if res.PartsVisited != wantComp*cfg.AtomicPerComposite {
		t.Fatalf("parts visited = %d, want %d", res.PartsVisited, wantComp*cfg.AtomicPerComposite)
	}
}

func TestT6SparseCounts(t *testing.T) {
	_, db := buildDB(t, Tiny())
	cfg := db.Config()
	res, err := db.T6()
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.BaseAssemblies() * cfg.CompPerBase
	if res.PartsVisited != want {
		t.Fatalf("parts visited = %d, want %d", res.PartsVisited, want)
	}
}

func TestT2VariantsUpdateCounts(t *testing.T) {
	r, db := buildDB(t, Tiny())
	cfg := db.Config()
	visits := cfg.BaseAssemblies() * cfg.CompPerBase
	for _, c := range []struct {
		v    Variant
		want int
	}{
		{VariantA, visits},
		{VariantB, visits * cfg.AtomicPerComposite},
		{VariantC, visits * cfg.AtomicPerComposite * 4},
	} {
		tx := r.Begin(rvm.NoRestore)
		res, err := db.T2(tx, c.v)
		if err != nil {
			t.Fatal(err)
		}
		if res.Updates != c.want {
			t.Fatalf("T2-%v updates = %d, want %d", c.v, res.Updates, c.want)
		}
		if _, err := tx.Commit(rvm.NoFlush); err != nil {
			t.Fatal(err)
		}
	}
}

func TestT2SwapIsInvolution(t *testing.T) {
	r, db := buildDB(t, Tiny())
	before := append([]byte(nil), db.Region().Bytes()...)
	for i := 0; i < 2; i++ {
		tx := r.Begin(rvm.NoRestore)
		if _, err := db.T2(tx, VariantB); err != nil {
			t.Fatal(err)
		}
		tx.Commit(rvm.NoFlush)
	}
	// Swapping (x,y) twice restores every part.
	if !bytes.Equal(before, db.Region().Bytes()) {
		t.Fatal("double T2-B did not restore the image")
	}
}

func TestT3UpdatesIndexConsistently(t *testing.T) {
	r, db := buildDB(t, Tiny())
	tx := r.Begin(rvm.NoRestore)
	res, err := db.T3(tx, VariantA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(rvm.NoFlush); err != nil {
		t.Fatal(err)
	}
	if res.Updates == 0 {
		t.Fatal("no updates performed")
	}
	// Every part's (possibly new) date must still be indexed and the
	// structure valid.
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestT3AmplifiesUpdates(t *testing.T) {
	r, db := buildDB(t, Tiny())
	stats := r.Stats()
	stats.Reset() // drop the build transaction's counts

	tx := r.Begin(rvm.NoRestore)
	db.T2(tx, VariantA)
	tx.Commit(rvm.NoFlush)
	t2Calls := stats.Counter(metrics.CtrSetRangeCalls)

	stats.Reset()
	tx = r.Begin(rvm.NoRestore)
	db.T3(tx, VariantA)
	tx.Commit(rvm.NoFlush)
	t3Calls := stats.Counter(metrics.CtrSetRangeCalls)

	// T3's index maintenance must multiply the write count (the paper
	// reports ~7x for its AVL index).
	if t3Calls < 3*t2Calls {
		t.Fatalf("T3 made %d set_range calls vs T2's %d: no index amplification", t3Calls, t2Calls)
	}
	t.Logf("T2-A: %d calls, T3-A: %d calls (%.1fx)", t2Calls, t3Calls, float64(t3Calls)/float64(t2Calls))
}

func TestT12Counts(t *testing.T) {
	r, db := buildDB(t, Tiny())
	cfg := db.Config()
	visits := cfg.BaseAssemblies() * cfg.CompPerBase
	tx := r.Begin(rvm.NoRestore)
	resA, err := db.T12(tx, VariantA)
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit(rvm.NoFlush)
	if resA.Updates != visits || resA.PartsVisited != visits {
		t.Fatalf("T12-A = %+v", resA)
	}
	tx = r.Begin(rvm.NoRestore)
	resC, err := db.T12(tx, VariantC)
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit(rvm.NoFlush)
	if resC.Updates != visits*4 {
		t.Fatalf("T12-C updates = %d", resC.Updates)
	}
	if _, err := db.T12(r.Begin(rvm.NoRestore), VariantB); err == nil {
		t.Fatal("T12-B accepted")
	}
}

// TestTable3CharacteristicsSmall pins the deterministic Table 3
// columns for the paper's configuration.
func TestTable3CharacteristicsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("small config in -short mode")
	}
	r, db := buildDB(t, Small())
	stats := r.Stats()

	run := func(name string, f func(tx *rvm.Tx) (Result, error)) (Result, *wal.TxRecord) {
		stats.Reset()
		tx := r.Begin(rvm.NoRestore)
		res, err := f(tx)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rec, err := tx.Commit(rvm.NoFlush)
		if err != nil {
			t.Fatalf("%s commit: %v", name, err)
		}
		return res, rec
	}

	// T12-A / T2-A: 2187 updates on 500 unique parts => 4000 unique
	// bytes in 500 ranges; compressed message overhead 4 B per range
	// => 6000 message bytes (Table 3).
	res, rec := run("T12-A", func(tx *rvm.Tx) (Result, error) { return db.T12(tx, VariantA) })
	if res.Updates != 2187 {
		t.Fatalf("T12-A updates = %d", res.Updates)
	}
	if got := rec.DataBytes(); got != 4000 {
		t.Fatalf("T12-A unique bytes = %d, want 4000", got)
	}
	if got := len(rec.Ranges); got != 500 {
		t.Fatalf("T12-A ranges = %d, want 500", got)
	}
	// 4 bytes per range header plus one absolute first-range header:
	// the paper reports exactly 6000 (500 x 12); ours is 6010 because
	// the first range of a message carries the region id and an
	// absolute address.
	msg := rec.DataBytes() + wal.CompressedHeaderBytes(rec)
	if msg < 6000 || msg > 6020 {
		t.Fatalf("T12-A message bytes = %d, want ~6000", msg)
	}

	// Undo T12-A's swap so T2 sees pristine coordinates (not needed
	// for counts, but keeps the image canonical).
	run("T12-A-undo", func(tx *rvm.Tx) (Result, error) { return db.T12(tx, VariantA) })

	// T2-B: 43740 updates, 80000 unique bytes, 120000 message bytes.
	res, rec = run("T2-B", func(tx *rvm.Tx) (Result, error) { return db.T2(tx, VariantB) })
	if res.Updates != 43740 {
		t.Fatalf("T2-B updates = %d", res.Updates)
	}
	if rec.DataBytes() != 80000 || len(rec.Ranges) != 10000 {
		t.Fatalf("T2-B bytes=%d ranges=%d", rec.DataBytes(), len(rec.Ranges))
	}
	if msg := rec.DataBytes() + wal.CompressedHeaderBytes(rec); msg < 120000 || msg > 120020 {
		t.Fatalf("T2-B message bytes = %d, want ~120000", msg)
	}

	// T2-C repeats each update 4x but coalesces to the same ranges.
	res, rec = run("T2-C", func(tx *rvm.Tx) (Result, error) { return db.T2(tx, VariantC) })
	if res.Updates != 174960 {
		t.Fatalf("T2-C updates = %d", res.Updates)
	}
	if rec.DataBytes() != 80000 {
		t.Fatalf("T2-C unique bytes = %d", rec.DataBytes())
	}

	// T3-A: update amplification via the index; the paper reports
	// 16924 updates and 31300 unique bytes for its AVL — ours differ
	// in constant factor but must show the same amplification.
	stats.Reset()
	res, rec = run("T3-A", func(tx *rvm.Tx) (Result, error) { return db.T3(tx, VariantA) })
	calls := stats.Counter(metrics.CtrSetRangeCalls)
	if calls < 2*2187 {
		t.Fatalf("T3-A only %d set_range calls", calls)
	}
	if rec.DataBytes() <= 4000 {
		t.Fatalf("T3-A unique bytes = %d: no index writes?", rec.DataBytes())
	}
	t.Logf("T3-A: %d updates -> %d set_range calls, %d unique bytes, %d ranges",
		res.Updates, calls, rec.DataBytes(), len(rec.Ranges))
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQ1Lookup(t *testing.T) {
	_, db := buildDB(t, Tiny())
	comps := db.Composites()
	part := db.AtomicParts(comps[0])[0]
	date := db.AtomicDate(part)
	ids := db.Q1Lookup(date)
	found := false
	for _, id := range ids {
		if id == db.AtomicID(part) {
			found = true
		}
	}
	if !found {
		t.Fatalf("Q1(%d) = %v does not include part %d", date, ids, db.AtomicID(part))
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	r, _ := rvm.Open(rvm.Options{Node: 1})
	reg, _ := r.Map(1, 1<<20)
	tx := r.Begin(rvm.NoRestore)
	if _, err := Build(tx, reg, Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	bad := Tiny()
	bad.ConnPerAtomic = 9
	if _, err := Build(tx, reg, bad); err == nil {
		t.Fatal("too many connections accepted")
	}
}

func TestPageAlignedClusters(t *testing.T) {
	if testing.Short() {
		t.Skip("small config in -short mode")
	}
	_, db := buildDB(t, Small())
	// Every composite's root atomic part must live on its own page.
	pages := map[uint64]bool{}
	for _, comp := range db.Composites() {
		root := uint64(db.u32(comp + cpRootPart))
		p := root / 8192
		if pages[p] {
			t.Fatalf("two composite clusters share page %d", p)
		}
		pages[p] = true
	}
}

func TestT12PartitionCoversLibraryExactly(t *testing.T) {
	r, db := buildDB(t, Tiny())
	n := db.Config().NumComposite
	// Two disjoint partitions update disjoint part sets; their union
	// covers what full T12-A covers.
	tx := r.Begin(rvm.NoRestore)
	resA, err := db.T12Partition(tx, 0, n/2)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := db.T12Partition(tx, n/2, n)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tx.Commit(rvm.NoFlush)
	if err != nil {
		t.Fatal(err)
	}
	full := db.Config().BaseAssemblies() * db.Config().CompPerBase
	if resA.Updates+resB.Updates != full {
		t.Fatalf("partition updates %d+%d != %d", resA.Updates, resB.Updates, full)
	}
	// Unique ranges = one per composite (each root part).
	if len(rec.Ranges) != n {
		t.Fatalf("ranges = %d, want %d", len(rec.Ranges), n)
	}
}

func TestCompositeOffsetsAreSegmentBoundaries(t *testing.T) {
	_, db := buildDB(t, Tiny())
	n := db.Config().NumComposite
	prev := uint64(0)
	for i := 0; i < n; i++ {
		off := db.CompositeOffset(i)
		if off <= prev {
			t.Fatalf("composite %d offset %d not increasing", i, off)
		}
		prev = off
	}
	// All of composite i's atomic parts live before composite i+1.
	for i := 0; i < n-1; i++ {
		bound := db.CompositeOffset(i + 1)
		for _, p := range db.AtomicParts(db.CompositeOffset(i)) {
			if p+atomicSize > bound {
				t.Fatalf("composite %d atomic at %d crosses boundary %d", i, p, bound)
			}
		}
	}
}
