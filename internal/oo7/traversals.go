package oo7

import (
	"fmt"

	"lbc/internal/pheap"
)

// Variant selects how many atomic parts an update traversal modifies
// per composite-part visit (§4.1): A updates one atomic part, B every
// atomic part, C every atomic part four times.
type Variant int

const (
	VariantA Variant = iota
	VariantB
	VariantC
)

func (v Variant) String() string {
	switch v {
	case VariantA:
		return "A"
	case VariantB:
		return "B"
	case VariantC:
		return "C"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// repeats returns (parts per composite visit, updates per part).
func (db *DB) variantPlan(v Variant) (parts, times int, err error) {
	switch v {
	case VariantA:
		return 1, 1, nil
	case VariantB:
		return db.cfg.AtomicPerComposite, 1, nil
	case VariantC:
		return db.cfg.AtomicPerComposite, 4, nil
	default:
		return 0, 0, fmt.Errorf("oo7: unknown variant %d", int(v))
	}
}

// visitComposites walks the assembly hierarchy depth-first and invokes
// fn for every composite reference of every base assembly — the
// skeleton shared by all OO7 traversals (2187 composite visits in the
// paper's configuration: 729 base assemblies x 3 references).
func (db *DB) visitComposites(fn func(comp uint64) error) error {
	var walk func(off uint64) error
	walk = func(off uint64) error {
		if db.u32(off+asKind) == 1 {
			for k := 0; k < db.cfg.CompPerBase; k++ {
				comp := uint64(db.u32(off + asChildren + uint64(k)*4))
				if err := fn(comp); err != nil {
					return err
				}
			}
			return nil
		}
		for k := 0; k < db.cfg.AssmFanout; k++ {
			if err := walk(uint64(db.u32(off + asChildren + uint64(k)*4))); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(db.RootAssembly())
}

// dfsAtomic performs the depth-first traversal of a composite's
// atomic-part graph, following connections from the root part, and
// calls fn on each part in first-visit order.
func (db *DB) dfsAtomic(comp uint64, fn func(part uint64) error) error {
	root := uint64(db.u32(comp + cpRootPart))
	visited := make(map[uint64]bool, db.cfg.AtomicPerComposite)
	stack := []uint64{root}
	for len(stack) > 0 {
		part := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[part] {
			continue
		}
		visited[part] = true
		if err := fn(part); err != nil {
			return err
		}
		// Push connections in reverse so the ring neighbour pops first
		// (deterministic visit order).
		for k := db.cfg.ConnPerAtomic - 1; k >= 0; k-- {
			to := uint64(db.u32(part + apTo + uint64(k)*4))
			if !visited[to] {
				stack = append(stack, to)
			}
		}
	}
	return nil
}

// Result summarizes a traversal.
type Result struct {
	CompositesVisited int
	PartsVisited      int
	Updates           int // individual update operations performed
}

// T1 is the read-only dense traversal: visit every composite reference
// and DFS its full atomic graph, touching each part.
func (db *DB) T1() (Result, error) {
	var res Result
	err := db.visitComposites(func(comp uint64) error {
		res.CompositesVisited++
		return db.dfsAtomic(comp, func(part uint64) error {
			res.PartsVisited++
			_ = db.u64(part + apDate) // touch the part
			return nil
		})
	})
	return res, err
}

// T6 is the read-only sparse traversal: visit only the root atomic
// part of each composite reference.
func (db *DB) T6() (Result, error) {
	var res Result
	err := db.visitComposites(func(comp uint64) error {
		res.CompositesVisited++
		root := uint64(db.u32(comp + cpRootPart))
		_ = db.u64(root + apDate)
		res.PartsVisited++
		return nil
	})
	return res, err
}

// swapXY performs the T2/T12 atomic-part update: exchanging the part's
// (x, y) fields — "changing an eight-byte field" (§4.1).
func (db *DB) swapXY(tx pheap.SetRanger, part uint64) error {
	if err := tx.SetRange(db.reg, part+apXY, 8); err != nil {
		return err
	}
	b := db.reg.Bytes()
	x := db.u32(part + apXY)
	y := db.u32(part + apXY + 4)
	putU32(b[part+apXY:], y)
	putU32(b[part+apXY+4:], x)
	return nil
}

// changeDate performs the T3 update: increment the part's build date
// and keep the part index current (delete the old entry, insert the
// new one), which multiplies each update into several index writes.
func (db *DB) changeDate(tx pheap.SetRanger, part uint64) error {
	old := db.AtomicDate(part)
	id := db.AtomicID(part)
	if err := tx.SetRange(db.reg, part+apDate, 8); err != nil {
		return err
	}
	db.put64(part+apDate, uint64(old+1))
	if ok, err := db.index.Delete(tx, int32(old), id); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("oo7: part %d missing from index at date %d", id, old)
	}
	return db.index.Insert(tx, int32(old+1), id)
}

// T2 is the dense update traversal: like T1, but updates atomic parts
// by swapping (x, y) per the variant's plan.
func (db *DB) T2(tx pheap.SetRanger, v Variant) (Result, error) {
	return db.updateTraversal(tx, v, db.swapXY)
}

// T3 is the index-update traversal: like T2, but the update changes
// the indexed build date, forcing part-index maintenance.
func (db *DB) T3(tx pheap.SetRanger, v Variant) (Result, error) {
	return db.updateTraversal(tx, v, db.changeDate)
}

func (db *DB) updateTraversal(tx pheap.SetRanger, v Variant, update func(pheap.SetRanger, uint64) error) (Result, error) {
	parts, times, err := db.variantPlan(v)
	if err != nil {
		return Result{}, err
	}
	var res Result
	err = db.visitComposites(func(comp uint64) error {
		res.CompositesVisited++
		done := 0
		return db.dfsAtomic(comp, func(part uint64) error {
			res.PartsVisited++
			if done < parts {
				for r := 0; r < times; r++ {
					if err := update(tx, part); err != nil {
						return err
					}
					res.Updates++
				}
				done++
			}
			return nil
		})
	})
	return res, err
}

// T12 is the paper's added sparse-update traversal (§4.1): like T6 it
// visits only one atomic part per composite reference, but updates it.
// Only variants A (one update) and C (four updates) appear in the
// paper.
func (db *DB) T12(tx pheap.SetRanger, v Variant) (Result, error) {
	times := 1
	if v == VariantC {
		times = 4
	} else if v != VariantA {
		return Result{}, fmt.Errorf("oo7: T12 supports variants A and C only")
	}
	var res Result
	err := db.visitComposites(func(comp uint64) error {
		res.CompositesVisited++
		root := uint64(db.u32(comp + cpRootPart))
		res.PartsVisited++
		for r := 0; r < times; r++ {
			if err := db.swapXY(tx, root); err != nil {
				return err
			}
			res.Updates++
		}
		return nil
	})
	return res, err
}

// T12Partition is T12-A restricted to composites whose design-library
// index lies in [lo, hi) — the unit of work for multi-writer
// experiments where the library is partitioned into segments, each
// under its own lock, and several nodes update disjoint partitions
// concurrently (an extension beyond the paper's one-writer runs).
func (db *DB) T12Partition(tx pheap.SetRanger, lo, hi int) (Result, error) {
	idx := db.compositeIndex()
	var res Result
	err := db.visitComposites(func(comp uint64) error {
		i, ok := idx[comp]
		if !ok || i < lo || i >= hi {
			return nil
		}
		res.CompositesVisited++
		root := uint64(db.u32(comp + cpRootPart))
		res.PartsVisited++
		if err := db.swapXY(tx, root); err != nil {
			return err
		}
		res.Updates++
		return nil
	})
	return res, err
}

// CompositeOffset returns the region offset of the i-th composite
// part's object — with page-aligned clusters, the start of its
// cluster, usable as a segment boundary.
func (db *DB) CompositeOffset(i int) uint64 {
	return db.Composites()[i]
}

// compositeIndex maps composite offsets to design-library indexes.
func (db *DB) compositeIndex() map[uint64]int {
	comps := db.Composites()
	m := make(map[uint64]int, len(comps))
	for i, off := range comps {
		m[off] = i
	}
	return m
}

// Q1Lookup is OO7's exact-match index query: find parts by build date
// via the part index (extra coverage beyond the paper's traversals).
func (db *DB) Q1Lookup(date int64) []uint32 {
	var ids []uint32
	db.index.Range(int32(date), int32(date), func(_ int32, part uint32) bool {
		ids = append(ids, part)
		return true
	})
	return ids
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
