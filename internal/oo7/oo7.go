// Package oo7 implements the OO7 object-oriented database benchmark
// [Carey, DeWitt & Naughton, SIGMOD 93] as used in the paper's
// evaluation (§4.1): a design library of composite parts, each a graph
// of atomic parts, reachable from a tree-shaped assembly hierarchy,
// with a self-balancing part index on the atomic parts' build dates.
//
// The database is built inside an RVM region using the persistent heap
// (internal/pheap) and the region-resident AVL index
// (internal/avltree), so every object write is a logged, recoverable,
// coherent region write — exactly the configuration the paper
// measures ("we modified OO7 to run with RVM in standard virtual
// memory").
//
// The paper's small configuration: a design library of 500 composite
// parts, 20 atomic parts per composite, a 7-level assembly hierarchy
// with fanout 3 (729 base assemblies), 3 composite parts per base
// assembly, ~200-byte part objects.
package oo7

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"lbc/internal/avltree"
	"lbc/internal/pheap"
	"lbc/internal/rvm"
)

// Config describes an OO7 database. The zero value is not valid; use
// Small() (the paper's configuration) or fill all fields.
type Config struct {
	NumComposite       int   // composite parts in the design library
	AtomicPerComposite int   // atomic parts per composite
	ConnPerAtomic      int   // outgoing connections per atomic part
	AssmLevels         int   // assembly hierarchy depth (root = level 1)
	AssmFanout         int   // children per complex assembly
	CompPerBase        int   // composite refs per base assembly
	Seed               int64 // generator seed (images are deterministic)
	// PageAlign starts each composite's cluster on a fresh page so
	// sparse traversals touch one page per composite, as in the
	// paper's layout.
	PageAlign bool
	PageSize  int
}

// Small returns the paper's OO7 configuration.
func Small() Config {
	return Config{
		NumComposite:       500,
		AtomicPerComposite: 20,
		ConnPerAtomic:      3,
		AssmLevels:         7,
		AssmFanout:         3,
		CompPerBase:        3,
		Seed:               1994,
		PageAlign:          true,
		PageSize:           8192,
	}
}

// Tiny returns a scaled-down configuration for fast tests.
func Tiny() Config {
	return Config{
		NumComposite:       20,
		AtomicPerComposite: 5,
		ConnPerAtomic:      2,
		AssmLevels:         3,
		AssmFanout:         3,
		CompPerBase:        3,
		Seed:               7,
		PageAlign:          true,
		PageSize:           8192,
	}
}

// BaseAssemblies returns the number of leaves in the hierarchy.
func (c Config) BaseAssemblies() int {
	n := 1
	for i := 1; i < c.AssmLevels; i++ {
		n *= c.AssmFanout
	}
	return n
}

// Object layouts. All offsets are region offsets; pointer fields hold
// payload offsets (0 = nil). Sizes chosen to match the paper's
// "roughly 200 bytes" part objects.
const (
	atomicSize    = 200
	compositeSize = 200
	assemblySize  = 40

	// AtomicPart fields.
	apID    = 0  // u32
	apDate  = 8  // i64 (the indexed build date; T3's 8-byte field)
	apXY    = 16 // x i32, y i32 (T2's 8-byte field)
	apDocID = 24 // u32
	apOwner = 28 // u32: composite payload offset
	apTo    = 32 // ConnPerAtomic * u32
	apNext  = 56 // u32: next atomic in same composite

	// CompositePart fields.
	cpID       = 0  // u32
	cpDate     = 8  // i64
	cpRootPart = 16 // u32: first atomic part
	cpNumParts = 20 // u32

	// Assembly fields.
	asID       = 0 // u32
	asKind     = 4 // u32: 0 complex, 1 base
	asChildren = 8 // AssmFanout (or CompPerBase) * u32
)

// Header layout at region offset 0. The index root cell lives inside
// the header so the whole database state is region-resident.
const (
	hdrMagic     = 0  // u32 = "OO7!"
	hdrRoot      = 4  // u32: root assembly offset
	hdrIndexRoot = 8  // u32: AVL root cell
	hdrNumComp   = 12 // u32
	hdrAtomicPer = 16 // u32
	hdrLevels    = 20 // u32
	hdrFanout    = 24 // u32
	hdrCompPer   = 28 // u32
	hdrLib       = 32 // u32: offset of composite-offset array
	hdrPageAlign = 36 // u32 (bool)
	hdrPageSize  = 40 // u32
	hdrConnPer   = 44 // u32
	hdrSeed      = 48 // i64
	hdrLen       = 64

	magicOO7 = 0x4f4f3721 // "OO7!"
)

// DB is a handle to an OO7 database inside a region.
type DB struct {
	reg   *rvm.Region
	heap  *pheap.Heap
	index *avltree.Tree
	cfg   Config
}

// RegionSize estimates a comfortable region size for the config.
func RegionSize(cfg Config) int {
	clusters := cfg.NumComposite
	clusterBytes := (compositeSize + 8) + cfg.AtomicPerComposite*(atomicSize+8)
	if cfg.PageAlign {
		pages := (clusterBytes + cfg.PageSize - 1) / cfg.PageSize
		clusterBytes = (pages + 1) * cfg.PageSize
	}
	atomics := cfg.NumComposite * cfg.AtomicPerComposite
	assemblies := 0
	n := 1
	for l := 0; l < cfg.AssmLevels; l++ {
		assemblies += n
		n *= cfg.AssmFanout
	}
	size := hdrLen +
		clusters*clusterBytes +
		atomics*48 + // index nodes (24 B payload -> 32 B class + 8 B header)
		assemblies*(assemblySize+16) +
		cfg.NumComposite*4 + 1024 +
		1<<16 // slack
	// Round up to a page multiple.
	return (size + cfg.PageSize) &^ (cfg.PageSize - 1)
}

// Build constructs a fresh OO7 database in the region within the given
// transaction. Identical (region, cfg) inputs produce bit-identical
// images, so every node can build its own copy deterministically.
func Build(tx pheap.SetRanger, reg *rvm.Region, cfg Config) (*DB, error) {
	if cfg.NumComposite == 0 || cfg.AtomicPerComposite == 0 || cfg.AssmLevels == 0 {
		return nil, errors.New("oo7: zero-valued config")
	}
	if cfg.ConnPerAtomic > 6 {
		return nil, errors.New("oo7: at most 6 connections per atomic part")
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 8192
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	if err := tx.SetRange(reg, 0, hdrLen); err != nil {
		return nil, err
	}
	b := reg.Bytes()
	put32 := func(off uint64, v uint32) { binary.LittleEndian.PutUint32(b[off:], v) }
	put32(hdrMagic, magicOO7)
	put32(hdrNumComp, uint32(cfg.NumComposite))
	put32(hdrAtomicPer, uint32(cfg.AtomicPerComposite))
	put32(hdrLevels, uint32(cfg.AssmLevels))
	put32(hdrFanout, uint32(cfg.AssmFanout))
	put32(hdrCompPer, uint32(cfg.CompPerBase))
	if cfg.PageAlign {
		put32(hdrPageAlign, 1)
	}
	put32(hdrPageSize, uint32(cfg.PageSize))
	put32(hdrConnPer, uint32(cfg.ConnPerAtomic))
	binary.LittleEndian.PutUint64(b[hdrSeed:], uint64(cfg.Seed))

	heap, err := pheap.Format(reg, tx, hdrLen, uint64(reg.Size()))
	if err != nil {
		return nil, err
	}
	index, err := avltree.New(reg, heap, hdrIndexRoot)
	if err != nil {
		return nil, err
	}
	db := &DB{reg: reg, heap: heap, index: index, cfg: cfg}

	// Design library: composite parts with their atomic-part clusters.
	comps := make([]uint64, cfg.NumComposite)
	nextID := uint32(1)
	for c := 0; c < cfg.NumComposite; c++ {
		if cfg.PageAlign {
			if err := heap.AlignBump(tx, uint64(cfg.PageSize)); err != nil {
				return nil, err
			}
		}
		compOff, err := db.alloc(tx, compositeSize)
		if err != nil {
			return nil, err
		}
		comps[c] = compOff
		atoms := make([]uint64, cfg.AtomicPerComposite)
		for a := range atoms {
			off, err := db.alloc(tx, atomicSize)
			if err != nil {
				return nil, err
			}
			atoms[a] = off
		}
		// Composite fields.
		date := int64(rng.Intn(10000) + 1000)
		db.put32(compOff+cpID, nextID)
		db.put64(compOff+cpDate, uint64(date))
		db.put32(compOff+cpRootPart, uint32(atoms[0]))
		db.put32(compOff+cpNumParts, uint32(cfg.AtomicPerComposite))
		nextID++
		// Atomic fields: ring connection plus random extras; dates
		// indexed in the part index.
		for a, off := range atoms {
			id := nextID
			nextID++
			adate := int64(rng.Intn(10000) + 1000)
			db.put32(off+apID, id)
			db.put64(off+apDate, uint64(adate))
			db.put32(off+apXY, uint32(rng.Intn(100000)))
			db.put32(off+apXY+4, uint32(rng.Intn(100000)))
			db.put32(off+apDocID, uint32(rng.Intn(1<<20)))
			db.put32(off+apOwner, uint32(compOff))
			db.put32(off+apTo, uint32(atoms[(a+1)%len(atoms)])) // ring keeps the graph connected
			for k := 1; k < cfg.ConnPerAtomic; k++ {
				db.put32(off+apTo+uint64(k)*4, uint32(atoms[rng.Intn(len(atoms))]))
			}
			if a+1 < len(atoms) {
				db.put32(off+apNext, uint32(atoms[a+1]))
			} else {
				db.put32(off+apNext, 0)
			}
			if err := index.Insert(tx, int32(adate), id); err != nil {
				return nil, err
			}
		}
	}

	// Library array.
	libOff, err := db.alloc(tx, uint32(4*cfg.NumComposite))
	if err != nil {
		return nil, err
	}
	for i, off := range comps {
		db.put32(libOff+uint64(i)*4, uint32(off))
	}
	if err := tx.SetRange(reg, hdrLib, 4); err != nil {
		return nil, err
	}
	put32(hdrLib, uint32(libOff))

	// Assembly hierarchy: complex assemblies down to base assemblies
	// that reference CompPerBase random composites. The first
	// NumComposite references walk a random permutation so that every
	// composite part is referenced at least once — Table 3's unique
	// byte counts (e.g. T2-A's 4000 bytes = 500 parts x 8) assume the
	// traversals reach the whole design library.
	perm := rng.Perm(len(comps))
	refCount := 0
	pickComp := func() uint64 {
		if refCount < len(perm) {
			c := comps[perm[refCount]]
			refCount++
			return c
		}
		return comps[rng.Intn(len(comps))]
	}
	var buildAssm func(level int) (uint64, error)
	buildAssm = func(level int) (uint64, error) {
		off, err := db.alloc(tx, assemblySize)
		if err != nil {
			return 0, err
		}
		db.put32(off+asID, nextID)
		nextID++
		if level == cfg.AssmLevels {
			db.put32(off+asKind, 1)
			for k := 0; k < cfg.CompPerBase; k++ {
				db.put32(off+asChildren+uint64(k)*4, uint32(pickComp()))
			}
			return off, nil
		}
		db.put32(off+asKind, 0)
		for k := 0; k < cfg.AssmFanout; k++ {
			child, err := buildAssm(level + 1)
			if err != nil {
				return 0, err
			}
			db.put32(off+asChildren+uint64(k)*4, uint32(child))
		}
		return off, nil
	}
	root, err := buildAssm(1)
	if err != nil {
		return nil, err
	}
	if err := tx.SetRange(reg, hdrRoot, 4); err != nil {
		return nil, err
	}
	put32(hdrRoot, uint32(root))
	return db, nil
}

// Open attaches to a database previously built in the region.
func Open(reg *rvm.Region) (*DB, error) {
	if reg.Size() < hdrLen {
		return nil, errors.New("oo7: region too small")
	}
	b := reg.Bytes()
	if binary.LittleEndian.Uint32(b[hdrMagic:]) != magicOO7 {
		return nil, errors.New("oo7: region does not hold an OO7 database")
	}
	heap, err := pheap.Open(reg, hdrLen)
	if err != nil {
		return nil, err
	}
	cfg := Config{
		NumComposite:       int(binary.LittleEndian.Uint32(b[hdrNumComp:])),
		ConnPerAtomic:      int(binary.LittleEndian.Uint32(b[hdrConnPer:])),
		Seed:               int64(binary.LittleEndian.Uint64(b[hdrSeed:])),
		AtomicPerComposite: int(binary.LittleEndian.Uint32(b[hdrAtomicPer:])),
		AssmLevels:         int(binary.LittleEndian.Uint32(b[hdrLevels:])),
		AssmFanout:         int(binary.LittleEndian.Uint32(b[hdrFanout:])),
		CompPerBase:        int(binary.LittleEndian.Uint32(b[hdrCompPer:])),
		PageAlign:          binary.LittleEndian.Uint32(b[hdrPageAlign:]) == 1,
		PageSize:           int(binary.LittleEndian.Uint32(b[hdrPageSize:])),
	}
	index, err := avltree.New(reg, heap, hdrIndexRoot)
	if err != nil {
		return nil, err
	}
	return &DB{reg: reg, heap: heap, index: index, cfg: cfg}, nil
}

// Config returns the database's configuration (as persisted).
func (db *DB) Config() Config { return db.cfg }

// Region returns the database's region.
func (db *DB) Region() *rvm.Region { return db.reg }

// Index returns the part index.
func (db *DB) Index() *avltree.Tree { return db.index }

// alloc allocates and zero-declares an object.
func (db *DB) alloc(tx pheap.SetRanger, size uint32) (uint64, error) {
	off, err := db.heap.Alloc(tx, size)
	if err != nil {
		return 0, err
	}
	if err := tx.SetRange(db.reg, off, size); err != nil {
		return 0, err
	}
	// Zero the payload: builds must be deterministic even when the
	// allocator reuses freed blocks.
	b := db.reg.Bytes()[off : off+uint64(size)]
	for i := range b {
		b[i] = 0
	}
	return off, nil
}

func (db *DB) u32(off uint64) uint32 {
	return binary.LittleEndian.Uint32(db.reg.Bytes()[off:])
}

func (db *DB) u64(off uint64) uint64 {
	return binary.LittleEndian.Uint64(db.reg.Bytes()[off:])
}

// put32/put64 write without declaring; used only inside ranges already
// declared by alloc/Build.
func (db *DB) put32(off uint64, v uint32) {
	binary.LittleEndian.PutUint32(db.reg.Bytes()[off:], v)
}

func (db *DB) put64(off uint64, v uint64) {
	binary.LittleEndian.PutUint64(db.reg.Bytes()[off:], v)
}

// RootAssembly returns the hierarchy root's offset.
func (db *DB) RootAssembly() uint64 { return uint64(db.u32(hdrRoot)) }

// Composites returns the design library's composite offsets.
func (db *DB) Composites() []uint64 {
	lib := uint64(db.u32(hdrLib))
	out := make([]uint64, db.cfg.NumComposite)
	for i := range out {
		out[i] = uint64(db.u32(lib + uint64(i)*4))
	}
	return out
}

// AtomicParts returns the offsets of a composite's atomic parts, in
// cluster order.
func (db *DB) AtomicParts(comp uint64) []uint64 {
	var out []uint64
	for off := uint64(db.u32(comp + cpRootPart)); off != 0; off = uint64(db.u32(off + apNext)) {
		out = append(out, off)
	}
	return out
}

// AtomicID returns an atomic part's id.
func (db *DB) AtomicID(part uint64) uint32 { return db.u32(part + apID) }

// AtomicDate returns an atomic part's build date.
func (db *DB) AtomicDate(part uint64) int64 { return int64(db.u64(part + apDate)) }

// Validate checks the structural invariants of the database: part
// counts, cluster chains, connection targets, index completeness.
func (db *DB) Validate() error {
	comps := db.Composites()
	if len(comps) != db.cfg.NumComposite {
		return fmt.Errorf("oo7: %d composites, want %d", len(comps), db.cfg.NumComposite)
	}
	total := 0
	for _, c := range comps {
		atoms := db.AtomicParts(c)
		if len(atoms) != db.cfg.AtomicPerComposite {
			return fmt.Errorf("oo7: composite %d has %d atomics", db.u32(c+cpID), len(atoms))
		}
		inCluster := map[uint64]bool{}
		for _, a := range atoms {
			inCluster[a] = true
		}
		for _, a := range atoms {
			if uint64(db.u32(a+apOwner)) != c {
				return fmt.Errorf("oo7: atomic %d owner broken", db.AtomicID(a))
			}
			for k := 0; k < db.cfg.ConnPerAtomic; k++ {
				to := uint64(db.u32(a + apTo + uint64(k)*4))
				if !inCluster[to] {
					return fmt.Errorf("oo7: atomic %d connection %d escapes cluster", db.AtomicID(a), k)
				}
			}
			if !db.index.Contains(int32(db.AtomicDate(a)), db.AtomicID(a)) {
				return fmt.Errorf("oo7: atomic %d missing from index", db.AtomicID(a))
			}
		}
		total += len(atoms)
	}
	if got := db.index.Count(); got != total {
		return fmt.Errorf("oo7: index holds %d entries, want %d", got, total)
	}
	if err := db.index.CheckInvariants(); err != nil {
		return err
	}
	// Assembly hierarchy shape.
	bases := 0
	var walk func(off uint64, level int) error
	walk = func(off uint64, level int) error {
		if db.u32(off+asKind) == 1 {
			if level != db.cfg.AssmLevels {
				return fmt.Errorf("oo7: base assembly at level %d", level)
			}
			bases++
			return nil
		}
		for k := 0; k < db.cfg.AssmFanout; k++ {
			child := uint64(db.u32(off + asChildren + uint64(k)*4))
			if child == 0 {
				return fmt.Errorf("oo7: nil child in complex assembly")
			}
			if err := walk(child, level+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(db.RootAssembly(), 1); err != nil {
		return err
	}
	if bases != db.cfg.BaseAssemblies() {
		return fmt.Errorf("oo7: %d base assemblies, want %d", bases, db.cfg.BaseAssemblies())
	}
	return nil
}
