package oo7

// OO7's query workloads [Carey et al. 93]. The paper's evaluation uses
// the update traversals, but the full benchmark also specifies a query
// mix; implementing it both exercises the part index as a read
// structure and provides read-heavy workloads for coherency
// experiments (large reads against sparse remote updates are exactly
// the collaborative-design pattern of §2.1). Queries that depend on
// document text (Q4's title matching) substitute the assembly
// hierarchy, as documented in DESIGN.md.

// Q1 (exact match): look up parts with the given build dates via the
// part index; returns the number of parts found.
func (db *DB) Q1(dates []int64) int {
	found := 0
	for _, d := range dates {
		found += len(db.Q1Lookup(d))
	}
	return found
}

// Q2 (1% range): count atomic parts whose build date falls in the
// lowest 1% of the date range. Returns matched parts.
func (db *DB) Q2() int { return db.rangeQuery(0.01) }

// Q3 (10% range): as Q2 over the lowest 10%.
func (db *DB) Q3() int { return db.rangeQuery(0.10) }

// rangeQuery counts index entries in the lowest fraction of the date
// span via an in-order index scan of the matching range.
func (db *DB) rangeQuery(frac float64) int {
	lo, hi := db.dateBounds()
	cut := lo + int64(float64(hi-lo)*frac)
	count := 0
	db.index.Range(int32(lo), int32(cut), func(int32, uint32) bool {
		count++
		return true
	})
	return count
}

// dateBounds scans the design library for the min and max atomic-part
// build dates.
func (db *DB) dateBounds() (lo, hi int64) {
	first := true
	for _, comp := range db.Composites() {
		for _, part := range db.AtomicParts(comp) {
			d := db.AtomicDate(part)
			if first {
				lo, hi = d, d
				first = false
				continue
			}
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
	}
	return lo, hi
}

// Q4 (assembly lookup, document-title substitute): for each given base
// assembly ordinal, visit its composite parts; returns composites
// visited.
func (db *DB) Q4(baseOrdinals []int) int {
	bases := db.baseAssemblies()
	visited := 0
	for _, ord := range baseOrdinals {
		if ord < 0 || ord >= len(bases) {
			continue
		}
		off := bases[ord]
		for k := 0; k < db.cfg.CompPerBase; k++ {
			comp := uint64(db.u32(off + asChildren + uint64(k)*4))
			_ = db.u64(comp + cpDate)
			visited++
		}
	}
	return visited
}

// Q5 (one-level join): count base assemblies that reference a
// composite part with a more recent build date than their own id-based
// timestamp proxy; exercises assembly->composite pointers.
func (db *DB) Q5() int {
	matches := 0
	for _, off := range db.baseAssemblies() {
		asmDate := int64(db.u32(off + asID)) // proxy, as we store no assembly dates
		for k := 0; k < db.cfg.CompPerBase; k++ {
			comp := uint64(db.u32(off + asChildren + uint64(k)*4))
			if int64(db.u64(comp+cpDate)) > asmDate {
				matches++
				break
			}
		}
	}
	return matches
}

// Q7 (scan): iterate every atomic part; returns the part count.
func (db *DB) Q7() int {
	count := 0
	for _, comp := range db.Composites() {
		for range db.AtomicParts(comp) {
			count++
		}
	}
	return count
}

// baseAssemblies collects the hierarchy's leaves in DFS order.
func (db *DB) baseAssemblies() []uint64 {
	var out []uint64
	var walk func(off uint64)
	walk = func(off uint64) {
		if db.u32(off+asKind) == 1 {
			out = append(out, off)
			return
		}
		for k := 0; k < db.cfg.AssmFanout; k++ {
			walk(uint64(db.u32(off + asChildren + uint64(k)*4)))
		}
	}
	walk(db.RootAssembly())
	return out
}
