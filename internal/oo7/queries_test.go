package oo7

import (
	"testing"

	"lbc/internal/rvm"
)

func TestQ1CountsMatches(t *testing.T) {
	_, db := buildDB(t, Tiny())
	// Collect every date; Q1 over all dates finds every part.
	dates := map[int64]bool{}
	total := 0
	for _, c := range db.Composites() {
		for _, p := range db.AtomicParts(c) {
			dates[db.AtomicDate(p)] = true
			total++
		}
	}
	var all []int64
	for d := range dates {
		all = append(all, d)
	}
	if got := db.Q1(all); got != total {
		t.Fatalf("Q1 over all dates = %d, want %d", got, total)
	}
	if got := db.Q1([]int64{-1}); got != 0 {
		t.Fatalf("Q1 over absent date = %d", got)
	}
}

func TestQ2Q3MatchBruteForce(t *testing.T) {
	_, db := buildDB(t, Tiny())
	lo, hi := db.dateBounds()
	brute := func(frac float64) int {
		cut := lo + int64(float64(hi-lo)*frac)
		n := 0
		for _, c := range db.Composites() {
			for _, p := range db.AtomicParts(c) {
				if d := db.AtomicDate(p); d >= lo && d <= cut {
					n++
				}
			}
		}
		return n
	}
	if got, want := db.Q2(), brute(0.01); got != want {
		t.Fatalf("Q2 = %d, brute force = %d", got, want)
	}
	if got, want := db.Q3(), brute(0.10); got != want {
		t.Fatalf("Q3 = %d, brute force = %d", got, want)
	}
	if db.Q3() < db.Q2() {
		t.Fatal("Q3 found fewer parts than Q2")
	}
}

func TestQ4VisitsRequestedAssemblies(t *testing.T) {
	_, db := buildDB(t, Tiny())
	cfg := db.Config()
	got := db.Q4([]int{0, 1, 2})
	if got != 3*cfg.CompPerBase {
		t.Fatalf("Q4 visited %d composites", got)
	}
	// Out-of-range ordinals are ignored.
	if got := db.Q4([]int{-1, 1 << 20}); got != 0 {
		t.Fatalf("Q4 out-of-range visited %d", got)
	}
}

func TestQ5Join(t *testing.T) {
	_, db := buildDB(t, Tiny())
	// Composite dates are >= 1000 and assembly id proxies are small,
	// so every base assembly matches in practice; at minimum the count
	// is bounded by the number of base assemblies.
	got := db.Q5()
	if got < 0 || got > db.Config().BaseAssemblies() {
		t.Fatalf("Q5 = %d", got)
	}
	if got == 0 {
		t.Fatal("Q5 found no matches (composite dates start at 1000)")
	}
}

func TestQ7ScansEverything(t *testing.T) {
	_, db := buildDB(t, Tiny())
	cfg := db.Config()
	if got := db.Q7(); got != cfg.NumComposite*cfg.AtomicPerComposite {
		t.Fatalf("Q7 = %d", got)
	}
}

func TestQueriesAfterT3(t *testing.T) {
	// Index queries must stay correct after T3 has churned the index.
	r, db := buildDB(t, Tiny())
	tx := r.Begin(rvm.NoRestore)
	if _, err := db.T3(tx, VariantB); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(rvm.NoFlush); err != nil {
		t.Fatal(err)
	}
	lo, hi := db.dateBounds()
	if lo > hi {
		t.Fatal("bounds inverted")
	}
	total := db.Q1(allDates(db))
	if total != db.Config().NumComposite*db.Config().AtomicPerComposite {
		t.Fatalf("Q1 after T3 = %d", total)
	}
}

func allDates(db *DB) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, c := range db.Composites() {
		for _, p := range db.AtomicParts(c) {
			if d := db.AtomicDate(p); !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	return out
}
