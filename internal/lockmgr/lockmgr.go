// Package lockmgr implements the paper's distributed segment locks
// (§3.3): token-based mutual exclusion with a centralized manager per
// lock and a distributed waiter queue, as used by TreadMarks and by the
// prototype.
//
// At all times exactly one node owns a lock's token. Acquiring on the
// owning node needs no communication; other nodes send a request to the
// lock's manager (determined from the lock id), which appends the
// requester to a distributed queue by forwarding the request to the
// previous queue tail. The previous tail passes the token as soon as
// its local transaction releases the lock.
//
// Each lock carries two counters on its token:
//
//   - Seq, incremented on every acquire: the sequence number stamped
//     into lock records (§3.4);
//   - LastWriteSeq, the Seq of the most recent *writing* holder: the
//     coherency interlock blocks an acquire until all updates through
//     LastWriteSeq have been applied locally, so a token can never
//     outrun the update stream it orders (the A/B/C scenario of §3.4).
//
// The interlock state (applied-write sequence per lock) lives here;
// the coherency layer calls MarkApplied as it installs updates and
// WaitApplied to order them.
package lockmgr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/netproto"
	"lbc/internal/obs"
)

// Message type codes on the transport (0x10-0x1F reserved for lockmgr).
const (
	MsgLockReq   uint8 = 0x10 // requester -> manager: {lock u32, requester u32}
	MsgLockPass  uint8 = 0x11 // manager -> prev tail: {lock u32, to u32}
	MsgLockToken uint8 = 0x12 // prev tail -> requester: {lock u32, seq u64, lastWriteSeq u64}
)

// ErrClosed is returned by Acquire after Close.
var ErrClosed = errors.New("lockmgr: closed")

// ErrAcquireTimeout is returned by AcquireTimeout when the token (or
// the interlock's applied watermark) does not arrive in time — the
// holder is unreachable, crashed, or still writing.
var ErrAcquireTimeout = errors.New("lockmgr: acquire timed out")

// ErrPeerEvicted (shared with the transport layer) marks operations
// against a peer the failure detector has evicted: requests to a dead
// manager fail with it, and background token passes abandon instead of
// retrying into the void. errors.Is matches it through the wrapped
// errors Acquire returns.
var ErrPeerEvicted = netproto.ErrPeerEvicted

// tokenRetryDelay is the base delay of the capped exponential backoff
// a failed token pass retries under (delays double per attempt, capped
// at one second).
var tokenRetryDelay = 25 * time.Millisecond

// maxTokenSendAttempts bounds how many times a token pass is tried
// before it is abandoned (lock_token_sends_abandoned). Abandoning is
// safe only because an abandoned token is recoverable: the membership
// layer's reclaim protocol re-mints tokens lost to dead peers, and a
// pass to a live peer that failed this many times means the link — not
// the peer — is gone, which the failure detector will shortly confirm
// as an eviction. The pre-membership behavior was retry-forever.
var maxTokenSendAttempts = 8

// lockState is this node's view of one lock.
type lockState struct {
	haveToken bool
	held      bool
	readers   int  // concurrent local shared holders
	requested bool // a MsgLockReq is outstanding
	seq       uint64
	lastWrite uint64
	pendingTo netproto.NodeID // pass token here on release (0 = none)
	hasPend   bool
	// writeWaiters counts local goroutines parked in acquire(). A
	// queued pass must defer to them: the token routed here satisfies
	// their (earlier) queue position, and they admit even with a pass
	// pending — forwarding first would steal their turn. Shared
	// waiters are deliberately excluded: they yield to a pending pass
	// (anti-starvation) and re-request, so a token arriving with only
	// shared waiters moves straight on.
	writeWaiters int

	applied uint64 // highest write seq applied locally (interlock)
}

// TokenData lets a higher layer piggyback an opaque payload on token
// passes (the §2.2 alternative where "segment updates could be ...
// passed with the lock token by the last writer", Midway-style).
// PrepareToken runs on the sending node just before the token leaves;
// TokenArrived runs on the receiver before waiters wake. Neither may
// call back into the Manager's blocking operations.
type TokenData interface {
	PrepareToken(lockID uint32, to netproto.NodeID) []byte
	TokenArrived(lockID uint32, from netproto.NodeID, payload []byte)
}

// Manager provides distributed locks over a transport.
type Manager struct {
	tr    netproto.Transport
	nodes []netproto.NodeID
	ring  *ring
	stats *metrics.Stats
	trace *obs.Tracer

	mu     sync.Mutex
	cond   *sync.Cond
	locks  map[uint32]*lockState
	tails  map[uint32]netproto.NodeID // manager-role queue tails
	closed bool

	tdMu sync.RWMutex
	td   TokenData

	lvMu sync.RWMutex
	live func(netproto.NodeID) bool // nil: every roster node is live

	// routeMu guards the resolved-home cache and the migration
	// overrides. It is a leaf below m.mu (ManagerOf runs both with and
	// without m.mu held) and above lvMu (resolution consults the live
	// view while holding it).
	routeMu   sync.RWMutex
	homeCache map[uint32]netproto.NodeID // lock -> resolved manager, this view
	overrides map[uint32]netproto.NodeID // lock -> migrated home

	mig migrator
}

// SetLiveView installs the failure detector's liveness predicate.
// With it, ManagerOf routes around evicted nodes (the first live
// successor in ring order from the lock's position), and token sends
// to evicted peers are abandoned instead of retried. Every node must
// use the same view for the manager choice to stay consistent — the
// membership layer's eviction broadcast provides exactly that.
// Installing a view invalidates the resolved-home cache.
func (m *Manager) SetLiveView(fn func(netproto.NodeID) bool) {
	m.lvMu.Lock()
	m.live = fn
	m.lvMu.Unlock()
	m.InvalidateRoutes()
}

// InvalidateRoutes drops every cached ManagerOf resolution. The
// membership layer calls it on each view change (eviction, rejoin):
// cached homes are valid only within one view, and revalidating
// per-call would put the live-view walk back on the acquire hot path.
func (m *Manager) InvalidateRoutes() {
	m.routeMu.Lock()
	clear(m.homeCache)
	m.routeMu.Unlock()
}

// peerLive reports whether the live view (if any) considers id alive.
func (m *Manager) peerLive(id netproto.NodeID) bool {
	m.lvMu.RLock()
	fn := m.live
	m.lvMu.RUnlock()
	return fn == nil || fn(id)
}

// SetTokenData installs the token piggyback hooks. Install before any
// lock traffic flows.
func (m *Manager) SetTokenData(td TokenData) {
	m.tdMu.Lock()
	defer m.tdMu.Unlock()
	m.td = td
}

func (m *Manager) tokenData() TokenData {
	m.tdMu.RLock()
	defer m.tdMu.RUnlock()
	return m.td
}

// New creates a lock manager endpoint. nodes must be the identical
// cluster membership on every node: the manager of lock L is the ring
// owner of L's hash under consistent-hash placement (HomeOf), and
// that node initially owns L's token. Placement depends only on the
// roster's ids, not its order, so differently-ordered peer lists
// still agree.
func New(tr netproto.Transport, nodes []netproto.NodeID, stats *metrics.Stats) *Manager {
	if stats == nil {
		stats = metrics.NewStats()
	}
	m := &Manager{
		tr:        tr,
		nodes:     append([]netproto.NodeID(nil), nodes...),
		stats:     stats,
		locks:     map[uint32]*lockState{},
		tails:     map[uint32]netproto.NodeID{},
		homeCache: map[uint32]netproto.NodeID{},
		overrides: map[uint32]netproto.NodeID{},
	}
	m.ring = buildRing(m.nodes)
	m.cond = sync.NewCond(&m.mu)
	m.mig.init(m)
	tr.Handle(MsgLockReq, m.onLockReq)
	tr.Handle(MsgLockPass, m.onLockPass)
	tr.Handle(MsgLockToken, m.onLockToken)
	tr.Handle(MsgMigrate, m.onMigrate)
	tr.Handle(MsgMigrateAck, m.onMigrateAck)
	tr.Handle(MsgHomeUpdate, m.onHomeUpdate)
	return m
}

// Stats returns the manager's metrics accumulator.
func (m *Manager) Stats() *metrics.Stats { return m.stats }

// SetTracer directs token-movement spans (lock.token_send/recv) to tr.
// Install before any lock traffic flows; tr may be nil.
func (m *Manager) SetTracer(tr *obs.Tracer) { m.trace = tr }

// ManagerOf returns the node that manages lock id: a migrated home
// installed by the handoff protocol while it stays live, else the
// lock's consistent-hash birth home, or — under a live view with that
// node evicted — the first live successor in ring order. When the
// home node rejoins, management reverts to it (the rejoin surgery
// repairs its queue-tail bookkeeping first). Resolutions are cached
// per membership view: the ring walk is O(distinct owners) and sits
// on the acquire hot path, so repeat calls hit the cache until
// InvalidateRoutes drops it on a view change.
func (m *Manager) ManagerOf(lockID uint32) netproto.NodeID {
	m.routeMu.RLock()
	id, ok := m.homeCache[lockID]
	m.routeMu.RUnlock()
	if ok {
		return id
	}
	m.routeMu.Lock()
	defer m.routeMu.Unlock()
	if id, ok := m.homeCache[lockID]; ok {
		return id
	}
	id = m.resolveHomeLocked(lockID)
	m.homeCache[lockID] = id
	return id
}

// resolveHomeLocked computes the current manager without the cache.
// Callers hold routeMu (write).
func (m *Manager) resolveHomeLocked(lockID uint32) netproto.NodeID {
	if ov, ok := m.overrides[lockID]; ok {
		if m.peerLive(ov) {
			return ov
		}
		// A migrated home that died loses the role: fall back to ring
		// placement (the reclaim protocol re-mints at the survivor).
		delete(m.overrides, lockID)
	}
	res := m.nodes[m.ring.ownerOf(lockID)]
	m.ring.walk(lockID, len(m.nodes), func(idx int) bool {
		if m.peerLive(m.nodes[idx]) {
			res = m.nodes[idx]
			return false
		}
		return true
	})
	return res
}

// BirthHome returns the lock's ring birth home on this manager's
// roster — where its token is minted, regardless of live view or
// migration overrides.
func (m *Manager) BirthHome(lockID uint32) netproto.NodeID {
	return m.nodes[m.ring.ownerOf(lockID)]
}

// state returns (creating if needed) the local state for a lock. The
// token is born at the lock's ring birth home — never at a stand-in
// manager or a migrated home, which route requests but must not mint
// a second token when the real one survives on some other node (the
// reclaim protocol adopts a token at the stand-in only after
// confirming no survivor holds one). Callers hold m.mu.
func (m *Manager) state(lockID uint32) *lockState {
	st, ok := m.locks[lockID]
	if !ok {
		st = &lockState{haveToken: m.nodes[m.ring.ownerOf(lockID)] == m.tr.Self()}
		m.locks[lockID] = st
	}
	return st
}

// Grant describes a successful acquire.
type Grant struct {
	LockID uint32
	// Seq is the sequence number assigned to this acquire; it tags the
	// transaction's lock record.
	Seq uint64
	// PrevWriteSeq is the sequence number of the last writing holder
	// before this acquire; receivers use it to order updates.
	PrevWriteSeq uint64
}

// Acquire blocks until the lock is held by the caller on this node and
// all remote updates through the token's LastWriteSeq have been applied
// locally (the coherency interlock). Locks follow strict two-phase
// locking: the caller must hold the grant until Release at commit.
func (m *Manager) Acquire(lockID uint32) (Grant, error) {
	return m.acquire(lockID, true, time.Time{})
}

// AcquireTimeout is Acquire bounded by a deadline: if the token does
// not arrive (or the interlock does not clear) within d it returns
// ErrAcquireTimeout. Any token request already sent stays queued; the
// token eventually parks here and a later acquire claims it, so a
// timed-out acquire never loses the token.
func (m *Manager) AcquireTimeout(lockID uint32, d time.Duration) (Grant, error) {
	return m.acquire(lockID, true, time.Now().Add(d))
}

// AcquireNoInterlock acquires the lock token and mutual exclusion but
// does NOT wait for remote updates to be applied. It exists for lazy
// propagation (§2.2): the acquirer itself pulls and applies pending
// log records after the token arrives, then proceeds once
// Applied(lockID) reaches the returned grant's PrevWriteSeq.
func (m *Manager) AcquireNoInterlock(lockID uint32) (Grant, error) {
	return m.acquire(lockID, false, time.Time{})
}

// AcquireNoInterlockTimeout is AcquireNoInterlock with a deadline.
func (m *Manager) AcquireNoInterlockTimeout(lockID uint32, d time.Duration) (Grant, error) {
	return m.acquire(lockID, false, time.Now().Add(d))
}

// AcquireShared takes the lock in shared (read) mode: any number of
// local readers may hold it concurrently, and a reader is admitted
// only once all updates through the token's last write have been
// applied (the same §3.4 interlock as exclusive acquires). Writers —
// local exclusive acquires and remote token requests — wait for the
// readers to drain; once a remote pass is pending, no new readers are
// admitted, so remote waiters cannot starve. Shared grants do not
// advance the lock's sequence number (readers leave no lock records).
// This is an extension beyond the paper's mutex-only prototype,
// matching the coarse read locks of the commercial stores §2.1 cites.
func (m *Manager) AcquireShared(lockID uint32) (Grant, error) {
	return m.acquireShared(lockID, true)
}

// AcquireSharedNoInterlock is AcquireShared without the applied-update
// wait, for lazy propagation (the caller pulls and applies itself).
func (m *Manager) AcquireSharedNoInterlock(lockID uint32) (Grant, error) {
	return m.acquireShared(lockID, false)
}

func (m *Manager) acquireShared(lockID uint32, interlock bool) (Grant, error) {
	start := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state(lockID)
	for {
		if m.closed {
			return Grant{}, ErrClosed
		}
		if st.haveToken && !st.held && !st.hasPend && (!interlock || st.applied >= st.lastWrite) {
			st.readers++
			wait := time.Since(start).Nanoseconds()
			m.stats.Add(metrics.CtrLockAcquires, 1)
			m.stats.Add(metrics.CtrLockWaitNS, wait)
			m.stats.Observe(metrics.HistLockWaitNS, wait)
			return Grant{LockID: lockID, Seq: st.seq, PrevWriteSeq: st.lastWrite}, nil
		}
		if !st.haveToken && !st.requested {
			st.requested = true
			mgr := m.ManagerOf(lockID)
			var req [8]byte
			binary.LittleEndian.PutUint32(req[0:], lockID)
			binary.LittleEndian.PutUint32(req[4:], uint32(m.tr.Self()))
			m.stats.Add(metrics.CtrLockRemote, 1)
			if mgr == m.tr.Self() {
				m.handleLockReqLocked(lockID, m.tr.Self())
			} else {
				m.mu.Unlock()
				err := m.tr.Send(mgr, MsgLockReq, req[:])
				m.mu.Lock()
				if err != nil {
					st.requested = false
					return Grant{}, fmt.Errorf("lockmgr: request lock %d: %w", lockID, err)
				}
			}
			continue
		}
		m.cond.Wait()
	}
}

// ReleaseShared drops one shared hold; when the last reader leaves and
// a remote pass is pending, the token moves on.
func (m *Manager) ReleaseShared(lockID uint32) {
	m.mu.Lock()
	st := m.state(lockID)
	if st.readers == 0 {
		m.mu.Unlock()
		return
	}
	st.readers--
	var passTo netproto.NodeID
	var pass bool
	if st.readers == 0 && !st.held && st.hasPend && st.haveToken {
		passTo, pass = st.pendingTo, true
		st.hasPend = false
		st.haveToken = false
	}
	seq, lw := st.seq, st.lastWrite
	m.cond.Broadcast()
	m.mu.Unlock()
	if pass {
		m.sendToken(passTo, lockID, seq, lw)
	}
}

// Readers reports the current local shared-hold count (diagnostics).
func (m *Manager) Readers(lockID uint32) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state(lockID).readers
}

func (m *Manager) acquire(lockID uint32, interlock bool, deadline time.Time) (Grant, error) {
	start := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state(lockID)
	st.writeWaiters++
	defer func() {
		st.writeWaiters--
		// A timed-out (or failed) last write waiter may leave a parked
		// pass on an idle token; nothing else would move it. Runs
		// before the mutex defer above, so m.mu is still held.
		m.passIfIdleLocked(st, lockID)
	}()
	for {
		if m.closed {
			return Grant{}, ErrClosed
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return Grant{}, fmt.Errorf("%w: lock %d", ErrAcquireTimeout, lockID)
		}
		if st.haveToken && !st.held && st.readers == 0 && (!interlock || st.applied >= st.lastWrite) {
			st.held = true
			st.seq++
			wait := time.Since(start).Nanoseconds()
			m.stats.Add(metrics.CtrLockAcquires, 1)
			m.stats.Add(metrics.CtrLockWaitNS, wait)
			m.stats.Observe(metrics.HistLockWaitNS, wait)
			m.mig.noteLocalGrantLocked(lockID)
			return Grant{LockID: lockID, Seq: st.seq, PrevWriteSeq: st.lastWrite}, nil
		}
		if !st.haveToken && !st.requested {
			st.requested = true
			mgr := m.ManagerOf(lockID)
			var req [8]byte
			binary.LittleEndian.PutUint32(req[0:], lockID)
			binary.LittleEndian.PutUint32(req[4:], uint32(m.tr.Self()))
			m.stats.Add(metrics.CtrLockRemote, 1)
			if mgr == m.tr.Self() {
				m.handleLockReqLocked(lockID, m.tr.Self())
			} else {
				m.mu.Unlock()
				err := m.tr.Send(mgr, MsgLockReq, req[:])
				m.mu.Lock()
				if err != nil {
					st.requested = false
					return Grant{}, fmt.Errorf("lockmgr: request lock %d: %w", lockID, err)
				}
			}
			// The token (or a pass-to-self) may have arrived while the
			// mutex was released above; recheck before sleeping.
			continue
		}
		if deadline.IsZero() {
			m.cond.Wait()
		} else {
			// sync.Cond has no timed wait; a timer broadcast bounds it.
			t := time.AfterFunc(time.Until(deadline), m.cond.Broadcast)
			m.cond.Wait()
			t.Stop()
		}
	}
}

// Release releases a held lock at transaction commit. wrote records
// whether the transaction modified data under the lock; if so the
// lock's LastWriteSeq advances to this holder's Seq and the local
// applied counter follows (our own writes are trivially applied here).
// If a remote waiter is queued the token is passed to it.
func (m *Manager) Release(lockID uint32, wrote bool) {
	m.mu.Lock()
	st := m.state(lockID)
	if !st.held {
		m.mu.Unlock()
		return
	}
	st.held = false
	if wrote {
		st.lastWrite = st.seq
		if st.applied < st.seq {
			st.applied = st.seq
		}
	}
	var passTo netproto.NodeID
	var pass bool
	if st.hasPend {
		passTo, pass = st.pendingTo, true
		st.hasPend = false
		st.haveToken = false
	}
	seq, lw := st.seq, st.lastWrite
	m.cond.Broadcast()
	m.mu.Unlock()

	if pass {
		m.sendToken(passTo, lockID, seq, lw)
	}
}

// sendToken ships the token (with its counters and any piggybacked
// payload) to a peer. Callers must not hold m.mu: the TokenData hook
// may take its own locks. A failed pass is retried in the background
// under capped exponential backoff — a token stranded by a transient
// partition would otherwise deadlock the lock — but the retry loop
// consults the failure detector and gives up once the destination is
// evicted or the attempt cap is reached: the membership layer's
// reclaim protocol re-mints abandoned tokens, so retrying forever into
// a dead peer (the pre-membership behavior) is no longer needed for
// liveness. Receivers tolerate the duplicate deliveries an ambiguous
// failure can produce — re-installing the same counters is idempotent.
func (m *Manager) sendToken(to netproto.NodeID, lockID uint32, seq, lastWrite uint64) {
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], lockID)
	binary.LittleEndian.PutUint64(hdr[4:], seq)
	binary.LittleEndian.PutUint64(hdr[12:], lastWrite)
	m.stats.Add(metrics.CtrLockRemote, 1)
	if to == m.tr.Self() {
		m.onLockToken(m.tr.Self(), hdr[:])
		return
	}
	if !m.peerLive(to) {
		m.stats.Add(metrics.CtrTokenSendsAbandoned, 1)
		return
	}
	msg := hdr[:]
	if td := m.tokenData(); td != nil {
		if blob := td.PrepareToken(lockID, to); len(blob) > 0 {
			msg = append(append(make([]byte, 0, len(hdr)+len(blob)), hdr[:]...), blob...)
		}
	}
	if m.trace.Enabled() {
		m.trace.Emit(obs.Span{
			Name: obs.SpanTokenSend, Lock: lockID, Peer: uint32(to),
			Start: time.Now().UnixNano(), N: int64(seq),
		})
	}
	if err := m.tr.Send(to, MsgLockToken, msg); err != nil {
		if errors.Is(err, netproto.ErrPeerEvicted) {
			m.stats.Add(metrics.CtrTokenSendsAbandoned, 1)
			return
		}
		m.stats.Add(metrics.CtrTokenPassRetries, 1)
		m.stats.Add(metrics.CtrTokenSendRetries, 1)
		cp := append([]byte(nil), msg...)
		m.retryToken(to, cp, 1)
	}
}

// retryToken re-sends a failed token pass with exponentially growing
// delays (doubling from tokenRetryDelay, capped at one second) until
// the send succeeds, the destination is evicted, the attempt cap is
// reached, or the manager closes.
func (m *Manager) retryToken(to netproto.NodeID, msg []byte, attempt int) {
	if attempt >= maxTokenSendAttempts {
		m.stats.Add(metrics.CtrTokenSendsAbandoned, 1)
		return
	}
	delay := tokenRetryDelay << (attempt - 1)
	if delay > time.Second {
		delay = time.Second
	}
	time.AfterFunc(delay, func() {
		m.mu.Lock()
		closed := m.closed
		m.mu.Unlock()
		if closed {
			return
		}
		if !m.peerLive(to) {
			m.stats.Add(metrics.CtrTokenSendsAbandoned, 1)
			return
		}
		err := m.tr.Send(to, MsgLockToken, msg)
		if err == nil {
			return
		}
		if errors.Is(err, netproto.ErrPeerEvicted) {
			m.stats.Add(metrics.CtrTokenSendsAbandoned, 1)
			return
		}
		m.stats.Add(metrics.CtrTokenPassRetries, 1)
		m.stats.Add(metrics.CtrTokenSendRetries, 1)
		m.retryToken(to, msg, attempt+1)
	})
}

// onLockReq runs at the lock's manager: append the requester to the
// distributed queue by forwarding a pass request to the previous tail.
func (m *Manager) onLockReq(from netproto.NodeID, payload []byte) {
	if len(payload) != 8 {
		return
	}
	lockID := binary.LittleEndian.Uint32(payload[0:])
	requester := netproto.NodeID(binary.LittleEndian.Uint32(payload[4:]))
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handleLockReqLocked(lockID, requester)
}

func (m *Manager) handleLockReqLocked(lockID uint32, requester netproto.NodeID) {
	// A request that raced a home migration lands at the old home:
	// bounce it to the migrated manager. One hop terminates — the new
	// home's own override names itself.
	if to, fwd := m.forwardTarget(lockID); fwd {
		var b [8]byte
		binary.LittleEndian.PutUint32(b[0:], lockID)
		binary.LittleEndian.PutUint32(b[4:], uint32(requester))
		m.stats.Add(metrics.CtrLockRemote, 1)
		m.mu.Unlock()
		_ = m.tr.Send(to, MsgLockReq, b[:])
		m.mu.Lock()
		return
	}
	// While this lock's manager role is mid-handoff, requests park
	// until the target acks (then they forward) or the handoff aborts
	// (then they run here).
	if m.mig.bufferLocked(lockID, requester) {
		return
	}
	prevTail, ok := m.tails[lockID]
	if !ok {
		prevTail = m.tr.Self() // token born at the manager
	}
	m.tails[lockID] = requester
	if prevTail == m.tr.Self() {
		m.handleLockPassLocked(lockID, requester)
	} else {
		var b [8]byte
		binary.LittleEndian.PutUint32(b[0:], lockID)
		binary.LittleEndian.PutUint32(b[4:], uint32(requester))
		m.stats.Add(metrics.CtrLockRemote, 1)
		prev := prevTail
		m.mu.Unlock()
		err := m.tr.Send(prev, MsgLockPass, b[:])
		m.mu.Lock()
		_ = err
	}
	// Count the demand last: an evaluation that freezes the role must
	// not strand the request that triggered it. The home's own recalls
	// are counted at grant time instead (noteLocalGrantLocked) so they
	// don't tally twice.
	if requester != m.tr.Self() {
		m.mig.noteWriteLocked(lockID, requester)
	}
}

// onLockPass runs at the previous queue tail: hand the token to `to`
// now if the lock is free, otherwise on release.
func (m *Manager) onLockPass(from netproto.NodeID, payload []byte) {
	if len(payload) != 8 {
		return
	}
	lockID := binary.LittleEndian.Uint32(payload[0:])
	to := netproto.NodeID(binary.LittleEndian.Uint32(payload[4:]))
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handleLockPassLocked(lockID, to)
}

func (m *Manager) handleLockPassLocked(lockID uint32, to netproto.NodeID) {
	if to == m.tr.Self() {
		// The manager queued our own request and we are the previous
		// tail (we already own the token): nothing to pass.
		st := m.state(lockID)
		st.requested = false
		m.cond.Broadcast()
		return
	}
	st := m.state(lockID)
	// Park the successor, then forward immediately only if the token
	// is here with nothing local entitled to it. The guard includes
	// write waiters: a pass can arrive in the window between the token
	// landing here and a parked local acquirer waking to take its
	// turn — forwarding in that window steals the waiter's turn and
	// can strand it behind the successor's unbounded hold.
	st.pendingTo, st.hasPend = to, true
	// Wake cond waiters observing lock state (tests park on it waiting
	// for a successor to be queued; no protocol step needs this).
	m.cond.Broadcast()
	m.passIfIdleLocked(st, lockID)
}

// passIfIdleLocked forwards a parked pass when nothing local can or
// will consume the token: it is present with no holder, no readers,
// and no write waiters. (Write waiters admit even with a pass pending
// and hand the token on at Release; shared waiters yield to a pending
// pass and re-request after it moves on.) Callers hold m.mu; the send
// itself runs with the mutex dropped.
func (m *Manager) passIfIdleLocked(st *lockState, lockID uint32) {
	if !st.hasPend || !st.haveToken || st.held || st.readers > 0 || st.writeWaiters > 0 {
		return
	}
	to := st.pendingTo
	st.hasPend = false
	st.haveToken = false
	seq, lw := st.seq, st.lastWrite
	m.mu.Unlock()
	m.sendToken(to, lockID, seq, lw)
	m.mu.Lock()
}

// onLockToken runs at a requester: the token has arrived.
func (m *Manager) onLockToken(from netproto.NodeID, payload []byte) {
	if len(payload) < 20 {
		return
	}
	lockID := binary.LittleEndian.Uint32(payload[0:])
	seq := binary.LittleEndian.Uint64(payload[4:])
	lw := binary.LittleEndian.Uint64(payload[12:])
	if m.trace.Enabled() {
		m.trace.Emit(obs.Span{
			Name: obs.SpanTokenRecv, Lock: lockID, Peer: uint32(from),
			Start: time.Now().UnixNano(), N: int64(seq),
		})
	}
	if blob := payload[20:]; len(blob) > 0 {
		if td := m.tokenData(); td != nil {
			td.TokenArrived(lockID, from, blob)
		}
	}
	m.mu.Lock()
	st := m.state(lockID)
	st.haveToken = true
	st.requested = false
	st.seq = seq
	st.lastWrite = lw
	m.cond.Broadcast()
	// A successor's pass can outrun the token (they travel from
	// different senders); if it did and only shared waiters (or no
	// one) are parked here, move the token on now — shared waiters
	// refuse to admit past a pending pass, so no later local event
	// would forward it.
	m.passIfIdleLocked(st, lockID)
	m.mu.Unlock()
}

// MarkApplied records that updates through writeSeq for the lock have
// been installed in local memory. Called by the coherency layer's
// applier (and implicitly for our own writes at Release). It wakes
// acquirers blocked on the interlock.
func (m *Manager) MarkApplied(lockID uint32, writeSeq uint64) {
	m.mu.Lock()
	st := m.state(lockID)
	if st.applied < writeSeq {
		st.applied = writeSeq
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Applied returns the highest applied write sequence for the lock.
func (m *Manager) Applied(lockID uint32) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state(lockID).applied
}

// WaitApplied blocks until updates through writeSeq have been applied
// locally (or the manager closes). The coherency applier uses this to
// serialize updates from different nodes (§3.4: hold log records until
// the updates for the preceding sequence number have been applied).
func (m *Manager) WaitApplied(lockID uint32, writeSeq uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state(lockID)
	for st.applied < writeSeq {
		if m.closed {
			return ErrClosed
		}
		m.cond.Wait()
	}
	return nil
}

// AwaitApplied is WaitApplied with a timeout: it returns true once
// updates through writeSeq are applied, or false when the timeout
// elapses or the manager closes. It wakes immediately on MarkApplied
// (no busy polling).
func (m *Manager) AwaitApplied(lockID uint32, writeSeq uint64, d time.Duration) bool {
	deadline := time.Now().Add(d)
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state(lockID)
	for st.applied < writeSeq {
		if m.closed || time.Now().After(deadline) {
			return false
		}
		t := time.AfterFunc(time.Until(deadline), m.cond.Broadcast)
		m.cond.Wait()
		t.Stop()
	}
	return true
}

// --- Crash-recovery surgery ----------------------------------------------
//
// The lock protocol assumes reliable peers: tokens live in volatile
// memory, so a crashed node takes its tokens with it. These calls let
// a supervisor that knows cluster-wide state (the chaos harness, or an
// operator tool) reinstall a coherent token assignment after a crash.
// They must only be used while no acquire for the affected lock is in
// flight (quiesced recovery epochs).

// TokenState returns the lock's token counters and whether this node
// currently owns the token.
func (m *Manager) TokenState(lockID uint32) (seq, lastWrite uint64, have bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state(lockID)
	return st.seq, st.lastWrite, st.haveToken
}

// AdoptToken force-installs token ownership with the given counters —
// used when the previous holder crashed and its token state was
// salvaged (or reconstructed from the logs). The interlock still
// applies: an acquire waits until updates through lastWrite have been
// applied locally.
func (m *Manager) AdoptToken(lockID uint32, seq, lastWrite uint64) {
	m.mu.Lock()
	st := m.state(lockID)
	st.haveToken = true
	st.requested = false
	st.hasPend = false
	st.seq = seq
	st.lastWrite = lastWrite
	m.cond.Broadcast()
	m.mu.Unlock()
}

// AdoptTokenKeepQueue is AdoptToken for live reclaim: a request that
// raced the eviction may already have parked a pass here, and dropping
// it (as AdoptToken does for quiesced crash surgery) would strand the
// requester. The parked pass is kept and forwarded if nothing local is
// entitled to the token.
func (m *Manager) AdoptTokenKeepQueue(lockID uint32, seq, lastWrite uint64) {
	m.mu.Lock()
	st := m.state(lockID)
	st.haveToken = true
	st.requested = false
	st.seq = seq
	st.lastWrite = lastWrite
	m.cond.Broadcast()
	m.passIfIdleLocked(st, lockID)
	m.mu.Unlock()
}

// ForfeitToken clears local token ownership: a restarted node's fresh
// state claims the tokens it manages, but some may have been adopted
// elsewhere while it was down.
func (m *Manager) ForfeitToken(lockID uint32) {
	m.mu.Lock()
	st := m.state(lockID)
	st.haveToken = false
	st.requested = false
	st.hasPend = false
	m.cond.Broadcast()
	m.mu.Unlock()
}

// EvictPeer purges a dead peer from this node's volatile lock state:
// parked passes destined for it are dropped (the token stays here
// instead of launching at a corpse), manager-side queue tails pointing
// at it are cleared (the next request forwards from the manager's own
// token, or from whatever tail reclaim installs), and request flags
// for locks whose token is absent are reset so parked acquirers
// re-request from the lock's post-eviction manager. Like the rest of
// the surgery API it assumes no acquire for the affected locks is in
// flight (the membership layer evicts between quiesced rounds; a
// re-request racing an in-flight one only costs a duplicate queue
// entry, which the pass protocol tolerates as a duplicate delivery).
func (m *Manager) EvictPeer(peer netproto.NodeID) {
	m.mu.Lock()
	for _, st := range m.locks {
		if st.hasPend && st.pendingTo == peer {
			st.hasPend = false
		}
		if !st.haveToken && st.requested {
			st.requested = false
		}
	}
	for lockID, tail := range m.tails {
		if tail == peer {
			delete(m.tails, lockID)
		}
	}
	m.mig.forgetPeerLocked(peer)
	m.cond.Broadcast()
	m.mu.Unlock()

	// Migrated homes pointing at the corpse lose the role; resolved
	// routes through it are stale either way.
	m.routeMu.Lock()
	for lockID, ov := range m.overrides {
		if ov == peer {
			delete(m.overrides, lockID)
		}
	}
	clear(m.homeCache)
	m.routeMu.Unlock()
}

// SetQueueTail repairs this node's manager-side waiter queue: the next
// MsgLockReq for the lock is forwarded to tail (the current token
// holder after recovery) instead of a node that may no longer exist.
func (m *Manager) SetQueueTail(lockID uint32, tail netproto.NodeID) {
	m.mu.Lock()
	if tail == m.tr.Self() {
		delete(m.tails, lockID)
	} else {
		m.tails[lockID] = tail
	}
	m.mu.Unlock()
}

// Holding reports whether the lock is currently held on this node.
func (m *Manager) Holding(lockID uint32) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state(lockID).held
}

// HasToken reports whether this node owns the lock's token.
func (m *Manager) HasToken(lockID uint32) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state(lockID).haveToken
}

// Close unblocks all waiters with ErrClosed.
func (m *Manager) Close() error {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	return nil
}
