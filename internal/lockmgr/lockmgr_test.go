package lockmgr

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lbc/internal/netproto"
)

// cluster builds n in-process lock manager endpoints on a shared hub.
func cluster(t *testing.T, n int) []*Manager {
	t.Helper()
	hub := netproto.NewHub()
	ids := make([]netproto.NodeID, n)
	for i := range ids {
		ids[i] = netproto.NodeID(i + 1)
	}
	ms := make([]*Manager, n)
	for i := range ids {
		ep := hub.Endpoint(ids[i])
		ms[i] = New(ep, ids, nil)
		m := ms[i]
		t.Cleanup(func() { m.Close() })
	}
	return ms
}

// awaitLockState blocks until pred holds for the lock's state on m,
// waking on the manager's own cond broadcasts (every protocol step
// broadcasts, so no polling is involved beyond a safety-net timer).
func awaitLockState(t *testing.T, m *Manager, lockID uint32, pred func(st *lockState) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state(lockID)
	for !pred(st) {
		if time.Now().After(deadline) {
			t.Fatal("lock state condition not reached")
		}
		tm := time.AfterFunc(10*time.Millisecond, m.cond.Broadcast)
		m.cond.Wait()
		tm.Stop()
	}
}

// lockHomedAt returns a small lock id whose ring birth home is home
// on the roster {1..n} (the cluster helper's ids).
func lockHomedAt(t *testing.T, n int, home netproto.NodeID) uint32 {
	t.Helper()
	ids := make([]netproto.NodeID, n)
	for i := range ids {
		ids[i] = netproto.NodeID(i + 1)
	}
	for l := uint32(1); l < 4096; l++ {
		if HomeOf(ids, l) == home {
			return l
		}
	}
	t.Fatalf("no lock homed at node %d among 4096 ids", home)
	return 0
}

// acquire with a test timeout so protocol bugs fail fast.
func mustAcquire(t *testing.T, m *Manager, lockID uint32) Grant {
	t.Helper()
	type res struct {
		g   Grant
		err error
	}
	ch := make(chan res, 1)
	go func() {
		g, err := m.Acquire(lockID)
		ch <- res{g, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("acquire: %v", r.err)
		}
		return r.g
	case <-time.After(5 * time.Second):
		t.Fatalf("acquire of lock %d timed out", lockID)
		return Grant{}
	}
}

func TestLocalAcquireNoMessages(t *testing.T) {
	ms := cluster(t, 2)
	lock := lockHomedAt(t, 2, 1) // ring birth home = node 1
	mgr := ms[0]
	if mgr.ManagerOf(lock) != 1 {
		t.Fatalf("manager of lock %d = %d", lock, mgr.ManagerOf(lock))
	}
	g := mustAcquire(t, mgr, lock)
	if g.Seq != 1 || g.PrevWriteSeq != 0 {
		t.Fatalf("grant = %+v", g)
	}
	if !mgr.Holding(lock) {
		t.Fatal("not holding after acquire")
	}
	mgr.Release(lock, true)
	if mgr.Holding(lock) {
		t.Fatal("still holding after release")
	}
	// Sequence numbers increment per acquire; lastWrite followed.
	g2 := mustAcquire(t, mgr, lock)
	if g2.Seq != 2 || g2.PrevWriteSeq != 1 {
		t.Fatalf("second grant = %+v", g2)
	}
}

func TestRemoteAcquire(t *testing.T) {
	ms := cluster(t, 2)
	lock := lockHomedAt(t, 2, 1) // homed at node 1; node 2 acquires remotely
	g := mustAcquire(t, ms[1], lock)
	if g.Seq != 1 {
		t.Fatalf("grant = %+v", g)
	}
	if !ms[1].HasToken(lock) || ms[0].HasToken(lock) {
		t.Fatal("token did not move to node 2")
	}
	ms[1].Release(lock, false)
	// Node 2 now owns the token: local re-acquire.
	g2 := mustAcquire(t, ms[1], lock)
	if g2.Seq != 2 {
		t.Fatalf("re-grant = %+v", g2)
	}
}

func TestTokenPassingChain(t *testing.T) {
	ms := cluster(t, 3)
	const lock = 3 // managed by nodes[0] = node 1
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := ms[i].Acquire(lock)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			_ = g
			time.Sleep(time.Millisecond)
			ms[i].Release(lock, false)
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("token chain deadlocked")
	}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestMutualExclusion(t *testing.T) {
	ms := cluster(t, 4)
	const lock = 5
	var inCrit atomic.Int32
	var maxSeen atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		for rep := 0; rep < 5; rep++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := ms[i].Acquire(lock); err != nil {
					t.Error(err)
					return
				}
				n := inCrit.Add(1)
				if n > maxSeen.Load() {
					maxSeen.Store(n)
				}
				time.Sleep(100 * time.Microsecond)
				inCrit.Add(-1)
				ms[i].Release(lock, false)
			}(i)
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock under contention")
	}
	if maxSeen.Load() != 1 {
		t.Fatalf("mutual exclusion violated: %d concurrent holders", maxSeen.Load())
	}
}

func TestSequenceNumbersGloballyIncrease(t *testing.T) {
	ms := cluster(t, 3)
	const lock = 7
	var seqs []uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		for rep := 0; rep < 10; rep++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				g, err := ms[i].Acquire(lock)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				seqs = append(seqs, g.Seq)
				mu.Unlock()
				ms[i].Release(lock, false)
			}(i)
		}
	}
	wg.Wait()
	if len(seqs) != 30 {
		t.Fatalf("%d acquires", len(seqs))
	}
	// Acquire order == append order under the lock, so seqs must be
	// exactly 1..30.
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seq[%d] = %d", i, s)
		}
	}
}

func TestInterlockBlocksUntilApplied(t *testing.T) {
	ms := cluster(t, 2)
	const lock = 2 // managed by node 1

	// Node 1 writes under the lock (seq 1) and releases.
	g := mustAcquire(t, ms[0], lock)
	ms[0].Release(lock, true)
	if g.Seq != 1 {
		t.Fatalf("grant = %+v", g)
	}

	// Node 2 requests the lock. The token says lastWrite=1, but node 2
	// has not applied update 1 yet: acquire must block.
	acquired := make(chan Grant, 1)
	go func() {
		g, err := ms[1].Acquire(lock)
		if err == nil {
			acquired <- g
		}
	}()
	select {
	case <-acquired:
		t.Fatal("acquire succeeded before update applied (interlock broken)")
	case <-time.After(50 * time.Millisecond):
	}

	// The receiver thread applies update 1; acquire must now proceed.
	ms[1].MarkApplied(lock, 1)
	select {
	case g := <-acquired:
		if g.Seq != 2 || g.PrevWriteSeq != 1 {
			t.Fatalf("grant after apply = %+v", g)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("acquire still blocked after MarkApplied")
	}
}

func TestWaitApplied(t *testing.T) {
	ms := cluster(t, 2)
	done := make(chan error, 1)
	go func() { done <- ms[1].WaitApplied(9, 3) }()
	select {
	case <-done:
		t.Fatal("WaitApplied returned early")
	case <-time.After(20 * time.Millisecond):
	}
	ms[1].MarkApplied(9, 2)
	select {
	case <-done:
		t.Fatal("WaitApplied returned at seq 2 < 3")
	case <-time.After(20 * time.Millisecond):
	}
	ms[1].MarkApplied(9, 3)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitApplied stuck")
	}
	if ms[1].Applied(9) != 3 {
		t.Fatalf("applied = %d", ms[1].Applied(9))
	}
}

func TestReadOnlyHoldersDoNotAdvanceLastWrite(t *testing.T) {
	ms := cluster(t, 2)
	const lock = 2
	g1 := mustAcquire(t, ms[0], lock)
	ms[0].Release(lock, true) // write at seq 1
	_ = g1

	ms[0].MarkApplied(lock, 1)
	g2 := mustAcquire(t, ms[0], lock)
	ms[0].Release(lock, false) // read-only at seq 2
	if g2.Seq != 2 || g2.PrevWriteSeq != 1 {
		t.Fatalf("g2 = %+v", g2)
	}

	// Remote acquire: token's lastWrite must still be 1 (not 2), so
	// applying update 1 suffices.
	ms[1].MarkApplied(lock, 1)
	g3 := mustAcquire(t, ms[1], lock)
	if g3.Seq != 3 || g3.PrevWriteSeq != 1 {
		t.Fatalf("g3 = %+v", g3)
	}
}

func TestCloseUnblocksWaiters(t *testing.T) {
	ms := cluster(t, 2)
	const lock = 2
	mustAcquire(t, ms[0], lock) // hold it and never release

	errs := make(chan error, 1)
	go func() {
		_, err := ms[1].Acquire(lock)
		errs <- err
	}()
	// Deterministic: the acquirer marks the lock requested before
	// parking, so this observes it genuinely waiting.
	awaitLockState(t, ms[1], lock, func(st *lockState) bool { return st.requested })
	ms[1].Close()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not unblocked by Close")
	}
}

func TestReleaseWithoutHoldIsNoop(t *testing.T) {
	ms := cluster(t, 2)
	ms[0].Release(2, true) // must not panic or corrupt state
	g := mustAcquire(t, ms[0], 2)
	if g.Seq != 1 {
		t.Fatalf("grant = %+v", g)
	}
}

func TestManyLocksSpreadAcrossManagers(t *testing.T) {
	ms := cluster(t, 3)
	seen := map[netproto.NodeID]bool{}
	for l := uint32(0); l < 32; l++ {
		seen[ms[0].ManagerOf(l)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("managers used: %v", seen)
	}
	// Acquire a batch of locks from every node, sequentially.
	for _, m := range ms {
		for l := uint32(0); l < 9; l++ {
			mustAcquire(t, m, l)
			m.Release(l, false)
		}
	}
}

func TestOverTCP(t *testing.T) {
	a, err := netproto.NewTCPMesh(1, "127.0.0.1:0", map[netproto.NodeID]string{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := netproto.NewTCPMesh(2, "127.0.0.1:0", map[netproto.NodeID]string{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	a.SetPeer(2, b.Addr())
	b.SetPeer(1, a.Addr())
	ids := []netproto.NodeID{1, 2}
	ma := New(a, ids, nil)
	mb := New(b, ids, nil)
	t.Cleanup(func() { ma.Close(); mb.Close() })

	const lock = 2 // managed by node 1
	g := mustAcquire(t, mb, lock)
	if g.Seq != 1 {
		t.Fatalf("grant = %+v", g)
	}
	mb.Release(lock, true)
	mb.MarkApplied(lock, 1)
	ma.MarkApplied(lock, 1)
	g2 := mustAcquire(t, ma, lock)
	if g2.Seq != 2 || g2.PrevWriteSeq != 1 {
		t.Fatalf("grant 2 = %+v", g2)
	}
}

func TestAcquireNoInterlock(t *testing.T) {
	ms := cluster(t, 2)
	const lock = 2
	// Node 1 writes (chain advances to 1) and releases.
	mustAcquire(t, ms[0], lock)
	ms[0].Release(lock, true)

	// Node 2 has applied nothing: the normal acquire would block, but
	// AcquireNoInterlock returns as soon as the token arrives.
	done := make(chan Grant, 1)
	go func() {
		g, err := ms[1].AcquireNoInterlock(lock)
		if err == nil {
			done <- g
		}
	}()
	select {
	case g := <-done:
		if g.Seq != 2 || g.PrevWriteSeq != 1 {
			t.Fatalf("grant = %+v", g)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AcquireNoInterlock blocked on the interlock")
	}
	// The lazy path then applies and waits explicitly.
	ms[1].MarkApplied(lock, 1)
	if err := ms[1].WaitApplied(lock, 1); err != nil {
		t.Fatal(err)
	}
	ms[1].Release(lock, false)
}

func TestManagerReacquiresAfterPassing(t *testing.T) {
	ms := cluster(t, 2)
	const lock = 2 // managed by node 1
	// Node 2 takes the token away.
	mustAcquire(t, ms[1], lock)
	ms[1].Release(lock, false)
	if ms[0].HasToken(lock) {
		t.Fatal("manager still has token")
	}
	// The manager requests its own lock back through the queue.
	g := mustAcquire(t, ms[0], lock)
	if g.Seq != 2 {
		t.Fatalf("grant = %+v", g)
	}
	ms[0].Release(lock, false)
}

func TestHolderReacquiresOwnToken(t *testing.T) {
	ms := cluster(t, 2)
	lock := lockHomedAt(t, 2, 2) // ring birth home = node 2
	if ms[0].ManagerOf(lock) != 2 {
		t.Fatalf("manager = %d", ms[0].ManagerOf(lock))
	}
	// Node 1 acquires remotely, releases, and re-acquires: the second
	// acquire is purely local (token stays until requested).
	mustAcquire(t, ms[0], lock)
	ms[0].Release(lock, false)
	remoteBefore := ms[0].Stats()
	_ = remoteBefore
	g := mustAcquire(t, ms[0], lock)
	if g.Seq != 2 {
		t.Fatalf("grant = %+v", g)
	}
	ms[0].Release(lock, false)
}

func TestLockWaitCounterAccrues(t *testing.T) {
	ms := cluster(t, 2)
	mustAcquire(t, ms[0], 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := ms[1].Acquire(2); err == nil {
			ms[1].Release(2, false)
		}
	}()
	// Deterministic wait for the successor to be queued at the holder —
	// from here on the acquirer is provably blocked — then hold the lock
	// a further 20ms as the interval the counter must account for.
	awaitLockState(t, ms[0], 2, func(st *lockState) bool { return st.hasPend })
	time.Sleep(20 * time.Millisecond)
	ms[0].Release(2, false)
	<-done
	if ms[1].Stats().Counter("lock_wait_ns") < int64(10*time.Millisecond) {
		t.Fatalf("lock wait = %dns", ms[1].Stats().Counter("lock_wait_ns"))
	}
}
