package lockmgr

import (
	"sync"
	"testing"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/netproto"
)

// shrinkMigrationWindow makes the decay-counted stats trip after a
// handful of observations so tests drive a handoff quickly.
func shrinkMigrationWindow(t *testing.T) {
	t.Helper()
	w, mo := statsWindow, minMigObs
	statsWindow, minMigObs = 8, 2
	t.Cleanup(func() { statsWindow, minMigObs = w, mo })
}

// awaitMigratedHome polls until every manager resolves the lock's
// manager to want.
func awaitMigratedHome(t *testing.T, ms []*Manager, lock uint32, want netproto.NodeID) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		all := true
		for _, m := range ms {
			if m.ManagerOf(lock) != want {
				all = false
				break
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			for i, m := range ms {
				t.Logf("node %d: ManagerOf = %d", i+1, m.ManagerOf(lock))
			}
			t.Fatalf("lock %d never migrated to node %d", lock, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMigrationMovesHomeToDominantWriter(t *testing.T) {
	shrinkMigrationWindow(t)
	ms := cluster(t, 3)
	for _, m := range ms {
		m.EnableMigration(nil)
	}
	lock := lockHomedAt(t, 3, 1) // birth home = node 1

	// Node 3 dominates the lock, with nodes 1 and 2 pulling the token
	// away between its acquires so it keeps re-requesting through the
	// home — that request stream is the decay counter's demand signal.
	// (A writer that keeps the token never re-requests: pure
	// single-writer locks generate no signal, and need no migration
	// either.) Per 4 acquires the home counts node 3 twice and the
	// others once each, so node 3 dominates every window.
	total := driveMigration(t, ms, lock)
	awaitMigratedHome(t, ms, lock, 3)
	if ms[0].Stats().Counter(metrics.CtrLockMigrations) != 1 {
		t.Fatalf("lock_home_migrations = %d at the old home, want 1",
			ms[0].Stats().Counter(metrics.CtrLockMigrations))
	}

	// The chain survives the move gap-free: acquires from every node
	// keep incrementing the same sequence, one per grant.
	mustChainGapFree(t, ms, lock, total)
}

func TestMigrationRevertsWhenTargetEvicted(t *testing.T) {
	ms := cluster(t, 3)
	for _, m := range ms {
		m.EnableMigration(nil)
	}
	lock := lockHomedAt(t, 3, 1)

	// Install a migrated home at node 3 everywhere (as a completed
	// handoff would), then evict node 3: the override must drop and
	// mint/management authority revert to the ring birth home.
	for _, m := range ms {
		m.setOverride(lock, 3)
	}
	if ms[1].ManagerOf(lock) != 3 {
		t.Fatalf("override not honored: ManagerOf = %d", ms[1].ManagerOf(lock))
	}
	dead := map[netproto.NodeID]bool{3: true}
	for _, m := range ms[:2] {
		m.SetLiveView(liveView(dead))
		m.EvictPeer(3)
	}
	for _, m := range ms[:2] {
		if got := m.ManagerOf(lock); got != 1 {
			t.Fatalf("post-eviction manager = %d, want birth home 1", got)
		}
		if _, ok := m.MigratedHome(lock); ok {
			t.Fatal("override to the evicted target survived EvictPeer")
		}
	}
}

func TestInflightMigrationAbortsOnTargetEviction(t *testing.T) {
	ms := cluster(t, 3)
	for _, m := range ms {
		m.EnableMigration(nil)
	}
	lock := lockHomedAt(t, 3, 1)

	// Freeze the manager role at node 1 with a hand-built in-flight
	// handoff to node 3 (as if the offer frame were lost), and park a
	// request from node 2 behind it.
	m := ms[0]
	m.mu.Lock()
	inf := &migInflight{target: 3, epoch: 0}
	inf.timer = time.AfterFunc(time.Hour, func() {})
	m.mig.inflight[lock] = inf
	m.mu.Unlock()

	errs := make(chan error, 1)
	go func() {
		_, err := ms[1].Acquire(lock)
		errs <- err
	}()
	m.mu.Lock()
	deadline := time.Now().Add(5 * time.Second)
	for len(inf.buf) == 0 && time.Now().Before(deadline) {
		m.mu.Unlock()
		time.Sleep(time.Millisecond)
		m.mu.Lock()
	}
	buffered := len(inf.buf)
	m.mu.Unlock()
	if buffered == 0 {
		t.Fatal("request was not parked behind the in-flight handoff")
	}

	// The target dies before acking: EvictPeer must abort the handoff
	// and drain the parked request locally, unblocking the waiter.
	dead := map[netproto.NodeID]bool{3: true}
	for _, mm := range ms[:2] {
		mm.SetLiveView(liveView(dead))
		mm.EvictPeer(3)
	}
	select {
	case err := <-errs:
		if err != nil {
			t.Fatalf("parked waiter: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("aborted handoff stranded the parked request")
	}
	if ms[0].Stats().Counter(metrics.CtrLockMigrationsAborted) == 0 {
		t.Fatal("abort not counted")
	}
	ms[1].Release(lock, false)
}

func TestHomeUpdateIgnoresOtherEpochsAndDeadHome(t *testing.T) {
	ms := cluster(t, 3)
	epoch := uint32(5)
	ms[0].EnableMigration(func() uint32 { return epoch })
	lock := lockHomedAt(t, 3, 1)

	// A HomeUpdate fenced at an older epoch must be ignored.
	var hu [12]byte
	putU32 := func(b []byte, v uint32) {
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	putU32(hu[0:], lock)
	putU32(hu[4:], 4) // epoch 4 < 5
	putU32(hu[8:], 3)
	ms[0].onHomeUpdate(3, hu[:])
	if _, ok := ms[0].MigratedHome(lock); ok {
		t.Fatal("stale-epoch HomeUpdate installed an override")
	}

	// A newer epoch means this node lags the membership round: the
	// fence is strict equality, so that frame is dropped too.
	putU32(hu[4:], 6) // epoch 6 > 5
	ms[0].onHomeUpdate(3, hu[:])
	if _, ok := ms[0].MigratedHome(lock); ok {
		t.Fatal("newer-epoch HomeUpdate installed an override")
	}

	// Same frame at the current epoch but naming a dead home: ignored.
	dead := map[netproto.NodeID]bool{3: true}
	ms[0].SetLiveView(liveView(dead))
	putU32(hu[4:], 5)
	ms[0].onHomeUpdate(3, hu[:])
	if _, ok := ms[0].MigratedHome(lock); ok {
		t.Fatal("HomeUpdate naming an evicted home installed an override")
	}

	// Live home at the current epoch: installed.
	delete(dead, 3)
	ms[0].InvalidateRoutes()
	ms[0].onHomeUpdate(3, hu[:])
	if ov, ok := ms[0].MigratedHome(lock); !ok || ov != 3 {
		t.Fatalf("override = (%d, %v), want (3, true)", ov, ok)
	}
	if ms[0].ManagerOf(lock) != 3 {
		t.Fatalf("ManagerOf = %d, want 3", ms[0].ManagerOf(lock))
	}
}

func TestMigrateOfferRefusedOffEpoch(t *testing.T) {
	ms := cluster(t, 2)
	epoch := uint32(7)
	ms[1].EnableMigration(func() uint32 { return epoch })
	lock := lockHomedAt(t, 2, 1)

	// Offers fenced at any epoch other than the receiver's — older
	// (the frame straddles a view change behind us) or newer (we lag
	// the membership round) — must be refused: no tail install, no
	// override, nack on the wire.
	for _, frameEpoch := range []uint32{6, 8} {
		var b [17]byte
		b[0], b[1], b[2], b[3] = byte(lock), byte(lock>>8), byte(lock>>16), byte(lock>>24)
		b[4] = byte(frameEpoch)
		b[8] = 1  // handoff id
		b[12] = 1 // hasTail
		b[13] = 1 // tail = node 1
		ms[1].onMigrate(1, b[:])
		if _, ok := ms[1].MigratedHome(lock); ok {
			t.Fatalf("epoch-%d offer adopted the manager role (local epoch 7)", frameEpoch)
		}
		ms[1].mu.Lock()
		_, hasTail := ms[1].tails[lock]
		ms[1].mu.Unlock()
		if hasTail {
			t.Fatalf("epoch-%d offer installed a queue tail", frameEpoch)
		}
	}
}

// dropTransport wraps an endpoint and swallows frames the drop
// predicate selects — simulated loss on an otherwise reliable link.
type dropTransport struct {
	netproto.Transport
	mu   sync.Mutex
	drop func(to netproto.NodeID, typ uint8) bool
}

func (d *dropTransport) Send(to netproto.NodeID, typ uint8, payload []byte) error {
	d.mu.Lock()
	dropped := d.drop != nil && d.drop(to, typ)
	d.mu.Unlock()
	if dropped {
		return nil
	}
	return d.Transport.Send(to, typ, payload)
}

// clusterDropping is cluster() with node i's endpoint wrapped in a
// dropTransport; setDrop installs the loss predicates after build.
func clusterDropping(t *testing.T, n int) ([]*Manager, []*dropTransport) {
	t.Helper()
	hub := netproto.NewHub()
	ids := make([]netproto.NodeID, n)
	for i := range ids {
		ids[i] = netproto.NodeID(i + 1)
	}
	ms := make([]*Manager, n)
	dts := make([]*dropTransport, n)
	for i := range ids {
		dt := &dropTransport{Transport: hub.Endpoint(ids[i])}
		dts[i] = dt
		ms[i] = New(dt, ids, nil)
		m := ms[i]
		t.Cleanup(func() { m.Close() })
	}
	return ms, dts
}

// driveMigration generates the dominant-writer traffic pattern of
// TestMigrationMovesHomeToDominantWriter (node 3 dominating a lock
// homed at node 1) and returns the acquire count.
func driveMigration(t *testing.T, ms []*Manager, lock uint32) int {
	t.Helper()
	total := 0
	for i := 0; i < 48; i++ {
		w := ms[2]
		switch i % 4 {
		case 1:
			w = ms[0]
		case 3:
			w = ms[1]
		}
		mustAcquire(t, w, lock)
		w.Release(lock, false)
		total++
	}
	return total
}

// mustChainGapFree asserts acquires from every node keep extending
// the same per-lock sequence, one per grant, starting after `total`.
func mustChainGapFree(t *testing.T, ms []*Manager, lock uint32, total int) {
	t.Helper()
	for i := 0; i < 9; i++ {
		g := mustAcquire(t, ms[i%3], lock)
		total++
		if g.Seq != uint64(total) {
			t.Fatalf("grant %d: seq = %d, want %d (chain gap across migration)", i, g.Seq, total)
		}
		ms[i%3].Release(lock, false)
	}
}

// A lost accept-ack must not abort the handoff into split-brain: the
// target has already committed, and the old home learns of the commit
// from the target's home-update broadcast (which includes the old
// home) even though the ack never arrives.
func TestMigrationCommitsDespiteLostAck(t *testing.T) {
	shrinkMigrationWindow(t)
	ms, dts := clusterDropping(t, 3)
	for _, m := range ms {
		m.EnableMigration(nil)
	}
	lock := lockHomedAt(t, 3, 1)

	// Node 3 (the migration target) loses every accept-ack it sends.
	dts[2].mu.Lock()
	dts[2].drop = func(to netproto.NodeID, typ uint8) bool { return typ == MsgMigrateAck }
	dts[2].mu.Unlock()

	total := driveMigration(t, ms, lock)
	awaitMigratedHome(t, ms, lock, 3)
	if got := ms[0].Stats().Counter(metrics.CtrLockMigrations); got != 1 {
		t.Fatalf("lock_home_migrations = %d at the old home, want 1", got)
	}
	if got := ms[0].Stats().Counter(metrics.CtrLockMigrationsAborted); got != 0 {
		t.Fatalf("lock_home_migrations_aborted = %d, want 0 (timeout abort would split the role)", got)
	}
	mustChainGapFree(t, ms, lock, total)
}

// When both the accept-ack and the old home's copy of the home-update
// broadcast are lost, the old home must keep the role frozen and
// re-send the offer — never revert to local management — until the
// target's re-ack (idempotent duplicate offer) resolves the handoff.
func TestMigrationRetriesOfferUntilAckArrives(t *testing.T) {
	shrinkMigrationWindow(t)
	oldTimeout := migrateTimeout
	migrateTimeout = 50 * time.Millisecond
	t.Cleanup(func() { migrateTimeout = oldTimeout })

	ms, dts := clusterDropping(t, 3)
	for _, m := range ms {
		m.EnableMigration(nil)
	}
	lock := lockHomedAt(t, 3, 1)

	// Node 3 loses its first accept-ack and every home update aimed at
	// the old home, so only a re-sent offer can resolve the handoff.
	var ackDrops int
	dts[2].mu.Lock()
	dts[2].drop = func(to netproto.NodeID, typ uint8) bool {
		switch typ {
		case MsgMigrateAck:
			ackDrops++
			return ackDrops == 1
		case MsgHomeUpdate:
			return to == 1
		}
		return false
	}
	dts[2].mu.Unlock()

	total := driveMigration(t, ms, lock)
	awaitMigratedHome(t, ms, lock, 3)
	if got := ms[0].Stats().Counter(metrics.CtrLockMigrations); got != 1 {
		t.Fatalf("lock_home_migrations = %d at the old home, want 1", got)
	}
	if got := ms[0].Stats().Counter(metrics.CtrLockMigrationsAborted); got != 0 {
		t.Fatalf("lock_home_migrations_aborted = %d, want 0", got)
	}
	if got := ms[0].Stats().Counter(metrics.CtrLockMigrationRetries); got == 0 {
		t.Fatal("no offer retries counted; the handoff resolved some other way")
	}
	mustChainGapFree(t, ms, lock, total)
}
