package lockmgr

import (
	"sort"

	"lbc/internal/netproto"
)

// Consistent-hash placement of lock homes (the sharded coherency
// plane). Each roster node projects ringVnodes virtual points onto a
// 64-bit ring; a lock's birth home is the owner of the first point at
// or after the lock's own hash. Placement is a pure function of the
// ordered roster — every node computes the identical ring, so token
// birth (exactly-one-mint) needs no coordination. Liveness is layered
// on top: routing walks the ring's distinct owners in point order and
// picks the first live one, replacing the old static `id % n` slot
// and its linear roster scan.
const ringVnodes = 16

// splitmix64 is the finalizer of the splitmix64 PRNG — a cheap,
// well-distributed 64-bit mixer (public domain, Vigna).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// lockPoint is the ring position of a lock id.
func lockPoint(lockID uint32) uint64 {
	return splitmix64(uint64(lockID))
}

// ring is an immutable consistent-hash ring over a fixed roster.
type ring struct {
	hashes []uint64 // sorted virtual-point positions
	owners []int    // roster index owning hashes[i]
}

// buildRing places ringVnodes points per roster node. Point positions
// hash the node id with the virtual-point index so rosters with the
// same ids always produce the same ring, regardless of roster order.
func buildRing(nodes []netproto.NodeID) *ring {
	r := &ring{
		hashes: make([]uint64, 0, len(nodes)*ringVnodes),
		owners: make([]int, 0, len(nodes)*ringVnodes),
	}
	type pt struct {
		h   uint64
		idx int
	}
	pts := make([]pt, 0, len(nodes)*ringVnodes)
	for i, id := range nodes {
		for v := 0; v < ringVnodes; v++ {
			h := splitmix64(uint64(id)<<20 | uint64(v)<<1 | 1)
			pts = append(pts, pt{h, i})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].h != pts[b].h {
			return pts[a].h < pts[b].h
		}
		// Tie-break on node id so equal hashes (vanishingly rare but
		// possible) still order identically on every node.
		return nodes[pts[a].idx] < nodes[pts[b].idx]
	})
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.owners = append(r.owners, p.idx)
	}
	return r
}

// ownerOf returns the roster index of the lock's birth home: the
// owner of the first virtual point at or after the lock's position
// (wrapping past the top of the ring).
func (r *ring) ownerOf(lockID uint32) int {
	h := lockPoint(lockID)
	i := sort.Search(len(r.hashes), func(k int) bool { return r.hashes[k] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owners[i]
}

// walk visits the ring's distinct owners in point order starting at
// the lock's position, calling visit for each until it returns false
// or every roster node has been seen. This is the route-around order:
// the first live owner visited is the lock's current manager.
func (r *ring) walk(lockID uint32, n int, visit func(idx int) bool) {
	h := lockPoint(lockID)
	start := sort.Search(len(r.hashes), func(k int) bool { return r.hashes[k] >= h })
	seen := make([]bool, n)
	found := 0
	for k := 0; k < len(r.hashes) && found < n; k++ {
		idx := r.owners[(start+k)%len(r.hashes)]
		if seen[idx] {
			continue
		}
		seen[idx] = true
		found++
		if !visit(idx) {
			return
		}
	}
}

// HomeOf returns lock id's birth home under consistent-hash placement
// over the given roster — the node that mints the lock's token. All
// callers that once assumed the static `id % n` slot (cluster crash
// surgery, the chaos harness) must use this instead. It rebuilds the
// ring per call; callers resolving many locks against one roster
// should build a Ring once instead.
func HomeOf(nodes []netproto.NodeID, lockID uint32) netproto.NodeID {
	return nodes[buildRing(nodes).ownerOf(lockID)]
}

// Ring is a prebuilt consistent-hash placement over a fixed roster,
// amortizing the O(nodes·vnodes·log) ring construction across many
// HomeOf resolutions (cluster crash-surgery loops, the chaos
// harness).
type Ring struct {
	nodes []netproto.NodeID
	r     *ring
}

// NewRing builds the placement ring for the roster once.
func NewRing(nodes []netproto.NodeID) *Ring {
	ns := append([]netproto.NodeID(nil), nodes...)
	return &Ring{nodes: ns, r: buildRing(ns)}
}

// HomeOf returns lock id's birth home on the prebuilt ring.
func (pr *Ring) HomeOf(lockID uint32) netproto.NodeID {
	return pr.nodes[pr.r.ownerOf(lockID)]
}
