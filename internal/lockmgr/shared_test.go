package lockmgr

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSharedHoldersOverlap(t *testing.T) {
	ms := cluster(t, 2)
	const lock = 2
	var concurrent, maxSeen atomic.Int32
	var wg sync.WaitGroup
	barrier := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ms[0].AcquireShared(lock); err != nil {
				t.Error(err)
				return
			}
			n := concurrent.Add(1)
			for {
				old := maxSeen.Load()
				if n <= old || maxSeen.CompareAndSwap(old, n) {
					break
				}
			}
			<-barrier // hold until everyone is in
			concurrent.Add(-1)
			ms[0].ReleaseShared(lock)
		}()
	}
	// Wait until all four readers are inside, then release them.
	deadline := time.Now().Add(5 * time.Second)
	for maxSeen.Load() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d concurrent readers", maxSeen.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(barrier)
	wg.Wait()
	if ms[0].Readers(lock) != 0 {
		t.Fatalf("readers = %d after release", ms[0].Readers(lock))
	}
}

func TestWriterExcludedByReaders(t *testing.T) {
	ms := cluster(t, 2)
	const lock = 2
	if _, err := ms[0].AcquireShared(lock); err != nil {
		t.Fatal(err)
	}
	got := make(chan Grant, 1)
	go func() {
		g, err := ms[0].Acquire(lock)
		if err == nil {
			got <- g
		}
	}()
	select {
	case <-got:
		t.Fatal("writer acquired while reader held")
	case <-time.After(50 * time.Millisecond):
	}
	ms[0].ReleaseShared(lock)
	select {
	case g := <-got:
		if g.Seq != 1 {
			t.Fatalf("grant = %+v", g)
		}
		ms[0].Release(lock, false)
	case <-time.After(5 * time.Second):
		t.Fatal("writer never admitted after readers drained")
	}
}

func TestReadersExcludedByWriter(t *testing.T) {
	ms := cluster(t, 2)
	const lock = 2
	mustAcquire(t, ms[0], lock)
	got := make(chan struct{}, 1)
	go func() {
		if _, err := ms[0].AcquireShared(lock); err == nil {
			got <- struct{}{}
		}
	}()
	select {
	case <-got:
		t.Fatal("reader admitted while writer held")
	case <-time.After(50 * time.Millisecond):
	}
	ms[0].Release(lock, false)
	select {
	case <-got:
		ms[0].ReleaseShared(lock)
	case <-time.After(5 * time.Second):
		t.Fatal("reader never admitted after writer released")
	}
}

func TestSharedRespectsInterlock(t *testing.T) {
	ms := cluster(t, 2)
	const lock = 2
	// Node 1 writes; node 2's shared acquire must wait for the update.
	mustAcquire(t, ms[0], lock)
	ms[0].Release(lock, true)

	got := make(chan struct{}, 1)
	go func() {
		if _, err := ms[1].AcquireShared(lock); err == nil {
			got <- struct{}{}
		}
	}()
	select {
	case <-got:
		t.Fatal("shared acquire ignored the interlock")
	case <-time.After(50 * time.Millisecond):
	}
	ms[1].MarkApplied(lock, 1)
	select {
	case <-got:
		ms[1].ReleaseShared(lock)
	case <-time.After(5 * time.Second):
		t.Fatal("shared acquire stuck after MarkApplied")
	}
}

func TestTokenPassWaitsForReaders(t *testing.T) {
	ms := cluster(t, 2)
	const lock = 2 // managed by node 1
	if _, err := ms[0].AcquireShared(lock); err != nil {
		t.Fatal(err)
	}
	// Node 2 wants the token; it must not arrive while the reader holds.
	got := make(chan Grant, 1)
	go func() {
		g, err := ms[1].Acquire(lock)
		if err == nil {
			got <- g
		}
	}()
	select {
	case <-got:
		t.Fatal("token passed while reader held")
	case <-time.After(50 * time.Millisecond):
	}
	// No new readers once a pass is pending (anti-starvation).
	denied := make(chan struct{}, 1)
	go func() {
		if _, err := ms[0].AcquireShared(lock); err == nil {
			denied <- struct{}{}
		}
	}()
	select {
	case <-denied:
		t.Fatal("new reader admitted while remote pass pending")
	case <-time.After(50 * time.Millisecond):
	}
	ms[0].ReleaseShared(lock)
	select {
	case <-got:
		ms[1].Release(lock, false)
	case <-time.After(5 * time.Second):
		t.Fatal("token never passed after readers drained")
	}
	// The denied local reader eventually proceeds by re-requesting.
	select {
	case <-denied:
		ms[0].ReleaseShared(lock)
	case <-time.After(5 * time.Second):
		t.Fatal("parked local reader starved")
	}
}

func TestReleaseSharedWithoutHoldIsNoop(t *testing.T) {
	ms := cluster(t, 2)
	ms[0].ReleaseShared(2)
	if _, err := ms[0].AcquireShared(2); err != nil {
		t.Fatal(err)
	}
	ms[0].ReleaseShared(2)
}

func TestSharedDoesNotAdvanceSeq(t *testing.T) {
	ms := cluster(t, 2)
	const lock = 2
	g1 := mustAcquire(t, ms[0], lock)
	ms[0].Release(lock, true)
	if _, err := ms[0].AcquireShared(lock); err != nil {
		t.Fatal(err)
	}
	ms[0].ReleaseShared(lock)
	g2 := mustAcquire(t, ms[0], lock)
	if g2.Seq != g1.Seq+1 {
		t.Fatalf("shared acquire consumed a sequence number: %d -> %d", g1.Seq, g2.Seq)
	}
	ms[0].Release(lock, false)
}
