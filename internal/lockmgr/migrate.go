package lockmgr

import (
	"encoding/binary"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/netproto"
)

// Lock-home migration: a manager hands a lock's distributed queue and
// token-mint authority to the lock's dominant writer, so the request/
// pass round trip for a hot lock collapses to local bookkeeping at
// the node doing most of the writing. The handoff is a fenced frame
// pair — the old home stops managing (buffering raced requests)
// before offering, the target adopts the queue tail and announces the
// new home, and every frame carries the membership epoch so a handoff
// that straddles a view change is refused rather than split between
// two views. The per-lock request chain (§3.4) survives the move
// because the queue-tail pointer travels with the role: the new
// home's first forwarded pass still targets the old chain's tail, so
// no sequence number is skipped or duplicated.
//
// The handoff commits at the TARGET first (when the offer is adopted);
// the old home learns of the commit from the accept-ack or from the
// target's home-update broadcast, whichever lands first. Because the
// target may already have committed whenever the old home is in doubt,
// a silent timeout never reverts to local management — the offer is
// re-sent (it is idempotent: each handoff carries an id, and a target
// that already adopted that id re-acks without touching its queue)
// until an ack arrives or the failure detector evicts the target.
// Reverting is allowed only on a refuse-ack (the target vouches it did
// not commit) or on eviction (the target can no longer act as
// manager). Anything weaker can leave two nodes extending the same
// queue chain — split-brain over the lock.
const (
	MsgMigrate    uint8 = 0x13 // old home -> target: {lock u32, epoch u32, id u32, hasTail u8, tail u32}
	MsgMigrateAck uint8 = 0x14 // target -> old home: {lock u32, epoch u32, id u32, accept u8}
	MsgHomeUpdate uint8 = 0x15 // target -> all (old home included): {lock u32, epoch u32, home u32}
)

// Migration tuning. statsWindow observations of a lock's write demand
// trigger one placement evaluation (followed by a halving decay, so
// old traffic ages out); a remote writer must have at least minMigObs
// recent observations and twice the home's own to win the role.
// Demand is counted per request arriving at the home — a holder that
// keeps the token generates none — so windows are sized for the
// bounce rate of a contended lock, not its raw write rate.
// migrateTimeout paces offer re-sends, not an abort: see retryMigration.
var (
	statsWindow    = 16
	minMigObs      = uint32(4)
	migrateTimeout = 2 * time.Second
)

// migInflight tracks one outbound handoff at the old home.
type migInflight struct {
	target netproto.NodeID
	epoch  uint32
	id     uint32            // handoff id; acks must echo it, dup offers re-ack by it
	offer  []byte            // encoded MsgMigrate frame, re-sent verbatim by the retry timer
	buf    []netproto.NodeID // requesters parked while the role is in flight
	timer  *time.Timer
}

// migAdopted records a handoff this node committed as target, so a
// re-sent offer for it is re-acked instead of re-adopted (the queue
// has moved on since; re-installing the offer's tail snapshot would
// fork the chain).
type migAdopted struct {
	from netproto.NodeID
	id   uint32
}

// migrator holds the per-lock write-demand stats and in-flight
// handoffs. All fields are guarded by the owning Manager's m.mu.
type migrator struct {
	m        *Manager
	enabled  bool
	epoch    func() uint32 // membership epoch source; nil = unfenced (epoch 0)
	nextID   uint32
	stats    map[uint32]map[netproto.NodeID]uint32
	obs      map[uint32]int
	inflight map[uint32]*migInflight
	adopted  map[uint32]migAdopted
}

func (g *migrator) init(m *Manager) {
	g.m = m
	g.stats = map[uint32]map[netproto.NodeID]uint32{}
	g.obs = map[uint32]int{}
	g.inflight = map[uint32]*migInflight{}
	g.adopted = map[uint32]migAdopted{}
}

// EnableMigration turns on dominant-writer lock-home migration.
// epoch supplies the membership epoch stamped into (and checked
// against) handoff frames; nil runs unfenced, for static clusters.
// Enable before lock traffic flows.
func (m *Manager) EnableMigration(epoch func() uint32) {
	m.mu.Lock()
	m.mig.enabled = true
	m.mig.epoch = epoch
	m.mu.Unlock()
}

func (g *migrator) epochNow() uint32 {
	if g.epoch == nil {
		return 0
	}
	return g.epoch()
}

// noteWriteLocked records one unit of token demand for lockID from
// `who`, observed at the current home. Every statsWindow observations
// it evaluates placement and decays the counts. Callers hold m.mu.
func (g *migrator) noteWriteLocked(lockID uint32, who netproto.NodeID) {
	if !g.enabled {
		return
	}
	s := g.stats[lockID]
	if s == nil {
		s = map[netproto.NodeID]uint32{}
		g.stats[lockID] = s
	}
	s[who]++
	g.obs[lockID]++
	if g.obs[lockID] < statsWindow {
		return
	}
	g.obs[lockID] = 0
	g.evaluateLocked(lockID, s)
	for id, c := range s {
		if c >>= 1; c == 0 {
			delete(s, id)
		} else {
			s[id] = c
		}
	}
}

// noteLocalGrantLocked counts an exclusive acquire granted on this
// node while it is the lock's manager: without it a home that writes
// its own hot locks would look idle next to any remote writer.
// Callers hold m.mu.
func (g *migrator) noteLocalGrantLocked(lockID uint32) {
	if !g.enabled {
		return
	}
	if g.m.ManagerOf(lockID) != g.m.tr.Self() {
		return
	}
	g.noteWriteLocked(lockID, g.m.tr.Self())
}

// evaluateLocked starts a handoff when a remote writer dominates:
// most counted demand, at least minMigObs of it, and at least twice
// the home's own. Callers hold m.mu.
func (g *migrator) evaluateLocked(lockID uint32, s map[netproto.NodeID]uint32) {
	if g.inflight[lockID] != nil {
		return
	}
	m := g.m
	self := m.tr.Self()
	var cand netproto.NodeID
	var best uint32
	for id, c := range s {
		if c > best || (c == best && id < cand) {
			cand, best = id, c
		}
	}
	if cand == self || best < minMigObs || best < 2*s[self] {
		return
	}
	if !m.peerLive(cand) || m.ManagerOf(lockID) != self {
		return
	}

	// Freeze the manager role: requests arriving from here on are
	// parked until the target acks or the handoff aborts.
	tail, hasTail := m.tails[lockID]
	g.nextID++
	inf := &migInflight{target: cand, epoch: g.epochNow(), id: g.nextID}
	b := make([]byte, 17)
	binary.LittleEndian.PutUint32(b[0:], lockID)
	binary.LittleEndian.PutUint32(b[4:], inf.epoch)
	binary.LittleEndian.PutUint32(b[8:], inf.id)
	b[12] = 1
	if hasTail {
		binary.LittleEndian.PutUint32(b[13:], uint32(tail))
	} else {
		// No tail entry means the chain ends here (token born at the
		// manager and never forwarded): the target's first pass must
		// come back to us.
		binary.LittleEndian.PutUint32(b[13:], uint32(self))
	}
	inf.offer = b
	g.inflight[lockID] = inf
	inf.timer = time.AfterFunc(migrateTimeout, func() { m.retryMigration(lockID, inf) })
	m.mu.Unlock()
	// A failed send is not an abort: the frame's fate is ambiguous on
	// some transports, so the retry timer re-offers until the target
	// answers or is evicted.
	_ = m.tr.Send(cand, MsgMigrate, inf.offer)
	m.mu.Lock()
}

// bufferLocked parks a request that arrived while lockID's role is in
// flight. Reports whether the request was consumed. Callers hold m.mu.
func (g *migrator) bufferLocked(lockID uint32, requester netproto.NodeID) bool {
	inf := g.inflight[lockID]
	if inf == nil {
		return false
	}
	inf.buf = append(inf.buf, requester)
	return true
}

// dropInflightLocked removes an in-flight handoff and requeues its
// parked requests locally. Safe only when the target provably did not
// commit (it refused, or it was evicted and can no longer act as
// manager) — see retryMigration. Callers hold m.mu.
func (g *migrator) dropInflightLocked(lockID uint32, inf *migInflight, abort bool) {
	if g.inflight[lockID] != inf {
		return
	}
	delete(g.inflight, lockID)
	inf.timer.Stop()
	if abort {
		g.m.stats.Add(metrics.CtrLockMigrationsAborted, 1)
	}
	buf := inf.buf
	inf.buf = nil
	for _, r := range buf {
		g.m.handleLockReqLocked(lockID, r)
	}
}

// commitLocked retires a handoff the target has committed: the role
// (and its queue-tail bookkeeping) is gone, and the parked requests
// are returned for the caller to forward to the new home. Callers
// hold m.mu.
func (g *migrator) commitLocked(lockID uint32, inf *migInflight) []netproto.NodeID {
	delete(g.inflight, lockID)
	inf.timer.Stop()
	delete(g.m.tails, lockID)
	buf := inf.buf
	inf.buf = nil
	g.m.cond.Broadcast()
	return buf
}

// forgetPeerLocked purges handoff state involving a dead peer: offers
// aimed at it abort (it cannot adopt the role any more), and adopted
// records from it are dropped — if it returns with a fresh manager its
// handoff ids restart, and a stale record could alias a genuinely new
// offer onto the duplicate-re-ack path. Callers hold m.mu.
func (g *migrator) forgetPeerLocked(peer netproto.NodeID) {
	type drain struct {
		lockID uint32
		inf    *migInflight
	}
	var ds []drain
	for lockID, inf := range g.inflight {
		if inf.target == peer {
			ds = append(ds, drain{lockID, inf})
		}
	}
	for _, d := range ds {
		g.dropInflightLocked(d.lockID, d.inf, true)
	}
	for lockID, rec := range g.adopted {
		if rec.from == peer {
			delete(g.adopted, lockID)
		}
	}
}

// retryMigration is the handoff resolution timer: an offer whose ack
// has not arrived is re-sent — not aborted — while the target stays
// live. A silent timeout is ambiguous: the target may have adopted
// the role already (its accept-ack merely delayed past the timer),
// and resuming local management in that state would leave two nodes
// extending the same queue chain from the same tail. The role stays
// frozen until the ack lands (offers are idempotent at the target) or
// the failure detector evicts the target, which makes reverting safe.
func (m *Manager) retryMigration(lockID uint32, inf *migInflight) {
	m.mu.Lock()
	if m.closed || m.mig.inflight[lockID] != inf {
		m.mu.Unlock()
		return
	}
	if !m.peerLive(inf.target) {
		m.mig.dropInflightLocked(lockID, inf, true)
		m.cond.Broadcast()
		m.mu.Unlock()
		return
	}
	m.stats.Add(metrics.CtrLockMigrationRetries, 1)
	inf.timer = time.AfterFunc(migrateTimeout, func() { m.retryMigration(lockID, inf) })
	target, offer := inf.target, inf.offer
	m.mu.Unlock()
	_ = m.tr.Send(target, MsgMigrate, offer)
}

// setOverride records a migrated home and drops the lock's cached
// route.
func (m *Manager) setOverride(lockID uint32, home netproto.NodeID) {
	m.routeMu.Lock()
	if home == m.nodes[m.ring.ownerOf(lockID)] {
		delete(m.overrides, lockID) // back at the birth home: ring placement suffices
	} else {
		m.overrides[lockID] = home
	}
	delete(m.homeCache, lockID)
	m.routeMu.Unlock()
}

// forwardTarget reports where a MsgLockReq that landed here should be
// bounced: the migrated home, when one is installed and live and is
// not this node. One hop suffices — the migrated home's own override
// names itself, so forwarded requests terminate there.
func (m *Manager) forwardTarget(lockID uint32) (netproto.NodeID, bool) {
	m.routeMu.RLock()
	ov, ok := m.overrides[lockID]
	m.routeMu.RUnlock()
	if !ok || ov == m.tr.Self() || !m.peerLive(ov) {
		return 0, false
	}
	return ov, true
}

// onMigrate runs at the handoff target: adopt the queue tail and the
// manager role, announce the new home, and ack. The offer is refused
// when the sender is no longer live or the frame's epoch differs from
// the local view — a handoff must not straddle a membership change in
// either direction. A re-sent offer for a handoff already committed
// here is re-acked without touching the queue.
func (m *Manager) onMigrate(from netproto.NodeID, payload []byte) {
	if len(payload) != 17 {
		return
	}
	lockID := binary.LittleEndian.Uint32(payload[0:])
	epoch := binary.LittleEndian.Uint32(payload[4:])
	id := binary.LittleEndian.Uint32(payload[8:])
	hasTail := payload[12] == 1
	tail := netproto.NodeID(binary.LittleEndian.Uint32(payload[13:]))

	ack := func(accept bool) {
		var b [13]byte
		binary.LittleEndian.PutUint32(b[0:], lockID)
		binary.LittleEndian.PutUint32(b[4:], epoch)
		binary.LittleEndian.PutUint32(b[8:], id)
		if accept {
			b[12] = 1
		}
		_ = m.tr.Send(from, MsgMigrateAck, b[:])
	}

	m.mu.Lock()
	if rec, ok := m.mig.adopted[lockID]; ok && rec.from == from && rec.id == id {
		// Duplicate of a committed handoff: the first accept-ack was
		// lost or delayed past the old home's retry timer. Re-ack only;
		// the adopted queue has moved on with post-commit traffic, and
		// re-installing the offer's tail snapshot would fork the chain.
		m.mu.Unlock()
		ack(true)
		return
	}
	m.mu.Unlock()

	// The epoch fence demands exact equality: an older frame straddles
	// a view change behind us, a newer one means we lag the membership
	// round — either way the two ends cannot prove they share a roster.
	// Refusing is authoritative (nothing was committed), so the old
	// home may safely revert or re-offer under the new epoch.
	if !m.peerLive(from) || epoch != m.mig.epochNow() {
		ack(false)
		return
	}

	m.mu.Lock()
	if hasTail && tail != m.tr.Self() {
		m.tails[lockID] = tail
	} else {
		delete(m.tails, lockID)
	}
	m.mig.adopted[lockID] = migAdopted{from: from, id: id}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.setOverride(lockID, m.tr.Self())

	var hu [12]byte
	binary.LittleEndian.PutUint32(hu[0:], lockID)
	binary.LittleEndian.PutUint32(hu[4:], epoch)
	binary.LittleEndian.PutUint32(hu[8:], uint32(m.tr.Self()))
	// Announce to every live peer, the old home included: its commit
	// signal normally arrives on the accept-ack, but if that frame is
	// lost the broadcast is the backstop that unfreezes its parked
	// requests (onHomeUpdate resolves a matching in-flight handoff).
	for _, p := range m.tr.Peers() {
		if !m.peerLive(p) {
			continue
		}
		_ = m.tr.Send(p, MsgHomeUpdate, hu[:])
	}
	ack(true)
}

// onMigrateAck runs at the old home: commit (install the override,
// flush parked requests to the new home) or revert. Only an ack that
// echoes the in-flight handoff's target, epoch, and id resolves it;
// anything else is a duplicate of an already-resolved exchange.
func (m *Manager) onMigrateAck(from netproto.NodeID, payload []byte) {
	if len(payload) != 13 {
		return
	}
	lockID := binary.LittleEndian.Uint32(payload[0:])
	epoch := binary.LittleEndian.Uint32(payload[4:])
	id := binary.LittleEndian.Uint32(payload[8:])
	accept := payload[12] == 1

	m.mu.Lock()
	inf := m.mig.inflight[lockID]
	if inf == nil || inf.target != from || inf.epoch != epoch || inf.id != id {
		m.mu.Unlock()
		return // stale: the handoff already resolved (dup ack) or was superseded
	}
	if !accept {
		// A refusal is authoritative: the target nacks only handoffs it
		// did not commit, so resuming local management cannot split the
		// role.
		m.mig.dropInflightLocked(lockID, inf, true)
		m.cond.Broadcast()
		m.mu.Unlock()
		return
	}
	buf := m.mig.commitLocked(lockID, inf)
	m.mu.Unlock()
	m.finishMigration(lockID, from, buf)
}

// finishMigration installs the committed handoff's override and
// forwards the parked requests to the new home. Callers must not hold
// m.mu.
func (m *Manager) finishMigration(lockID uint32, home netproto.NodeID, buf []netproto.NodeID) {
	m.setOverride(lockID, home)
	m.stats.Add(metrics.CtrLockMigrations, 1)
	for _, r := range buf {
		var b [8]byte
		binary.LittleEndian.PutUint32(b[0:], lockID)
		binary.LittleEndian.PutUint32(b[4:], uint32(r))
		_ = m.tr.Send(home, MsgLockReq, b[:])
	}
}

// onHomeUpdate installs a migrated home announced by the handoff
// target. The epoch fence is strict: announcements from any other
// view are dropped — a peer that keeps its old route still reaches
// the right manager through the old home's one-hop forward, which is
// safer than mixing placement across views. At the old home the
// announcement doubles as the commit signal when the accept-ack is
// delayed: a matching in-flight handoff resolves here instead of
// waiting on the retry timer.
func (m *Manager) onHomeUpdate(from netproto.NodeID, payload []byte) {
	if len(payload) != 12 {
		return
	}
	lockID := binary.LittleEndian.Uint32(payload[0:])
	epoch := binary.LittleEndian.Uint32(payload[4:])
	home := netproto.NodeID(binary.LittleEndian.Uint32(payload[8:]))
	if epoch != m.mig.epochNow() || !m.peerLive(home) {
		return
	}
	m.mu.Lock()
	if inf := m.mig.inflight[lockID]; inf != nil && from == home && inf.target == home {
		buf := m.mig.commitLocked(lockID, inf)
		m.mu.Unlock()
		m.finishMigration(lockID, home, buf)
		return
	}
	m.mu.Unlock()
	m.setOverride(lockID, home)
}

// MigratedHome reports the installed migration override for a lock,
// if any (diagnostics and tests).
func (m *Manager) MigratedHome(lockID uint32) (netproto.NodeID, bool) {
	m.routeMu.RLock()
	defer m.routeMu.RUnlock()
	ov, ok := m.overrides[lockID]
	return ov, ok
}

// MigratedHomes returns a copy of every installed migration override
// (crash-surgery supervisors reseed a restarted node's routing from a
// survivor's view).
func (m *Manager) MigratedHomes() map[uint32]netproto.NodeID {
	m.routeMu.RLock()
	defer m.routeMu.RUnlock()
	out := make(map[uint32]netproto.NodeID, len(m.overrides))
	for l, h := range m.overrides {
		out[l] = h
	}
	return out
}

// InstallMigratedHome force-installs a migration override, bypassing
// the handoff protocol — crash-surgery only: a restarted node's fresh
// manager would otherwise reclaim by ring position a role that
// migrated away before the crash.
func (m *Manager) InstallMigratedHome(lockID uint32, home netproto.NodeID) {
	m.setOverride(lockID, home)
}

// DropMigratedHomesTo purges migration state aimed at a crashed peer
// on behalf of a supervisor (the non-membership Crash path, which has
// no failure detector to do it): overrides routing to the peer fall
// back to ring placement, in-flight handoffs offered to it abort, and
// its adopted-handoff records are forgotten. The membership path gets
// the same cleanup from EvictPeer.
func (m *Manager) DropMigratedHomesTo(peer netproto.NodeID) {
	m.mu.Lock()
	m.mig.forgetPeerLocked(peer)
	m.cond.Broadcast()
	m.mu.Unlock()

	m.routeMu.Lock()
	for lockID, ov := range m.overrides {
		if ov == peer {
			delete(m.overrides, lockID)
		}
	}
	clear(m.homeCache)
	m.routeMu.Unlock()
}
