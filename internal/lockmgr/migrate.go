package lockmgr

import (
	"encoding/binary"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/netproto"
)

// Lock-home migration: a manager hands a lock's distributed queue and
// token-mint authority to the lock's dominant writer, so the request/
// pass round trip for a hot lock collapses to local bookkeeping at
// the node doing most of the writing. The handoff is a fenced frame
// pair — the old home stops managing (buffering raced requests)
// before offering, the target adopts the queue tail and announces the
// new home, and every frame carries the membership epoch so a handoff
// that straddles a view change is refused rather than split between
// two views. The per-lock request chain (§3.4) survives the move
// because the queue-tail pointer travels with the role: the new
// home's first forwarded pass still targets the old chain's tail, so
// no sequence number is skipped or duplicated.
const (
	MsgMigrate    uint8 = 0x13 // old home -> target: {lock u32, epoch u32, hasTail u8, tail u32}
	MsgMigrateAck uint8 = 0x14 // target -> old home: {lock u32, epoch u32, accept u8}
	MsgHomeUpdate uint8 = 0x15 // target -> all: {lock u32, epoch u32, home u32}
)

// Migration tuning. statsWindow observations of a lock's write demand
// trigger one placement evaluation (followed by a halving decay, so
// old traffic ages out); a remote writer must have at least minMigObs
// recent observations and twice the home's own to win the role.
// Demand is counted per request arriving at the home — a holder that
// keeps the token generates none — so windows are sized for the
// bounce rate of a contended lock, not its raw write rate.
var (
	statsWindow    = 16
	minMigObs      = uint32(4)
	migrateTimeout = 2 * time.Second
)

// migInflight tracks one outbound handoff at the old home.
type migInflight struct {
	target netproto.NodeID
	epoch  uint32
	buf    []netproto.NodeID // requesters parked while the role is in flight
	timer  *time.Timer
}

// migrator holds the per-lock write-demand stats and in-flight
// handoffs. All fields are guarded by the owning Manager's m.mu.
type migrator struct {
	m        *Manager
	enabled  bool
	epoch    func() uint32 // membership epoch source; nil = unfenced (epoch 0)
	stats    map[uint32]map[netproto.NodeID]uint32
	obs      map[uint32]int
	inflight map[uint32]*migInflight
}

func (g *migrator) init(m *Manager) {
	g.m = m
	g.stats = map[uint32]map[netproto.NodeID]uint32{}
	g.obs = map[uint32]int{}
	g.inflight = map[uint32]*migInflight{}
}

// EnableMigration turns on dominant-writer lock-home migration.
// epoch supplies the membership epoch stamped into (and checked
// against) handoff frames; nil runs unfenced, for static clusters.
// Enable before lock traffic flows.
func (m *Manager) EnableMigration(epoch func() uint32) {
	m.mu.Lock()
	m.mig.enabled = true
	m.mig.epoch = epoch
	m.mu.Unlock()
}

func (g *migrator) epochNow() uint32 {
	if g.epoch == nil {
		return 0
	}
	return g.epoch()
}

// noteWriteLocked records one unit of token demand for lockID from
// `who`, observed at the current home. Every statsWindow observations
// it evaluates placement and decays the counts. Callers hold m.mu.
func (g *migrator) noteWriteLocked(lockID uint32, who netproto.NodeID) {
	if !g.enabled {
		return
	}
	s := g.stats[lockID]
	if s == nil {
		s = map[netproto.NodeID]uint32{}
		g.stats[lockID] = s
	}
	s[who]++
	g.obs[lockID]++
	if g.obs[lockID] < statsWindow {
		return
	}
	g.obs[lockID] = 0
	g.evaluateLocked(lockID, s)
	for id, c := range s {
		if c >>= 1; c == 0 {
			delete(s, id)
		} else {
			s[id] = c
		}
	}
}

// noteLocalGrantLocked counts an exclusive acquire granted on this
// node while it is the lock's manager: without it a home that writes
// its own hot locks would look idle next to any remote writer.
// Callers hold m.mu.
func (g *migrator) noteLocalGrantLocked(lockID uint32) {
	if !g.enabled {
		return
	}
	if g.m.ManagerOf(lockID) != g.m.tr.Self() {
		return
	}
	g.noteWriteLocked(lockID, g.m.tr.Self())
}

// evaluateLocked starts a handoff when a remote writer dominates:
// most counted demand, at least minMigObs of it, and at least twice
// the home's own. Callers hold m.mu.
func (g *migrator) evaluateLocked(lockID uint32, s map[netproto.NodeID]uint32) {
	if g.inflight[lockID] != nil {
		return
	}
	m := g.m
	self := m.tr.Self()
	var cand netproto.NodeID
	var best uint32
	for id, c := range s {
		if c > best || (c == best && id < cand) {
			cand, best = id, c
		}
	}
	if cand == self || best < minMigObs || best < 2*s[self] {
		return
	}
	if !m.peerLive(cand) || m.ManagerOf(lockID) != self {
		return
	}

	// Freeze the manager role: requests arriving from here on are
	// parked until the target acks or the handoff aborts.
	tail, hasTail := m.tails[lockID]
	inf := &migInflight{target: cand, epoch: g.epochNow()}
	g.inflight[lockID] = inf
	inf.timer = time.AfterFunc(migrateTimeout, func() { m.abortMigration(lockID, inf) })

	var b [13]byte
	binary.LittleEndian.PutUint32(b[0:], lockID)
	binary.LittleEndian.PutUint32(b[4:], inf.epoch)
	if hasTail {
		b[8] = 1
		binary.LittleEndian.PutUint32(b[9:], uint32(tail))
	} else {
		// No tail entry means the chain ends here (token born at the
		// manager and never forwarded): the target's first pass must
		// come back to us.
		b[8] = 1
		binary.LittleEndian.PutUint32(b[9:], uint32(self))
	}
	m.mu.Unlock()
	err := m.tr.Send(cand, MsgMigrate, b[:])
	m.mu.Lock()
	if err != nil {
		g.dropInflightLocked(lockID, inf, true)
	}
}

// bufferLocked parks a request that arrived while lockID's role is in
// flight. Reports whether the request was consumed. Callers hold m.mu.
func (g *migrator) bufferLocked(lockID uint32, requester netproto.NodeID) bool {
	inf := g.inflight[lockID]
	if inf == nil {
		return false
	}
	inf.buf = append(inf.buf, requester)
	return true
}

// dropInflightLocked removes an in-flight handoff and requeues its
// parked requests locally. Callers hold m.mu.
func (g *migrator) dropInflightLocked(lockID uint32, inf *migInflight, abort bool) {
	if g.inflight[lockID] != inf {
		return
	}
	delete(g.inflight, lockID)
	inf.timer.Stop()
	if abort {
		g.m.stats.Add(metrics.CtrLockMigrationsAborted, 1)
	}
	buf := inf.buf
	inf.buf = nil
	for _, r := range buf {
		g.m.handleLockReqLocked(lockID, r)
	}
}

// abortTargetLocked aborts every in-flight handoff aimed at a peer
// the failure detector evicted. Callers hold m.mu.
func (g *migrator) abortTargetLocked(peer netproto.NodeID) {
	type drain struct {
		lockID uint32
		inf    *migInflight
	}
	var ds []drain
	for lockID, inf := range g.inflight {
		if inf.target == peer {
			ds = append(ds, drain{lockID, inf})
		}
	}
	for _, d := range ds {
		g.dropInflightLocked(d.lockID, d.inf, true)
	}
}

// abortMigration is the handoff timeout: if the ack never arrived,
// revert to managing locally.
func (m *Manager) abortMigration(lockID uint32, inf *migInflight) {
	m.mu.Lock()
	m.mig.dropInflightLocked(lockID, inf, true)
	m.cond.Broadcast()
	m.mu.Unlock()
}

// setOverride records a migrated home and drops the lock's cached
// route.
func (m *Manager) setOverride(lockID uint32, home netproto.NodeID) {
	m.routeMu.Lock()
	if home == m.nodes[m.ring.ownerOf(lockID)] {
		delete(m.overrides, lockID) // back at the birth home: ring placement suffices
	} else {
		m.overrides[lockID] = home
	}
	delete(m.homeCache, lockID)
	m.routeMu.Unlock()
}

// forwardTarget reports where a MsgLockReq that landed here should be
// bounced: the migrated home, when one is installed and live and is
// not this node. One hop suffices — the migrated home's own override
// names itself, so forwarded requests terminate there.
func (m *Manager) forwardTarget(lockID uint32) (netproto.NodeID, bool) {
	m.routeMu.RLock()
	ov, ok := m.overrides[lockID]
	m.routeMu.RUnlock()
	if !ok || ov == m.tr.Self() || !m.peerLive(ov) {
		return 0, false
	}
	return ov, true
}

// onMigrate runs at the handoff target: adopt the queue tail and the
// manager role, announce the new home, and ack. The offer is refused
// when the sender is no longer live or the frame's epoch predates the
// local view — a handoff must not straddle a membership change.
func (m *Manager) onMigrate(from netproto.NodeID, payload []byte) {
	if len(payload) != 13 {
		return
	}
	lockID := binary.LittleEndian.Uint32(payload[0:])
	epoch := binary.LittleEndian.Uint32(payload[4:])
	hasTail := payload[8] == 1
	tail := netproto.NodeID(binary.LittleEndian.Uint32(payload[9:]))

	accept := m.peerLive(from) && epoch >= m.mig.epochNow()
	if accept {
		m.mu.Lock()
		if hasTail && tail != m.tr.Self() {
			m.tails[lockID] = tail
		} else {
			delete(m.tails, lockID)
		}
		m.cond.Broadcast()
		m.mu.Unlock()
		m.setOverride(lockID, m.tr.Self())

		var hu [12]byte
		binary.LittleEndian.PutUint32(hu[0:], lockID)
		binary.LittleEndian.PutUint32(hu[4:], epoch)
		binary.LittleEndian.PutUint32(hu[8:], uint32(m.tr.Self()))
		for _, p := range m.tr.Peers() {
			if p == from || !m.peerLive(p) {
				continue // the old home learns from the ack
			}
			_ = m.tr.Send(p, MsgHomeUpdate, hu[:])
		}
	}

	var ack [9]byte
	binary.LittleEndian.PutUint32(ack[0:], lockID)
	binary.LittleEndian.PutUint32(ack[4:], epoch)
	if accept {
		ack[8] = 1
	}
	_ = m.tr.Send(from, MsgMigrateAck, ack[:])
}

// onMigrateAck runs at the old home: commit (install the override,
// flush parked requests to the new home) or revert.
func (m *Manager) onMigrateAck(from netproto.NodeID, payload []byte) {
	if len(payload) != 9 {
		return
	}
	lockID := binary.LittleEndian.Uint32(payload[0:])
	epoch := binary.LittleEndian.Uint32(payload[4:])
	accept := payload[8] == 1

	m.mu.Lock()
	inf := m.mig.inflight[lockID]
	if inf == nil || inf.target != from || inf.epoch != epoch {
		m.mu.Unlock()
		return // stale ack: the handoff already aborted or re-ran
	}
	if !accept {
		m.mig.dropInflightLocked(lockID, inf, true)
		m.cond.Broadcast()
		m.mu.Unlock()
		return
	}
	delete(m.mig.inflight, lockID)
	inf.timer.Stop()
	delete(m.tails, lockID)
	buf := inf.buf
	inf.buf = nil
	m.cond.Broadcast()
	m.mu.Unlock()

	m.setOverride(lockID, from)
	m.stats.Add(metrics.CtrLockMigrations, 1)
	for _, r := range buf {
		var b [8]byte
		binary.LittleEndian.PutUint32(b[0:], lockID)
		binary.LittleEndian.PutUint32(b[4:], uint32(r))
		_ = m.tr.Send(from, MsgLockReq, b[:])
	}
}

// onHomeUpdate installs a migrated home announced by the handoff
// target. Frames from dead announcers or older epochs are ignored.
func (m *Manager) onHomeUpdate(from netproto.NodeID, payload []byte) {
	if len(payload) != 12 {
		return
	}
	lockID := binary.LittleEndian.Uint32(payload[0:])
	epoch := binary.LittleEndian.Uint32(payload[4:])
	home := netproto.NodeID(binary.LittleEndian.Uint32(payload[8:]))
	if epoch < m.mig.epochNow() || !m.peerLive(home) {
		return
	}
	m.setOverride(lockID, home)
}

// MigratedHome reports the installed migration override for a lock,
// if any (diagnostics and tests).
func (m *Manager) MigratedHome(lockID uint32) (netproto.NodeID, bool) {
	m.routeMu.RLock()
	defer m.routeMu.RUnlock()
	ov, ok := m.overrides[lockID]
	return ov, ok
}
