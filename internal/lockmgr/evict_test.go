package lockmgr

import (
	"errors"
	"testing"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/netproto"
)

// Eviction-path tests: queue-tail repair after a waiter or holder dies,
// the capped token-send backoff, and error plumbing for requests aimed
// at evicted peers. These drive the surgery API (EvictPeer,
// SetQueueTail, AdoptTokenKeepQueue) exactly the way the membership
// layer's reclaim protocol does.

// liveView builds a SetLiveView predicate from a mutable dead-set.
func liveView(dead map[netproto.NodeID]bool) func(netproto.NodeID) bool {
	return func(id netproto.NodeID) bool { return !dead[id] }
}

func TestQueueTailRepairAfterEvictedWaiter(t *testing.T) {
	ms := cluster(t, 3)
	lock := lockHomedAt(t, 3, 1) // ring birth home = node 1

	// The manager holds its own lock; node 3 queues behind it and
	// becomes the manager-side queue tail, with the pass parked at the
	// holder.
	mustAcquire(t, ms[0], lock)
	errs := make(chan error, 1)
	go func() {
		_, err := ms[2].Acquire(lock)
		errs <- err
	}()
	awaitLockState(t, ms[0], lock, func(st *lockState) bool { return st.hasPend })

	// Node 3 is evicted while holding the queue-tail position. The
	// survivors purge it: the parked pass is dropped (the token must not
	// launch at a corpse) and the tail entry cleared so the next request
	// forwards from the manager's own token, not the dead waiter.
	dead := map[netproto.NodeID]bool{3: true}
	for _, m := range ms[:2] {
		m.SetLiveView(liveView(dead))
		m.EvictPeer(3)
	}
	// Reclaim confirms the token never left the manager and repairs the
	// tail to the current holder (self -> entry deleted).
	ms[0].SetQueueTail(lock, 1)

	ms[0].Release(lock, false)

	// A fresh waiter must reach the token through the repaired queue,
	// not wait forever behind the evicted tail.
	g := mustAcquire(t, ms[1], lock)
	if g.Seq != 2 {
		t.Fatalf("grant after repair = %+v", g)
	}
	ms[1].Release(lock, false)
	if !ms[1].HasToken(lock) {
		t.Fatal("token did not reach the post-repair waiter")
	}
}

func TestRemintAfterEvictedHolder(t *testing.T) {
	ms := cluster(t, 3)
	lock := lockHomedAt(t, 3, 1) // ring birth home = node 1

	// Node 3 takes the token away and writes twice, then dies with the
	// token (seq 2, lastWrite 2).
	mustAcquire(t, ms[2], lock)
	ms[2].Release(lock, true)
	ms[0].MarkApplied(lock, 1)
	ms[1].MarkApplied(lock, 1)
	ms[2].MarkApplied(lock, 1)
	g := mustAcquire(t, ms[2], lock)
	ms[2].Release(lock, true)
	if g.Seq != 2 {
		t.Fatalf("pre-crash grant = %+v", g)
	}

	dead := map[netproto.NodeID]bool{3: true}
	for _, m := range ms[:2] {
		m.SetLiveView(liveView(dead))
		m.EvictPeer(3)
	}
	// Reclaim at the manager: no survivor has the token, the logs say
	// the chain reached seq 2 with lastWrite 2 — re-mint there.
	ms[0].SetQueueTail(lock, 1)
	ms[0].AdoptTokenKeepQueue(lock, 2, 2)
	if !ms[0].HasToken(lock) {
		t.Fatal("re-mint did not install the token")
	}

	// The chain continues gap-free from the re-minted counters, and the
	// interlock still gates on the dead holder's write.
	ms[0].MarkApplied(lock, 2)
	ms[1].MarkApplied(lock, 2)
	g2 := mustAcquire(t, ms[1], lock)
	if g2.Seq != 3 || g2.PrevWriteSeq != 2 {
		t.Fatalf("post-remint grant = %+v", g2)
	}
	ms[1].Release(lock, false)
}

func TestAdoptTokenKeepQueueForwardsParkedPass(t *testing.T) {
	ms := cluster(t, 3)
	lock := lockHomedAt(t, 3, 1) // ring birth home = node 1

	// Node 2's request raced the eviction of the previous holder: the
	// manager re-queued it against itself, so a pass is parked on a
	// tokenless lock (the token died with the holder).
	ms[0].ForfeitToken(lock)
	errs := make(chan error, 1)
	go func() {
		g, err := ms[1].Acquire(lock)
		if err == nil {
			ms[1].Release(lock, false)
			_ = g
		}
		errs <- err
	}()
	awaitLockState(t, ms[0], lock, func(st *lockState) bool { return st.hasPend })

	// Live reclaim re-mints at the manager; the parked pass must be
	// kept and forwarded, not dropped (AdoptToken semantics would
	// strand the waiter).
	ms[0].AdoptTokenKeepQueue(lock, 5, 0)
	select {
	case err := <-errs:
		if err != nil {
			t.Fatalf("raced waiter: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked pass was not forwarded by AdoptTokenKeepQueue")
	}
	if !ms[1].HasToken(lock) {
		t.Fatal("token did not reach the parked waiter")
	}
	seq, _, _ := ms[1].TokenState(lock)
	if seq != 6 {
		t.Fatalf("post-adopt chain seq = %d, want 6", seq)
	}
}

func TestManagerOfRoutesAroundEvicted(t *testing.T) {
	ms := cluster(t, 3)
	lock := lockHomedAt(t, 3, 1) // ring birth home = node 1
	if ms[1].ManagerOf(lock) != 1 {
		t.Fatalf("home manager = %d", ms[1].ManagerOf(lock))
	}
	dead := map[netproto.NodeID]bool{1: true}
	ms[1].SetLiveView(liveView(dead))
	got := ms[1].ManagerOf(lock)
	if got == 1 {
		t.Fatal("ManagerOf still routes to the evicted home")
	}
	// Every node with the same view resolves the same stand-in (the
	// first live successor in ring order is a pure function of the
	// roster and the dead set).
	ms[2].SetLiveView(liveView(dead))
	if got2 := ms[2].ManagerOf(lock); got2 != got {
		t.Fatalf("stand-in disagrees across nodes: %d vs %d", got, got2)
	}
	// A stand-in must never mint the lock's token just by touching its
	// state: the real token may survive on another node.
	if ms[1].HasToken(lock) {
		t.Fatal("stand-in manager minted a token")
	}
	// Home rejoins: management reverts. The resolved-home cache is
	// per-view, so the rejoin must invalidate it (the membership layer
	// does this via InvalidateRoutes) — mutating the dead-set alone
	// must NOT be enough once a resolution is cached.
	delete(dead, 1)
	if got := ms[1].ManagerOf(lock); got == 1 {
		t.Fatal("cached stand-in resolution was recomputed without invalidation")
	}
	ms[1].InvalidateRoutes()
	if got := ms[1].ManagerOf(lock); got != 1 {
		t.Fatalf("manager after rejoin+invalidate = %d, want 1", got)
	}
}

// failingTransport wraps an endpoint and fails every Send of the given
// type with a transient error, counting attempts.
type failingTransport struct {
	netproto.Transport
	failType uint8
	attempts chan struct{}
}

var errLinkDown = errors.New("test: link down")

func (f *failingTransport) Send(to netproto.NodeID, typ uint8, payload []byte) error {
	if typ == f.failType {
		select {
		case f.attempts <- struct{}{}:
		default:
		}
		return errLinkDown
	}
	return f.Transport.Send(to, typ, payload)
}

func TestTokenSendBackoffAbandons(t *testing.T) {
	defer func(d time.Duration, n int) {
		tokenRetryDelay, maxTokenSendAttempts = d, n
	}(tokenRetryDelay, maxTokenSendAttempts)
	tokenRetryDelay = time.Millisecond
	maxTokenSendAttempts = 3

	hub := netproto.NewHub()
	ids := []netproto.NodeID{1, 2}
	ft := &failingTransport{
		Transport: hub.Endpoint(1),
		failType:  MsgLockToken,
		attempts:  make(chan struct{}, 16),
	}
	st := metrics.NewStats()
	m1 := New(ft, ids, st)
	m2 := New(hub.Endpoint(2), ids, nil)
	t.Cleanup(func() { m1.Close(); m2.Close() })

	lock := lockHomedAt(t, 2, 1) // ring birth home = node 1
	mustAcquire(t, m1, lock)
	go func() { _, _ = m2.AcquireTimeout(lock, 200*time.Millisecond) }()
	awaitLockState(t, m1, lock, func(st *lockState) bool { return st.hasPend })
	m1.Release(lock, false) // pass launches into the dead link

	deadline := time.Now().Add(5 * time.Second)
	for st.Counter(metrics.CtrTokenSendsAbandoned) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("token pass never abandoned")
		}
		time.Sleep(time.Millisecond)
	}
	if got := st.Counter(metrics.CtrTokenSendRetries); got != int64(maxTokenSendAttempts) {
		t.Fatalf("lock_token_send_retries = %d, want %d", got, maxTokenSendAttempts)
	}
	if len(ft.attempts) != maxTokenSendAttempts {
		t.Fatalf("send attempts = %d, want %d", len(ft.attempts), maxTokenSendAttempts)
	}
}

func TestTokenSendToEvictedPeerAbandonsImmediately(t *testing.T) {
	ms := cluster(t, 2)
	lock := lockHomedAt(t, 2, 1) // ring birth home = node 1
	mustAcquire(t, ms[0], lock)
	go func() { _, _ = ms[1].AcquireTimeout(lock, 200*time.Millisecond) }()
	awaitLockState(t, ms[0], lock, func(st *lockState) bool { return st.hasPend })

	// Node 2 is evicted before the holder releases: the pass must be
	// abandoned at the liveness check, with no retries.
	dead := map[netproto.NodeID]bool{2: true}
	ms[0].SetLiveView(liveView(dead))
	ms[0].Release(lock, false)

	st := ms[0].Stats()
	deadline := time.Now().Add(5 * time.Second)
	for st.Counter(metrics.CtrTokenSendsAbandoned) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pass to evicted peer not abandoned")
		}
		time.Sleep(time.Millisecond)
	}
	if got := st.Counter(metrics.CtrTokenSendRetries); got != 0 {
		t.Fatalf("retried %d times into an evicted peer", got)
	}
}

// evictedTransport fails every Send with ErrPeerEvicted, as the
// membership Fence does for destinations the detector expelled.
type evictedTransport struct {
	netproto.Transport
}

func (f *evictedTransport) Send(to netproto.NodeID, typ uint8, payload []byte) error {
	return netproto.ErrPeerEvicted
}

func TestAcquireSurfacesErrPeerEvicted(t *testing.T) {
	hub := netproto.NewHub()
	ids := []netproto.NodeID{1, 2}
	m2 := New(&evictedTransport{Transport: hub.Endpoint(2)}, ids, nil)
	t.Cleanup(func() { m2.Close() })

	// The lock's manager (node 1) is evicted; the request fails fast
	// and the typed error survives the wrapping.
	_, err := m2.Acquire(lockHomedAt(t, 2, 1))
	if err == nil {
		t.Fatal("acquire against an evicted manager succeeded")
	}
	if !errors.Is(err, ErrPeerEvicted) {
		t.Fatalf("err = %v, want errors.Is(..., ErrPeerEvicted)", err)
	}
}
