package lockmgr

import (
	"testing"

	"lbc/internal/netproto"
)

func TestRingPlacementDeterministicAcrossRosterOrder(t *testing.T) {
	a := []netproto.NodeID{1, 2, 3, 4}
	b := []netproto.NodeID{4, 2, 1, 3} // same membership, different order
	for l := uint32(0); l < 512; l++ {
		if ha, hb := HomeOf(a, l), HomeOf(b, l); ha != hb {
			t.Fatalf("lock %d: home %d under order a, %d under order b", l, ha, hb)
		}
	}
}

func TestRingPlacementBalance(t *testing.T) {
	ids := []netproto.NodeID{1, 2, 3, 4}
	r := buildRing(ids)
	counts := map[int]int{}
	const locks = 4096
	for l := uint32(0); l < locks; l++ {
		counts[r.ownerOf(l)]++
	}
	// Virtual nodes keep the split rough but bounded: no node owns
	// less than a twentieth or more than half of the key space.
	for i := range ids {
		if counts[i] < locks/20 || counts[i] > locks/2 {
			t.Fatalf("unbalanced ring: node %d owns %d of %d locks (%v)", ids[i], counts[i], locks, counts)
		}
	}
}

func TestRingWalkVisitsAllNodesOnce(t *testing.T) {
	ids := []netproto.NodeID{1, 2, 3, 4, 5}
	r := buildRing(ids)
	for l := uint32(0); l < 64; l++ {
		var order []int
		r.walk(l, len(ids), func(idx int) bool {
			order = append(order, idx)
			return true
		})
		if len(order) != len(ids) {
			t.Fatalf("lock %d: walk visited %d nodes, want %d", l, len(order), len(ids))
		}
		seen := map[int]bool{}
		for _, idx := range order {
			if seen[idx] {
				t.Fatalf("lock %d: walk visited node index %d twice", l, idx)
			}
			seen[idx] = true
		}
		if order[0] != r.ownerOf(l) {
			t.Fatalf("lock %d: walk starts at %d, owner is %d", l, order[0], r.ownerOf(l))
		}
	}
}

func TestRingStabilityUnderMembershipLoss(t *testing.T) {
	// Consistent hashing's point: removing one node relocates only the
	// locks it owned. Compare homes across a 4-node ring and the same
	// ring minus node 3: every lock not homed at 3 must keep its home.
	full := []netproto.NodeID{1, 2, 3, 4}
	reduced := []netproto.NodeID{1, 2, 4}
	moved, owned := 0, 0
	for l := uint32(0); l < 2048; l++ {
		hf := HomeOf(full, l)
		hr := HomeOf(reduced, l)
		if hf == 3 {
			owned++
			continue
		}
		if hf != hr {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d locks not owned by the removed node changed home", moved)
	}
	if owned == 0 {
		t.Fatal("test premise broken: removed node owned no locks")
	}
}

func TestManagerOfCachesUntilInvalidated(t *testing.T) {
	ms := cluster(t, 3)
	lock := lockHomedAt(t, 3, 2)
	if ms[0].ManagerOf(lock) != 2 {
		t.Fatalf("home = %d, want 2", ms[0].ManagerOf(lock))
	}
	// The resolution must now be served from the cache.
	ms[0].routeMu.RLock()
	cached, ok := ms[0].homeCache[lock]
	ms[0].routeMu.RUnlock()
	if !ok || cached != 2 {
		t.Fatalf("cache entry = (%d, %v), want (2, true)", cached, ok)
	}
	// Invalidation drops it; the next call re-resolves.
	ms[0].InvalidateRoutes()
	ms[0].routeMu.RLock()
	_, ok = ms[0].homeCache[lock]
	ms[0].routeMu.RUnlock()
	if ok {
		t.Fatal("InvalidateRoutes left a cached resolution")
	}
	if ms[0].ManagerOf(lock) != 2 {
		t.Fatalf("re-resolved home = %d, want 2", ms[0].ManagerOf(lock))
	}
}
