// Disk-fault injection for wal devices. A Device wraps any wal.Device
// with a page-cache model: Append buffers bytes in a volatile pending
// region and only an honest Sync pushes them to the inner (durable)
// device. Scheduled faults — torn writes, fsync lies, ENOSPC, read-back
// bit-flips — fire at deterministic operation indices, so a failure is
// reproducible from (seed, schedule) alone. The crash-point sweep in
// internal/chaos drives one Device per node and crashes it at every
// Append/Sync boundary of a scripted workload.

package fault

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"lbc/internal/wal"
)

// Sentinel errors surfaced by injected faults.
var (
	// ErrCrashed is returned by every operation after a simulated
	// crash: the process must reopen the device (Reopen) to continue,
	// exactly as a real node restarts against its disk.
	ErrCrashed = errors.New("fault: device crashed")
	// ErrNoSpace is the injected ENOSPC: the append fails cleanly,
	// persisting nothing.
	ErrNoSpace = errors.New("fault: no space left on device")
)

// flip is one scheduled read-back bit corruption at an absolute log
// offset. One-shot flips model a transient bad read (the retry
// returns sound bytes); persistent flips model real media damage.
type flip struct {
	off        int64
	mask       byte
	persistent bool
	spent      bool
}

// Device wraps an inner wal.Device with deterministic disk faults.
//
// Crash model: bytes appended since the last honest Sync live in a
// volatile pending buffer. A crash persists a strict prefix of the
// in-flight bytes (ordered writeback: the record whose write was cut
// short is at most torn, never complete-but-unacknowledged), then
// fails every subsequent operation with ErrCrashed until Reopen.
//
// Every Append and Sync consumes one operation index; CrashAt, LieAt
// and FailAt schedule faults against those indices. Ops() after a
// fault-free scripted run enumerates the crash-point space.
type Device struct {
	mu      sync.Mutex
	inner   wal.Device
	rng     *rand.Rand
	op      int64 // next operation index
	pending []byte
	crashed bool

	crashAt map[int64]bool
	lieAt   map[int64]bool
	failAt  map[int64]bool
	flips   []*flip

	// Counters for reports and negative tests.
	lies  int64
	flipN int64
}

// NewDevice wraps inner with a fault injector seeded for deterministic
// torn-write prefixes.
func NewDevice(inner wal.Device, seed int64) *Device {
	return &Device{
		inner:   inner,
		rng:     rand.New(rand.NewSource(seed)),
		crashAt: map[int64]bool{},
		lieAt:   map[int64]bool{},
		failAt:  map[int64]bool{},
	}
}

// Ops returns the number of Append/Sync operations performed so far —
// after a fault-free run, the size of the crash-point space.
func (d *Device) Ops() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.op
}

// CrashAt schedules a simulated crash when operation index op executes.
func (d *Device) CrashAt(op int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashAt[op] = true
}

// LieAt schedules an fsync lie at operation index op: the Sync
// acknowledges success without persisting. A later honest Sync still
// flushes everything, so the lie only loses data if a crash intervenes.
func (d *Device) LieAt(op int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lieAt[op] = true
}

// FailAt schedules an ENOSPC failure for the Append at operation
// index op; the append persists nothing and later operations proceed.
func (d *Device) FailAt(op int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failAt[op] = true
}

// FlipAt schedules a read-back corruption: reads covering absolute
// offset off see the byte XORed with mask. One-shot flips (persistent
// false) corrupt only the first covering read.
func (d *Device) FlipAt(off int64, mask byte, persistent bool) {
	if mask == 0 {
		mask = 0xff
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.flips = append(d.flips, &flip{off: off, mask: mask, persistent: persistent})
}

// Crash simulates an immediate power cut, independent of the op
// schedule.
func (d *Device) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crash(nil)
}

// Crashed reports whether the device is in the post-crash state.
func (d *Device) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// Lies returns how many scheduled fsync lies have fired.
func (d *Device) Lies() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lies
}

// Flips returns how many read-back corruptions have been served.
func (d *Device) Flips() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.flipN
}

// Reopen clears the crashed state, modeling the restart that reopens
// the on-disk file: unsynced pending bytes are gone, the durable
// prefix chosen at crash time remains.
func (d *Device) Reopen() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashed = false
	d.pending = nil
}

// crash persists a strict prefix of pending+inflight to the inner
// device and marks the device dead. The prefix length is drawn from
// the seeded rng, so a (seed, crash-op) pair reproduces the exact torn
// image.
func (d *Device) crash(inflight []byte) {
	total := make([]byte, 0, len(d.pending)+len(inflight))
	total = append(total, d.pending...)
	total = append(total, inflight...)
	keep := 0
	if len(total) > 0 {
		keep = d.rng.Intn(len(total)) // strictly less than len(total)
	}
	if keep > 0 {
		if _, err := d.inner.Append(total[:keep]); err == nil {
			d.inner.Sync() //nolint:errcheck // best effort at crash time
		}
	}
	d.pending = nil
	d.crashed = true
}

// Append implements wal.Device: bytes land in the volatile pending
// buffer (page cache) and are only durable after an honest Sync.
func (d *Device) Append(p []byte) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return 0, ErrCrashed
	}
	op := d.op
	d.op++
	if d.failAt[op] {
		return 0, fmt.Errorf("fault: append op %d: %w", op, ErrNoSpace)
	}
	if d.crashAt[op] {
		d.crash(p)
		return 0, ErrCrashed
	}
	sz, err := d.inner.Size()
	if err != nil {
		return 0, err
	}
	off := sz + int64(len(d.pending))
	d.pending = append(d.pending, p...)
	return off, nil
}

// Sync implements wal.Device. A scheduled lie acknowledges without
// flushing; a scheduled crash cuts the pending bytes to a torn prefix.
func (d *Device) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	op := d.op
	d.op++
	if d.crashAt[op] {
		d.crash(nil)
		return ErrCrashed
	}
	if d.lieAt[op] {
		d.lies++
		return nil // ack and drop: the bytes stay volatile
	}
	return d.flush()
}

// flush pushes the pending bytes to the durable inner device.
func (d *Device) flush() error {
	if len(d.pending) == 0 {
		return d.inner.Sync()
	}
	if _, err := d.inner.Append(d.pending); err != nil {
		return err
	}
	if err := d.inner.Sync(); err != nil {
		return err
	}
	d.pending = nil
	return nil
}

// Size implements wal.Device: the logical size includes unsynced
// pending bytes, as a real file's does.
func (d *Device) Size() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return 0, ErrCrashed
	}
	sz, err := d.inner.Size()
	if err != nil {
		return 0, err
	}
	return sz + int64(len(d.pending)), nil
}

// Open implements wal.Device, serving durable bytes, then pending
// bytes, with scheduled read-back flips applied at absolute offsets.
func (d *Device) Open(from int64) (io.ReadCloser, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil, ErrCrashed
	}
	sz, err := d.inner.Size()
	if err != nil {
		return nil, err
	}
	var buf []byte
	if from < sz {
		rc, err := d.inner.Open(from)
		if err != nil {
			return nil, err
		}
		buf, err = io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, err
		}
	}
	start := from
	if from > sz {
		skip := from - sz
		if skip > int64(len(d.pending)) {
			skip = int64(len(d.pending))
		}
		buf = append(buf, d.pending[skip:]...)
	} else {
		buf = append(buf, d.pending...)
	}
	for _, f := range d.flips {
		if f.spent && !f.persistent {
			continue
		}
		i := f.off - start
		if i >= 0 && i < int64(len(buf)) {
			buf[i] ^= f.mask
			f.spent = true
			d.flipN++
		}
	}
	return io.NopCloser(newByteReader(buf)), nil
}

// byteReader is a minimal io.Reader over an owned buffer.
type byteReader struct {
	b []byte
}

func newByteReader(b []byte) *byteReader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// Truncate implements wal.Device.
func (d *Device) Truncate(size int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	sz, err := d.inner.Size()
	if err != nil {
		return err
	}
	if size >= sz {
		keep := size - sz
		if keep > int64(len(d.pending)) {
			keep = int64(len(d.pending))
		}
		d.pending = d.pending[:keep]
		return nil
	}
	d.pending = nil
	return d.inner.Truncate(size)
}

// Reset implements wal.Device.
func (d *Device) Reset() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	d.pending = nil
	return d.inner.Reset()
}

// TrimHead implements wal.HeadTrimmer when the inner device does;
// pending bytes sit past the durable size, so only the inner trim
// moves.
func (d *Device) TrimHead(upTo int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	ht, ok := d.inner.(wal.HeadTrimmer)
	if !ok {
		return errors.New("fault: inner device does not support TrimHead")
	}
	return ht.TrimHead(upTo)
}

// Close implements wal.Device.
func (d *Device) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.Close()
}

// Inner exposes the wrapped durable device (the "disk platter") so a
// harness can inspect what actually survived a crash.
func (d *Device) Inner() wal.Device { return d.inner }
