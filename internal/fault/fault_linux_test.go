//go:build linux

package fault

import "testing"

func BenchmarkTrapCycle(b *testing.B) {
	if !Supported() {
		b.Skip("platform without trap support")
	}
	r, err := newRegion()
	if err != nil {
		b.Fatal(err)
	}
	defer r.close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := trapCycle(r); err != nil {
			b.Fatal(err)
		}
	}
}
