//go:build !linux

package fault

import (
	"errors"
	"time"
)

// ErrUnsupported is returned on platforms without the mmap/mprotect
// path used by the trap microbenchmark.
var ErrUnsupported = errors.New("fault: trap measurement unsupported on this platform")

// Supported reports whether trap measurement works on this platform.
func Supported() bool { return false }

// TrapOnce is unsupported on this platform.
func TrapOnce() error { return ErrUnsupported }

// MeasureTrap is unsupported on this platform.
func MeasureTrap(int) (time.Duration, error) { return 0, ErrUnsupported }
