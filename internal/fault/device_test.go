package fault

import (
	"errors"
	"io"
	"testing"

	"lbc/internal/wal"
)

func readBack(t *testing.T, d *Device, from int64) []byte {
	t.Helper()
	rc, err := d.Open(from)
	if err != nil {
		t.Fatalf("Open(%d): %v", from, err)
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return b
}

func TestDeviceHonestPath(t *testing.T) {
	d := NewDevice(wal.NewMemDevice(), 1)
	if _, err := d.Append([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if sz, _ := d.Size(); sz != 11 {
		t.Fatalf("size = %d, want 11 (pending counts)", sz)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := string(readBack(t, d, 0)); got != "hello world" {
		t.Fatalf("read back %q", got)
	}
	if d.Ops() != 3 {
		t.Fatalf("ops = %d, want 3 (2 appends + 1 sync)", d.Ops())
	}
}

func TestDeviceCrashPersistsStrictPrefix(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		inner := wal.NewMemDevice()
		d := NewDevice(inner, seed)
		if _, err := d.Append([]byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		d.CrashAt(1) // the sync
		if err := d.Sync(); !errors.Is(err, ErrCrashed) {
			t.Fatalf("seed %d: sync err = %v, want ErrCrashed", seed, err)
		}
		sz, _ := inner.Size()
		if sz >= 10 {
			t.Fatalf("seed %d: crash persisted %d bytes, want a strict prefix of 10", seed, sz)
		}
		if _, err := d.Append([]byte("x")); !errors.Is(err, ErrCrashed) {
			t.Fatalf("seed %d: post-crash append err = %v", seed, err)
		}
		d.Reopen()
		got := readBack(t, d, 0)
		if string(got) != "0123456789"[:sz] {
			t.Fatalf("seed %d: after reopen read %q, want prefix of len %d", seed, got, sz)
		}
	}
}

func TestDeviceCrashDeterministic(t *testing.T) {
	run := func() int64 {
		inner := wal.NewMemDevice()
		d := NewDevice(inner, 42)
		d.CrashAt(2)
		d.Append([]byte("abcdefgh")) //nolint:errcheck
		d.Sync()                     //nolint:errcheck
		d.Append([]byte("ijklmnop")) //nolint:errcheck
		sz, _ := inner.Size()
		return sz
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same (seed, crash-op) persisted %d then %d bytes", a, b)
	}
}

func TestDeviceFsyncLie(t *testing.T) {
	inner := wal.NewMemDevice()
	d := NewDevice(inner, 7)
	d.LieAt(1)
	d.Append([]byte("lost?")) //nolint:errcheck
	if err := d.Sync(); err != nil {
		t.Fatalf("lied sync must ack: %v", err)
	}
	if sz, _ := inner.Size(); sz != 0 {
		t.Fatalf("lied sync persisted %d bytes", sz)
	}
	if d.Lies() != 1 {
		t.Fatalf("lies = %d", d.Lies())
	}
	// An honest sync later still flushes everything.
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if sz, _ := inner.Size(); sz != 5 {
		t.Fatalf("honest sync persisted %d bytes, want 5", sz)
	}
	// A crash between lie and honest sync loses at least the tail:
	// the acked bytes were never guaranteed, only a strict prefix of
	// the page cache may survive.
	d2 := NewDevice(wal.NewMemDevice(), 7)
	d2.LieAt(1)
	d2.Append([]byte("lost!")) //nolint:errcheck
	d2.Sync()                  //nolint:errcheck
	d2.Crash()
	d2.Reopen()
	if got := readBack(t, d2, 0); string(got) == "lost!" {
		t.Fatalf("all acked bytes survived a crash after a lied fsync")
	}
}

func TestDeviceENOSPC(t *testing.T) {
	d := NewDevice(wal.NewMemDevice(), 3)
	d.FailAt(0)
	if _, err := d.Append([]byte("nope")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	// The device stays usable and the failed bytes never appear.
	if _, err := d.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := string(readBack(t, d, 0)); got != "ok" {
		t.Fatalf("read back %q", got)
	}
}

func TestDeviceReadBackFlip(t *testing.T) {
	d := NewDevice(wal.NewMemDevice(), 9)
	d.Append([]byte("abcdef")) //nolint:errcheck
	d.Sync()                   //nolint:errcheck

	d.FlipAt(2, 0x01, false)
	if got := string(readBack(t, d, 0)); got != "abbdef" {
		t.Fatalf("flipped read = %q, want abbdef", got)
	}
	// One-shot: the re-read is sound.
	if got := string(readBack(t, d, 0)); got != "abcdef" {
		t.Fatalf("re-read = %q, want sound bytes", got)
	}

	d.FlipAt(4, 0x80, true)
	want := string([]byte{'a', 'b', 'c', 'd', 'e' ^ 0x80, 'f'})
	for i := 0; i < 3; i++ {
		if got := string(readBack(t, d, 0)); got != want {
			t.Fatalf("persistent flip read %d = %q, want %q", i, got, want)
		}
	}
	if d.Flips() < 2 {
		t.Fatalf("flips counter = %d", d.Flips())
	}
}

func TestDeviceOpenFromOffsetAppliesAbsoluteFlips(t *testing.T) {
	d := NewDevice(wal.NewMemDevice(), 11)
	d.Append([]byte("0123456789")) //nolint:errcheck
	d.Sync()                       //nolint:errcheck
	d.FlipAt(7, 0xff, true)
	got := readBack(t, d, 5)
	if got[2] != '7'^0xff || got[0] != '5' {
		t.Fatalf("offset read = %q, flip must land at absolute offset 7", got)
	}
}

func TestDeviceTruncateAndTrim(t *testing.T) {
	inner := wal.NewMemDevice()
	d := NewDevice(inner, 5)
	d.Append([]byte("durable")) //nolint:errcheck
	d.Sync()                    //nolint:errcheck
	d.Append([]byte("pending")) //nolint:errcheck
	// Truncate into the pending region.
	if err := d.Truncate(10); err != nil {
		t.Fatal(err)
	}
	if sz, _ := d.Size(); sz != 10 {
		t.Fatalf("size after pending truncate = %d", sz)
	}
	// Truncate into the durable region.
	if err := d.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if got := string(readBack(t, d, 0)); got != "dura" {
		t.Fatalf("read back %q", got)
	}
}
