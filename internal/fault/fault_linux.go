//go:build linux

// Package fault measures the cost of hardware write-fault handling —
// Table 2's "handle signal and change protection" row (360.1 us on
// Alpha OSF/1). The paper measures: store to a read-only page, deliver
// the signal to a user-level handler, mprotect the page writable,
// return, and retry the store.
//
// Go's runtime owns SIGSEGV, so a user SIGSEGV handler is not an
// option; the closest native equivalent is debug.SetPanicOnFault: the
// runtime converts the fault into a recoverable panic, we recover,
// mprotect the page writable, and retry. This exercises a real
// hardware trap, the kernel's signal path, the runtime's fault
// plumbing, and a real mprotect — the same ingredients, which is what
// the cost model needs (repro note: this is the "page-fault/mprotect
// tricks clash with the runtime" part of the reproduction; it is kept
// out of the data path and used only for measurement).
package fault

import (
	"fmt"
	"runtime/debug"
	"syscall"
	"time"
)

// Supported reports whether trap measurement works on this platform.
func Supported() bool { return true }

// region holds one mmapped page used as the trap target.
type region struct {
	mem []byte
}

func newRegion() (*region, error) {
	mem, err := syscall.Mmap(-1, 0, syscall.Getpagesize(),
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_PRIVATE|syscall.MAP_ANON)
	if err != nil {
		return nil, fmt.Errorf("fault: mmap: %w", err)
	}
	return &region{mem: mem}, nil
}

func (r *region) close() { _ = syscall.Munmap(r.mem) }

func (r *region) protect(writable bool) error {
	prot := syscall.PROT_READ
	if writable {
		prot |= syscall.PROT_WRITE
	}
	return syscall.Mprotect(r.mem, prot)
}

// tryStore attempts a store to the page, converting the fault into a
// recovered panic. It reports whether the store faulted.
func (r *region) tryStore() (faulted bool) {
	old := debug.SetPanicOnFault(true)
	defer debug.SetPanicOnFault(old)
	defer func() {
		if recover() != nil {
			faulted = true
		}
	}()
	r.mem[0] = 1
	return false
}

// TrapOnce performs one full write-fault cycle: protect the page
// read-only, store (fault, recover), mprotect writable, retry the
// store. It is the unit of work MeasureTrap times and the hook the
// DSM engines can invoke per simulated fault.
func TrapOnce() error {
	r, err := newRegion()
	if err != nil {
		return err
	}
	defer r.close()
	return trapCycle(r)
}

func trapCycle(r *region) error {
	if err := r.protect(false); err != nil {
		return fmt.Errorf("fault: mprotect ro: %w", err)
	}
	if !r.tryStore() {
		return fmt.Errorf("fault: store to protected page did not fault")
	}
	if err := r.protect(true); err != nil {
		return fmt.Errorf("fault: mprotect rw: %w", err)
	}
	if r.tryStore() {
		return fmt.Errorf("fault: store faulted after unprotect")
	}
	return nil
}

// MeasureTrap runs iters trap cycles on one page and returns the mean
// cost of a cycle — the host-native value for Table 2's last row.
func MeasureTrap(iters int) (time.Duration, error) {
	if iters <= 0 {
		iters = 100
	}
	r, err := newRegion()
	if err != nil {
		return 0, err
	}
	defer r.close()
	// Warm up.
	for i := 0; i < 3; i++ {
		if err := trapCycle(r); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := trapCycle(r); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(iters), nil
}
