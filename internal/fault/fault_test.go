package fault

import "testing"

func TestTrapOnce(t *testing.T) {
	if !Supported() {
		t.Skip("platform without trap support")
	}
	if err := TrapOnce(); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureTrap(t *testing.T) {
	if !Supported() {
		t.Skip("platform without trap support")
	}
	d, err := MeasureTrap(50)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("trap cost = %v", d)
	}
	t.Logf("write fault + mprotect cycle: %v (Table 2 Alpha value: 360.1us)", d)
}
