// Package bufpool provides size-classed byte-buffer pooling for the
// receive and send paths of the coherency protocol. The paper's
// prototype allocated a fresh buffer per incoming frame and per encoded
// record; under the group-commit pipeline (>10k records/sec on the
// wire) that allocation rate dominates the receive path, so frame
// buffers, record arenas, and encode buffers are recycled here instead.
//
// Ownership rules (enforced by the coherency/netproto tests):
//
//   - Get returns a buffer with len 0 and cap >= n that the caller owns
//     exclusively until it calls Put.
//   - Put transfers ownership back to the pool; the caller must not
//     read or write the buffer (or any slice aliasing it) afterwards.
//   - A buffer handed to another goroutine travels with its ownership:
//     exactly one side calls Put, after the last access.
//
// Buffers are filed into power-of-two size classes between 512 bytes
// and 16 MiB. Requests above the largest class fall back to plain
// allocation and Put discards such buffers, so a single hostile-length
// frame cannot pin gigabytes inside the pool.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	minClassBits = 9  // 512 B
	maxClassBits = 24 // 16 MiB
	numClasses   = maxClassBits - minClassBits + 1
)

var classes [numClasses]sync.Pool

// Counters for tests and benchmark reporting: how often Get was served
// from a pool vs. a fresh allocation, and how many buffers came back.
var (
	gets   atomic.Int64
	reuses atomic.Int64
	puts   atomic.Int64
)

// classFor returns the smallest class index whose buffers hold n bytes,
// or -1 when n exceeds the largest class.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	c := bits.Len(uint(n - 1)) // ceil(log2(n))
	if c > maxClassBits {
		return -1
	}
	return c - minClassBits
}

// Get returns a buffer with len 0 and cap at least n. The caller owns
// it until Put.
func Get(n int) []byte {
	gets.Add(1)
	c := classFor(n)
	if c < 0 {
		return make([]byte, 0, n)
	}
	if v := classes[c].Get(); v != nil {
		reuses.Add(1)
		return v.([]byte)[:0]
	}
	return make([]byte, 0, 1<<(c+minClassBits))
}

// Put returns a buffer obtained from Get (or any buffer the caller
// owns outright) to the pool. Buffers smaller than the minimum class
// or larger than the maximum are discarded. Put files the buffer under
// the largest class its capacity can serve, so a grown buffer is still
// reusable.
func Put(b []byte) {
	c := bits.Len(uint(cap(b))) - 1 // floor(log2(cap))
	if c < minClassBits || c > maxClassBits {
		return
	}
	puts.Add(1)
	b = b[:0]
	//lint:ignore SA6002 the slice-header box per Put replaces a payload-sized allocation
	classes[c-minClassBits].Put(b) //nolint:staticcheck
}

// Stats reports (gets, pool hits, puts) since process start.
func Stats() (int64, int64, int64) {
	return gets.Load(), reuses.Load(), puts.Load()
}
