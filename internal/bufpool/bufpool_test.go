package bufpool

import (
	"bytes"
	"testing"
)

func TestGetCapacity(t *testing.T) {
	for _, n := range []int{0, 1, 100, 512, 513, 4096, 65536, 1 << 20, (1 << 24) + 1} {
		b := Get(n)
		if len(b) != 0 {
			t.Fatalf("Get(%d) len = %d, want 0", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("Get(%d) cap = %d", n, cap(b))
		}
		Put(b)
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{0, 0}, {1, 0}, {512, 0}, {513, 1}, {1024, 1}, {1025, 2},
		{1 << 24, numClasses - 1}, {(1 << 24) + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestReuseKeepsCapacityInvariant(t *testing.T) {
	// A buffer grown past its class must be re-filed so a later Get
	// still receives at least the capacity it asked for.
	b := Get(600) // class 1: cap 1024
	b = append(b, make([]byte, 5000)...)
	Put(b) // cap >= 5000, filed under the class its cap can serve
	for i := 0; i < 100; i++ {
		g := Get(4096)
		if cap(g) < 4096 {
			t.Fatalf("reused buffer cap %d < 4096", cap(g))
		}
		Put(g)
	}
}

func TestPutOversizedDiscards(t *testing.T) {
	_, _, before := Stats()
	Put(make([]byte, 0, 1<<25)) // above the largest class
	Put(make([]byte, 0, 8))     // below the smallest class
	if _, _, after := Stats(); after != before {
		t.Fatalf("out-of-range Put was pooled (puts %d -> %d)", before, after)
	}
}

func TestBuffersDoNotAlias(t *testing.T) {
	a := Get(1024)
	b := Get(1024)
	a = append(a, bytes.Repeat([]byte{0xaa}, 1024)...)
	b = append(b, bytes.Repeat([]byte{0xbb}, 1024)...)
	for i := range a {
		if a[i] != 0xaa {
			t.Fatalf("buffer a corrupted at %d", i)
		}
	}
	Put(a)
	Put(b)
}

func TestConcurrentGetPut(t *testing.T) {
	// Exercised under -race: concurrent Get/Put with per-goroutine
	// payloads must never observe another goroutine's bytes while the
	// buffer is owned.
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g byte) {
			ok := true
			for i := 0; i < 500; i++ {
				b := Get(2048)
				b = append(b, bytes.Repeat([]byte{g}, 2048)...)
				for j := 0; j < 2048; j += 257 {
					if b[j] != g {
						ok = false
					}
				}
				Put(b)
			}
			done <- ok
		}(byte(g))
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("buffer observed foreign bytes while owned")
		}
	}
}
