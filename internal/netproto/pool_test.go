package netproto

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// Pooled-dispatch stress: the in-process endpoint copies every Send
// into a pooled buffer and recycles it right after handler dispatch.
// Under heavy churn of mixed frame sizes — with the sender clobbering
// its own buffer the moment Send returns — every handler invocation
// must still observe exactly the bytes that were sent, in per-sender
// FIFO order. Run under -race this also proves the recycle happens
// strictly after the handler returns.
func TestChanMeshPooledDispatchContent(t *testing.T) {
	hub := NewHub()
	a := hub.Endpoint(1)
	b := hub.Endpoint(2)
	defer a.Close()
	defer b.Close()

	const frames = 800
	frameSize := func(i int) int { return 1 + (i*37)%2048 }

	var mu sync.Mutex
	var got int
	var firstErr error
	b.Handle(3, func(from NodeID, payload []byte) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil {
			return
		}
		i := got
		got++
		if len(payload) != frameSize(i) {
			firstErr = fmt.Errorf("frame %d: len %d, want %d", i, len(payload), frameSize(i))
			return
		}
		for j, c := range payload {
			if c != byte(i) {
				firstErr = fmt.Errorf("frame %d: byte %d = %02x, want %02x", i, j, c, byte(i))
				return
			}
		}
	})

	buf := make([]byte, 2049)
	for i := 0; i < frames; i++ {
		frame := buf[:frameSize(i)]
		for j := range frame {
			frame[j] = byte(i)
		}
		if err := a.Send(2, 3, frame); err != nil {
			t.Fatal(err)
		}
		// Send copied the payload: the next iteration's overwrite (and
		// this clobber) must not reach the handler.
		for j := range frame {
			frame[j] = 0xAA
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n, err := got, firstErr
		mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		if n == frames {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: received %d/%d frames", n, frames)
		}
		time.Sleep(time.Millisecond)
	}
}
