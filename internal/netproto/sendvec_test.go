package netproto

import (
	"bytes"
	"testing"
	"time"
)

// The scatter-gather sends behind the batcher's zero-copy path: a
// vector of parts must arrive as one frame whose payload is their
// concatenation, on both transports and through the SendVec fallback
// for transports that never learned SendV.

func TestChanMeshSendV(t *testing.T) {
	hub := NewHub()
	a, b := hub.Endpoint(1), hub.Endpoint(2)
	defer a.Close()
	defer b.Close()
	rc := newCollect()
	b.Handle(9, rc.handler)
	parts := [][]byte{[]byte("head|"), {}, []byte("mid|"), []byte("tail")}
	if err := a.SendV(2, 9, parts); err != nil {
		t.Fatal(err)
	}
	if got := rc.waitFor(t, 1); got[0] != "1:head|mid|tail" {
		t.Fatalf("got %v", got)
	}
}

func TestChanMeshSendVPartsNotRetained(t *testing.T) {
	hub := NewHub()
	a, b := hub.Endpoint(1), hub.Endpoint(2)
	defer a.Close()
	defer b.Close()
	var got []byte
	done := make(chan struct{})
	b.Handle(9, func(from NodeID, p []byte) {
		got = append([]byte(nil), p...)
		close(done)
	})
	part := []byte("reuse-me")
	if err := a.SendV(2, 9, [][]byte{part}); err != nil {
		t.Fatal(err)
	}
	// The sender may recycle its buffers the moment SendV returns; the
	// delivered payload must not alias them.
	for i := range part {
		part[i] = 'X'
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	if string(got) != "reuse-me" {
		t.Fatalf("delivered payload aliases the caller's part: %q", got)
	}
}

func TestTCPMeshSendV(t *testing.T) {
	a, b := newTCPPair(t)
	var got []byte
	done := make(chan struct{})
	b.Handle(4, func(from NodeID, p []byte) {
		got = append([]byte(nil), p...)
		close(done)
	})
	big := bytes.Repeat([]byte{0x5A}, 1<<16)
	parts := [][]byte{[]byte("hdr:"), big, []byte(":tlr")}
	if err := a.SendV(2, 4, parts); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	want := append(append([]byte("hdr:"), big...), []byte(":tlr")...)
	if !bytes.Equal(got, want) {
		t.Fatalf("payload mismatch: %d bytes, want %d", len(got), len(want))
	}
}

// plainTransport hides the SendV method so SendVec must take the
// flatten-and-Send fallback — the shape of any wrapper or test fake
// that predates the vector interface.
type plainTransport struct{ Transport }

func TestSendVecFallbackFlattens(t *testing.T) {
	hub := NewHub()
	a, b := hub.Endpoint(1), hub.Endpoint(2)
	defer a.Close()
	defer b.Close()
	rc := newCollect()
	b.Handle(9, rc.handler)
	var tr Transport = plainTransport{a}
	if _, ok := tr.(VectorSender); ok {
		t.Fatal("wrapper unexpectedly satisfies VectorSender; fallback untested")
	}
	if err := SendVec(tr, 2, 9, [][]byte{[]byte("a|"), []byte("b|"), []byte("c")}); err != nil {
		t.Fatal(err)
	}
	if got := rc.waitFor(t, 1); got[0] != "1:a|b|c" {
		t.Fatalf("got %v", got)
	}
}
