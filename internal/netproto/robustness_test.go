package netproto

import (
	"encoding/binary"
	"math/rand"
	"net"
	"testing"
	"time"
)

// TestMeshSurvivesGarbage: random bytes on the mesh listener must not
// crash the node or poison later deliveries.
func TestMeshSurvivesGarbage(t *testing.T) {
	m, err := NewTCPMesh(1, "127.0.0.1:0", map[NodeID]string{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		c, err := net.Dial("tcp", m.Addr())
		if err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, rng.Intn(64)+1)
		rng.Read(junk)
		c.Write(junk)
		c.Close()
	}
	// A frame with an absurd length must close the connection, not
	// allocate gigabytes.
	c, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], 7)
	c.Write(hello[:])
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], 1<<31)
	hdr[4] = 1
	c.Write(hdr[:])
	c.Close()

	// Legitimate traffic still flows.
	peer, err := NewTCPMesh(2, "127.0.0.1:0", map[NodeID]string{})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	peer.SetPeer(1, m.Addr())
	got := make(chan string, 1)
	m.Handle(3, func(from NodeID, p []byte) { got <- string(p) })
	if err := peer.Send(1, 3, []byte("fine")); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "fine" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delivery failed after garbage connections")
	}
}
