package netproto

import (
	"net"
	"testing"
	"time"

	"lbc/internal/metrics"
)

// TestJitterBackoffBounds pins the retry-delay policy: every draw
// lands in [d/2, d] after capping at MaxBackoff, and draws actually
// vary (jitter exists).
func TestJitterBackoffBounds(t *testing.T) {
	m, err := NewTCPMeshTimeouts(1, "127.0.0.1:0", map[NodeID]string{},
		MeshTimeouts{Backoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	seen := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		d := m.jitterBackoff(40 * time.Millisecond)
		if d < 20*time.Millisecond || d > 40*time.Millisecond {
			t.Fatalf("jittered delay %v outside [20ms, 40ms]", d)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Error("200 draws produced one delay; jitter is not jittering")
	}
	// The cap applies before the jitter draw.
	for i := 0; i < 50; i++ {
		if d := m.jitterBackoff(10 * time.Second); d > 80*time.Millisecond {
			t.Fatalf("capped delay %v exceeds MaxBackoff", d)
		}
	}
}

// TestSendRetriesExhaustedCounts drives Send at a peer that refuses
// every connection: the mesh must retry, give up with the dial error,
// and count the exhaustion.
func TestSendRetriesExhaustedCounts(t *testing.T) {
	// Reserve an address, then close the listener so dials fail fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	m, err := NewTCPMeshTimeouts(1, "127.0.0.1:0",
		map[NodeID]string{2: dead},
		MeshTimeouts{Dial: 200 * time.Millisecond, Retries: 2, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st := metrics.NewStats()
	m.SetStats(st)

	if err := m.Send(2, 1, []byte("x")); err == nil {
		t.Fatal("send to a dead peer succeeded")
	}
	if got := st.Counter(metrics.CtrRetriesExhausted); got != 1 {
		t.Errorf("retries_exhausted = %d, want 1", got)
	}
	// A terminal error (unknown peer) is not an exhaustion.
	if err := m.Send(9, 1, []byte("x")); err == nil {
		t.Fatal("send to an unknown peer succeeded")
	}
	if got := st.Counter(metrics.CtrRetriesExhausted); got != 1 {
		t.Errorf("retries_exhausted after unknown peer = %d, want 1", got)
	}
}
