package netproto

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// collect accumulates received messages for assertions.
type collect struct {
	mu   sync.Mutex
	msgs []string
	cond *sync.Cond
}

func newCollect() *collect {
	c := &collect{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collect) handler(from NodeID, payload []byte) {
	c.mu.Lock()
	c.msgs = append(c.msgs, fmt.Sprintf("%d:%s", from, payload))
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *collect) waitFor(t *testing.T, n int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.msgs) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timeout: have %d msgs, want %d: %v", len(c.msgs), n, c.msgs)
		}
		c.mu.Unlock()
		time.Sleep(time.Millisecond)
		c.mu.Lock()
	}
	return append([]string(nil), c.msgs...)
}

func TestChanMeshDelivery(t *testing.T) {
	hub := NewHub()
	a := hub.Endpoint(1)
	b := hub.Endpoint(2)
	defer a.Close()
	defer b.Close()

	rc := newCollect()
	b.Handle(7, rc.handler)
	if err := a.Send(2, 7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got := rc.waitFor(t, 1)
	if got[0] != "1:hello" {
		t.Fatalf("got %v", got)
	}
}

func TestChanMeshFIFOPerSender(t *testing.T) {
	hub := NewHub()
	a := hub.Endpoint(1)
	b := hub.Endpoint(2)
	defer a.Close()
	defer b.Close()
	rc := newCollect()
	b.Handle(1, rc.handler)
	for i := 0; i < 100; i++ {
		a.Send(2, 1, []byte(fmt.Sprintf("%03d", i)))
	}
	got := rc.waitFor(t, 100)
	for i, m := range got {
		if want := fmt.Sprintf("1:%03d", i); m != want {
			t.Fatalf("msg %d = %q, want %q", i, m, want)
		}
	}
}

func TestChanMeshUnknownPeer(t *testing.T) {
	hub := NewHub()
	a := hub.Endpoint(1)
	defer a.Close()
	if err := a.Send(99, 1, nil); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v", err)
	}
}

func TestChanMeshPeers(t *testing.T) {
	hub := NewHub()
	a := hub.Endpoint(1)
	hub.Endpoint(2)
	hub.Endpoint(3)
	peers := a.Peers()
	if len(peers) != 2 {
		t.Fatalf("peers = %v", peers)
	}
	for _, p := range peers {
		if p == 1 {
			t.Fatal("self in peers")
		}
	}
}

func TestChanMeshPayloadCopied(t *testing.T) {
	hub := NewHub()
	a := hub.Endpoint(1)
	b := hub.Endpoint(2)
	defer a.Close()
	defer b.Close()
	rc := newCollect()
	b.Handle(1, rc.handler)
	buf := []byte("original")
	a.Send(2, 1, buf)
	copy(buf, "CLOBBER!")
	got := rc.waitFor(t, 1)
	if got[0] != "1:original" {
		t.Fatalf("payload aliased sender buffer: %v", got)
	}
}

func TestChanMeshUnhandledTypeDropped(t *testing.T) {
	hub := NewHub()
	a := hub.Endpoint(1)
	b := hub.Endpoint(2)
	defer a.Close()
	defer b.Close()
	if err := a.Send(2, 9, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// No handler for type 9: message silently dropped, no crash.
	time.Sleep(5 * time.Millisecond)
}

func newTCPPair(t *testing.T) (*TCPMesh, *TCPMesh) {
	t.Helper()
	a, err := NewTCPMesh(1, "127.0.0.1:0", map[NodeID]string{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPMesh(2, "127.0.0.1:0", map[NodeID]string{})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	a.SetPeer(2, b.Addr())
	b.SetPeer(1, a.Addr())
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestTCPMeshDelivery(t *testing.T) {
	a, b := newTCPPair(t)
	rc := newCollect()
	b.Handle(3, rc.handler)
	if err := a.Send(2, 3, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	got := rc.waitFor(t, 1)
	if got[0] != "1:over tcp" {
		t.Fatalf("got %v", got)
	}
}

func TestTCPMeshBidirectional(t *testing.T) {
	a, b := newTCPPair(t)
	ra, rb := newCollect(), newCollect()
	a.Handle(1, ra.handler)
	b.Handle(1, rb.handler)
	a.Send(2, 1, []byte("ping"))
	b.Send(1, 1, []byte("pong"))
	if got := rb.waitFor(t, 1); got[0] != "1:ping" {
		t.Fatalf("b got %v", got)
	}
	if got := ra.waitFor(t, 1); got[0] != "2:pong" {
		t.Fatalf("a got %v", got)
	}
}

func TestTCPMeshFIFO(t *testing.T) {
	a, b := newTCPPair(t)
	rc := newCollect()
	b.Handle(1, rc.handler)
	for i := 0; i < 200; i++ {
		if err := a.Send(2, 1, []byte(fmt.Sprintf("%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := rc.waitFor(t, 200)
	for i, m := range got {
		if want := fmt.Sprintf("1:%04d", i); m != want {
			t.Fatalf("msg %d = %q", i, m)
		}
	}
}

func TestTCPMeshLargePayload(t *testing.T) {
	a, b := newTCPPair(t)
	var got []byte
	done := make(chan struct{})
	b.Handle(2, func(from NodeID, p []byte) {
		got = append([]byte(nil), p...)
		close(done)
	})
	big := bytes.Repeat([]byte{0xC3}, 1<<20)
	if err := a.Send(2, 2, big); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	if !bytes.Equal(got, big) {
		t.Fatalf("payload corrupted: %d bytes", len(got))
	}
}

func TestTCPMeshEmptyPayload(t *testing.T) {
	a, b := newTCPPair(t)
	rc := newCollect()
	b.Handle(4, rc.handler)
	if err := a.Send(2, 4, nil); err != nil {
		t.Fatal(err)
	}
	if got := rc.waitFor(t, 1); got[0] != "1:" {
		t.Fatalf("got %v", got)
	}
}

func TestTCPMeshUnknownPeer(t *testing.T) {
	a, _ := newTCPPair(t)
	if err := a.Send(42, 1, nil); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPMeshSendAfterClose(t *testing.T) {
	a, _ := newTCPPair(t)
	a.Close()
	if err := a.Send(2, 1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPMeshConcurrentSenders(t *testing.T) {
	a, b := newTCPPair(t)
	rc := newCollect()
	b.Handle(1, rc.handler)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a.Send(2, 1, []byte(fmt.Sprintf("g%d-%02d", g, i)))
			}
		}(g)
	}
	wg.Wait()
	got := rc.waitFor(t, 200)
	if len(got) != 200 {
		t.Fatalf("received %d", len(got))
	}
}

func TestTCPMeshThreeNodes(t *testing.T) {
	var ms []*TCPMesh
	for i := 1; i <= 3; i++ {
		m, err := NewTCPMesh(NodeID(i), "127.0.0.1:0", map[NodeID]string{})
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
		t.Cleanup(func() { m.Close() })
	}
	for i, m := range ms {
		for j, o := range ms {
			if i != j {
				m.SetPeer(o.Self(), o.Addr())
			}
		}
	}
	rc := newCollect()
	ms[2].Handle(1, rc.handler)
	ms[0].Send(3, 1, []byte("from-1"))
	ms[1].Send(3, 1, []byte("from-2"))
	got := rc.waitFor(t, 2)
	seen := map[string]bool{}
	for _, g := range got {
		seen[g] = true
	}
	if !seen["1:from-1"] || !seen["2:from-2"] {
		t.Fatalf("got %v", got)
	}
}

func BenchmarkTCPSendSmall(b *testing.B) {
	a, err := NewTCPMesh(1, "127.0.0.1:0", map[NodeID]string{})
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewTCPMesh(2, "127.0.0.1:0", map[NodeID]string{})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	defer c.Close()
	a.SetPeer(2, c.Addr())
	done := make(chan struct{}, 1<<20)
	c.Handle(1, func(NodeID, []byte) { done <- struct{}{} })
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(2, 1, payload); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < b.N; i++ {
		<-done
	}
}

func TestHubEndpointReuse(t *testing.T) {
	hub := NewHub()
	a := hub.Endpoint(1)
	if hub.Endpoint(1) != a {
		t.Fatal("Endpoint(1) returned a new endpoint")
	}
	if a.Self() != 1 {
		t.Fatalf("self = %d", a.Self())
	}
}

func TestChanSendAfterTargetClose(t *testing.T) {
	hub := NewHub()
	a := hub.Endpoint(1)
	b := hub.Endpoint(2)
	b.Close()
	// Sending to a closed endpoint must not block forever; either an
	// error or (if the queue still had room) silent drop is fine.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 2000; i++ {
			if err := a.Send(2, 1, []byte("x")); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("send to closed endpoint blocked")
	}
}

func TestSetPeerRedirect(t *testing.T) {
	a, b := newTCPPair(t)
	c, err := NewTCPMesh(3, "127.0.0.1:0", map[NodeID]string{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	// Point "2" at a third node before any traffic: messages for 2 land
	// at c's listener instead (it identifies senders by hello, not
	// address).
	a.SetPeer(2, c.Addr())
	rc := newCollect()
	c.Handle(9, rc.handler)
	if err := a.Send(2, 9, []byte("redirected")); err != nil {
		t.Fatal(err)
	}
	got := rc.waitFor(t, 1)
	if got[0] != "1:redirected" {
		t.Fatalf("got %v", got)
	}
	_ = b
}
