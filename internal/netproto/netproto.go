// Package netproto provides the node-to-node messaging substrate for
// the coherency and lock protocols: typed, length-prefixed binary
// frames with per-sender FIFO ordering (the guarantee TCP gave the
// paper's prototype, which the ordering interlock of §3.4 builds on).
//
// Two implementations are provided: a real TCP mesh (the prototype's
// configuration — a writev per peer at commit) and an in-process
// channel mesh for deterministic tests.
package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// NodeID identifies a node in the cluster.
type NodeID uint32

// Handler consumes an incoming message. Handlers for a given transport
// are invoked sequentially per sender (FIFO); the payload is only valid
// for the duration of the call.
type Handler func(from NodeID, payload []byte)

// Transport sends typed frames between nodes.
type Transport interface {
	// Self returns this endpoint's node id.
	Self() NodeID
	// Send transmits payload to the peer. It blocks until the payload
	// has been written to the channel (TCP send buffer or in-proc
	// queue), mirroring the synchronous writev of the prototype.
	Send(to NodeID, typ uint8, payload []byte) error
	// Handle registers the handler for a message type. Must be called
	// before messages of that type arrive; not safe to call
	// concurrently with message delivery.
	Handle(typ uint8, h Handler)
	// Peers lists the other nodes in the cluster.
	Peers() []NodeID
	// Close tears the endpoint down.
	Close() error
}

// ErrUnknownPeer is returned by Send for an unconfigured destination.
var ErrUnknownPeer = errors.New("netproto: unknown peer")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("netproto: transport closed")

// maxHandlers bounds message type codes (lockmgr uses 0x10-0x1F,
// coherency 0x20-0x2F; codes above 0x3F are reserved).
const maxHandlers = 64

// --- In-process mesh -----------------------------------------------------

// Hub connects in-process endpoints. Message delivery preserves
// per-sender FIFO order (each endpoint drains a single queue).
type Hub struct {
	mu        sync.Mutex
	endpoints map[NodeID]*ChanEndpoint
}

// NewHub creates an empty hub.
func NewHub() *Hub { return &Hub{endpoints: map[NodeID]*ChanEndpoint{}} }

// Endpoint creates (or returns) the endpoint for id.
func (h *Hub) Endpoint(id NodeID) *ChanEndpoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ep, ok := h.endpoints[id]; ok {
		return ep
	}
	ep := &ChanEndpoint{
		hub:  h,
		id:   id,
		ch:   make(chan inMsg, 1024),
		done: make(chan struct{}),
	}
	go ep.run()
	h.endpoints[id] = ep
	return ep
}

func (h *Hub) lookup(id NodeID) *ChanEndpoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.endpoints[id]
}

func (h *Hub) ids(except NodeID) []NodeID {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]NodeID, 0, len(h.endpoints))
	for id := range h.endpoints {
		if id != except {
			out = append(out, id)
		}
	}
	return out
}

type inMsg struct {
	from    NodeID
	typ     uint8
	payload []byte
}

// ChanEndpoint is an in-process Transport attached to a Hub.
type ChanEndpoint struct {
	hub      *Hub
	id       NodeID
	ch       chan inMsg
	done     chan struct{}
	closeOne sync.Once

	hmu      sync.RWMutex
	handlers [maxHandlers]Handler
}

// Self implements Transport.
func (e *ChanEndpoint) Self() NodeID { return e.id }

// Handle implements Transport.
func (e *ChanEndpoint) Handle(typ uint8, h Handler) {
	e.hmu.Lock()
	defer e.hmu.Unlock()
	e.handlers[typ] = h
}

// Send implements Transport. The payload is copied, so the caller may
// reuse its buffer immediately (matching the semantics of a TCP write).
func (e *ChanEndpoint) Send(to NodeID, typ uint8, payload []byte) error {
	dst := e.hub.lookup(to)
	if dst == nil {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, to)
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	select {
	case dst.ch <- inMsg{from: e.id, typ: typ, payload: cp}:
		return nil
	case <-dst.done:
		return ErrClosed
	}
}

// Peers implements Transport.
func (e *ChanEndpoint) Peers() []NodeID { return e.hub.ids(e.id) }

// Close implements Transport.
func (e *ChanEndpoint) Close() error {
	e.closeOne.Do(func() { close(e.done) })
	return nil
}

func (e *ChanEndpoint) run() {
	for {
		select {
		case m := <-e.ch:
			e.dispatch(m.from, m.typ, m.payload)
		case <-e.done:
			return
		}
	}
}

func (e *ChanEndpoint) dispatch(from NodeID, typ uint8, payload []byte) {
	e.hmu.RLock()
	h := e.handlers[typ]
	e.hmu.RUnlock()
	if h != nil {
		h(from, payload)
	}
}

// --- TCP mesh ------------------------------------------------------------

// Frame layout: length u32 (type + payload) | type u8 | payload.
// A connection begins with a 4-byte hello carrying the sender's NodeID;
// each ordered node pair uses its own connection (A dials B to send
// A->B), so per-sender FIFO order is TCP's own ordering.
const frameHeaderLen = 5

// TCPMesh is a Transport over real TCP connections.
type TCPMesh struct {
	self  NodeID
	ln    net.Listener
	peers map[NodeID]string // peer id -> dial address

	hmu      sync.RWMutex
	handlers [maxHandlers]Handler

	cmu      sync.Mutex
	conns    map[NodeID]net.Conn // outgoing connections
	accepted map[net.Conn]struct{}

	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

// NewTCPMesh creates a mesh endpoint listening on listenAddr (use
// "127.0.0.1:0" for tests) with the given peer address map. Handlers
// should be registered before traffic starts.
func NewTCPMesh(self NodeID, listenAddr string, peers map[NodeID]string) (*TCPMesh, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("netproto: listen %s: %w", listenAddr, err)
	}
	m := &TCPMesh{
		self:     self,
		ln:       ln,
		peers:    peers,
		conns:    map[NodeID]net.Conn{},
		accepted: map[net.Conn]struct{}{},
		closed:   make(chan struct{}),
	}
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// Addr returns the mesh's listening address (useful with ":0").
func (m *TCPMesh) Addr() string { return m.ln.Addr().String() }

// Self implements Transport.
func (m *TCPMesh) Self() NodeID { return m.self }

// Handle implements Transport.
func (m *TCPMesh) Handle(typ uint8, h Handler) {
	m.hmu.Lock()
	defer m.hmu.Unlock()
	m.handlers[typ] = h
}

// Peers implements Transport.
func (m *TCPMesh) Peers() []NodeID {
	out := make([]NodeID, 0, len(m.peers))
	for id := range m.peers {
		if id != m.self {
			out = append(out, id)
		}
	}
	return out
}

// SetPeer adds or updates a peer address (before traffic to it starts).
func (m *TCPMesh) SetPeer(id NodeID, addr string) {
	m.cmu.Lock()
	defer m.cmu.Unlock()
	m.peers[id] = addr
}

// Send implements Transport, dialing the peer on first use.
func (m *TCPMesh) Send(to NodeID, typ uint8, payload []byte) error {
	select {
	case <-m.closed:
		return ErrClosed
	default:
	}
	conn, err := m.conn(to)
	if err != nil {
		return err
	}
	hdr := make([]byte, frameHeaderLen)
	binary.LittleEndian.PutUint32(hdr, uint32(1+len(payload)))
	hdr[4] = typ
	m.cmu.Lock()
	defer m.cmu.Unlock()
	if _, err := conn.Write(hdr); err != nil {
		delete(m.conns, to)
		conn.Close()
		return fmt.Errorf("netproto: send to %d: %w", to, err)
	}
	if len(payload) > 0 {
		if _, err := conn.Write(payload); err != nil {
			delete(m.conns, to)
			conn.Close()
			return fmt.Errorf("netproto: send to %d: %w", to, err)
		}
	}
	return nil
}

func (m *TCPMesh) conn(to NodeID) (net.Conn, error) {
	m.cmu.Lock()
	defer m.cmu.Unlock()
	if c, ok := m.conns[to]; ok {
		return c, nil
	}
	addr, ok := m.peers[to]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownPeer, to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netproto: dial %d at %s: %w", to, addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(m.self))
	if _, err := c.Write(hello[:]); err != nil {
		c.Close()
		return nil, err
	}
	m.conns[to] = c
	return c, nil
}

func (m *TCPMesh) acceptLoop() {
	defer m.wg.Done()
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.cmu.Lock()
		select {
		case <-m.closed:
			m.cmu.Unlock()
			c.Close()
			continue
		default:
		}
		m.accepted[c] = struct{}{}
		m.cmu.Unlock()
		m.wg.Add(1)
		go m.readLoop(c)
	}
}

// readLoop services one incoming connection: hello, then frames. These
// goroutines are the "receiver threads" of the prototype (§3.2).
func (m *TCPMesh) readLoop(c net.Conn) {
	defer m.wg.Done()
	defer func() {
		c.Close()
		m.cmu.Lock()
		delete(m.accepted, c)
		m.cmu.Unlock()
	}()
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	var hello [4]byte
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		return
	}
	from := NodeID(binary.LittleEndian.Uint32(hello[:]))
	var hdr [frameHeaderLen]byte
	buf := make([]byte, 64<<10)
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		if n == 0 || n > 1<<30 {
			return
		}
		typ := hdr[4]
		payloadLen := int(n) - 1
		if payloadLen > cap(buf) {
			// Grow as data actually arrives so a hostile length prefix
			// cannot force a giant allocation.
			const chunk = 1 << 20
			grown := make([]byte, 0, min(payloadLen, chunk))
			for len(grown) < payloadLen {
				next := payloadLen - len(grown)
				if next > chunk {
					next = chunk
				}
				start := len(grown)
				grown = append(grown, make([]byte, next)...)
				if _, err := io.ReadFull(c, grown[start:]); err != nil {
					return
				}
			}
			buf = grown
			m.hmu.RLock()
			h := m.handlers[typ]
			m.hmu.RUnlock()
			if h != nil {
				h(from, buf[:payloadLen])
			}
			continue
		}
		b := buf[:payloadLen]
		if _, err := io.ReadFull(c, b); err != nil {
			return
		}
		m.hmu.RLock()
		h := m.handlers[typ]
		m.hmu.RUnlock()
		if h != nil {
			h(from, b)
		}
	}
}

// Close implements Transport.
func (m *TCPMesh) Close() error {
	m.once.Do(func() {
		close(m.closed)
		m.ln.Close()
		m.cmu.Lock()
		for id, c := range m.conns {
			c.Close()
			delete(m.conns, id)
		}
		for c := range m.accepted {
			c.Close()
		}
		m.cmu.Unlock()
	})
	m.wg.Wait()
	return nil
}
