// Package netproto provides the node-to-node messaging substrate for
// the coherency and lock protocols: typed, length-prefixed binary
// frames with per-sender FIFO ordering (the guarantee TCP gave the
// paper's prototype, which the ordering interlock of §3.4 builds on).
//
// Two implementations are provided: a real TCP mesh (the prototype's
// configuration — a writev per peer at commit) and an in-process
// channel mesh for deterministic tests.
package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lbc/internal/bufpool"
	"lbc/internal/metrics"
)

// NodeID identifies a node in the cluster.
type NodeID uint32

// Handler consumes an incoming message. Handlers for a given transport
// are invoked sequentially per sender (FIFO); the payload is only valid
// for the duration of the call.
type Handler func(from NodeID, payload []byte)

// Transport sends typed frames between nodes.
type Transport interface {
	// Self returns this endpoint's node id.
	Self() NodeID
	// Send transmits payload to the peer. It blocks until the payload
	// has been written to the channel (TCP send buffer or in-proc
	// queue), mirroring the synchronous writev of the prototype.
	Send(to NodeID, typ uint8, payload []byte) error
	// Handle registers the handler for a message type. Must be called
	// before messages of that type arrive; not safe to call
	// concurrently with message delivery.
	Handle(typ uint8, h Handler)
	// Peers lists the other nodes in the cluster.
	Peers() []NodeID
	// Close tears the endpoint down.
	Close() error
}

// VectorSender is the optional scatter-gather extension of Transport:
// SendV transmits the logical concatenation of parts as one frame
// without requiring the caller to flatten them first. TCPMesh turns the
// parts into a single writev; in-process transports copy once into
// their delivery buffer. Use the SendVec helper rather than asserting
// the interface directly, so plain Transports (test fakes, wrappers)
// keep working via a flatten fallback.
type VectorSender interface {
	SendV(to NodeID, typ uint8, parts [][]byte) error
}

// SendVec sends the concatenation of parts as one frame, using the
// transport's scatter-gather path when it has one and a single pooled
// flatten otherwise. The parts are not retained after the call.
func SendVec(tr Transport, to NodeID, typ uint8, parts [][]byte) error {
	if vs, ok := tr.(VectorSender); ok {
		return vs.SendV(to, typ, parts)
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	buf := bufpool.Get(total)
	for _, p := range parts {
		buf = append(buf, p...)
	}
	err := tr.Send(to, typ, buf)
	bufpool.Put(buf)
	return err
}

// ErrUnknownPeer is returned by Send for an unconfigured destination.
var ErrUnknownPeer = errors.New("netproto: unknown peer")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("netproto: transport closed")

// ErrPeerUnreachable is returned by Send when the peer cannot be
// dialed within the configured timeout and retry budget (dead node,
// network partition, or wrong address).
var ErrPeerUnreachable = errors.New("netproto: peer unreachable")

// ErrLinkClosed is returned by Send when an established connection
// fails mid-write (peer crash or link loss). The connection is torn
// down; a later Send re-dials.
var ErrLinkClosed = errors.New("netproto: link closed")

// ErrPeerEvicted is returned by Send when the destination has been
// evicted from the cluster membership (see internal/membership): the
// peer is dead to this epoch, so retrying is pointless until it rejoins
// under a new one. Defined here so transport wrappers and the lock
// manager agree on one typed value without an import cycle.
var ErrPeerEvicted = errors.New("netproto: peer evicted")

// maxHandlers bounds message type codes (lockmgr uses 0x10-0x1F,
// coherency 0x20-0x2F, membership 0x30-0x3F; codes above 0x3F are
// reserved).
const maxHandlers = 64

// --- In-process mesh -----------------------------------------------------

// Hub connects in-process endpoints. Message delivery preserves
// per-sender FIFO order (each endpoint drains a single queue).
type Hub struct {
	mu        sync.Mutex
	endpoints map[NodeID]*ChanEndpoint
}

// NewHub creates an empty hub.
func NewHub() *Hub { return &Hub{endpoints: map[NodeID]*ChanEndpoint{}} }

// Endpoint creates (or returns) the endpoint for id.
func (h *Hub) Endpoint(id NodeID) *ChanEndpoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ep, ok := h.endpoints[id]; ok {
		return ep
	}
	ep := &ChanEndpoint{
		hub:  h,
		id:   id,
		ch:   make(chan inMsg, 1024),
		done: make(chan struct{}),
	}
	go ep.run()
	h.endpoints[id] = ep
	return ep
}

func (h *Hub) lookup(id NodeID) *ChanEndpoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.endpoints[id]
}

// Drop closes and forgets the endpoint for id, so a later Endpoint(id)
// call builds a fresh one (a crashed node restarting in-process).
func (h *Hub) Drop(id NodeID) {
	h.mu.Lock()
	ep := h.endpoints[id]
	delete(h.endpoints, id)
	h.mu.Unlock()
	if ep != nil {
		ep.Close()
	}
}

func (h *Hub) ids(except NodeID) []NodeID {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]NodeID, 0, len(h.endpoints))
	for id := range h.endpoints {
		if id != except {
			out = append(out, id)
		}
	}
	return out
}

type inMsg struct {
	from    NodeID
	typ     uint8
	payload []byte
}

var (
	_ VectorSender = (*ChanEndpoint)(nil)
	_ VectorSender = (*TCPMesh)(nil)
)

// ChanEndpoint is an in-process Transport attached to a Hub.
type ChanEndpoint struct {
	hub      *Hub
	id       NodeID
	ch       chan inMsg
	done     chan struct{}
	closeOne sync.Once

	hmu      sync.RWMutex
	handlers [maxHandlers]Handler
}

// Self implements Transport.
func (e *ChanEndpoint) Self() NodeID { return e.id }

// Handle implements Transport.
func (e *ChanEndpoint) Handle(typ uint8, h Handler) {
	e.hmu.Lock()
	defer e.hmu.Unlock()
	e.handlers[typ] = h
}

// Send implements Transport. The payload is copied into a pooled
// buffer, so the caller may reuse its own immediately (matching the
// semantics of a TCP write). The pooled copy is owned by the receiving
// endpoint, which returns it after handler dispatch.
func (e *ChanEndpoint) Send(to NodeID, typ uint8, payload []byte) error {
	cp := append(bufpool.Get(len(payload)), payload...)
	return e.deliver(to, typ, cp)
}

// SendV implements VectorSender: the parts are gathered once into the
// pooled delivery buffer (the copy Send would have made anyway).
func (e *ChanEndpoint) SendV(to NodeID, typ uint8, parts [][]byte) error {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	cp := bufpool.Get(total)
	for _, p := range parts {
		cp = append(cp, p...)
	}
	return e.deliver(to, typ, cp)
}

// deliver enqueues the pooled payload copy at the destination, which
// owns it from here (returned to the pool after handler dispatch).
func (e *ChanEndpoint) deliver(to NodeID, typ uint8, cp []byte) error {
	dst := e.hub.lookup(to)
	if dst == nil {
		bufpool.Put(cp)
		// Unregistered or dropped (crashed) endpoint: unknown and, for
		// callers probing liveness, unreachable.
		return fmt.Errorf("%w (%w): %d", ErrUnknownPeer, ErrPeerUnreachable, to)
	}
	select {
	case dst.ch <- inMsg{from: e.id, typ: typ, payload: cp}:
		return nil
	case <-dst.done:
		bufpool.Put(cp)
		return ErrClosed
	}
}

// Peers implements Transport.
func (e *ChanEndpoint) Peers() []NodeID { return e.hub.ids(e.id) }

// Close implements Transport.
func (e *ChanEndpoint) Close() error {
	e.closeOne.Do(func() { close(e.done) })
	return nil
}

func (e *ChanEndpoint) run() {
	for {
		select {
		case m := <-e.ch:
			e.dispatch(m.from, m.typ, m.payload)
			// The Handler contract says the payload is only valid for
			// the duration of the call, so it can be recycled here.
			bufpool.Put(m.payload)
		case <-e.done:
			return
		}
	}
}

func (e *ChanEndpoint) dispatch(from NodeID, typ uint8, payload []byte) {
	e.hmu.RLock()
	h := e.handlers[typ]
	e.hmu.RUnlock()
	if h != nil {
		h(from, payload)
	}
}

// --- TCP mesh ------------------------------------------------------------

// Frame layout: length u32 (type + payload) | type u8 | payload.
// A connection begins with a 4-byte hello carrying the sender's NodeID;
// each ordered node pair uses its own connection (A dials B to send
// A->B), so per-sender FIFO order is TCP's own ordering.
const frameHeaderLen = 5

// MeshTimeouts bounds how long TCPMesh operations may block so one
// dead peer cannot wedge a sender (the prototype's writev could; a
// production mesh must not).
type MeshTimeouts struct {
	// Dial bounds connection establishment (default 2s).
	Dial time.Duration
	// Write bounds each frame write (default 5s).
	Write time.Duration
	// Retries is how many times Send re-attempts after a dial or write
	// failure before giving up (default 2).
	Retries int
	// Backoff is the initial delay between attempts, doubling each
	// retry (default 10ms). Each delay is jittered — a uniform draw
	// from [d/2, d] — so a burst of senders that failed together does
	// not re-dial in lockstep.
	Backoff time.Duration
	// MaxBackoff caps the doubled delay (default 500ms).
	MaxBackoff time.Duration
}

func (t *MeshTimeouts) fill() {
	if t.Dial <= 0 {
		t.Dial = 2 * time.Second
	}
	if t.Write <= 0 {
		t.Write = 5 * time.Second
	}
	if t.Retries < 0 {
		t.Retries = 0
	} else if t.Retries == 0 {
		t.Retries = 2
	}
	if t.Backoff <= 0 {
		t.Backoff = 10 * time.Millisecond
	}
	if t.MaxBackoff <= 0 {
		t.MaxBackoff = 500 * time.Millisecond
	}
	if t.MaxBackoff < t.Backoff {
		t.MaxBackoff = t.Backoff
	}
}

// peerLink is one outgoing connection with its own lock, so a stalled
// or dialing peer serializes only senders to that peer, not the mesh.
type peerLink struct {
	mu sync.Mutex
	c  net.Conn
}

// TCPMesh is a Transport over real TCP connections.
type TCPMesh struct {
	self NodeID
	ln   net.Listener
	tmo  MeshTimeouts

	rmu sync.Mutex
	rng *rand.Rand // backoff jitter; timing only, never protocol state

	stats atomic.Pointer[metrics.Stats] // optional (SetStats)

	hmu      sync.RWMutex
	handlers [maxHandlers]Handler

	cmu      sync.Mutex
	peers    map[NodeID]string // peer id -> dial address
	links    map[NodeID]*peerLink
	accepted map[net.Conn]struct{}

	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

// NewTCPMesh creates a mesh endpoint listening on listenAddr (use
// "127.0.0.1:0" for tests) with the given peer address map. Handlers
// should be registered before traffic starts.
func NewTCPMesh(self NodeID, listenAddr string, peers map[NodeID]string) (*TCPMesh, error) {
	return NewTCPMeshTimeouts(self, listenAddr, peers, MeshTimeouts{})
}

// NewTCPMeshTimeouts is NewTCPMesh with explicit timeout/retry bounds.
func NewTCPMeshTimeouts(self NodeID, listenAddr string, peers map[NodeID]string, tmo MeshTimeouts) (*TCPMesh, error) {
	tmo.fill()
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("netproto: listen %s: %w", listenAddr, err)
	}
	m := &TCPMesh{
		self:     self,
		ln:       ln,
		tmo:      tmo,
		rng:      rand.New(rand.NewSource(int64(self)*0x9E3779B9 + 1)),
		peers:    peers,
		links:    map[NodeID]*peerLink{},
		accepted: map[net.Conn]struct{}{},
		closed:   make(chan struct{}),
	}
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// Addr returns the mesh's listening address (useful with ":0").
func (m *TCPMesh) Addr() string { return m.ln.Addr().String() }

// Self implements Transport.
func (m *TCPMesh) Self() NodeID { return m.self }

// Handle implements Transport.
func (m *TCPMesh) Handle(typ uint8, h Handler) {
	m.hmu.Lock()
	defer m.hmu.Unlock()
	m.handlers[typ] = h
}

// Peers implements Transport.
func (m *TCPMesh) Peers() []NodeID {
	m.cmu.Lock()
	defer m.cmu.Unlock()
	out := make([]NodeID, 0, len(m.peers))
	for id := range m.peers {
		if id != m.self {
			out = append(out, id)
		}
	}
	return out
}

// SetPeer adds or updates a peer address. Updating an address drops
// any established connection so the next Send dials the new one (used
// when a crashed node restarts on a fresh port).
func (m *TCPMesh) SetPeer(id NodeID, addr string) {
	m.cmu.Lock()
	changed := m.peers[id] != addr
	m.peers[id] = addr
	pl := m.links[id]
	m.cmu.Unlock()
	if changed && pl != nil {
		pl.mu.Lock()
		if pl.c != nil {
			pl.c.Close()
			pl.c = nil
		}
		pl.mu.Unlock()
	}
}

// Send implements Transport, dialing the peer on first use. Dials and
// writes are bounded by the mesh timeouts, and transient failures are
// retried with exponential backoff, so a dead peer costs a bounded
// error instead of wedging the sender forever.
func (m *TCPMesh) Send(to NodeID, typ uint8, payload []byte) error {
	if len(payload) == 0 {
		return m.SendV(to, typ, nil)
	}
	return m.SendV(to, typ, [][]byte{payload})
}

// SetStats attaches a metrics accumulator: sends that exhaust every
// retry count retries_exhausted. Safe to call concurrently with
// traffic; nil detaches.
func (m *TCPMesh) SetStats(st *metrics.Stats) { m.stats.Store(st) }

// jitterBackoff caps d at MaxBackoff and draws the actual delay
// uniformly from [d/2, d], so senders that failed together spread
// their re-dials instead of hammering the peer in lockstep.
func (m *TCPMesh) jitterBackoff(d time.Duration) time.Duration {
	if d > m.tmo.MaxBackoff {
		d = m.tmo.MaxBackoff
	}
	if half := d / 2; half > 0 {
		m.rmu.Lock()
		d = half + time.Duration(m.rng.Int63n(int64(half)+1))
		m.rmu.Unlock()
	}
	return d
}

// SendV implements VectorSender: the parts go to the socket as one
// writev alongside the frame header, with the same timeout/retry
// discipline as Send. The parts are not retained after the call.
// Transient failures retry on a jittered, capped exponential backoff;
// exhausting the retries counts retries_exhausted (SetStats) and
// returns the last error.
func (m *TCPMesh) SendV(to NodeID, typ uint8, parts [][]byte) error {
	var lastErr error
	backoff := m.tmo.Backoff
	for attempt := 0; attempt <= m.tmo.Retries; attempt++ {
		select {
		case <-m.closed:
			return ErrClosed
		default:
		}
		if attempt > 0 {
			select {
			case <-m.closed:
				return ErrClosed
			case <-time.After(m.jitterBackoff(backoff)):
			}
			if backoff < m.tmo.MaxBackoff {
				backoff *= 2
			}
		}
		lastErr = m.trySendV(to, typ, parts)
		if lastErr == nil {
			return nil
		}
		if errors.Is(lastErr, ErrUnknownPeer) || errors.Is(lastErr, ErrClosed) {
			return lastErr
		}
	}
	if st := m.stats.Load(); st != nil {
		st.Add(metrics.CtrRetriesExhausted, 1)
	}
	return lastErr
}

// link returns (creating if needed) the outgoing link state for a
// configured peer, plus its current dial address.
func (m *TCPMesh) link(to NodeID) (*peerLink, string, error) {
	m.cmu.Lock()
	defer m.cmu.Unlock()
	addr, ok := m.peers[to]
	if !ok {
		return nil, "", fmt.Errorf("%w: %d", ErrUnknownPeer, to)
	}
	pl, ok := m.links[to]
	if !ok {
		pl = &peerLink{}
		m.links[to] = pl
	}
	return pl, addr, nil
}

func (m *TCPMesh) trySendV(to NodeID, typ uint8, parts [][]byte) error {
	pl, addr, err := m.link(to)
	if err != nil {
		return err
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.c == nil {
		c, err := net.DialTimeout("tcp", addr, m.tmo.Dial)
		if err != nil {
			return fmt.Errorf("netproto: dial %d at %s: %w (%v)", to, addr, ErrPeerUnreachable, err)
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		var hello [4]byte
		binary.LittleEndian.PutUint32(hello[:], uint32(m.self))
		c.SetWriteDeadline(time.Now().Add(m.tmo.Write))
		if _, err := c.Write(hello[:]); err != nil {
			c.Close()
			return fmt.Errorf("netproto: hello to %d: %w (%v)", to, ErrLinkClosed, err)
		}
		c.SetWriteDeadline(time.Time{})
		pl.c = c
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	// net.Buffers.WriteTo consumes the slice it is handed, so the vector
	// is rebuilt per attempt; the parts themselves are only read.
	hdr := make([]byte, frameHeaderLen)
	binary.LittleEndian.PutUint32(hdr, uint32(1+total))
	hdr[4] = typ
	bufs := make(net.Buffers, 0, 1+len(parts))
	bufs = append(bufs, hdr)
	for _, p := range parts {
		if len(p) > 0 {
			bufs = append(bufs, p)
		}
	}
	pl.c.SetWriteDeadline(time.Now().Add(m.tmo.Write))
	if _, err := bufs.WriteTo(pl.c); err != nil {
		pl.c.Close()
		pl.c = nil
		return fmt.Errorf("netproto: send to %d: %w (%v)", to, ErrLinkClosed, err)
	}
	pl.c.SetWriteDeadline(time.Time{})
	return nil
}

func (m *TCPMesh) acceptLoop() {
	defer m.wg.Done()
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.cmu.Lock()
		select {
		case <-m.closed:
			m.cmu.Unlock()
			c.Close()
			continue
		default:
		}
		m.accepted[c] = struct{}{}
		m.cmu.Unlock()
		m.wg.Add(1)
		go m.readLoop(c)
	}
}

// readLoop services one incoming connection: hello, then frames. These
// goroutines are the "receiver threads" of the prototype (§3.2).
func (m *TCPMesh) readLoop(c net.Conn) {
	defer m.wg.Done()
	defer func() {
		c.Close()
		m.cmu.Lock()
		delete(m.accepted, c)
		m.cmu.Unlock()
	}()
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	var hello [4]byte
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		return
	}
	from := NodeID(binary.LittleEndian.Uint32(hello[:]))
	var hdr [frameHeaderLen]byte
	// Frame buffers come from the shared pool, one Get/Put per frame:
	// the handler contract bounds payload validity to the call, so the
	// buffer can be recycled immediately after dispatch — across all
	// receiver goroutines, frames reuse a handful of pooled buffers
	// instead of allocating per frame.
	const chunk = 1 << 20
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		if n == 0 || n > 1<<30 {
			return
		}
		typ := hdr[4]
		payloadLen := int(n) - 1
		buf := bufpool.Get(min(payloadLen, chunk))
		if payloadLen <= cap(buf) {
			buf = buf[:payloadLen]
			if _, err := io.ReadFull(c, buf); err != nil {
				bufpool.Put(buf)
				return
			}
		} else {
			// Oversized frame: grow as data actually arrives so a
			// hostile length prefix cannot force a giant allocation
			// (and the pool rejects >16MiB buffers when returned).
			ok := true
			for len(buf) < payloadLen {
				next := payloadLen - len(buf)
				if next > chunk {
					next = chunk
				}
				start := len(buf)
				buf = append(buf, make([]byte, next)...)
				if _, err := io.ReadFull(c, buf[start:]); err != nil {
					ok = false
					break
				}
			}
			if !ok {
				bufpool.Put(buf)
				return
			}
		}
		m.hmu.RLock()
		h := m.handlers[typ]
		m.hmu.RUnlock()
		if h != nil {
			h(from, buf[:payloadLen])
		}
		bufpool.Put(buf)
	}
}

// Close implements Transport.
func (m *TCPMesh) Close() error {
	m.once.Do(func() {
		close(m.closed)
		m.ln.Close()
		m.cmu.Lock()
		links := make([]*peerLink, 0, len(m.links))
		for id, pl := range m.links {
			links = append(links, pl)
			delete(m.links, id)
		}
		for c := range m.accepted {
			c.Close()
		}
		m.cmu.Unlock()
		for _, pl := range links {
			pl.mu.Lock()
			if pl.c != nil {
				pl.c.Close()
				pl.c = nil
			}
			pl.mu.Unlock()
		}
	})
	m.wg.Wait()
	return nil
}
