package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Batch framing: several independently-encoded payloads packed into one
// transport message, so a group-committed log batch ships to each peer
// as a single frame instead of one message per transaction.
//
// Layout (little endian):
//
//	+0  count u32
//	    count * { len u32, bytes [len] }

// ErrBadBatch reports a structurally invalid batch frame.
var ErrBadBatch = errors.New("netproto: malformed batch frame")

// AppendBatch appends a batch frame carrying parts to buf.
func AppendBatch(buf []byte, parts [][]byte) []byte {
	var scratch [4]byte
	binary.LittleEndian.PutUint32(scratch[:], uint32(len(parts)))
	buf = append(buf, scratch[:]...)
	for _, p := range parts {
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(p)))
		buf = append(buf, scratch[:]...)
		buf = append(buf, p...)
	}
	return buf
}

// SplitBatch decodes a batch frame. The returned parts alias b.
func SplitBatch(b []byte) ([][]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: %d-byte frame", ErrBadBatch, len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	// Each part costs at least its 4-byte length word, so a count beyond
	// len(b)/4 cannot be honest — reject before allocating for it.
	if n > len(b)/4 {
		return nil, fmt.Errorf("%w: count %d exceeds frame size %d", ErrBadBatch, n, len(b))
	}
	p := 4
	parts := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if p+4 > len(b) {
			return nil, fmt.Errorf("%w: truncated at part %d", ErrBadBatch, i)
		}
		sz := int(binary.LittleEndian.Uint32(b[p:]))
		p += 4
		if sz < 0 || p+sz > len(b) {
			return nil, fmt.Errorf("%w: part %d overruns frame", ErrBadBatch, i)
		}
		parts = append(parts, b[p:p+sz:p+sz])
		p += sz
	}
	if p != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadBatch, len(b)-p)
	}
	return parts, nil
}
