// Package merge implements the paper's log-merge utility (§3.4): each
// node produces its own redo log, so before the standard recovery
// procedure can run, the per-node logs must be merged into a single log
// whose order is consistent with the interleaving of updates.
//
// The merge exploits strict two-phase locking: if two transactions
// acquired the same lock, the one with the earlier sequence number for
// that lock committed first. Those pairwise constraints define a
// partial order over all records; the utility topologically sorts the
// records (ties broken deterministically by node id and per-node commit
// sequence) and emits them into one log suitable for rvm.Recover.
package merge

import (
	"fmt"
	"sort"

	"lbc/internal/wal"
)

// Merge reads every complete record from the input logs and returns
// them in an order consistent with all per-lock sequence constraints.
// Torn tails are ignored (they are uncommitted by definition).
func Merge(inputs ...wal.Device) ([]*wal.TxRecord, error) {
	var all []*wal.TxRecord
	for i, dev := range inputs {
		txs, err := wal.ReadDevice(dev)
		if err != nil {
			return nil, fmt.Errorf("merge: read input %d: %w", i, err)
		}
		for _, tx := range txs {
			if !tx.Checkpoint {
				all = append(all, tx)
			}
		}
	}
	return Order(all)
}

// Order topologically sorts records under the per-lock sequence
// constraints. It is exposed separately so in-memory record sets (e.g.
// from the coherency layer) can be merged without device round trips.
//
// Records with an identical (node, commit-seq) identity are collapsed
// to one: a client that retries an ambiguous append after a storage
// failover can legitimately write the same record twice, and replay
// must stay idempotent under that at-least-once behaviour.
func Order(all []*wal.TxRecord) ([]*wal.TxRecord, error) {
	type identity struct {
		node uint32
		seq  uint64
	}
	seen := make(map[identity]bool, len(all))
	deduped := all[:0:0]
	for _, tx := range all {
		id := identity{node: tx.Node, seq: tx.TxSeq}
		if seen[id] {
			continue
		}
		seen[id] = true
		deduped = append(deduped, tx)
	}
	all = deduped

	// Group records per lock and sort by that lock's sequence number;
	// consecutive pairs become ordering edges.
	type ref struct {
		idx int
		seq uint64
	}
	perLock := map[uint32][]ref{}
	for i, tx := range all {
		for _, l := range tx.Locks {
			perLock[l.LockID] = append(perLock[l.LockID], ref{idx: i, seq: l.Seq})
		}
	}

	succs := make([][]int, len(all))
	indeg := make([]int, len(all))
	for lockID, refs := range perLock {
		sort.Slice(refs, func(i, j int) bool { return refs[i].seq < refs[j].seq })
		for k := 1; k < len(refs); k++ {
			if refs[k].seq == refs[k-1].seq {
				a, b := all[refs[k-1].idx], all[refs[k].idx]
				return nil, fmt.Errorf(
					"merge: lock %d acquired twice at sequence %d (tx %d/%d and %d/%d): corrupt logs",
					lockID, refs[k].seq, a.Node, a.TxSeq, b.Node, b.TxSeq)
			}
			succs[refs[k-1].idx] = append(succs[refs[k-1].idx], refs[k].idx)
			indeg[refs[k].idx]++
		}
	}

	// Kahn's algorithm with a deterministic ready heap ordered by
	// (node, per-node commit seq).
	less := func(i, j int) bool {
		if all[i].Node != all[j].Node {
			return all[i].Node < all[j].Node
		}
		return all[i].TxSeq < all[j].TxSeq
	}
	var ready []int
	push := func(i int) {
		ready = append(ready, i)
		sort.Slice(ready, func(a, b int) bool { return less(ready[a], ready[b]) })
	}
	for i := range all {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	sort.Slice(ready, func(a, b int) bool { return less(ready[a], ready[b]) })

	out := make([]*wal.TxRecord, 0, len(all))
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		out = append(out, all[i])
		for _, s := range succs[i] {
			indeg[s]--
			if indeg[s] == 0 {
				push(s)
			}
		}
	}
	if len(out) != len(all) {
		return nil, fmt.Errorf("merge: ordering cycle across %d records (logs are inconsistent)",
			len(all)-len(out))
	}
	return out, nil
}

// MergeTo merges the inputs and appends the ordered records to out in
// the standard encoding, returning the number of records written. The
// output log can then be fed to rvm.Recover unchanged.
func MergeTo(out wal.Device, inputs ...wal.Device) (int, error) {
	txs, err := Merge(inputs...)
	if err != nil {
		return 0, err
	}
	var buf []byte
	for _, tx := range txs {
		buf = wal.AppendStandard(buf[:0], tx)
		if _, err := out.Append(buf); err != nil {
			return 0, fmt.Errorf("merge: append output: %w", err)
		}
	}
	if err := out.Sync(); err != nil {
		return 0, err
	}
	return len(txs), nil
}
