package merge_test

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"lbc/internal/coherency"
	"lbc/internal/merge"
	"lbc/internal/netproto"
	"lbc/internal/rvm"
	"lbc/internal/wal"
)

func rec(node uint32, txSeq uint64, locks []wal.LockRec, off uint64, data string) *wal.TxRecord {
	return &wal.TxRecord{
		Node: node, TxSeq: txSeq, Locks: locks,
		Ranges: []wal.RangeRec{{Region: 1, Off: off, Data: []byte(data)}},
	}
}

func lk(id uint32, seq uint64, wrote bool) wal.LockRec {
	return wal.LockRec{LockID: id, Seq: seq, Wrote: wrote}
}

func devFrom(recs ...*wal.TxRecord) wal.Device {
	d := wal.NewMemDevice()
	var buf []byte
	for _, r := range recs {
		buf = wal.AppendStandard(buf[:0], r)
		d.Append(buf)
	}
	return d
}

func TestMergeInterleavedLocks(t *testing.T) {
	// Node 1 wrote at lock seqs 1 and 3; node 2 at seq 2.
	log1 := devFrom(
		rec(1, 1, []wal.LockRec{lk(7, 1, true)}, 0, "a"),
		rec(1, 2, []wal.LockRec{lk(7, 3, true)}, 0, "c"),
	)
	log2 := devFrom(
		rec(2, 1, []wal.LockRec{lk(7, 2, true)}, 0, "b"),
	)
	out, err := merge.Merge(log1, log2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("merged %d records", len(out))
	}
	var got string
	for _, tx := range out {
		got += string(tx.Ranges[0].Data)
	}
	if got != "abc" {
		t.Fatalf("merged order = %q, want abc", got)
	}
}

func TestMergeSeqGapsFromAborts(t *testing.T) {
	// Seq 2 was consumed by an aborted acquire and appears in no log;
	// the merge must not stall.
	log1 := devFrom(rec(1, 1, []wal.LockRec{lk(7, 1, true)}, 0, "a"))
	log2 := devFrom(rec(2, 1, []wal.LockRec{lk(7, 3, true)}, 0, "b"))
	out, err := merge.Merge(log1, log2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || string(out[0].Ranges[0].Data) != "a" {
		t.Fatalf("out = %v", out)
	}
}

func TestMergeIndependentLocksDeterministic(t *testing.T) {
	// No shared locks: tie-break by (node, txSeq) must be stable.
	log1 := devFrom(
		rec(1, 1, []wal.LockRec{lk(1, 1, true)}, 0, "x"),
		rec(1, 2, []wal.LockRec{lk(1, 2, true)}, 0, "y"),
	)
	log2 := devFrom(rec(2, 1, []wal.LockRec{lk(2, 1, true)}, 8, "z"))
	a, err := merge.Merge(log1, log2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := merge.Merge(log2, log1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].TxSeq != b[i].TxSeq {
			t.Fatalf("merge not input-order independent at %d", i)
		}
	}
}

func TestMergeMultiLockTransaction(t *testing.T) {
	// tx B holds locks 1 and 2; it must come after A (lock 1) and
	// before C (lock 2).
	logA := devFrom(rec(1, 1, []wal.LockRec{lk(1, 1, true)}, 0, "A"))
	logB := devFrom(rec(2, 1, []wal.LockRec{lk(1, 2, true), lk(2, 1, true)}, 0, "B"))
	logC := devFrom(rec(3, 1, []wal.LockRec{lk(2, 2, true)}, 0, "C"))
	out, err := merge.Merge(logA, logB, logC)
	if err != nil {
		t.Fatal(err)
	}
	var got string
	for _, tx := range out {
		got += string(tx.Ranges[0].Data)
	}
	if got != "ABC" {
		t.Fatalf("order = %q", got)
	}
}

func TestMergeDetectsDuplicateSeq(t *testing.T) {
	log1 := devFrom(rec(1, 1, []wal.LockRec{lk(7, 1, true)}, 0, "a"))
	log2 := devFrom(rec(2, 1, []wal.LockRec{lk(7, 1, true)}, 0, "b"))
	if _, err := merge.Merge(log1, log2); err == nil {
		t.Fatal("duplicate lock sequence not detected")
	}
}

func TestMergeDetectsCycle(t *testing.T) {
	// A before B on lock 1, B before A on lock 2: impossible under
	// 2PL, must be reported.
	a := rec(1, 1, []wal.LockRec{lk(1, 1, true), lk(2, 2, true)}, 0, "a")
	b := rec(2, 1, []wal.LockRec{lk(1, 2, true), lk(2, 1, true)}, 0, "b")
	if _, err := merge.Order([]*wal.TxRecord{a, b}); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestMergeToProducesRecoverableLog(t *testing.T) {
	log1 := devFrom(
		rec(1, 1, []wal.LockRec{lk(7, 1, true)}, 0, "old value"),
	)
	log2 := devFrom(
		rec(2, 1, []wal.LockRec{lk(7, 2, true)}, 0, "new value"),
	)
	merged := wal.NewMemDevice()
	n, err := merge.MergeTo(merged, log1, log2)
	if err != nil || n != 2 {
		t.Fatalf("MergeTo: %d, %v", n, err)
	}
	data := rvm.NewMemStore()
	if _, err := rvm.Recover(merged, data, rvm.RecoverOptions{}); err != nil {
		t.Fatal(err)
	}
	img, _ := data.LoadRegion(1)
	if string(img[:9]) != "new value" {
		t.Fatalf("recovered image = %q", img[:9])
	}
}

func TestMergeEmptyInputs(t *testing.T) {
	out, err := merge.Merge(wal.NewMemDevice(), wal.NewMemDevice())
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

// TestPropertyMergedRecoveryMatchesCoherentImage is the paper's
// end-to-end recoverability claim: running distributed transactions,
// merging the per-node logs, and replaying them into the permanent
// image must reproduce exactly the state the coherent caches converged
// to (§3.4).
func TestPropertyMergedRecoveryMatchesCoherentImage(t *testing.T) {
	f := func(seed int64) bool {
		const (
			kNodes = 3
			kLocks = 3
			segLen = 128
		)
		hub := netproto.NewHub()
		ids := []netproto.NodeID{1, 2, 3}
		var nodes []*coherency.Node
		var logs []wal.Device
		for _, id := range ids {
			log := wal.NewMemDevice()
			logs = append(logs, log)
			r, _ := rvm.Open(rvm.Options{Node: uint32(id), Log: log})
			n, err := coherency.New(coherency.Options{
				RVM: r, Transport: hub.Endpoint(id), Nodes: ids,
			})
			if err != nil {
				t.Log(err)
				return false
			}
			defer n.Close()
			nodes = append(nodes, n)
		}
		for _, n := range nodes {
			if _, err := n.MapRegion(1, kLocks*segLen); err != nil {
				t.Log(err)
				return false
			}
			for l := uint32(0); l < kLocks; l++ {
				n.AddSegment(coherency.Segment{LockID: l, Region: 1,
					Off: uint64(l) * segLen, Len: segLen})
			}
		}
		for _, n := range nodes {
			if err := n.WaitPeers(1, 2, 5*time.Second); err != nil {
				t.Log(err)
				return false
			}
		}

		var wg sync.WaitGroup
		for i := range nodes {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed + int64(i)))
				for k := 0; k < 15; k++ {
					lock := uint32(r.Intn(kLocks))
					tx := nodes[i].Begin(rvm.NoRestore)
					if err := tx.Acquire(lock); err != nil {
						t.Error(err)
						return
					}
					off := uint64(lock)*segLen + uint64(r.Intn(segLen-8))
					data := make([]byte, r.Intn(7)+1)
					r.Read(data)
					tx.Write(nodes[i].RVM().Region(1), off, data)
					if _, err := tx.Commit(rvm.NoFlush); err != nil {
						t.Error(err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		// Quiesce all nodes.
		for _, n := range nodes {
			for l := uint32(0); l < kLocks; l++ {
				tx := n.Begin(rvm.NoRestore)
				if err := tx.Acquire(l); err != nil {
					t.Error(err)
					return false
				}
				tx.Commit(rvm.NoFlush)
			}
		}
		want := append([]byte(nil), nodes[0].RVM().Region(1).Bytes()...)

		// Merge the three logs and recover into a fresh store.
		merged := wal.NewMemDevice()
		if _, err := merge.MergeTo(merged, logs...); err != nil {
			t.Log(err)
			return false
		}
		data := rvm.NewMemStore()
		data.StoreRegion(1, make([]byte, kLocks*segLen))
		if _, err := rvm.Recover(merged, data, rvm.RecoverOptions{}); err != nil {
			t.Log(err)
			return false
		}
		img, _ := data.LoadRegion(1)
		return bytes.Equal(img, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
