package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"lbc/internal/rvm"
)

// This file holds the server side of the quorum-replication protocol
// used by internal/replstore: version-tagged region writes (so a
// client can validate freshness with a version quorum and read-repair
// stale copies), offset-guarded idempotent log appends (so a retried
// append after a lost ack cannot duplicate or misorder records), and
// epoch-numbered views (the replica-set membership that quorum clients
// agree on). The server stays dumb: it enforces per-key version
// monotonicity and append offsets, nothing more — all quorum logic
// lives in the client.

// Meta regions. Region ids at or above metaRegionMin are reserved for
// server-internal state (the version table and the current view); they
// are persisted through the ordinary data store so they survive with
// the images, but are hidden from ListRegions.
const (
	metaRegionMin      uint32 = 0xFFFFFFF0
	metaRegionView     uint32 = 0xFFFFFFFE
	metaRegionVersions uint32 = 0xFFFFFFFF
)

// View is an epoch-numbered replica set. Higher epochs win; a server
// accepts a SetView only if it advances the epoch, so concurrent
// reconfigurations cannot regress the membership.
type View struct {
	Epoch   uint64
	Members []string
}

// Clone returns a deep copy.
func (v View) Clone() View {
	return View{Epoch: v.Epoch, Members: append([]string(nil), v.Members...)}
}

// Majority returns the quorum size of the view: floor(n/2)+1.
func (v View) Majority() int { return len(v.Members)/2 + 1 }

// Contains reports whether addr is a member of the view.
func (v View) Contains(addr string) bool {
	for _, m := range v.Members {
		if m == addr {
			return true
		}
	}
	return false
}

func encodeView(v View) []byte {
	n := 12
	for _, m := range v.Members {
		n += 2 + len(m)
	}
	out := make([]byte, 12, n)
	binary.LittleEndian.PutUint64(out, v.Epoch)
	binary.LittleEndian.PutUint32(out[8:], uint32(len(v.Members)))
	for _, m := range v.Members {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(m)))
		out = append(out, l[:]...)
		out = append(out, m...)
	}
	return out
}

func decodeView(b []byte) (View, error) {
	if len(b) < 12 {
		return View{}, errors.New("store: short view")
	}
	v := View{Epoch: binary.LittleEndian.Uint64(b)}
	n := int(binary.LittleEndian.Uint32(b[8:]))
	b = b[12:]
	for i := 0; i < n; i++ {
		if len(b) < 2 {
			return View{}, errors.New("store: malformed view")
		}
		l := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if len(b) < l {
			return View{}, errors.New("store: malformed view member")
		}
		v.Members = append(v.Members, string(b[:l]))
		b = b[l:]
	}
	if len(b) != 0 {
		return View{}, errors.New("store: trailing view bytes")
	}
	return v, nil
}

// versionedState adds the version-table and view fields to Server;
// kept separate so server.go stays focused on transport and dispatch.
type versionedState struct {
	vmu        sync.Mutex
	versions   map[uint32]uint64
	versLoaded bool
	view       View
	viewLoaded bool

	logOpMu sync.Mutex
	logOps  map[uint32]*sync.Mutex
}

// logOpLock returns the mutex serializing mutations of one node's log.
// Log ops from different connections run on different goroutines; the
// offset-guard handlers read the size and then mutate, so the check and
// the mutation must be atomic per log or two racing appends could both
// pass the same guard.
func (s *Server) logOpLock(node uint32) *sync.Mutex {
	s.logOpMu.Lock()
	defer s.logOpMu.Unlock()
	if s.logOps == nil {
		s.logOps = map[uint32]*sync.Mutex{}
	}
	m := s.logOps[node]
	if m == nil {
		m = &sync.Mutex{}
		s.logOps[node] = m
	}
	return m
}

// loadVersionsLocked lazily loads the persisted version table.
func (s *Server) loadVersionsLocked() error {
	if s.versLoaded {
		return nil
	}
	s.versions = map[uint32]uint64{}
	img, err := s.data.LoadRegion(metaRegionVersions)
	if err != nil {
		if errors.Is(err, rvm.ErrNoRegion) {
			s.versLoaded = true
			return nil
		}
		return err
	}
	if len(img) < 4 {
		return errors.New("store: corrupt version table")
	}
	n := int(binary.LittleEndian.Uint32(img))
	if len(img) != 4+12*n {
		return errors.New("store: corrupt version table")
	}
	for i := 0; i < n; i++ {
		off := 4 + 12*i
		id := binary.LittleEndian.Uint32(img[off:])
		s.versions[id] = binary.LittleEndian.Uint64(img[off+4:])
	}
	s.versLoaded = true
	return nil
}

// saveVersionsLocked persists the version table (sorted for
// deterministic images).
func (s *Server) saveVersionsLocked() error {
	ids := make([]uint32, 0, len(s.versions))
	for id := range s.versions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]byte, 4+12*len(ids))
	binary.LittleEndian.PutUint32(out, uint32(len(ids)))
	for i, id := range ids {
		off := 4 + 12*i
		binary.LittleEndian.PutUint32(out[off:], id)
		binary.LittleEndian.PutUint64(out[off+4:], s.versions[id])
	}
	return s.data.StoreRegion(metaRegionVersions, out)
}

func (s *Server) loadViewLocked() error {
	if s.viewLoaded {
		return nil
	}
	img, err := s.data.LoadRegion(metaRegionView)
	if err != nil {
		if errors.Is(err, rvm.ErrNoRegion) {
			s.viewLoaded = true
			return nil
		}
		return err
	}
	v, err := decodeView(img)
	if err != nil {
		return err
	}
	s.view = v
	s.viewLoaded = true
	return nil
}

// CurrentView returns the view this replica believes in (epoch 0 when
// the replica was never initialized into one). Exposed for /debug/lbc.
func (s *Server) CurrentView() (View, error) {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	if err := s.loadViewLocked(); err != nil {
		return View{}, err
	}
	return s.view.Clone(), nil
}

// handleReadVersioned serves {region u32} -> {ver u64, data}. An
// absent region reads as version 0 with no data — never an error, so
// quorum reads can count replicas that simply have not seen the key.
func (s *Server) handleReadVersioned(body []byte) ([]byte, error) {
	if len(body) != 4 {
		return nil, errors.New("store: bad ReadVersioned request")
	}
	id := binary.LittleEndian.Uint32(body)
	s.vmu.Lock()
	defer s.vmu.Unlock()
	if err := s.loadVersionsLocked(); err != nil {
		return nil, err
	}
	ver := s.versions[id]
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, ver)
	if ver == 0 {
		return out, nil
	}
	img, err := s.data.LoadRegion(id)
	if err != nil {
		return nil, err
	}
	return append(out, img...), nil
}

// handleVersionOf serves {region u32} -> {ver u64}.
func (s *Server) handleVersionOf(body []byte) ([]byte, error) {
	if len(body) != 4 {
		return nil, errors.New("store: bad VersionOf request")
	}
	id := binary.LittleEndian.Uint32(body)
	s.vmu.Lock()
	defer s.vmu.Unlock()
	if err := s.loadVersionsLocked(); err != nil {
		return nil, err
	}
	var out [8]byte
	binary.LittleEndian.PutUint64(out[:], s.versions[id])
	return out[:], nil
}

// handleWriteVersioned serves {region u32, ver u64, data} -> {cur u64}.
// The write applies only if ver advances the region's version; a stale
// or duplicate delivery (retry, read-repair race) acks idempotently
// with the version now current. An equal tag must carry the identical
// payload: tags are writer-unique (see replstore.StoreRegion), so a
// legitimate duplicate is byte-identical by construction — different
// bytes under one tag mean two writers collided on it, and the write is
// rejected so the collision fails visibly instead of leaving replicas
// divergent under a tag read-repair can never reconcile.
func (s *Server) handleWriteVersioned(body []byte) ([]byte, error) {
	if len(body) < 12 {
		return nil, errors.New("store: bad WriteVersioned request")
	}
	id := binary.LittleEndian.Uint32(body)
	if id >= metaRegionMin {
		return nil, fmt.Errorf("store: region %d is reserved", id)
	}
	ver := binary.LittleEndian.Uint64(body[4:])
	s.vmu.Lock()
	defer s.vmu.Unlock()
	if err := s.loadVersionsLocked(); err != nil {
		return nil, err
	}
	cur := s.versions[id]
	switch {
	case ver > cur:
		if err := s.data.StoreRegion(id, body[12:]); err != nil {
			return nil, err
		}
		s.versions[id] = ver
		if err := s.saveVersionsLocked(); err != nil {
			return nil, err
		}
		cur = ver

	case ver == cur && ver != 0:
		img, err := s.data.LoadRegion(id)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(img, body[12:]) {
			return nil, fmt.Errorf("store: region %d: conflicting write at version %d", id, ver)
		}
	}
	var out [8]byte
	binary.LittleEndian.PutUint64(out[:], cur)
	return out[:], nil
}

// handleGetView serves {} -> {view}.
func (s *Server) handleGetView() ([]byte, error) {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	if err := s.loadViewLocked(); err != nil {
		return nil, err
	}
	return encodeView(s.view), nil
}

// handleSetView serves {view} -> {view now current}. Only an epoch
// advance is accepted; a stale installer learns the newer view from
// the response.
func (s *Server) handleSetView(body []byte) ([]byte, error) {
	v, err := decodeView(body)
	if err != nil {
		return nil, err
	}
	if v.Epoch == 0 || len(v.Members) == 0 {
		return nil, errors.New("store: view needs an epoch and members")
	}
	s.vmu.Lock()
	defer s.vmu.Unlock()
	if err := s.loadViewLocked(); err != nil {
		return nil, err
	}
	if v.Epoch > s.view.Epoch {
		if err := s.data.StoreRegion(metaRegionView, encodeView(v)); err != nil {
			return nil, err
		}
		s.view = v.Clone()
	}
	return encodeView(s.view), nil
}

// logBehind reports an AppendLogAt whose expected offset lies beyond
// the replica's log: the replica is behind and needs the gap copied
// before it can accept the record. serveConn turns it into a
// statusBehind response instead of a plain error.
type logBehind struct{ size int64 }

func (e *logBehind) Error() string {
	return fmt.Sprintf("store: log behind, size %d", e.size)
}

// handleAppendLogAt serves {node u32, expected u64, data} ->
// {newSize u64}. The append applies only at the expected offset:
//   - size == expected: plain append.
//   - size >= expected+len: possible duplicate — the existing bytes at
//     [expected, expected+len) are compared; identical content acks
//     idempotently, divergent content (an unacked tail from a previous
//     incarnation that lost the quorum race) is truncated away and
//     overwritten with the canonical record.
//   - expected < size < expected+len: torn or divergent tail —
//     truncated to expected, then appended.
//   - size < expected: the replica is behind; statusBehind carries its
//     current size so the client can copy the gap from a fresh peer.
func (s *Server) handleAppendLogAt(body []byte) ([]byte, error) {
	if len(body) < 12 {
		return nil, errors.New("store: bad AppendLogAt request")
	}
	node := binary.LittleEndian.Uint32(body)
	expected := int64(binary.LittleEndian.Uint64(body[4:]))
	data := body[12:]
	dev, err := s.Log(node)
	if err != nil {
		return nil, err
	}
	mu := s.logOpLock(node)
	mu.Lock()
	defer mu.Unlock()
	size, err := dev.Size()
	if err != nil {
		return nil, err
	}
	switch {
	case size < expected:
		return nil, &logBehind{size: size}

	case size == expected:
		// Plain append at the tail.

	case size >= expected+int64(len(data)):
		same, err := tailEquals(dev, expected, data)
		if err != nil {
			return nil, err
		}
		if same {
			var out [8]byte
			binary.LittleEndian.PutUint64(out[:], uint64(size))
			return out[:], nil
		}
		if err := dev.Truncate(expected); err != nil {
			return nil, err
		}

	default: // expected < size < expected+len: torn tail
		if err := dev.Truncate(expected); err != nil {
			return nil, err
		}
	}
	off, err := dev.Append(data)
	if err != nil {
		return nil, err
	}
	var out [8]byte
	binary.LittleEndian.PutUint64(out[:], uint64(off)+uint64(len(data)))
	return out[:], nil
}

// tailEquals reports whether the device holds exactly data at
// [off, off+len(data)).
func tailEquals(dev interface {
	Open(from int64) (io.ReadCloser, error)
}, off int64, data []byte) (bool, error) {
	rc, err := dev.Open(off)
	if err != nil {
		return false, err
	}
	defer rc.Close()
	buf := make([]byte, len(data))
	if _, err := io.ReadFull(rc, buf); err != nil {
		return false, err
	}
	for i := range buf {
		if buf[i] != data[i] {
			return false, nil
		}
	}
	return true, nil
}

// handleLogStat serves {} -> {n u32, (node u32, size u64)*}: every
// log's size in one round trip, for replica-lag tracking and catch-up.
func (s *Server) handleLogStat() ([]byte, error) {
	ids := s.Logs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]byte, 4+12*len(ids))
	binary.LittleEndian.PutUint32(out, uint32(len(ids)))
	for i, id := range ids {
		dev, err := s.Log(id)
		if err != nil {
			return nil, err
		}
		sz, err := dev.Size()
		if err != nil {
			return nil, err
		}
		off := 4 + 12*i
		binary.LittleEndian.PutUint32(out[off:], id)
		binary.LittleEndian.PutUint64(out[off+4:], uint64(sz))
	}
	return out, nil
}

// filterMeta drops reserved meta regions from a region id list.
func filterMeta(ids []uint32) []uint32 {
	out := ids[:0]
	for _, id := range ids {
		if id < metaRegionMin {
			out = append(out, id)
		}
	}
	return out
}
