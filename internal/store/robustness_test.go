package store

import (
	"encoding/binary"
	"math/rand"
	"net"
	"testing"
	"time"

	"lbc/internal/wal"
)

// TestServerSurvivesGarbage throws malformed byte streams at the
// server: it must drop the connection without crashing and keep
// serving well-formed clients.
func TestServerSurvivesGarbage(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20; i++ {
		c, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, rng.Intn(200)+1)
		rng.Read(junk)
		c.Write(junk)
		c.Close()
	}
	// Oversized length prefix.
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], 1<<31)
	c.Write(huge[:])
	c.Close()

	// A healthy client still works.
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.StoreRegion(1, []byte("still alive")); err != nil {
		t.Fatal(err)
	}
	img, err := cli.LoadRegion(1)
	if err != nil || string(img) != "still alive" {
		t.Fatalf("load after garbage: %q, %v", img, err)
	}
}

// TestServerHalfOpenConnections: clients that connect and go silent
// must not wedge the accept loop.
func TestServerHalfOpenConnections(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var idle []net.Conn
	for i := 0; i < 8; i++ {
		c, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		idle = append(idle, c)
	}
	defer func() {
		for _, c := range idle {
			c.Close()
		}
	}()
	done := make(chan error, 1)
	go func() {
		cli, err := Dial(srv.Addr())
		if err != nil {
			done <- err
			return
		}
		defer cli.Close()
		done <- cli.StoreRegion(2, []byte("x"))
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server wedged by idle connections")
	}
}

// tornProxy relays fullExchanges request/response pairs between one
// client connection and target, then forwards one more request but
// swallows its response and severs everything: the server persists the
// operation, the client never sees the ack.
func tornProxy(t *testing.T, target string, fullExchanges int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	relay := func(dst net.Conn, src net.Conn) error {
		msg, err := readMsg(src)
		if err != nil {
			return err
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(msg)))
		if _, err := dst.Write(hdr[:]); err != nil {
			return err
		}
		_, err = dst.Write(msg)
		return err
	}
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		s, err := net.Dial("tcp", target)
		if err != nil {
			return
		}
		defer s.Close()
		defer ln.Close()
		for i := 0; i < fullExchanges; i++ {
			if relay(s, c) != nil || relay(c, s) != nil {
				return
			}
		}
		// The torn exchange: the server applies it, the ack dies here.
		if relay(s, c) != nil {
			return
		}
		readMsg(s)
	}()
	return ln.Addr().String()
}

// TestTornWriteThenReconnect: the server persists an append but dies
// (from the client's perspective) before acking. The failover client
// retries the append against the server directly; the offset-guarded
// protocol must ack idempotently, leaving exactly one copy of the
// record. This semantics gap is load-bearing under quorum writes,
// where a retried append races its own first delivery.
func TestTornWriteThenReconnect(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// One clean exchange (the size query that seeds the append cursor),
	// then the append's ack is torn away.
	proxyAddr := tornProxy(t, srv.Addr(), 1)

	cli, err := DialFailover(proxyAddr, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	dev := cli.LogDevice(11)

	rec := wal.AppendStandard(nil, &wal.TxRecord{Node: 11, TxSeq: 1,
		Ranges: []wal.RangeRec{{Region: 1, Off: 0, Data: []byte("exactly-once")}}})
	if _, err := dev.Append(rec); err != nil {
		t.Fatalf("append through torn connection: %v", err)
	}
	rec2 := wal.AppendStandard(nil, &wal.TxRecord{Node: 11, TxSeq: 2,
		Ranges: []wal.RangeRec{{Region: 1, Off: 16, Data: []byte("second")}}})
	if _, err := dev.Append(rec2); err != nil {
		t.Fatalf("append after reconnect: %v", err)
	}

	log, err := srv.Log(11)
	if err != nil {
		t.Fatal(err)
	}
	txs, err := wal.ReadDevice(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 2 {
		t.Fatalf("want exactly 2 records after torn-write retry, got %d", len(txs))
	}
	seen := map[uint64]int{}
	for _, tx := range txs {
		seen[tx.TxSeq]++
	}
	if seen[1] != 1 || seen[2] != 1 {
		t.Fatalf("record duplication after retry: %v", seen)
	}
}
