package store

import (
	"encoding/binary"
	"math/rand"
	"net"
	"testing"
	"time"
)

// TestServerSurvivesGarbage throws malformed byte streams at the
// server: it must drop the connection without crashing and keep
// serving well-formed clients.
func TestServerSurvivesGarbage(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20; i++ {
		c, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, rng.Intn(200)+1)
		rng.Read(junk)
		c.Write(junk)
		c.Close()
	}
	// Oversized length prefix.
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], 1<<31)
	c.Write(huge[:])
	c.Close()

	// A healthy client still works.
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.StoreRegion(1, []byte("still alive")); err != nil {
		t.Fatal(err)
	}
	img, err := cli.LoadRegion(1)
	if err != nil || string(img) != "still alive" {
		t.Fatalf("load after garbage: %q, %v", img, err)
	}
}

// TestServerHalfOpenConnections: clients that connect and go silent
// must not wedge the accept loop.
func TestServerHalfOpenConnections(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var idle []net.Conn
	for i := 0; i < 8; i++ {
		c, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		idle = append(idle, c)
	}
	defer func() {
		for _, c := range idle {
			c.Close()
		}
	}()
	done := make(chan error, 1)
	go func() {
		cli, err := Dial(srv.Addr())
		if err != nil {
			done <- err
			return
		}
		defer cli.Close()
		done <- cli.StoreRegion(2, []byte("x"))
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server wedged by idle connections")
	}
}
