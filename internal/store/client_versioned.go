package store

import (
	"encoding/binary"
	"errors"

	"lbc/internal/bufpool"
)

// Client methods for the quorum-replication protocol. These are the
// building blocks internal/replstore fans out across a view; they are
// exposed on the plain client so single-box deployments, tools, and
// tests can exercise the same code paths.

// ReadVersioned fetches a region with its version tag. An absent
// region reads as version 0 with nil data (not an error), so quorum
// reads can count replicas that have never seen the key.
func (c *Client) ReadVersioned(id uint32) (uint64, []byte, error) {
	var req [4]byte
	binary.LittleEndian.PutUint32(req[:], id)
	resp, err := c.call(opReadVersioned, req[:])
	if err != nil {
		return 0, nil, err
	}
	if len(resp) < 8 {
		return 0, nil, errors.New("store: bad ReadVersioned response")
	}
	ver := binary.LittleEndian.Uint64(resp)
	if ver == 0 {
		return 0, nil, nil
	}
	return ver, resp[8:], nil
}

// VersionOf fetches just a region's version tag (0 if absent).
func (c *Client) VersionOf(id uint32) (uint64, error) {
	var req [4]byte
	binary.LittleEndian.PutUint32(req[:], id)
	resp, err := c.call(opVersionOf, req[:])
	if err != nil {
		return 0, err
	}
	if len(resp) != 8 {
		return 0, errors.New("store: bad VersionOf response")
	}
	return binary.LittleEndian.Uint64(resp), nil
}

// WriteVersioned stores a region image tagged with ver. The replica
// applies it only if ver advances its current version; the returned
// version is whatever is current after the op, so callers can detect
// both success (cur == ver) and a lost race (cur > ver).
func (c *Client) WriteVersioned(id uint32, ver uint64, data []byte) (uint64, error) {
	req := bufpool.Get(12 + len(data))[:12+len(data)]
	defer bufpool.Put(req)
	binary.LittleEndian.PutUint32(req, id)
	binary.LittleEndian.PutUint64(req[4:], ver)
	copy(req[12:], data)
	resp, err := c.call(opWriteVersioned, req)
	if err != nil {
		return 0, err
	}
	if len(resp) != 8 {
		return 0, errors.New("store: bad WriteVersioned response")
	}
	return binary.LittleEndian.Uint64(resp), nil
}

// AppendLogAt appends data to node's log iff the log is exactly
// expected bytes long (see handleAppendLogAt for the dup/torn-tail
// cases). Returns the log size after the append. A replica missing
// the prefix yields a *BehindError carrying its current size.
func (c *Client) AppendLogAt(node uint32, expected int64, data []byte) (int64, error) {
	req := bufpool.Get(12 + len(data))[:12+len(data)]
	defer bufpool.Put(req)
	binary.LittleEndian.PutUint32(req, node)
	binary.LittleEndian.PutUint64(req[4:], uint64(expected))
	copy(req[12:], data)
	resp, err := c.call(opAppendLogAt, req)
	if err != nil {
		var behind *BehindError
		if errors.As(err, &behind) {
			behind.Node = node
		}
		return 0, err
	}
	if len(resp) != 8 {
		return 0, errors.New("store: bad AppendLogAt response")
	}
	return int64(binary.LittleEndian.Uint64(resp)), nil
}

// GetView fetches the replica's current view (epoch 0 when it was
// never initialized into one).
func (c *Client) GetView() (View, error) {
	resp, err := c.call(opGetView, nil)
	if err != nil {
		return View{}, err
	}
	return decodeView(resp)
}

// SetView proposes a view; the replica adopts it only if the epoch
// advances. Returns the view current after the op.
func (c *Client) SetView(v View) (View, error) {
	resp, err := c.call(opSetView, encodeView(v))
	if err != nil {
		return View{}, err
	}
	return decodeView(resp)
}

// LogStat fetches every log's size in one round trip.
func (c *Client) LogStat() (map[uint32]int64, error) {
	resp, err := c.call(opLogStat, nil)
	if err != nil {
		return nil, err
	}
	if len(resp) < 4 {
		return nil, errors.New("store: bad LogStat response")
	}
	n := int(binary.LittleEndian.Uint32(resp))
	if len(resp) != 4+12*n {
		return nil, errors.New("store: malformed LogStat response")
	}
	out := make(map[uint32]int64, n)
	for i := 0; i < n; i++ {
		off := 4 + 12*i
		node := binary.LittleEndian.Uint32(resp[off:])
		out[node] = int64(binary.LittleEndian.Uint64(resp[off+4:]))
	}
	return out, nil
}

// ReadLogRange reads at most [from, from+n) of node's log in one round
// trip; the server reads and returns only the requested window, so the
// allocation on both ends is bounded by n regardless of how long the
// log tail is. A short (or empty) result means the log ends before
// from+n. Used by catch-up to copy a log gap in bounded chunks.
func (c *Client) ReadLogRange(node uint32, from, n int64) ([]byte, error) {
	var req [20]byte
	binary.LittleEndian.PutUint32(req[:], node)
	binary.LittleEndian.PutUint64(req[4:], uint64(from))
	binary.LittleEndian.PutUint64(req[12:], uint64(n))
	return c.call(opReadLogRange, req[:])
}
