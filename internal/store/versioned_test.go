package store

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"lbc/internal/wal"
)

func newVersionedPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

// TestVersionedRegionOps: version tags are monotonic, stale writes ack
// idempotently, and meta regions stay hidden from ListRegions.
func TestVersionedRegionOps(t *testing.T) {
	_, cli := newVersionedPair(t)

	if ver, data, err := cli.ReadVersioned(1); err != nil || ver != 0 || data != nil {
		t.Fatalf("absent region: ver=%d data=%q err=%v", ver, data, err)
	}
	cur, err := cli.WriteVersioned(1, 3, []byte("v3"))
	if err != nil || cur != 3 {
		t.Fatalf("write v3: cur=%d err=%v", cur, err)
	}
	// A stale write must not regress the image but still ack with the
	// current version.
	cur, err = cli.WriteVersioned(1, 2, []byte("v2"))
	if err != nil || cur != 3 {
		t.Fatalf("stale write: cur=%d err=%v", cur, err)
	}
	ver, data, err := cli.ReadVersioned(1)
	if err != nil || ver != 3 || string(data) != "v3" {
		t.Fatalf("read: ver=%d data=%q err=%v", ver, data, err)
	}
	if v, err := cli.VersionOf(1); err != nil || v != 3 {
		t.Fatalf("version of: %d, %v", v, err)
	}
	ids, err := cli.Regions()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if id >= metaRegionMin {
			t.Fatalf("meta region %d leaked into ListRegions", id)
		}
	}
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("regions: %v", ids)
	}
	if _, err := cli.WriteVersioned(metaRegionView, 1, []byte("nope")); err == nil {
		t.Fatal("writing a reserved region succeeded")
	}
}

// TestWriteVersionedEqualTagConflict: a duplicate delivery of the same
// (version, data) pair acks idempotently, but different data under an
// already-installed tag is a writer collision and must be rejected —
// otherwise two racing writers could leave replicas divergent under one
// tag, which read-repair (keyed on tag inequality) can never reconcile.
func TestWriteVersionedEqualTagConflict(t *testing.T) {
	_, cli := newVersionedPair(t)

	if _, err := cli.WriteVersioned(1, 5, []byte("canonical")); err != nil {
		t.Fatal(err)
	}
	// Same tag, same bytes: idempotent ack (a client retry).
	cur, err := cli.WriteVersioned(1, 5, []byte("canonical"))
	if err != nil || cur != 5 {
		t.Fatalf("idempotent dup: cur=%d err=%v", cur, err)
	}
	// Same tag, different bytes: rejected, image untouched.
	if _, err := cli.WriteVersioned(1, 5, []byte("imposter!")); err == nil {
		t.Fatal("conflicting equal-tag write was acked")
	}
	ver, data, err := cli.ReadVersioned(1)
	if err != nil || ver != 5 || string(data) != "canonical" {
		t.Fatalf("after conflict: ver=%d data=%q err=%v", ver, data, err)
	}
}

// TestAppendLogAtGuard covers the four offset cases: plain append,
// idempotent duplicate, divergent-tail heal, and behind.
func TestAppendLogAtGuard(t *testing.T) {
	srv, cli := newVersionedPair(t)

	recA := []byte("record-A")
	recB := []byte("record-B")

	size, err := cli.AppendLogAt(5, 0, recA)
	if err != nil || size != int64(len(recA)) {
		t.Fatalf("append: size=%d err=%v", size, err)
	}
	// Duplicate retry: same offset, same bytes — idempotent ack.
	size, err = cli.AppendLogAt(5, 0, recA)
	if err != nil || size != int64(len(recA)) {
		t.Fatalf("dup append: size=%d err=%v", size, err)
	}
	// Divergent tail: different bytes at an existing offset are the
	// canonical record superseding an unacked leftover — heal in place.
	size, err = cli.AppendLogAt(5, 0, recB)
	if err != nil || size != int64(len(recB)) {
		t.Fatalf("heal append: size=%d err=%v", size, err)
	}
	dev, err := srv.Log(5)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := dev.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(rc)
	rc.Close()
	if !bytes.Equal(buf.Bytes(), recB) {
		t.Fatalf("log after heal: %q", buf.Bytes())
	}
	// Behind: appending past the tail reports the replica's size.
	_, err = cli.AppendLogAt(5, 100, recA)
	var behind *BehindError
	if !errors.As(err, &behind) {
		t.Fatalf("expected BehindError, got %v", err)
	}
	if behind.Node != 5 || behind.Size != int64(len(recB)) {
		t.Fatalf("behind: %+v", behind)
	}
}

// TestAppendLogAtConcurrentDuplicates: the offset check and the
// mutation are atomic per log, so racing connections delivering the
// same record at the same offset all ack idempotently and the record
// lands exactly once (run with -race to catch the unlocked window).
func TestAppendLogAtConcurrentDuplicates(t *testing.T) {
	srv, _ := newVersionedPair(t)

	rec := []byte("concurrent-record")
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		cli, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cli.Close() })
		wg.Add(1)
		go func(i int, cli *Client) {
			defer wg.Done()
			_, errs[i] = cli.AppendLogAt(9, 0, rec)
		}(i, cli)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	dev, err := srv.Log(9)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := dev.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	var buf bytes.Buffer
	buf.ReadFrom(rc)
	if !bytes.Equal(buf.Bytes(), rec) {
		t.Fatalf("log after 8 racing duplicates: %d bytes, want %d", buf.Len(), len(rec))
	}
}

// TestReadLogRange: the server reads and returns only the requested
// window, shortened at the log's end.
func TestReadLogRange(t *testing.T) {
	_, cli := newVersionedPair(t)

	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := cli.AppendLogAt(6, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := cli.ReadLogRange(6, 100, 50)
	if err != nil || !bytes.Equal(got, data[100:150]) {
		t.Fatalf("mid window: %d bytes, err=%v", len(got), err)
	}
	got, err = cli.ReadLogRange(6, 900, 500)
	if err != nil || !bytes.Equal(got, data[900:]) {
		t.Fatalf("tail window: %d bytes, err=%v", len(got), err)
	}
	if got, err = cli.ReadLogRange(6, 1000, 10); err != nil || len(got) != 0 {
		t.Fatalf("empty window at end: %d bytes, err=%v", len(got), err)
	}
}

// TestViewOps: epoch-guarded view installation.
func TestViewOps(t *testing.T) {
	srv, cli := newVersionedPair(t)

	if v, err := cli.GetView(); err != nil || v.Epoch != 0 {
		t.Fatalf("initial view: %+v, %v", v, err)
	}
	v1 := View{Epoch: 1, Members: []string{"a:1", "b:2", "c:3"}}
	cur, err := cli.SetView(v1)
	if err != nil || cur.Epoch != 1 || len(cur.Members) != 3 {
		t.Fatalf("set view: %+v, %v", cur, err)
	}
	// A stale installer learns the newer view instead of regressing it.
	cur, err = cli.SetView(View{Epoch: 1, Members: []string{"x:9"}})
	if err != nil || cur.Epoch != 1 || cur.Members[0] != "a:1" {
		t.Fatalf("stale set view: %+v, %v", cur, err)
	}
	v2 := View{Epoch: 2, Members: []string{"a:1", "b:2", "d:4"}}
	if cur, err = cli.SetView(v2); err != nil || cur.Epoch != 2 {
		t.Fatalf("advance view: %+v, %v", cur, err)
	}
	sv, err := srv.CurrentView()
	if err != nil || sv.Epoch != 2 || !sv.Contains("d:4") {
		t.Fatalf("server view: %+v, %v", sv, err)
	}
	if sv.Majority() != 2 {
		t.Fatalf("majority of 3 = %d", sv.Majority())
	}
}

// TestLogStat: all log sizes in one round trip.
func TestLogStat(t *testing.T) {
	_, cli := newVersionedPair(t)
	if _, err := cli.AppendLogAt(1, 0, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.AppendLogAt(2, 0, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	stat, err := cli.LogStat()
	if err != nil {
		t.Fatal(err)
	}
	if len(stat) != 2 || stat[1] != 4 || stat[2] != 2 {
		t.Fatalf("log stat: %v", stat)
	}
}

// TestClientLatencyHistograms: the per-op read/write/dial histograms
// are populated through Stats().
func TestClientLatencyHistograms(t *testing.T) {
	_, cli := newVersionedPair(t)
	if err := cli.StoreRegion(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.LoadRegion(1); err != nil {
		t.Fatal(err)
	}
	hists := cli.Stats().Hists()
	for _, name := range []string{"store_read_ns", "store_write_ns", "store_dial_ns"} {
		h, ok := hists[name]
		if !ok || h.Count == 0 {
			t.Fatalf("histogram %s not populated: %v", name, hists)
		}
	}
}

// TestVersionedStateSurvivesRestart: version tags and the view are
// persisted through the data store, so a replica restarted on the same
// images (a disk that survived) still proves freshness correctly.
func TestVersionedStateSurvivesRestart(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data := srv.Data()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.WriteVersioned(7, 9, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.SetView(View{Epoch: 4, Members: []string{"m:1"}}); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	srv.Close()

	srv2, err := NewServer("127.0.0.1:0", ServerOptions{Data: data})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cli2, err := Dial(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	ver, img, err := cli2.ReadVersioned(7)
	if err != nil || ver != 9 || string(img) != "persisted" {
		t.Fatalf("after restart: ver=%d img=%q err=%v", ver, img, err)
	}
	v, err := cli2.GetView()
	if err != nil || v.Epoch != 4 {
		t.Fatalf("view after restart: %+v, %v", v, err)
	}
}

// TestRemoteLogAppendIdempotentAcrossMirror: the offset-guarded append
// path means a mirror that already holds the forwarded copy simply
// dup-acks; records never duplicate even when the same append is
// replayed against both sides of a replica pair.
func TestRemoteLogAppendIdempotentAcrossMirror(t *testing.T) {
	pair, err := NewReplicaPair("127.0.0.1:0", "127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()
	cli, err := DialFailover(pair.Primary.Addr(), pair.Backup.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	dev := cli.LogDevice(3)
	rec := wal.AppendStandard(nil, &wal.TxRecord{Node: 3, TxSeq: 1,
		Ranges: []wal.RangeRec{{Region: 1, Off: 0, Data: []byte("once")}}})
	if _, err := dev.Append(rec); err != nil {
		t.Fatal(err)
	}
	// Fail over to the backup (which already has the mirrored copy) and
	// append the next record: offsets must line up with no duplicates.
	pair.FailPrimary()
	rec2 := wal.AppendStandard(nil, &wal.TxRecord{Node: 3, TxSeq: 2,
		Ranges: []wal.RangeRec{{Region: 1, Off: 8, Data: []byte("twice")}}})
	if _, err := dev.Append(rec2); err != nil {
		t.Fatal(err)
	}
	blog, err := pair.Backup.Log(3)
	if err != nil {
		t.Fatal(err)
	}
	txs, err := wal.ReadDevice(blog)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 2 || txs[0].TxSeq != 1 || txs[1].TxSeq != 2 {
		t.Fatalf("backup log: %d records", len(txs))
	}
}
