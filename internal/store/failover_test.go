package store

import (
	"errors"
	"strings"
	"testing"

	"lbc/internal/chaos"
	"lbc/internal/metrics"
	"lbc/internal/wal"
)

// mkRec builds a committed record with a distinguishable identity.
func mkRec(node uint32, seq uint64) *wal.TxRecord {
	return &wal.TxRecord{
		Node: node, TxSeq: seq,
		Ranges: []wal.RangeRec{{Region: 1, Off: seq * 8, Data: []byte("payload!")}},
	}
}

// TestFailoverClientSurvivesConnectionDrops drives appends through a
// proxy that keeps severing the connection, then kills the primary
// outright. Every append acknowledged to the client must be on the
// backup afterwards: mirroring is synchronous, so committed log
// records survive both transient drops and primary death.
func TestFailoverClientSurvivesConnectionDrops(t *testing.T) {
	pair, err := NewReplicaPair("127.0.0.1:0", "127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()
	proxy, err := chaos.NewProxy(pair.Primary.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	cli, err := DialFailover(proxy.Addr(), pair.Backup.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	dev := cli.LogDevice(7)

	const total = 30
	var committed []uint64
	append1 := func(seq uint64) {
		t.Helper()
		buf := wal.AppendStandard(nil, mkRec(7, seq))
		if _, err := dev.Append(buf); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
		committed = append(committed, seq)
	}

	for seq := uint64(1); seq <= 10; seq++ {
		append1(seq)
	}
	// Transient drops: every third append runs into a freshly severed
	// connection and must succeed via redial.
	for seq := uint64(11); seq <= 20; seq++ {
		if seq%3 == 0 {
			proxy.Cut()
		}
		append1(seq)
	}
	// Primary death: the client's address ring takes it to the backup.
	proxy.Close()
	pair.FailPrimary()
	for seq := uint64(21); seq <= total; seq++ {
		append1(seq)
	}

	blog, err := pair.Backup.Log(7)
	if err != nil {
		t.Fatal(err)
	}
	txs, err := wal.ReadDevice(blog)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	for _, tx := range txs {
		if tx.Node != 7 {
			t.Fatalf("foreign record %d/%d in log", tx.Node, tx.TxSeq)
		}
		seen[tx.TxSeq]++
	}
	for _, seq := range committed {
		if seen[seq] == 0 {
			t.Errorf("committed record seq %d lost from backup log", seq)
		}
	}
	if len(committed) != total {
		t.Fatalf("driver committed %d, want %d", len(committed), total)
	}
}

// TestDialFailoverSkipsDeadPrimary connects when the first address is
// already dead.
func TestDialFailoverSkipsDeadPrimary(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialFailover("127.0.0.1:1", srv.Addr())
	if err != nil {
		t.Fatalf("failover dial: %v", err)
	}
	defer cli.Close()
	if err := cli.Sync(); err != nil {
		t.Fatalf("call through failover client: %v", err)
	}
}

// TestDialFailoverAggregateError: when every address fails, the error
// is a typed *DialError naming each attempt, not just the last one.
func TestDialFailoverAggregateError(t *testing.T) {
	_, err := DialFailover("127.0.0.1:1", "127.0.0.1:2")
	var agg *DialError
	if !errors.As(err, &agg) {
		t.Fatalf("want *DialError, got %T: %v", err, err)
	}
	if len(agg.Attempts) != 2 {
		t.Fatalf("attempts: %+v", agg.Attempts)
	}
	if agg.Attempts[0].Addr != "127.0.0.1:1" || agg.Attempts[1].Addr != "127.0.0.1:2" {
		t.Fatalf("attempt addresses: %+v", agg.Attempts)
	}
	for _, a := range agg.Attempts {
		if a.Err == nil {
			t.Fatalf("attempt %s has nil error", a.Addr)
		}
	}
	if !strings.Contains(agg.Error(), "127.0.0.1:2") {
		t.Fatalf("error string drops attempts: %v", agg)
	}
}

// TestCallRingExhaustedAggregateError: a live client whose whole ring
// dies mid-session reports the same typed aggregate from the op path.
func TestCallRingExhaustedAggregateError(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialFailover(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Sync(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	err = cli.Sync()
	var agg *DialError
	if !errors.As(err, &agg) {
		t.Fatalf("want *DialError after ring exhaustion, got %T: %v", err, err)
	}
	if agg.Op != "op_sync_data" {
		t.Fatalf("op: %q", agg.Op)
	}
	if len(agg.Attempts) == 0 {
		t.Fatal("no attempts recorded")
	}
	if got := cli.Stats().Counter(metrics.CtrRetriesExhausted); got != 1 {
		t.Fatalf("retries_exhausted = %d, want 1", got)
	}
	// A second exhausted walk counts again.
	if err := cli.Sync(); err == nil {
		t.Fatal("sync succeeded against a closed server")
	}
	if got := cli.Stats().Counter(metrics.CtrRetriesExhausted); got != 2 {
		t.Fatalf("retries_exhausted = %d, want 2", got)
	}
}

// TestDialFailoverNeedsAddrs pins the empty-list error.
func TestDialFailoverNeedsAddrs(t *testing.T) {
	if _, err := DialFailover(); err == nil {
		t.Fatal("DialFailover() accepted an empty address list")
	}
}

// TestPlainClientDoesNotFailover: a Dial client keeps its
// single-connection semantics — a severed connection is a hard error.
func TestPlainClientDoesNotFailover(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy, err := chaos.NewProxy(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	cli, err := Dial(proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Sync(); err != nil {
		t.Fatal(err)
	}
	proxy.Cut()
	if err := cli.Sync(); err == nil {
		t.Fatal("plain client survived a severed connection")
	}
}
