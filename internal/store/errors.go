package store

import (
	"fmt"
	"strings"
)

// DialAttempt records one failed try against one address during a
// failover walk.
type DialAttempt struct {
	Addr string
	Err  error
}

// DialError aggregates a whole failed failover walk: every address
// tried and the error each produced, instead of only the last dial
// error. Callers debugging a quorum outage can see at a glance which
// replicas were unreachable and why.
type DialError struct {
	Op       string // operation being attempted ("dial" for initial connect)
	Attempts []DialAttempt
}

// Error lists every attempt.
func (e *DialError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "store: all %d replicas failed for %s: ", len(e.Attempts), e.Op)
	for i, a := range e.Attempts {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s: %v", a.Addr, a.Err)
	}
	return b.String()
}

// Unwrap exposes the last attempt's error, preserving errors.Is/As
// chains that previously matched the bare last error.
func (e *DialError) Unwrap() error {
	if len(e.Attempts) == 0 {
		return nil
	}
	return e.Attempts[len(e.Attempts)-1].Err
}

// BehindError is returned by AppendLogAt when the replica's log is
// shorter than the expected offset: it is missing a prefix and must be
// caught up (the gap copied from a fresh replica) before it can accept
// the record. Size is the replica's current log size.
type BehindError struct {
	Node uint32
	Size int64
}

func (e *BehindError) Error() string {
	return fmt.Sprintf("store: node %d log behind at size %d", e.Node, e.Size)
}
