// Package store implements the logically centralized storage service of
// the paper's client/server configuration: it holds the permanent
// database (region images) and one redo log per client node. The
// prototype used an NFS server for this role (§3); here it is an
// explicit TCP service whose client implements rvm.DataStore and
// wal.Device, so the RVM core is oblivious to whether its log and
// database are local files or remote.
//
// The server is deliberately dumb — it does not interpret log records.
// Recovery (merging the per-node logs and replaying them into the
// database images) is driven by clients/utilities via cmd/logmerge and
// cmd/rvmrecover, as in the paper's offline trimming scheme (§3.5).
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/rvm"
	"lbc/internal/wal"
)

// Request/response opcodes.
const (
	opLoadRegion uint8 = iota + 1
	opStoreRegion
	opListRegions
	opSyncData
	opAppendLog
	opSyncLog
	opLogSize
	opReadLog
	opTruncateLog
	opResetLog
	opListLogs

	// Quorum-replication protocol (see versioned.go / internal/replstore).
	opReadVersioned  // {region u32} -> {ver u64, data}
	opWriteVersioned // {region u32, ver u64, data} -> {cur u64}
	opVersionOf      // {region u32} -> {ver u64}
	opAppendLogAt    // {node u32, expected u64, data} -> {newSize u64} | behind{size u64}
	opGetView        // {} -> {view}
	opSetView        // {view} -> {view}
	opLogStat        // {} -> {n u32, (node u32, size u64)*}
	opReadLogRange   // {node u32, from u64, n u64} -> data (at most n bytes)
)

const (
	statusOK     uint8 = 0
	statusErr    uint8 = 1
	statusBehind uint8 = 2 // AppendLogAt against a replica missing the prefix
)

const maxMsg = 1 << 30

// Server is the storage service. Region images are kept in the given
// rvm.DataStore; per-node logs are created on demand via the device
// factory.
type Server struct {
	ln    net.Listener
	data  rvm.DataStore
	stats *metrics.Stats

	mu      sync.Mutex
	logs    map[uint32]wal.Device
	mkLog   func(node uint32) (wal.Device, error)
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	closed  chan struct{}
	closeMu sync.Once

	mirrorState
	versionedState
}

// ServerOptions configures a Server.
type ServerOptions struct {
	// Data holds region images. Defaults to an in-memory store.
	Data rvm.DataStore
	// NewLog creates the log device for a node's log, on first use.
	// Defaults to in-memory devices.
	NewLog func(node uint32) (wal.Device, error)
}

// NewServer starts a storage server listening on addr (e.g.
// "127.0.0.1:0").
func NewServer(addr string, opts ServerOptions) (*Server, error) {
	if opts.Data == nil {
		opts.Data = rvm.NewMemStore()
	}
	if opts.NewLog == nil {
		opts.NewLog = func(uint32) (wal.Device, error) { return wal.NewMemDevice(), nil }
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("store: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:     ln,
		data:   opts.Data,
		stats:  metrics.NewStats(),
		logs:   map[uint32]wal.Device{},
		mkLog:  opts.NewLog,
		conns:  map[net.Conn]struct{}{},
		closed: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Data exposes the server's region store (for offline utilities that
// run colocated with the server).
func (s *Server) Data() rvm.DataStore { return s.data }

// Stats exposes the server's op counters (requests and bytes per
// opcode) for the /debug/lbc endpoint.
func (s *Server) Stats() *metrics.Stats { return s.stats }

// Log returns the log device for a node, creating it if necessary.
func (s *Server) Log(node uint32) (wal.Device, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.logs[node]; ok {
		return d, nil
	}
	d, err := s.mkLog(node)
	if err != nil {
		return nil, err
	}
	s.logs[node] = d
	return d, nil
}

// Logs lists node ids that have logs.
func (s *Server) Logs() []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]uint32, 0, len(s.logs))
	for id := range s.logs {
		ids = append(ids, id)
	}
	return ids
}

// Close shuts the server down, severing active client connections.
func (s *Server) Close() error {
	s.closeMu.Do(func() {
		close(s.closed)
		s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	return nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		select {
		case <-s.closed:
			s.mu.Unlock()
			c.Close()
			continue
		default:
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	for {
		req, err := readMsg(c)
		if err != nil {
			return
		}
		if len(req) == 0 {
			return
		}
		s.stats.Add(opCounter(req[0]), 1)
		s.stats.Add("op_bytes_in", int64(len(req)))
		start := time.Now()
		resp, err := s.handle(req[0], req[1:])
		if err == nil {
			err = s.forwardToMirror(req[0], req[1:])
		}
		if isWriteOp(req[0]) {
			s.stats.Observe(metrics.HistStoreServeWriteNS, time.Since(start).Nanoseconds())
		} else {
			s.stats.Observe(metrics.HistStoreServeReadNS, time.Since(start).Nanoseconds())
		}
		if err != nil {
			var behind *logBehind
			if errors.As(err, &behind) {
				var sz [8]byte
				binary.LittleEndian.PutUint64(sz[:], uint64(behind.size))
				if werr := writeMsg(c, statusBehind, sz[:]); werr != nil {
					return
				}
				continue
			}
			s.stats.Add("op_errors", 1)
			resp = []byte(err.Error())
			if werr := writeMsg(c, statusErr, resp); werr != nil {
				return
			}
			continue
		}
		if err := writeMsg(c, statusOK, resp); err != nil {
			return
		}
	}
}

// opCounter maps a request opcode to its stats counter name.
func opCounter(op uint8) string {
	switch op {
	case opLoadRegion:
		return "op_load_region"
	case opStoreRegion:
		return "op_store_region"
	case opListRegions:
		return "op_list_regions"
	case opSyncData:
		return "op_sync_data"
	case opAppendLog:
		return "op_append_log"
	case opSyncLog:
		return "op_sync_log"
	case opLogSize:
		return "op_log_size"
	case opReadLog:
		return "op_read_log"
	case opTruncateLog:
		return "op_truncate_log"
	case opResetLog:
		return "op_reset_log"
	case opListLogs:
		return "op_list_logs"
	case opReadVersioned:
		return "op_read_versioned"
	case opWriteVersioned:
		return "op_write_versioned"
	case opVersionOf:
		return "op_version_of"
	case opAppendLogAt:
		return "op_append_log_at"
	case opGetView:
		return "op_get_view"
	case opSetView:
		return "op_set_view"
	case opLogStat:
		return "op_log_stat"
	case opReadLogRange:
		return "op_read_log_range"
	default:
		return "op_unknown"
	}
}

// isWriteOp classifies an opcode for the serve-latency histograms.
func isWriteOp(op uint8) bool {
	switch op {
	case opStoreRegion, opSyncData, opAppendLog, opSyncLog, opTruncateLog,
		opResetLog, opWriteVersioned, opAppendLogAt, opSetView:
		return true
	}
	return false
}

func (s *Server) handle(op uint8, body []byte) ([]byte, error) {
	switch op {
	case opLoadRegion:
		if len(body) != 4 {
			return nil, errors.New("store: bad LoadRegion request")
		}
		id := binary.LittleEndian.Uint32(body)
		img, err := s.data.LoadRegion(id)
		if err != nil {
			return nil, err
		}
		return img, nil

	case opStoreRegion:
		if len(body) < 4 {
			return nil, errors.New("store: bad StoreRegion request")
		}
		id := binary.LittleEndian.Uint32(body)
		return nil, s.data.StoreRegion(id, body[4:])

	case opListRegions:
		ids, err := s.data.Regions()
		if err != nil {
			return nil, err
		}
		return encodeIDs(filterMeta(ids)), nil

	case opSyncData:
		return nil, s.data.Sync()

	case opAppendLog:
		if len(body) < 4 {
			return nil, errors.New("store: bad AppendLog request")
		}
		node := binary.LittleEndian.Uint32(body)
		dev, err := s.Log(node)
		if err != nil {
			return nil, err
		}
		mu := s.logOpLock(node)
		mu.Lock()
		defer mu.Unlock()
		off, err := dev.Append(body[4:])
		if err != nil {
			return nil, err
		}
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], uint64(off))
		return out[:], nil

	case opSyncLog:
		if len(body) != 4 {
			return nil, errors.New("store: bad SyncLog request")
		}
		dev, err := s.Log(binary.LittleEndian.Uint32(body))
		if err != nil {
			return nil, err
		}
		return nil, dev.Sync()

	case opLogSize:
		if len(body) != 4 {
			return nil, errors.New("store: bad LogSize request")
		}
		dev, err := s.Log(binary.LittleEndian.Uint32(body))
		if err != nil {
			return nil, err
		}
		sz, err := dev.Size()
		if err != nil {
			return nil, err
		}
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], uint64(sz))
		return out[:], nil

	case opReadLog:
		if len(body) != 12 {
			return nil, errors.New("store: bad ReadLog request")
		}
		dev, err := s.Log(binary.LittleEndian.Uint32(body))
		if err != nil {
			return nil, err
		}
		from := int64(binary.LittleEndian.Uint64(body[4:]))
		rc, err := dev.Open(from)
		if err != nil {
			return nil, err
		}
		defer rc.Close()
		return io.ReadAll(rc)

	case opTruncateLog:
		if len(body) != 12 {
			return nil, errors.New("store: bad TruncateLog request")
		}
		node := binary.LittleEndian.Uint32(body)
		dev, err := s.Log(node)
		if err != nil {
			return nil, err
		}
		mu := s.logOpLock(node)
		mu.Lock()
		defer mu.Unlock()
		return nil, dev.Truncate(int64(binary.LittleEndian.Uint64(body[4:])))

	case opResetLog:
		if len(body) != 4 {
			return nil, errors.New("store: bad ResetLog request")
		}
		node := binary.LittleEndian.Uint32(body)
		dev, err := s.Log(node)
		if err != nil {
			return nil, err
		}
		mu := s.logOpLock(node)
		mu.Lock()
		defer mu.Unlock()
		return nil, dev.Reset()

	case opListLogs:
		return encodeIDs(s.Logs()), nil

	case opReadVersioned:
		return s.handleReadVersioned(body)

	case opWriteVersioned:
		return s.handleWriteVersioned(body)

	case opVersionOf:
		return s.handleVersionOf(body)

	case opAppendLogAt:
		return s.handleAppendLogAt(body)

	case opGetView:
		return s.handleGetView()

	case opSetView:
		return s.handleSetView(body)

	case opLogStat:
		return s.handleLogStat()

	case opReadLogRange:
		if len(body) != 20 {
			return nil, errors.New("store: bad ReadLogRange request")
		}
		n := int64(binary.LittleEndian.Uint64(body[12:]))
		if n < 0 || n > maxMsg {
			return nil, fmt.Errorf("store: ReadLogRange length %d out of range", n)
		}
		dev, err := s.Log(binary.LittleEndian.Uint32(body))
		if err != nil {
			return nil, err
		}
		rc, err := dev.Open(int64(binary.LittleEndian.Uint64(body[4:])))
		if err != nil {
			return nil, err
		}
		defer rc.Close()
		buf := make([]byte, n)
		k, err := io.ReadFull(rc, buf)
		if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
			return nil, err
		}
		return buf[:k], nil

	default:
		return nil, fmt.Errorf("store: unknown op %d", op)
	}
}

func encodeIDs(ids []uint32) []byte {
	out := make([]byte, 4+4*len(ids))
	binary.LittleEndian.PutUint32(out, uint32(len(ids)))
	for i, id := range ids {
		binary.LittleEndian.PutUint32(out[4+4*i:], id)
	}
	return out
}

func decodeIDs(b []byte) ([]uint32, error) {
	if len(b) < 4 {
		return nil, errors.New("store: short id list")
	}
	n := binary.LittleEndian.Uint32(b)
	if len(b) != int(4+4*n) {
		return nil, errors.New("store: malformed id list")
	}
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = binary.LittleEndian.Uint32(b[4+4*i:])
	}
	return ids, nil
}

// readMsg reads one length-prefixed message. The buffer grows as data
// actually arrives (capped chunks), so a hostile length prefix cannot
// force a huge upfront allocation.
func readMsg(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > maxMsg {
		return nil, fmt.Errorf("store: message too large: %d", n)
	}
	const chunk = 1 << 20
	first := n
	if first > chunk {
		first = chunk
	}
	b := make([]byte, 0, first)
	for len(b) < n {
		next := n - len(b)
		if next > chunk {
			next = chunk
		}
		start := len(b)
		b = append(b, make([]byte, next)...)
		if _, err := io.ReadFull(r, b[start:]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// writeMsg writes status byte + body as one length-prefixed message.
func writeMsg(w io.Writer, status uint8, body []byte) error {
	hdr := make([]byte, 5)
	binary.LittleEndian.PutUint32(hdr, uint32(1+len(body)))
	hdr[4] = status
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(body) > 0 {
		_, err := w.Write(body)
		return err
	}
	return nil
}

// writeReq writes op byte + body as one length-prefixed message.
func writeReq(w io.Writer, op uint8, body []byte) error {
	hdr := make([]byte, 5)
	binary.LittleEndian.PutUint32(hdr, uint32(1+len(body)))
	hdr[4] = op
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(body) > 0 {
		_, err := w.Write(body)
		return err
	}
	return nil
}
