package store

import (
	"errors"
	"io"
	"testing"

	"lbc/internal/rvm"
)

func newPairWithMirror(t *testing.T) (*ReplicaPair, *Client) {
	t.Helper()
	pair, err := NewReplicaPair("127.0.0.1:0", "127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pair.Close)
	cli, err := Dial(pair.Primary.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return pair, cli
}

func TestMirrorReplicatesRegions(t *testing.T) {
	pair, cli := newPairWithMirror(t)
	if err := cli.StoreRegion(1, []byte("replicated image")); err != nil {
		t.Fatal(err)
	}
	img, err := pair.Backup.Data().LoadRegion(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(img) != "replicated image" {
		t.Fatalf("backup image = %q", img)
	}
}

func TestMirrorReplicatesLogs(t *testing.T) {
	pair, cli := newPairWithMirror(t)
	dev := cli.LogDevice(3)
	if _, err := dev.Append([]byte("log entry")); err != nil {
		t.Fatal(err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	bdev, err := pair.Backup.Log(3)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := bdev.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(rc)
	rc.Close()
	if string(got) != "log entry" {
		t.Fatalf("backup log = %q", got)
	}
	// Truncate and reset propagate too.
	if err := dev.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if sz, _ := bdev.Size(); sz != 3 {
		t.Fatalf("backup size after truncate = %d", sz)
	}
	if err := dev.Reset(); err != nil {
		t.Fatal(err)
	}
	if sz, _ := bdev.Size(); sz != 0 {
		t.Fatalf("backup size after reset = %d", sz)
	}
}

func TestFailoverToBackup(t *testing.T) {
	pair, cli := newPairWithMirror(t)

	// Run a full RVM commit against the primary.
	r, err := rvm.Open(rvm.Options{Node: 1, Log: cli.LogDevice(1), Data: cli})
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := r.Map(1, 128)
	tx := r.Begin(rvm.NoRestore)
	tx.SetRange(reg, 0, 9)
	copy(reg.Bytes(), "replicate")
	if _, err := tx.Commit(rvm.Flush); err != nil {
		t.Fatal(err)
	}

	// Primary dies; a new client session runs recovery off the backup.
	pair.FailPrimary()
	cli2, err := Dial(pair.Backup.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	res, err := rvm.Recover(cli2.LogDevice(1), cli2, rvm.RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1 {
		t.Fatalf("recovered %d records from backup", res.Records)
	}
	img, err := cli2.LoadRegion(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(img[:9]) != "replicate" {
		t.Fatalf("backup-recovered image = %q", img[:9])
	}
}

func TestMirrorErrorSurfacesToClient(t *testing.T) {
	pair, cli := newPairWithMirror(t)
	// Kill the backup: mutations must now report degraded durability.
	pair.Backup.Close()
	err := cli.StoreRegion(1, []byte("x"))
	if err == nil {
		t.Fatal("mutation succeeded silently with dead mirror")
	}
	// Reads still work (served from the primary).
	if _, err := cli.Regions(); err != nil {
		t.Fatalf("read failed: %v", err)
	}
}

func TestEncodeLogReq(t *testing.T) {
	b := encodeLogReq(7, []byte("xy"))
	if len(b) != 6 || b[0] != 7 || string(b[4:]) != "xy" {
		t.Fatalf("encodeLogReq = %v", b)
	}
}

func TestMirrorMissingRegionStillErrors(t *testing.T) {
	_, cli := newPairWithMirror(t)
	if _, err := cli.LoadRegion(42); !errors.Is(err, rvm.ErrNoRegion) {
		t.Fatalf("err = %v", err)
	}
}
