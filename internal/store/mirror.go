package store

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Mirroring implements the paper's aside that "the storage service
// could be transparently replicated to reduce the probability of a
// server failure" (§2). A primary server forwards every mutating
// operation — region writes, log appends, truncations, resets — to a
// backup server before acknowledging the client, so the backup can
// take over with identical images and logs (synchronous primary/backup
// replication). Reads are served locally.

// Mirror attaches a backup to the server. Safe to call once, before
// clients connect.
func (s *Server) Mirror(backup *Client) {
	s.mirrorMu.Lock()
	defer s.mirrorMu.Unlock()
	s.mirror = backup
}

// mirrorClient returns the attached backup, if any.
func (s *Server) mirrorClient() *Client {
	s.mirrorMu.RLock()
	defer s.mirrorMu.RUnlock()
	return s.mirror
}

// forwardToMirror replays a mutating request on the backup. The
// primary has already applied it locally; a mirror error is returned
// to the client so it knows durability is degraded.
func (s *Server) forwardToMirror(op uint8, body []byte) error {
	m := s.mirrorClient()
	if m == nil {
		return nil
	}
	switch op {
	case opStoreRegion, opAppendLog, opSyncLog, opTruncateLog, opResetLog,
		opSyncData, opWriteVersioned, opAppendLogAt, opSetView:
		if _, err := m.call(op, body); err != nil {
			return fmt.Errorf("store: mirror: %w", err)
		}
	}
	return nil
}

// mirrorState adds the fields Server needs; kept separate so the main
// server file stays focused.
type mirrorState struct {
	mirrorMu sync.RWMutex
	mirror   *Client
}

// ReplicaPair bundles a primary and backup for tests and tools.
type ReplicaPair struct {
	Primary *Server
	Backup  *Server
	link    *Client
}

// NewReplicaPair starts a primary and a backup server; the primary
// mirrors every mutation to the backup.
func NewReplicaPair(primaryAddr, backupAddr string, opts ServerOptions) (*ReplicaPair, error) {
	backup, err := NewServer(backupAddr, ServerOptions{})
	if err != nil {
		return nil, err
	}
	primary, err := NewServer(primaryAddr, opts)
	if err != nil {
		backup.Close()
		return nil, err
	}
	link, err := Dial(backup.Addr())
	if err != nil {
		primary.Close()
		backup.Close()
		return nil, err
	}
	primary.Mirror(link)
	return &ReplicaPair{Primary: primary, Backup: backup, link: link}, nil
}

// FailPrimary simulates a primary crash; clients re-dial the backup.
func (p *ReplicaPair) FailPrimary() {
	p.Primary.Close()
	p.link.Close()
}

// Close shuts both servers down.
func (p *ReplicaPair) Close() {
	p.link.Close()
	p.Primary.Close()
	p.Backup.Close()
}

// encodeLogReq builds a {node u32}-prefixed request body (helper for
// tests exercising mirror behaviour directly).
func encodeLogReq(node uint32, extra []byte) []byte {
	b := make([]byte, 4+len(extra))
	binary.LittleEndian.PutUint32(b, node)
	copy(b[4:], extra)
	return b
}
