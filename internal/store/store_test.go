package store

import (
	"errors"
	"io"
	"path/filepath"
	"sync"
	"testing"

	"lbc/internal/rvm"
	"lbc/internal/wal"
)

func newPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return srv, cli
}

func TestRegionRoundTrip(t *testing.T) {
	_, cli := newPair(t)
	img := []byte("the permanent database image")
	if err := cli.StoreRegion(3, img); err != nil {
		t.Fatal(err)
	}
	got, err := cli.LoadRegion(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(img) {
		t.Fatalf("got %q", got)
	}
}

func TestLoadMissingRegion(t *testing.T) {
	_, cli := newPair(t)
	if _, err := cli.LoadRegion(42); !errors.Is(err, rvm.ErrNoRegion) {
		t.Fatalf("err = %v, want ErrNoRegion sentinel", err)
	}
}

func TestListRegionsAndSync(t *testing.T) {
	_, cli := newPair(t)
	cli.StoreRegion(1, []byte("a"))
	cli.StoreRegion(2, []byte("b"))
	ids, err := cli.Regions()
	if err != nil || len(ids) != 2 {
		t.Fatalf("regions = %v, %v", ids, err)
	}
	if err := cli.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteLogDevice(t *testing.T) {
	_, cli := newPair(t)
	dev := cli.LogDevice(7)

	off, err := dev.Append([]byte("abc"))
	if err != nil || off != 0 {
		t.Fatalf("append: off=%d err=%v", off, err)
	}
	off, err = dev.Append([]byte("defgh"))
	if err != nil || off != 3 {
		t.Fatalf("append 2: off=%d err=%v", off, err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	sz, err := dev.Size()
	if err != nil || sz != 8 {
		t.Fatalf("size = %d, %v", sz, err)
	}
	rc, err := dev.Open(3)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(rc)
	rc.Close()
	if string(b) != "defgh" {
		t.Fatalf("read %q", b)
	}
	if err := dev.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if sz, _ := dev.Size(); sz != 3 {
		t.Fatalf("size after truncate = %d", sz)
	}
	if err := dev.Reset(); err != nil {
		t.Fatal(err)
	}
	if sz, _ := dev.Size(); sz != 0 {
		t.Fatalf("size after reset = %d", sz)
	}

	logs, err := cli.Logs()
	if err != nil || len(logs) != 1 || logs[0] != 7 {
		t.Fatalf("logs = %v, %v", logs, err)
	}
}

// TestRVMOverStore runs the full RVM commit/recover cycle with the log
// and database on the storage server — the paper's client/server
// configuration.
func TestRVMOverStore(t *testing.T) {
	srv, cli := newPair(t)

	r, err := rvm.Open(rvm.Options{Node: 1, Log: cli.LogDevice(1), Data: cli})
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := r.Map(1, 256)
	tx := r.Begin(rvm.NoRestore)
	tx.SetRange(reg, 0, 9)
	copy(reg.Bytes(), "networked")
	if _, err := tx.Commit(rvm.Flush); err != nil {
		t.Fatal(err)
	}

	// A second client (recovery utility) replays the log server-side
	// into the permanent image.
	cli2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	res, err := rvm.Recover(cli2.LogDevice(1), cli2, rvm.RecoverOptions{TrimLog: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1 {
		t.Fatalf("recovered %d records", res.Records)
	}
	img, err := cli2.LoadRegion(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(img[:9]) != "networked" {
		t.Fatalf("image = %q", img[:9])
	}
	if sz, _ := cli2.LogDevice(1).Size(); sz != 0 {
		t.Fatal("log not trimmed")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := newPair(t)
	var wg sync.WaitGroup
	for n := 0; n < 4; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			cli, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			dev := cli.LogDevice(uint32(n))
			for i := 0; i < 50; i++ {
				if _, err := dev.Append([]byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
			if sz, _ := dev.Size(); sz != 50 {
				t.Errorf("node %d: size %d", n, sz)
			}
		}(n)
	}
	wg.Wait()
	if logs := srv.Logs(); len(logs) != 4 {
		t.Fatalf("server has %d logs", len(logs))
	}
}

func TestServerWithDirBackends(t *testing.T) {
	dir := t.TempDir()
	data, err := rvm.NewDirStore(filepath.Join(dir, "data"))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", ServerOptions{
		Data: data,
		NewLog: func(node uint32) (wal.Device, error) {
			return wal.OpenFileDevice(filepath.Join(dir, "log-"+string(rune('0'+node))))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if err := cli.StoreRegion(1, []byte("on disk")); err != nil {
		t.Fatal(err)
	}
	dev := cli.LogDevice(1)
	if _, err := dev.Append([]byte("log bytes")); err != nil {
		t.Fatal(err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	img, err := cli.LoadRegion(1)
	if err != nil || string(img) != "on disk" {
		t.Fatalf("load: %q, %v", img, err)
	}
}

func TestBadOpReturnsError(t *testing.T) {
	_, cli := newPair(t)
	if _, err := cli.call(200, nil); err == nil {
		t.Fatal("unknown op accepted")
	}
	// Connection must still be usable after a server-side error.
	if err := cli.StoreRegion(1, []byte("x")); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}
