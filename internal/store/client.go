package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"lbc/internal/rvm"
	"lbc/internal/wal"
)

// Client talks to a storage Server. It implements rvm.DataStore
// directly, and LogDevice returns a wal.Device view of one node's log
// on the server. A Client serializes its requests over a single TCP
// connection, like a single NFS mount in the prototype.
//
// A failover client (DialFailover) carries an ordered address list —
// primary first, then backups. A request that fails at the transport
// level is retried: first on a fresh connection to the same address
// (transient drop), then against each successor address (dead server,
// promote the backup). Server-reported errors never fail over. Note
// the at-least-once consequence: an append whose response was lost
// may be retried against a server that already applied it, so log
// replay (merge, catch-up) deduplicates records by (node, commit-seq).
type Client struct {
	mu    sync.Mutex
	conn  net.Conn
	addrs []string // failover list; empty for a plain Dial client
	cur   int      // index into addrs currently connected
}

const dialTimeout = 2 * time.Second

// Dial connects to a storage server.
func Dial(addr string) (*Client, error) {
	conn, err := dialStore(addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// DialFailover connects to the first reachable address and arms
// transparent failover across the rest (primary/backup mirroring:
// clients re-home to the backup when the primary dies).
func DialFailover(addrs ...string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("store: DialFailover needs at least one address")
	}
	var lastErr error
	for i, addr := range addrs {
		conn, err := dialStore(addr)
		if err != nil {
			lastErr = err
			continue
		}
		return &Client{conn: conn, addrs: addrs, cur: i}, nil
	}
	return nil, lastErr
}

func dialStore(addr string) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("store: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return conn, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}

// roundTrip performs one request/response exchange on the current
// connection. Any error it returns is a transport failure.
func (c *Client) roundTrip(op uint8, body []byte) ([]byte, error) {
	if c.conn == nil {
		return nil, errors.New("store: not connected")
	}
	if err := writeReq(c.conn, op, body); err != nil {
		return nil, fmt.Errorf("store: send: %w", err)
	}
	resp, err := readMsg(c.conn)
	if err != nil {
		return nil, fmt.Errorf("store: recv: %w", err)
	}
	return resp, nil
}

// call performs one request/response round trip, failing over across
// the configured address list on transport errors.
func (c *Client) call(op uint8, body []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.roundTrip(op, body)
	if err != nil && len(c.addrs) > 0 {
		// Attempt 0 re-dials the current address; each further attempt
		// advances to the next one in the ring.
		for attempt := 0; attempt <= len(c.addrs) && err != nil; attempt++ {
			if c.conn != nil {
				c.conn.Close()
				c.conn = nil
			}
			if attempt > 0 {
				c.cur = (c.cur + 1) % len(c.addrs)
			}
			conn, derr := dialStore(c.addrs[c.cur])
			if derr != nil {
				err = derr
				continue
			}
			c.conn = conn
			resp, err = c.roundTrip(op, body)
		}
	}
	if err != nil {
		return nil, err
	}
	if len(resp) == 0 {
		return nil, errors.New("store: empty response")
	}
	if resp[0] == statusErr {
		msg := string(resp[1:])
		// Re-map the sentinel that DataStore consumers test for.
		if strings.Contains(msg, rvm.ErrNoRegion.Error()) {
			return nil, rvm.ErrNoRegion
		}
		return nil, errors.New(msg)
	}
	return resp[1:], nil
}

// LoadRegion implements rvm.DataStore.
func (c *Client) LoadRegion(id uint32) ([]byte, error) {
	var req [4]byte
	binary.LittleEndian.PutUint32(req[:], id)
	return c.call(opLoadRegion, req[:])
}

// StoreRegion implements rvm.DataStore.
func (c *Client) StoreRegion(id uint32, data []byte) error {
	req := make([]byte, 4+len(data))
	binary.LittleEndian.PutUint32(req, id)
	copy(req[4:], data)
	_, err := c.call(opStoreRegion, req)
	return err
}

// Regions implements rvm.DataStore.
func (c *Client) Regions() ([]uint32, error) {
	resp, err := c.call(opListRegions, nil)
	if err != nil {
		return nil, err
	}
	return decodeIDs(resp)
}

// Sync implements rvm.DataStore.
func (c *Client) Sync() error {
	_, err := c.call(opSyncData, nil)
	return err
}

// Logs lists node ids that have logs on the server.
func (c *Client) Logs() ([]uint32, error) {
	resp, err := c.call(opListLogs, nil)
	if err != nil {
		return nil, err
	}
	return decodeIDs(resp)
}

// LogDevice returns a wal.Device backed by node's log on the server.
func (c *Client) LogDevice(node uint32) wal.Device {
	return &remoteLog{c: c, node: node}
}

// remoteLog adapts the server's per-node log to wal.Device.
type remoteLog struct {
	c    *Client
	node uint32
}

func (l *remoteLog) req(extra int) []byte {
	b := make([]byte, 4, 4+extra)
	binary.LittleEndian.PutUint32(b, l.node)
	return b
}

// Append implements wal.Device.
func (l *remoteLog) Append(p []byte) (int64, error) {
	resp, err := l.c.call(opAppendLog, append(l.req(len(p)), p...))
	if err != nil {
		return 0, err
	}
	if len(resp) != 8 {
		return 0, errors.New("store: bad AppendLog response")
	}
	return int64(binary.LittleEndian.Uint64(resp)), nil
}

// Sync implements wal.Device.
func (l *remoteLog) Sync() error {
	_, err := l.c.call(opSyncLog, l.req(0))
	return err
}

// Size implements wal.Device.
func (l *remoteLog) Size() (int64, error) {
	resp, err := l.c.call(opLogSize, l.req(0))
	if err != nil {
		return 0, err
	}
	if len(resp) != 8 {
		return 0, errors.New("store: bad LogSize response")
	}
	return int64(binary.LittleEndian.Uint64(resp)), nil
}

// Open implements wal.Device: the tail is fetched in one round trip.
func (l *remoteLog) Open(from int64) (io.ReadCloser, error) {
	req := l.req(8)
	var off [8]byte
	binary.LittleEndian.PutUint64(off[:], uint64(from))
	resp, err := l.c.call(opReadLog, append(req, off[:]...))
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(resp)), nil
}

// Truncate implements wal.Device.
func (l *remoteLog) Truncate(size int64) error {
	req := l.req(8)
	var sz [8]byte
	binary.LittleEndian.PutUint64(sz[:], uint64(size))
	_, err := l.c.call(opTruncateLog, append(req, sz[:]...))
	return err
}

// Reset implements wal.Device.
func (l *remoteLog) Reset() error {
	_, err := l.c.call(opResetLog, l.req(0))
	return err
}

// Close implements wal.Device (the underlying client stays open; logs
// share its connection).
func (l *remoteLog) Close() error { return nil }
