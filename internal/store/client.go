package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"lbc/internal/rvm"
	"lbc/internal/wal"
)

// Client talks to a storage Server. It implements rvm.DataStore
// directly, and LogDevice returns a wal.Device view of one node's log
// on the server. A Client serializes its requests over a single TCP
// connection, like a single NFS mount in the prototype.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a storage server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("store: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// call performs one request/response round trip.
func (c *Client) call(op uint8, body []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeReq(c.conn, op, body); err != nil {
		return nil, fmt.Errorf("store: send: %w", err)
	}
	resp, err := readMsg(c.conn)
	if err != nil {
		return nil, fmt.Errorf("store: recv: %w", err)
	}
	if len(resp) == 0 {
		return nil, errors.New("store: empty response")
	}
	if resp[0] == statusErr {
		msg := string(resp[1:])
		// Re-map the sentinel that DataStore consumers test for.
		if strings.Contains(msg, rvm.ErrNoRegion.Error()) {
			return nil, rvm.ErrNoRegion
		}
		return nil, errors.New(msg)
	}
	return resp[1:], nil
}

// LoadRegion implements rvm.DataStore.
func (c *Client) LoadRegion(id uint32) ([]byte, error) {
	var req [4]byte
	binary.LittleEndian.PutUint32(req[:], id)
	return c.call(opLoadRegion, req[:])
}

// StoreRegion implements rvm.DataStore.
func (c *Client) StoreRegion(id uint32, data []byte) error {
	req := make([]byte, 4+len(data))
	binary.LittleEndian.PutUint32(req, id)
	copy(req[4:], data)
	_, err := c.call(opStoreRegion, req)
	return err
}

// Regions implements rvm.DataStore.
func (c *Client) Regions() ([]uint32, error) {
	resp, err := c.call(opListRegions, nil)
	if err != nil {
		return nil, err
	}
	return decodeIDs(resp)
}

// Sync implements rvm.DataStore.
func (c *Client) Sync() error {
	_, err := c.call(opSyncData, nil)
	return err
}

// Logs lists node ids that have logs on the server.
func (c *Client) Logs() ([]uint32, error) {
	resp, err := c.call(opListLogs, nil)
	if err != nil {
		return nil, err
	}
	return decodeIDs(resp)
}

// LogDevice returns a wal.Device backed by node's log on the server.
func (c *Client) LogDevice(node uint32) wal.Device {
	return &remoteLog{c: c, node: node}
}

// remoteLog adapts the server's per-node log to wal.Device.
type remoteLog struct {
	c    *Client
	node uint32
}

func (l *remoteLog) req(extra int) []byte {
	b := make([]byte, 4, 4+extra)
	binary.LittleEndian.PutUint32(b, l.node)
	return b
}

// Append implements wal.Device.
func (l *remoteLog) Append(p []byte) (int64, error) {
	resp, err := l.c.call(opAppendLog, append(l.req(len(p)), p...))
	if err != nil {
		return 0, err
	}
	if len(resp) != 8 {
		return 0, errors.New("store: bad AppendLog response")
	}
	return int64(binary.LittleEndian.Uint64(resp)), nil
}

// Sync implements wal.Device.
func (l *remoteLog) Sync() error {
	_, err := l.c.call(opSyncLog, l.req(0))
	return err
}

// Size implements wal.Device.
func (l *remoteLog) Size() (int64, error) {
	resp, err := l.c.call(opLogSize, l.req(0))
	if err != nil {
		return 0, err
	}
	if len(resp) != 8 {
		return 0, errors.New("store: bad LogSize response")
	}
	return int64(binary.LittleEndian.Uint64(resp)), nil
}

// Open implements wal.Device: the tail is fetched in one round trip.
func (l *remoteLog) Open(from int64) (io.ReadCloser, error) {
	req := l.req(8)
	var off [8]byte
	binary.LittleEndian.PutUint64(off[:], uint64(from))
	resp, err := l.c.call(opReadLog, append(req, off[:]...))
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(resp)), nil
}

// Truncate implements wal.Device.
func (l *remoteLog) Truncate(size int64) error {
	req := l.req(8)
	var sz [8]byte
	binary.LittleEndian.PutUint64(sz[:], uint64(size))
	_, err := l.c.call(opTruncateLog, append(req, sz[:]...))
	return err
}

// Reset implements wal.Device.
func (l *remoteLog) Reset() error {
	_, err := l.c.call(opResetLog, l.req(0))
	return err
}

// Close implements wal.Device (the underlying client stays open; logs
// share its connection).
func (l *remoteLog) Close() error { return nil }
