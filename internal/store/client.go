package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/rvm"
	"lbc/internal/wal"
)

// Client talks to a storage Server. It implements rvm.DataStore
// directly, and LogDevice returns a wal.Device view of one node's log
// on the server. A Client serializes its requests over a single TCP
// connection, like a single NFS mount in the prototype.
//
// A failover client (DialFailover) carries an ordered address list —
// primary first, then backups. A request that fails at the transport
// level is retried: first on a fresh connection to the same address
// (transient drop), then against each successor address (dead server,
// promote the backup). Server-reported errors never fail over. Note
// the at-least-once consequence: an append whose response was lost
// may be retried against a server that already applied it, so log
// replay (merge, catch-up) deduplicates records by (node, commit-seq).
type Client struct {
	stats *metrics.Stats

	mu    sync.Mutex
	conn  net.Conn
	addrs []string   // failover list; empty for a plain Dial client
	cur   int        // index into addrs currently connected
	rng   *rand.Rand // failover backoff jitter; guarded by mu
}

const (
	dialTimeout = 2 * time.Second
	// Failover ring walks pause between attempts on a jittered, capped
	// exponential backoff, so a herd of clients that lost the same
	// primary does not re-dial the backup in lockstep.
	failoverBackoff    = 5 * time.Millisecond
	failoverBackoffMax = 250 * time.Millisecond
)

// Dial connects to a storage server.
func Dial(addr string) (*Client, error) {
	c := &Client{stats: metrics.NewStats(), rng: rand.New(rand.NewSource(1))}
	conn, err := c.dial(addr)
	if err != nil {
		return nil, err
	}
	c.conn = conn
	return c, nil
}

// DialFailover connects to the first reachable address and arms
// transparent failover across the rest (primary/backup mirroring:
// clients re-home to the backup when the primary dies). When every
// address fails, the returned error is a *DialError listing each
// attempt.
func DialFailover(addrs ...string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("store: DialFailover needs at least one address")
	}
	c := &Client{stats: metrics.NewStats(), addrs: addrs,
		rng: rand.New(rand.NewSource(int64(len(addrs))*0x9E3779B9 + 1))}
	agg := &DialError{Op: "dial"}
	for i, addr := range addrs {
		conn, err := c.dial(addr)
		if err != nil {
			agg.Attempts = append(agg.Attempts, DialAttempt{Addr: addr, Err: err})
			continue
		}
		c.conn = conn
		c.cur = i
		return c, nil
	}
	return nil, agg
}

// Stats exposes the client's op latency histograms (read/write/dial)
// for the /debug/lbc endpoint.
func (c *Client) Stats() *metrics.Stats { return c.stats }

// dial connects to one address, recording dial latency.
func (c *Client) dial(addr string) (net.Conn, error) {
	start := time.Now()
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	c.stats.Observe(metrics.HistStoreDialNS, time.Since(start).Nanoseconds())
	if err != nil {
		return nil, fmt.Errorf("store: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return conn, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}

// roundTrip performs one request/response exchange on the current
// connection. Any error it returns is a transport failure.
func (c *Client) roundTrip(op uint8, body []byte) ([]byte, error) {
	if c.conn == nil {
		return nil, errors.New("store: not connected")
	}
	if err := writeReq(c.conn, op, body); err != nil {
		return nil, fmt.Errorf("store: send: %w", err)
	}
	resp, err := readMsg(c.conn)
	if err != nil {
		return nil, fmt.Errorf("store: recv: %w", err)
	}
	return resp, nil
}

// call performs one request/response round trip, failing over across
// the configured address list on transport errors. A walk that
// exhausts the whole ring reports a *DialError naming every address
// tried and how each failed.
func (c *Client) call(op uint8, body []byte) ([]byte, error) {
	start := time.Now()
	defer func() {
		if isWriteOp(op) {
			c.stats.Observe(metrics.HistStoreWriteNS, time.Since(start).Nanoseconds())
		} else {
			c.stats.Observe(metrics.HistStoreReadNS, time.Since(start).Nanoseconds())
		}
	}()
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.roundTrip(op, body)
	if err != nil && len(c.addrs) > 0 {
		agg := &DialError{Op: opCounter(op)}
		agg.Attempts = append(agg.Attempts, DialAttempt{Addr: c.addrs[c.cur], Err: err})
		// Attempt 0 re-dials the current address; each further attempt
		// advances to the next one in the ring, pausing on a jittered,
		// capped exponential backoff first.
		backoff := failoverBackoff
		for attempt := 0; attempt <= len(c.addrs) && err != nil; attempt++ {
			if c.conn != nil {
				c.conn.Close()
				c.conn = nil
			}
			if attempt > 0 {
				c.cur = (c.cur + 1) % len(c.addrs)
				d := backoff
				if half := d / 2; half > 0 {
					d = half + time.Duration(c.rng.Int63n(int64(half)+1))
				}
				time.Sleep(d)
				if backoff < failoverBackoffMax {
					backoff *= 2
				}
			}
			conn, derr := c.dial(c.addrs[c.cur])
			if derr != nil {
				err = derr
				agg.Attempts = append(agg.Attempts, DialAttempt{Addr: c.addrs[c.cur], Err: derr})
				continue
			}
			c.conn = conn
			resp, err = c.roundTrip(op, body)
			if err != nil {
				agg.Attempts = append(agg.Attempts, DialAttempt{Addr: c.addrs[c.cur], Err: err})
			}
		}
		if err != nil {
			c.stats.Add(metrics.CtrRetriesExhausted, 1)
			return nil, agg
		}
	}
	if err != nil {
		return nil, err
	}
	if len(resp) == 0 {
		return nil, errors.New("store: empty response")
	}
	switch resp[0] {
	case statusErr:
		msg := string(resp[1:])
		// Re-map the sentinel that DataStore consumers test for.
		if strings.Contains(msg, rvm.ErrNoRegion.Error()) {
			return nil, rvm.ErrNoRegion
		}
		return nil, errors.New(msg)
	case statusBehind:
		if len(resp) != 9 {
			return nil, errors.New("store: bad behind response")
		}
		return nil, &BehindError{Size: int64(binary.LittleEndian.Uint64(resp[1:]))}
	}
	return resp[1:], nil
}

// LoadRegion implements rvm.DataStore.
func (c *Client) LoadRegion(id uint32) ([]byte, error) {
	var req [4]byte
	binary.LittleEndian.PutUint32(req[:], id)
	return c.call(opLoadRegion, req[:])
}

// StoreRegion implements rvm.DataStore.
func (c *Client) StoreRegion(id uint32, data []byte) error {
	req := make([]byte, 4+len(data))
	binary.LittleEndian.PutUint32(req, id)
	copy(req[4:], data)
	_, err := c.call(opStoreRegion, req)
	return err
}

// Regions implements rvm.DataStore.
func (c *Client) Regions() ([]uint32, error) {
	resp, err := c.call(opListRegions, nil)
	if err != nil {
		return nil, err
	}
	return decodeIDs(resp)
}

// Sync implements rvm.DataStore.
func (c *Client) Sync() error {
	_, err := c.call(opSyncData, nil)
	return err
}

// Logs lists node ids that have logs on the server.
func (c *Client) Logs() ([]uint32, error) {
	resp, err := c.call(opListLogs, nil)
	if err != nil {
		return nil, err
	}
	return decodeIDs(resp)
}

// LogDevice returns a wal.Device backed by node's log on the server.
func (c *Client) LogDevice(node uint32) wal.Device {
	return &remoteLog{c: c, node: node, nextOff: -1}
}

// remoteLog adapts the server's per-node log to wal.Device. Appends go
// through the offset-guarded AppendLogAt op: the device tracks where
// its next record belongs, so a retried append after a lost ack (or a
// failover to a mirror that already applied the forwarded copy) acks
// idempotently instead of duplicating the record.
type remoteLog struct {
	c    *Client
	node uint32

	offMu   sync.Mutex
	nextOff int64 // next append offset; -1 until learned from the server
}

func (l *remoteLog) req(extra int) []byte {
	b := make([]byte, 4, 4+extra)
	binary.LittleEndian.PutUint32(b, l.node)
	return b
}

// Append implements wal.Device via the offset-guarded protocol.
func (l *remoteLog) Append(p []byte) (int64, error) {
	l.offMu.Lock()
	defer l.offMu.Unlock()
	if l.nextOff < 0 {
		sz, err := l.sizeRemote()
		if err != nil {
			return 0, err
		}
		l.nextOff = sz
	}
	newSize, err := l.c.AppendLogAt(l.node, l.nextOff, p)
	var behind *BehindError
	if errors.As(err, &behind) {
		// The server's log shrank under us (offline trim by another
		// client). Re-home to its current tail, matching the plain
		// append-at-end semantics this device used to have.
		l.nextOff = behind.Size
		newSize, err = l.c.AppendLogAt(l.node, l.nextOff, p)
	}
	if err != nil {
		l.nextOff = -1 // relearn after an ambiguous failure
		return 0, err
	}
	off := l.nextOff
	l.nextOff = newSize
	return off, nil
}

// Sync implements wal.Device.
func (l *remoteLog) Sync() error {
	_, err := l.c.call(opSyncLog, l.req(0))
	return err
}

// Size implements wal.Device.
func (l *remoteLog) Size() (int64, error) { return l.sizeRemote() }

func (l *remoteLog) sizeRemote() (int64, error) {
	resp, err := l.c.call(opLogSize, l.req(0))
	if err != nil {
		return 0, err
	}
	if len(resp) != 8 {
		return 0, errors.New("store: bad LogSize response")
	}
	return int64(binary.LittleEndian.Uint64(resp)), nil
}

// Open implements wal.Device: the tail is fetched in one round trip.
func (l *remoteLog) Open(from int64) (io.ReadCloser, error) {
	req := l.req(8)
	var off [8]byte
	binary.LittleEndian.PutUint64(off[:], uint64(from))
	resp, err := l.c.call(opReadLog, append(req, off[:]...))
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(resp)), nil
}

// Truncate implements wal.Device.
func (l *remoteLog) Truncate(size int64) error {
	l.offMu.Lock()
	defer l.offMu.Unlock()
	req := l.req(8)
	var sz [8]byte
	binary.LittleEndian.PutUint64(sz[:], uint64(size))
	_, err := l.c.call(opTruncateLog, append(req, sz[:]...))
	l.nextOff = -1
	return err
}

// Reset implements wal.Device.
func (l *remoteLog) Reset() error {
	l.offMu.Lock()
	defer l.offMu.Unlock()
	_, err := l.c.call(opResetLog, l.req(0))
	if err == nil {
		l.nextOff = 0
	} else {
		l.nextOff = -1
	}
	return err
}

// Close implements wal.Device (the underlying client stays open; logs
// share its connection).
func (l *remoteLog) Close() error { return nil }
