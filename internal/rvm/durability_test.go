package rvm

import (
	"bytes"
	"testing"

	"lbc/internal/wal"
)

// TestFlushSemanticsAcrossCrash pins the commit-mode contract: a crash
// loses no-flush commits that were never forced, keeps everything up
// to the last force, and never tears the committed prefix.
func TestFlushSemanticsAcrossCrash(t *testing.T) {
	log := wal.NewMemDevice()
	data := NewMemStore()
	data.StoreRegion(1, make([]byte, 64))
	r, _ := Open(Options{Node: 1, Log: log, Data: data})
	reg, _ := r.Map(1, 64)

	commit := func(off uint64, val byte, mode CommitMode) {
		tx := r.Begin(NoRestore)
		if err := tx.SetRange(reg, off, 1); err != nil {
			t.Fatal(err)
		}
		reg.Bytes()[off] = val
		if _, err := tx.Commit(mode); err != nil {
			t.Fatal(err)
		}
	}
	commit(0, 1, Flush)   // durable
	commit(1, 2, NoFlush) // volatile
	commit(2, 3, NoFlush) // volatile

	log.CrashUnsynced()
	res, err := Recover(log, data, RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1 {
		t.Fatalf("recovered %d records, want only the flushed one", res.Records)
	}
	img, _ := data.LoadRegion(1)
	if img[0] != 1 || img[1] != 0 || img[2] != 0 {
		t.Fatalf("image after crash = % x", img[:3])
	}
}

// TestRVMFlushMakesEarlierCommitsDurable: rvm_flush retroactively
// forces no-flush commits.
func TestRVMFlushMakesEarlierCommitsDurable(t *testing.T) {
	log := wal.NewMemDevice()
	data := NewMemStore()
	data.StoreRegion(1, make([]byte, 64))
	r, _ := Open(Options{Node: 1, Log: log, Data: data})
	reg, _ := r.Map(1, 64)

	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 0, 1)
	reg.Bytes()[0] = 7
	tx.Commit(NoFlush)

	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	log.CrashUnsynced()
	res, err := Recover(log, data, RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1 {
		t.Fatalf("recovered %d records after rvm_flush", res.Records)
	}
	img, _ := data.LoadRegion(1)
	if img[0] != 7 {
		t.Fatalf("image[0] = %d", img[0])
	}
}

// TestCrashMidFuzzyCheckpointConverges kills the node at every stage of
// a fuzzy checkpoint — after the image sweep but before the marker,
// after the marker but before the head trim, mid-marker (torn append),
// and after the trim — and checks recovery converges to the same image
// an uninterrupted run produces. The checkpoint must never create a
// window where committed data is unrecoverable.
func TestCrashMidFuzzyCheckpointConverges(t *testing.T) {
	log := wal.NewMemDevice()
	data := NewMemStore()
	r, _ := Open(Options{Node: 1, Log: log, Data: data})
	reg, _ := r.Map(1, 4*4096)

	commit := func(off uint64, s string) {
		tx := r.Begin(NoRestore)
		if err := tx.SetRange(reg, off, uint32(len(s))); err != nil {
			t.Fatal(err)
		}
		copy(reg.Bytes()[off:], s)
		if _, err := tx.Commit(Flush); err != nil {
			t.Fatal(err)
		}
	}

	type crash struct {
		name  string
		log   []byte
		store *MemStore
		want  []byte // committed image the crash must recover to
	}
	snap := func(name string, logBytes []byte) crash {
		return crash{
			name:  name,
			log:   append([]byte(nil), logBytes...),
			store: cloneStore(t, data),
			want:  append([]byte(nil), reg.Bytes()...),
		}
	}
	var crashes []crash

	commit(0, "pre1")
	commit(4096, "pre2")

	c := r.NewIncrementalCheckpointer(4096)
	if err := c.BeginConcurrent(); err != nil {
		t.Fatal(err)
	}
	if err := c.SweepRange(1, 0, uint64(reg.Size())); err != nil {
		t.Fatal(err)
	}
	commit(0, "mid1") // races the sweep: page 0's copy is stale
	crashes = append(crashes, snap("after-sweep-before-marker", log.Bytes()))

	if _, err := c.ResweepDirty(); err != nil {
		t.Fatal(err)
	}
	markerAt, end, err := c.FinishQuiesced()
	if err != nil {
		t.Fatal(err)
	}
	crashes = append(crashes, snap("after-marker-before-trim", log.Bytes()))
	// A crash mid-append tears the marker: keep a few header bytes so
	// the scanner sees a torn record, not a clean end.
	crashes = append(crashes, snap("torn-marker", log.Bytes()[:markerAt+5]))

	if err := r.TrimLogHeadLogical(end); err != nil {
		t.Fatal(err)
	}
	commit(8192, "post")
	crashes = append(crashes, snap("after-trim", log.Bytes()))

	for _, cr := range crashes {
		dev := wal.NewMemDevice()
		if len(cr.log) > 0 {
			dev.Append(cr.log)
			dev.Sync()
		}
		res, err := Recover(dev, cr.store, RecoverOptions{TruncateTorn: true})
		if err != nil {
			t.Fatalf("%s: recover: %v", cr.name, err)
		}
		img, err := cr.store.LoadRegion(1)
		if err != nil {
			t.Fatalf("%s: load: %v", cr.name, err)
		}
		if !bytes.Equal(img, cr.want) {
			t.Fatalf("%s: recovered image diverges from committed state (res=%+v)", cr.name, res)
		}
	}
}

// TestCrashMidAppendIsTornNotCorrupt: a crash that lands inside an
// append leaves a cleanly detectable torn tail.
func TestCrashMidAppendIsTornNotCorrupt(t *testing.T) {
	log := wal.NewMemDevice()
	r, _ := Open(Options{Node: 1, Log: log})
	reg, _ := r.Map(1, 64)

	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 0, 4)
	tx.Commit(Flush)
	syncedSize, _ := log.Size()

	// A second commit happens; the "disk" only got part of it.
	tx2 := r.Begin(NoRestore)
	tx2.SetRange(reg, 8, 4)
	tx2.Commit(NoFlush)
	full, _ := log.Size()
	log.Truncate(syncedSize + (full-syncedSize)/2) // physical tear
	res, err := Recover(log, NewMemStore(), RecoverOptions{TruncateTorn: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1 || !res.Torn || res.TornAt != syncedSize {
		t.Fatalf("res = %+v", res)
	}
	if sz, _ := log.Size(); sz != syncedSize {
		t.Fatalf("log not repaired: %d != %d", sz, syncedSize)
	}
}
