package rvm

import (
	"testing"

	"lbc/internal/wal"
)

// TestFlushSemanticsAcrossCrash pins the commit-mode contract: a crash
// loses no-flush commits that were never forced, keeps everything up
// to the last force, and never tears the committed prefix.
func TestFlushSemanticsAcrossCrash(t *testing.T) {
	log := wal.NewMemDevice()
	data := NewMemStore()
	data.StoreRegion(1, make([]byte, 64))
	r, _ := Open(Options{Node: 1, Log: log, Data: data})
	reg, _ := r.Map(1, 64)

	commit := func(off uint64, val byte, mode CommitMode) {
		tx := r.Begin(NoRestore)
		if err := tx.SetRange(reg, off, 1); err != nil {
			t.Fatal(err)
		}
		reg.Bytes()[off] = val
		if _, err := tx.Commit(mode); err != nil {
			t.Fatal(err)
		}
	}
	commit(0, 1, Flush)   // durable
	commit(1, 2, NoFlush) // volatile
	commit(2, 3, NoFlush) // volatile

	log.CrashUnsynced()
	res, err := Recover(log, data, RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1 {
		t.Fatalf("recovered %d records, want only the flushed one", res.Records)
	}
	img, _ := data.LoadRegion(1)
	if img[0] != 1 || img[1] != 0 || img[2] != 0 {
		t.Fatalf("image after crash = % x", img[:3])
	}
}

// TestRVMFlushMakesEarlierCommitsDurable: rvm_flush retroactively
// forces no-flush commits.
func TestRVMFlushMakesEarlierCommitsDurable(t *testing.T) {
	log := wal.NewMemDevice()
	data := NewMemStore()
	data.StoreRegion(1, make([]byte, 64))
	r, _ := Open(Options{Node: 1, Log: log, Data: data})
	reg, _ := r.Map(1, 64)

	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 0, 1)
	reg.Bytes()[0] = 7
	tx.Commit(NoFlush)

	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	log.CrashUnsynced()
	res, err := Recover(log, data, RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1 {
		t.Fatalf("recovered %d records after rvm_flush", res.Records)
	}
	img, _ := data.LoadRegion(1)
	if img[0] != 7 {
		t.Fatalf("image[0] = %d", img[0])
	}
}

// TestCrashMidAppendIsTornNotCorrupt: a crash that lands inside an
// append leaves a cleanly detectable torn tail.
func TestCrashMidAppendIsTornNotCorrupt(t *testing.T) {
	log := wal.NewMemDevice()
	r, _ := Open(Options{Node: 1, Log: log})
	reg, _ := r.Map(1, 64)

	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 0, 4)
	tx.Commit(Flush)
	syncedSize, _ := log.Size()

	// A second commit happens; the "disk" only got part of it.
	tx2 := r.Begin(NoRestore)
	tx2.SetRange(reg, 8, 4)
	tx2.Commit(NoFlush)
	full, _ := log.Size()
	log.Truncate(syncedSize + (full-syncedSize)/2) // physical tear
	res, err := Recover(log, NewMemStore(), RecoverOptions{TruncateTorn: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1 || !res.Torn || res.TornAt != syncedSize {
		t.Fatalf("res = %+v", res)
	}
	if sz, _ := log.Size(); sz != syncedSize {
		t.Fatalf("log not repaired: %d != %d", sz, syncedSize)
	}
}
