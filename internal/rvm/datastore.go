package rvm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ErrNoRegion is returned by DataStore.LoadRegion when the store has no
// image for the requested region (a fresh database).
var ErrNoRegion = errors.New("rvm: no such region in data store")

// DataStore is the permanent home of region images — the "permanent
// database file" of the paper. The centralized storage service
// (internal/store) implements this interface over the network; MemStore
// and DirStore implement it locally.
type DataStore interface {
	// LoadRegion returns a copy of the region's permanent image, or
	// ErrNoRegion.
	LoadRegion(id uint32) ([]byte, error)
	// StoreRegion replaces the region's permanent image (checkpoint /
	// recovery writeback).
	StoreRegion(id uint32, data []byte) error
	// Regions lists the ids of stored regions.
	Regions() ([]uint32, error)
	// Sync forces stored images to durable media.
	Sync() error
}

// MemStore is an in-memory DataStore for tests and disk-free
// experiment configurations.
type MemStore struct {
	mu      sync.Mutex
	regions map[uint32][]byte
}

// NewMemStore returns an empty in-memory data store.
func NewMemStore() *MemStore { return &MemStore{regions: map[uint32][]byte{}} }

// LoadRegion implements DataStore.
func (s *MemStore) LoadRegion(id uint32) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	img, ok := s.regions[id]
	if !ok {
		return nil, ErrNoRegion
	}
	cp := make([]byte, len(img))
	copy(cp, img)
	return cp, nil
}

// StoreRegion implements DataStore.
func (s *MemStore) StoreRegion(id uint32, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	s.regions[id] = cp
	return nil
}

// StorePage implements PageStore: write one page in place, growing
// the image as needed.
func (s *MemStore) StorePage(id uint32, off int64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	img := s.regions[id]
	need := int(off) + len(data)
	if len(img) < need {
		grown := make([]byte, need)
		copy(grown, img)
		img = grown
	}
	copy(img[off:], data)
	s.regions[id] = img
	return nil
}

// Regions implements DataStore.
func (s *MemStore) Regions() ([]uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]uint32, 0, len(s.regions))
	for id := range s.regions {
		ids = append(ids, id)
	}
	return ids, nil
}

// Sync implements DataStore (no-op).
func (s *MemStore) Sync() error { return nil }

// DirStore is a DataStore backed by a local directory, one file per
// region. This is the single-node RVM configuration (database file on
// local disk).
type DirStore struct {
	dir string
	mu  sync.Mutex
}

// NewDirStore creates (if needed) and opens a directory-backed store.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rvm: create data dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

func (s *DirStore) regionPath(id uint32) string {
	return filepath.Join(s.dir, fmt.Sprintf("region-%d.db", id))
}

// LoadRegion implements DataStore.
func (s *DirStore) LoadRegion(id uint32) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := os.ReadFile(s.regionPath(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoRegion
	}
	return b, err
}

// StoreRegion implements DataStore. The image is written to a temp file
// and renamed so a crash mid-checkpoint never corrupts the old image.
func (s *DirStore) StoreRegion(id uint32, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := s.regionPath(id) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.regionPath(id))
}

// StorePage implements PageStore: page writes go straight into the
// image file with WriteAt. In-place page writes are safe here because
// the log head is trimmed only after a full sweep completes, so a
// crash mid-page is always repaired by replay.
func (s *DirStore) StorePage(id uint32, off int64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.OpenFile(s.regionPath(id), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteAt(data, off); err != nil {
		return err
	}
	return f.Sync()
}

// Regions implements DataStore.
func (s *DirStore) Regions() ([]uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var ids []uint32
	for _, e := range ents {
		var id uint32
		if n, _ := fmt.Sscanf(e.Name(), "region-%d.db", &id); n == 1 {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// Sync implements DataStore. Directory contents were written with
// rename, so syncing the directory suffices on POSIX systems.
func (s *DirStore) Sync() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
