package rvm

import (
	"bytes"
	"errors"
	"testing"

	"lbc/internal/fault"
	"lbc/internal/metrics"
	"lbc/internal/wal"
)

// appendRecords writes n committed records for node onto dev and
// returns the offset of each record.
func appendRecords(t *testing.T, dev wal.Device, node uint32, n int) []int64 {
	t.Helper()
	offs := make([]int64, 0, n)
	var off int64
	for i := 0; i < n; i++ {
		tx := &wal.TxRecord{
			Node:  node,
			TxSeq: uint64(i + 1),
			Ranges: []wal.RangeRec{{
				Region: 1,
				Off:    uint64(i) * 8,
				Data:   bytes.Repeat([]byte{byte(i + 1)}, 8),
			}},
		}
		b := wal.AppendStandard(nil, tx)
		if _, err := dev.Append(b); err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
		off += int64(len(b))
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	return offs
}

func TestRecoverInteriorCorruptionFailsLoud(t *testing.T) {
	inner := wal.NewMemDevice()
	offs := appendRecords(t, inner, 1, 5)
	dev := fault.NewDevice(inner, 1)
	dev.FlipAt(offs[2]+40, 0xff, true)

	_, err := Recover(dev, NewMemStore(), RecoverOptions{})
	if !errors.Is(err, wal.ErrInteriorCorruption) {
		t.Fatalf("Recover err = %v, want interior corruption", err)
	}
}

func TestRecoverQuarantineSalvages(t *testing.T) {
	inner := wal.NewMemDevice()
	offs := appendRecords(t, inner, 1, 5)
	dev := fault.NewDevice(inner, 1)
	dev.FlipAt(offs[2]+40, 0xff, true)

	data := NewMemStore()
	res, err := Recover(dev, data, RecoverOptions{Quarantine: true})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if res.Records != 4 {
		t.Errorf("replayed %d records, want 4 (one quarantined)", res.Records)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0].From != offs[2] {
		t.Errorf("quarantined = %v, want one range at %d", res.Quarantined, offs[2])
	}
	img, err := data.LoadRegion(1)
	if err != nil {
		t.Fatal(err)
	}
	// Records 1,2,4,5 applied; record 3's 8 bytes at offset 16 stay zero.
	for i, b := range img {
		rec := i / 8
		want := byte(rec + 1)
		if rec == 2 {
			want = 0
		}
		if b != want {
			t.Fatalf("image byte %d = %#x, want %#x", i, b, want)
		}
	}
}

func TestResumeScanRetriesTransientFlip(t *testing.T) {
	inner := wal.NewMemDevice()
	offs := appendRecords(t, inner, 3, 6)
	dev := fault.NewDevice(inner, 1)
	// One-shot read-back flip inside record 2: the first resume scan
	// sees interior corruption, the retry reads sound bytes.
	dev.FlipAt(offs[2]+44, 0x10, false)

	st := metrics.NewStats()
	r, err := Open(Options{Node: 3, Log: dev, ResumeLog: true, Stats: st})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if got := st.Counter(metrics.CtrLogCorruption); got != 1 {
		t.Errorf("log_corruption_detected = %d, want 1", got)
	}
	if seq := r.txSeq; seq != 6 {
		t.Errorf("resumed TxSeq = %d, want 6", seq)
	}
}

func TestResumeScanSalvagesPersistentDamage(t *testing.T) {
	inner := wal.NewMemDevice()
	offs := appendRecords(t, inner, 3, 6)
	dev := fault.NewDevice(inner, 1)
	dev.FlipAt(offs[2]+44, 0x10, true)

	st := metrics.NewStats()
	r, err := Open(Options{Node: 3, Log: dev, ResumeLog: true, Stats: st})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if got := st.Counter(metrics.CtrLogCorruption); got != int64(resumeScanRetries) {
		t.Errorf("log_corruption_detected = %d, want %d", got, resumeScanRetries)
	}
	// Sound records past the hole carry the true maximum, so identity
	// reuse is impossible even on a quarantined log.
	if seq := r.txSeq; seq != 6 {
		t.Errorf("salvaged TxSeq = %d, want 6", seq)
	}
}
