package rvm

import (
	"bytes"
	"errors"
	"testing"

	"lbc/internal/metrics"
	"lbc/internal/wal"
)

// cloneStore copies every region image into a fresh MemStore, standing
// in for recovering against the permanent store as a crash would see it
// without disturbing the live one.
func cloneStore(t *testing.T, s DataStore) *MemStore {
	t.Helper()
	out := NewMemStore()
	ids, err := s.Regions()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		img, err := s.LoadRegion(id)
		if err != nil {
			t.Fatal(err)
		}
		out.StoreRegion(id, img)
	}
	return out
}

// TestFuzzySweepMarkerRecovery drives the concurrent checkpoint API the
// way the coordinator does — sweep, raced commit, dirty resweep, marker
// — but leaves the log untrimmed (the standalone/crash-window shape) and
// checks recovery starts at the marker and replays only the tail.
func TestFuzzySweepMarkerRecovery(t *testing.T) {
	log := wal.NewMemDevice()
	data := NewMemStore()
	r, _ := Open(Options{Node: 1, Log: log, Data: data})
	reg, _ := r.Map(1, 4*4096)

	commit := func(off uint64, s string) {
		tx := r.Begin(NoRestore)
		if err := tx.SetRange(reg, off, uint32(len(s))); err != nil {
			t.Fatal(err)
		}
		copy(reg.Bytes()[off:], s)
		if _, err := tx.Commit(Flush); err != nil {
			t.Fatal(err)
		}
	}

	commit(0, "pre1")
	commit(4096, "pre2")

	c := r.NewIncrementalCheckpointer(4096)
	if err := c.BeginConcurrent(); err != nil {
		t.Fatal(err)
	}
	// Sweep the whole region, then race a commit against the sweep: page
	// 0's swept copy is now stale and must be re-copied by ResweepDirty.
	if err := c.SweepRange(1, 0, uint64(reg.Size())); err != nil {
		t.Fatal(err)
	}
	commit(0, "mid1")
	if n, err := c.ResweepDirty(); err != nil || n != 1 {
		t.Fatalf("resweep: n=%d err=%v", n, err)
	}
	markerAt, end, err := c.FinishQuiesced()
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := log.Size(); end != sz || markerAt >= end {
		t.Fatalf("marker [%d,%d) vs log size %d", markerAt, end, sz)
	}

	// Post-checkpoint tail.
	commit(8192, "post")

	res, err := Recover(log, cloneStore(t, data), RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Checkpointed || res.ReplayFrom != end {
		t.Fatalf("res = %+v, want replay from %d", res, end)
	}
	if res.Records != 1 || res.SkippedRecords != 3 {
		t.Fatalf("replayed %d skipped %d, want 1/3", res.Records, res.SkippedRecords)
	}
	if res.CheckpointLSN != uint64(markerAt) {
		t.Fatalf("marker LSN %d, want %d", res.CheckpointLSN, markerAt)
	}
	if r.Stats().Counter("checkpoint_markers") != 1 {
		t.Fatal("marker counter not incremented")
	}
}

// TestFuzzySweepRecoveredImageMatches: the cut-point invariant end to
// end — recover from the marker-bearing log into a copy of the
// permanent store and compare against the live image.
func TestFuzzySweepRecoveredImageMatches(t *testing.T) {
	log := wal.NewMemDevice()
	data := NewMemStore()
	r, _ := Open(Options{Node: 1, Log: log, Data: data})
	reg, _ := r.Map(1, 2*4096)

	for i := 0; i < 8; i++ {
		tx := r.Begin(NoRestore)
		off := uint64(i * 512)
		tx.SetRange(reg, off, 4)
		copy(reg.Bytes()[off:], []byte{byte(i + 1), 2, 3, 4})
		tx.Commit(Flush)
	}
	c := r.NewIncrementalCheckpointer(4096)
	c.BeginConcurrent()
	c.SweepRange(1, 0, uint64(reg.Size()))
	// Raced commit after its page was swept.
	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 100, 4)
	copy(reg.Bytes()[100:], "RACE")
	tx.Commit(Flush)
	if _, err := c.ResweepDirty(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.FinishQuiesced(); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), reg.Bytes()...)

	check := cloneStore(t, data)
	if _, err := Recover(log, check, RecoverOptions{}); err != nil {
		t.Fatal(err)
	}
	img, _ := check.LoadRegion(1)
	if !bytes.Equal(img, want) {
		t.Fatal("recovered image differs from live image")
	}
}

// TestAbortConcurrentLeavesNoMarker: an abandoned fuzzy sweep writes no
// marker and recovery replays from offset 0 as before.
func TestAbortConcurrentLeavesNoMarker(t *testing.T) {
	log := wal.NewMemDevice()
	data := NewMemStore()
	r, _ := Open(Options{Node: 1, Log: log, Data: data})
	reg, _ := r.Map(1, 4096)

	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 0, 4)
	copy(reg.Bytes(), "pre ")
	tx.Commit(Flush)

	c := r.NewIncrementalCheckpointer(4096)
	c.BeginConcurrent()
	c.SweepRange(1, 0, 4096)
	c.AbortConcurrent()
	if r.dirty.Load() != nil {
		t.Fatal("dirty tracker still installed after abort")
	}

	res, err := Recover(log, cloneStore(t, data), RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpointed || res.ReplayFrom != 0 || res.Records != 1 {
		t.Fatalf("res = %+v", res)
	}
}

// TestBeginConcurrentExclusive: the in-progress guard lives in the
// RVM, not the checkpointer instance. A second fuzzy sweep on the same
// instance (e.g. a racing coordinator constructing its own
// checkpointer) must fail to start — if it replaced the first sweep's
// dirty tracker, either sweep finishing would silently disable the
// other's tracking and its resweep would miss pages dirtied by racing
// commits.
func TestBeginConcurrentExclusive(t *testing.T) {
	r, _ := Open(Options{Node: 1, Log: wal.NewMemDevice(), Data: NewMemStore()})
	if _, err := r.Map(1, 4096); err != nil {
		t.Fatal(err)
	}
	a := r.NewIncrementalCheckpointer(4096)
	b := r.NewIncrementalCheckpointer(4096)
	if err := a.BeginConcurrent(); err != nil {
		t.Fatal(err)
	}
	if err := b.BeginConcurrent(); err == nil {
		t.Fatal("second concurrent sweep started while the first was active")
	}
	if r.dirty.Load() == nil {
		t.Fatal("rejected begin clobbered the first sweep's dirty tracker")
	}
	// The loser's abort must not disturb the winner either.
	b.AbortConcurrent()
	if r.dirty.Load() == nil {
		t.Fatal("loser's abort removed the winner's dirty tracker")
	}
	a.AbortConcurrent()
	if r.dirty.Load() != nil {
		t.Fatal("dirty tracker leaked after the winner aborted")
	}
	if err := b.BeginConcurrent(); err != nil {
		t.Fatalf("sweep after the first one ended: %v", err)
	}
	b.AbortConcurrent()
}

// TestTrimLogHeadLogicalRebase: logical cuts are stable across head
// trims. A cut recorded before another checkpoint trims the log must,
// when applied later, remove only the bytes still below it — never
// records appended after it was recorded.
func TestTrimLogHeadLogicalRebase(t *testing.T) {
	log := wal.NewMemDevice()
	r, _ := Open(Options{Node: 1, Log: log, Data: NewMemStore()})
	reg, _ := r.Map(1, 4096)

	commit := func(off uint64, s string) {
		tx := r.Begin(NoRestore)
		if err := tx.SetRange(reg, off, uint32(len(s))); err != nil {
			t.Fatal(err)
		}
		copy(reg.Bytes()[off:], s)
		if _, err := tx.Commit(Flush); err != nil {
			t.Fatal(err)
		}
	}

	commit(0, "aaaa")
	commit(8, "bbbb")
	cut, err := r.LogCut()
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := log.Size(); cut != sz {
		t.Fatalf("fresh instance: logical cut %d != physical size %d", cut, sz)
	}

	// Another coordinator trims everything recorded so far, then a new
	// commit lands.
	if err := r.TrimLogHead(cut); err != nil {
		t.Fatal(err)
	}
	commit(16, "cccc")

	// Applying the stale cut now must be a no-op: everything below it
	// is already gone, and raw-offset trimming would delete the new
	// record instead.
	if err := r.TrimLogHeadLogical(cut); err != nil {
		t.Fatal(err)
	}
	txs, err := wal.ReadDevice(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 1 {
		t.Fatalf("%d records after stale-cut trim, want the post-trim commit only", len(txs))
	}

	// With a nonzero trimmed base, a cut between two records still
	// removes exactly the records below it.
	cutMid, _ := r.LogCut()
	commit(24, "dddd")
	if err := r.TrimLogHeadLogical(cutMid); err != nil {
		t.Fatal(err)
	}
	txs, _ = wal.ReadDevice(log)
	if len(txs) != 1 {
		t.Fatalf("%d records after mid-log logical trim, want 1", len(txs))
	}

	// A cut at the logical end empties the log; replaying any stale cut
	// afterwards stays a no-op.
	cutEnd, _ := r.LogCut()
	if cutEnd <= cutMid {
		t.Fatalf("logical offsets not monotonic: %d <= %d", cutEnd, cutMid)
	}
	if err := r.TrimLogHeadLogical(cutEnd); err != nil {
		t.Fatal(err)
	}
	if sz, _ := log.Size(); sz != 0 {
		t.Fatalf("log has %d bytes after trimming to its logical end", sz)
	}
	if err := r.TrimLogHeadLogical(cut); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointFlushClosed: Checkpoint and Flush on a closed instance
// fail with ErrClosed (they used to run against released state).
func TestCheckpointFlushClosed(t *testing.T) {
	r, _ := Open(Options{Node: 1, Log: wal.NewMemDevice(), Data: NewMemStore()})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close: %v, want ErrClosed", err)
	}
	if err := r.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close: %v, want ErrClosed", err)
	}
}

// failSizeDevice wraps a device with a Size that always errors.
type failSizeDevice struct {
	wal.Device
}

func (d failSizeDevice) Size() (int64, error) {
	return 0, errors.New("injected size failure")
}

// TestNeedsCheckpointSizeError: a device error must not silently read
// as "no checkpoint pressure" — it is counted and treated as needing a
// checkpoint.
func TestNeedsCheckpointSizeError(t *testing.T) {
	r, _ := Open(Options{
		Node: 1,
		Log:  failSizeDevice{wal.NewMemDevice()},
		Data: NewMemStore(),

		LogHighWater: 1 << 20,
	})
	if !r.NeedsCheckpoint() {
		t.Fatal("unreadable log size reported as no checkpoint pressure")
	}
	if got := r.Stats().Counter(metrics.CtrCkptSizeErrors); got != 1 {
		t.Fatalf("checkpoint_size_errors = %d", got)
	}
	// Without a high-water mark the size is never consulted.
	r2, _ := Open(Options{Node: 2, Log: failSizeDevice{wal.NewMemDevice()}})
	if r2.NeedsCheckpoint() {
		t.Fatal("no high-water mark but NeedsCheckpoint true")
	}
}
