package rvm

import (
	"errors"
	"fmt"
	"io"
)

// Incremental, page-at-a-time checkpointing: the improved log-trimming
// scheme the paper points to in §3.5 ("nodes checkpoint a page at a
// time by writing the current version of a page to the checkpoint
// file. Log records for updates made to a page before it was
// checkpointed can be discarded"), attractive in the distributed
// setting because it does not require the per-node logs to be merged.
//
// The sweep protocol: note the log length, then copy every page of
// every mapped region to the permanent store, one page per Step. When
// the sweep completes, every update that was logged before the sweep
// began is reflected in some checkpointed page (pages are copied after
// those updates were applied), so the log prefix up to the noted
// length is redundant and is trimmed in place.
//
// Steps must be interleaved between transactions, not inside them: a
// page copied mid-transaction would capture uncommitted bytes. The
// coherency layer's lock boundaries are the natural interleaving
// points (cf. Janssens & Fuchs checkpointing at lock releases, §5).

// PageStore is an optional DataStore extension for writing single
// pages of a region image in place.
type PageStore interface {
	StorePage(id uint32, off int64, data []byte) error
}

// IncrementalCheckpointer sweeps mapped regions page by page.
type IncrementalCheckpointer struct {
	r        *RVM
	pageSize int

	regions    []RegionID
	regionIdx  int
	pageIdx    int
	sweepStart int64
	active     bool
	pagesDone  int
}

// NewIncrementalCheckpointer creates a checkpointer with the given
// page granularity (0 means 8192).
func (r *RVM) NewIncrementalCheckpointer(pageSize int) *IncrementalCheckpointer {
	if pageSize <= 0 {
		pageSize = 8192
	}
	return &IncrementalCheckpointer{r: r, pageSize: pageSize}
}

// PagesDone reports pages written during the current (or last) sweep.
func (c *IncrementalCheckpointer) PagesDone() int { return c.pagesDone }

// beginSweep snapshots the mapped region set and the log length.
func (c *IncrementalCheckpointer) beginSweep() error {
	c.r.mu.Lock()
	c.regions = c.regions[:0]
	for id := range c.r.regions {
		c.regions = append(c.regions, id)
	}
	c.r.mu.Unlock()
	for i := 1; i < len(c.regions); i++ { // insertion sort: tiny sets
		for j := i; j > 0 && c.regions[j] < c.regions[j-1]; j-- {
			c.regions[j], c.regions[j-1] = c.regions[j-1], c.regions[j]
		}
	}
	sz, err := c.r.log.Size()
	if err != nil {
		return err
	}
	c.sweepStart = sz
	c.regionIdx, c.pageIdx = 0, 0
	c.pagesDone = 0
	c.active = true
	return nil
}

// Step checkpoints the next page. It returns done=true when a sweep
// has just completed (and the log head has been trimmed). Calling Step
// again starts a new sweep.
func (c *IncrementalCheckpointer) Step() (done bool, err error) {
	if !c.active {
		if err := c.beginSweep(); err != nil {
			return false, err
		}
		if len(c.regions) == 0 {
			c.active = false
			return true, nil
		}
	}
	reg := c.r.Region(c.regions[c.regionIdx])
	if reg == nil {
		// Region unmapped mid-sweep: skip it.
		c.regionIdx++
		return c.finishIfDone()
	}
	start := c.pageIdx * c.pageSize
	if start >= reg.Size() {
		c.regionIdx++
		c.pageIdx = 0
		return c.finishIfDone()
	}
	end := start + c.pageSize
	if end > reg.Size() {
		end = reg.Size()
	}
	if err := c.storePage(uint32(reg.ID()), int64(start), reg.Bytes()[start:end]); err != nil {
		return false, fmt.Errorf("rvm: checkpoint page %d of region %d: %w", c.pageIdx, reg.ID(), err)
	}
	c.pagesDone++
	c.pageIdx++
	if c.pageIdx*c.pageSize >= reg.Size() {
		c.regionIdx++
		c.pageIdx = 0
	}
	return c.finishIfDone()
}

func (c *IncrementalCheckpointer) finishIfDone() (bool, error) {
	if c.regionIdx < len(c.regions) {
		return false, nil
	}
	c.active = false
	if err := c.r.data.Sync(); err != nil {
		return true, err
	}
	if err := c.r.TrimLogHead(c.sweepStart); err != nil {
		return true, fmt.Errorf("rvm: trim log head: %w", err)
	}
	return true, nil
}

// Run performs a complete sweep.
func (c *IncrementalCheckpointer) Run() error {
	for {
		done, err := c.Step()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// storePage writes one page, using the store's PageStore fast path
// when available and read-modify-write otherwise.
func (c *IncrementalCheckpointer) storePage(id uint32, off int64, data []byte) error {
	if ps, ok := c.r.data.(PageStore); ok {
		return ps.StorePage(id, off, data)
	}
	img, err := c.r.data.LoadRegion(id)
	if err != nil && !errors.Is(err, ErrNoRegion) {
		return err
	}
	need := int(off) + len(data)
	if len(img) < need {
		grown := make([]byte, need)
		copy(grown, img)
		img = grown
	}
	copy(img[off:], data)
	return c.r.data.StoreRegion(id, img)
}

// TrimLogHead discards the log prefix [0, upTo): the records there are
// reflected in checkpointed pages. Devices cannot drop prefixes, so
// the tail is re-written in place; the operation serializes against
// commits via the instance mutex.
func (r *RVM) TrimLogHead(upTo int64) error {
	if upTo <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sz, err := r.log.Size()
	if err != nil {
		return err
	}
	if upTo > sz {
		return fmt.Errorf("rvm: trim head %d beyond log end %d", upTo, sz)
	}
	rc, err := r.log.Open(upTo)
	if err != nil {
		return err
	}
	tail, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		return err
	}
	if err := r.log.Reset(); err != nil {
		return err
	}
	if len(tail) > 0 {
		if _, err := r.log.Append(tail); err != nil {
			return err
		}
	}
	return r.log.Sync()
}
