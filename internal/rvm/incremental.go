package rvm

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"lbc/internal/metrics"
	"lbc/internal/wal"
)

// Incremental, page-at-a-time checkpointing: the improved log-trimming
// scheme the paper points to in §3.5 ("nodes checkpoint a page at a
// time by writing the current version of a page to the checkpoint
// file. Log records for updates made to a page before it was
// checkpointed can be discarded"), attractive in the distributed
// setting because it does not require the per-node logs to be merged.
//
// The sweep protocol: note the log length, then copy every page of
// every mapped region to the permanent store, one page per Step. When
// the sweep completes, every update that was logged before the sweep
// began is reflected in some checkpointed page (pages are copied after
// those updates were applied), so the log prefix up to the noted
// length is redundant and is trimmed in place.
//
// Steps must be interleaved between transactions, not inside them: a
// page copied mid-transaction would capture uncommitted bytes. The
// coherency layer's lock boundaries are the natural interleaving
// points (cf. Janssens & Fuchs checkpointing at lock releases, §5).

// PageStore is an optional DataStore extension for writing single
// pages of a region image in place.
type PageStore interface {
	StorePage(id uint32, off int64, data []byte) error
}

// IncrementalCheckpointer sweeps mapped regions page by page.
type IncrementalCheckpointer struct {
	r        *RVM
	pageSize int

	regions    []RegionID
	regionIdx  int
	pageIdx    int
	sweepStart int64
	active     bool
	pagesDone  int

	concurrent bool          // a fuzzy sweep (BeginConcurrent) is in progress
	tracker    *dirtyTracker // this sweep's tracker, installed in r.dirty
}

// pageKey identifies one page of one region in the dirty tracker.
type pageKey struct {
	region uint32
	page   uint64
}

// dirtyTracker records pages written while a fuzzy sweep runs, so the
// final quiesced step can re-copy exactly the pages whose swept copies
// may have gone stale. It is installed in RVM.dirty for the duration of
// a BeginConcurrent..FinishQuiesced window.
type dirtyTracker struct {
	mu       sync.Mutex
	pageSize uint64
	pages    map[pageKey]struct{}
}

func (t *dirtyTracker) markRanges(ranges []wal.RangeRec) {
	if len(ranges) == 0 {
		return
	}
	t.mu.Lock()
	for _, rec := range ranges {
		if len(rec.Data) == 0 {
			continue
		}
		first := rec.Off / t.pageSize
		last := (rec.End() - 1) / t.pageSize
		for p := first; p <= last; p++ {
			t.pages[pageKey{region: rec.Region, page: p}] = struct{}{}
		}
	}
	t.mu.Unlock()
}

func (t *dirtyTracker) markRange(region uint32, off, end uint64) {
	if end <= off {
		return
	}
	t.mu.Lock()
	first := off / t.pageSize
	last := (end - 1) / t.pageSize
	for p := first; p <= last; p++ {
		t.pages[pageKey{region: region, page: p}] = struct{}{}
	}
	t.mu.Unlock()
}

// take returns and clears the dirtied page set.
func (t *dirtyTracker) take() []pageKey {
	t.mu.Lock()
	keys := make([]pageKey, 0, len(t.pages))
	for k := range t.pages {
		keys = append(keys, k)
	}
	t.pages = map[pageKey]struct{}{}
	t.mu.Unlock()
	return keys
}

// markDirty records the ranges in the active dirty tracker, if a fuzzy
// sweep is running. Called from commit (after gather), remote applies
// and restore-mode aborts — every path that writes a mapped image.
func (r *RVM) markDirty(ranges []wal.RangeRec) {
	if t := r.dirty.Load(); t != nil {
		t.markRanges(ranges)
	}
}

// markDirtyRange is the single-range variant used by Abort's undo path.
func (r *RVM) markDirtyRange(region uint32, off, end uint64) {
	if t := r.dirty.Load(); t != nil {
		t.markRange(region, off, end)
	}
}

// NewIncrementalCheckpointer creates a checkpointer with the given
// page granularity (0 means 8192).
func (r *RVM) NewIncrementalCheckpointer(pageSize int) *IncrementalCheckpointer {
	if pageSize <= 0 {
		pageSize = 8192
	}
	return &IncrementalCheckpointer{r: r, pageSize: pageSize}
}

// PagesDone reports pages written during the current (or last) sweep.
func (c *IncrementalCheckpointer) PagesDone() int { return c.pagesDone }

// beginSweep snapshots the mapped region set and the log length.
func (c *IncrementalCheckpointer) beginSweep() error {
	c.r.mu.Lock()
	c.regions = c.regions[:0]
	for id := range c.r.regions {
		c.regions = append(c.regions, id)
	}
	c.r.mu.Unlock()
	for i := 1; i < len(c.regions); i++ { // insertion sort: tiny sets
		for j := i; j > 0 && c.regions[j] < c.regions[j-1]; j-- {
			c.regions[j], c.regions[j-1] = c.regions[j-1], c.regions[j]
		}
	}
	sz, err := c.r.log.Size()
	if err != nil {
		return err
	}
	c.sweepStart = sz
	c.regionIdx, c.pageIdx = 0, 0
	c.pagesDone = 0
	c.active = true
	return nil
}

// Step checkpoints the next page. It returns done=true when a sweep
// has just completed (and the log head has been trimmed). Calling Step
// again starts a new sweep.
func (c *IncrementalCheckpointer) Step() (done bool, err error) {
	if !c.active {
		if err := c.beginSweep(); err != nil {
			return false, err
		}
		if len(c.regions) == 0 {
			c.active = false
			return true, nil
		}
	}
	reg := c.r.Region(c.regions[c.regionIdx])
	if reg == nil {
		// Region unmapped mid-sweep: skip it.
		c.regionIdx++
		return c.finishIfDone()
	}
	start := c.pageIdx * c.pageSize
	if start >= reg.Size() {
		c.regionIdx++
		c.pageIdx = 0
		return c.finishIfDone()
	}
	end := start + c.pageSize
	if end > reg.Size() {
		end = reg.Size()
	}
	if err := c.storePage(uint32(reg.ID()), int64(start), reg.Bytes()[start:end]); err != nil {
		return false, fmt.Errorf("rvm: checkpoint page %d of region %d: %w", c.pageIdx, reg.ID(), err)
	}
	c.pagesDone++
	c.pageIdx++
	if c.pageIdx*c.pageSize >= reg.Size() {
		c.regionIdx++
		c.pageIdx = 0
	}
	return c.finishIfDone()
}

func (c *IncrementalCheckpointer) finishIfDone() (bool, error) {
	if c.regionIdx < len(c.regions) {
		return false, nil
	}
	c.active = false
	if err := c.r.data.Sync(); err != nil {
		return true, err
	}
	if err := c.r.TrimLogHead(c.sweepStart); err != nil {
		return true, fmt.Errorf("rvm: trim log head: %w", err)
	}
	return true, nil
}

// Run performs a complete sweep.
func (c *IncrementalCheckpointer) Run() error {
	for {
		done, err := c.Step()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// storePage writes one page, using the store's PageStore fast path
// when available and read-modify-write otherwise.
func (c *IncrementalCheckpointer) storePage(id uint32, off int64, data []byte) error {
	if ps, ok := c.r.data.(PageStore); ok {
		return ps.StorePage(id, off, data)
	}
	img, err := c.r.data.LoadRegion(id)
	if err != nil && !errors.Is(err, ErrNoRegion) {
		return err
	}
	need := int(off) + len(data)
	if len(img) < need {
		grown := make([]byte, need)
		copy(grown, img)
		img = grown
	}
	copy(img[off:], data)
	return c.r.data.StoreRegion(id, img)
}

// BeginConcurrent starts a fuzzy sweep: the log length is noted and a
// dirty-page tracker is installed, so pages written by commits, remote
// applies and aborts racing the sweep are recorded for re-copy. The
// caller then drives SweepRange/SweepRegions (holding the covering
// segment lock for each range, which keeps uncommitted bytes out of
// the copies), and seals the checkpoint with ResweepDirty +
// FinishQuiesced under a full quiesce.
func (c *IncrementalCheckpointer) BeginConcurrent() error {
	if c.concurrent {
		return errors.New("rvm: concurrent sweep already in progress")
	}
	t := &dirtyTracker{
		pageSize: uint64(c.pageSize),
		pages:    map[pageKey]struct{}{},
	}
	// The in-progress guard lives in the RVM, not this instance: a
	// second checkpointer on the same RVM (e.g. a racing coordinator)
	// must fail to start rather than replace the first sweep's tracker —
	// either sweep finishing would silently disable the other's dirty
	// tracking and its resweep would miss racing commits.
	if !c.r.dirty.CompareAndSwap(nil, t) {
		return errors.New("rvm: another fuzzy sweep is already in progress on this instance")
	}
	sz, err := c.r.log.Size()
	if err != nil {
		c.r.dirty.CompareAndSwap(t, nil)
		return err
	}
	c.sweepStart = sz
	c.pagesDone = 0
	c.tracker = t
	c.concurrent = true
	return nil
}

// SweepRange copies the bytes [off, off+n) of region id to the
// permanent store in page-sized chunks. The caller must hold the
// segment lock covering the range: the lock excludes concurrent
// writers from these bytes (a copy never captures uncommitted data)
// and the acquire interlock guarantees all committed peer updates to
// the range have been applied locally. Only the exact range is read,
// so writers under *other* locks proceed concurrently without a data
// race.
func (c *IncrementalCheckpointer) SweepRange(id RegionID, off, n uint64) error {
	if !c.concurrent {
		return errors.New("rvm: SweepRange without BeginConcurrent")
	}
	if n == 0 {
		return nil
	}
	reg := c.r.Region(id)
	if reg == nil {
		return nil // unmapped: nothing cached locally to checkpoint
	}
	end := off + n
	if end > uint64(reg.Size()) {
		end = uint64(reg.Size())
	}
	ps := uint64(c.pageSize)
	for at := off; at < end; {
		// Chunk boundaries align to pages so the store sees page-shaped
		// writes, clipped to the locked range at both ends.
		stop := (at/ps + 1) * ps
		if stop > end {
			stop = end
		}
		if err := c.storePage(uint32(id), int64(at), reg.Bytes()[at:stop]); err != nil {
			return fmt.Errorf("rvm: sweep region %d [%d,%d): %w", id, at, stop, err)
		}
		c.pagesDone++
		c.r.stats.Add(metrics.CtrCkptSweepPages, 1)
		at = stop
	}
	return nil
}

// ResweepDirty re-copies every page dirtied since BeginConcurrent.
// Must run under a full quiesce (all segment locks held): the racing
// writers are excluded, so whole-page copies are safe, and nothing can
// dirty a page after it is re-copied. Returns the number of pages
// re-swept.
func (c *IncrementalCheckpointer) ResweepDirty() (int, error) {
	if !c.concurrent {
		return 0, errors.New("rvm: ResweepDirty without BeginConcurrent")
	}
	t := c.r.dirty.Load()
	if t == nil {
		return 0, nil
	}
	keys := t.take()
	ps := uint64(c.pageSize)
	var done int
	for _, k := range keys {
		reg := c.r.Region(RegionID(k.region))
		if reg == nil {
			continue
		}
		start := k.page * ps
		if start >= uint64(reg.Size()) {
			continue
		}
		end := start + ps
		if end > uint64(reg.Size()) {
			end = uint64(reg.Size())
		}
		if err := c.storePage(k.region, int64(start), reg.Bytes()[start:end]); err != nil {
			return done, fmt.Errorf("rvm: resweep page %d of region %d: %w", k.page, k.region, err)
		}
		done++
		c.pagesDone++
		c.r.stats.Add(metrics.CtrCkptDirtyPages, 1)
	}
	return done, nil
}

// FinishQuiesced seals the fuzzy sweep: the swept pages are forced to
// the permanent store, a checkpoint marker carrying the cut-point LSN
// is appended and synced, and dirty tracking stops. Must run under the
// same quiesce as ResweepDirty, with no commits in flight. It returns
// the marker's physical offset (the recovery cut) and the *logical*
// offset just past it — the head-trim point, expressed as a LogCut
// value so applying it via TrimLogHeadLogical composes with trims by
// concurrent coordinators.
func (c *IncrementalCheckpointer) FinishQuiesced() (markerAt, end int64, err error) {
	if !c.concurrent {
		return 0, 0, errors.New("rvm: FinishQuiesced without BeginConcurrent")
	}
	if err := c.r.data.Sync(); err != nil {
		return 0, 0, fmt.Errorf("rvm: checkpoint sync: %w", err)
	}
	markerAt, end, err = c.r.AppendCheckpointMarker()
	if err != nil {
		return 0, 0, err
	}
	// Uninstall only our own tracker (CAS, not Store): never clobber a
	// tracker some other sweep installed.
	c.r.dirty.CompareAndSwap(c.tracker, nil)
	c.tracker = nil
	c.concurrent = false
	return markerAt, end, nil
}

// AbortConcurrent abandons a fuzzy sweep: dirty tracking stops and no
// marker is written. Pages already copied are harmless (they reflect
// committed bytes); the log is not trimmed. Safe to call after
// FinishQuiesced (no-op).
func (c *IncrementalCheckpointer) AbortConcurrent() {
	if !c.concurrent {
		return
	}
	c.r.dirty.CompareAndSwap(c.tracker, nil)
	c.tracker = nil
	c.concurrent = false
}

// TrimLogHead discards the log prefix [0, upTo), where upTo is a
// physical offset into the current log: the records there are
// reflected in checkpointed pages. Devices implementing wal.HeadTrimmer
// (file and memory logs) drop the prefix crash-atomically; otherwise
// the tail is re-written in place under the exclusive log latch, so
// commit appends racing the rewrite (they run outside the instance
// mutex) cannot be dropped. Callers holding a cut recorded in the past
// should prefer TrimLogHeadLogical, which stays correct across
// intervening trims.
func (r *RVM) TrimLogHead(upTo int64) error {
	if upTo <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trimLogHeadLocked(upTo)
}

// TrimLogHeadLogical trims the log head to the given logical cut (a
// LogCut or checkpoint-marker end value), rebasing it against bytes
// already trimmed. Concurrent checkpoints may each trim the same log:
// whichever applies later removes only the bytes still below its own
// cut, so a cut recorded before another coordinator's trim can never
// delete records appended after it was recorded. A cut at or below the
// current head is a no-op.
func (r *RVM) TrimLogHeadLogical(cut int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	phys := cut - r.trimmed
	if phys <= 0 {
		return nil // an earlier trim already covered this cut
	}
	return r.trimLogHeadLocked(phys)
}

// trimLogHeadLocked discards [0, upTo) with r.mu held, advancing the
// cumulative trimmed counter that anchors logical log offsets.
func (r *RVM) trimLogHeadLocked(upTo int64) error {
	if ht, ok := r.log.(wal.HeadTrimmer); ok {
		if err := ht.TrimHead(upTo); err != nil {
			return err
		}
		r.trimmed += upTo
		r.stats.Add(metrics.CtrLogTrims, 1)
		return nil
	}
	// Generic rewrite: freeze the log across read-tail/Reset/re-append.
	// Without the exclusive latch a commit landing between the tail read
	// and the Reset would be silently erased.
	r.logMu.Lock()
	defer r.logMu.Unlock()
	sz, err := r.log.Size()
	if err != nil {
		return err
	}
	if upTo > sz {
		return fmt.Errorf("rvm: trim head %d beyond log end %d", upTo, sz)
	}
	rc, err := r.log.Open(upTo)
	if err != nil {
		return err
	}
	tail, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		return err
	}
	if err := r.log.Reset(); err != nil {
		return err
	}
	if len(tail) > 0 {
		if _, err := r.log.Append(tail); err != nil {
			return err
		}
	}
	if err := r.log.Sync(); err != nil {
		return err
	}
	r.trimmed += upTo
	r.stats.Add(metrics.CtrLogTrims, 1)
	return nil
}
