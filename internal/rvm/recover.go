package rvm

import (
	"errors"
	"fmt"

	"lbc/internal/wal"
)

// RecoverOptions controls the recovery procedure.
type RecoverOptions struct {
	// TrimLog resets the log after its records have been applied to the
	// permanent images (they are then redundant).
	TrimLog bool
	// TruncateTorn removes a torn tail (an interrupted append) from the
	// log. Recovery always *ignores* a torn tail; this additionally
	// repairs the device. Implied by TrimLog.
	TruncateTorn bool
}

// RecoverResult summarizes what recovery did.
type RecoverResult struct {
	Records      int   // committed records replayed
	BytesApplied int   // new-value bytes written into images
	Torn         bool  // log ended in a torn/corrupt record
	TornAt       int64 // offset of the valid prefix end when Torn
}

// Recover replays every committed record in the log into the permanent
// region images of the data store (the standard write-ahead recovery
// procedure: the log is the truth, the database file lags it). Records
// are applied in log order; in the distributed configuration the log
// must first be merged from the per-node logs (internal/merge, §3.4).
func Recover(log wal.Device, data DataStore, opts RecoverOptions) (*RecoverResult, error) {
	rc, err := log.Open(0)
	if err != nil {
		return nil, fmt.Errorf("rvm: open log for recovery: %w", err)
	}
	txs, torn, tornAt, err := wal.ReadAll(rc, 0)
	rc.Close()
	if err != nil {
		return nil, err
	}
	res := &RecoverResult{Torn: torn, TornAt: tornAt}

	images := map[uint32][]byte{}
	dirty := map[uint32]bool{}
	load := func(id uint32, atLeast uint64) ([]byte, error) {
		img, ok := images[id]
		if !ok {
			var err error
			img, err = data.LoadRegion(id)
			if err != nil && !errors.Is(err, ErrNoRegion) {
				return nil, err
			}
		}
		if uint64(len(img)) < atLeast {
			grown := make([]byte, atLeast)
			copy(grown, img)
			img = grown
		}
		images[id] = img
		return img, nil
	}

	for _, tx := range txs {
		if tx.Checkpoint {
			continue
		}
		for _, rec := range tx.Ranges {
			img, err := load(rec.Region, rec.End())
			if err != nil {
				return nil, fmt.Errorf("rvm: recovery load region %d: %w", rec.Region, err)
			}
			copy(img[rec.Off:], rec.Data)
			dirty[rec.Region] = true
			res.BytesApplied += len(rec.Data)
		}
		res.Records++
	}

	for id := range dirty {
		if err := data.StoreRegion(id, images[id]); err != nil {
			return nil, fmt.Errorf("rvm: recovery store region %d: %w", id, err)
		}
	}
	if len(dirty) > 0 {
		if err := data.Sync(); err != nil {
			return nil, err
		}
	}

	switch {
	case opts.TrimLog:
		if err := log.Reset(); err != nil {
			return nil, fmt.Errorf("rvm: trim log: %w", err)
		}
	case opts.TruncateTorn && torn:
		if err := log.Truncate(tornAt); err != nil {
			return nil, fmt.Errorf("rvm: truncate torn tail: %w", err)
		}
	}
	return res, nil
}
