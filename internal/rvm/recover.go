package rvm

import (
	"errors"
	"fmt"

	"lbc/internal/parapply"
	"lbc/internal/wal"
)

// RecoverOptions controls the recovery procedure.
type RecoverOptions struct {
	// TrimLog resets the log after its records have been applied to the
	// permanent images (they are then redundant).
	TrimLog bool
	// TruncateTorn removes a torn tail (an interrupted append) from the
	// log. Recovery always *ignores* a torn tail; this additionally
	// repairs the device. Implied by TrimLog.
	TruncateTorn bool
	// Workers sets the parallelism of the replay. Records on disjoint
	// lock chains install concurrently; each chain stays sequential
	// (internal/parapply). 0 picks a default; 1 degenerates to the
	// serial log-order replay.
	Workers int
}

// RecoverResult summarizes what recovery did.
type RecoverResult struct {
	Records      int   // committed records replayed
	BytesApplied int   // new-value bytes written into images
	Torn         bool  // log ended in a torn/corrupt record
	TornAt       int64 // offset of the valid prefix end when Torn
}

// Recover replays every committed record in the log into the permanent
// region images of the data store (the standard write-ahead recovery
// procedure: the log is the truth, the database file lags it). The
// replay runs through the dependency scheduler (internal/parapply):
// records on disjoint lock chains install concurrently while each
// chain keeps its §3.4 sequence order, which is equivalent to the
// serial log-order replay because only same-chain records can overlap
// in the address space. In the distributed configuration the log must
// first be merged from the per-node logs (internal/merge, §3.4).
func Recover(log wal.Device, data DataStore, opts RecoverOptions) (*RecoverResult, error) {
	rc, err := log.Open(0)
	if err != nil {
		return nil, fmt.Errorf("rvm: open log for recovery: %w", err)
	}
	txs, torn, tornAt, err := wal.ReadAll(rc, 0)
	rc.Close()
	if err != nil {
		return nil, err
	}
	res := &RecoverResult{Torn: torn, TornAt: tornAt}

	// Pre-size every image serially so the parallel install phase never
	// reallocates a region (workers copy into stable backing arrays).
	live := make([]*wal.TxRecord, 0, len(txs))
	need := map[uint32]uint64{} // region -> required image size
	for _, tx := range txs {
		if tx.Checkpoint {
			continue
		}
		live = append(live, tx)
		for _, rec := range tx.Ranges {
			if rec.End() > need[rec.Region] {
				need[rec.Region] = rec.End()
			}
		}
	}

	images := map[uint32][]byte{}
	dirty := map[uint32]bool{}
	for id, atLeast := range need {
		img, err := data.LoadRegion(id)
		if err != nil && !errors.Is(err, ErrNoRegion) {
			return nil, fmt.Errorf("rvm: recovery load region %d: %w", id, err)
		}
		if uint64(len(img)) < atLeast {
			grown := make([]byte, atLeast)
			copy(grown, img)
			img = grown
		}
		images[id] = img
		dirty[id] = true
	}

	if _, err := parapply.Replay(live, opts.Workers, func(_ int, tx *wal.TxRecord) error {
		for _, rec := range tx.Ranges {
			copy(images[rec.Region][rec.Off:rec.End()], rec.Data)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	// Duplicate identities the scheduler suppressed carried identical
	// bytes, so count every live record the way serial replay did.
	res.Records = len(live)
	for _, tx := range live {
		for _, rec := range tx.Ranges {
			res.BytesApplied += len(rec.Data)
		}
	}

	for id := range dirty {
		if err := data.StoreRegion(id, images[id]); err != nil {
			return nil, fmt.Errorf("rvm: recovery store region %d: %w", id, err)
		}
	}
	if len(dirty) > 0 {
		if err := data.Sync(); err != nil {
			return nil, err
		}
	}

	switch {
	case opts.TrimLog:
		if err := log.Reset(); err != nil {
			return nil, fmt.Errorf("rvm: trim log: %w", err)
		}
	case opts.TruncateTorn && torn:
		if err := log.Truncate(tornAt); err != nil {
			return nil, fmt.Errorf("rvm: truncate torn tail: %w", err)
		}
	}
	return res, nil
}
