package rvm

import (
	"errors"
	"fmt"
	"io"

	"lbc/internal/parapply"
	"lbc/internal/wal"
)

// RecoverOptions controls the recovery procedure.
type RecoverOptions struct {
	// TrimLog resets the log after its records have been applied to the
	// permanent images (they are then redundant).
	TrimLog bool
	// TruncateTorn removes a torn tail (an interrupted append) from the
	// log. Recovery always *ignores* a torn tail; this additionally
	// repairs the device. Implied by TrimLog.
	TruncateTorn bool
	// Workers sets the parallelism of the replay. Records on disjoint
	// lock chains install concurrently; each chain stays sequential
	// (internal/parapply). 0 picks a default; 1 degenerates to the
	// serial log-order replay.
	Workers int
	// Quarantine salvages a log with *interior* corruption: damaged
	// ranges are skipped (reported in RecoverResult.Quarantined) and
	// every sound record on either side is replayed. The records lost
	// in the holes must then be re-fetched from peers (coherency
	// CatchUp) before the node rejoins. Without Quarantine interior
	// corruption fails recovery loudly — it is real data loss, not a
	// torn tail.
	Quarantine bool
}

// RecoverResult summarizes what recovery did.
type RecoverResult struct {
	Records      int   // committed records replayed
	BytesApplied int   // new-value bytes written into images
	Torn         bool  // log ended in a torn/corrupt record
	TornAt       int64 // offset of the valid prefix end when Torn

	// Checkpointed reports that a durable checkpoint marker was found;
	// replay then started at ReplayFrom (just past the last marker)
	// instead of offset 0, and SkippedRecords counts the committed
	// records below the cut that the marker made redundant.
	Checkpointed   bool
	ReplayFrom     int64
	SkippedRecords int
	// CheckpointLSN is the cut point recorded inside the marker (the
	// log offset at which it was appended). After a head trim it no
	// longer equals the marker's physical offset; recovery positions by
	// the physical offset and reports the LSN for observability.
	CheckpointLSN uint64
	// Quarantined lists the interior-corrupt byte ranges skipped when
	// RecoverOptions.Quarantine was set. Non-empty means committed
	// records may be missing locally and must be re-fetched from peers.
	Quarantined []wal.CorruptRange
}

// Recover replays committed records in the log into the permanent
// region images of the data store (the standard write-ahead recovery
// procedure: the log is the truth, the database file lags it).
//
// The log is streamed twice through wal.Scanner — nothing is buffered
// whole. Pass one locates the last durable checkpoint marker and sizes
// the images the replay will touch; the marker's invariant (§3.5) is
// that every record below it is already reflected in the permanent
// images, so pass two re-opens the device just past the marker and
// replays only the tail. With no marker the replay starts at offset 0,
// as before. A torn or corrupt marker never decodes, so a crash while
// the marker was being appended safely falls back to the previous
// start point — replaying records below an incomplete checkpoint is
// redundant but harmless (REDO is idempotent).
//
// The replay runs through the dependency scheduler (internal/parapply):
// records on disjoint lock chains install concurrently while each
// chain keeps its §3.4 sequence order, which is equivalent to the
// serial log-order replay because only same-chain records can overlap
// in the address space. In the distributed configuration the log must
// first be merged from the per-node logs (internal/merge, §3.4).
func Recover(log wal.Device, data DataStore, opts RecoverOptions) (*RecoverResult, error) {
	// Pass one: stream the whole log to find the last checkpoint marker
	// and pre-size every image the tail replay touches, so the parallel
	// install phase never reallocates a region (workers copy into
	// stable backing arrays).
	rc, err := log.Open(0)
	if err != nil {
		return nil, fmt.Errorf("rvm: open log for recovery: %w", err)
	}
	sc := wal.NewScanner(rc, 0)
	if opts.Quarantine {
		sc.Salvage()
	}
	res := &RecoverResult{}
	need := map[uint32]uint64{} // region -> required image size
	var tailRecords, skipped int
	for {
		tx, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			rc.Close()
			return nil, err
		}
		if tx.Checkpoint {
			// Everything scanned so far is reflected in the images the
			// marker vouches for: restart the tail accounting here.
			res.Checkpointed = true
			res.ReplayFrom = sc.Pos()
			res.CheckpointLSN = tx.CheckpointLSN
			skipped += tailRecords
			tailRecords = 0
			need = map[uint32]uint64{}
			continue
		}
		tailRecords++
		for _, rec := range tx.Ranges {
			if rec.End() > need[rec.Region] {
				need[rec.Region] = rec.End()
			}
		}
	}
	res.Torn, res.TornAt = sc.Torn()
	res.SkippedRecords = skipped
	res.Quarantined = sc.Corrupt()
	rc.Close()

	images := map[uint32][]byte{}
	dirty := map[uint32]bool{}
	for id, atLeast := range need {
		img, err := data.LoadRegion(id)
		if err != nil && !errors.Is(err, ErrNoRegion) {
			return nil, fmt.Errorf("rvm: recovery load region %d: %w", id, err)
		}
		if uint64(len(img)) < atLeast {
			grown := make([]byte, atLeast)
			copy(grown, img)
			img = grown
		}
		images[id] = img
		dirty[id] = true
	}

	// Pass two: stream the tail from the replay start and install. The
	// records must be collected for the dependency scheduler, but only
	// the post-checkpoint tail is ever held in memory.
	var live []*wal.TxRecord
	if tailRecords > 0 {
		rc, err = log.Open(res.ReplayFrom)
		if err != nil {
			return nil, fmt.Errorf("rvm: open log tail at %d: %w", res.ReplayFrom, err)
		}
		sc = wal.NewScanner(rc, res.ReplayFrom)
		if opts.Quarantine {
			sc.Salvage()
		}
		live = make([]*wal.TxRecord, 0, tailRecords)
		for {
			tx, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				rc.Close()
				return nil, err
			}
			if tx.Checkpoint {
				continue
			}
			live = append(live, tx)
		}
		rc.Close()
	}

	if _, err := parapply.Replay(live, opts.Workers, func(_ int, tx *wal.TxRecord) error {
		for _, rec := range tx.Ranges {
			copy(images[rec.Region][rec.Off:rec.End()], rec.Data)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	// Duplicate identities the scheduler suppressed carried identical
	// bytes, so count every live record the way serial replay did.
	res.Records = len(live)
	for _, tx := range live {
		for _, rec := range tx.Ranges {
			res.BytesApplied += len(rec.Data)
		}
	}

	for id := range dirty {
		if err := data.StoreRegion(id, images[id]); err != nil {
			return nil, fmt.Errorf("rvm: recovery store region %d: %w", id, err)
		}
	}
	if len(dirty) > 0 {
		if err := data.Sync(); err != nil {
			return nil, err
		}
	}

	switch {
	case opts.TrimLog:
		if err := log.Reset(); err != nil {
			return nil, fmt.Errorf("rvm: trim log: %w", err)
		}
	case opts.TruncateTorn && res.Torn:
		if err := log.Truncate(res.TornAt); err != nil {
			return nil, fmt.Errorf("rvm: truncate torn tail: %w", err)
		}
	}
	return res, nil
}
