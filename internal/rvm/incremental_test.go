package rvm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"lbc/internal/wal"
)

func TestIncrementalSweepCheckpointsEverything(t *testing.T) {
	log := wal.NewMemDevice()
	data := NewMemStore()
	r, _ := Open(Options{Node: 1, Log: log, Data: data})
	reg, _ := r.Map(1, 3*4096+100) // deliberately not page-aligned

	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 0, 5)
	copy(reg.Bytes(), "head!")
	tx.SetRange(reg, 3*4096+90, 5)
	copy(reg.Bytes()[3*4096+90:], "tail!")
	tx.Commit(NoFlush)

	c := r.NewIncrementalCheckpointer(4096)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.PagesDone() != 4 { // 3 full pages + 100-byte tail
		t.Fatalf("pages done = %d", c.PagesDone())
	}
	img, err := data.LoadRegion(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, reg.Bytes()) {
		t.Fatal("checkpointed image differs from live image")
	}
	// The pre-sweep log is redundant and trimmed.
	if sz, _ := log.Size(); sz != 0 {
		t.Fatalf("log not trimmed: %d bytes", sz)
	}
}

func TestIncrementalSweepKeepsMidSweepCommits(t *testing.T) {
	log := wal.NewMemDevice()
	data := NewMemStore()
	r, _ := Open(Options{Node: 1, Log: log, Data: data})
	reg, _ := r.Map(1, 4*4096)

	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 0, 4)
	copy(reg.Bytes(), "pre ")
	tx.Commit(NoFlush)

	c := r.NewIncrementalCheckpointer(4096)
	// Take two steps, then commit between steps (at a "lock boundary").
	for i := 0; i < 2; i++ {
		if done, err := c.Step(); err != nil || done {
			t.Fatalf("step %d: done=%v err=%v", i, done, err)
		}
	}
	tx2 := r.Begin(NoRestore)
	tx2.SetRange(reg, 0, 4) // page 0: already checkpointed this sweep!
	copy(reg.Bytes(), "mid ")
	tx2.Commit(NoFlush)

	for {
		done, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	// The mid-sweep commit landed after sweepStart, so its record must
	// survive the head trim: recovery must reproduce "mid ".
	txs, err := wal.ReadDevice(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 1 || string(txs[0].Ranges[0].Data) != "mid " {
		t.Fatalf("log after sweep holds %d records", len(txs))
	}
	if _, err := Recover(log, data, RecoverOptions{}); err != nil {
		t.Fatal(err)
	}
	img, _ := data.LoadRegion(1)
	if string(img[:4]) != "mid " {
		t.Fatalf("image = %q", img[:4])
	}
}

func TestIncrementalSweepNoRegions(t *testing.T) {
	r, _ := Open(Options{Node: 1})
	c := r.NewIncrementalCheckpointer(4096)
	done, err := c.Step()
	if err != nil || !done {
		t.Fatalf("empty sweep: done=%v err=%v", done, err)
	}
}

func TestTrimLogHead(t *testing.T) {
	log := wal.NewMemDevice()
	r, _ := Open(Options{Node: 1, Log: log})
	reg, _ := r.Map(1, 256)
	for i := 0; i < 3; i++ {
		tx := r.Begin(NoRestore)
		tx.SetRange(reg, uint64(i*8), 4)
		copy(reg.Bytes()[i*8:], []byte{byte(i + 1), 0, 0, 0})
		tx.Commit(NoFlush)
	}
	txs, _ := wal.ReadDevice(log)
	if len(txs) != 3 {
		t.Fatalf("log holds %d", len(txs))
	}
	// Trim the first record's bytes.
	first := int64(wal.StandardSize(txs[0]))
	if err := r.TrimLogHead(first); err != nil {
		t.Fatal(err)
	}
	txs, err := wal.ReadDevice(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 2 || txs[0].TxSeq != 2 {
		t.Fatalf("after trim: %d records, first seq %d", len(txs), txs[0].TxSeq)
	}
	// Degenerate trims.
	if err := r.TrimLogHead(0); err != nil {
		t.Fatal(err)
	}
	if err := r.TrimLogHead(1 << 40); err == nil {
		t.Fatal("trim beyond end accepted")
	}
}

func TestDirStorePageWrites(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StorePage(1, 4096, []byte("page one")); err != nil {
		t.Fatal(err)
	}
	if err := s.StorePage(1, 0, []byte("page zero")); err != nil {
		t.Fatal(err)
	}
	img, err := s.LoadRegion(1)
	if err != nil {
		t.Fatal(err)
	}
	if string(img[:9]) != "page zero" || string(img[4096:4104]) != "page one" {
		t.Fatalf("img = %q ... %q", img[:9], img[4096:4104])
	}
}

// TestPropertyIncrementalEqualsFullCheckpoint: for any committed
// state, an incremental sweep leaves the permanent image identical to
// a whole-image checkpoint, and recovery over the trimmed log is a
// no-op that preserves it.
func TestPropertyIncrementalEqualsFullCheckpoint(t *testing.T) {
	f := func(seed int64, nTx uint8) bool {
		log := wal.NewMemDevice()
		data := NewMemStore()
		r, _ := Open(Options{Node: 1, Log: log, Data: data})
		reg, _ := r.Map(1, 8192)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(nTx%10)+1; i++ {
			tx := r.Begin(NoRestore)
			off := uint64(rng.Intn(8000))
			n := uint32(rng.Intn(100) + 1)
			tx.SetRange(reg, off, n)
			rng.Read(reg.Bytes()[off : off+uint64(n)])
			tx.Commit(NoFlush)
		}
		want := append([]byte(nil), reg.Bytes()...)
		if err := r.NewIncrementalCheckpointer(1024).Run(); err != nil {
			return false
		}
		img, _ := data.LoadRegion(1)
		if !bytes.Equal(img, want) {
			return false
		}
		if _, err := Recover(log, data, RecoverOptions{}); err != nil {
			return false
		}
		img, _ = data.LoadRegion(1)
		return bytes.Equal(img, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
