package rvm

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"lbc/internal/metrics"
	"lbc/internal/rangetree"
	"lbc/internal/wal"
)

func newTestRVM(t *testing.T) *RVM {
	t.Helper()
	r, err := Open(Options{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMapCreatesZeroedRegion(t *testing.T) {
	r := newTestRVM(t)
	reg, err := r.Map(1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Size() != 1024 || reg.ID() != 1 {
		t.Fatalf("size=%d id=%d", reg.Size(), reg.ID())
	}
	for _, b := range reg.Bytes() {
		if b != 0 {
			t.Fatal("fresh region not zeroed")
		}
	}
	// Mapping again returns the same region.
	again, _ := r.Map(1, 1024)
	if again != reg {
		t.Fatal("re-map returned different region")
	}
}

func TestMapLoadsExistingImage(t *testing.T) {
	data := NewMemStore()
	img := []byte("persistent image contents")
	data.StoreRegion(7, img)
	r, err := Open(Options{Node: 1, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := r.Map(7, len(img))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reg.Bytes(), img) {
		t.Fatalf("mapped %q", reg.Bytes())
	}
}

func TestMapGrowsShortImage(t *testing.T) {
	data := NewMemStore()
	data.StoreRegion(7, []byte("abc"))
	r, _ := Open(Options{Node: 1, Data: data})
	reg, err := r.Map(7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Size() != 10 || !bytes.Equal(reg.Bytes()[:3], []byte("abc")) {
		t.Fatalf("grown image wrong: %q", reg.Bytes())
	}
}

func TestSetRangeBounds(t *testing.T) {
	r := newTestRVM(t)
	reg, _ := r.Map(1, 100)
	tx := r.Begin(NoRestore)
	if err := tx.SetRange(reg, 90, 20); !errors.Is(err, ErrRangeBounds) {
		t.Fatalf("out-of-bounds SetRange: %v", err)
	}
	if err := tx.SetRange(reg, 90, 10); err != nil {
		t.Fatalf("in-bounds SetRange: %v", err)
	}
}

func TestCommitLogsNewValues(t *testing.T) {
	r := newTestRVM(t)
	reg, _ := r.Map(1, 100)
	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 10, 5)
	copy(reg.Bytes()[10:], "hello")
	tx.SetRange(reg, 50, 3)
	copy(reg.Bytes()[50:], "xyz")
	rec, err := tx.Commit(NoFlush)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Ranges) != 2 {
		t.Fatalf("ranges = %d", len(rec.Ranges))
	}
	if rec.Ranges[0].Off != 10 || string(rec.Ranges[0].Data) != "hello" {
		t.Fatalf("range 0 = %+v", rec.Ranges[0])
	}
	if rec.Ranges[1].Off != 50 || string(rec.Ranges[1].Data) != "xyz" {
		t.Fatalf("range 1 = %+v", rec.Ranges[1])
	}
	// The record must be on the log device.
	txs, err := wal.ReadDevice(r.Log())
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 1 || txs[0].TxSeq != rec.TxSeq {
		t.Fatalf("log holds %d records", len(txs))
	}
}

func TestCommitRangesSortedByAddress(t *testing.T) {
	r := newTestRVM(t)
	reg, _ := r.Map(1, 1000)
	tx := r.Begin(NoRestore)
	for _, off := range []uint64{500, 100, 900, 300} {
		tx.SetRange(reg, off, 8)
	}
	rec, _ := tx.Commit(NoFlush)
	for i := 1; i < len(rec.Ranges); i++ {
		if rec.Ranges[i].Off <= rec.Ranges[i-1].Off {
			t.Fatalf("ranges not sorted: %v then %v", rec.Ranges[i-1].Off, rec.Ranges[i].Off)
		}
	}
}

func TestCommitMultiRegionOrder(t *testing.T) {
	r := newTestRVM(t)
	regA, _ := r.Map(2, 100)
	regB, _ := r.Map(1, 100)
	tx := r.Begin(NoRestore)
	tx.SetRange(regA, 0, 4)
	tx.SetRange(regB, 0, 4)
	rec, _ := tx.Commit(NoFlush)
	if len(rec.Ranges) != 2 || rec.Ranges[0].Region != 1 || rec.Ranges[1].Region != 2 {
		t.Fatalf("regions out of order: %+v", rec.Ranges)
	}
}

func TestAbortRestoresOldValues(t *testing.T) {
	r := newTestRVM(t)
	reg, _ := r.Map(1, 100)
	copy(reg.Bytes()[10:], "original")
	tx := r.Begin(Restore)
	tx.SetRange(reg, 10, 8)
	copy(reg.Bytes()[10:], "clobber!")
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if string(reg.Bytes()[10:18]) != "original" {
		t.Fatalf("abort left %q", reg.Bytes()[10:18])
	}
	if r.Stats().Counter(metrics.CtrTxAborted) != 1 {
		t.Fatal("abort not counted")
	}
}

func TestAbortOverlappingUndo(t *testing.T) {
	r := newTestRVM(t)
	reg, _ := r.Map(1, 100)
	copy(reg.Bytes(), "abcdefgh")
	tx := r.Begin(Restore)
	tx.SetRange(reg, 0, 4)
	copy(reg.Bytes(), "WXYZ")
	tx.SetRange(reg, 2, 4) // overlaps; captures already-clobbered bytes
	copy(reg.Bytes()[2:], "1234")
	tx.Abort()
	if string(reg.Bytes()[:8]) != "abcdefgh" {
		t.Fatalf("abort left %q", reg.Bytes()[:8])
	}
}

func TestNoRestoreAbortFails(t *testing.T) {
	r := newTestRVM(t)
	reg, _ := r.Map(1, 100)
	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 0, 4)
	if err := tx.Abort(); err == nil {
		t.Fatal("no-restore abort with modifications should fail")
	}
	// But a read-only no-restore tx can abort.
	tx2 := r.Begin(NoRestore)
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestTxDoneErrors(t *testing.T) {
	r := newTestRVM(t)
	reg, _ := r.Map(1, 100)
	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 0, 4)
	tx.Commit(NoFlush)
	if err := tx.SetRange(reg, 0, 4); !errors.Is(err, ErrTxDone) {
		t.Fatalf("SetRange after commit: %v", err)
	}
	if _, err := tx.Commit(NoFlush); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("abort after commit: %v", err)
	}
}

func TestSetLockDuplicate(t *testing.T) {
	r := newTestRVM(t)
	tx := r.Begin(NoRestore)
	if err := tx.SetLock(5, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetLock(5, 2, 1); err == nil {
		t.Fatal("duplicate SetLock should fail under strict 2PL")
	}
}

func TestLockRecordsInCommit(t *testing.T) {
	r := newTestRVM(t)
	reg, _ := r.Map(1, 100)
	tx := r.Begin(NoRestore)
	tx.SetLock(5, 3, 1)
	tx.SetRange(reg, 0, 4)
	rec, _ := tx.Commit(NoFlush)
	if len(rec.Locks) != 1 || rec.Locks[0].LockID != 5 || rec.Locks[0].Seq != 3 ||
		rec.Locks[0].PrevWriteSeq != 1 || !rec.Locks[0].Wrote {
		t.Fatalf("lock rec = %+v", rec.Locks)
	}
	// Read-only commit: Wrote must be false.
	tx2 := r.Begin(NoRestore)
	tx2.SetLock(5, 4, 3)
	rec2, _ := tx2.Commit(NoFlush)
	if rec2.Locks[0].Wrote {
		t.Fatal("read-only tx marked Wrote")
	}
}

func TestFlushModeSyncsLog(t *testing.T) {
	dev := wal.NewMemDevice()
	r, _ := Open(Options{Node: 1, Log: dev})
	reg, _ := r.Map(1, 100)
	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 0, 4)
	tx.Commit(NoFlush)
	if dev.Syncs() != 0 {
		t.Fatal("no-flush commit synced")
	}
	tx2 := r.Begin(NoRestore)
	tx2.SetRange(reg, 8, 4)
	tx2.Commit(Flush)
	if dev.Syncs() != 1 {
		t.Fatalf("syncs = %d", dev.Syncs())
	}
	if r.Stats().Counter(metrics.CtrLogFlushes) != 1 {
		t.Fatal("flush not counted")
	}
}

func TestCommitHookReceivesRecord(t *testing.T) {
	r := newTestRVM(t)
	reg, _ := r.Map(1, 100)
	var got *wal.TxRecord
	r.AddCommitHook(func(tx *wal.TxRecord) { got = tx })
	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 20, 4)
	copy(reg.Bytes()[20:], "data")
	rec, _ := tx.Commit(NoFlush)
	if got != rec {
		t.Fatal("hook did not receive the committed record")
	}
}

func TestApplyRecord(t *testing.T) {
	r := newTestRVM(t)
	reg, _ := r.Map(1, 100)
	n, err := r.ApplyRecord(&wal.TxRecord{
		Node: 2, TxSeq: 1,
		Ranges: []wal.RangeRec{
			{Region: 1, Off: 5, Data: []byte("peer")},
			{Region: 99, Off: 0, Data: []byte("unmapped-region-skipped")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("applied %d bytes", n)
	}
	if string(reg.Bytes()[5:9]) != "peer" {
		t.Fatalf("region = %q", reg.Bytes()[5:9])
	}
}

func TestApplyRecordOutOfBounds(t *testing.T) {
	r := newTestRVM(t)
	r.Map(1, 10)
	_, err := r.ApplyRecord(&wal.TxRecord{
		Ranges: []wal.RangeRec{{Region: 1, Off: 8, Data: []byte("toolong")}},
	})
	if err == nil {
		t.Fatal("out-of-bounds apply succeeded")
	}
}

func TestRecoveryReplaysCommitted(t *testing.T) {
	log := wal.NewMemDevice()
	data := NewMemStore()
	data.StoreRegion(1, make([]byte, 100))

	// Session 1: two committed transactions, then "crash" (no checkpoint).
	r, _ := Open(Options{Node: 1, Log: log, Data: data})
	reg, _ := r.Map(1, 100)
	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 0, 5)
	copy(reg.Bytes(), "first")
	tx.Commit(NoFlush)
	tx2 := r.Begin(NoRestore)
	tx2.SetRange(reg, 10, 6)
	copy(reg.Bytes()[10:], "second")
	tx2.Commit(NoFlush)
	// An uncommitted transaction scribbles but never commits.
	tx3 := r.Begin(NoRestore)
	tx3.SetRange(reg, 50, 4)
	copy(reg.Bytes()[50:], "lost")

	// The permanent image still has none of it.
	img, _ := data.LoadRegion(1)
	if !bytes.Equal(img, make([]byte, 100)) {
		t.Fatal("permanent image modified before recovery")
	}

	res, err := Recover(log, data, RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 2 || res.BytesApplied != 11 {
		t.Fatalf("recovered %d records, %d bytes", res.Records, res.BytesApplied)
	}
	img, _ = data.LoadRegion(1)
	if string(img[0:5]) != "first" || string(img[10:16]) != "second" {
		t.Fatalf("image = %q", img[:20])
	}
	if !bytes.Equal(img[50:54], make([]byte, 4)) {
		t.Fatal("uncommitted write leaked into permanent image")
	}
}

func TestRecoveryTornTail(t *testing.T) {
	log := wal.NewMemDevice()
	data := NewMemStore()
	r, _ := Open(Options{Node: 1, Log: log, Data: data})
	reg, _ := r.Map(1, 100)
	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 0, 5)
	copy(reg.Bytes(), "keep!")
	tx.Commit(NoFlush)

	// Simulate a crash mid-append: chop bytes off the log tail.
	sz, _ := log.Size()
	extra := wal.AppendStandard(nil, &wal.TxRecord{Node: 1, TxSeq: 99,
		Ranges: []wal.RangeRec{{Region: 1, Off: 20, Data: []byte("torn")}}})
	log.Append(extra[:len(extra)-5])

	res, err := Recover(log, data, RecoverOptions{TruncateTorn: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1 || !res.Torn || res.TornAt != sz {
		t.Fatalf("res = %+v, want torn at %d", res, sz)
	}
	if newSz, _ := log.Size(); newSz != sz {
		t.Fatalf("torn tail not truncated: %d != %d", newSz, sz)
	}
	img, _ := data.LoadRegion(1)
	if string(img[0:5]) != "keep!" {
		t.Fatalf("image = %q", img[:5])
	}
}

func TestOpenWithRecover(t *testing.T) {
	log := wal.NewMemDevice()
	data := NewMemStore()
	r, _ := Open(Options{Node: 1, Log: log, Data: data})
	reg, _ := r.Map(1, 100)
	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 0, 7)
	copy(reg.Bytes(), "durable")
	tx.Commit(Flush)

	// Reopen with recovery: image must reflect the commit and the log
	// must be trimmed.
	r2, err := Open(Options{Node: 1, Log: log, Data: data, Recover: true})
	if err != nil {
		t.Fatal(err)
	}
	reg2, _ := r2.Map(1, 100)
	if string(reg2.Bytes()[:7]) != "durable" {
		t.Fatalf("recovered image = %q", reg2.Bytes()[:7])
	}
	if sz, _ := log.Size(); sz != 0 {
		t.Fatalf("log not trimmed: %d", sz)
	}
}

func TestCheckpointTrimsLog(t *testing.T) {
	log := wal.NewMemDevice()
	data := NewMemStore()
	r, _ := Open(Options{Node: 1, Log: log, Data: data})
	reg, _ := r.Map(1, 100)
	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 0, 4)
	copy(reg.Bytes(), "ckpt")
	tx.Commit(NoFlush)

	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if sz, _ := log.Size(); sz != 0 {
		t.Fatal("checkpoint did not trim log")
	}
	img, _ := data.LoadRegion(1)
	if string(img[:4]) != "ckpt" {
		t.Fatalf("checkpointed image = %q", img[:4])
	}
	// Recovery over the empty log is a no-op but leaves image intact.
	if _, err := Recover(log, data, RecoverOptions{}); err != nil {
		t.Fatal(err)
	}
	img, _ = data.LoadRegion(1)
	if string(img[:4]) != "ckpt" {
		t.Fatal("recovery clobbered checkpointed image")
	}
}

func TestClosedInstance(t *testing.T) {
	r := newTestRVM(t)
	reg, _ := r.Map(1, 100)
	r.Close()
	if _, err := r.Map(2, 10); !errors.Is(err, ErrClosed) {
		t.Fatalf("map after close: %v", err)
	}
	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 0, 4)
	if _, err := tx.Commit(NoFlush); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after close: %v", err)
	}
}

func TestUnmap(t *testing.T) {
	r := newTestRVM(t)
	r.Map(1, 10)
	r.Unmap(1)
	if r.Region(1) != nil {
		t.Fatal("region still mapped")
	}
}

func TestStatsCounters(t *testing.T) {
	r := newTestRVM(t)
	reg, _ := r.Map(1, 1000)
	tx := r.Begin(NoRestore)
	for i := 0; i < 10; i++ {
		tx.SetRange(reg, uint64(i*16), 8)
	}
	tx.Commit(NoFlush)
	s := r.Stats()
	if s.Counter(metrics.CtrSetRangeCalls) != 10 {
		t.Fatalf("set_range calls = %d", s.Counter(metrics.CtrSetRangeCalls))
	}
	if s.Counter(metrics.CtrRangesLogged) != 10 {
		t.Fatalf("ranges = %d", s.Counter(metrics.CtrRangesLogged))
	}
	if s.Counter(metrics.CtrBytesLogged) != 80 {
		t.Fatalf("bytes = %d", s.Counter(metrics.CtrBytesLogged))
	}
	if s.Phase(metrics.PhaseDetect) == 0 || s.Phase(metrics.PhaseCollect) == 0 {
		t.Fatal("phase timers not accrued")
	}
}

// TestPropertyRecoveryMatchesMemory drives random committed transactions
// and verifies that recovery reconstructs exactly the final in-memory
// image — the fundamental recoverability invariant.
func TestPropertyRecoveryMatchesMemory(t *testing.T) {
	f := func(seed int64, nTx uint8) bool {
		log := wal.NewMemDevice()
		data := NewMemStore()
		data.StoreRegion(1, make([]byte, 4096))
		r, _ := Open(Options{Node: 1, Log: log, Data: data})
		reg, _ := r.Map(1, 4096)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(nTx%20)+1; i++ {
			tx := r.Begin(NoRestore)
			for j := 0; j < rng.Intn(8)+1; j++ {
				off := uint64(rng.Intn(4000))
				n := uint32(rng.Intn(64) + 1)
				tx.SetRange(reg, off, n)
				rng.Read(reg.Bytes()[off : off+uint64(n)])
			}
			if _, err := tx.Commit(NoFlush); err != nil {
				t.Logf("commit: %v", err)
				return false
			}
		}
		want := append([]byte(nil), reg.Bytes()...)
		if _, err := Recover(log, data, RecoverOptions{}); err != nil {
			t.Logf("recover: %v", err)
			return false
		}
		img, _ := data.LoadRegion(1)
		return bytes.Equal(img, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAbortIsIdentity checks that a restore-mode transaction
// that aborts leaves the image bit-identical to its pre-transaction
// state regardless of the write pattern.
func TestPropertyAbortIsIdentity(t *testing.T) {
	f := func(seed int64, nWrites uint8) bool {
		r, _ := Open(Options{Node: 1})
		reg, _ := r.Map(1, 2048)
		rng := rand.New(rand.NewSource(seed))
		rng.Read(reg.Bytes())
		before := append([]byte(nil), reg.Bytes()...)
		tx := r.Begin(Restore)
		for j := 0; j < int(nWrites%16)+1; j++ {
			off := uint64(rng.Intn(2000))
			n := uint32(rng.Intn(48) + 1)
			tx.SetRange(reg, off, n)
			rng.Read(reg.Bytes()[off : off+uint64(n)])
		}
		if err := tx.Abort(); err != nil {
			return false
		}
		return bytes.Equal(reg.Bytes(), before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDirStore(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadRegion(1); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("missing region: %v", err)
	}
	if err := s.StoreRegion(1, []byte("disk image")); err != nil {
		t.Fatal(err)
	}
	if err := s.StoreRegion(3, []byte("other")); err != nil {
		t.Fatal(err)
	}
	img, err := s.LoadRegion(1)
	if err != nil || string(img) != "disk image" {
		t.Fatalf("load: %q, %v", img, err)
	}
	ids, err := s.Regions()
	if err != nil || len(ids) != 2 {
		t.Fatalf("regions = %v, %v", ids, err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestFullCoalescePolicy(t *testing.T) {
	r, _ := Open(Options{Node: 1, Policy: rangetree.CoalesceFull})
	reg, _ := r.Map(1, 100)
	tx := r.Begin(NoRestore)
	tx.SetRange(reg, 0, 8)
	tx.SetRange(reg, 8, 8) // adjacent: standard RVM merges
	rec, _ := tx.Commit(NoFlush)
	if len(rec.Ranges) != 1 || len(rec.Ranges[0].Data) != 16 {
		t.Fatalf("full coalescing produced %+v", rec.Ranges)
	}
}

func TestNeedsCheckpointHighWater(t *testing.T) {
	r, err := Open(Options{Node: 1, LogHighWater: 200})
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := r.Map(1, 256)
	if r.NeedsCheckpoint() {
		t.Fatal("fresh instance needs checkpoint")
	}
	for i := 0; i < 3; i++ {
		tx := r.Begin(NoRestore)
		tx.SetRange(reg, uint64(i*8), 8)
		tx.Commit(NoFlush)
	}
	if !r.NeedsCheckpoint() {
		sz, _ := r.Log().Size()
		t.Fatalf("log at %d bytes, high water 200, but no checkpoint flagged", sz)
	}
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if r.NeedsCheckpoint() {
		t.Fatal("still flagged after checkpoint")
	}
	// Unconfigured instances never flag.
	r2, _ := Open(Options{Node: 2})
	if r2.NeedsCheckpoint() {
		t.Fatal("unconfigured high water flagged")
	}
}
