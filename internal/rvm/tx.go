package rvm

import (
	"fmt"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/obs"
	"lbc/internal/rangetree"
	"lbc/internal/wal"
)

// TxMode controls whether a transaction can be aborted.
type TxMode int

const (
	// Restore captures old values at SetRange so Abort can roll the
	// in-memory image back (RVM's restore mode).
	Restore TxMode = iota
	// NoRestore skips undo capture; such a transaction cannot abort.
	// This is RVM's common fast path for committed workloads.
	NoRestore
)

// CommitMode controls commit durability.
type CommitMode int

const (
	// Flush forces the log to durable storage before commit returns.
	Flush CommitMode = iota
	// NoFlush leaves the record in volatile buffers; a crash may lose
	// it (but never tears the committed prefix).
	NoFlush
)

// Tx is an in-progress transaction. A Tx is not safe for concurrent
// use; RVM applications serialize access per transaction (§3:
// "multi-threaded updates may or may not be serializable" — locking is
// the coherency layer's business).
type Tx struct {
	rvm    *RVM
	mode   TxMode
	trees  map[RegionID]*rangetree.Tree
	undo   []undoRec
	locks  []wal.LockRec
	done   bool
	setCnt int64

	// Tracing state, populated only when the instance's tracer is
	// enabled. Spans recorded before commit (lock acquisition, detect)
	// buffer here because the transaction's sequence number does not
	// exist until Commit assigns it; Commit stamps and emits them.
	begin    time.Time
	detectNS int64
	spans    []obs.Span
}

type undoRec struct {
	region *Region
	off    uint64
	old    []byte
}

// Begin starts a transaction (rvm_begin_transaction).
func (r *RVM) Begin(mode TxMode) *Tx {
	t := &Tx{rvm: r, mode: mode, trees: map[RegionID]*rangetree.Tree{}}
	if r.trace.Enabled() {
		t.begin = time.Now()
	}
	return t
}

// AddSpan buffers a span on the transaction; Commit stamps it with the
// committing node and sequence number (unless already set) and emits
// it. The coherency layer uses this for lock-acquire spans, which
// happen before the transaction has an identity. No-op when the
// instance's tracer is disabled.
func (t *Tx) AddSpan(s obs.Span) {
	if t.rvm.trace.Enabled() {
		t.spans = append(t.spans, s)
	}
}

// Traced reports whether the instance's tracer is recording; callers
// use it to skip clock reads when tracing is off.
func (t *Tx) Traced() bool { return t.rvm.trace.Enabled() }

// SetRange declares that the caller is about to modify
// region[off:off+n] (rvm_set_range). In Restore mode the old contents
// are captured for Abort. Declaring a range more than once is cheap:
// the modified-range tree coalesces per the instance's policy.
func (t *Tx) SetRange(reg *Region, off uint64, n uint32) error {
	if t.done {
		return ErrTxDone
	}
	if off+uint64(n) > uint64(len(reg.data)) {
		return fmt.Errorf("%w: [%d,%d) in region %d of size %d",
			ErrRangeBounds, off, off+uint64(n), reg.id, len(reg.data))
	}
	tm := metrics.StartTimer(t.rvm.stats, metrics.PhaseDetect)
	tree, ok := t.trees[reg.id]
	if !ok {
		tree = rangetree.New(t.rvm.policy)
		t.trees[reg.id] = tree
	}
	res := tree.Add(off, n)
	t.setCnt++
	traced := t.rvm.trace.Enabled()
	if t.mode == Restore && res != rangetree.CoalescedFast {
		// Capture undo only for ranges that added new coverage. For
		// simplicity old values are captured per SetRange call (a
		// Coalesced result may re-capture overlapping bytes; abort
		// replays undos in reverse order, so the oldest capture wins).
		old := make([]byte, n)
		copy(old, reg.data[off:off+uint64(n)])
		t.undo = append(t.undo, undoRec{region: reg, off: off, old: old})
	}
	d := tm.Stop()
	if traced {
		t.detectNS += int64(d)
	}
	return nil
}

// SetLock associates a distributed lock acquisition with the
// transaction (the paper's new rvm_setlockid_transaction call, §3.3).
// Lock records are emitted into the transaction's log entry and drive
// both receiver-side ordering and log merging.
func (t *Tx) SetLock(lockID uint32, seq, prevWriteSeq uint64) error {
	if t.done {
		return ErrTxDone
	}
	for _, l := range t.locks {
		if l.LockID == lockID {
			return fmt.Errorf("rvm: lock %d already set on transaction (strict 2PL acquires a lock at most once)", lockID)
		}
	}
	t.locks = append(t.locks, wal.LockRec{LockID: lockID, Seq: seq, PrevWriteSeq: prevWriteSeq})
	return nil
}

// SetRangeCalls returns how many SetRange calls the transaction has
// made (the per-update count behind Figures 5-7).
func (t *Tx) SetRangeCalls() int64 { return t.setCnt }

// PendingRanges returns the number of distinct modified ranges
// currently recorded.
func (t *Tx) PendingRanges() int {
	var n int
	for _, tree := range t.trees {
		n += tree.Len()
	}
	return n
}

// Commit atomically enters the transaction's updates
// (rvm_end_transaction): new values are gathered from the region
// images in address order, appended to the durable log (forced when
// mode is Flush), and handed to every commit hook — which is where
// log-based coherency broadcasts them to peers. It returns the
// committed record.
func (t *Tx) Commit(mode CommitMode) (*wal.TxRecord, error) {
	if t.done {
		return nil, ErrTxDone
	}
	t.done = true
	r := t.rvm
	traced := r.trace.Enabled()

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	r.txSeq++
	seq := r.txSeq
	hooks := r.hooks

	// Gather phase ("collect updates"): copy the new values out of the
	// region images into one contiguous commit buffer, building the
	// record that serves both recoverability and coherency. This
	// mirrors RVM's writev gather — data is copied exactly once.
	tm := metrics.StartTimer(r.stats, metrics.PhaseCollect)
	tx := &wal.TxRecord{Node: r.node, TxSeq: seq}
	var totalBytes int
	for _, id := range sortedRegionIDs(t.trees) {
		totalBytes += int(t.trees[id].Bytes())
	}
	buf := make([]byte, 0, totalBytes)
	for _, id := range sortedRegionIDs(t.trees) {
		reg := r.regions[id]
		tree := t.trees[id]
		if reg == nil {
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: region %d", ErrNotMapped, id)
		}
		tree.Visit(func(rg rangetree.Range) bool {
			start := len(buf)
			buf = append(buf, reg.data[rg.Off:rg.Off+uint64(rg.Len)]...)
			tx.Ranges = append(tx.Ranges, wal.RangeRec{
				Region: uint32(id),
				Off:    rg.Off,
				Data:   buf[start:len(buf):len(buf)],
			})
			return true
		})
	}
	// Finalize lock records: a lock is marked Wrote if the transaction
	// modified anything. (Per-segment refinement happens in the
	// coherency layer, which knows the segment <-> lock mapping.)
	tx.Locks = append(tx.Locks, t.locks...)
	for i := range tx.Locks {
		tx.Locks[i].Wrote = len(tx.Ranges) > 0
	}
	collectNS := int64(tm.Stop())
	r.mu.Unlock()

	// A fuzzy checkpoint sweep may be running: record the pages this
	// commit wrote so the sweep re-copies them under its final quiesce
	// (no-op when no sweep is active).
	r.markDirty(tx.Ranges)

	// Durability phase: append to the log; force it in Flush mode. This
	// runs outside r.mu so concurrent committers can overlap device I/O
	// (and, with GroupCommit, share one force). Safe because strict 2PL
	// gives concurrent transactions disjoint ranges, TxSeq was assigned
	// under r.mu above, and both recovery and merge order records by
	// (node, TxSeq) rather than by log append order. The shared log
	// latch excludes only the online head-trim rewrite used by devices
	// without an atomic HeadTrimmer, which must not race appends.
	dt := metrics.StartTimer(r.stats, metrics.PhaseDiskIO)
	r.logMu.RLock()
	_, _, werr := r.writer.Commit(tx, mode == Flush)
	r.logMu.RUnlock()
	if werr != nil {
		return nil, fmt.Errorf("rvm: log append: %w", werr)
	}
	diskNS := int64(dt.Stop())
	if mode == Flush {
		r.stats.Add(metrics.CtrLogFlushes, 1)
	}

	if traced {
		now := time.Now()
		// Buffered spans first (lock acquisition happened earliest),
		// stamped with the identity the transaction just received.
		for _, s := range t.spans {
			if s.Node == 0 {
				s.Node = r.node
			}
			if s.Tx == 0 {
				s.Tx = seq
			}
			r.trace.Emit(s)
		}
		nowNS := now.UnixNano()
		beginNS := t.begin.UnixNano()
		if t.begin.IsZero() {
			// Tracer enabled mid-transaction: approximate begin.
			beginNS = nowNS - diskNS - collectNS - t.detectNS
		}
		r.trace.Emit(obs.Span{
			Name: obs.SpanDetect, Node: r.node, Tx: seq,
			Start: beginNS, Dur: t.detectNS, N: t.setCnt,
		})
		r.trace.Emit(obs.Span{
			Name: obs.SpanCollect, Node: r.node, Tx: seq,
			Start: nowNS - diskNS - collectNS, Dur: collectNS,
			N: int64(len(tx.Ranges)),
		})
		r.trace.Emit(obs.Span{
			Name: obs.SpanAppend, Node: r.node, Tx: seq,
			Start: nowNS - diskNS, Dur: diskNS, N: int64(totalBytes),
		})
		r.trace.Emit(obs.Span{
			Name: obs.SpanTx, Node: r.node, Tx: seq,
			Start: beginNS, Dur: nowNS - beginNS,
		})
	}

	// Coherency phase: hand the committed record to hooks (eager
	// broadcast happens here). Hooks run outside r.mu so receivers can
	// call ApplyRecord without deadlock.
	for _, h := range hooks {
		h(tx)
	}

	r.stats.Add(metrics.CtrTxCommitted, 1)
	r.stats.Add(metrics.CtrSetRangeCalls, t.setCnt)
	r.stats.Add(metrics.CtrRangesLogged, int64(len(tx.Ranges)))
	r.stats.Add(metrics.CtrBytesLogged, int64(totalBytes))
	return tx, nil
}

// Abort rolls back the transaction. In Restore mode the captured old
// values are copied back (newest first); in NoRestore mode Abort
// returns an error because the image may already be inconsistent.
func (t *Tx) Abort() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	if t.mode == NoRestore && len(t.trees) > 0 {
		hasRanges := false
		for _, tree := range t.trees {
			if tree.Len() > 0 {
				hasRanges = true
				break
			}
		}
		if hasRanges {
			return fmt.Errorf("rvm: cannot abort a no-restore transaction with modifications")
		}
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		copy(u.region.data[u.off:], u.old)
		// Rollback rewrites image bytes: a fuzzy sweep must re-copy them.
		t.rvm.markDirtyRange(uint32(u.region.id), u.off, u.off+uint64(len(u.old)))
	}
	t.rvm.stats.Add(metrics.CtrTxAborted, 1)
	return nil
}
