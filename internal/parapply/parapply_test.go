package parapply

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"lbc/internal/wal"
)

// harness wraps an Engine with a lockmgr-like applied map and an
// install log for ordering assertions.
type harness struct {
	mu      sync.Mutex
	applied map[uint32]uint64
	order   []ident // install order
	workers map[int]bool
	fail    func(rec *wal.TxRecord) error

	dropMu sync.Mutex
	drops  []ident

	eng *Engine
}

func newHarness(workers int) *harness {
	h := &harness{applied: map[uint32]uint64{}, workers: map[int]bool{}}
	h.eng = New(Config{
		Workers: workers,
		Applied: func(lockID uint32) uint64 {
			// Called with the engine mutex held; h.mu is a leaf.
			h.mu.Lock()
			defer h.mu.Unlock()
			return h.applied[lockID]
		},
		Install: func(worker int, rec *wal.TxRecord) error {
			if h.fail != nil {
				if err := h.fail(rec); err != nil {
					return err
				}
			}
			h.mu.Lock()
			h.order = append(h.order, ident{rec.Node, rec.TxSeq})
			h.workers[worker] = true
			for _, l := range rec.Locks {
				if l.Wrote && h.applied[l.LockID] < l.Seq {
					h.applied[l.LockID] = l.Seq
				}
			}
			h.mu.Unlock()
			return nil
		},
		Drop: func(rec *wal.TxRecord) {
			h.dropMu.Lock()
			h.drops = append(h.drops, ident{rec.Node, rec.TxSeq})
			h.dropMu.Unlock()
		},
	})
	return h
}

func lockRec(node uint32, txSeq uint64, lockID uint32, seq uint64) *wal.TxRecord {
	return &wal.TxRecord{
		Node: node, TxSeq: txSeq,
		Locks:  []wal.LockRec{{LockID: lockID, Seq: seq, PrevWriteSeq: seq - 1, Wrote: true}},
		Ranges: []wal.RangeRec{{Region: 1, Off: uint64(lockID) * 100, Data: []byte{byte(seq)}}},
	}
}

func freeRec(node uint32, txSeq uint64) *wal.TxRecord {
	return &wal.TxRecord{
		Node: node, TxSeq: txSeq,
		Ranges: []wal.RangeRec{{Region: 1, Off: 0, Data: []byte{byte(txSeq)}}},
	}
}

func (h *harness) waitSettled(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if h.eng.Settle(); h.eng.QueueDepth() == h.eng.Parked() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("engine did not settle")
		}
		time.Sleep(time.Millisecond)
	}
}

func (h *harness) installOrder() []ident {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]ident(nil), h.order...)
}

func TestChainOrderPreserved(t *testing.T) {
	h := newHarness(4)
	defer h.eng.Close()
	// One chain delivered in reverse: must install in sequence order.
	for seq := uint64(5); seq >= 1; seq-- {
		h.eng.Submit(lockRec(1, seq, 7, seq))
	}
	h.waitSettled(t)
	got := h.installOrder()
	if len(got) != 5 {
		t.Fatalf("installed %d records, want 5 (parked %d)", len(got), h.eng.Parked())
	}
	for i, id := range got {
		if id.seq != uint64(i+1) {
			t.Fatalf("install order %v not sequential", got)
		}
	}
}

func TestDisjointChainsAllInstall(t *testing.T) {
	h := newHarness(4)
	defer h.eng.Close()
	const chains, per = 8, 20
	var recs []*wal.TxRecord
	for c := uint32(1); c <= chains; c++ {
		for seq := uint64(1); seq <= per; seq++ {
			recs = append(recs, lockRec(c, uint64(c)*1000+seq, c, seq))
		}
	}
	rand.New(rand.NewSource(42)).Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	for _, r := range recs {
		h.eng.Submit(r)
	}
	h.waitSettled(t)
	if got := len(h.installOrder()); got != chains*per {
		t.Fatalf("installed %d, want %d", got, chains*per)
	}
	// Per-chain order must be sequential even though chains interleave.
	perChain := map[uint32]uint64{}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, id := range h.order {
		chain := uint32(id.seq / 1000)
		seq := id.seq % 1000
		if seq != perChain[chain]+1 {
			t.Fatalf("chain %d: seq %d after %d", chain, seq, perChain[chain])
		}
		perChain[chain] = seq
	}
}

func TestDuplicateIdentityDropped(t *testing.T) {
	h := newHarness(2)
	defer h.eng.Close()
	// Park a record (missing predecessor), then deliver the same
	// identity again: the duplicate must drop without installing.
	h.eng.Submit(lockRec(1, 2, 7, 2))
	waitParked(t, h.eng, 1)
	h.eng.Submit(lockRec(1, 2, 7, 2))
	h.eng.Submit(lockRec(1, 1, 7, 1))
	h.waitSettled(t)
	if got := len(h.installOrder()); got != 2 {
		t.Fatalf("installed %d, want 2", got)
	}
	h.dropMu.Lock()
	defer h.dropMu.Unlock()
	if len(h.drops) != 1 || h.drops[0] != (ident{1, 2}) {
		t.Fatalf("drops = %v, want the duplicate of (1,2)", h.drops)
	}
}

func TestStaleRecordDropped(t *testing.T) {
	h := newHarness(2)
	defer h.eng.Close()
	h.eng.Submit(lockRec(1, 1, 7, 1))
	h.waitSettled(t)
	// Re-deliver after completion: the chain has advanced, so the
	// record is stale.
	h.eng.Submit(lockRec(1, 1, 7, 1))
	h.waitSettled(t)
	if got := len(h.installOrder()); got != 1 {
		t.Fatalf("installed %d, want 1", got)
	}
}

func TestLockFreePerSenderFIFO(t *testing.T) {
	h := newHarness(4)
	defer h.eng.Close()
	// Two senders, interleaved lock-free records: each sender's stream
	// must install in order (they overwrite the same bytes).
	for seq := uint64(1); seq <= 50; seq++ {
		h.eng.Submit(freeRec(1, seq))
		h.eng.Submit(freeRec(2, seq))
	}
	h.waitSettled(t)
	got := h.installOrder()
	if len(got) != 100 {
		t.Fatalf("installed %d, want 100", len(got))
	}
	last := map[uint32]uint64{}
	for _, id := range got {
		if id.seq != last[id.node]+1 {
			t.Fatalf("sender %d: seq %d after %d", id.node, id.seq, last[id.node])
		}
		last[id.node] = id.seq
	}
}

func TestLockFreeDuplicateStale(t *testing.T) {
	h := newHarness(2)
	defer h.eng.Close()
	h.eng.Submit(freeRec(1, 1))
	h.eng.Submit(freeRec(1, 2))
	h.waitSettled(t)
	h.eng.Submit(freeRec(1, 1)) // behind the sender high-water mark
	h.waitSettled(t)
	if got := len(h.installOrder()); got != 2 {
		t.Fatalf("installed %d, want 2", got)
	}
}

func TestWakeLocksReleasesWaiter(t *testing.T) {
	h := newHarness(2)
	defer h.eng.Close()
	// Parked on a predecessor the engine never installs (a local
	// commit advanced the chain instead, as lockmgr.Release does).
	h.eng.Submit(lockRec(1, 2, 7, 2))
	waitParked(t, h.eng, 1)
	h.mu.Lock()
	h.applied[7] = 1
	h.mu.Unlock()
	h.eng.WakeLocks([]uint32{7})
	h.waitSettled(t)
	if got := len(h.installOrder()); got != 1 {
		t.Fatalf("installed %d, want 1", got)
	}
}

func TestWakeAll(t *testing.T) {
	h := newHarness(2)
	defer h.eng.Close()
	h.eng.Submit(lockRec(1, 2, 7, 2))
	h.eng.Submit(lockRec(1, 12, 9, 4))
	waitParked(t, h.eng, 2)
	h.mu.Lock()
	h.applied[7] = 1
	h.applied[9] = 3
	h.mu.Unlock()
	h.eng.WakeAll()
	h.waitSettled(t)
	if got := len(h.installOrder()); got != 2 {
		t.Fatalf("installed %d, want 2", got)
	}
}

func TestMultiLockRecordGatesOnAllChains(t *testing.T) {
	h := newHarness(4)
	defer h.eng.Close()
	span := &wal.TxRecord{
		Node: 1, TxSeq: 100,
		Locks: []wal.LockRec{
			{LockID: 1, Seq: 2, PrevWriteSeq: 1, Wrote: true},
			{LockID: 2, Seq: 2, PrevWriteSeq: 1, Wrote: true},
		},
	}
	h.eng.Submit(span)
	waitParked(t, h.eng, 1)
	h.eng.Submit(lockRec(1, 1, 1, 1))
	time.Sleep(10 * time.Millisecond)
	if h.eng.Parked() != 1 {
		t.Fatalf("record spanning two chains dispatched with one predecessor missing")
	}
	h.eng.Submit(lockRec(2, 1, 2, 1))
	h.waitSettled(t)
	got := h.installOrder()
	if len(got) != 3 || got[2] != (ident{1, 100}) {
		t.Fatalf("install order %v, want the spanning record last", got)
	}
}

func TestInstallErrorDoesNotAdvanceChain(t *testing.T) {
	h := newHarness(2)
	boom := errors.New("boom")
	h.fail = func(rec *wal.TxRecord) error {
		if rec.TxSeq == 1 {
			return boom
		}
		return nil
	}
	defer h.eng.Close()
	h.eng.Submit(lockRec(1, 1, 7, 1))
	h.eng.Submit(lockRec(1, 2, 7, 2))
	h.eng.Settle()
	// Record 2 must stay parked: its predecessor failed to install.
	if p := h.eng.Parked(); p != 1 {
		t.Fatalf("parked = %d, want 1 (successor of a failed install)", p)
	}
}

func TestParallelismAcrossChains(t *testing.T) {
	// Two chains and two workers: a slow install on chain 1 must not
	// prevent chain 2 from installing concurrently.
	block := make(chan struct{})
	entered := make(chan uint32, 2)
	var eng *Engine
	eng = New(Config{
		Workers: 2,
		Applied: func(lockID uint32) uint64 { return 0 },
		Install: func(w int, rec *wal.TxRecord) error {
			entered <- rec.Locks[0].LockID
			if rec.Locks[0].LockID == 1 {
				<-block
			}
			return nil
		},
	})
	defer eng.Close()
	eng.Submit(&wal.TxRecord{Node: 1, TxSeq: 1, Locks: []wal.LockRec{{LockID: 1, Seq: 1, Wrote: true}}})
	eng.Submit(&wal.TxRecord{Node: 2, TxSeq: 1, Locks: []wal.LockRec{{LockID: 2, Seq: 1, Wrote: true}}})
	seen := map[uint32]bool{}
	for i := 0; i < 2; i++ {
		select {
		case id := <-entered:
			seen[id] = true
		case <-time.After(2 * time.Second):
			t.Fatalf("second chain blocked behind the first; entered %v", seen)
		}
	}
	close(block)
}

func TestCloseDiscardsParked(t *testing.T) {
	h := newHarness(2)
	h.eng.Submit(lockRec(1, 5, 7, 5)) // never unblocked
	waitParked(t, h.eng, 1)
	h.eng.Close()
	h.dropMu.Lock()
	n := len(h.drops)
	h.dropMu.Unlock()
	if n != 1 {
		t.Fatalf("Close dropped %d records, want 1", n)
	}
	if h.eng.Submit(freeRec(1, 1)) {
		t.Fatal("Submit accepted a record after Close")
	}
}

func TestReplayInOrderAndParallel(t *testing.T) {
	const chains, per = 4, 50
	var recs []*wal.TxRecord
	for c := uint32(1); c <= chains; c++ {
		for seq := uint64(1); seq <= per; seq++ {
			recs = append(recs, lockRec(c, uint64(c)*1000+seq, c, seq))
		}
	}
	rand.New(rand.NewSource(7)).Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	var mu sync.Mutex
	perChain := map[uint32]uint64{}
	stats, err := Replay(recs, 4, func(w int, rec *wal.TxRecord) error {
		mu.Lock()
		defer mu.Unlock()
		l := rec.Locks[0]
		if l.Seq != perChain[l.LockID]+1 {
			return fmt.Errorf("chain %d: seq %d after %d", l.LockID, l.Seq, perChain[l.LockID])
		}
		perChain[l.LockID] = l.Seq
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Installed != chains*per || stats.Forced != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestReplaySeedsTrimmedChains(t *testing.T) {
	// A log trimmed after a checkpoint starts mid-chain: seq 10..12
	// with PrevWriteSeq 9 at the head. Replay must seed the interlock
	// and install all three without forcing.
	var recs []*wal.TxRecord
	for seq := uint64(10); seq <= 12; seq++ {
		recs = append(recs, lockRec(1, seq, 3, seq))
	}
	stats, err := Replay(recs, 2, func(w int, rec *wal.TxRecord) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Installed != 3 || stats.Forced != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestReplayForcesThroughGap(t *testing.T) {
	// Interior gap: seq 1 and seq 3 survive, 2 is missing. Replay must
	// terminate, installing both and counting a forced escape.
	recs := []*wal.TxRecord{
		lockRec(1, 1, 3, 1),
		lockRec(1, 3, 3, 3),
	}
	stats, err := Replay(recs, 2, func(w int, rec *wal.TxRecord) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Installed != 2 || stats.Forced != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestReplayDuplicates(t *testing.T) {
	recs := []*wal.TxRecord{
		lockRec(1, 1, 3, 1),
		lockRec(1, 1, 3, 1),
		lockRec(1, 2, 3, 2),
	}
	stats, err := Replay(recs, 2, func(w int, rec *wal.TxRecord) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Installed != 2 || stats.Duplicates != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestReplayReturnsInstallError(t *testing.T) {
	boom := errors.New("boom")
	recs := []*wal.TxRecord{lockRec(1, 1, 3, 1)}
	if _, err := Replay(recs, 2, func(w int, rec *wal.TxRecord) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func waitParked(t *testing.T, eng *Engine, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for eng.Parked() != want {
		if time.Now().After(deadline) {
			t.Fatalf("parked = %d, want %d", eng.Parked(), want)
		}
		time.Sleep(time.Millisecond)
	}
}
