// Package parapply is the dependency-scheduled parallel apply engine
// for coherency records. The paper's receiver thread (§3.2) installs
// incoming records serially, but the §3.4 ordering interlock only
// constrains records on the same per-lock write chain: segments
// partition the store, so records whose written-lock sets touch
// disjoint chains modify disjoint bytes and may install concurrently
// ("Scaling Distributed Transaction Processing and Recovery based on
// Dependency Logging", arXiv:1703.02722, makes the same observation
// for replay).
//
// The engine classifies each submitted record by its embedded lock
// records:
//
//   - A record that wrote under locks is ready once, for every written
//     lock, the locally applied sequence has reached the record's
//     PrevWriteSeq. Otherwise it parks, indexed by the lock that
//     blocks it, so completing lock L's predecessor wakes only L's
//     waiters — there is no rescan of the full parked set.
//   - A record without written locks (the lock-free DSM path) is
//     serialized per sender: per-sender FIFO is the only ordering
//     those records have, and successive records may overwrite the
//     same bytes.
//
// Duplicate deliveries (eager broadcast + lazy pull + token piggyback
// can each deliver the same record) are suppressed twice over: records
// whose chains have already advanced past them are dropped as stale,
// and a record whose (node, TxSeq) identity is already queued or in
// flight is dropped immediately — without that, two workers could
// install the same bytes concurrently, which is a data race even when
// the writes are identical.
//
// The engine is used online by the coherency layer's receive path and
// offline by Replay, which drives recovery (rvm) and restart catch-up
// (coherency.CatchUp) through the same scheduler.
package parapply

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"lbc/internal/wal"
)

// Config configures an Engine. Applied and Install are required.
type Config struct {
	// Workers is the number of apply workers (default
	// min(GOMAXPROCS, 8); at least 1).
	Workers int
	// Applied returns the locally applied write sequence for a lock
	// (the interlock state, e.g. lockmgr.Manager.Applied). Called with
	// the engine's internal mutex held: it must not call back into the
	// engine.
	Applied func(lockID uint32) uint64
	// Install applies one record. It runs on a worker goroutine; the
	// engine guarantees that records on one lock chain (and lock-free
	// records from one sender) are installed sequentially, and that no
	// two Install calls ever receive the same (node, TxSeq) identity
	// concurrently. On success Install must advance the interlock
	// state Applied reads (e.g. MarkApplied), so dependent records
	// become ready. worker is the 1-based worker index.
	Install func(worker int, rec *wal.TxRecord) error
	// Done, when non-nil, is called after Install returns and the
	// record's completion has been published (dependents woken). It
	// runs on the worker goroutine without engine locks held.
	Done func(rec *wal.TxRecord, err error)
	// Drop, when non-nil, is called for records discarded without
	// installation (stale or duplicate). Runs without engine locks.
	Drop func(rec *wal.TxRecord)
}

type ident struct {
	node uint32
	seq  uint64
}

// parkedRec is one parked record, keyed by the PrevWriteSeq it is
// waiting for on the lock it is parked under. Per-lock park lists stay
// sorted by that key, so a wake pops exactly the prefix whose
// predecessors have been applied instead of rescanning every waiter.
type parkedRec struct {
	prev uint64
	rec  *wal.TxRecord
}

// Engine schedules records onto its worker pool respecting per-chain
// and per-sender ordering. All methods are safe for concurrent use.
type Engine struct {
	cfg Config

	mu         sync.Mutex
	readyCond  sync.Cond // a record became ready, or the engine closed
	stateCond  sync.Cond // ready/inflight/parked changed (Settled waiters)
	ready      []*wal.TxRecord
	waiting    map[uint32][]parkedRec // parked records by blocking lock, ascending prev
	waitCount  int
	pending    map[ident]struct{} // identities queued or in flight
	senderSeq  map[uint32]uint64  // highest installed TxSeq per sender
	senderBusy map[uint32]bool    // sender has a lock-free record scheduled
	senderQ    map[uint32][]*wal.TxRecord
	inflight   int
	closed     bool

	parked atomic.Int64 // mirrors waitCount for lock-free reads
	wg     sync.WaitGroup
}

// New starts an engine with cfg.Workers apply workers.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
		if cfg.Workers > 8 {
			cfg.Workers = 8
		}
	}
	e := &Engine{
		cfg:        cfg,
		waiting:    map[uint32][]parkedRec{},
		pending:    map[ident]struct{}{},
		senderSeq:  map[uint32]uint64{},
		senderBusy: map[uint32]bool{},
		senderQ:    map[uint32][]*wal.TxRecord{},
	}
	e.readyCond.L = &e.mu
	e.stateCond.L = &e.mu
	for i := 1; i <= cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker(i)
	}
	return e
}

// Workers returns the size of the worker pool.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Submit hands a record to the scheduler. It classifies the record
// (ready, parked, sender-queued, or dropped) and returns immediately;
// installation happens on the worker pool. Submit never blocks on
// apply progress. Returns false if the engine is closed (the record is
// dropped via the Drop callback).
func (e *Engine) Submit(rec *wal.TxRecord) bool {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.callDrop(rec)
		return false
	}
	drops := e.submitLocked(rec, nil)
	e.mu.Unlock()
	for _, d := range drops {
		e.callDrop(d)
	}
	return true
}

// submitLocked classifies rec, appending any immediately dropped
// records to drops (returned for calling Drop outside the lock).
func (e *Engine) submitLocked(rec *wal.TxRecord, drops []*wal.TxRecord) []*wal.TxRecord {
	if e.staleLocked(rec) {
		return append(drops, rec)
	}
	key := ident{rec.Node, rec.TxSeq}
	if _, dup := e.pending[key]; dup {
		// Identity already queued or in flight: installing it twice
		// concurrently would race, and installing it after the first
		// copy completes would be caught as stale anyway.
		return append(drops, rec)
	}
	e.pending[key] = struct{}{}

	if !wroteLocks(rec) {
		// Lock-free path: per-sender FIFO is the ordering contract.
		if e.senderBusy[rec.Node] {
			e.senderQ[rec.Node] = append(e.senderQ[rec.Node], rec)
			return drops
		}
		e.senderBusy[rec.Node] = true
		e.pushReadyLocked(rec)
		return drops
	}

	if blocked, lockID := e.blockedOnLocked(rec); blocked {
		e.parkLocked(lockID, rec)
		return drops
	}
	e.pushReadyLocked(rec)
	return drops
}

// staleLocked mirrors the serial applier's staleness rule: a record
// that wrote under locks was installed iff every written lock's chain
// has reached its sequence (chains apply in order); lock-free records
// fall back to the per-sender high-water mark. The per-sender sequence
// must NOT be consulted for lock-bearing records — one sender's
// transactions on unrelated locks may legitimately install out of
// commit order.
func (e *Engine) staleLocked(rec *wal.TxRecord) bool {
	wrote := false
	for _, l := range rec.Locks {
		if !l.Wrote {
			continue
		}
		wrote = true
		if e.cfg.Applied(l.LockID) < l.Seq {
			return false
		}
	}
	if wrote {
		return true
	}
	return rec.TxSeq <= e.senderSeq[rec.Node]
}

// blockedOnLocked returns the first written lock whose predecessor has
// not been applied yet.
func (e *Engine) blockedOnLocked(rec *wal.TxRecord) (bool, uint32) {
	for _, l := range rec.Locks {
		if l.Wrote && e.cfg.Applied(l.LockID) < l.PrevWriteSeq {
			return true, l.LockID
		}
	}
	return false, 0
}

func wroteLocks(rec *wal.TxRecord) bool {
	for _, l := range rec.Locks {
		if l.Wrote {
			return true
		}
	}
	return false
}

func (e *Engine) pushReadyLocked(rec *wal.TxRecord) {
	e.ready = append(e.ready, rec)
	e.readyCond.Signal()
}

func (e *Engine) parkLocked(lockID uint32, rec *wal.TxRecord) {
	prev := prevFor(rec, lockID)
	w := e.waiting[lockID]
	i := sort.Search(len(w), func(i int) bool { return w[i].prev > prev })
	w = append(w, parkedRec{})
	copy(w[i+1:], w[i:])
	w[i] = parkedRec{prev: prev, rec: rec}
	e.waiting[lockID] = w
	e.waitCount++
	e.parked.Store(int64(e.waitCount))
}

// prevFor returns the PrevWriteSeq rec waits for on lockID (the park
// list's sort key). parkLocked is only called with a lock
// blockedOnLocked reported, so a written entry for lockID exists.
func prevFor(rec *wal.TxRecord, lockID uint32) uint64 {
	for _, l := range rec.Locks {
		if l.Wrote && l.LockID == lockID {
			return l.PrevWriteSeq
		}
	}
	return 0
}

// worker pulls ready records, installs them, and publishes completion.
func (e *Engine) worker(id int) {
	defer e.wg.Done()
	e.mu.Lock()
	for {
		for len(e.ready) == 0 && !e.closed {
			e.readyCond.Wait()
		}
		if len(e.ready) == 0 { // closed and drained
			e.mu.Unlock()
			return
		}
		rec := e.ready[0]
		e.ready = e.ready[1:]
		e.inflight++
		e.mu.Unlock()

		err := e.cfg.Install(id, rec)

		e.mu.Lock()
		e.inflight--
		drops := e.completeLocked(rec, err)
		e.stateCond.Broadcast()
		e.mu.Unlock()

		if e.cfg.Done != nil {
			e.cfg.Done(rec, err)
		}
		for _, d := range drops {
			e.callDrop(d)
		}
		e.mu.Lock()
	}
}

// completeLocked publishes a record's completion: clears its identity,
// advances the per-sender high-water mark, releases the sender queue,
// and wakes exactly the waiters parked on the record's written locks.
func (e *Engine) completeLocked(rec *wal.TxRecord, err error) []*wal.TxRecord {
	delete(e.pending, ident{rec.Node, rec.TxSeq})
	if err == nil && rec.TxSeq > e.senderSeq[rec.Node] {
		e.senderSeq[rec.Node] = rec.TxSeq
	}
	var drops []*wal.TxRecord
	if !wroteLocks(rec) {
		// Dispatch the sender's next queued record (dropping any that
		// became stale while queued).
		q := e.senderQ[rec.Node]
		dispatched := false
		for len(q) > 0 {
			next := q[0]
			q = q[1:]
			if e.staleLocked(next) {
				delete(e.pending, ident{next.Node, next.TxSeq})
				drops = append(drops, next)
				continue
			}
			e.pushReadyLocked(next)
			dispatched = true
			break
		}
		e.senderQ[rec.Node] = q
		if !dispatched {
			e.senderBusy[rec.Node] = false
		}
		return drops
	}
	for _, l := range rec.Locks {
		if l.Wrote {
			drops = e.wakeLockLocked(l.LockID, drops)
		}
	}
	return drops
}

// wakeLockLocked pops the eligible prefix of lockID's park list — the
// records whose awaited PrevWriteSeq the chain has now reached — and
// re-evaluates only those: stale ones are dropped, ready ones
// dispatched, ones blocked on a different lock re-park there. Waiters
// deeper in the chain stay in place untouched; a stale parked record
// always satisfies prev < Seq ≤ applied, so it is within the prefix and
// cannot linger.
func (e *Engine) wakeLockLocked(lockID uint32, drops []*wal.TxRecord) []*wal.TxRecord {
	w := e.waiting[lockID]
	if len(w) == 0 {
		return drops
	}
	applied := e.cfg.Applied(lockID)
	k := sort.Search(len(w), func(i int) bool { return w[i].prev > applied })
	if k == 0 {
		return drops
	}
	eligible := w[:k]
	if k == len(w) {
		delete(e.waiting, lockID)
	} else {
		e.waiting[lockID] = w[k:]
	}
	e.waitCount -= k
	for _, pr := range eligible {
		rec := pr.rec
		if e.staleLocked(rec) {
			delete(e.pending, ident{rec.Node, rec.TxSeq})
			drops = append(drops, rec)
			continue
		}
		if blocked, id := e.blockedOnLocked(rec); blocked {
			e.parkLocked(id, rec)
			continue
		}
		e.pushReadyLocked(rec)
	}
	e.parked.Store(int64(e.waitCount))
	return drops
}

// WakeLocks re-evaluates records parked on the given locks. The
// coherency layer calls it when a local commit advances applied
// sequences outside the engine (lockmgr.Release on a written lock).
func (e *Engine) WakeLocks(lockIDs []uint32) {
	if len(lockIDs) == 0 {
		return
	}
	e.mu.Lock()
	var drops []*wal.TxRecord
	for _, id := range lockIDs {
		drops = e.wakeLockLocked(id, drops)
	}
	e.stateCond.Broadcast()
	e.mu.Unlock()
	for _, d := range drops {
		e.callDrop(d)
	}
}

// WakeAll re-evaluates every parked record (after a pull or catch-up
// advanced many chains at once).
func (e *Engine) WakeAll() {
	e.mu.Lock()
	ids := make([]uint32, 0, len(e.waiting))
	for id := range e.waiting {
		ids = append(ids, id)
	}
	var drops []*wal.TxRecord
	for _, id := range ids {
		drops = e.wakeLockLocked(id, drops)
	}
	e.stateCond.Broadcast()
	e.mu.Unlock()
	for _, d := range drops {
		e.callDrop(d)
	}
}

// Parked reports how many records are held by the interlock (the
// §3.4 gauge the serial applier exposed).
func (e *Engine) Parked() int { return int(e.parked.Load()) }

// QueueDepth reports records admitted but not yet terminal: parked,
// ready, sender-queued, or in flight.
func (e *Engine) QueueDepth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.waitCount + len(e.ready) + e.inflight
	for _, q := range e.senderQ {
		n += len(q)
	}
	return n
}

// Settle blocks until no record is ready or in flight (parked records
// do not count: they are waiting for predecessors that may never
// arrive, exactly like the serial applier's parked list after a
// drain). Returns the number of parked records at that point.
func (e *Engine) Settle() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	for (len(e.ready) > 0 || e.inflight > 0) && !e.closed {
		e.stateCond.Wait()
	}
	return e.waitCount
}

// ForceOldest force-dispatches the parked record with the smallest
// blocked sequence number, bypassing the interlock gate. Offline
// replay uses it as a stall escape for log sets with chain gaps (a
// trimmed predecessor); the online path never calls it. Returns false
// if nothing is parked.
func (e *Engine) ForceOldest() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	var best *wal.TxRecord
	var bestLock uint32
	var bestIdx int
	var bestSeq uint64
	for lockID, waiters := range e.waiting {
		for i, pr := range waiters {
			seq := forceKey(pr.rec)
			if best == nil || seq < bestSeq {
				best, bestLock, bestIdx, bestSeq = pr.rec, lockID, i, seq
			}
		}
	}
	if best == nil {
		return false
	}
	w := e.waiting[bestLock]
	e.waiting[bestLock] = append(w[:bestIdx], w[bestIdx+1:]...)
	if len(e.waiting[bestLock]) == 0 {
		delete(e.waiting, bestLock)
	}
	e.waitCount--
	e.parked.Store(int64(e.waitCount))
	e.pushReadyLocked(best)
	return true
}

// forceKey orders parked records for ForceOldest: the smallest written
// sequence number, so chains are forced in chain order.
func forceKey(rec *wal.TxRecord) uint64 {
	best := ^uint64(0)
	for _, l := range rec.Locks {
		if l.Wrote && l.Seq < best {
			best = l.Seq
		}
	}
	return best
}

// Close stops the workers after in-flight and ready records finish.
// Parked and sender-queued records are discarded via Drop. Safe to
// call once; Submit after Close returns false.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	var drops []*wal.TxRecord
	for id, waiters := range e.waiting {
		for _, pr := range waiters {
			drops = append(drops, pr.rec)
		}
		delete(e.waiting, id)
	}
	e.waitCount = 0
	e.parked.Store(0)
	for id, q := range e.senderQ {
		drops = append(drops, q...)
		delete(e.senderQ, id)
	}
	for _, d := range drops {
		delete(e.pending, ident{d.Node, d.TxSeq})
	}
	e.readyCond.Broadcast()
	e.stateCond.Broadcast()
	e.mu.Unlock()
	for _, d := range drops {
		e.callDrop(d)
	}
	e.wg.Wait()
}

func (e *Engine) callDrop(rec *wal.TxRecord) {
	if e.cfg.Drop != nil {
		e.cfg.Drop(rec)
	}
}
