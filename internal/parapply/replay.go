package parapply

import (
	"sync"
	"sync/atomic"

	"lbc/internal/wal"
)

// ReplayStats summarizes an offline replay.
type ReplayStats struct {
	Installed  int // records installed
	Duplicates int // records dropped as stale/duplicate
	Forced     int // stall escapes (chain gaps in the log set)
}

// Replay installs a batch of committed records through the dependency
// scheduler: records on disjoint lock chains install concurrently on
// `workers` goroutines while each chain (and each sender's lock-free
// stream) stays sequential. It is the recovery-side reuse of the
// online engine ("Adaptive Logging for Distributed In-memory
// Databases", arXiv:1503.03653: the dependency structure that orders
// the update stream also parallelizes its replay), used by
// rvm.Recover and coherency.CatchUp.
//
// The interlock state is seeded per lock with the smallest
// PrevWriteSeq present in recs, so a log whose older records were
// trimmed after a checkpoint starts mid-chain instead of deadlocking.
// If a chain still has an interior gap (a missing record between two
// survivors — not produced by correct logs), the stall is escaped by
// force-dispatching the oldest parked record, so Replay always
// terminates; Forced counts such escapes.
//
// install runs on worker goroutines; Replay guarantees the same
// ordering contract as Engine.Install. The first install error is
// returned after the replay drains; subsequent records still install
// (matching serial replay's bytes-before-the-error semantics as
// closely as a parallel schedule can).
func Replay(recs []*wal.TxRecord, workers int, install func(worker int, rec *wal.TxRecord) error) (ReplayStats, error) {
	var stats ReplayStats
	if len(recs) == 0 {
		return stats, nil
	}

	// Seed the applied map so the first surviving record of every
	// chain is dispatchable.
	applied := map[uint32]uint64{}
	for _, rec := range recs {
		for _, l := range rec.Locks {
			if !l.Wrote {
				continue
			}
			if cur, ok := applied[l.LockID]; !ok || l.PrevWriteSeq < cur {
				applied[l.LockID] = l.PrevWriteSeq
			}
		}
	}

	var amu sync.Mutex
	var installed, dropped atomic.Int64
	var errOnce sync.Once
	var firstErr error

	eng := New(Config{
		Workers: workers,
		Applied: func(lockID uint32) uint64 {
			amu.Lock()
			defer amu.Unlock()
			return applied[lockID]
		},
		Install: func(worker int, rec *wal.TxRecord) error {
			if err := install(worker, rec); err != nil {
				errOnce.Do(func() { firstErr = err })
				return err
			}
			amu.Lock()
			for _, l := range rec.Locks {
				if l.Wrote && applied[l.LockID] < l.Seq {
					applied[l.LockID] = l.Seq
				}
			}
			amu.Unlock()
			installed.Add(1)
			return nil
		},
		Drop: func(rec *wal.TxRecord) { dropped.Add(1) },
	})

	for _, rec := range recs {
		eng.Submit(rec)
	}
	for {
		parked := eng.Settle()
		if parked == 0 {
			break
		}
		if !eng.ForceOldest() {
			break
		}
		stats.Forced++
	}
	eng.Close()

	stats.Installed = int(installed.Load())
	stats.Duplicates = int(dropped.Load())
	// Close discards nothing here (the loop drains parked records), so
	// Duplicates counts only stale/duplicate drops.
	return stats, firstErr
}
