package chaos

import (
	"lbc/internal/bufpool"
	"lbc/internal/netproto"
)

// Transport wraps a netproto.Transport, running every outgoing send
// through the injector's fault schedule. Receives are untouched: all
// faults are injected on the sender side, which keeps the decision
// order (and so the schedule) deterministic per link.
type Transport struct {
	inner netproto.Transport
	in    *Injector
}

var (
	_ netproto.Transport    = (*Transport)(nil)
	_ netproto.VectorSender = (*Transport)(nil)
)

// WrapTransport attaches the injector to a transport.
func WrapTransport(inner netproto.Transport, in *Injector) *Transport {
	return &Transport{inner: inner, in: in}
}

// Inner returns the wrapped transport (harnesses need it for
// fault-free control traffic during recovery surgery).
func (t *Transport) Inner() netproto.Transport { return t.inner }

// Self implements netproto.Transport.
func (t *Transport) Self() netproto.NodeID { return t.inner.Self() }

// Send implements netproto.Transport, subject to the fault schedule.
func (t *Transport) Send(to netproto.NodeID, typ uint8, payload []byte) error {
	return t.in.deliver(t.inner.Send, t.inner.Self(), to, typ, payload)
}

// SendV implements netproto.VectorSender. The injector judges whole
// frames, so the parts are gathered into one pooled buffer first —
// fault decisions then consume exactly one draw per frame regardless
// of how the sender vectorized it. The injector copies anything it
// holds back, so the flattened buffer recycles on return.
func (t *Transport) SendV(to netproto.NodeID, typ uint8, parts [][]byte) error {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	buf := bufpool.Get(total)
	for _, p := range parts {
		buf = append(buf, p...)
	}
	err := t.in.deliver(t.inner.Send, t.inner.Self(), to, typ, buf)
	bufpool.Put(buf)
	return err
}

// Handle implements netproto.Transport.
func (t *Transport) Handle(typ uint8, h netproto.Handler) { t.inner.Handle(typ, h) }

// Peers implements netproto.Transport.
func (t *Transport) Peers() []netproto.NodeID { return t.inner.Peers() }

// Close implements netproto.Transport.
func (t *Transport) Close() error { return t.inner.Close() }

// Flush delivers this endpoint's reorder hold-backs through the inner
// transport, bypassing further fault decisions. Call at quiesce.
func (t *Transport) Flush() error {
	return t.in.flushHeld(t.inner.Self(), t.inner.Send)
}
