// Package chaos provides deterministic fault injection for the LBC
// stack: a seeded wrapper around the netproto transport (drops,
// duplication, reordering, delays, partitions), fault wrappers for the
// storage layer, a TCP proxy for connection-drop injection, and
// invariant checkers used by the crash/restart harness.
//
// Determinism is the organizing principle. Every random decision is
// drawn from a per-link RNG stream keyed by (seed, from, to), and
// decisions are consumed in per-link send order — so a scenario that
// drives transactions in a fixed sequence sees bit-for-bit identical
// fault schedules across runs with the same seed. Failures print the
// seed; re-running with it reproduces the exact interleaving.
//
// The injector distinguishes two fault classes, following the paper's
// failure model (§2, §4.2):
//
//   - Silent drops, duplication and reordering apply only to coherency
//     update messages (MsgUpdate/MsgUpdateStd/MsgUpdateBatch and the
//     compressed MsgUpdateBatchC by default). These are
//     the faults the per-lock sequence interlock (§3.4) and the
//     server-log pull path are designed to absorb.
//   - Partitions are visible: every send across a cut link fails with
//     netproto.ErrPeerUnreachable, for all message types. Control
//     traffic (lock tokens) must see the error so the retry loop in
//     lockmgr can re-deliver the token once the partition heals —
//     silently dropping a token would leave the lock unholdable.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"lbc/internal/netproto"
)

// Config parameterizes an Injector. Probabilities are in [0, 1] and
// are evaluated independently per message on each link's RNG stream.
type Config struct {
	// Seed keys every RNG stream. The same seed with the same send
	// sequence reproduces the same fault schedule exactly.
	Seed int64
	// DropProb silently discards an update message.
	DropProb float64
	// DupProb delivers an update message twice back-to-back.
	DupProb float64
	// ReorderProb holds an update back so the link's next update
	// overtakes it (exercises the §3.4 ordering interlock).
	ReorderProb float64
	// DelayProb sleeps for a random duration in (0, MaxDelay] before
	// the send. Applied synchronously, so per-sender FIFO order is
	// preserved; it perturbs cross-node timing only.
	DelayProb float64
	// MaxDelay bounds injected delays. Defaults to 2ms.
	MaxDelay time.Duration
	// DropTypes lists the message types eligible for silent faults
	// (drop/dup/reorder). Defaults to the coherency update types
	// {0x20, 0x21, 0x25, 0x2D}; control messages always either go
	// through or fail visibly.
	DropTypes []uint8
	// StoreFailProb injects rvm-visible errors into wrapped storage
	// operations (FaultyStore / FaultyDevice), drawn from a dedicated
	// per-wrapper RNG stream.
	StoreFailProb float64
}

func (c *Config) fill() {
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.DropTypes == nil {
		// MsgUpdate, MsgUpdateStd, MsgUpdateBatch, MsgUpdateBatchC: a
		// dropped batch frame (plain or compressed) loses every record
		// in it; the same interlock + pull path recovers, it just
		// stalls more locks at once.
		c.DropTypes = []uint8{0x20, 0x21, 0x25, 0x2D}
	}
}

// linkKey names a directed link.
type linkKey struct {
	from, to netproto.NodeID
}

// linkState is the per-directed-link fault stream.
type linkState struct {
	rng  *rand.Rand
	held *heldMsg // reorder hold-back, at most one in flight
}

type heldMsg struct {
	typ     uint8
	payload []byte
}

// Injector owns the fault schedule shared by all wrapped transports
// and stores of one cluster.
type Injector struct {
	mu        sync.Mutex
	cfg       Config
	dropTypes map[uint8]bool
	links     map[linkKey]*linkState
	cut       map[linkKey]bool
	stats     map[string]int64
}

// New creates an injector for the given configuration.
func New(cfg Config) *Injector {
	cfg.fill()
	dt := make(map[uint8]bool, len(cfg.DropTypes))
	for _, t := range cfg.DropTypes {
		dt[t] = true
	}
	return &Injector{
		cfg:       cfg,
		dropTypes: dt,
		links:     map[linkKey]*linkState{},
		cut:       map[linkKey]bool{},
		stats:     map[string]int64{},
	}
}

// Seed returns the seed the injector was built with (printed by
// harnesses so failures are reproducible).
func (in *Injector) Seed() int64 { return in.cfg.Seed }

// linkRNG derives the deterministic stream for one directed link:
// splitmix64-style mixing of (seed, from, to) so streams are
// independent and stable across runs.
func linkRNG(seed int64, from, to uint64) *rand.Rand {
	x := uint64(seed) ^ (from+1)*0x9E3779B97F4A7C15 ^ (to+1)*0xC2B2AE3D27D4EB4F
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return rand.New(rand.NewSource(int64(x)))
}

// link returns (creating on first use) the state for a directed link.
// Caller holds in.mu.
func (in *Injector) link(k linkKey) *linkState {
	ls, ok := in.links[k]
	if !ok {
		ls = &linkState{rng: linkRNG(in.cfg.Seed, uint64(k.from), uint64(k.to))}
		in.links[k] = ls
	}
	return ls
}

func (in *Injector) count(name string, n int64) {
	in.stats[name] += n
}

// Stats returns a snapshot of the injector's fault counters.
func (in *Injector) Stats() map[string]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.stats))
	for k, v := range in.stats {
		out[k] = v
	}
	return out
}

// StatLine formats the counters deterministically (sorted by name).
func (in *Injector) StatLine() string {
	st := in.Stats()
	keys := make([]string, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, st[k])
	}
	return s
}

// --- Partition control ---------------------------------------------------

// PartitionOneWay cuts the directed link from -> to.
func (in *Injector) PartitionOneWay(from, to netproto.NodeID) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.cut[linkKey{from, to}] = true
}

// Partition symmetrically cuts every link between the two groups.
func (in *Injector) Partition(a, b []netproto.NodeID) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			in.cut[linkKey{x, y}] = true
			in.cut[linkKey{y, x}] = true
		}
	}
}

// Isolate cuts node off from all the given peers, both directions.
func (in *Injector) Isolate(node netproto.NodeID, peers []netproto.NodeID) {
	in.Partition([]netproto.NodeID{node}, peers)
}

// HealLink restores the directed link from -> to.
func (in *Injector) HealLink(from, to netproto.NodeID) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.cut, linkKey{from, to})
}

// Heal removes every partition.
func (in *Injector) Heal() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.cut = map[linkKey]bool{}
}

// Partitioned reports whether the directed link from -> to is cut.
func (in *Injector) Partitioned(from, to netproto.NodeID) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cut[linkKey{from, to}]
}

// --- Send-path fault decisions -------------------------------------------

// sendFn abstracts the underlying transport send so deliver can be
// tested without a full mesh.
type sendFn func(to netproto.NodeID, typ uint8, payload []byte) error

// deliver runs one send through the fault schedule. It draws decisions
// from the link's RNG stream in a fixed order (drop, dup, reorder,
// delay) so schedules replay exactly.
func (in *Injector) deliver(send sendFn, from, to netproto.NodeID, typ uint8, payload []byte) error {
	in.mu.Lock()
	if in.cut[linkKey{from, to}] {
		in.count("partitioned_sends", 1)
		in.mu.Unlock()
		return fmt.Errorf("%w: chaos partition %d -> %d", netproto.ErrPeerUnreachable, from, to)
	}
	ls := in.link(linkKey{from, to})
	in.count("sends", 1)

	// RNG draws happen only for faultable types, and always in the
	// same order (drop, dup, reorder, delay). Control messages —
	// including the timer-driven re-announce and token-retry traffic,
	// whose send counts vary run to run — must not consume from the
	// stream, or the schedule would not replay.
	faultable := in.dropTypes[typ]
	var doDrop, doDup, doReorder bool
	var delay time.Duration
	if faultable {
		doDrop = in.cfg.DropProb > 0 && ls.rng.Float64() < in.cfg.DropProb
		doDup = in.cfg.DupProb > 0 && ls.rng.Float64() < in.cfg.DupProb
		doReorder = in.cfg.ReorderProb > 0 && ls.rng.Float64() < in.cfg.ReorderProb
		if in.cfg.DelayProb > 0 && ls.rng.Float64() < in.cfg.DelayProb {
			delay = time.Duration(ls.rng.Int63n(int64(in.cfg.MaxDelay))) + time.Microsecond
		}
	}

	if doDrop {
		in.count("drops", 1)
		in.mu.Unlock()
		return nil // silently lost on the wire
	}
	if doReorder && ls.held == nil {
		// Hold this message back; the link's next faultable send
		// overtakes it. An unflushed hold-back degrades to a drop,
		// which the update path tolerates by design.
		in.count("reorders", 1)
		ls.held = &heldMsg{typ: typ, payload: append([]byte(nil), payload...)}
		in.mu.Unlock()
		return nil
	}
	var release *heldMsg
	if faultable && ls.held != nil {
		release = ls.held
		ls.held = nil
	}
	if doDup {
		in.count("dups", 1)
	}
	if delay > 0 {
		in.count("delays", 1)
	}
	in.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	if err := send(to, typ, payload); err != nil {
		return err
	}
	if doDup {
		if err := send(to, typ, payload); err != nil {
			return err
		}
	}
	if release != nil {
		// Delivered after a later send: the receiver sees them out of
		// order and the interlock must park and re-sequence.
		if err := send(to, release.typ, release.payload); err != nil {
			return err
		}
	}
	return nil
}

// flushHeld delivers every reorder hold-back originating at self via
// the provided raw send (bypassing fault decisions, so a flush cannot
// itself be dropped). Harnesses call this at quiesce so held updates
// are not counted as drops.
func (in *Injector) flushHeld(self netproto.NodeID, send sendFn) error {
	in.mu.Lock()
	type pending struct {
		to  netproto.NodeID
		msg *heldMsg
	}
	var out []pending
	for k, ls := range in.links {
		if k.from != self || ls.held == nil {
			continue
		}
		if in.cut[k] {
			continue // still partitioned; stays held
		}
		out = append(out, pending{to: k.to, msg: ls.held})
		ls.held = nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].to < out[j].to })
	in.mu.Unlock()
	for _, p := range out {
		if err := send(p.to, p.msg.typ, p.msg.payload); err != nil {
			return err
		}
	}
	return nil
}
