package chaos

import (
	"errors"
	"fmt"

	"lbc/internal/fault"
	"lbc/internal/rvm"
	"lbc/internal/wal"
)

// Crash-point sweep: enumerate every write/sync boundary of a scripted
// multi-writer workload, simulate a disk-accurate crash at each one,
// run full recovery, and check the harness invariants. The workload is
// an RVM-level model of the coherency plane — the harness itself plays
// the deterministic lock manager (rotating writers, per-lock sequence
// chains) and the eager broadcast (each acked commit is applied to
// every other node), while the victim node's log device is a
// fault.Device whose Append/Sync boundaries are the crash points.
//
// Commit semantics mirror coherency.Tx.Commit exactly: a commit whose
// log write fails is never broadcast and never advances the lock
// chain, so the consumed sequence number simply never appears in any
// log — which CheckLockChains tolerates by construction. All commits
// are Flush mode (acked ⟺ durable); NoFlush commits are legitimately
// lossy on local logs and have no place in a durability sweep.

// CrashPointConfig parameterizes the scripted workload.
type CrashPointConfig struct {
	Seed   int64 // torn-write prefix seed (also varies payload bytes)
	Nodes  int   // logical nodes, default 3
	Locks  int   // independent lock chains, default 4
	Rounds int   // write rounds per phase (two phases), default 4
	Victim int   // node whose device faults, default 0
}

func (c CrashPointConfig) norm() CrashPointConfig {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Locks <= 0 {
		c.Locks = 4
	}
	if c.Rounds <= 0 {
		c.Rounds = 4
	}
	if c.Victim < 0 || c.Victim >= c.Nodes {
		c.Victim = 0
	}
	return c
}

const (
	cpRegion  = 1
	cpSegLen  = 256
	cpPayload = 32
)

// CrashPointFailure identifies one failed crash point: together with
// the scenario config it is a complete reproduction recipe.
type CrashPointFailure struct {
	Seed  int64
	Point int64
	Err   error
}

func (f CrashPointFailure) String() string {
	return fmt.Sprintf("seed=%d crashpoint=%d: %v", f.Seed, f.Point, f.Err)
}

// cpHarness is one workload instance: n RVMs over fault devices, the
// harness-owned lock chains, and the record of what was acked.
type cpHarness struct {
	cfg    CrashPointConfig
	rvms   []*rvm.RVM
	regs   []*rvm.Region
	devs   []*fault.Device
	stores []rvm.DataStore

	nextSeq   []uint64
	lastWrite []uint64
	acked     map[uint64]bool // victim TxSeqs acknowledged to the "client"
	dead      bool            // victim crashed
}

func newCPHarness(cfg CrashPointConfig) (*cpHarness, error) {
	h := &cpHarness{
		cfg:       cfg,
		nextSeq:   make([]uint64, cfg.Locks),
		lastWrite: make([]uint64, cfg.Locks),
		acked:     map[uint64]bool{},
	}
	for i := range h.nextSeq {
		h.nextSeq[i] = 1
	}
	for i := 0; i < cfg.Nodes; i++ {
		dev := fault.NewDevice(wal.NewMemDevice(), cfg.Seed+int64(i))
		store := rvm.NewMemStore()
		r, err := rvm.Open(rvm.Options{Node: uint32(i + 1), Log: dev, Data: store})
		if err != nil {
			return nil, fmt.Errorf("chaos: crashpoint open node %d: %w", i, err)
		}
		reg, err := r.Map(cpRegion, cfg.Locks*cpSegLen)
		if err != nil {
			return nil, fmt.Errorf("chaos: crashpoint map node %d: %w", i, err)
		}
		h.devs = append(h.devs, dev)
		h.stores = append(h.stores, store)
		h.rvms = append(h.rvms, r)
		h.regs = append(h.regs, reg)
	}
	return h, nil
}

// payload fills b with bytes derived from (seed, round, lock): the
// write schedule is a pure function of the config.
func (h *cpHarness) payload(b []byte, round, lock int) {
	base := byte(h.cfg.Seed>>8) ^ byte(h.cfg.Seed)
	for i := range b {
		b[i] = base ^ byte(round*31+lock*7+i)
	}
}

// write performs one scripted commit on node w under lock l. A crash
// of the victim's device marks it dead; an injected ENOSPC fails the
// commit cleanly (no broadcast, chain not advanced) and the node
// lives on.
func (h *cpHarness) write(w, round, l int) error {
	if h.dead && w == h.cfg.Victim {
		return nil
	}
	seq := h.nextSeq[l]
	h.nextSeq[l]++
	prev := h.lastWrite[l]

	r := h.rvms[w]
	reg := h.regs[w]
	tx := r.Begin(rvm.NoRestore)
	if err := tx.SetLock(uint32(l+1), seq, prev); err != nil {
		return err
	}
	off := uint64(l*cpSegLen + (round%(cpSegLen/cpPayload))*cpPayload)
	if err := tx.SetRange(reg, off, cpPayload); err != nil {
		return err
	}
	// Snapshot the slot so a cleanly failed commit can be rolled back
	// (Commit marks the tx done even on failure, so Abort is not an
	// option — the harness plays the application's undo).
	old := make([]byte, cpPayload)
	copy(old, reg.Bytes()[off:off+cpPayload])
	h.payload(reg.Bytes()[off:off+cpPayload], round, l)

	rec, err := tx.Commit(rvm.Flush)
	switch {
	case err == nil:
	case errors.Is(err, fault.ErrCrashed):
		// The failing record is at most torn on disk (strict-prefix
		// crash model), never complete-but-unacked, so dropping the
		// consumed seq keeps every chain consistent.
		h.dead = true
		return nil
	case errors.Is(err, fault.ErrNoSpace):
		copy(reg.Bytes()[off:off+cpPayload], old)
		return nil
	default:
		return fmt.Errorf("chaos: crashpoint commit node %d: %w", w, err)
	}

	h.lastWrite[l] = seq
	if w == h.cfg.Victim {
		h.acked[rec.TxSeq] = true
	}
	for p := 0; p < h.cfg.Nodes; p++ {
		if p == w || (h.dead && p == h.cfg.Victim) {
			continue
		}
		if _, err := h.rvms[p].ApplyRecord(rec); err != nil {
			return fmt.Errorf("chaos: crashpoint apply on node %d: %w", p, err)
		}
	}
	return nil
}

// checkpointVictim models the real checkpoint discipline on the
// victim: sweep the images to the permanent store, sync, then append
// the durable marker (two more enumerable crash points). A crash
// anywhere in the sequence leaves either no marker (replay starts
// lower — redundant but harmless) or a torn one (never decodes).
func (h *cpHarness) checkpointVictim() error {
	if h.dead {
		return nil
	}
	v := h.cfg.Victim
	img := h.regs[v].Bytes()
	cp := make([]byte, len(img))
	copy(cp, img)
	if err := h.stores[v].StoreRegion(cpRegion, cp); err != nil {
		return err
	}
	if err := h.stores[v].Sync(); err != nil {
		return err
	}
	if _, _, err := h.rvms[v].AppendCheckpointMarker(); err != nil {
		if errors.Is(err, fault.ErrCrashed) {
			h.dead = true
			return nil
		}
		return err
	}
	return nil
}

// run executes the scripted workload: Rounds rounds of rotating
// writers over every lock, a victim checkpoint, then Rounds more.
func (h *cpHarness) run() error {
	total := 2 * h.cfg.Rounds
	for round := 0; round < total; round++ {
		if round == h.cfg.Rounds {
			if err := h.checkpointVictim(); err != nil {
				return err
			}
		}
		for l := 0; l < h.cfg.Locks; l++ {
			w := (round + l) % h.cfg.Nodes
			if err := h.write(w, round, l); err != nil {
				return err
			}
		}
	}
	return nil
}

func (h *cpHarness) close() {
	for _, r := range h.rvms {
		r.Close() //nolint:errcheck // harness teardown
	}
}

// check recovers the victim's durable log and verifies the sweep
// invariants: survivor convergence, gap-free lock chains across every
// log including the recovered one, merge+recovery equivalence against
// the survivor image, and durability of every acked victim commit.
func (h *cpHarness) check() error {
	v := h.cfg.Victim
	dev := h.devs[v]
	if h.dead {
		dev.Reopen()
	}
	if _, err := rvm.Recover(dev, h.stores[v], rvm.RecoverOptions{TruncateTorn: true}); err != nil {
		return fmt.Errorf("chaos: crashpoint victim recovery: %w", err)
	}

	// 1. Survivors converge.
	images := map[uint32]map[uint32][]byte{}
	var want []byte
	for i := 0; i < h.cfg.Nodes; i++ {
		if h.dead && i == v {
			continue
		}
		img := h.regs[i].Bytes()
		cp := make([]byte, len(img))
		copy(cp, img)
		images[uint32(i+1)] = map[uint32][]byte{cpRegion: cp}
		want = cp
	}
	if err := CheckConverged(images); err != nil {
		return err
	}
	if want == nil {
		return errors.New("chaos: crashpoint run left no survivors")
	}

	// 2. Gap-free lock chains over every record that exists anywhere,
	// including the victim's recovered log.
	logs := make([]wal.Device, 0, h.cfg.Nodes)
	for i := 0; i < h.cfg.Nodes; i++ {
		logs = append(logs, h.devs[i])
	}
	recs, err := ReadLogRecords(logs...)
	if err != nil {
		return err
	}
	if err := CheckLockChains(recs); err != nil {
		return err
	}

	// 3. Merging every log and recovering from scratch reproduces the
	// survivor image — the catch-up a rejoining victim would run.
	if err := CheckMergeRecovery(logs, map[uint32][]byte{cpRegion: want}); err != nil {
		return err
	}

	// 4. Durability: every victim commit acknowledged under Flush mode
	// survived in its recovered log.
	vrecs, err := wal.ReadDevice(dev)
	if err != nil {
		return err
	}
	present := map[uint64]bool{}
	for _, rec := range vrecs {
		if !rec.Checkpoint && rec.Node == uint32(v+1) {
			present[rec.TxSeq] = true
		}
	}
	for seq := range h.acked {
		if !present[seq] {
			return fmt.Errorf("chaos: acked victim tx %d lost by crash+recovery", seq)
		}
	}
	return nil
}

// runWorkload builds a harness, lets arm schedule faults on the
// victim's device, runs the script, and returns the harness for
// inspection. The caller must close it.
func runWorkload(cfg CrashPointConfig, arm func(d *fault.Device)) (*cpHarness, error) {
	h, err := newCPHarness(cfg.norm())
	if err != nil {
		return nil, err
	}
	if arm != nil {
		arm(h.devs[h.cfg.Victim])
	}
	if err := h.run(); err != nil {
		h.close()
		return nil, err
	}
	return h, nil
}

// CountCrashPoints runs the scripted workload fault-free and returns
// the number of Append/Sync boundaries on the victim's device — the
// size of the crash-point space — plus the converged image checksum
// (a determinism fingerprint: same config, same digest).
func CountCrashPoints(cfg CrashPointConfig) (points int64, digest uint64, err error) {
	h, err := runWorkload(cfg, nil)
	if err != nil {
		return 0, 0, err
	}
	defer h.close()
	if err := h.check(); err != nil {
		return 0, 0, fmt.Errorf("chaos: fault-free crashpoint run: %w", err)
	}
	return h.devs[h.cfg.Victim].Ops(), ImageChecksum(h.regs[0].Bytes()), nil
}

// RunCrashPoint runs the workload with a simulated crash at the given
// boundary on the victim's device, recovers, and checks every
// invariant. A nil return means the crash point is safe.
func RunCrashPoint(cfg CrashPointConfig, point int64) error {
	h, err := runWorkload(cfg, func(d *fault.Device) { d.CrashAt(point) })
	if err != nil {
		return err
	}
	defer h.close()
	return h.check()
}

// SweepCrashPoints enumerates every crash point of the workload and
// runs each one, returning the boundary count and any failures, each
// a (seed, crashpoint) reproduction tuple.
func SweepCrashPoints(cfg CrashPointConfig) (points int64, failures []CrashPointFailure, err error) {
	cfg = cfg.norm()
	points, _, err = CountCrashPoints(cfg)
	if err != nil {
		return 0, nil, err
	}
	for p := int64(0); p < points; p++ {
		if rerr := RunCrashPoint(cfg, p); rerr != nil {
			failures = append(failures, CrashPointFailure{Seed: cfg.Seed, Point: p, Err: rerr})
		}
	}
	return points, failures, nil
}
