package chaos

import (
	"bytes"
	"fmt"
	"sort"

	"lbc/internal/merge"
	"lbc/internal/rvm"
	"lbc/internal/wal"
)

// This file holds the harness's invariant checkers — the properties a
// chaos run asserts after quiescing:
//
//  1. Convergence: every node's cached image of every shared region is
//     byte-identical (the coherency guarantee).
//  2. Gap-free lock chains: across all logs, each lock's sequence
//     numbers are unique and every write's PrevWriteSeq points at the
//     previous write under that lock (the §3.4 interlock metadata is
//     internally consistent).
//  3. Merge/recovery equivalence: merging the per-node logs and
//     running the standard recovery procedure over the merged log
//     reproduces exactly the converged images (the paper's central
//     claim — the redo logs hold everything needed for consistency).

// ImageChecksum returns a stable FNV-1a checksum of a region image,
// used in failure messages and reproducibility comparisons.
func ImageChecksum(data []byte) uint64 {
	var h uint64 = 0xCBF29CE484222325
	for _, b := range data {
		h ^= uint64(b)
		h *= 0x100000001B3
	}
	return h
}

// CheckConverged verifies that every node's image of every region is
// byte-identical. images maps node id -> region id -> image bytes. A
// region missing on some nodes is only compared across the nodes that
// map it.
func CheckConverged(images map[uint32]map[uint32][]byte) error {
	nodes := make([]uint32, 0, len(images))
	for n := range images {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	ref := map[uint32]struct {
		node uint32
		data []byte
	}{}
	for _, n := range nodes {
		for reg, img := range images[n] {
			r, ok := ref[reg]
			if !ok {
				ref[reg] = struct {
					node uint32
					data []byte
				}{node: n, data: img}
				continue
			}
			if !bytes.Equal(r.data, img) {
				return fmt.Errorf(
					"chaos: region %d diverged: node %d checksum %016x != node %d checksum %016x",
					reg, r.node, ImageChecksum(r.data), n, ImageChecksum(img))
			}
		}
	}
	return nil
}

// CheckLockChains verifies the per-lock sequence metadata across a set
// of committed records (typically the union of every node's log):
// sequence numbers under each lock are unique, and each write's
// PrevWriteSeq names the previous write under that lock. Records are
// deduplicated by (node, commit-seq) first, mirroring what merge and
// catch-up do, so at-least-once appends do not trip the check.
func CheckLockChains(txs []*wal.TxRecord) error {
	type identity struct {
		node uint32
		seq  uint64
	}
	seen := map[identity]bool{}
	type hold struct {
		seq       uint64
		prevWrite uint64
		wrote     bool
		node      uint32
		txSeq     uint64
	}
	perLock := map[uint32][]hold{}
	for _, tx := range txs {
		if tx.Checkpoint {
			continue
		}
		id := identity{node: tx.Node, seq: tx.TxSeq}
		if seen[id] {
			continue
		}
		seen[id] = true
		for _, l := range tx.Locks {
			perLock[l.LockID] = append(perLock[l.LockID], hold{
				seq: l.Seq, prevWrite: l.PrevWriteSeq, wrote: l.Wrote,
				node: tx.Node, txSeq: tx.TxSeq,
			})
		}
	}

	locks := make([]uint32, 0, len(perLock))
	for l := range perLock {
		locks = append(locks, l)
	}
	sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })

	for _, lockID := range locks {
		holds := perLock[lockID]
		sort.Slice(holds, func(i, j int) bool { return holds[i].seq < holds[j].seq })
		var lastWrite uint64
		for i, h := range holds {
			if i > 0 && h.seq == holds[i-1].seq {
				return fmt.Errorf(
					"chaos: lock %d held twice at seq %d (tx %d/%d and %d/%d)",
					lockID, h.seq, holds[i-1].node, holds[i-1].txSeq, h.node, h.txSeq)
			}
			if h.prevWrite != lastWrite {
				return fmt.Errorf(
					"chaos: lock %d chain gap at seq %d (tx %d/%d): PrevWriteSeq %d, want %d",
					lockID, h.seq, h.node, h.txSeq, h.prevWrite, lastWrite)
			}
			if h.wrote {
				lastWrite = h.seq
			}
		}
	}
	return nil
}

// CheckMergeRecovery merges the per-node logs, runs the standard
// recovery procedure over the merged log against an empty store, and
// verifies the recovered images match want (region id -> converged
// image). Recovery only grows a region as far as its last written
// byte, so recovered images are zero-extended to want's length before
// comparison — region images start zeroed, making that exact.
func CheckMergeRecovery(logs []wal.Device, want map[uint32][]byte) error {
	merged := wal.NewMemDevice()
	if _, err := merge.MergeTo(merged, logs...); err != nil {
		return fmt.Errorf("chaos: merge: %w", err)
	}
	data := rvm.NewMemStore()
	if _, err := rvm.Recover(merged, data, rvm.RecoverOptions{}); err != nil {
		return fmt.Errorf("chaos: recover merged log: %w", err)
	}

	regs := make([]uint32, 0, len(want))
	for id := range want {
		regs = append(regs, id)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })

	for _, id := range regs {
		img, err := data.LoadRegion(id)
		if err != nil {
			if len(bytes.TrimLeft(want[id], "\x00")) == 0 {
				continue // never written; all-zero image is equivalent
			}
			return fmt.Errorf("chaos: recovered store missing region %d: %w", id, err)
		}
		if len(img) < len(want[id]) {
			grown := make([]byte, len(want[id]))
			copy(grown, img)
			img = grown
		}
		if !bytes.Equal(img, want[id]) {
			return fmt.Errorf(
				"chaos: merge+recovery mismatch for region %d: recovered %016x, converged %016x",
				id, ImageChecksum(img), ImageChecksum(want[id]))
		}
	}
	return nil
}

// ReadLogRecords reads every complete, non-checkpoint record from the
// given devices (helper shared by harness and tests).
func ReadLogRecords(logs ...wal.Device) ([]*wal.TxRecord, error) {
	var all []*wal.TxRecord
	for i, dev := range logs {
		txs, err := wal.ReadDevice(dev)
		if err != nil {
			return nil, fmt.Errorf("chaos: read log %d: %w", i, err)
		}
		for _, tx := range txs {
			if !tx.Checkpoint {
				all = append(all, tx)
			}
		}
	}
	return all, nil
}
