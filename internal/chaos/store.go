package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"

	"lbc/internal/rvm"
	"lbc/internal/wal"
)

// ErrInjected marks a storage fault produced by the injector rather
// than the real store. Callers test with errors.Is and retry.
var ErrInjected = errors.New("chaos: injected storage fault")

// storeRNG derives the deterministic fault stream for a named storage
// wrapper (independent of the link streams).
func (in *Injector) storeRNG(name string) *rand.Rand {
	var h uint64 = 0xCBF29CE484222325
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001B3
	}
	return linkRNG(in.cfg.Seed, h, 0x5704E)
}

// storeFault draws one fault decision from rng under the injector's
// lock (wrappers share the injector's stats map).
func (in *Injector) storeFault(rng *rand.Rand, op string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.StoreFailProb > 0 && rng.Float64() < in.cfg.StoreFailProb {
		in.count("store_faults", 1)
		return fmt.Errorf("%w: %s", ErrInjected, op)
	}
	return nil
}

// FaultyStore wraps an rvm.DataStore, failing operations according to
// the injector's StoreFailProb on a stream keyed by name. Reads that
// fail do so before touching the inner store; writes fail before the
// inner write, so an injected error never leaves partial state.
type FaultyStore struct {
	inner rvm.DataStore
	in    *Injector
	rng   *rand.Rand
}

var _ rvm.DataStore = (*FaultyStore)(nil)

// WrapDataStore attaches the injector to a data store. name keys the
// fault stream — use one name per node so streams are independent.
func WrapDataStore(inner rvm.DataStore, in *Injector, name string) *FaultyStore {
	return &FaultyStore{inner: inner, in: in, rng: in.storeRNG("data/" + name)}
}

// LoadRegion implements rvm.DataStore.
func (f *FaultyStore) LoadRegion(id uint32) ([]byte, error) {
	if err := f.in.storeFault(f.rng, "LoadRegion"); err != nil {
		return nil, err
	}
	return f.inner.LoadRegion(id)
}

// StoreRegion implements rvm.DataStore.
func (f *FaultyStore) StoreRegion(id uint32, data []byte) error {
	if err := f.in.storeFault(f.rng, "StoreRegion"); err != nil {
		return err
	}
	return f.inner.StoreRegion(id, data)
}

// Regions implements rvm.DataStore.
func (f *FaultyStore) Regions() ([]uint32, error) {
	if err := f.in.storeFault(f.rng, "Regions"); err != nil {
		return nil, err
	}
	return f.inner.Regions()
}

// Sync implements rvm.DataStore.
func (f *FaultyStore) Sync() error {
	if err := f.in.storeFault(f.rng, "Sync"); err != nil {
		return err
	}
	return f.inner.Sync()
}

// FaultyDevice wraps a wal.Device, failing Append and Sync according
// to the injector's StoreFailProb. An injected Append error surfaces
// to rvm.Tx.Commit before the record reaches the log or any commit
// hook, so the transaction fails cleanly and can be retried.
type FaultyDevice struct {
	wal.Device
	in  *Injector
	rng *rand.Rand
	mu  sync.Mutex
}

// WrapDevice attaches the injector to a log device. name keys the
// fault stream.
func WrapDevice(inner wal.Device, in *Injector, name string) *FaultyDevice {
	return &FaultyDevice{Device: inner, in: in, rng: in.storeRNG("log/" + name)}
}

// Append implements wal.Device.
func (f *FaultyDevice) Append(p []byte) (int64, error) {
	f.mu.Lock()
	err := f.in.storeFault(f.rng, "Append")
	f.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return f.Device.Append(p)
}

// Sync implements wal.Device.
func (f *FaultyDevice) Sync() error {
	f.mu.Lock()
	err := f.in.storeFault(f.rng, "Sync")
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.Device.Sync()
}

// --- Connection-drop proxy -----------------------------------------------

// Proxy is a TCP pass-through in front of a storage server. Cut kills
// every live connection (a transient network drop: the server is fine,
// the client's connection is not); Close additionally stops accepting
// (a dead server, forcing failover clients to the next address).
type Proxy struct {
	ln     net.Listener
	target string

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	cuts   int
}

// NewProxy listens on a fresh localhost port and forwards connections
// to target.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy listen: %w", err)
	}
	p := &Proxy{ln: ln, target: target, conns: map[net.Conn]struct{}{}}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (give this to clients).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Cuts returns how many times Cut has fired.
func (p *Proxy) Cuts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cuts
}

func (p *Proxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			up.Close()
			return
		}
		p.conns[c] = struct{}{}
		p.conns[up] = struct{}{}
		p.mu.Unlock()
		go p.pipe(c, up)
		go p.pipe(up, c)
	}
}

func (p *Proxy) pipe(dst, src net.Conn) {
	io.Copy(dst, src)
	dst.Close()
	src.Close()
	p.mu.Lock()
	delete(p.conns, dst)
	delete(p.conns, src)
	p.mu.Unlock()
}

// Cut severs every active connection through the proxy. New
// connections are still accepted: the next client request fails, and
// its redial succeeds (transient drop).
func (p *Proxy) Cut() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.conns = map[net.Conn]struct{}{}
	p.cuts++
	p.mu.Unlock()
}

// Close stops the proxy entirely: no new connections, live ones
// severed. Failover clients advance to their next address.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.Cut()
	return err
}
