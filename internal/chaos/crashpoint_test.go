package chaos

import (
	"strings"
	"testing"

	"lbc/internal/fault"
)

func TestCrashPointCountDeterministic(t *testing.T) {
	cfg := CrashPointConfig{Seed: 42}
	n1, d1, err := CountCrashPoints(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n2, d2, err := CountCrashPoints(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 || d1 != d2 {
		t.Fatalf("count not deterministic: (%d, %016x) vs (%d, %016x)", n1, d1, n2, d2)
	}
	if n1 < 10 {
		t.Fatalf("only %d crash points enumerated; workload too small", n1)
	}
}

func TestCrashPointSweep(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		points, failures, err := SweepCrashPoints(CrashPointConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, f := range failures {
			t.Errorf("seed %d: crash point failed: %v", seed, f)
		}
		if points == 0 {
			t.Fatalf("seed %d: no crash points enumerated", seed)
		}
	}
}

func TestCrashPointSweepOtherVictims(t *testing.T) {
	// The rotation means non-zero victims crash at different workload
	// positions; sweep one seed per victim.
	for v := 0; v < 3; v++ {
		points, failures, err := SweepCrashPoints(CrashPointConfig{Seed: 5, Victim: v})
		if err != nil {
			t.Fatalf("victim %d: %v", v, err)
		}
		for _, f := range failures {
			t.Errorf("victim %d: %v", v, f)
		}
		if points == 0 {
			t.Fatalf("victim %d: empty sweep", v)
		}
	}
}

// TestCrashPointDetectsFsyncLie proves the harness has teeth: an fsync
// that acks without persisting, followed by a crash before the next
// honest sync, must surface as a durability violation.
func TestCrashPointDetectsFsyncLie(t *testing.T) {
	// Lie at the victim's first commit sync (op 1), crash on its next
	// append (op 2). The crash persists a seeded strict prefix of the
	// page cache, so whether the lied record survives depends on the
	// seed's prefix draw — deterministically per seed. The harness has
	// teeth iff some seed surfaces the acked-but-lost record.
	detected := 0
	for seed := int64(0); seed < 10; seed++ {
		cfg := CrashPointConfig{Seed: seed}.norm()
		h, err := runWorkload(cfg, func(d *fault.Device) {
			d.LieAt(1)
			d.CrashAt(2)
		})
		if err != nil {
			t.Fatal(err)
		}
		if h.devs[cfg.Victim].Lies() == 0 {
			h.close()
			t.Fatal("scheduled fsync lie never fired (op schedule changed?)")
		}
		err = h.check()
		h.close()
		if err != nil {
			// The lost acked record surfaces either as a durability
			// violation or as a broken lock chain (a later writer's
			// PrevWriteSeq names the vanished record) — both are real
			// detections of the lie.
			if !strings.Contains(err.Error(), "lost by crash+recovery") &&
				!strings.Contains(err.Error(), "chain gap") {
				t.Fatalf("seed %d: unexpected failure mode: %v", seed, err)
			}
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("fsync lie + crash passed every invariant at every seed; durability check is blind")
	}
}

// TestCrashPointENOSPC verifies an injected out-of-space append fails
// the one commit cleanly and every invariant still holds.
func TestCrashPointENOSPC(t *testing.T) {
	cfg := CrashPointConfig{Seed: 11}.norm()
	h, err := runWorkload(cfg, func(d *fault.Device) {
		d.FailAt(0) // the victim's first append
		d.FailAt(6)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.close()
	if h.dead {
		t.Fatal("ENOSPC must not kill the node")
	}
	if err := h.check(); err != nil {
		t.Fatalf("invariants after clean ENOSPC: %v", err)
	}
}
