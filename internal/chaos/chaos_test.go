package chaos

import (
	"errors"
	"fmt"
	"testing"

	"lbc/internal/netproto"
	"lbc/internal/wal"
)

// recorder captures what a deliver schedule actually put on the wire.
type recorder struct {
	events []string
}

func (r *recorder) send(to netproto.NodeID, typ uint8, payload []byte) error {
	r.events = append(r.events, fmt.Sprintf("%d/%#x/%s", to, typ, payload))
	return nil
}

// driveSchedule pushes a fixed message sequence through an injector
// and returns the delivered event trace.
func driveSchedule(in *Injector) []string {
	rec := &recorder{}
	for i := 0; i < 200; i++ {
		payload := []byte(fmt.Sprintf("m%03d", i))
		to := netproto.NodeID(2 + i%2)
		_ = in.deliver(rec.send, 1, to, 0x20, payload)
	}
	_ = in.flushHeld(1, rec.send)
	return rec.events
}

func TestScheduleReplaysBitForBit(t *testing.T) {
	a := driveSchedule(New(Config{Seed: 99, DropProb: 0.2, DupProb: 0.15, ReorderProb: 0.15}))
	b := driveSchedule(New(Config{Seed: 99, DropProb: 0.2, DupProb: 0.15, ReorderProb: 0.15}))
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
	if len(a) == 200 {
		t.Fatal("no faults fired at these probabilities; schedule is not exercising the injector")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := driveSchedule(New(Config{Seed: 1, DropProb: 0.2, DupProb: 0.15, ReorderProb: 0.15}))
	b := driveSchedule(New(Config{Seed: 2, DropProb: 0.2, DupProb: 0.15, ReorderProb: 0.15}))
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 1 and 2 produced identical schedules")
		}
	}
}

func TestPartitionIsVisibleForAllTypes(t *testing.T) {
	in := New(Config{Seed: 7})
	in.PartitionOneWay(1, 2)
	rec := &recorder{}
	for _, typ := range []uint8{0x10, 0x20, 0x23} {
		err := in.deliver(rec.send, 1, 2, typ, []byte("x"))
		if !errors.Is(err, netproto.ErrPeerUnreachable) {
			t.Fatalf("type %#x across partition: got %v, want ErrPeerUnreachable", typ, err)
		}
	}
	// Reverse direction is open under a one-way cut.
	if err := in.deliver(rec.send, 2, 1, 0x10, []byte("x")); err != nil {
		t.Fatalf("reverse direction failed: %v", err)
	}
	in.Heal()
	if err := in.deliver(rec.send, 1, 2, 0x20, []byte("x")); err != nil {
		t.Fatalf("after heal: %v", err)
	}
	if len(rec.events) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(rec.events))
	}
}

func TestOnlyUpdateTypesDropSilently(t *testing.T) {
	in := New(Config{Seed: 3, DropProb: 1.0})
	rec := &recorder{}
	// Control traffic is never silently dropped, even at DropProb 1.
	for i := 0; i < 20; i++ {
		if err := in.deliver(rec.send, 1, 2, 0x10, []byte("tok")); err != nil {
			t.Fatalf("control send errored: %v", err)
		}
	}
	if len(rec.events) != 20 {
		t.Fatalf("control messages delivered: %d, want 20", len(rec.events))
	}
	// Update traffic all drops.
	for i := 0; i < 20; i++ {
		if err := in.deliver(rec.send, 1, 2, 0x20, []byte("upd")); err != nil {
			t.Fatalf("update send errored: %v", err)
		}
	}
	if len(rec.events) != 20 {
		t.Fatalf("updates leaked through at DropProb 1: %d events", len(rec.events))
	}
	if in.Stats()["drops"] != 20 {
		t.Fatalf("drops counter = %d, want 20", in.Stats()["drops"])
	}
}

func TestReorderSwapsAndFlushDrains(t *testing.T) {
	in := New(Config{Seed: 5, ReorderProb: 1.0})
	rec := &recorder{}
	// First message is held, second overtakes it and releases it.
	_ = in.deliver(rec.send, 1, 2, 0x20, []byte("a"))
	if len(rec.events) != 0 {
		t.Fatalf("first message should be held, got %v", rec.events)
	}
	_ = in.deliver(rec.send, 1, 2, 0x20, []byte("b"))
	if len(rec.events) != 2 || rec.events[0] != "2/0x20/b" || rec.events[1] != "2/0x20/a" {
		t.Fatalf("expected swapped delivery [b a], got %v", rec.events)
	}
	// A lone hold-back drains on flush.
	_ = in.deliver(rec.send, 1, 2, 0x20, []byte("c"))
	if err := in.flushHeld(1, rec.send); err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != 3 || rec.events[2] != "2/0x20/c" {
		t.Fatalf("flush did not drain hold-back: %v", rec.events)
	}
}

func TestFaultyDeviceDeterministicFailures(t *testing.T) {
	run := func() []bool {
		in := New(Config{Seed: 11, StoreFailProb: 0.3})
		dev := WrapDevice(wal.NewMemDevice(), in, "n1")
		var outcome []bool
		for i := 0; i < 50; i++ {
			_, err := dev.Append([]byte("rec"))
			outcome = append(outcome, err == nil)
			if err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error type: %v", err)
			}
		}
		return outcome
	}
	a, b := run(), run()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedule diverged at op %d", i)
		}
		if !a[i] {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("no storage faults fired at StoreFailProb 0.3")
	}
}

func TestCheckLockChains(t *testing.T) {
	mk := func(node uint32, txSeq uint64, lock uint32, seq, prev uint64) *wal.TxRecord {
		return &wal.TxRecord{
			Node: node, TxSeq: txSeq,
			Locks:  []wal.LockRec{{LockID: lock, Seq: seq, PrevWriteSeq: prev, Wrote: true}},
			Ranges: []wal.RangeRec{{Region: 1, Off: 0, Data: []byte{1}}},
		}
	}
	good := []*wal.TxRecord{
		mk(1, 1, 9, 1, 0),
		mk(2, 1, 9, 2, 1),
		mk(1, 2, 9, 3, 2),
	}
	if err := CheckLockChains(good); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	// Duplicate identity (a failover retry) must be tolerated.
	if err := CheckLockChains(append(good, mk(2, 1, 9, 2, 1))); err != nil {
		t.Fatalf("at-least-once duplicate rejected: %v", err)
	}
	// A gap — seq 3 claims its predecessor write was 1, but seq 2 wrote.
	bad := []*wal.TxRecord{
		mk(1, 1, 9, 1, 0),
		mk(2, 1, 9, 2, 1),
		mk(1, 2, 9, 3, 1),
	}
	if err := CheckLockChains(bad); err == nil {
		t.Fatal("gapped chain accepted")
	}
	// Two holders at the same sequence number.
	dup := []*wal.TxRecord{
		mk(1, 1, 9, 1, 0),
		mk(2, 1, 9, 1, 0),
	}
	if err := CheckLockChains(dup); err == nil {
		t.Fatal("duplicate sequence accepted")
	}
}

func TestCheckConverged(t *testing.T) {
	ok := map[uint32]map[uint32][]byte{
		1: {7: []byte{1, 2, 3}},
		2: {7: []byte{1, 2, 3}},
	}
	if err := CheckConverged(ok); err != nil {
		t.Fatalf("converged images rejected: %v", err)
	}
	bad := map[uint32]map[uint32][]byte{
		1: {7: []byte{1, 2, 3}},
		2: {7: []byte{1, 2, 4}},
	}
	if err := CheckConverged(bad); err == nil {
		t.Fatal("diverged images accepted")
	}
}
