package chaos_test

import (
	"testing"

	"lbc"
)

// These are the acceptance tests for the chaos harness: every named
// scenario — partition heal, crash/restart catch-up, storage failover
// — must pass its invariants (converged images, gap-free lock chains,
// merge+recovery equivalence), and a fixed seed must reproduce the
// run bit for bit.

func runTwice(t *testing.T, scenario string, seed int64) *lbc.ChaosReport {
	t.Helper()
	first, err := lbc.RunChaosScenario(scenario, seed)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	second, err := lbc.RunChaosScenario(scenario, seed)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if first.Digest != second.Digest {
		t.Fatalf("seed %d not reproducible: digest %016x vs %016x",
			seed, first.Digest, second.Digest)
	}
	if first.Commits != second.Commits || first.Records != second.Records {
		t.Fatalf("seed %d not reproducible: commits %d/%d records %d/%d",
			seed, first.Commits, second.Commits, first.Records, second.Records)
	}
	if first.Records == 0 {
		t.Fatal("scenario committed nothing")
	}
	return first
}

func TestPartitionHealScenario(t *testing.T) {
	rep := runTwice(t, "partition-heal", 42)
	if rep.Faults["partitioned_sends"] == 0 {
		t.Error("partition never blocked a send")
	}
	if rep.Faults["drops"] == 0 && rep.Faults["reorders"] == 0 {
		t.Error("no update faults fired; scenario is not exercising the injector")
	}
}

func TestCrashRestartScenario(t *testing.T) {
	rep := runTwice(t, "crash-restart", 42)
	if rep.Records != rep.Commits {
		t.Errorf("records %d != commits %d: restart duplicated or lost records",
			rep.Records, rep.Commits)
	}
}

func TestStoreFailoverScenario(t *testing.T) {
	rep := runTwice(t, "store-failover", 42)
	if rep.Faults["proxy_cuts"] == 0 {
		t.Error("no connection drops were injected")
	}
	if rep.Records != rep.Commits {
		t.Errorf("records %d != commits %d after failover", rep.Records, rep.Commits)
	}
}

func TestEvictRejoinScenario(t *testing.T) {
	rep := runTwice(t, "evict-rejoin", 42)
	if rep.Records != rep.Commits {
		t.Errorf("records %d != commits %d: eviction or rejoin lost committed records",
			rep.Records, rep.Commits)
	}
	if rep.Faults["drops"] == 0 && rep.Faults["reorders"] == 0 && rep.Faults["dups"] == 0 {
		t.Error("no update faults fired; scenario is not exercising the injector")
	}
}

func TestStoreQuorumFailoverScenario(t *testing.T) {
	rep := runTwice(t, "store-quorum-failover", 42)
	if rep.Records != rep.Commits {
		t.Errorf("records %d != commits %d: replica failover lost acknowledged writes",
			rep.Records, rep.Commits)
	}
	if rep.Faults["replica_kills"] == 0 {
		t.Error("no replica was killed; scenario is not exercising failover")
	}
	if rep.Faults["view_changes"] == 0 {
		t.Error("replacement did not go through a view change")
	}
	if rep.Faults["catchup_bytes"] == 0 {
		t.Error("replacement joined without a snapshot/log-tail transfer")
	}
}

func TestMigrateEvictScenario(t *testing.T) {
	rep := runTwice(t, "migrate-evict", 42)
	if rep.Records != rep.Commits {
		t.Errorf("records %d != commits %d: home migration or eviction lost committed records",
			rep.Records, rep.Commits)
	}
	if rep.Faults["lock_migrations"] == 0 {
		t.Error("no lock home migrated; scenario is not exercising the handoff")
	}
	if rep.Faults["drops"] == 0 && rep.Faults["reorders"] == 0 && rep.Faults["dups"] == 0 {
		t.Error("no update faults fired; scenario is not exercising the injector")
	}
}

func TestCorruptLogRepairScenario(t *testing.T) {
	rep := runTwice(t, "corrupt-log-repair", 42)
	if rep.Records != rep.Commits {
		t.Errorf("records %d != commits %d: repair duplicated or lost records",
			rep.Records, rep.Commits)
	}
	if rep.Faults["log_corruption_detected"] == 0 {
		t.Error("no corruption detected; scenario is not exercising the repair path")
	}
	if rep.Faults["repair_records_pulled"] == 0 {
		t.Error("no records pulled past the damage")
	}
}

// TestScenarioSeedSweep runs every scenario across a few seeds —
// different schedules, same invariants.
func TestScenarioSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep in -short mode")
	}
	for _, sc := range lbc.ChaosScenarios() {
		for seed := int64(100); seed < 104; seed++ {
			if _, err := lbc.RunChaosScenario(sc, seed); err != nil {
				t.Errorf("%v", err)
			}
		}
	}
}

// TestUnknownScenario pins the error path chaosrun relies on.
func TestUnknownScenario(t *testing.T) {
	if _, err := lbc.RunChaosScenario("nope", 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
