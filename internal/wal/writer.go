package wal

import "sync"

// Writer serializes committed transactions onto a Device in the
// standard encoding. It reuses its encode buffer across commits,
// mirroring RVM's gather-at-commit structure (the data is copied out of
// the application's virtual memory exactly once, at commit).
type Writer struct {
	mu      sync.Mutex
	dev     Device
	buf     []byte
	entries int64
	bytes   int64
}

// NewWriter returns a Writer appending to dev.
func NewWriter(dev Device) *Writer { return &Writer{dev: dev} }

// Commit appends tx to the log. When flush is true the log is forced to
// durable storage before Commit returns (RVM's flush mode); when false
// the record may sit in volatile buffers (no-flush mode).
func (w *Writer) Commit(tx *TxRecord, flush bool) (off int64, n int, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = AppendStandard(w.buf[:0], tx)
	off, err = w.dev.Append(w.buf)
	if err != nil {
		return 0, 0, err
	}
	if flush {
		if err := w.dev.Sync(); err != nil {
			return 0, 0, err
		}
	}
	w.entries++
	w.bytes += int64(len(w.buf))
	return off, len(w.buf), nil
}

// Entries returns the number of records written through this Writer.
func (w *Writer) Entries() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.entries
}

// Bytes returns the total encoded bytes written through this Writer.
func (w *Writer) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}
