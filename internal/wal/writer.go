package wal

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lbc/internal/metrics"
)

// ErrSyncFailed reports that a committed record was appended to the log
// device but the force to durable storage failed. The record occupies
// real log space — a recovery scan may replay it if the device retained
// the bytes — so Commit returns the true offset and size alongside this
// error, and the writer's entry/byte accounting includes the record.
// Callers must treat the transaction as not durably committed, but must
// NOT assume the append never happened.
var ErrSyncFailed = errors.New("wal: log sync failed")

// Writer serializes committed transactions onto a Device in the
// standard encoding. It reuses its encode buffer across commits,
// mirroring RVM's gather-at-commit structure (the data is copied out of
// the application's virtual memory exactly once, at commit).
type Writer struct {
	mu      sync.Mutex
	dev     Device
	buf     []byte
	stats   *metrics.Stats
	entries int64
	bytes   int64
}

// NewWriter returns a Writer appending to dev.
func NewWriter(dev Device) *Writer { return &Writer{dev: dev} }

// SetStats directs per-force latency samples (metrics.HistFsyncNS) to s.
// Call before the writer is shared between goroutines.
func (w *Writer) SetStats(s *metrics.Stats) { w.stats = s }

// Commit appends tx to the log. When flush is true the log is forced to
// durable storage before Commit returns (RVM's flush mode); when false
// the record may sit in volatile buffers (no-flush mode).
//
// Error semantics: if the append itself fails, nothing reached the
// device and Commit returns (0, 0, err). If the append succeeds but the
// flush-mode force fails, the record IS on the device: Commit returns
// the real offset and size with an error wrapping ErrSyncFailed, and
// Entries/Bytes count the record.
func (w *Writer) Commit(tx *TxRecord, flush bool) (off int64, n int, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = AppendStandard(w.buf[:0], tx)
	off, err = w.dev.Append(w.buf)
	if err != nil {
		return 0, 0, err
	}
	// The record is on the device from here on: accounting must include
	// it even if the force below fails, so log-volume bookkeeping and
	// recovery scans agree about what the device holds.
	w.entries++
	w.bytes += int64(len(w.buf))
	if flush {
		var t0 time.Time
		if w.stats != nil {
			t0 = time.Now()
		}
		serr := w.dev.Sync()
		if w.stats != nil {
			w.stats.Observe(metrics.HistFsyncNS, time.Since(t0).Nanoseconds())
		}
		if serr != nil {
			return off, len(w.buf), fmt.Errorf("%w: %w", ErrSyncFailed, serr)
		}
	}
	return off, len(w.buf), nil
}

// Entries returns the number of records written through this Writer.
func (w *Writer) Entries() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.entries
}

// Bytes returns the total encoded bytes written through this Writer.
func (w *Writer) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}
