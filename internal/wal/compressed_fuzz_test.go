package wal

import (
	"errors"
	"testing"
)

// boundaryTxs are seed records straddling the compressed encoding's
// width boundaries: address deltas at the u16/u24 edges (2^16, 2^24)
// and range sizes at the u8/u16 edges.
func boundaryTxs() []*TxRecord {
	deltas := []uint64{0, 1<<16 - 1, 1 << 16, 1<<24 - 1, 1 << 24}
	var txs []*TxRecord
	for _, d := range deltas {
		txs = append(txs, &TxRecord{
			Node: 1, TxSeq: 1,
			Ranges: []RangeRec{
				{Region: 1, Off: 0, Data: make([]byte, 4)},
				{Region: 1, Off: 4 + d, Data: make([]byte, 4)},
			},
		})
	}
	for _, sz := range []int{1, 255, 256, 65535, 65536} {
		txs = append(txs, &TxRecord{
			Node: 2, TxSeq: 7,
			Ranges: []RangeRec{{Region: 3, Off: 128, Data: make([]byte, sz)}},
		})
	}
	txs = append(txs, sampleTx())
	txs = append(txs, &TxRecord{
		Node: 9, TxSeq: 3,
		Locks: []LockRec{{LockID: 4, Seq: 11, PrevWriteSeq: 10, Wrote: true}},
	})
	return txs
}

// FuzzCompressedRoundTrip feeds arbitrary bytes to DecodeCompressed:
// anything it accepts must re-encode and re-decode to the same record,
// and nothing may panic or misparse silently. The seed corpus pins the
// delta-width boundaries (2^16, 2^24) and the size-width edges.
func FuzzCompressedRoundTrip(f *testing.F) {
	for _, tx := range boundaryTxs() {
		enc, err := AppendCompressed(nil, tx)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := DecodeCompressed(b)
		if err != nil {
			return // rejected input: only the error path matters
		}
		enc, err := AppendCompressed(nil, rec)
		if err != nil {
			// A decoded record always fits the limits the encoder
			// enforces (u16 lock count, u32 range sizes).
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		back, err := DecodeCompressed(enc)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if !txEqual(rec, back) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, rec)
		}
	})
}

func TestCompressedBoundaryRoundTrips(t *testing.T) {
	for i, tx := range boundaryTxs() {
		got, err := DecodeCompressed(mustCompress(t, tx))
		if err != nil {
			t.Fatalf("boundary %d: %v", i, err)
		}
		if !txEqual(got, tx) {
			t.Fatalf("boundary %d: round trip mismatch", i)
		}
	}
}

func TestCompressedRejectsTooManyLocks(t *testing.T) {
	tx := &TxRecord{Node: 1, TxSeq: 1, Locks: make([]LockRec, 1<<16)}
	for i := range tx.Locks {
		tx.Locks[i] = LockRec{LockID: uint32(i), Seq: 1}
	}
	if _, err := AppendCompressed(nil, tx); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	// The overflow fallback: the standard encoding's u32 lock count
	// carries the same record losslessly.
	got, _, err := DecodeStandard(AppendStandard(nil, tx))
	if err != nil {
		t.Fatal(err)
	}
	if !txEqual(got, tx) {
		t.Fatal("standard-encoding fallback round trip failed")
	}
}

func TestCompressedDecodeTypedErrors(t *testing.T) {
	// A range record with no preceding region id: flags byte selects
	// delta-u16 addressing with no region context.
	enc := mustCompress(t, &TxRecord{Node: 1, TxSeq: 1})
	// Rewrite nRanges (last 4 bytes of the lock-free header) to 1 and
	// append a context-free range record.
	enc[len(enc)-4] = 1
	enc = append(enc, 0 /* flags: no region, delta16, size8 */, 0, 0 /* delta */, 0 /* size */)
	_, err := DecodeCompressed(enc)
	if !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("err = %v, want ErrBadEncoding", err)
	}

	// Trailing garbage after a well-formed record.
	enc2 := append(mustCompress(t, sampleTx()), 0xEE)
	if _, err := DecodeCompressed(enc2); !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("trailing bytes: err = %v, want ErrBadEncoding", err)
	}
}
