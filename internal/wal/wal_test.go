package wal

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func sampleTx() *TxRecord {
	return &TxRecord{
		Node:  3,
		TxSeq: 42,
		Locks: []LockRec{
			{LockID: 7, Seq: 9, PrevWriteSeq: 5, Wrote: true},
			{LockID: 8, Seq: 2, PrevWriteSeq: 0, Wrote: false},
		},
		Ranges: []RangeRec{
			{Region: 1, Off: 100, Data: []byte("hello")},
			{Region: 1, Off: 300, Data: []byte("world!")},
			{Region: 2, Off: 50, Data: bytes.Repeat([]byte{0xAB}, 300)},
		},
	}
}

func txEqual(a, b *TxRecord) bool {
	if a.Node != b.Node || a.TxSeq != b.TxSeq || a.Checkpoint != b.Checkpoint {
		return false
	}
	if len(a.Locks) != len(b.Locks) || len(a.Ranges) != len(b.Ranges) {
		return false
	}
	for i := range a.Locks {
		if a.Locks[i] != b.Locks[i] {
			return false
		}
	}
	for i := range a.Ranges {
		if a.Ranges[i].Region != b.Ranges[i].Region || a.Ranges[i].Off != b.Ranges[i].Off ||
			!bytes.Equal(a.Ranges[i].Data, b.Ranges[i].Data) {
			return false
		}
	}
	return true
}

func TestStandardRoundTrip(t *testing.T) {
	tx := sampleTx()
	enc := AppendStandard(nil, tx)
	if len(enc) != StandardSize(tx) {
		t.Fatalf("encoded %d bytes, StandardSize says %d", len(enc), StandardSize(tx))
	}
	got, n, err := DecodeStandard(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d", n, len(enc))
	}
	if !txEqual(got, tx) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tx)
	}
}

func TestStandardCheckpointFlag(t *testing.T) {
	tx := &TxRecord{Node: 1, TxSeq: 5, Checkpoint: true}
	enc := AppendStandard(nil, tx)
	got, _, err := DecodeStandard(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Checkpoint {
		t.Fatal("checkpoint flag lost")
	}
}

func TestStandardHeaderIs104Bytes(t *testing.T) {
	// The size gap between a 1-range and 0-range record must be exactly
	// header + data; this pins the RVM-compatible 104-byte header.
	empty := &TxRecord{Node: 1, TxSeq: 1}
	one := &TxRecord{Node: 1, TxSeq: 1, Ranges: []RangeRec{{Region: 1, Off: 0, Data: make([]byte, 8)}}}
	gap := StandardSize(one) - StandardSize(empty)
	if gap != StdRangeHeaderLen+8 {
		t.Fatalf("per-range overhead = %d, want %d", gap-8, StdRangeHeaderLen)
	}
}

func TestStandardDetectsCorruption(t *testing.T) {
	enc := AppendStandard(nil, sampleTx())
	for _, i := range []int{0, 10, 40, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xFF
		if _, _, err := DecodeStandard(bad); err == nil {
			t.Fatalf("corruption at byte %d not detected", i)
		}
	}
}

func TestStandardTruncatedPrefix(t *testing.T) {
	enc := AppendStandard(nil, sampleTx())
	for _, n := range []int{0, 1, entryHeaderLen - 1, entryHeaderLen + 3, len(enc) - 1} {
		if _, _, err := DecodeStandard(enc[:n]); err != ErrTruncated {
			t.Fatalf("prefix len %d: err = %v, want ErrTruncated", n, err)
		}
	}
}

// mustCompress encodes tx with AppendCompressed, failing the test on
// overflow — for records known to fit the compressed limits.
func mustCompress(t testing.TB, tx *TxRecord) []byte {
	t.Helper()
	enc, err := AppendCompressed(nil, tx)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestCompressedRoundTrip(t *testing.T) {
	tx := sampleTx()
	enc := mustCompress(t, tx)
	if len(enc) != CompressedSize(tx) {
		t.Fatalf("encoded %d bytes, CompressedSize says %d", len(enc), CompressedSize(tx))
	}
	got, err := DecodeCompressed(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !txEqual(got, tx) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tx)
	}
}

func TestCompressedMinHeaderIsFourBytes(t *testing.T) {
	// Two nearby small ranges: the second must cost exactly 4 bytes of
	// header (flags + u16 delta + u8 size), the paper's minimum.
	tx := &TxRecord{
		Node: 1, TxSeq: 1,
		Ranges: []RangeRec{
			{Region: 1, Off: 0, Data: make([]byte, 8)},
			{Region: 1, Off: 200, Data: make([]byte, 8)},
		},
	}
	one := &TxRecord{Node: 1, TxSeq: 1, Ranges: tx.Ranges[:1]}
	gap := CompressedSize(tx) - CompressedSize(one)
	if gap != MinCompressedHeader+8 {
		t.Fatalf("subsequent-range cost = %d, want %d", gap, MinCompressedHeader+8)
	}
}

func TestCompressedHeaderBytes(t *testing.T) {
	tx := sampleTx()
	hdr := CompressedHeaderBytes(tx)
	total := CompressedSize(tx)
	fixed := 4 + 8 + 2 + len(tx.Locks)*cLockRecLen + 4
	if hdr+tx.DataBytes()+fixed != total {
		t.Fatalf("header accounting: hdr=%d data=%d fixed=%d total=%d",
			hdr, tx.DataBytes(), fixed, total)
	}
	if hdr < MinCompressedHeader*len(tx.Ranges) {
		t.Fatalf("header bytes %d below minimum", hdr)
	}
}

func TestCompressedLargeDelta(t *testing.T) {
	// Deltas beyond 24 bits force absolute addressing.
	tx := &TxRecord{
		Node: 1, TxSeq: 1,
		Ranges: []RangeRec{
			{Region: 1, Off: 0, Data: make([]byte, 4)},
			{Region: 1, Off: 1 << 30, Data: make([]byte, 4)},
		},
	}
	got, err := DecodeCompressed(mustCompress(t, tx))
	if err != nil {
		t.Fatal(err)
	}
	if !txEqual(got, tx) {
		t.Fatal("large-delta round trip failed")
	}
}

func TestCompressedOutOfOrderRanges(t *testing.T) {
	// Ranges not in ascending order (legal only via absolute encoding).
	tx := &TxRecord{
		Node: 1, TxSeq: 1,
		Ranges: []RangeRec{
			{Region: 1, Off: 5000, Data: make([]byte, 4)},
			{Region: 1, Off: 100, Data: make([]byte, 4)},
		},
	}
	got, err := DecodeCompressed(mustCompress(t, tx))
	if err != nil {
		t.Fatal(err)
	}
	if !txEqual(got, tx) {
		t.Fatal("out-of-order round trip failed")
	}
}

func TestCompressedSmallerThanStandard(t *testing.T) {
	tx := sampleTx()
	if c, s := CompressedSize(tx), StandardSize(tx); c >= s {
		t.Fatalf("compressed %d >= standard %d", c, s)
	}
}

func TestPropertyEncodingsRoundTrip(t *testing.T) {
	f := func(seed int64, nRanges, nLocks uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tx := &TxRecord{Node: r.Uint32(), TxSeq: r.Uint64()}
		for i := 0; i < int(nLocks%8); i++ {
			tx.Locks = append(tx.Locks, LockRec{
				LockID: r.Uint32(), Seq: r.Uint64(), PrevWriteSeq: r.Uint64(), Wrote: r.Intn(2) == 0,
			})
		}
		off := uint64(0)
		for i := 0; i < int(nRanges%16); i++ {
			off += uint64(r.Intn(1 << 20))
			data := make([]byte, r.Intn(500)+1)
			r.Read(data)
			tx.Ranges = append(tx.Ranges, RangeRec{Region: uint32(r.Intn(3)), Off: off, Data: data})
			off += uint64(len(data))
		}
		std, _, err := DecodeStandard(AppendStandard(nil, tx))
		if err != nil || !txEqual(std, tx) {
			t.Logf("standard round trip failed: %v", err)
			return false
		}
		enc, err := AppendCompressed(nil, tx)
		if err != nil {
			t.Logf("compressed encode failed: %v", err)
			return false
		}
		cmp, err := DecodeCompressed(enc)
		if err != nil || !txEqual(cmp, tx) {
			t.Logf("compressed round trip failed: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestScannerMultipleRecords(t *testing.T) {
	var log []byte
	var want []*TxRecord
	for i := 0; i < 20; i++ {
		tx := &TxRecord{Node: 1, TxSeq: uint64(i),
			Ranges: []RangeRec{{Region: 1, Off: uint64(i * 100), Data: []byte{byte(i), 1, 2}}}}
		want = append(want, tx)
		log = AppendStandard(log, tx)
	}
	got, torn, _, err := ReadAll(bytes.NewReader(log), 0)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("clean log reported torn")
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if !txEqual(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestScannerTornTail(t *testing.T) {
	var log []byte
	log = AppendStandard(log, &TxRecord{Node: 1, TxSeq: 1,
		Ranges: []RangeRec{{Region: 1, Off: 0, Data: []byte{1, 2, 3, 4}}}})
	goodLen := int64(len(log))
	log = AppendStandard(log, &TxRecord{Node: 1, TxSeq: 2,
		Ranges: []RangeRec{{Region: 1, Off: 8, Data: []byte{5, 6, 7, 8}}}})
	log = log[:goodLen+30] // crash mid-append

	got, torn, tornAt, err := ReadAll(bytes.NewReader(log), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].TxSeq != 1 {
		t.Fatalf("got %d records", len(got))
	}
	if !torn || tornAt != goodLen {
		t.Fatalf("torn=%v at %d, want true at %d", torn, tornAt, goodLen)
	}
}

func TestScannerCorruptMiddleStops(t *testing.T) {
	var log []byte
	log = AppendStandard(log, &TxRecord{Node: 1, TxSeq: 1})
	first := int64(len(log))
	log = AppendStandard(log, &TxRecord{Node: 1, TxSeq: 2})
	third := int64(len(log))
	log = AppendStandard(log, &TxRecord{Node: 1, TxSeq: 3})
	log[first+10] ^= 0xFF // corrupt second record

	// A sound record exists past the damage, so this is interior
	// corruption, not a clean torn tail.
	_, _, _, err := ReadAll(bytes.NewReader(log), 0)
	var ice *InteriorCorruptionError
	if !errors.As(err, &ice) {
		t.Fatalf("err = %v, want *InteriorCorruptionError", err)
	}
	if ice.Offset != first || ice.Resume != third {
		t.Fatalf("corruption at %d resume %d, want %d/%d",
			ice.Offset, ice.Resume, first, third)
	}
}

func testDevice(t *testing.T, dev Device) {
	t.Helper()
	off, err := dev.Append([]byte("abc"))
	if err != nil || off != 0 {
		t.Fatalf("append 1: off=%d err=%v", off, err)
	}
	off, err = dev.Append([]byte("defg"))
	if err != nil || off != 3 {
		t.Fatalf("append 2: off=%d err=%v", off, err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	if sz, _ := dev.Size(); sz != 7 {
		t.Fatalf("size = %d", sz)
	}
	rc, err := dev.Open(3)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(rc)
	rc.Close()
	if string(data) != "defg" {
		t.Fatalf("read %q", data)
	}
	if err := dev.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if sz, _ := dev.Size(); sz != 3 {
		t.Fatalf("size after truncate = %d", sz)
	}
	if err := dev.Reset(); err != nil {
		t.Fatal(err)
	}
	if sz, _ := dev.Size(); sz != 0 {
		t.Fatalf("size after reset = %d", sz)
	}
}

func TestFileDevice(t *testing.T) {
	dev, err := OpenFileDevice(filepath.Join(t.TempDir(), "log"))
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	testDevice(t, dev)
}

func TestMemDevice(t *testing.T) {
	dev := NewMemDevice()
	testDevice(t, dev)
	if dev.Syncs() != 1 {
		t.Fatalf("syncs = %d", dev.Syncs())
	}
}

func TestWriterCommit(t *testing.T) {
	dev := NewMemDevice()
	w := NewWriter(dev)
	tx1 := &TxRecord{Node: 1, TxSeq: 1, Ranges: []RangeRec{{Region: 1, Off: 0, Data: []byte{1}}}}
	tx2 := &TxRecord{Node: 1, TxSeq: 2, Ranges: []RangeRec{{Region: 1, Off: 8, Data: []byte{2}}}}
	if _, _, err := w.Commit(tx1, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Commit(tx2, true); err != nil {
		t.Fatal(err)
	}
	if dev.Syncs() != 1 {
		t.Fatalf("syncs = %d, want 1 (only flush-mode commit)", dev.Syncs())
	}
	if w.Entries() != 2 {
		t.Fatalf("entries = %d", w.Entries())
	}
	txs, err := ReadDevice(dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 2 || txs[0].TxSeq != 1 || txs[1].TxSeq != 2 {
		t.Fatalf("device scan = %d records", len(txs))
	}
	if w.Bytes() != int64(StandardSize(tx1)+StandardSize(tx2)) {
		t.Fatalf("bytes accounting off: %d", w.Bytes())
	}
}

func TestDataBytesAndWrote(t *testing.T) {
	tx := sampleTx()
	if tx.DataBytes() != 5+6+300 {
		t.Fatalf("DataBytes = %d", tx.DataBytes())
	}
	if !tx.Wrote() {
		t.Fatal("Wrote() = false")
	}
	ro := &TxRecord{Node: 1, TxSeq: 1, Locks: []LockRec{{LockID: 1, Seq: 1}}}
	if ro.Wrote() {
		t.Fatal("read-only tx reports Wrote")
	}
}

func BenchmarkAppendStandard(b *testing.B) {
	tx := sampleTx()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendStandard(buf[:0], tx)
	}
}

func BenchmarkAppendCompressed(b *testing.B) {
	tx := sampleTx()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ = AppendCompressed(buf[:0], tx)
	}
}

func BenchmarkDecodeCompressed(b *testing.B) {
	enc := mustCompress(b, sampleTx())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeCompressed(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMemDeviceCrashUnsynced(t *testing.T) {
	d := NewMemDevice()
	d.Append([]byte("durable"))
	d.Sync()
	d.Append([]byte("volatile"))
	d.CrashUnsynced()
	if sz, _ := d.Size(); sz != 7 {
		t.Fatalf("size after crash = %d", sz)
	}
	// Truncating below the watermark moves the watermark too.
	d.Truncate(3)
	d.Append([]byte("xy"))
	d.CrashUnsynced()
	if sz, _ := d.Size(); sz != 3 {
		t.Fatalf("size = %d", sz)
	}
}

func TestScannerSkipsNothingAcrossFillBoundaries(t *testing.T) {
	// Records larger than the scanner's 64 KB read chunk must still
	// decode (the fill path compacts and extends the buffer).
	var log []byte
	big := make([]byte, 200<<10)
	for i := range big {
		big[i] = byte(i)
	}
	log = AppendStandard(log, &TxRecord{Node: 1, TxSeq: 1,
		Ranges: []RangeRec{{Region: 1, Off: 0, Data: big}}})
	log = AppendStandard(log, &TxRecord{Node: 1, TxSeq: 2,
		Ranges: []RangeRec{{Region: 1, Off: 0, Data: []byte("after")}}})
	got, torn, _, err := ReadAll(bytes.NewReader(log), 0)
	if err != nil || torn {
		t.Fatalf("err=%v torn=%v", err, torn)
	}
	if len(got) != 2 || len(got[0].Ranges[0].Data) != len(big) {
		t.Fatalf("got %d records", len(got))
	}
	if !bytes.Equal(got[0].Ranges[0].Data, big) {
		t.Fatal("large record corrupted across fill boundary")
	}
}

func TestCheckpointRecordsSkippedByRecoveryScan(t *testing.T) {
	var log []byte
	log = AppendStandard(log, &TxRecord{Node: 1, TxSeq: 1, Checkpoint: true})
	log = AppendStandard(log, &TxRecord{Node: 1, TxSeq: 2,
		Ranges: []RangeRec{{Region: 1, Off: 0, Data: []byte("real")}}})
	got, _, _, err := ReadAll(bytes.NewReader(log), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Checkpoint || got[1].Checkpoint {
		t.Fatalf("scan = %+v", got)
	}
}

func TestWriterConcurrentCommits(t *testing.T) {
	dev := NewMemDevice()
	w := NewWriter(dev)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tx := &TxRecord{Node: uint32(g + 1), TxSeq: uint64(i + 1),
					Ranges: []RangeRec{{Region: 1, Off: uint64(i * 8), Data: []byte{byte(g), byte(i)}}}}
				if _, _, err := w.Commit(tx, false); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	txs, err := ReadDevice(dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 200 {
		t.Fatalf("read %d records", len(txs))
	}
	// No interleaved/corrupt records: per-sender sequences are intact.
	perNode := map[uint32]uint64{}
	for _, tx := range txs {
		if tx.TxSeq != perNode[tx.Node]+1 {
			t.Fatalf("node %d: seq %d after %d", tx.Node, tx.TxSeq, perNode[tx.Node])
		}
		perNode[tx.Node] = tx.TxSeq
	}
}

func TestCheckpointLSNRoundTrip(t *testing.T) {
	tx := &TxRecord{Node: 3, Checkpoint: true, CheckpointLSN: 0xDEADBEEF12}
	enc := AppendStandard(nil, tx)
	if len(enc) != StandardSize(tx) {
		t.Fatalf("encoded %d bytes, StandardSize says %d", len(enc), StandardSize(tx))
	}
	got, n, err := DecodeStandard(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d", n, len(enc))
	}
	if !got.Checkpoint || got.CheckpointLSN != tx.CheckpointLSN {
		t.Fatalf("marker round trip: ckpt=%v lsn=%#x, want lsn=%#x",
			got.Checkpoint, got.CheckpointLSN, tx.CheckpointLSN)
	}
	// Non-marker records must not pay (or parse) the LSN trailer.
	plain := &TxRecord{Node: 1, TxSeq: 2,
		Ranges: []RangeRec{{Region: 1, Off: 0, Data: []byte("x")}}}
	if StandardSize(plain) != len(AppendStandard(nil, plain)) {
		t.Fatal("plain record size mismatch")
	}
}

func TestScannerPos(t *testing.T) {
	var log []byte
	recs := []*TxRecord{
		{Node: 1, TxSeq: 1, Ranges: []RangeRec{{Region: 1, Off: 0, Data: []byte("aa")}}},
		{Node: 1, Checkpoint: true, CheckpointLSN: 42},
		{Node: 1, TxSeq: 2, Ranges: []RangeRec{{Region: 1, Off: 8, Data: []byte("bb")}}},
	}
	var ends []int64
	for _, r := range recs {
		log = AppendStandard(log, r)
		ends = append(ends, int64(len(log)))
	}
	sc := NewScanner(bytes.NewReader(log), 0)
	for i := range recs {
		if _, err := sc.Next(); err != nil {
			t.Fatal(err)
		}
		if sc.Pos() != ends[i] {
			t.Fatalf("after record %d Pos()=%d, want %d", i, sc.Pos(), ends[i])
		}
	}
}

func TestMemDeviceTrimHead(t *testing.T) {
	d := NewMemDevice()
	if _, err := d.Append([]byte("headtail")); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.TrimHead(4); err != nil {
		t.Fatal(err)
	}
	if got := string(d.Bytes()); got != "tail" {
		t.Fatalf("after trim: %q", got)
	}
	// Trimmed bytes stay durable: a crash must not lose the tail.
	d.CrashUnsynced()
	if got := string(d.Bytes()); got != "tail" {
		t.Fatalf("after crash: %q", got)
	}
	if err := d.TrimHead(100); err == nil {
		t.Fatal("trim beyond end must fail")
	}
}

func TestFileDeviceTrimHead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	d, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Append([]byte("headtail")); err != nil {
		t.Fatal(err)
	}
	if err := d.TrimHead(4); err != nil {
		t.Fatal(err)
	}
	if sz, _ := d.Size(); sz != 4 {
		t.Fatalf("size after trim = %d", sz)
	}
	// The device keeps working through the swapped descriptor, and Open
	// reads the renamed file.
	if _, err := d.Append([]byte("+more")); err != nil {
		t.Fatal(err)
	}
	rc, err := d.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	all, _ := io.ReadAll(rc)
	rc.Close()
	if string(all) != "tail+more" {
		t.Fatalf("log contents after trim+append: %q", all)
	}
	if _, err := os.Stat(path + ".trim"); !os.IsNotExist(err) {
		t.Fatalf("temp trim file left behind: %v", err)
	}
}
