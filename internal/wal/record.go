// Package wal implements the write-ahead redo log at the heart of
// log-based coherency. The same committed transaction record serves two
// masters (paper §2):
//
//   - recoverability: records are appended to a durable log in the
//     standard encoding, whose 104-byte range headers mirror RVM's
//     on-disk format, and replayed into the database file on recovery;
//   - coherency: the identical new-value information is re-encoded with
//     compressed 4-24 byte range headers (§3.2) and broadcast to peer
//     nodes, which apply it directly to their cached memory images.
//
// Lock records embedded in each transaction record carry the per-lock
// sequence numbers that order updates from different nodes, both on the
// wire (receiver interlock, §3.4) and during log merging (cmd/logmerge).
package wal

import (
	"errors"
	"fmt"
)

// LockRec describes one lock acquired by a transaction (§3.4). Seq is
// the lock's sequence number assigned at acquire. PrevWriteSeq is the
// sequence number of the last *writing* holder before this transaction;
// receivers apply a record only once the update with that sequence
// number has been applied, which preserves global update order even
// when intervening holders were read-only.
type LockRec struct {
	LockID       uint32
	Seq          uint64
	PrevWriteSeq uint64
	Wrote        bool // whether this transaction modified data under the lock
}

// RangeRec is a new-value record: Data holds the committed bytes at
// [Off, Off+len(Data)) within region Region. Addresses are region
// offsets rather than raw virtual addresses so that peers with
// differently-placed mappings can still apply them.
type RangeRec struct {
	Region uint32
	Off    uint64
	Data   []byte
}

// End returns the exclusive upper bound of the range.
func (r RangeRec) End() uint64 { return r.Off + uint64(len(r.Data)) }

// TxRecord is one committed transaction: the unit of atomicity, of
// durability, and of coherency propagation.
type TxRecord struct {
	Node       uint32 // committing node
	TxSeq      uint64 // per-node commit sequence number
	Checkpoint bool   // true for checkpoint markers (no locks/ranges)
	// CheckpointLSN is meaningful only on checkpoint markers: the log
	// offset at which the marker was appended, i.e. the cut point below
	// which every record was reflected in the permanent images when the
	// marker became durable (§3.5). Recovery positions its replay by the
	// marker's physical offset in the stream — a head trim shifts
	// offsets, so the recorded LSN is validation and observability, not
	// a seek target.
	CheckpointLSN uint64
	Locks         []LockRec
	Ranges        []RangeRec // sorted by (Region, Off) at commit
}

// DataBytes returns the total number of new-value bytes in the record.
func (tx *TxRecord) DataBytes() int {
	var n int
	for _, r := range tx.Ranges {
		n += len(r.Data)
	}
	return n
}

// Wrote reports whether the transaction modified any data.
func (tx *TxRecord) Wrote() bool { return len(tx.Ranges) > 0 }

// Validation errors shared by both decoders.
var (
	ErrBadMagic  = errors.New("wal: bad record magic")
	ErrBadCRC    = errors.New("wal: checksum mismatch")
	ErrTruncated = errors.New("wal: truncated record")
)

// validate performs structural sanity checks shared by the decoders.
func (tx *TxRecord) validate() error {
	for i, r := range tx.Ranges {
		if len(r.Data) == 0 {
			return fmt.Errorf("wal: empty range %d in tx %d/%d", i, tx.Node, tx.TxSeq)
		}
	}
	return nil
}
