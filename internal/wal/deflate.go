package wal

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Payload compression for batched coherency frames. The "compressed"
// encoding elsewhere in this package is header compression (§3.2: 4-24
// byte range headers); this file adds the orthogonal wire-level layer:
// DEFLATE over the concatenated bytes of a whole batch frame. Both
// directions run through pooled flate state, so the steady-state cost
// is the compression itself, not allocator churn.

// ErrBadDeflate reports a malformed or truncated DEFLATE stream.
var ErrBadDeflate = errors.New("wal: malformed deflate stream")

// ErrDeflateOverflow reports a DEFLATE stream whose inflated size
// exceeds the caller's limit (a decompression bomb, or a corrupt
// length header upstream).
var ErrDeflateOverflow = errors.New("wal: deflate output exceeds limit")

// appendWriter adapts append-to-slice as an io.Writer so a pooled
// flate.Writer can emit directly into a caller-owned buffer.
type appendWriter struct{ buf []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

var deflaters = sync.Pool{New: func() any {
	// BestSpeed: the batcher sits on the commit path, and the payloads
	// (range headers + new-value bytes) compress well even at the
	// cheapest level.
	w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return w
}}

var inflaters = sync.Pool{New: func() any {
	return flate.NewReader(bytes.NewReader(nil))
}}

// CompressChunks appends the DEFLATE stream of the concatenation of
// chunks to dst and returns the extended slice. Feeding the chunks to
// the compressor one by one keeps the call zero-copy: the concatenated
// input is never materialized.
func CompressChunks(dst []byte, chunks ...[]byte) []byte {
	aw := &appendWriter{buf: dst}
	fw := deflaters.Get().(*flate.Writer)
	fw.Reset(aw)
	for _, c := range chunks {
		fw.Write(c) // appendWriter cannot fail
	}
	fw.Close()
	deflaters.Put(fw)
	return aw.buf
}

// Decompress appends the inflated bytes of src to dst, rejecting
// streams that produce more than limit bytes. The output buffer grows
// in bounded steps as decompressed data actually materializes, so a
// hostile stream cannot force an allocation larger than it can fill.
// On error the original dst (without partial output) is returned.
func Decompress(dst, src []byte, limit int) ([]byte, error) {
	fr := inflaters.Get().(io.ReadCloser)
	defer inflaters.Put(fr)
	if err := fr.(flate.Resetter).Reset(bytes.NewReader(src), nil); err != nil {
		return dst, fmt.Errorf("%w: %v", ErrBadDeflate, err)
	}
	const chunk = 64 << 10
	base := len(dst)
	read := 0
	for {
		// Request up to limit+1 bytes in total: the extra byte is how a
		// stream that inflates past the limit is detected.
		step := limit + 1 - read
		if step > chunk {
			step = chunk
		}
		start := len(dst)
		dst = append(dst, make([]byte, step)...)
		n, err := io.ReadFull(fr, dst[start:])
		dst = dst[:start+n]
		read += n
		if read > limit {
			return dst[:base], fmt.Errorf("%w: > %d bytes", ErrDeflateOverflow, limit)
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// End of stream inside the budget. A source truncated at a
			// block boundary is indistinguishable from a clean end here,
			// so callers that know the expected size must verify it
			// (the batch decoder checks the declared length exactly).
			return dst, nil
		}
		if err != nil {
			return dst[:base], fmt.Errorf("%w: %v", ErrBadDeflate, err)
		}
	}
}
