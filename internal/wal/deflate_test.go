package wal

import (
	"bytes"
	"errors"
	"testing"
)

// deflateSample builds a compressible multi-chunk input: repeated
// structure the way a batch frame repeats headers and page images.
func deflateSample() [][]byte {
	var chunks [][]byte
	for i := 0; i < 8; i++ {
		c := make([]byte, 200)
		for j := range c {
			c[j] = byte(i + j%16)
		}
		chunks = append(chunks, c)
	}
	return chunks
}

func TestDeflateRoundTripChunks(t *testing.T) {
	chunks := deflateSample()
	want := bytes.Join(chunks, nil)

	// The chunked compressor must produce the same logical stream as
	// compressing the concatenation would: inflate and compare.
	comp := CompressChunks(nil, chunks...)
	if len(comp) >= len(want) {
		t.Fatalf("patterned input did not compress: %d -> %d bytes", len(want), len(comp))
	}
	got, err := Decompress(nil, comp, len(want))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("round trip mismatch: %d bytes back, want %d", len(got), len(want))
	}
}

func TestDeflateAppendsPreservePrefix(t *testing.T) {
	chunks := deflateSample()
	want := bytes.Join(chunks, nil)
	prefix := []byte("hdr:")

	comp := CompressChunks(append([]byte(nil), prefix...), chunks...)
	if !bytes.HasPrefix(comp, prefix) {
		t.Fatal("CompressChunks clobbered the destination prefix")
	}
	out, err := Decompress(append([]byte(nil), prefix...), comp[len(prefix):], len(want))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("Decompress clobbered the destination prefix")
	}
	if !bytes.Equal(out[len(prefix):], want) {
		t.Fatal("round trip with prefixes mismatched")
	}
}

func TestDecompressLimitRejectsBomb(t *testing.T) {
	// 1 MiB of zeros deflates to a few hundred bytes; a 4 KiB limit
	// must reject it without allocating anywhere near the real size.
	comp := CompressChunks(nil, make([]byte, 1<<20))
	out, err := Decompress([]byte("keep"), comp, 4096)
	if !errors.Is(err, ErrDeflateOverflow) {
		t.Fatalf("err = %v, want ErrDeflateOverflow", err)
	}
	if string(out) != "keep" {
		t.Fatalf("error path returned %q, want original dst", out)
	}
}

func TestDecompressExactLimitAccepted(t *testing.T) {
	data := bytes.Repeat([]byte{0xAB}, 1000)
	comp := CompressChunks(nil, data)
	out, err := Decompress(nil, comp, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("exact-limit round trip mismatch")
	}
}

func TestDecompressCorruptStream(t *testing.T) {
	comp := CompressChunks(nil, deflateSample()...)
	// Flip bits in the middle of the stream: either a decode error or
	// (if the damage lands in literal bytes) wrong output — but never
	// a panic. The typed-error contract is what this pins.
	corrupt := append([]byte(nil), comp...)
	corrupt[len(corrupt)/2] ^= 0xFF
	corrupt[len(corrupt)/2+1] ^= 0xFF
	if out, err := Decompress([]byte("x"), corrupt, 1<<20); err != nil {
		if !errors.Is(err, ErrBadDeflate) && !errors.Is(err, ErrDeflateOverflow) {
			t.Fatalf("corrupt stream returned untyped error %v", err)
		}
		if string(out) != "x" {
			t.Fatal("error path did not return the original dst")
		}
	}

	// Garbage that is not a deflate stream at all.
	if _, err := Decompress(nil, []byte{0xFE, 0xED, 0xFA, 0xCE, 0x00}, 1024); !errors.Is(err, ErrBadDeflate) {
		t.Fatalf("garbage stream: err = %v, want ErrBadDeflate", err)
	}
}

// FuzzDecompress throws arbitrary bytes at the inflater under a fixed
// limit: every outcome must be a typed error or an in-budget output,
// never a panic or an allocation beyond the limit. A truncated valid
// stream may return short output successfully (flate cannot tell a
// block-boundary cut from a clean end) — the batch decoder's declared
// length check covers that, not this layer.
func FuzzDecompress(f *testing.F) {
	const limit = 1 << 16
	f.Add(CompressChunks(nil, deflateSample()...))
	f.Add(CompressChunks(nil, make([]byte, limit+1))) // just over the limit
	trunc := CompressChunks(nil, bytes.Repeat([]byte("abcdef"), 100))
	f.Add(trunc[:len(trunc)/2])
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, b []byte) {
		out, err := Decompress([]byte("pfx"), b, limit)
		if err != nil {
			if !errors.Is(err, ErrBadDeflate) && !errors.Is(err, ErrDeflateOverflow) {
				t.Fatalf("untyped error: %v", err)
			}
			if string(out) != "pfx" {
				t.Fatalf("error path returned partial output (%d bytes)", len(out))
			}
			return
		}
		if len(out) < 3 || string(out[:3]) != "pfx" {
			t.Fatal("success path lost the dst prefix")
		}
		if len(out)-3 > limit {
			t.Fatalf("output %d bytes exceeds limit %d", len(out)-3, limit)
		}
	})
}
