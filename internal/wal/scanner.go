package wal

import (
	"errors"
	"fmt"
	"io"
)

// Scanner iterates over the standard-encoded records of a log stream.
// It tolerates a torn final record (a crash mid-append): scanning stops
// cleanly and TornAt reports the offset at which the log should be
// truncated before further use.
type Scanner struct {
	r      io.Reader
	base   int64 // stream offset of buf[0]
	buf    []byte
	pos    int // consumed bytes within buf
	err    error
	torn   bool
	tornAt int64
}

// NewScanner returns a Scanner reading records from r. base is the
// log offset corresponding to the start of r (pass 0 when reading from
// the head).
func NewScanner(r io.Reader, base int64) *Scanner {
	return &Scanner{r: r, base: base}
}

// Next returns the next record, or io.EOF after the last complete
// record. A torn tail also ends iteration with io.EOF; check Torn.
func (s *Scanner) Next() (*TxRecord, error) {
	if s.err != nil {
		return nil, s.err
	}
	for {
		tx, n, err := DecodeStandard(s.buf[s.pos:])
		switch {
		case err == nil:
			s.pos += n
			return tx, nil
		case errors.Is(err, ErrTruncated):
			if readErr := s.fill(); readErr != nil {
				if readErr == io.EOF {
					if s.pos < len(s.buf) {
						// Partial record at end of stream: torn tail.
						s.torn = true
						s.tornAt = s.base + int64(s.pos)
					}
					s.err = io.EOF
					return nil, io.EOF
				}
				s.err = fmt.Errorf("wal: read log: %w", readErr)
				return nil, s.err
			}
		case errors.Is(err, ErrBadCRC) || errors.Is(err, ErrBadMagic):
			// A corrupt record also terminates the usable log; whether
			// it is torn or bit-rotted is indistinguishable here.
			s.torn = true
			s.tornAt = s.base + int64(s.pos)
			s.err = io.EOF
			return nil, io.EOF
		default:
			s.err = err
			return nil, err
		}
	}
}

// fill reads more data into the buffer, compacting consumed bytes.
func (s *Scanner) fill() error {
	if s.pos > 0 {
		s.base += int64(s.pos)
		s.buf = append(s.buf[:0], s.buf[s.pos:]...)
		s.pos = 0
	}
	chunk := make([]byte, 64<<10)
	n, err := s.r.Read(chunk)
	if n > 0 {
		s.buf = append(s.buf, chunk[:n]...)
		return nil
	}
	if err == nil {
		err = io.EOF
	}
	return err
}

// Torn reports whether the scan ended at an incomplete or corrupt
// record, and at which log offset the valid prefix ends.
func (s *Scanner) Torn() (bool, int64) { return s.torn, s.tornAt }

// Pos returns the stream offset immediately after the last record
// returned by Next — the offset at which the next record starts.
// Recovery uses it to note the physical position of a checkpoint
// marker while streaming.
func (s *Scanner) Pos() int64 { return s.base + int64(s.pos) }

// ReadAll scans every complete record from r (starting at offset base)
// and returns them along with torn-tail information.
func ReadAll(r io.Reader, base int64) (txs []*TxRecord, torn bool, tornAt int64, err error) {
	sc := NewScanner(r, base)
	for {
		tx, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, false, 0, err
		}
		txs = append(txs, tx)
	}
	torn, tornAt = sc.Torn()
	return txs, torn, tornAt, nil
}

// ReadDevice scans all complete records currently on dev.
func ReadDevice(dev Device) ([]*TxRecord, error) {
	rc, err := dev.Open(0)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	txs, _, _, err := ReadAll(rc, 0)
	return txs, err
}
