package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrInteriorCorruption is the sentinel matched by errors.Is when a
// scan hits a corrupt record with sound records beyond it. The actual
// error value is an *InteriorCorruptionError carrying the offsets.
var ErrInteriorCorruption = errors.New("wal: interior corruption")

// InteriorCorruptionError reports a corrupt record that is *not* a torn
// tail: complete, CRC-clean records exist past the damage, so treating
// the corruption as end-of-log would silently drop committed data.
// Offset is where the damage starts; Resume is the offset of the next
// sound record.
type InteriorCorruptionError struct {
	Offset int64
	Resume int64
}

func (e *InteriorCorruptionError) Error() string {
	return fmt.Sprintf("wal: interior corruption at offset %d (sound records resume at %d)", e.Offset, e.Resume)
}

// Is makes errors.Is(err, ErrInteriorCorruption) match.
func (e *InteriorCorruptionError) Is(target error) bool { return target == ErrInteriorCorruption }

// CorruptRange is one damaged byte range skipped by a salvage scan:
// [From, To) held no decodable record.
type CorruptRange struct {
	From int64
	To   int64
}

// Scanner iterates over the standard-encoded records of a log stream.
// It tolerates a torn final record (a crash mid-append): scanning stops
// cleanly and TornAt reports the offset at which the log should be
// truncated before further use. A corrupt record with sound records
// beyond it ends the scan with *InteriorCorruptionError instead, unless
// salvage mode is enabled, in which case the damaged range is recorded
// and iteration continues at the next sound record.
type Scanner struct {
	r       io.Reader
	base    int64 // stream offset of buf[0]
	buf     []byte
	pos     int // consumed bytes within buf
	err     error
	torn    bool
	tornAt  int64
	salvage bool
	holes   []CorruptRange
}

// NewScanner returns a Scanner reading records from r. base is the
// log offset corresponding to the start of r (pass 0 when reading from
// the head).
func NewScanner(r io.Reader, base int64) *Scanner {
	return &Scanner{r: r, base: base}
}

// Salvage switches the scanner into salvage mode: interior corruption
// is skipped (and reported via Corrupt) rather than ending the scan.
func (s *Scanner) Salvage() { s.salvage = true }

// Corrupt returns the damaged ranges skipped so far in salvage mode.
func (s *Scanner) Corrupt() []CorruptRange { return s.holes }

// Next returns the next record, or io.EOF after the last complete
// record. A torn tail also ends iteration with io.EOF; check Torn.
// Corruption with sound records beyond it returns
// *InteriorCorruptionError (match with errors.Is(err,
// ErrInteriorCorruption)) unless salvage mode is on.
func (s *Scanner) Next() (*TxRecord, error) {
	if s.err != nil {
		return nil, s.err
	}
	for {
		tx, n, err := DecodeStandard(s.buf[s.pos:])
		switch {
		case err == nil:
			s.pos += n
			return tx, nil
		case errors.Is(err, ErrTruncated):
			if readErr := s.fill(); readErr != nil {
				if readErr == io.EOF {
					if s.pos < len(s.buf) {
						// Partial record at end of stream: torn tail.
						s.torn = true
						s.tornAt = s.base + int64(s.pos)
					}
					s.err = io.EOF
					return nil, io.EOF
				}
				s.err = fmt.Errorf("wal: read log: %w", readErr)
				return nil, s.err
			}
		case errors.Is(err, ErrBadCRC) || errors.Is(err, ErrBadMagic):
			// Probe forward: a complete record past the damage means
			// interior corruption (real data would be lost by stopping
			// here); no such record means the familiar torn tail.
			at, ok, probeErr := s.probeSound()
			if probeErr != nil {
				s.err = fmt.Errorf("wal: read log: %w", probeErr)
				return nil, s.err
			}
			if !ok {
				s.torn = true
				s.tornAt = s.base + int64(s.pos)
				s.err = io.EOF
				return nil, io.EOF
			}
			from := s.base + int64(s.pos)
			to := s.base + int64(at)
			if !s.salvage {
				s.err = &InteriorCorruptionError{Offset: from, Resume: to}
				return nil, s.err
			}
			s.holes = append(s.holes, CorruptRange{From: from, To: to})
			s.pos = at
		default:
			s.err = err
			return nil, err
		}
	}
}

// probeSound searches past the corrupt record at s.pos for the next
// offset holding a complete, CRC-clean record, returning its buffer
// index. ok is false when the rest of the stream holds no provably
// sound record (tail corruption). Read errors other than EOF abort.
func (s *Scanner) probeSound() (at int, ok bool, err error) {
	probe := s.pos + 1
	for {
		// Make sure a 4-byte magic window is buffered at probe.
		for probe+4 > len(s.buf) {
			if merr := s.more(); merr != nil {
				if merr == io.EOF {
					return 0, false, nil
				}
				return 0, false, merr
			}
		}
		if binary.LittleEndian.Uint32(s.buf[probe:]) != txMagic {
			probe++
			continue
		}
		_, _, derr := DecodeStandard(s.buf[probe:])
		switch {
		case derr == nil:
			return probe, true, nil
		case errors.Is(derr, ErrTruncated):
			// Could be a real record spanning the buffered window —
			// pull more data and retry; at end of stream the candidate
			// is unprovable, so move past it.
			if merr := s.more(); merr != nil {
				if merr == io.EOF {
					probe++
					continue
				}
				return 0, false, merr
			}
		default:
			// Decodes as garbage (bad CRC, bad inner magic, bogus
			// lengths): a coincidental magic match inside the damage.
			probe++
		}
	}
}

// fill reads more data into the buffer, compacting consumed bytes.
func (s *Scanner) fill() error {
	if s.pos > 0 {
		s.base += int64(s.pos)
		s.buf = append(s.buf[:0], s.buf[s.pos:]...)
		s.pos = 0
	}
	return s.more()
}

// more appends the next chunk of the stream to the buffer without
// compacting, so probe indices into buf stay valid.
func (s *Scanner) more() error {
	chunk := make([]byte, 64<<10)
	n, err := s.r.Read(chunk)
	if n > 0 {
		s.buf = append(s.buf, chunk[:n]...)
		return nil
	}
	if err == nil {
		err = io.EOF
	}
	return err
}

// Torn reports whether the scan ended at an incomplete or corrupt
// record, and at which log offset the valid prefix ends.
func (s *Scanner) Torn() (bool, int64) { return s.torn, s.tornAt }

// Pos returns the stream offset immediately after the last record
// returned by Next — the offset at which the next record starts.
// Recovery uses it to note the physical position of a checkpoint
// marker while streaming.
func (s *Scanner) Pos() int64 { return s.base + int64(s.pos) }

// ReadAll scans every complete record from r (starting at offset base)
// and returns them along with torn-tail information. Interior
// corruption surfaces as *InteriorCorruptionError.
func ReadAll(r io.Reader, base int64) (txs []*TxRecord, torn bool, tornAt int64, err error) {
	sc := NewScanner(r, base)
	for {
		tx, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, false, 0, err
		}
		txs = append(txs, tx)
	}
	torn, tornAt = sc.Torn()
	return txs, torn, tornAt, nil
}

// SalvageAll scans r tolerating interior corruption: damaged ranges
// are skipped and reported, and every sound record on either side is
// returned. A trailing torn record is reported as usual.
func SalvageAll(r io.Reader, base int64) (txs []*TxRecord, holes []CorruptRange, torn bool, tornAt int64, err error) {
	sc := NewScanner(r, base)
	sc.Salvage()
	for {
		tx, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, false, 0, err
		}
		txs = append(txs, tx)
	}
	torn, tornAt = sc.Torn()
	return txs, sc.Corrupt(), torn, tornAt, nil
}

// ReadDevice scans all complete records currently on dev.
func ReadDevice(dev Device) ([]*TxRecord, error) {
	rc, err := dev.Open(0)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	txs, _, _, err := ReadAll(rc, 0)
	return txs, err
}
