package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// corruptionLog builds a log of n standard records and returns the
// encoded bytes plus the offset of each record.
func corruptionLog(n int) ([]byte, []int64) {
	var buf []byte
	offs := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		offs = append(offs, int64(len(buf)))
		tx := &TxRecord{
			Node:  1,
			TxSeq: uint64(i + 1),
			Locks: []LockRec{{LockID: 7, Seq: uint64(i + 1), Wrote: true}},
			Ranges: []RangeRec{{
				Region: 1,
				Off:    uint64(i) * 16,
				Data:   bytes.Repeat([]byte{byte(i + 1)}, 16),
			}},
		}
		buf = AppendStandard(buf, tx)
	}
	return buf, offs
}

func TestScannerInteriorCorruption(t *testing.T) {
	buf, offs := corruptionLog(5)
	// Flip a payload byte inside record 2 (CRC breaks, magic intact).
	buf[offs[2]+entryHeaderLen+lockRecLen+StdRangeHeaderLen+3] ^= 0xff

	txs, _, _, err := ReadAll(bytes.NewReader(buf), 0)
	if !errors.Is(err, ErrInteriorCorruption) {
		t.Fatalf("ReadAll err = %v (%d records), want ErrInteriorCorruption", err, len(txs))
	}
	var ice *InteriorCorruptionError
	if !errors.As(err, &ice) {
		t.Fatalf("err %T does not unwrap to *InteriorCorruptionError", err)
	}
	if ice.Offset != offs[2] {
		t.Errorf("damage offset = %d, want %d", ice.Offset, offs[2])
	}
	if ice.Resume != offs[3] {
		t.Errorf("resume offset = %d, want %d", ice.Resume, offs[3])
	}
}

func TestScannerSalvageSkipsHole(t *testing.T) {
	buf, offs := corruptionLog(6)
	buf[offs[1]+entryHeaderLen+4] ^= 0x5a // corrupt record 1
	buf[offs[4]+entryHeaderLen+4] ^= 0x5a // corrupt record 4

	txs, holes, torn, _, err := SalvageAll(bytes.NewReader(buf), 0)
	if err != nil {
		t.Fatalf("SalvageAll: %v", err)
	}
	if torn {
		t.Errorf("salvage reported torn tail on interior-only damage")
	}
	var seqs []uint64
	for _, tx := range txs {
		seqs = append(seqs, tx.TxSeq)
	}
	want := []uint64{1, 3, 4, 6}
	if len(seqs) != len(want) {
		t.Fatalf("salvaged seqs = %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("salvaged seqs = %v, want %v", seqs, want)
		}
	}
	if len(holes) != 2 {
		t.Fatalf("holes = %v, want 2 ranges", holes)
	}
	if holes[0].From != offs[1] || holes[0].To != offs[2] {
		t.Errorf("hole 0 = %+v, want [%d,%d)", holes[0], offs[1], offs[2])
	}
	if holes[1].From != offs[4] || holes[1].To != offs[5] {
		t.Errorf("hole 1 = %+v, want [%d,%d)", holes[1], offs[4], offs[5])
	}
}

func TestScannerTailCorruptionStaysTorn(t *testing.T) {
	buf, offs := corruptionLog(4)
	buf[offs[3]+entryHeaderLen+4] ^= 0x5a // corrupt the final record

	txs, torn, tornAt, err := ReadAll(bytes.NewReader(buf), 0)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(txs) != 3 {
		t.Fatalf("got %d records, want 3", len(txs))
	}
	if !torn || tornAt != offs[3] {
		t.Errorf("torn=%v tornAt=%d, want torn at %d", torn, tornAt, offs[3])
	}
}

func TestScannerProbeIgnoresFakeMagic(t *testing.T) {
	buf, offs := corruptionLog(3)
	// Stamp a bogus record magic inside record 1's payload and then
	// break record 1's CRC: the probe must skip the coincidental magic
	// (it decodes as garbage) and resume at the real record 2.
	p := offs[1] + entryHeaderLen + lockRecLen + StdRangeHeaderLen
	binary.LittleEndian.PutUint32(buf[p:], txMagic)

	_, _, _, err := ReadAll(bytes.NewReader(buf), 0)
	var ice *InteriorCorruptionError
	if !errors.As(err, &ice) {
		t.Fatalf("ReadAll err = %v, want interior corruption", err)
	}
	if ice.Resume != offs[2] {
		t.Errorf("resume = %d, want %d (real record 2)", ice.Resume, offs[2])
	}
}

func TestScannerCorruptFirstRecordSalvage(t *testing.T) {
	buf, offs := corruptionLog(3)
	buf[3] ^= 0xff // break the very first magic

	txs, holes, _, _, err := SalvageAll(bytes.NewReader(buf), 0)
	if err != nil {
		t.Fatalf("SalvageAll: %v", err)
	}
	if len(txs) != 2 || txs[0].TxSeq != 2 {
		t.Fatalf("salvaged %d records (first seq %v), want 2 starting at seq 2",
			len(txs), txs)
	}
	if len(holes) != 1 || holes[0].From != 0 || holes[0].To != offs[1] {
		t.Errorf("holes = %v, want [0,%d)", holes, offs[1])
	}
}
