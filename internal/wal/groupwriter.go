package wal

import (
	"fmt"
	"sync"
	"time"

	"lbc/internal/metrics"
	"lbc/internal/obs"
)

// GroupConfig tunes a GroupWriter. Zero values select defaults.
type GroupConfig struct {
	// MaxBatchRecords caps how many records one batch may carry.
	// Default 64.
	MaxBatchRecords int
	// MaxBatchBytes caps the encoded size of one batch. A single record
	// larger than the cap still ships alone — the cap bounds batching,
	// not record size. Default 1 MiB.
	MaxBatchBytes int
	// Stats, when non-nil, receives group-commit counters
	// (metrics.CtrGroupBatches etc.) and the fsync-latency and
	// batch-occupancy histograms.
	Stats *metrics.Stats
	// Trace, when non-nil and enabled, receives group.enqueue,
	// group.lead/group.follow, and wal.sync spans.
	Trace *obs.Tracer
}

// GroupWriter is a drop-in replacement for Writer that lets concurrent
// flush-mode committers share a single Append+Sync (group commit). The
// first committer to find the pending queue empty becomes the batch
// leader; committers arriving while the leader's predecessor batch is
// still on the device join the next batch, so batch formation is
// pipelined with device I/O. When the device stalls, the bounded pending
// queue exerts backpressure: committers block until the in-flight batch
// drains.
//
// There is no background goroutine and no timer: a batch's latency bound
// is the predecessor batch's I/O time, which is the natural group-commit
// window (a timer could only add latency on an idle device, where the
// leader writes immediately).
type GroupWriter struct {
	dev      Device
	stats    *metrics.Stats
	trace    *obs.Tracer
	maxRecs  int
	maxBytes int

	// mu guards the pending queue and the entry/byte totals. ioMu
	// serializes batch device I/O and is always acquired before mu.
	mu        sync.Mutex
	notFull   *sync.Cond
	pending   []groupEntry
	pendBytes int

	ioMu sync.Mutex

	entries int64
	bytes   int64
}

type groupEntry struct {
	enc   []byte
	flush bool
	done  chan groupResult
}

type groupResult struct {
	off int64
	err error
}

// NewGroupWriter returns a GroupWriter appending to dev.
func NewGroupWriter(dev Device, cfg GroupConfig) *GroupWriter {
	if cfg.MaxBatchRecords <= 0 {
		cfg.MaxBatchRecords = 64
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = 1 << 20
	}
	w := &GroupWriter{
		dev:      dev,
		stats:    cfg.Stats,
		trace:    cfg.Trace,
		maxRecs:  cfg.MaxBatchRecords,
		maxBytes: cfg.MaxBatchBytes,
	}
	w.notFull = sync.NewCond(&w.mu)
	return w
}

// Commit enqueues tx and returns once the batch carrying it has been
// appended (and, for flush, forced) to the device. Error semantics match
// Writer.Commit: a failed append returns (0, 0, err) with nothing
// counted; a failed force returns the real offset and size with an error
// wrapping ErrSyncFailed, and the batch's records stay counted because
// they occupy log space. Non-flush committers in a batch whose force
// fails see no error — they never asked for durability.
func (w *GroupWriter) Commit(tx *TxRecord, flush bool) (int64, int, error) {
	traced := w.trace.Enabled()
	var t0 time.Time
	if traced {
		t0 = time.Now()
	}
	ent := groupEntry{
		enc:   AppendStandard(nil, tx),
		flush: flush,
		done:  make(chan groupResult, 1),
	}
	w.mu.Lock()
	for len(w.pending) >= w.maxRecs || (len(w.pending) > 0 && w.pendBytes+len(ent.enc) > w.maxBytes) {
		w.notFull.Wait()
	}
	leader := len(w.pending) == 0
	w.pending = append(w.pending, ent)
	w.pendBytes += len(ent.enc)
	w.mu.Unlock()

	var t1 time.Time
	if traced {
		t1 = time.Now()
		w.trace.Emit(obs.Span{
			Name: obs.SpanEnqueue, Node: tx.Node, Tx: tx.TxSeq,
			Start: t0.UnixNano(), Dur: t1.Sub(t0).Nanoseconds(),
			N: int64(len(ent.enc)),
		})
	}
	if leader {
		w.writeBatch()
	}
	res := <-ent.done
	if traced {
		name := obs.SpanFollow
		if leader {
			name = obs.SpanLead
		}
		w.trace.Emit(obs.Span{
			Name: name, Node: tx.Node, Tx: tx.TxSeq,
			Start: t1.UnixNano(), Dur: time.Since(t1).Nanoseconds(),
		})
	}
	return res.off, len(ent.enc), res.err
}

// writeBatch drains the pending queue and writes it as one device
// append. Invariant: at most one committer per pending-nonempty epoch
// sees leader==true, so writeBatch calls line up on ioMu one per batch.
// While a leader waits on ioMu (predecessor batch in flight), followers
// keep enqueueing onto the queue the leader will drain.
func (w *GroupWriter) writeBatch() {
	w.ioMu.Lock()
	defer w.ioMu.Unlock()

	w.mu.Lock()
	batch := w.pending
	w.pending = nil
	w.pendBytes = 0
	w.notFull.Broadcast()
	w.mu.Unlock()

	var buf []byte
	needSync := false
	for _, e := range batch {
		buf = append(buf, e.enc...)
		if e.flush {
			needSync = true
		}
	}

	base, err := w.dev.Append(buf)
	if err != nil {
		for _, e := range batch {
			e.done <- groupResult{0, err}
		}
		return
	}
	w.mu.Lock()
	w.entries += int64(len(batch))
	w.bytes += int64(len(buf))
	w.mu.Unlock()
	if w.stats != nil {
		w.stats.Add(metrics.CtrGroupBatches, 1)
		w.stats.Add(metrics.CtrGroupBatchRecords, int64(len(batch)))
		w.stats.Add(metrics.CtrGroupBatchBytes, int64(len(buf)))
		w.stats.Observe(metrics.HistBatchRecords, int64(len(batch)))
	}

	var syncErr error
	if needSync {
		timed := w.stats != nil || w.trace.Enabled()
		var s0 time.Time
		if timed {
			s0 = time.Now()
		}
		serr := w.dev.Sync()
		if timed {
			d := time.Since(s0).Nanoseconds()
			if w.stats != nil {
				w.stats.Observe(metrics.HistFsyncNS, d)
			}
			w.trace.Emit(obs.Span{
				Name: obs.SpanSync, Start: s0.UnixNano(), Dur: d,
				N: int64(len(batch)),
			})
		}
		if serr != nil {
			syncErr = fmt.Errorf("%w: %w", ErrSyncFailed, serr)
		} else if w.stats != nil {
			w.stats.Add(metrics.CtrGroupSyncs, 1)
		}
	}

	off := base
	for _, e := range batch {
		res := groupResult{off: off}
		if e.flush {
			res.err = syncErr
		}
		e.done <- res
		off += int64(len(e.enc))
	}
}

// Entries returns the number of records written through this writer.
func (w *GroupWriter) Entries() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.entries
}

// Bytes returns the total encoded bytes written through this writer.
func (w *GroupWriter) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}
