package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// slowSyncDevice adds latency to Sync, modeling a real disk force. The
// concurrency test relies on it: while one batch's force is in flight,
// other committers must pile into the next batch.
type slowSyncDevice struct {
	Device
	delay time.Duration
}

func (d *slowSyncDevice) Sync() error {
	time.Sleep(d.delay)
	return d.Device.Sync()
}

// failSyncDevice wraps a Device, failing every Sync after arming.
type failSyncDevice struct {
	Device
	mu   sync.Mutex
	fail bool
}

func (d *failSyncDevice) arm() {
	d.mu.Lock()
	d.fail = true
	d.mu.Unlock()
}

func (d *failSyncDevice) Sync() error {
	d.mu.Lock()
	fail := d.fail
	d.mu.Unlock()
	if fail {
		return errors.New("injected sync failure")
	}
	return d.Device.Sync()
}

func TestGroupWriterConcurrentCommits(t *testing.T) {
	dev := NewMemDevice()
	w := NewGroupWriter(&slowSyncDevice{Device: dev, delay: 200 * time.Microsecond}, GroupConfig{})
	const workers = 8
	const perWorker = 50

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := &TxRecord{
					Node:  uint32(g + 1),
					TxSeq: uint64(i + 1),
					Ranges: []RangeRec{
						{Region: 1, Off: uint64(i) * 8, Data: []byte(fmt.Sprintf("g%02di%02d", g, i))},
					},
				}
				off, n, err := w.Commit(tx, true)
				if err != nil {
					t.Errorf("commit g=%d i=%d: %v", g, i, err)
					return
				}
				if off < 0 || n <= 0 {
					t.Errorf("commit g=%d i=%d: off=%d n=%d", g, i, off, n)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if got := w.Entries(); got != workers*perWorker {
		t.Fatalf("entries = %d, want %d", got, workers*perWorker)
	}
	sz, _ := dev.Size()
	if got := w.Bytes(); got != sz {
		t.Fatalf("bytes = %d, device size %d", got, sz)
	}

	// Every record must be readable back, with per-node sequences intact.
	rc, err := dev.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	txs, torn, _, err := ReadAll(rc, 0)
	if err != nil || torn {
		t.Fatalf("ReadAll: err=%v torn=%v", err, torn)
	}
	if len(txs) != workers*perWorker {
		t.Fatalf("read %d records, want %d", len(txs), workers*perWorker)
	}
	lastSeq := map[uint32]uint64{}
	for _, tx := range txs {
		if tx.TxSeq != lastSeq[tx.Node]+1 {
			t.Fatalf("node %d: seq %d after %d", tx.Node, tx.TxSeq, lastSeq[tx.Node])
		}
		lastSeq[tx.Node] = tx.TxSeq
	}

	// Group commit's point: strictly fewer device forces than commits.
	if s := dev.Syncs(); s >= workers*perWorker {
		t.Fatalf("syncs = %d, want < %d", s, workers*perWorker)
	}
}

func TestGroupWriterBatchesShareSyncs(t *testing.T) {
	// A serial committer gets no batching benefit, but each commit must
	// still be durable when it returns.
	dev := NewMemDevice()
	w := NewGroupWriter(dev, GroupConfig{})
	for i := 1; i <= 3; i++ {
		tx := &TxRecord{Node: 1, TxSeq: uint64(i)}
		if _, _, err := w.Commit(tx, true); err != nil {
			t.Fatal(err)
		}
		sz, _ := dev.Size()
		dev.CrashUnsynced()
		if after, _ := dev.Size(); after != sz {
			t.Fatalf("commit %d not durable: %d bytes after crash, want %d", i, after, sz)
		}
	}
}

func TestGroupWriterNoFlushSkipsSync(t *testing.T) {
	dev := NewMemDevice()
	w := NewGroupWriter(dev, GroupConfig{})
	if _, _, err := w.Commit(&TxRecord{Node: 1, TxSeq: 1}, false); err != nil {
		t.Fatal(err)
	}
	if s := dev.Syncs(); s != 0 {
		t.Fatalf("syncs = %d, want 0 for a no-flush commit", s)
	}
}

func TestGroupWriterSyncFailure(t *testing.T) {
	dev := &failSyncDevice{Device: NewMemDevice()}
	w := NewGroupWriter(dev, GroupConfig{})

	if _, _, err := w.Commit(&TxRecord{Node: 1, TxSeq: 1}, true); err != nil {
		t.Fatal(err)
	}
	dev.arm()

	off, n, err := w.Commit(&TxRecord{Node: 1, TxSeq: 2}, true)
	if !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("err = %v, want ErrSyncFailed", err)
	}
	// The record was appended: real offset and size, and accounting
	// includes it (it occupies log space a recovery scan may replay).
	if off <= 0 || n <= 0 {
		t.Fatalf("off=%d n=%d, want the real append position", off, n)
	}
	if got := w.Entries(); got != 2 {
		t.Fatalf("entries = %d, want 2", got)
	}
	sz, _ := dev.Size()
	if got := w.Bytes(); got != sz {
		t.Fatalf("bytes = %d, device size %d", got, sz)
	}

	// A non-flush commit never asked for durability, so a failing Sync
	// cannot fail it.
	if _, _, err := w.Commit(&TxRecord{Node: 1, TxSeq: 3}, false); err != nil {
		t.Fatalf("no-flush commit: %v", err)
	}
}

func TestWriterSyncFailure(t *testing.T) {
	dev := &failSyncDevice{Device: NewMemDevice()}
	w := NewWriter(dev)

	if _, _, err := w.Commit(&TxRecord{Node: 1, TxSeq: 1}, true); err != nil {
		t.Fatal(err)
	}
	dev.arm()

	off, n, err := w.Commit(&TxRecord{Node: 1, TxSeq: 2}, true)
	if !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("err = %v, want ErrSyncFailed", err)
	}
	if off <= 0 || n <= 0 {
		t.Fatalf("off=%d n=%d, want the real append position", off, n)
	}
	if got := w.Entries(); got != 2 {
		t.Fatalf("entries = %d, want 2", got)
	}
	sz, _ := dev.Size()
	if got := w.Bytes(); got != sz {
		t.Fatalf("bytes = %d, device size %d", got, sz)
	}
}
