package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTooLarge reports a record that does not fit the compressed
// encoding's narrow fields (more than 65535 lock records, or a range
// larger than 4 GiB). Such records are still valid — callers should fall
// back to the standard encoding, whose fields are wide enough.
var ErrTooLarge = errors.New("wal: record exceeds compressed encoding limits")

// ErrBadEncoding reports a structurally malformed compressed message:
// the bytes parse as the right length but violate the format (reserved
// encoding codes, a delta range before any region id, trailing garbage).
var ErrBadEncoding = errors.New("wal: malformed compressed encoding")

// Compressed coherency encoding (§3.2). Only the information a peer
// needs to apply updates is sent: lock records (for ordering) and
// new-value range records with compressed headers. The standard header's
// recovery-only fields are dropped, and the remaining header is squeezed
// from 104 bytes to 4-24 bytes:
//
//   - the range's address is replaced by its delta from the end of the
//     preceding range when they are close together (ranges are sorted by
//     address at commit, so deltas are small);
//   - the size field shrinks to 1 byte for ranges under 256 bytes, 2
//     bytes under 64 KB.
//
// Per-range header layout:
//
//	flags u8:
//	  bit0    : explicit region id follows (u32) — first range of a region
//	  bit1-2  : address encoding: 0 = delta u16, 1 = delta u24, 2 = abs u64
//	  bit3-4  : size encoding:    0 = u8, 1 = u16, 2 = u32
//	[region u32] [addr 2/3/8] [size 1/2/4] [data ...]
//
// The minimum header is therefore 4 bytes (flags + delta u16 + size u8)
// and the maximum 17 bytes, within the paper's reported 4-24 byte range.
//
// Message layout:
//
//	+0  node   u32
//	+4  txSeq  u64
//	+12 nLocks u16, then nLocks * {lockID u32, seq u64, prev u64, wrote u8}
//	    nRanges u32, then compressed ranges
const (
	addrDelta16 = 0
	addrDelta24 = 1
	addrAbs64   = 2

	size8  = 0
	size16 = 1
	size32 = 2

	cFlagRegion = 1 << 0

	cLockRecLen = 21
)

// MinCompressedHeader and MaxCompressedHeader bound the per-range header
// size of the compressed encoding (the paper reports 4-24 bytes).
const (
	MinCompressedHeader = 4
	MaxCompressedHeader = 17
)

func addrEncoding(delta uint64, haveContext bool) (code byte, n int) {
	if haveContext {
		if delta < 1<<16 {
			return addrDelta16, 2
		}
		if delta < 1<<24 {
			return addrDelta24, 3
		}
	}
	return addrAbs64, 8
}

func sizeEncoding(n int) (code byte, w int) {
	switch {
	case n <= 0xff:
		return size8, 1
	case n <= 0xffff:
		return size16, 2
	default:
		return size32, 4
	}
}

// CompressedSize returns the wire size of the compressed encoding of tx.
func CompressedSize(tx *TxRecord) int {
	n := 4 + 8 + 2 + len(tx.Locks)*cLockRecLen + 4
	n += compressedRangesSize(tx.Ranges)
	return n
}

// compressedRangesSize computes the range-section size without encoding.
func compressedRangesSize(ranges []RangeRec) int {
	var n int
	curRegion := uint32(0)
	haveRegion := false
	var prevEnd uint64
	for _, r := range ranges {
		n++ // flags
		newRegion := !haveRegion || r.Region != curRegion
		if newRegion {
			n += 4
			curRegion, haveRegion = r.Region, true
			prevEnd = 0
		}
		var delta uint64
		haveCtx := !newRegion && r.Off >= prevEnd
		if haveCtx {
			delta = r.Off - prevEnd
		}
		_, aw := addrEncoding(delta, haveCtx)
		n += aw
		_, sw := sizeEncoding(len(r.Data))
		n += sw + len(r.Data)
		prevEnd = r.End()
	}
	return n
}

// CompressedHeaderBytes returns the total header overhead (message bytes
// minus data bytes) of the compressed encoding — the quantity behind the
// "Message Bytes" column of Table 3.
func CompressedHeaderBytes(tx *TxRecord) int {
	return compressedRangesSize(tx.Ranges) - tx.DataBytes()
}

// AppendCompressed appends the compressed coherency encoding of tx to
// buf. Ranges must be sorted by (Region, Off), which is how the commit
// path emits them (§3.2: "our modified set_range orders modified ranges
// by their address").
//
// The compressed format stores the lock count in 16 bits and range sizes
// in at most 32 bits; a record exceeding either limit returns
// ErrTooLarge (with buf unmodified) and must be sent in the standard
// encoding instead.
func AppendCompressed(buf []byte, tx *TxRecord) ([]byte, error) {
	if len(tx.Locks) > 0xFFFF {
		return buf, fmt.Errorf("%w: %d lock records (max 65535)", ErrTooLarge, len(tx.Locks))
	}
	for i := range tx.Ranges {
		if uint64(len(tx.Ranges[i].Data)) > 0xFFFFFFFF {
			return buf, fmt.Errorf("%w: range %d is %d bytes (max 4 GiB)", ErrTooLarge, i, len(tx.Ranges[i].Data))
		}
	}
	var hdr [14]byte
	binary.LittleEndian.PutUint32(hdr[0:], tx.Node)
	binary.LittleEndian.PutUint64(hdr[4:], tx.TxSeq)
	binary.LittleEndian.PutUint16(hdr[12:], uint16(len(tx.Locks)))
	buf = append(buf, hdr[:]...)
	var lrec [cLockRecLen]byte
	for _, l := range tx.Locks {
		binary.LittleEndian.PutUint32(lrec[0:], l.LockID)
		binary.LittleEndian.PutUint64(lrec[4:], l.Seq)
		binary.LittleEndian.PutUint64(lrec[12:], l.PrevWriteSeq)
		if l.Wrote {
			lrec[20] = 1
		} else {
			lrec[20] = 0
		}
		buf = append(buf, lrec[:]...)
	}
	var rc [4]byte
	binary.LittleEndian.PutUint32(rc[:], uint32(len(tx.Ranges)))
	buf = append(buf, rc[:]...)

	curRegion := uint32(0)
	haveRegion := false
	var prevEnd uint64
	var scratch [8]byte
	for _, r := range tx.Ranges {
		var flags byte
		newRegion := !haveRegion || r.Region != curRegion
		var delta uint64
		haveCtx := !newRegion && r.Off >= prevEnd
		if haveCtx {
			delta = r.Off - prevEnd
		}
		aCode, _ := addrEncoding(delta, haveCtx)
		sCode, _ := sizeEncoding(len(r.Data))
		flags = aCode<<1 | sCode<<3
		if newRegion {
			flags |= cFlagRegion
		}
		buf = append(buf, flags)
		if newRegion {
			binary.LittleEndian.PutUint32(scratch[:], r.Region)
			buf = append(buf, scratch[:4]...)
			curRegion, haveRegion = r.Region, true
		}
		switch aCode {
		case addrDelta16:
			binary.LittleEndian.PutUint16(scratch[:], uint16(delta))
			buf = append(buf, scratch[:2]...)
		case addrDelta24:
			binary.LittleEndian.PutUint32(scratch[:], uint32(delta))
			buf = append(buf, scratch[:3]...)
		default:
			binary.LittleEndian.PutUint64(scratch[:], r.Off)
			buf = append(buf, scratch[:8]...)
		}
		switch sCode {
		case size8:
			buf = append(buf, byte(len(r.Data)))
		case size16:
			binary.LittleEndian.PutUint16(scratch[:], uint16(len(r.Data)))
			buf = append(buf, scratch[:2]...)
		default:
			binary.LittleEndian.PutUint32(scratch[:], uint32(len(r.Data)))
			buf = append(buf, scratch[:4]...)
		}
		buf = append(buf, r.Data...)
		prevEnd = r.End()
	}
	return buf, nil
}

// DecodeCompressed decodes a compressed coherency message produced by
// AppendCompressed. The returned record's range Data slices alias b.
func DecodeCompressed(b []byte) (*TxRecord, error) {
	if len(b) < 18 {
		return nil, ErrTruncated
	}
	tx := &TxRecord{
		Node:  binary.LittleEndian.Uint32(b[0:]),
		TxSeq: binary.LittleEndian.Uint64(b[4:]),
	}
	nLocks := int(binary.LittleEndian.Uint16(b[12:]))
	p := 14
	if len(b) < p+nLocks*cLockRecLen+4 {
		return nil, ErrTruncated
	}
	tx.Locks = make([]LockRec, nLocks)
	for i := range tx.Locks {
		tx.Locks[i] = LockRec{
			LockID:       binary.LittleEndian.Uint32(b[p:]),
			Seq:          binary.LittleEndian.Uint64(b[p+4:]),
			PrevWriteSeq: binary.LittleEndian.Uint64(b[p+12:]),
			Wrote:        b[p+20] != 0,
		}
		p += cLockRecLen
	}
	nRanges := int(binary.LittleEndian.Uint32(b[p:]))
	p += 4
	// Every range occupies at least one flags byte, so a count beyond
	// the remaining bytes is malformed; checking before the make keeps
	// a corrupt header from demanding gigabytes.
	if nRanges > len(b)-p {
		return nil, ErrTruncated
	}
	tx.Ranges = make([]RangeRec, 0, nRanges)

	curRegion := uint32(0)
	haveRegion := false
	var prevEnd uint64
	for i := 0; i < nRanges; i++ {
		if p >= len(b) {
			return nil, ErrTruncated
		}
		flags := b[p]
		p++
		if flags&cFlagRegion != 0 {
			if p+4 > len(b) {
				return nil, ErrTruncated
			}
			curRegion = binary.LittleEndian.Uint32(b[p:])
			haveRegion = true
			prevEnd = 0
			p += 4
		} else if !haveRegion {
			return nil, fmt.Errorf("%w: range %d lacks region context", ErrBadEncoding, i)
		}
		var off uint64
		switch (flags >> 1) & 3 {
		case addrDelta16:
			if p+2 > len(b) {
				return nil, ErrTruncated
			}
			off = prevEnd + uint64(binary.LittleEndian.Uint16(b[p:]))
			p += 2
		case addrDelta24:
			if p+3 > len(b) {
				return nil, ErrTruncated
			}
			off = prevEnd + (uint64(b[p]) | uint64(b[p+1])<<8 | uint64(b[p+2])<<16)
			p += 3
		case addrAbs64:
			if p+8 > len(b) {
				return nil, ErrTruncated
			}
			off = binary.LittleEndian.Uint64(b[p:])
			p += 8
		default:
			return nil, fmt.Errorf("%w: bad address encoding in range %d", ErrBadEncoding, i)
		}
		var size int
		switch (flags >> 3) & 3 {
		case size8:
			if p+1 > len(b) {
				return nil, ErrTruncated
			}
			size = int(b[p])
			p++
		case size16:
			if p+2 > len(b) {
				return nil, ErrTruncated
			}
			size = int(binary.LittleEndian.Uint16(b[p:]))
			p += 2
		case size32:
			if p+4 > len(b) {
				return nil, ErrTruncated
			}
			size = int(binary.LittleEndian.Uint32(b[p:]))
			p += 4
		default:
			return nil, fmt.Errorf("%w: bad size encoding in range %d", ErrBadEncoding, i)
		}
		if p+size > len(b) {
			return nil, ErrTruncated
		}
		tx.Ranges = append(tx.Ranges, RangeRec{Region: curRegion, Off: off, Data: b[p : p+size : p+size]})
		p += size
		prevEnd = off + uint64(size)
	}
	if p != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadEncoding, len(b)-p)
	}
	if err := tx.validate(); err != nil {
		return nil, err
	}
	return tx, nil
}
