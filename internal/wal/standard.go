package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Standard (durable) encoding. Entry layout, all little-endian:
//
//	+0   magic      u32  "LBTX" (0x4c425458)
//	+4   version    u16
//	+6   flags      u16  bit0 = checkpoint marker
//	+8   node       u32
//	+12  txSeq      u64
//	+20  nLocks     u32
//	+24  nRanges    u32
//	+28  bodyLen    u64  bytes of lock + range sections
//	+36  locks      nLocks * 24 bytes
//	     ranges     nRanges * (104-byte header + data)
//	+36+bodyLen  crc u32 (IEEE, over bytes [0, 36+bodyLen))
//
// The 104-byte range header deliberately matches the size of RVM's
// standard range header, so the durable-log volume of "standard RVM" in
// Figure 8 and the header-compression ablation are faithful.
const (
	txMagic        = 0x4c425458 // "LBTX"
	rangeMagic     = 0x4c425247 // "LBRG"
	walVersion     = 1
	entryHeaderLen = 36
	lockRecLen     = 24
	// StdRangeHeaderLen is the size of a standard new-value range header
	// (matches the 104-byte header the paper reports for RVM, §3.2).
	StdRangeHeaderLen = 104

	flagCheckpoint = 1 << 0
	// flagCkptLSN marks a checkpoint record whose body ends with an
	// 8-byte checkpoint LSN (the §3.5 cut point). Carried as a separate
	// flag so pre-LSN marker records still decode.
	flagCkptLSN = 1 << 1

	ckptLSNLen = 8
)

// StandardSize returns the encoded size of tx in the standard format.
func StandardSize(tx *TxRecord) int {
	n := entryHeaderLen + len(tx.Locks)*lockRecLen + 4
	for _, r := range tx.Ranges {
		n += StdRangeHeaderLen + len(r.Data)
	}
	if tx.Checkpoint {
		n += ckptLSNLen
	}
	return n
}

// AppendStandard appends the standard encoding of tx to buf and returns
// the extended slice.
func AppendStandard(buf []byte, tx *TxRecord) []byte {
	start := len(buf)
	bodyLen := uint64(len(tx.Locks) * lockRecLen)
	for _, r := range tx.Ranges {
		bodyLen += StdRangeHeaderLen + uint64(len(r.Data))
	}
	var flags uint16
	if tx.Checkpoint {
		flags |= flagCheckpoint | flagCkptLSN
		bodyLen += ckptLSNLen
	}
	var hdr [entryHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], txMagic)
	binary.LittleEndian.PutUint16(hdr[4:], walVersion)
	binary.LittleEndian.PutUint16(hdr[6:], flags)
	binary.LittleEndian.PutUint32(hdr[8:], tx.Node)
	binary.LittleEndian.PutUint64(hdr[12:], tx.TxSeq)
	binary.LittleEndian.PutUint32(hdr[20:], uint32(len(tx.Locks)))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(tx.Ranges)))
	binary.LittleEndian.PutUint64(hdr[28:], bodyLen)
	buf = append(buf, hdr[:]...)

	var lrec [lockRecLen]byte
	for _, l := range tx.Locks {
		binary.LittleEndian.PutUint32(lrec[0:], l.LockID)
		var lf uint32
		if l.Wrote {
			lf = 1
		}
		binary.LittleEndian.PutUint32(lrec[4:], lf)
		binary.LittleEndian.PutUint64(lrec[8:], l.Seq)
		binary.LittleEndian.PutUint64(lrec[16:], l.PrevWriteSeq)
		buf = append(buf, lrec[:]...)
	}

	var rhdr [StdRangeHeaderLen]byte
	for _, r := range tx.Ranges {
		binary.LittleEndian.PutUint32(rhdr[0:], rangeMagic)
		binary.LittleEndian.PutUint32(rhdr[4:], r.Region)
		binary.LittleEndian.PutUint32(rhdr[8:], uint32(len(r.Data)))
		binary.LittleEndian.PutUint64(rhdr[12:], r.Off)
		// Bytes 20..104 are reserved padding, zeroed, mirroring the
		// bookkeeping fields of RVM's 104-byte header that coherency
		// does not need.
		for i := 20; i < StdRangeHeaderLen; i++ {
			rhdr[i] = 0
		}
		buf = append(buf, rhdr[:]...)
		buf = append(buf, r.Data...)
	}
	if tx.Checkpoint {
		var lsn [ckptLSNLen]byte
		binary.LittleEndian.PutUint64(lsn[:], tx.CheckpointLSN)
		buf = append(buf, lsn[:]...)
	}

	crc := crc32.ChecksumIEEE(buf[start:])
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return append(buf, tail[:]...)
}

// DecodeStandard decodes one standard entry from the front of b,
// returning the record and the number of bytes consumed. It returns
// ErrTruncated when b holds a prefix of a record (a torn tail) and
// ErrBadCRC / ErrBadMagic on corruption.
func DecodeStandard(b []byte) (*TxRecord, int, error) {
	if len(b) < entryHeaderLen {
		return nil, 0, ErrTruncated
	}
	if binary.LittleEndian.Uint32(b[0:]) != txMagic {
		return nil, 0, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != walVersion {
		return nil, 0, fmt.Errorf("wal: unsupported version %d", v)
	}
	flags := binary.LittleEndian.Uint16(b[6:])
	tx := &TxRecord{
		Node:       binary.LittleEndian.Uint32(b[8:]),
		TxSeq:      binary.LittleEndian.Uint64(b[12:]),
		Checkpoint: flags&flagCheckpoint != 0,
	}
	nLocks := binary.LittleEndian.Uint32(b[20:])
	nRanges := binary.LittleEndian.Uint32(b[24:])
	bodyLen := binary.LittleEndian.Uint64(b[28:])
	total := entryHeaderLen + int(bodyLen) + 4
	if bodyLen > 1<<40 || len(b) < total {
		return nil, 0, ErrTruncated
	}
	wantCRC := binary.LittleEndian.Uint32(b[total-4:])
	if crc32.ChecksumIEEE(b[:total-4]) != wantCRC {
		return nil, 0, ErrBadCRC
	}

	p := entryHeaderLen
	if int(nLocks)*lockRecLen > int(bodyLen) {
		return nil, 0, fmt.Errorf("wal: lock section overruns body")
	}
	tx.Locks = make([]LockRec, nLocks)
	for i := range tx.Locks {
		tx.Locks[i] = LockRec{
			LockID:       binary.LittleEndian.Uint32(b[p:]),
			Wrote:        binary.LittleEndian.Uint32(b[p+4:])&1 != 0,
			Seq:          binary.LittleEndian.Uint64(b[p+8:]),
			PrevWriteSeq: binary.LittleEndian.Uint64(b[p+16:]),
		}
		p += lockRecLen
	}
	tx.Ranges = make([]RangeRec, 0, nRanges)
	for i := uint32(0); i < nRanges; i++ {
		if p+StdRangeHeaderLen > total-4 {
			return nil, 0, fmt.Errorf("wal: range header overruns body")
		}
		if binary.LittleEndian.Uint32(b[p:]) != rangeMagic {
			return nil, 0, ErrBadMagic
		}
		region := binary.LittleEndian.Uint32(b[p+4:])
		dataLen := int(binary.LittleEndian.Uint32(b[p+8:]))
		off := binary.LittleEndian.Uint64(b[p+12:])
		p += StdRangeHeaderLen
		if p+dataLen > total-4 {
			return nil, 0, fmt.Errorf("wal: range data overruns body")
		}
		data := make([]byte, dataLen)
		copy(data, b[p:p+dataLen])
		p += dataLen
		tx.Ranges = append(tx.Ranges, RangeRec{Region: region, Off: off, Data: data})
	}
	if flags&flagCkptLSN != 0 {
		if p+ckptLSNLen > total-4 {
			return nil, 0, fmt.Errorf("wal: checkpoint LSN overruns body")
		}
		tx.CheckpointLSN = binary.LittleEndian.Uint64(b[p:])
		p += ckptLSNLen
	}
	if p != total-4 {
		return nil, 0, fmt.Errorf("wal: body length mismatch (%d != %d)", p, total-4)
	}
	if err := tx.validate(); err != nil {
		return nil, 0, err
	}
	return tx, total, nil
}
