package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Device abstracts the durable home of a log: a local file for
// single-node RVM, or the storage server for the distributed
// configuration (the paper places per-node logs on a central NFS
// server; internal/store plays that role here).
type Device interface {
	// Append writes p at the end of the log and returns the offset at
	// which it was written. Append does not imply durability.
	Append(p []byte) (int64, error)
	// Sync forces all appended data to durable storage (the commit
	// "flush" of RVM's flush mode).
	Sync() error
	// Size returns the current length of the log in bytes.
	Size() (int64, error)
	// Open returns a reader positioned at the given offset, for
	// recovery scans.
	Open(from int64) (io.ReadCloser, error)
	// Truncate discards everything at and after size (used to drop a
	// torn tail discovered during recovery).
	Truncate(size int64) error
	// Reset empties the log. Used after a checkpoint has made every
	// logged update redundant (offline log trimming, §3.5).
	Reset() error
	Close() error
}

// HeadTrimmer is an optional Device extension: discard the prefix
// [0, upTo) in one crash-atomic step, keeping the tail. Online log
// truncation (§3.5) prefers it over the generic read-tail/Reset/re-
// append rewrite, which can lose the tail if the node dies mid-rewrite.
type HeadTrimmer interface {
	TrimHead(upTo int64) error
}

// FileDevice is a Device backed by a local file.
type FileDevice struct {
	mu sync.Mutex
	f  *os.File
}

// OpenFileDevice opens (creating if needed) a file-backed log device.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open log %s: %w", path, err)
	}
	return &FileDevice{f: f}, nil
}

// Append implements Device.
func (d *FileDevice) Append(p []byte) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	off, err := d.f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, err
	}
	if _, err := d.f.Write(p); err != nil {
		return 0, err
	}
	return off, nil
}

// Sync implements Device.
func (d *FileDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Sync()
}

// Size implements Device.
func (d *FileDevice) Size() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, err := d.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Open implements Device. The returned reader takes an independent file
// handle so recovery can proceed while the device stays open.
func (d *FileDevice) Open(from int64) (io.ReadCloser, error) {
	f, err := os.Open(d.f.Name())
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(from, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// Truncate implements Device.
func (d *FileDevice) Truncate(size int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Truncate(size)
}

// Reset implements Device.
func (d *FileDevice) Reset() error { return d.Truncate(0) }

// TrimHead implements HeadTrimmer: the tail [upTo, size) is copied to a
// temporary file in the same directory, forced to disk, and renamed over
// the log. The rename is the commit point, so a crash leaves either the
// full old log or the trimmed new one — never a torn rewrite.
func (d *FileDevice) TrimHead(upTo int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if upTo <= 0 {
		return nil
	}
	st, err := d.f.Stat()
	if err != nil {
		return err
	}
	if upTo > st.Size() {
		return fmt.Errorf("wal: trim head %d beyond log end %d", upTo, st.Size())
	}
	path := d.f.Name()
	tmpPath := path + ".trim"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(tmp, io.NewSectionReader(d.f, upTo, st.Size()-upTo)); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	tmp.Close()
	// The rename commits the trim only once the directory entry is
	// durable: fsync the parent directory, or a crash could resurrect
	// the pre-trim log (harmless for recovery, but the trim would be
	// silently lost again and again).
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("wal: open log directory after trim: %w", err)
	}
	syncErr := dir.Sync()
	dir.Close()
	if syncErr != nil {
		return fmt.Errorf("wal: sync log directory after trim: %w", syncErr)
	}
	// The old descriptor points at the unlinked inode; reopen the path
	// (now the trimmed file) so Append/Open keep working.
	nf, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopen trimmed log %s: %w", path, err)
	}
	d.f.Close()
	d.f = nf
	return nil
}

// Close implements Device.
func (d *FileDevice) Close() error { return d.f.Close() }

// MemDevice is an in-memory Device for tests and for "disk logging
// disabled" experiment configurations (§4: "we disabled RVM disk logging
// so that we could isolate the costs associated with coherency"). It
// models volatility: Sync advances a durable watermark, and
// CrashUnsynced discards everything above it — the fate of no-flush
// commits in a crash.
type MemDevice struct {
	mu     sync.Mutex
	buf    []byte
	syncs  int
	synced int // bytes guaranteed durable
}

// NewMemDevice returns an empty in-memory log device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// Append implements Device.
func (d *MemDevice) Append(p []byte) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	off := int64(len(d.buf))
	d.buf = append(d.buf, p...)
	return off, nil
}

// Sync implements Device: everything appended so far becomes durable.
func (d *MemDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncs++
	d.synced = len(d.buf)
	return nil
}

// CrashUnsynced simulates a crash: appended-but-unsynced bytes are
// lost, exactly as a kernel buffer cache would lose them.
func (d *MemDevice) CrashUnsynced() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buf = d.buf[:d.synced]
}

// Syncs returns how many times Sync has been called.
func (d *MemDevice) Syncs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

// Size implements Device.
func (d *MemDevice) Size() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.buf)), nil
}

// Open implements Device.
func (d *MemDevice) Open(from int64) (io.ReadCloser, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if from > int64(len(d.buf)) {
		return nil, fmt.Errorf("wal: offset %d beyond log end %d", from, len(d.buf))
	}
	cp := make([]byte, int64(len(d.buf))-from)
	copy(cp, d.buf[from:])
	return io.NopCloser(bytes.NewReader(cp)), nil
}

// Truncate implements Device.
func (d *MemDevice) Truncate(size int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if size > int64(len(d.buf)) {
		return fmt.Errorf("wal: truncate %d beyond log end %d", size, len(d.buf))
	}
	d.buf = d.buf[:size]
	if d.synced > len(d.buf) {
		d.synced = len(d.buf)
	}
	return nil
}

// Reset implements Device.
func (d *MemDevice) Reset() error { return d.Truncate(0) }

// TrimHead implements HeadTrimmer. The in-memory swap is atomic under
// the device mutex; the durable watermark shifts with the data.
func (d *MemDevice) TrimHead(upTo int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if upTo <= 0 {
		return nil
	}
	if upTo > int64(len(d.buf)) {
		return fmt.Errorf("wal: trim head %d beyond log end %d", upTo, len(d.buf))
	}
	d.buf = append(d.buf[:0:0], d.buf[upTo:]...)
	d.synced -= int(upTo)
	if d.synced < 0 {
		d.synced = 0
	}
	return nil
}

// Close implements Device.
func (d *MemDevice) Close() error { return nil }

// Bytes returns a copy of the device contents (test helper).
func (d *MemDevice) Bytes() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	cp := make([]byte, len(d.buf))
	copy(cp, d.buf)
	return cp
}
