// Package avltree implements the OO7 part index: an AVL-balanced
// search tree resident in an RVM region ("a threaded AVL-balanced tree
// is used for the part index", §4.1). Keys are (buildDate, partID)
// pairs — partID disambiguates equal dates — and all structural
// mutations go through the transaction's SetRange, so index updates
// are logged, recoverable, and coherent like any other object write.
//
// This is the structure responsible for T3's update amplification: one
// atomic-part date change deletes and re-inserts an index entry,
// touching several nodes (the paper reports an average of seven index
// updates per atomic-part update).
package avltree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"lbc/internal/pheap"
	"lbc/internal/rvm"
)

// Node layout (region-resident, 24 bytes):
//
//	+0  date   i32
//	+4  part   u32
//	+8  left   u32 (payload offset; 0 = nil)
//	+12 right  u32
//	+16 height u32
//	+20 pad    u32
const nodeSize = 24

// Tree is a handle to a region-resident AVL index. The root pointer is
// a 4-byte cell at rootCell, owned by the caller (typically a field of
// a database header).
type Tree struct {
	reg      *rvm.Region
	heap     *pheap.Heap
	rootCell uint64
	// spare caches the most recently deleted node for reuse by the
	// next insert, so the delete+insert pair of a T3 date change skips
	// the allocator round trip (fewer set_range calls per index
	// update, as in the paper's ~7-writes-per-update index). The cache
	// lives in the handle, not the region: a crash between the delete
	// and the reuse leaks one 40-byte block, which recovery tolerates.
	spare uint32
}

// ErrRegionTooLarge guards the 32-bit node offsets.
var ErrRegionTooLarge = errors.New("avltree: region exceeds 4 GB offset space")

// New attaches a Tree to a root-pointer cell. The cell must be zeroed
// for an empty tree (a freshly formatted region already is).
func New(reg *rvm.Region, heap *pheap.Heap, rootCell uint64) (*Tree, error) {
	if uint64(reg.Size()) > 1<<32 {
		return nil, ErrRegionTooLarge
	}
	return &Tree{reg: reg, heap: heap, rootCell: rootCell}, nil
}

func (t *Tree) u32(off uint64) uint32 {
	return binary.LittleEndian.Uint32(t.reg.Bytes()[off:])
}

// put32 writes a 4-byte field if its value changed, declaring the
// range first. Skipping no-op writes keeps the set_range counts (the
// "Updates" column of Table 3) honest.
func (t *Tree) put32(tx pheap.SetRanger, off uint64, v uint32) error {
	if t.u32(off) == v {
		return nil
	}
	if err := tx.SetRange(t.reg, off, 4); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(t.reg.Bytes()[off:], v)
	return nil
}

func (t *Tree) date(n uint32) int32   { return int32(t.u32(uint64(n))) }
func (t *Tree) part(n uint32) uint32  { return t.u32(uint64(n) + 4) }
func (t *Tree) left(n uint32) uint32  { return t.u32(uint64(n) + 8) }
func (t *Tree) right(n uint32) uint32 { return t.u32(uint64(n) + 12) }

func (t *Tree) height(n uint32) int {
	if n == 0 {
		return 0
	}
	return int(t.u32(uint64(n) + 16))
}

func (t *Tree) setLeft(tx pheap.SetRanger, n, v uint32) error {
	return t.put32(tx, uint64(n)+8, v)
}
func (t *Tree) setRight(tx pheap.SetRanger, n, v uint32) error {
	return t.put32(tx, uint64(n)+12, v)
}

func (t *Tree) fixHeight(tx pheap.SetRanger, n uint32) error {
	h := max(t.height(t.left(n)), t.height(t.right(n))) + 1
	return t.put32(tx, uint64(n)+16, uint32(h))
}

func (t *Tree) balance(n uint32) int {
	return t.height(t.left(n)) - t.height(t.right(n))
}

// Root returns the current root offset (0 when empty).
func (t *Tree) Root() uint32 { return t.u32(t.rootCell) }

// keyLess orders (date, part) pairs.
func keyLess(d1 int32, p1 uint32, d2 int32, p2 uint32) bool {
	if d1 != d2 {
		return d1 < d2
	}
	return p1 < p2
}

// Insert adds (date, part) to the index. Inserting a key that is
// already present is an error (OO7 part ids are unique per date entry).
func (t *Tree) Insert(tx pheap.SetRanger, date int32, part uint32) error {
	newRoot, err := t.insert(tx, t.Root(), date, part)
	if err != nil {
		return err
	}
	return t.put32(tx, t.rootCell, newRoot)
}

func (t *Tree) insert(tx pheap.SetRanger, n uint32, date int32, part uint32) (uint32, error) {
	if n == 0 {
		var off uint64
		if t.spare != 0 {
			off = uint64(t.spare)
			t.spare = 0
		} else {
			var err error
			off, err = t.heap.Alloc(tx, nodeSize)
			if err != nil {
				return 0, err
			}
		}
		if off >= 1<<32 {
			return 0, ErrRegionTooLarge
		}
		if err := tx.SetRange(t.reg, off, nodeSize); err != nil {
			return 0, err
		}
		b := t.reg.Bytes()
		binary.LittleEndian.PutUint32(b[off:], uint32(date))
		binary.LittleEndian.PutUint32(b[off+4:], part)
		binary.LittleEndian.PutUint32(b[off+8:], 0)
		binary.LittleEndian.PutUint32(b[off+12:], 0)
		binary.LittleEndian.PutUint32(b[off+16:], 1)
		binary.LittleEndian.PutUint32(b[off+20:], 0)
		return uint32(off), nil
	}
	switch {
	case keyLess(date, part, t.date(n), t.part(n)):
		nl, err := t.insert(tx, t.left(n), date, part)
		if err != nil {
			return 0, err
		}
		if err := t.setLeft(tx, n, nl); err != nil {
			return 0, err
		}
	case keyLess(t.date(n), t.part(n), date, part):
		nr, err := t.insert(tx, t.right(n), date, part)
		if err != nil {
			return 0, err
		}
		if err := t.setRight(tx, n, nr); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("avltree: duplicate key (%d,%d)", date, part)
	}
	return t.rebalance(tx, n)
}

// Delete removes (date, part), reporting whether it was present.
func (t *Tree) Delete(tx pheap.SetRanger, date int32, part uint32) (bool, error) {
	newRoot, found, err := t.delete(tx, t.Root(), date, part)
	if err != nil {
		return false, err
	}
	if !found {
		return false, nil
	}
	return true, t.put32(tx, t.rootCell, newRoot)
}

func (t *Tree) delete(tx pheap.SetRanger, n uint32, date int32, part uint32) (uint32, bool, error) {
	if n == 0 {
		return 0, false, nil
	}
	var found bool
	switch {
	case keyLess(date, part, t.date(n), t.part(n)):
		nl, f, err := t.delete(tx, t.left(n), date, part)
		if err != nil {
			return 0, false, err
		}
		found = f
		if found {
			if err := t.setLeft(tx, n, nl); err != nil {
				return 0, false, err
			}
		}
	case keyLess(t.date(n), t.part(n), date, part):
		nr, f, err := t.delete(tx, t.right(n), date, part)
		if err != nil {
			return 0, false, err
		}
		found = f
		if found {
			if err := t.setRight(tx, n, nr); err != nil {
				return 0, false, err
			}
		}
	default:
		// Remove n itself.
		found = true
		l, r := t.left(n), t.right(n)
		switch {
		case l == 0 && r == 0:
			if err := t.freeNode(tx, n); err != nil {
				return 0, false, err
			}
			return 0, true, nil
		case l == 0:
			if err := t.freeNode(tx, n); err != nil {
				return 0, false, err
			}
			return r, true, nil
		case r == 0:
			if err := t.freeNode(tx, n); err != nil {
				return 0, false, err
			}
			return l, true, nil
		default:
			// Two children: overwrite n's key with its in-order
			// successor's, then delete the successor from the right
			// subtree.
			s := r
			for t.left(s) != 0 {
				s = t.left(s)
			}
			sd, sp := t.date(s), t.part(s)
			if err := t.put32(tx, uint64(n), uint32(sd)); err != nil {
				return 0, false, err
			}
			if err := t.put32(tx, uint64(n)+4, sp); err != nil {
				return 0, false, err
			}
			nr, _, err := t.delete(tx, r, sd, sp)
			if err != nil {
				return 0, false, err
			}
			if err := t.setRight(tx, n, nr); err != nil {
				return 0, false, err
			}
		}
	}
	if !found {
		return n, false, nil
	}
	nn, err := t.rebalance(tx, n)
	return nn, true, err
}

// freeNode recycles a deleted node: the single-node spare cache first,
// the persistent free list otherwise.
func (t *Tree) freeNode(tx pheap.SetRanger, n uint32) error {
	if t.spare == 0 {
		t.spare = n
		return nil
	}
	return t.heap.Free(tx, uint64(n))
}

// rebalance restores the AVL property at n and returns the subtree's
// (possibly new) root.
func (t *Tree) rebalance(tx pheap.SetRanger, n uint32) (uint32, error) {
	if err := t.fixHeight(tx, n); err != nil {
		return 0, err
	}
	b := t.balance(n)
	switch {
	case b > 1:
		if t.balance(t.left(n)) < 0 {
			nl, err := t.rotateLeft(tx, t.left(n))
			if err != nil {
				return 0, err
			}
			if err := t.setLeft(tx, n, nl); err != nil {
				return 0, err
			}
		}
		return t.rotateRight(tx, n)
	case b < -1:
		if t.balance(t.right(n)) > 0 {
			nr, err := t.rotateRight(tx, t.right(n))
			if err != nil {
				return 0, err
			}
			if err := t.setRight(tx, n, nr); err != nil {
				return 0, err
			}
		}
		return t.rotateLeft(tx, n)
	}
	return n, nil
}

func (t *Tree) rotateLeft(tx pheap.SetRanger, n uint32) (uint32, error) {
	r := t.right(n)
	if err := t.setRight(tx, n, t.left(r)); err != nil {
		return 0, err
	}
	if err := t.setLeft(tx, r, n); err != nil {
		return 0, err
	}
	if err := t.fixHeight(tx, n); err != nil {
		return 0, err
	}
	return r, t.fixHeight(tx, r)
}

func (t *Tree) rotateRight(tx pheap.SetRanger, n uint32) (uint32, error) {
	l := t.left(n)
	if err := t.setLeft(tx, n, t.right(l)); err != nil {
		return 0, err
	}
	if err := t.setRight(tx, l, n); err != nil {
		return 0, err
	}
	if err := t.fixHeight(tx, n); err != nil {
		return 0, err
	}
	return l, t.fixHeight(tx, l)
}

// Contains reports whether (date, part) is indexed.
func (t *Tree) Contains(date int32, part uint32) bool {
	n := t.Root()
	for n != 0 {
		switch {
		case keyLess(date, part, t.date(n), t.part(n)):
			n = t.left(n)
		case keyLess(t.date(n), t.part(n), date, part):
			n = t.right(n)
		default:
			return true
		}
	}
	return false
}

// Count returns the number of indexed entries.
func (t *Tree) Count() int {
	var walk func(n uint32) int
	walk = func(n uint32) int {
		if n == 0 {
			return 0
		}
		return 1 + walk(t.left(n)) + walk(t.right(n))
	}
	return walk(t.Root())
}

// Range visits entries with from <= date <= to in key order, stopping
// when fn returns false.
func (t *Tree) Range(from, to int32, fn func(date int32, part uint32) bool) {
	var walk func(n uint32) bool
	walk = func(n uint32) bool {
		if n == 0 {
			return true
		}
		if t.date(n) >= from {
			if !walk(t.left(n)) {
				return false
			}
		}
		if t.date(n) >= from && t.date(n) <= to {
			if !fn(t.date(n), t.part(n)) {
				return false
			}
		}
		if t.date(n) <= to {
			return walk(t.right(n))
		}
		return true
	}
	walk(t.Root())
}

// CheckInvariants validates ordering, balance, and stored heights.
func (t *Tree) CheckInvariants() error {
	var prevD int32
	var prevP uint32
	have := false
	var walk func(n uint32) (int, error)
	walk = func(n uint32) (int, error) {
		if n == 0 {
			return 0, nil
		}
		lh, err := walk(t.left(n))
		if err != nil {
			return 0, err
		}
		if have && !keyLess(prevD, prevP, t.date(n), t.part(n)) {
			return 0, fmt.Errorf("avltree: ordering violated at (%d,%d)", t.date(n), t.part(n))
		}
		prevD, prevP, have = t.date(n), t.part(n), true
		rh, err := walk(t.right(n))
		if err != nil {
			return 0, err
		}
		if d := lh - rh; d < -1 || d > 1 {
			return 0, fmt.Errorf("avltree: imbalance %d at (%d,%d)", d, t.date(n), t.part(n))
		}
		h := max(lh, rh) + 1
		if t.height(n) != h {
			return 0, fmt.Errorf("avltree: height %d != %d at (%d,%d)", t.height(n), h, t.date(n), t.part(n))
		}
		return h, nil
	}
	_, err := walk(t.Root())
	return err
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
