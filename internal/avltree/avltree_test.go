package avltree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lbc/internal/metrics"
	"lbc/internal/pheap"
	"lbc/internal/rvm"
)

type fixture struct {
	r    *rvm.RVM
	tree *Tree
}

func newFixture(t *testing.T, size int) *fixture {
	t.Helper()
	r, err := rvm.Open(rvm.Options{Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := r.Map(1, size)
	if err != nil {
		t.Fatal(err)
	}
	tx := r.Begin(rvm.NoRestore)
	// Root cell at offset 0..4; heap occupies the rest.
	if err := tx.SetRange(reg, 0, 8); err != nil {
		t.Fatal(err)
	}
	h, err := pheap.Format(reg, tx, 8, uint64(size))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := New(reg, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(rvm.NoFlush); err != nil {
		t.Fatal(err)
	}
	return &fixture{r: r, tree: tree}
}

func (f *fixture) withTx(t *testing.T, fn func(tx *rvm.Tx)) {
	t.Helper()
	tx := f.r.Begin(rvm.NoRestore)
	fn(tx)
	if _, err := tx.Commit(rvm.NoFlush); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAndContains(t *testing.T) {
	f := newFixture(t, 1<<18)
	f.withTx(t, func(tx *rvm.Tx) {
		for i := 0; i < 100; i++ {
			if err := f.tree.Insert(tx, int32(i%10), uint32(i)); err != nil {
				t.Fatal(err)
			}
		}
	})
	if f.tree.Count() != 100 {
		t.Fatalf("count = %d", f.tree.Count())
	}
	for i := 0; i < 100; i++ {
		if !f.tree.Contains(int32(i%10), uint32(i)) {
			t.Fatalf("missing (%d,%d)", i%10, i)
		}
	}
	if f.tree.Contains(99, 99) {
		t.Fatal("phantom key")
	}
	if err := f.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateInsertFails(t *testing.T) {
	f := newFixture(t, 1<<16)
	f.withTx(t, func(tx *rvm.Tx) {
		if err := f.tree.Insert(tx, 5, 7); err != nil {
			t.Fatal(err)
		}
		if err := f.tree.Insert(tx, 5, 7); err == nil {
			t.Fatal("duplicate insert accepted")
		}
	})
}

func TestDelete(t *testing.T) {
	f := newFixture(t, 1<<18)
	f.withTx(t, func(tx *rvm.Tx) {
		for i := 0; i < 50; i++ {
			f.tree.Insert(tx, int32(i), uint32(i))
		}
		for i := 0; i < 50; i += 2 {
			ok, err := f.tree.Delete(tx, int32(i), uint32(i))
			if err != nil || !ok {
				t.Fatalf("delete %d: %v %v", i, ok, err)
			}
		}
		if ok, _ := f.tree.Delete(tx, 2, 2); ok {
			t.Fatal("deleted twice")
		}
	})
	if f.tree.Count() != 25 {
		t.Fatalf("count = %d", f.tree.Count())
	}
	for i := 0; i < 50; i++ {
		want := i%2 == 1
		if f.tree.Contains(int32(i), uint32(i)) != want {
			t.Fatalf("contains(%d) != %v", i, want)
		}
	}
	if err := f.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteTwoChildren(t *testing.T) {
	f := newFixture(t, 1<<16)
	f.withTx(t, func(tx *rvm.Tx) {
		for _, k := range []int32{50, 30, 70, 20, 40, 60, 80} {
			f.tree.Insert(tx, k, uint32(k))
		}
		ok, err := f.tree.Delete(tx, 50, 50)
		if err != nil || !ok {
			t.Fatalf("delete root: %v %v", ok, err)
		}
	})
	if f.tree.Contains(50, 50) || f.tree.Count() != 6 {
		t.Fatal("two-children delete broken")
	}
	if err := f.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRange(t *testing.T) {
	f := newFixture(t, 1<<18)
	f.withTx(t, func(tx *rvm.Tx) {
		for i := 0; i < 100; i++ {
			f.tree.Insert(tx, int32(i), uint32(i))
		}
	})
	var got []int32
	f.tree.Range(10, 19, func(d int32, p uint32) bool {
		got = append(got, d)
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range = %v", got)
	}
	// Early stop.
	var n int
	f.tree.Range(0, 99, func(int32, uint32) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestDateChangeLikeT3(t *testing.T) {
	// The T3 pattern: delete the entry for the old date and insert the
	// new one; count how many set_range calls (updates) that costs.
	f := newFixture(t, 1<<20)
	f.withTx(t, func(tx *rvm.Tx) {
		for i := 0; i < 1000; i++ {
			f.tree.Insert(tx, int32(i%500), uint32(i))
		}
	})
	stats := f.r.Stats()
	before := stats.Counter(metrics.CtrSetRangeCalls)
	f.withTx(t, func(tx *rvm.Tx) {
		if ok, err := f.tree.Delete(tx, 42, 42); !ok || err != nil {
			t.Fatalf("delete: %v %v", ok, err)
		}
		if err := f.tree.Insert(tx, 77, 42); err != nil {
			t.Fatal(err)
		}
	})
	updates := stats.Counter(metrics.CtrSetRangeCalls) - before
	// The paper reports ~7 index updates per date change; ours should
	// land in the same small-constant ballpark (tree ops touch a
	// handful of nodes plus allocator metadata).
	if updates < 3 || updates > 40 {
		t.Fatalf("date change cost %d set_range calls", updates)
	}
	t.Logf("T3-style date change: %d set_range calls", updates)
	if err := f.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMatchesMapModel(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		fix := newFixtureQuick()
		if fix == nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		model := map[[2]int64]bool{}
		tx := fix.r.Begin(rvm.NoRestore)
		for i := 0; i < int(ops)+20; i++ {
			d := int32(rng.Intn(40))
			p := uint32(rng.Intn(40))
			key := [2]int64{int64(d), int64(p)}
			if rng.Intn(2) == 0 {
				if model[key] {
					continue
				}
				if err := fix.tree.Insert(tx, d, p); err != nil {
					return false
				}
				model[key] = true
			} else {
				ok, err := fix.tree.Delete(tx, d, p)
				if err != nil {
					return false
				}
				if ok != model[key] {
					return false
				}
				delete(model, key)
			}
			if err := fix.tree.CheckInvariants(); err != nil {
				return false
			}
		}
		tx.Commit(rvm.NoFlush)
		if fix.tree.Count() != len(model) {
			return false
		}
		for key := range model {
			if !fix.tree.Contains(int32(key[0]), uint32(key[1])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// newFixtureQuick builds a fixture without *testing.T for quick.Check.
func newFixtureQuick() *fixture {
	r, err := rvm.Open(rvm.Options{Node: 1})
	if err != nil {
		return nil
	}
	reg, err := r.Map(1, 1<<18)
	if err != nil {
		return nil
	}
	tx := r.Begin(rvm.NoRestore)
	if err := tx.SetRange(reg, 0, 8); err != nil {
		return nil
	}
	h, err := pheap.Format(reg, tx, 8, 1<<18)
	if err != nil {
		return nil
	}
	tree, err := New(reg, h, 0)
	if err != nil {
		return nil
	}
	if _, err := tx.Commit(rvm.NoFlush); err != nil {
		return nil
	}
	return &fixture{r: r, tree: tree}
}

func TestNodesFreedOnDelete(t *testing.T) {
	f := newFixture(t, 1<<16)
	f.withTx(t, func(tx *rvm.Tx) {
		for i := 0; i < 20; i++ {
			f.tree.Insert(tx, int32(i), uint32(i))
		}
	})
	var bumpAfterInsert uint64
	{
		h, _ := pheap.Open(f.r.Region(1), 8)
		bumpAfterInsert = h.Bump()
	}
	f.withTx(t, func(tx *rvm.Tx) {
		for i := 0; i < 20; i++ {
			f.tree.Delete(tx, int32(i), uint32(i))
		}
		// Reinsert: freed nodes must be reused, bump must not grow.
		for i := 0; i < 20; i++ {
			f.tree.Insert(tx, int32(i+100), uint32(i))
		}
	})
	h, _ := pheap.Open(f.r.Region(1), 8)
	if h.Bump() != bumpAfterInsert {
		t.Fatalf("bump grew from %d to %d despite frees", bumpAfterInsert, h.Bump())
	}
}
