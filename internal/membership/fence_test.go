package membership

import (
	"sync"
	"testing"
	"time"

	"lbc/internal/chaos"
	"lbc/internal/metrics"
	"lbc/internal/netproto"
)

// The epoch-fencing acceptance test: a frame sent before an eviction,
// held back in flight by a chaos reorder fault, resurfaces after the
// receiver's epoch has moved on — and must be dropped at delivery, not
// applied. This is the §3.4 hazard window the fence closes: the update
// was broadcast by (or ordered against) a membership view that no
// longer exists.

const testUpdateType uint8 = 0x20

type frameLog struct {
	mu     sync.Mutex
	frames [][]byte
}

func (l *frameLog) handler(from netproto.NodeID, payload []byte) {
	l.mu.Lock()
	l.frames = append(l.frames, append([]byte(nil), payload...))
	l.mu.Unlock()
}

func (l *frameLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.frames)
}

func TestFenceDropsDelayedPreEvictionFrames(t *testing.T) {
	hub := netproto.NewHub()
	// ReorderProb 1 on the update type: every tagged frame is held in
	// the injector until a flush — a deterministic "delayed in flight".
	inj := chaos.New(chaos.Config{
		Seed:        7,
		ReorderProb: 1.0,
		DropTypes:   []uint8{testUpdateType},
	})
	clk := NewManualClock()
	ids := []netproto.NodeID{1, 2}
	tr1 := chaos.WrapTransport(hub.Endpoint(1), inj)
	tr2 := chaos.WrapTransport(hub.Endpoint(2), inj)
	st1, st2 := metrics.NewStats(), metrics.NewStats()
	m1 := New(Config{Transport: tr1, Nodes: ids, Clock: clk, Stats: st1})
	m2 := New(Config{Transport: tr2, Nodes: ids, Clock: clk, Stats: st2})
	defer m1.Close()
	defer m2.Close()
	f1 := NewFence(tr1, m1, st1, []uint8{testUpdateType})
	f2 := NewFence(tr2, m2, st2, []uint8{testUpdateType})

	var rcv frameLog
	f2.Handle(testUpdateType, rcv.handler)

	// Epoch-0 frame: tagged 0 at send time, held by the reorder fault.
	if err := f1.Send(2, testUpdateType, []byte("pre-eviction")); err != nil {
		t.Fatalf("send: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	if rcv.count() != 0 {
		t.Fatal("frame delivered despite reorder hold-back")
	}

	// An eviction elsewhere bumps the cluster epoch while the frame is
	// in flight.
	m2.SetEpoch(1)

	// The held frame resurfaces: it must be fenced, not applied.
	if err := tr1.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	awaitCounter(t, st2, metrics.CtrStaleEpochFrames, 1)
	if rcv.count() != 0 {
		t.Fatal("stale-epoch frame reached the handler")
	}

	// A frame tagged with the current epoch passes.
	m1.SetEpoch(1)
	if err := f1.Send(2, testUpdateType, []byte("current")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := tr1.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	await(t, "current-epoch delivery", func() bool { return rcv.count() == 1 })
	rcv.mu.Lock()
	got := string(rcv.frames[0])
	rcv.mu.Unlock()
	if got != "current" {
		t.Fatalf("delivered payload = %q (epoch tag not stripped?)", got)
	}
	if n := st2.Counter(metrics.CtrStaleEpochFrames); n != 1 {
		t.Fatalf("stale_epoch_frames = %d, want 1", n)
	}
}

func TestFenceQuarantinesEvictedSender(t *testing.T) {
	hub := netproto.NewHub()
	clk := NewManualClock()
	ids := []netproto.NodeID{1, 2}
	tr1, tr2 := hub.Endpoint(1), hub.Endpoint(2)
	st1, st2 := metrics.NewStats(), metrics.NewStats()
	m1 := New(Config{Transport: tr1, Nodes: ids, Clock: clk, Stats: st1})
	m2 := New(Config{Transport: tr2, Nodes: ids, Clock: clk, Stats: st2})
	defer m1.Close()
	defer m2.Close()
	f1 := NewFence(tr1, m1, st1, nil)
	f2 := NewFence(tr2, m2, st2, nil)

	var rcv frameLog
	const lockType uint8 = 0x12 // un-fenced type: no epoch tag
	f2.Handle(lockType, rcv.handler)

	if err := f1.Send(2, lockType, []byte("alive")); err != nil {
		t.Fatalf("send: %v", err)
	}
	await(t, "pre-eviction delivery", func() bool { return rcv.count() == 1 })

	// Node 2 evicts node 1; the quarantine applies to every frame type,
	// fenced or not — a zombie must not keep driving the lock protocol.
	m2.mu.Lock()
	m2.peers[1].evicted = true
	m2.mu.Unlock()

	if err := f1.Send(2, lockType, []byte("zombie")); err != nil {
		t.Fatalf("send: %v", err)
	}
	awaitCounter(t, st2, metrics.CtrEvictedSenderFrames, 1)
	if rcv.count() != 1 {
		t.Fatal("evicted sender's frame reached the handler")
	}

	// The reverse direction fails fast at the sender.
	if err := f2.Send(1, lockType, []byte("to the dead")); err == nil {
		t.Fatal("send to evicted peer succeeded")
	} else if err != netproto.ErrPeerEvicted {
		t.Fatalf("send to evicted peer: err = %v, want ErrPeerEvicted", err)
	}
}

func awaitCounter(t *testing.T, st *metrics.Stats, name string, want int64) {
	t.Helper()
	await(t, name, func() bool { return st.Counter(name) >= want })
}

// TestFenceSendVTagsAndStrips drives the vector-send path through the
// fence: the epoch tag must ride as an extra leading part (keeping the
// send scatter-gather end to end) and be stripped before the handler,
// with the parts arriving concatenated in order.
func TestFenceSendVTagsAndStrips(t *testing.T) {
	hub := netproto.NewHub()
	clk := NewManualClock()
	ids := []netproto.NodeID{1, 2}
	tr1, tr2 := hub.Endpoint(1), hub.Endpoint(2)
	st1, st2 := metrics.NewStats(), metrics.NewStats()
	m1 := New(Config{Transport: tr1, Nodes: ids, Clock: clk, Stats: st1})
	m2 := New(Config{Transport: tr2, Nodes: ids, Clock: clk, Stats: st2})
	defer m1.Close()
	defer m2.Close()
	f1 := NewFence(tr1, m1, st1, []uint8{testUpdateType})
	f2 := NewFence(tr2, m2, st2, []uint8{testUpdateType})

	var rcv frameLog
	f2.Handle(testUpdateType, rcv.handler)

	m1.SetEpoch(3)
	m2.SetEpoch(3)
	if err := f1.SendV(2, testUpdateType, [][]byte{[]byte("vec-"), []byte("parts")}); err != nil {
		t.Fatalf("sendv: %v", err)
	}
	await(t, "fenced vector delivery", func() bool { return rcv.count() == 1 })
	rcv.mu.Lock()
	got := string(rcv.frames[0])
	rcv.mu.Unlock()
	if got != "vec-parts" {
		t.Fatalf("delivered payload = %q (epoch tag not stripped, or parts scrambled)", got)
	}

	// A stale-epoch vector send is fenced exactly like a flat one.
	m2.SetEpoch(4)
	if err := f1.SendV(2, testUpdateType, [][]byte{[]byte("stale")}); err != nil {
		t.Fatalf("sendv: %v", err)
	}
	awaitCounter(t, st2, metrics.CtrStaleEpochFrames, 1)
	if rcv.count() != 1 {
		t.Fatal("stale-epoch vector frame reached the handler")
	}
}
